#!/usr/bin/env bash
#
# Robustness gate: the fault-injected serving chaos suite.
#
# Builds the repo and runs the robustness-labelled tests (serving
# lifecycle, the seeded fault-injection matrix, thread-pool fault
# resilience, obliviousness of the degraded serving path, the async ORAM
# proxy), then rebuilds and re-runs them under sanitizers: ASan (leaks,
# use-after-free in the failure paths), TSan (queue/batcher/pool races),
# and UBSan. The TSan pass additionally runs the concurrency label —
# the ORAM proxy conductor/pool pipeline and the packed-weight cache
# stress tests are only meaningfully raced there.
#
# Between the two, a crash drill: the kill-based crash harness (forked
# children SIGKILLed at seeded points inside the durable RAW ORAM's
# journal/checkpoint/eviction machinery, recovered and audited in the
# parent) runs under ASan, and secemb-verify certifies the recovered
# instances' access patterns against fresh ones.
#
# Every fault decision is a pure function of (plan seed, site, hit
# ordinal), so a failing chaos case replays exactly from its seed — there
# are no coin flips to chase.
#
# Usage:
#   scripts/chaos.sh [--skip-sanitizers] [--sanitizers "address thread"]
#
# Exits non-zero on any crash, hang (ctest timeout), leak, race, or
# unexpected fault outcome.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build"
SKIP_SANITIZERS=0
SANITIZERS="address thread undefined"

while [[ $# -gt 0 ]]; do
    case "$1" in
        --skip-sanitizers) SKIP_SANITIZERS=1; shift ;;
        --sanitizers) SANITIZERS="$2"; shift 2 ;;
        *) echo "unknown flag: $1" >&2; exit 2 ;;
    esac
done

echo "== [1/3] Build + robustness suite (ctest -L robustness) =="
cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j"$(nproc)"
ctest --test-dir "${BUILD_DIR}" -L robustness --output-on-failure \
    --timeout 300

echo "== [2/3] Crash drill: recovered-instance certification =="
# The kill-based harness itself ran in the robustness label above (and
# re-runs under sanitizers below); here the verify harness certifies that
# crash-recovered durable instances are indistinguishable from fresh ones
# and that the sparse negative control stays rejected.
"${BUILD_DIR}/src/verify/secemb-verify" --subjects=raw_oram --recovered

if [[ "${SKIP_SANITIZERS}" -eq 1 ]]; then
    echo "== [3/3] Sanitizer passes skipped (--skip-sanitizers) =="
    echo "CHAOS GATE PASSED (unsanitized)"
    exit 0
fi

echo "== [3/3] Sanitizer passes: ${SANITIZERS} =="
for SAN in ${SANITIZERS}; do
    SAN_BUILD_DIR="${REPO_ROOT}/build-${SAN}"
    echo "-- ${SAN}: configure + build --"
    cmake -S "${REPO_ROOT}" -B "${SAN_BUILD_DIR}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSECEMB_SANITIZE="${SAN}"
    cmake --build "${SAN_BUILD_DIR}" -j"$(nproc)" \
        --target serving_test chaos_test serving_verify_test \
        parallel_pool_test oram_proxy_test proxy_verify_test \
        kernel_cache_stress_test store_chaos_test durable_store_test \
        crash_harness_test page_cache_test
    echo "-- ${SAN}: ctest -L robustness --"
    ctest --test-dir "${SAN_BUILD_DIR}" -L robustness \
        --output-on-failure --timeout 600
    if [[ "${SAN}" == "thread" ]]; then
        # The full concurrency label needs a few more binaries than the
        # robustness set.
        cmake --build "${SAN_BUILD_DIR}" -j"$(nproc)" \
            --target telemetry_test tensor_test trace_stress_test \
            perfmon_test flight_recorder_test
        echo "-- ${SAN}: ctest -L concurrency --"
        ctest --test-dir "${SAN_BUILD_DIR}" -L concurrency \
            --output-on-failure --timeout 600
    fi
done

echo "CHAOS GATE PASSED"
