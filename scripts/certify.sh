#!/usr/bin/env bash
#
# Obliviousness certification gate.
#
# Builds the repo, runs the leakage-labelled test suite (differential
# trace fuzzing, statistical fixed-vs-random checks, golden-trace
# snapshots) once per kernel precision (SECEMB_PRECISION=f32|bf16|int8),
# runs the kernel gate under both the scalar and the widest GEMM tier
# (SECEMB_ISA) crossed with every precision, then rebuilds the verify
# harness under ASan+UBSan and re-runs a full secemb-verify sweep under
# instrumentation. The precision cross proves the low-precision tiers
# keep canonical traces bit-identical — quantization is a latency knob,
# never part of the security argument. Finally chains into scripts/chaos.sh so the
# fault-injected serving path is certified alongside the fault-free
# generators.
#
# Usage:
#   scripts/certify.sh [--skip-asan] [--skip-chaos] [--skip-bench]
#                      [--seed N]
#
# Exits non-zero if any generator fails certification.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build"
ASAN_BUILD_DIR="${REPO_ROOT}/build-asan"
SEED=2024
SKIP_ASAN=0
SKIP_CHAOS=0
SKIP_BENCH=0

while [[ $# -gt 0 ]]; do
    case "$1" in
        --skip-asan) SKIP_ASAN=1; shift ;;
        --skip-chaos) SKIP_CHAOS=1; shift ;;
        --skip-bench) SKIP_BENCH=1; shift ;;
        --seed) SEED="$2"; shift 2 ;;
        *) echo "unknown flag: $1" >&2; exit 2 ;;
    esac
done

echo "== [1/5] Build =="
cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j"$(nproc)"

PRECISIONS=(f32 bf16 int8)

echo "== [2/5] Leakage test suite per precision (ctest -L leakage) =="
for prec in "${PRECISIONS[@]}"; do
    echo "-- leakage @ SECEMB_PRECISION=${prec} --"
    SECEMB_PRECISION="${prec}" ctest --test-dir "${BUILD_DIR}" -L leakage \
        --output-on-failure
done

echo "== [3/5] Kernel gate: forced scalar tier x each precision =="
for prec in "${PRECISIONS[@]}"; do
    echo "-- kernels @ SECEMB_ISA=scalar SECEMB_PRECISION=${prec} --"
    SECEMB_ISA=scalar SECEMB_PRECISION="${prec}" \
        ctest --test-dir "${BUILD_DIR}" -L kernels --output-on-failure
done

echo "== [3/5] Kernel gate: widest supported tier x each precision =="
for prec in "${PRECISIONS[@]}"; do
    echo "-- kernels @ widest tier, SECEMB_PRECISION=${prec} --"
    env -u SECEMB_ISA SECEMB_PRECISION="${prec}" \
        ctest --test-dir "${BUILD_DIR}" -L kernels --output-on-failure
done

echo "== Full certification sweep per precision (secemb-verify, seed ${SEED}) =="
# --recovered adds the durable-tier arm: crash-recovered RAW ORAM
# instances must certify exactly like fresh ones. Every precision tier
# must certify identically: generator traces are recorded above the
# GEMM, so SECEMB_PRECISION cannot change them.
for prec in "${PRECISIONS[@]}"; do
    echo "-- secemb-verify @ SECEMB_PRECISION=${prec} --"
    SECEMB_PRECISION="${prec}" "${BUILD_DIR}/src/verify/secemb-verify" \
        --seed="${SEED}" --recovered \
        --json="${BUILD_DIR}/certify_report_${prec}.json"
    echo "report: ${BUILD_DIR}/certify_report_${prec}.json"
done

if [[ "${SKIP_ASAN}" -eq 1 ]]; then
    echo "== [4/5] ASan verify run skipped (--skip-asan) =="
else
    echo "== [4/5] ASan+UBSan instrumented verify sweep =="
    cmake -S "${REPO_ROOT}" -B "${ASAN_BUILD_DIR}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSECEMB_SANITIZE=address
    cmake --build "${ASAN_BUILD_DIR}" -j"$(nproc)" --target secemb-verify
    "${ASAN_BUILD_DIR}/src/verify/secemb-verify" --seed="${SEED}"
fi

if [[ "${SKIP_CHAOS}" -eq 1 ]]; then
    echo "== [5/6] Chaos gate skipped (--skip-chaos) =="
else
    echo "== [5/6] Chaos gate (scripts/chaos.sh) =="
    if [[ "${SKIP_ASAN}" -eq 1 ]]; then
        "${REPO_ROOT}/scripts/chaos.sh" --skip-sanitizers
    else
        "${REPO_ROOT}/scripts/chaos.sh"
    fi
fi

if [[ "${SKIP_BENCH}" -eq 1 ]]; then
    echo "== [6/6] Bench trajectory skipped (--skip-bench) =="
else
    echo "== [6/6] Bench trajectory (scripts/bench_all.sh --quick) =="
    # Quick workloads: the gate cares about regressions, not about
    # paper-grade numbers. Gates automatically iff a baseline summary is
    # checked in at baselines/BENCH_baseline.json.
    "${REPO_ROOT}/scripts/bench_all.sh" --quick --skip-build
fi

echo "CERTIFICATION GATE PASSED"
