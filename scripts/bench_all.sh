#!/usr/bin/env bash
#
# Bench-trajectory harness wrapper.
#
# Builds the bench tier and runs secemb-bench-all: every --json-capable
# benchmark in the tier (gemm_kernel, micro_primitives, srv01_serving,
# oram01_proxy, oc01_paged, oc02_recovery, ver01_certify_cost,
# perf01_xcheck) runs once, the per-binary reports are
# merged into a machine-annotated BENCH_summary.json, and — when a
# baseline summary exists — the new summary is gated against it (fail on
# any shared result >GATE slower).
#
# Usage:
#   scripts/bench_all.sh [--quick] [--skip-build]
#                        [--baseline FILE] [--gate X] [--outdir DIR]
#
# The default baseline is baselines/BENCH_baseline.json if checked in;
# absent baseline means "record trajectory, gate nothing". To freeze the
# current machine's numbers as the new baseline:
#   cp bench_out/BENCH_summary.json baselines/BENCH_baseline.json

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build"
OUTDIR="${REPO_ROOT}/bench_out"
BASELINE="${REPO_ROOT}/baselines/BENCH_baseline.json"
GATE="1.15"
QUICK=()
SKIP_BUILD=0

while [[ $# -gt 0 ]]; do
    case "$1" in
        --quick) QUICK=(--quick); shift ;;
        --skip-build) SKIP_BUILD=1; shift ;;
        --baseline) BASELINE="$2"; shift 2 ;;
        --gate) GATE="$2"; shift 2 ;;
        --outdir) OUTDIR="$2"; shift 2 ;;
        *) echo "unknown flag: $1" >&2; exit 2 ;;
    esac
done

if [[ "${SKIP_BUILD}" -eq 0 ]]; then
    echo "== bench_all: build =="
    cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release
    cmake --build "${BUILD_DIR}" -j"$(nproc)" --target \
        secemb-bench-all micro_primitives srv01_serving oram01_proxy \
        oc01_paged oc02_recovery ver01_certify_cost perf01_xcheck
fi

ARGS=(--outdir "${OUTDIR}" --gate "${GATE}")
if [[ -f "${BASELINE}" ]]; then
    echo "== bench_all: gating against ${BASELINE} (gate ${GATE}) =="
    ARGS+=(--baseline "${BASELINE}")
else
    echo "== bench_all: no baseline at ${BASELINE}; recording only =="
fi

"${BUILD_DIR}/bench/secemb-bench-all" "${QUICK[@]+"${QUICK[@]}"}" \
    "${ARGS[@]}"
echo "bench_all: summary at ${OUTDIR}/BENCH_summary.json"
