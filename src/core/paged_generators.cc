#include "core/paged_generators.h"

#include <cassert>
#include <cstring>
#include <future>
#include <vector>

namespace secemb::core {

PagedScanTable::PagedScanTable(const Tensor& table,
                               const store::StoreConfig& config)
    : table_(table.data(), table.size(0), table.size(1), config)
{
}

serving::Status
PagedScanTable::Recover(int64_t rows, int64_t dim,
                        const store::StoreConfig& config,
                        std::unique_ptr<PagedScanTable>* out)
{
    std::unique_ptr<store::PagedTable> table;
    if (auto s = store::PagedTable::Recover(rows, dim, config, &table);
        !s.ok()) {
        return s;
    }
    out->reset(new PagedScanTable(std::move(table)));
    return serving::Status::Ok();
}

void
PagedScanTable::Generate(std::span<const int64_t> indices, Tensor& out)
{
    assert(out.size(0) == static_cast<int64_t>(indices.size()) &&
           out.size(1) == dim());
    store::ThrowIfError(
        table_.LookupBatch(indices, out.data(), nthreads_));
}

void
PagedScanTable::GeneratePooled(std::span<const int64_t> indices,
                               std::span<const int64_t> offsets,
                               Tensor& out)
{
    assert(out.size(0) == static_cast<int64_t>(offsets.size()) - 1 &&
           out.size(1) == dim());
    store::ThrowIfError(
        table_.LookupPooled(indices, offsets, out.data(), nthreads_));
}

RawOramTable::RawOramTable(const Tensor& table, Rng& rng,
                           const store::StoreConfig& store_config,
                           const store::RawOramConfig& oram_config)
    : rows_(table.size(0)), dim_(table.size(1))
{
    const int64_t pages = store::RawOram::PagesNeeded(
        rows_, dim_, store_config.page_bytes);
    std::unique_ptr<store::PageCache> cache;
    store::ThrowIfError(
        store::MakePageCache(store_config, pages, &cache));
    oram_ = std::make_unique<store::RawOram>(rows_, dim_, std::move(cache),
                                             rng, oram_config);
    // Model weights are public: bit-cast the float rows to words and load
    // them through the non-oblivious bulk path.
    static_assert(sizeof(float) == sizeof(uint32_t));
    std::vector<uint32_t> words(static_cast<size_t>(rows_ * dim_));
    std::memcpy(words.data(), table.data(), words.size() * sizeof(float));
    store::ThrowIfError(oram_->BulkLoad(words));
}

serving::Status
RawOramTable::Recover(int64_t rows, int64_t dim, Rng& rng,
                      const store::StoreConfig& store_config,
                      const store::RawOramConfig& oram_config,
                      std::unique_ptr<RawOramTable>* out)
{
    int64_t pages = 0;
    try {
        pages = store::RawOram::PagesNeeded(rows, dim,
                                            store_config.page_bytes);
    } catch (const store::StoreError& e) {
        return e.status();
    }
    store::StoreConfig open = store_config;
    open.create = false;  // reattach; the header validates geometry
    std::unique_ptr<store::PageCache> cache;
    if (auto s = store::MakePageCache(open, pages, &cache); !s.ok()) {
        return s;
    }
    std::unique_ptr<store::RawOram> oram;
    if (auto s = store::RawOram::Recover(rows, dim, std::move(cache), rng,
                                         oram_config, &oram);
        !s.ok()) {
        return s;
    }
    out->reset(new RawOramTable(rows, dim, std::move(oram)));
    return serving::Status::Ok();
}

void
RawOramTable::Generate(std::span<const int64_t> indices, Tensor& out)
{
    assert(out.size(0) == static_cast<int64_t>(indices.size()) &&
           out.size(1) == dim_);
    std::vector<uint32_t> block(static_cast<size_t>(dim_));
    for (size_t i = 0; i < indices.size(); ++i) {
        store::ThrowIfError(oram_->Read(indices[i], block));
        std::memcpy(out.data() + static_cast<int64_t>(i) * dim_,
                    block.data(), block.size() * sizeof(uint32_t));
    }
}

ProxiedRawOramTable::ProxiedRawOramTable(
    const Tensor& table, Rng& rng,
    const store::StoreConfig& store_config,
    const store::RawOramConfig& oram_config,
    const oram::ProxyConfig& proxy_config)
    : rows_(table.size(0)), dim_(table.size(1))
{
    const int64_t pages = store::RawOram::PagesNeeded(
        rows_, dim_, store_config.page_bytes);
    std::unique_ptr<store::PageCache> cache;
    store::ThrowIfError(
        store::MakePageCache(store_config, pages, &cache));
    oram_ = std::make_unique<store::RawOram>(rows_, dim_, std::move(cache),
                                             rng, oram_config);
    static_assert(sizeof(float) == sizeof(uint32_t));
    std::vector<uint32_t> words(static_cast<size_t>(rows_ * dim_));
    std::memcpy(words.data(), table.data(), words.size() * sizeof(float));
    store::ThrowIfError(oram_->BulkLoad(words));
    // The conductor thread is the only caller of the backend, so the
    // (thread-compatible) RAW ORAM needs no locking.
    proxy_ = std::make_unique<oram::OramProxy>(
        [this](int64_t id, std::vector<uint32_t>& out) {
            store::ThrowIfError(oram_->Read(id, out));
        },
        rows_, dim_, rng.Next(), proxy_config);
}

void
ProxiedRawOramTable::Generate(std::span<const int64_t> indices,
                              Tensor& out)
{
    assert(out.size(0) == static_cast<int64_t>(indices.size()) &&
           out.size(1) == dim_);
    std::vector<std::future<std::vector<uint32_t>>> futures;
    futures.reserve(indices.size());
    for (const int64_t id : indices) {
        futures.push_back(proxy_->SubmitRead(id));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
        const std::vector<uint32_t> block = futures[i].get();
        std::memcpy(out.data() + static_cast<int64_t>(i) * dim_,
                    block.data(), block.size() * sizeof(uint32_t));
    }
}

serving::Status
ProxiedRawOramTable::SyncStorage()
{
    proxy_->Flush();
    return oram_->Sync();
}

serving::Status
ProxiedRawOramTable::CheckpointStorage()
{
    // The conductor must be idle while the checkpoint serializes the
    // client state; Flush() drains the queue and parks it.
    proxy_->Flush();
    return oram_->Checkpoint();
}

}  // namespace secemb::core
