#pragma once

/**
 * @file
 * DHE as a secure embedding generator (paper Section IV-A3): embeddings
 * are *computed* from the id by hashing + FC decoding, so the memory
 * access pattern is identical for every index.
 */

#include <memory>

#include "core/embedding_generator.h"
#include "dhe/dhe.h"

namespace secemb::core {

/** Inference adapter around a (trained) DheEmbedding. */
class DheGenerator : public EmbeddingGenerator
{
  public:
    /**
     * @param dhe trained DHE; shared so hybrid deployments can also
     *        materialise tables from the same instance
     * @param num_rows cardinality of the feature this DHE serves (public
     *        metadata used by the hybrid planner; DHE itself accepts any id)
     */
    DheGenerator(std::shared_ptr<dhe::DheEmbedding> dhe, int64_t num_rows);

    void Generate(std::span<const int64_t> indices, Tensor& out) override;
    int64_t dim() const override { return dhe_->out_dim(); }
    int64_t num_rows() const override { return num_rows_; }
    void set_recorder(sidechannel::TraceRecorder* r) override
    {
        recorder_ = r;
    }

    /** Virtual base address of the DHE parameter region in traces. */
    uint64_t trace_base() const { return trace_base_; }
    int64_t MemoryFootprintBytes() const override
    {
        return dhe_->ParamBytes();
    }
    std::string_view name() const override { return "DHE"; }
    bool IsOblivious() const override { return true; }
    void set_nthreads(int nthreads) override
    {
        dhe_->set_nthreads(nthreads);
    }
    void set_precision(kernels::Dtype dtype) override
    {
        dhe_->set_dtype(dtype);
    }

    dhe::DheEmbedding& dhe() { return *dhe_; }

  private:
    std::shared_ptr<dhe::DheEmbedding> dhe_;
    int64_t num_rows_;
    sidechannel::TraceRecorder* recorder_ = nullptr;
    uint64_t trace_base_;
};

}  // namespace secemb::core
