#pragma once

/**
 * @file
 * Storage-based embedding generators: non-secure lookup, oblivious linear
 * scan, and ORAM-protected tables.
 */

#include <memory>

#include "core/embedding_generator.h"
#include "oram/proxy.h"
#include "oram/tree_oram.h"

namespace secemb::core {

/**
 * Non-secure embedding table gather — the paper's "Index Lookup" baseline
 * and the victim of the Fig. 3 attack: it touches exactly the row named by
 * each (secret) index.
 */
class TableLookup : public EmbeddingGenerator
{
  public:
    /** @param table (rows x dim) trained embedding table; copied in. */
    explicit TableLookup(Tensor table);

    void Generate(std::span<const int64_t> indices, Tensor& out) override;
    int64_t dim() const override { return table_.size(1); }
    int64_t num_rows() const override { return table_.size(0); }
    int64_t MemoryFootprintBytes() const override
    {
        return table_.SizeBytes();
    }
    std::string_view name() const override { return "Index Lookup"; }
    bool IsOblivious() const override { return false; }
    void set_recorder(sidechannel::TraceRecorder* r) override
    {
        recorder_ = r;
    }

    /** Virtual base address of the table (attack demos need it). */
    uint64_t trace_base() const { return trace_base_; }
    const Tensor& table() const { return table_; }

  private:
    Tensor table_;
    sidechannel::TraceRecorder* recorder_ = nullptr;
    uint64_t trace_base_;
};

/**
 * Oblivious linear scan: every query reads the entire table and blends out
 * the requested row branchlessly (paper Section V-A2). O(n) per query but
 * unbeatable for small tables.
 */
class LinearScanTable : public EmbeddingGenerator
{
  public:
    explicit LinearScanTable(Tensor table);

    void Generate(std::span<const int64_t> indices, Tensor& out) override;
    void GeneratePooled(std::span<const int64_t> indices,
                        std::span<const int64_t> offsets,
                        Tensor& out) override;
    int64_t dim() const override { return table_.size(1); }
    int64_t num_rows() const override { return table_.size(0); }
    int64_t MemoryFootprintBytes() const override
    {
        return table_.SizeBytes();
    }
    std::string_view name() const override { return "Linear Scan"; }
    bool IsOblivious() const override { return true; }
    void set_nthreads(int nthreads) override { nthreads_ = nthreads; }
    void set_recorder(sidechannel::TraceRecorder* r) override
    {
        recorder_ = r;
    }

    uint64_t trace_base() const { return trace_base_; }

  private:
    Tensor table_;
    int nthreads_ = 1;
    sidechannel::TraceRecorder* recorder_ = nullptr;
    uint64_t trace_base_;
};

/**
 * Embedding table stored in a Path or Circuit ORAM (paper Section V-A1).
 * Batch entries are processed sequentially: the controller state must be
 * updated between accesses (the scaling weakness Fig. 12 exposes).
 */
class OramTable : public EmbeddingGenerator
{
  public:
    /**
     * @param table (rows x dim) trained table, bulk-loaded into the tree
     * @param kind Path or Circuit
     * @param rng leaf randomness
     * @param params optional overrides; defaults follow the paper
     */
    OramTable(const Tensor& table, oram::OramKind kind, Rng& rng,
              const oram::OramParams* params = nullptr);

    void Generate(std::span<const int64_t> indices, Tensor& out) override;
    int64_t dim() const override { return dim_; }
    int64_t num_rows() const override { return rows_; }
    int64_t MemoryFootprintBytes() const override
    {
        return oram_->MemoryFootprintBytes();
    }
    std::string_view name() const override
    {
        return oram_->kind() == oram::OramKind::kPath ? "Path ORAM"
                                                      : "Circuit ORAM";
    }
    bool IsOblivious() const override { return true; }

    oram::TreeOram& oram() { return *oram_; }

  private:
    int64_t rows_;
    int64_t dim_;
    std::unique_ptr<oram::TreeOram> oram_;
};

/**
 * Embedding table behind the asynchronous ORAM proxy (src/oram/proxy):
 * batch entries are submitted to the proxy's request queue, duplicates
 * coalesce into one physical access per window, and eviction work overlaps
 * the next access on pool threads — the concurrent answer to the
 * sequential-controller weakness OramTable documents.
 */
class ProxiedOramTable : public EmbeddingGenerator
{
  public:
    /**
     * @param table (rows x dim) trained table, bulk-loaded into the tree
     * @param kind Path or Circuit (Circuit serves via the serial fallback)
     * @param rng leaf randomness
     * @param params optional ORAM overrides; defaults follow the paper
     * @param config proxy tunables (window, threads, queue, flight sink)
     */
    ProxiedOramTable(const Tensor& table, oram::OramKind kind, Rng& rng,
                     const oram::OramParams* params = nullptr,
                     const oram::ProxyConfig& config = {});

    void Generate(std::span<const int64_t> indices, Tensor& out) override;
    int64_t dim() const override { return dim_; }
    int64_t num_rows() const override { return rows_; }
    int64_t MemoryFootprintBytes() const override
    {
        return proxy_->oram().MemoryFootprintBytes();
    }
    std::string_view name() const override
    {
        return proxy_->oram().kind() == oram::OramKind::kPath
                   ? "Path ORAM (proxy)"
                   : "Circuit ORAM (proxy)";
    }
    bool IsOblivious() const override { return true; }
    void set_nthreads(int nthreads) override
    {
        proxy_->set_nthreads(nthreads);
    }

    /** Route the proxy's lifecycle hops into a serving flight recorder. */
    void set_flight(serving::FlightRecorder* flight)
    {
        proxy_->set_flight(flight);
    }

    oram::OramProxy& proxy() { return *proxy_; }

  private:
    int64_t rows_;
    int64_t dim_;
    std::unique_ptr<oram::OramProxy> proxy_;
};

}  // namespace secemb::core
