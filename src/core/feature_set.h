#pragma once

/**
 * @file
 * FeatureSet: the multi-feature embedding layer.
 *
 * A DLRM has tens to hundreds of sparse features, each with its own
 * cardinality and (under the hybrid scheme) its own technique. FeatureSet
 * bundles the per-feature generators behind one object: batched
 * generation across features, pooled (multi-hot) input support, aggregate
 * footprint/obliviousness reporting, reconfiguration when the execution
 * configuration changes (Algorithm 3 applied set-wide), and persistence
 * of trained hybrid deployments.
 */

#include <memory>
#include <string>
#include <vector>

#include "core/embedding_generator.h"
#include "core/factory.h"
#include "core/hybrid.h"

namespace secemb::core {

/** An ordered collection of per-feature embedding generators. */
class FeatureSet
{
  public:
    FeatureSet() = default;

    /** Append a feature (takes ownership). */
    void Add(std::unique_ptr<EmbeddingGenerator> generator);

    /**
     * Build a homogeneous set: one generator of `kind` per entry of
     * table_sizes, all with dimension `dim`.
     */
    static FeatureSet Homogeneous(GenKind kind,
                                  const std::vector<int64_t>& table_sizes,
                                  int64_t dim, Rng& rng,
                                  const GeneratorOptions& options = {});

    /**
     * Build the paper's hybrid deployment: every feature is a
     * HybridGenerator over a shared-config DHE, allocated by the
     * profiled thresholds for (batch_size, nthreads).
     */
    static FeatureSet Hybrid(const std::vector<int64_t>& table_sizes,
                             int64_t dim, bool varied,
                             const ThresholdTable& thresholds,
                             int batch_size, int nthreads, Rng& rng);

    /**
     * Generate embeddings for every feature: indices[f] are the batch
     * indices of feature f; returns one (batch x dim) tensor per feature.
     */
    std::vector<Tensor> Generate(
        const std::vector<std::vector<int64_t>>& indices);

    /**
     * Pooled variant: per feature, a flat index list plus bag offsets
     * (see EmbeddingGenerator::GeneratePooled).
     */
    std::vector<Tensor> GeneratePooled(
        const std::vector<std::vector<int64_t>>& indices,
        const std::vector<std::vector<int64_t>>& offsets);

    /** Re-run the hybrid allocation for a new execution configuration
     * (no-op for non-hybrid features). */
    void Reconfigure(const ThresholdTable& thresholds, int batch_size,
                     int nthreads);

    void set_nthreads(int nthreads);
    void set_recorder(sidechannel::TraceRecorder* recorder);

    int64_t size() const
    {
        return static_cast<int64_t>(generators_.size());
    }
    EmbeddingGenerator& feature(int64_t f)
    {
        return *generators_[static_cast<size_t>(f)];
    }

    /** Sum of per-feature footprints. */
    int64_t MemoryFootprintBytes() const;

    /** True iff every feature's generator is oblivious. */
    bool IsOblivious() const;

    /** Count of features currently served by each technique name. */
    std::vector<std::pair<std::string, int>> TechniqueCensus() const;

    /** Move the generators out (e.g. into a SecureDlrm). */
    std::vector<std::unique_ptr<EmbeddingGenerator>> TakeGenerators();

  private:
    std::vector<std::unique_ptr<EmbeddingGenerator>> generators_;
};

}  // namespace secemb::core
