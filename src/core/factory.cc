#include "core/factory.h"

#include <cassert>
#include <cmath>

#include "core/paged_generators.h"
#include "core/table_generators.h"

namespace secemb::core {

std::string_view
GenKindName(GenKind kind)
{
    switch (kind) {
      case GenKind::kIndexLookup: return "Index Lookup (non-secure)";
      case GenKind::kLinearScan: return "Linear Scan";
      case GenKind::kPathOram: return "Path ORAM";
      case GenKind::kCircuitOram: return "Circuit ORAM";
      case GenKind::kDheUniform: return "DHE Uniform";
      case GenKind::kDheVaried: return "DHE Varied";
      case GenKind::kHybridUniform: return "Hybrid Uniform";
      case GenKind::kHybridVaried: return "Hybrid Varied";
      case GenKind::kProxyOram: return "Path ORAM (proxy)";
      case GenKind::kPagedScan: return "Paged Linear Scan";
      case GenKind::kRawOram: return "RAW ORAM";
    }
    return "?";
}

bool
GenKindIsSecure(GenKind kind)
{
    return kind != GenKind::kIndexLookup;
}

namespace {

Tensor
RandomTable(int64_t rows, int64_t dim, Rng& rng)
{
    return Tensor::Randn({rows, dim}, rng,
                         1.0f / std::sqrt(static_cast<float>(dim)));
}

std::shared_ptr<dhe::DheEmbedding>
MakeDhe(bool varied, int64_t table_size, int64_t dim, Rng& rng,
        const GeneratorOptions& opt)
{
    if (opt.dhe) return opt.dhe;
    const dhe::DheConfig cfg = varied
                                   ? dhe::DheConfig::Varied(table_size, dim)
                                   : dhe::DheConfig::Uniform(dim);
    return std::make_shared<dhe::DheEmbedding>(cfg, rng, opt.nthreads);
}

}  // namespace

std::unique_ptr<EmbeddingGenerator>
MakeGenerator(GenKind kind, int64_t table_size, int64_t dim, Rng& rng,
              const GeneratorOptions& opt)
{
    assert(table_size > 0 && dim > 0);
    auto table = [&]() {
        return opt.table ? *opt.table : RandomTable(table_size, dim, rng);
    };

    switch (kind) {
      case GenKind::kIndexLookup:
        return std::make_unique<TableLookup>(table());
      case GenKind::kLinearScan: {
        auto g = std::make_unique<LinearScanTable>(table());
        g->set_nthreads(opt.nthreads);
        return g;
      }
      case GenKind::kPathOram:
        return std::make_unique<OramTable>(
            table(), oram::OramKind::kPath, rng, opt.oram_params);
      case GenKind::kCircuitOram:
        return std::make_unique<OramTable>(
            table(), oram::OramKind::kCircuit, rng, opt.oram_params);
      case GenKind::kProxyOram: {
        oram::ProxyConfig pc;
        pc.nthreads = opt.nthreads;
        return std::make_unique<ProxiedOramTable>(
            table(), oram::OramKind::kPath, rng, opt.oram_params, pc);
      }
      case GenKind::kPagedScan: {
        const store::StoreConfig sc =
            opt.store ? *opt.store : store::StoreConfig{};
        if (opt.recover_storage) {
            std::unique_ptr<PagedScanTable> g;
            store::ThrowIfError(
                PagedScanTable::Recover(table_size, dim, sc, &g));
            g->set_nthreads(opt.nthreads);
            return g;
        }
        const Tensor t = table();
        auto g = std::make_unique<PagedScanTable>(t, sc);
        g->set_nthreads(opt.nthreads);
        return g;
      }
      case GenKind::kRawOram: {
        const store::StoreConfig sc =
            opt.store ? *opt.store : store::StoreConfig{};
        store::RawOramConfig rc;
        if (opt.oram_params != nullptr) rc.posmap = *opt.oram_params;
        if (opt.durability != nullptr) {
            rc.durability = *opt.durability;
            // Checkpoints serialize the leaf table directly, which
            // needs the flat (non-recursive) representation.
            rc.posmap.enable_recursion = false;
        }
        if (opt.recover_storage) {
            std::unique_ptr<RawOramTable> g;
            store::ThrowIfError(
                RawOramTable::Recover(table_size, dim, rng, sc, rc, &g));
            return g;
        }
        const Tensor t = table();
        return std::make_unique<RawOramTable>(t, rng, sc, rc);
      }
      case GenKind::kDheUniform: {
        auto g = std::make_unique<DheGenerator>(
            MakeDhe(false, table_size, dim, rng, opt), table_size);
        g->set_precision(opt.precision);
        return g;
      }
      case GenKind::kDheVaried: {
        auto g = std::make_unique<DheGenerator>(
            MakeDhe(true, table_size, dim, rng, opt), table_size);
        g->set_precision(opt.precision);
        return g;
      }
      case GenKind::kHybridUniform:
      case GenKind::kHybridVaried: {
        static const ThresholdTable kDefault;  // empty -> 4096 fallback
        const ThresholdTable& thr =
            opt.thresholds ? *opt.thresholds : kDefault;
        auto g = std::make_unique<HybridGenerator>(
            MakeDhe(kind == GenKind::kHybridVaried, table_size, dim, rng,
                    opt),
            table_size, thr, opt.batch_size, opt.nthreads);
        g->set_precision(opt.precision);
        return g;
      }
    }
    return nullptr;
}

}  // namespace secemb::core
