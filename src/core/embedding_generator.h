#pragma once

/**
 * @file
 * The library's central abstraction: embedding generation for categorical
 * features, with or without side-channel protection.
 *
 * Implementations (paper Section IV-A):
 *   - TableLookup      : non-secure gather (the vulnerable baseline)
 *   - LinearScanTable  : oblivious O(n) scan per query
 *   - OramTable        : table behind a Path / Circuit ORAM controller
 *   - DheGenerator     : Deep Hash Embedding (compute-only, oblivious)
 *   - HybridGenerator  : per-feature linear-scan/DHE choice (Section IV-C)
 */

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "serving/status.h"
#include "sidechannel/trace.h"
#include "tensor/kernels/kernels.h"
#include "tensor/tensor.h"

namespace secemb::core {

/**
 * Generates embedding vectors for batches of categorical indices.
 *
 * The index values are the secret; the batch size, embedding dimension,
 * and table cardinality are public (paper threat model, Section III).
 */
class EmbeddingGenerator
{
  public:
    virtual ~EmbeddingGenerator() = default;

    /**
     * Fill out (indices.size() x dim()) with the embeddings of `indices`.
     * All indices must lie in [0, num_rows()).
     */
    virtual void Generate(std::span<const int64_t> indices, Tensor& out) = 0;

    /** Returning convenience wrapper. */
    Tensor
    GenerateBatch(std::span<const int64_t> indices)
    {
        Tensor out({static_cast<int64_t>(indices.size()), dim()});
        Generate(indices, out);
        return out;
    }

    /**
     * Pooled (multi-hot) generation: sample i owns the index bag
     * [offsets[i], offsets[i+1]) within `indices` and receives the sum of
     * its embeddings — the DLRM sum-pooling case where one feature holds
     * several ids per request. out is (offsets.size()-1 x dim()).
     *
     * Bag lengths are public in the threat model (the number of sparse
     * accesses is not hidden); the ids themselves remain protected by
     * the underlying technique.
     */
    virtual void GeneratePooled(std::span<const int64_t> indices,
                                std::span<const int64_t> offsets,
                                Tensor& out);

    /** Embedding dimension. */
    virtual int64_t dim() const = 0;

    /** Cardinality of the categorical feature (public). */
    virtual int64_t num_rows() const = 0;

    /** Model-state bytes attributable to this generator. */
    virtual int64_t MemoryFootprintBytes() const = 0;

    /** Technique name as used in the paper's tables. */
    virtual std::string_view name() const = 0;

    /** True if the access pattern is independent of the indices. */
    virtual bool IsOblivious() const = 0;

    /** Worker threads used for a batch (default: single-threaded). */
    virtual void set_nthreads(int nthreads) { (void)nthreads; }

    /**
     * Select the GEMM weight precision for compute-based generators
     * (DHE decoder, hybrid's DHE side): f32 / bf16 / int8
     * quantize-on-pack. Table-based generators have no GEMM and ignore
     * it. Precision changes arithmetic only — the memory access pattern
     * (and hence the canonical trace) is unchanged at every setting.
     */
    virtual void set_precision(kernels::Dtype dtype) { (void)dtype; }

    /** Attach/detach a memory trace recorder (nullptr to detach). */
    virtual void set_recorder(sidechannel::TraceRecorder* recorder)
    {
        (void)recorder;
    }

    /**
     * Flush any out-of-core storage durably (dirty page write-back +
     * store sync). In-RAM generators have nothing to flush; the paged
     * generators override. serving::Server calls this on shutdown.
     */
    virtual serving::Status SyncStorage() { return serving::Status::Ok(); }

    /**
     * Seal a durable checkpoint of any crash-consistent storage this
     * generator owns (RAW ORAM checkpoint + journal reset; a paged scan
     * table syncs its pages). No-op Ok for generators without durable
     * state. serving::Server calls this on its background checkpoint
     * interval.
     */
    virtual serving::Status CheckpointStorage()
    {
        return serving::Status::Ok();
    }
};

}  // namespace secemb::core
