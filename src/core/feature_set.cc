#include "core/feature_set.h"

#include <algorithm>
#include <cassert>

namespace secemb::core {

void
FeatureSet::Add(std::unique_ptr<EmbeddingGenerator> generator)
{
    assert(generator != nullptr);
    generators_.push_back(std::move(generator));
}

FeatureSet
FeatureSet::Homogeneous(GenKind kind,
                        const std::vector<int64_t>& table_sizes,
                        int64_t dim, Rng& rng,
                        const GeneratorOptions& options)
{
    FeatureSet set;
    for (int64_t size : table_sizes) {
        set.Add(MakeGenerator(kind, size, dim, rng, options));
    }
    return set;
}

FeatureSet
FeatureSet::Hybrid(const std::vector<int64_t>& table_sizes, int64_t dim,
                   bool varied, const ThresholdTable& thresholds,
                   int batch_size, int nthreads, Rng& rng)
{
    FeatureSet set;
    for (int64_t size : table_sizes) {
        const dhe::DheConfig cfg =
            varied ? dhe::DheConfig::Varied(size, dim)
                   : dhe::DheConfig::Uniform(dim);
        auto dhe = std::make_shared<dhe::DheEmbedding>(cfg, rng,
                                                       nthreads);
        set.Add(std::make_unique<HybridGenerator>(
            std::move(dhe), size, thresholds, batch_size, nthreads));
    }
    return set;
}

std::vector<Tensor>
FeatureSet::Generate(const std::vector<std::vector<int64_t>>& indices)
{
    assert(static_cast<int64_t>(indices.size()) == size());
    std::vector<Tensor> out;
    out.reserve(indices.size());
    for (size_t f = 0; f < generators_.size(); ++f) {
        out.push_back(generators_[f]->GenerateBatch(indices[f]));
    }
    return out;
}

std::vector<Tensor>
FeatureSet::GeneratePooled(
    const std::vector<std::vector<int64_t>>& indices,
    const std::vector<std::vector<int64_t>>& offsets)
{
    assert(static_cast<int64_t>(indices.size()) == size());
    assert(indices.size() == offsets.size());
    std::vector<Tensor> out;
    out.reserve(indices.size());
    for (size_t f = 0; f < generators_.size(); ++f) {
        const int64_t bags =
            static_cast<int64_t>(offsets[f].size()) - 1;
        Tensor t({bags, generators_[f]->dim()});
        generators_[f]->GeneratePooled(indices[f], offsets[f], t);
        out.push_back(std::move(t));
    }
    return out;
}

void
FeatureSet::Reconfigure(const ThresholdTable& thresholds, int batch_size,
                        int nthreads)
{
    for (auto& g : generators_) {
        if (auto* hybrid = dynamic_cast<HybridGenerator*>(g.get())) {
            hybrid->Reconfigure(thresholds, batch_size, nthreads);
        } else {
            g->set_nthreads(nthreads);
        }
    }
}

void
FeatureSet::set_nthreads(int nthreads)
{
    for (auto& g : generators_) g->set_nthreads(nthreads);
}

void
FeatureSet::set_recorder(sidechannel::TraceRecorder* recorder)
{
    for (auto& g : generators_) g->set_recorder(recorder);
}

int64_t
FeatureSet::MemoryFootprintBytes() const
{
    int64_t bytes = 0;
    for (const auto& g : generators_) bytes += g->MemoryFootprintBytes();
    return bytes;
}

bool
FeatureSet::IsOblivious() const
{
    return std::all_of(generators_.begin(), generators_.end(),
                       [](const auto& g) { return g->IsOblivious(); });
}

std::vector<std::pair<std::string, int>>
FeatureSet::TechniqueCensus() const
{
    std::vector<std::pair<std::string, int>> census;
    for (const auto& g : generators_) {
        const std::string name(g->name());
        auto it = std::find_if(census.begin(), census.end(),
                               [&](const auto& p) {
                                   return p.first == name;
                               });
        if (it == census.end()) {
            census.emplace_back(name, 1);
        } else {
            ++it->second;
        }
    }
    return census;
}

std::vector<std::unique_ptr<EmbeddingGenerator>>
FeatureSet::TakeGenerators()
{
    return std::move(generators_);
}

}  // namespace secemb::core
