#pragma once

/**
 * @file
 * The paper's hybrid scheme for DLRM (Section IV-C, Algorithms 2 & 3):
 * an offline-profiled threshold table maps each execution configuration
 * (batch size, thread count) to the table size at which DHE overtakes
 * linear scan; at deployment each sparse feature is served by whichever
 * technique its table size selects.
 *
 * Security note (Section V-B): the choice depends only on public
 * quantities — table size and execution configuration — never on input
 * values, so the hybrid scheme leaks nothing beyond its constituents.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dhe_generator.h"
#include "core/embedding_generator.h"
#include "core/table_generators.h"

namespace secemb::core {

/** The two techniques the DLRM hybrid chooses between. */
enum class Technique
{
    kLinearScan,
    kDhe,
};

/** One profiled crossover point. */
struct ThresholdEntry
{
    int batch_size;
    int nthreads;
    int64_t table_size_threshold;  ///< scan below, DHE at/above
};

/**
 * Offline-profiled thresholds indexed by execution configuration
 * (the "profiled database" of Section IV-C1).
 */
class ThresholdTable
{
  public:
    /**
     * Append a profiled entry. Throws std::invalid_argument unless
     * batch_size > 0, nthreads > 0, and table_size_threshold >= 0:
     * Lookup takes log2 of configuration ratios, and a non-positive
     * entry would yield NaN distances that never compare less-than —
     * silently disabling the whole table.
     */
    void Add(const ThresholdEntry& entry);

    /**
     * Threshold for the given configuration; picks the nearest profiled
     * configuration (log-distance in batch, absolute in threads) when the
     * exact one is missing. Returns fallback if empty.
     */
    int64_t Lookup(int batch_size, int nthreads,
                   int64_t fallback = 4096) const;

    const std::vector<ThresholdEntry>& entries() const { return entries_; }
    bool empty() const { return entries_.empty(); }

  private:
    std::vector<ThresholdEntry> entries_;
};

/**
 * Algorithm 3's online decision for one feature.
 *
 * Tie-break: a table whose size is exactly the profiled threshold is
 * served by DHE. The threshold is defined as the smallest table size at
 * which DHE is measured to be at least as fast as the scan, so the
 * boundary belongs to the DHE side (ThresholdEntry: "scan below, DHE
 * at/above").
 */
Technique ChooseTechnique(int64_t table_size, int64_t threshold);

/**
 * Persist a profiled threshold database (Algorithm 2's offline product:
 * "done once per system for each embedding dimension"). Plain text, one
 * "batch threads threshold" triple per line.
 */
void SaveThresholds(const ThresholdTable& table, const std::string& path);

/** Load a threshold database written by SaveThresholds. Throws
 * std::runtime_error on IO or parse failure. */
ThresholdTable LoadThresholds(const std::string& path);

/**
 * Hybrid per-feature generator.
 *
 * Owns the trained DHE; when the current execution configuration selects
 * linear scan, the table representation is materialised once from the DHE
 * outputs (Algorithm 2, offline step 2) and reused.
 */
class HybridGenerator : public EmbeddingGenerator
{
  public:
    /**
     * @param dhe trained DHE for this feature
     * @param table_size feature cardinality
     * @param thresholds profiled threshold database
     * @param batch_size / nthreads current execution configuration
     */
    HybridGenerator(std::shared_ptr<dhe::DheEmbedding> dhe,
                    int64_t table_size, const ThresholdTable& thresholds,
                    int batch_size, int nthreads);

    void Generate(std::span<const int64_t> indices, Tensor& out) override;
    int64_t dim() const override;
    int64_t num_rows() const override { return table_size_; }
    int64_t MemoryFootprintBytes() const override;
    std::string_view name() const override;
    bool IsOblivious() const override { return true; }
    void set_nthreads(int nthreads) override;
    /** Forwarded to both constituents (whichever is active records). */
    void set_recorder(sidechannel::TraceRecorder* recorder) override;
    /** Forwarded to the DHE decoder; the scan side has no GEMM. */
    void set_precision(kernels::Dtype dtype) override;

    /** Re-run the online decision for a new execution configuration. */
    void Reconfigure(const ThresholdTable& thresholds, int batch_size,
                     int nthreads);

    Technique active_technique() const { return technique_; }

  private:
    std::shared_ptr<dhe::DheEmbedding> dhe_;
    int64_t table_size_;
    Technique technique_;
    std::unique_ptr<DheGenerator> dhe_gen_;
    std::unique_ptr<LinearScanTable> scan_;  ///< lazily materialised
    int nthreads_ = 1;
    sidechannel::TraceRecorder* recorder_ = nullptr;

    EmbeddingGenerator& Active();
};

}  // namespace secemb::core
