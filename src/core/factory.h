#pragma once

/**
 * @file
 * Convenience factory for building any of the paper's embedding
 * generation schemes for a feature of a given size — used by benchmarks,
 * examples, and the secure-model builders.
 */

#include <memory>
#include <string_view>

#include "core/embedding_generator.h"
#include "core/hybrid.h"
#include "oram/params.h"
#include "store/backing_store.h"
#include "store/durable.h"
#include "tensor/rng.h"

namespace secemb::core {

/** Every scheme evaluated in the paper's tables. */
enum class GenKind
{
    kIndexLookup,   ///< non-secure baseline
    kLinearScan,
    kPathOram,
    kCircuitOram,
    kDheUniform,
    kDheVaried,
    kHybridUniform,
    kHybridVaried,
    kProxyOram,     ///< Path ORAM behind the async coalescing proxy
    kPagedScan,     ///< out-of-core linear scan (src/store paged table)
    kRawOram,       ///< page-optimized RAW ORAM over a backing store
};

/** Paper-style display name ("Index Lookup (non-secure)", ...). */
std::string_view GenKindName(GenKind kind);

/** True for the schemes with input-independent access patterns. */
bool GenKindIsSecure(GenKind kind);

/** Options for MakeGenerator. */
struct GeneratorOptions
{
    /** Execution configuration, consumed by the hybrid planner. */
    int batch_size = 32;
    int nthreads = 1;
    /**
     * GEMM weight precision for the compute-based kinds (DHE decoder,
     * hybrid's DHE side); table kinds have no GEMM and ignore it.
     * Defaults to the process-wide kernels::ActiveDtype()
     * (SECEMB_PRECISION env var, f32 when unset).
     */
    kernels::Dtype precision = kernels::ActiveDtype();
    /** Profiled thresholds for hybrid kinds (nullptr: built-in default). */
    const ThresholdTable* thresholds = nullptr;
    /** ORAM overrides for the ORAM kinds (nullptr: paper defaults). */
    const oram::OramParams* oram_params = nullptr;
    /** Backing-store configuration for the out-of-core kinds (nullptr:
     *  in-memory store with StoreConfig defaults). */
    const store::StoreConfig* store = nullptr;
    /** Crash-consistency configuration for kRawOram (nullptr: off).
     *  Requires a file-backed `store`; recursion is disabled on the
     *  position map automatically (checkpoints snapshot a flat map). */
    const store::DurabilityConfig* durability = nullptr;
    /**
     * Reattach to existing on-disk state instead of creating it: the
     * paged kinds open their stores with create=false and, for durable
     * kRawOram, replay checkpoint + journal (RawOram::Recover). The
     * factory throws store::StoreError with the recovery path's typed
     * status on failure — recover-before-serve must fail closed.
     */
    bool recover_storage = false;
    /**
     * Pre-trained weights. If table is non-null it seeds the table-based
     * kinds; if dhe is non-null it seeds the DHE/hybrid kinds. When null,
     * weights are randomly initialised (sufficient for latency studies).
     */
    const Tensor* table = nullptr;
    std::shared_ptr<dhe::DheEmbedding> dhe;
};

/**
 * Build a generator of the requested kind for a feature with `table_size`
 * rows and dimension `dim`.
 */
std::unique_ptr<EmbeddingGenerator> MakeGenerator(
    GenKind kind, int64_t table_size, int64_t dim, Rng& rng,
    const GeneratorOptions& options = {});

}  // namespace secemb::core
