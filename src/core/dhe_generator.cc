#include "core/dhe_generator.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace secemb::core {

DheGenerator::DheGenerator(std::shared_ptr<dhe::DheEmbedding> dhe,
                           int64_t num_rows)
    : dhe_(std::move(dhe)), num_rows_(num_rows)
{
    assert(dhe_ != nullptr);
    trace_base_ = sidechannel::ProcessAddressSpace().Reserve(
        static_cast<uint64_t>(dhe_->ParamBytes()));
}

void
DheGenerator::Generate(std::span<const int64_t> indices, Tensor& out)
{
    assert(out.size(0) == static_cast<int64_t>(indices.size()) &&
           out.size(1) == dim());
    // DHE touches its entire parameter set for every batch element,
    // whatever the ids are: one whole-region access per element at
    // whole-table granularity (matching LinearScanTable's reporting).
    if (recorder_) {
        const uint32_t bytes = static_cast<uint32_t>(
            std::min<int64_t>(dhe_->ParamBytes(), UINT32_MAX));
        for (size_t i = 0; i < indices.size(); ++i) {
            recorder_->Record(trace_base_, bytes, false);
        }
    }
    const Tensor result = dhe_->Forward(indices);
    std::memcpy(out.data(), result.data(),
                static_cast<size_t>(result.numel()) * sizeof(float));
}

}  // namespace secemb::core
