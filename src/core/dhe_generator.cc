#include "core/dhe_generator.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace secemb::core {

DheGenerator::DheGenerator(std::shared_ptr<dhe::DheEmbedding> dhe,
                           int64_t num_rows)
    : dhe_(std::move(dhe)), num_rows_(num_rows)
{
    assert(dhe_ != nullptr);
    trace_base_ = sidechannel::ProcessAddressSpace().Reserve(
        static_cast<uint64_t>(dhe_->ParamBytes()), 64, "dhe.params");
}

namespace {

/// Batch rows forwarded per decoder pass. Bounds activation memory for
/// huge batches (mirroring DheEmbedding::ToTable); within a pass the
/// batch parallelism is carried by the pool-backed GEMMs inside the FC
/// decoder (rows of the GEMM = batch elements of the chunk).
constexpr int64_t kDheForwardChunk = 4096;

}  // namespace

void
DheGenerator::Generate(std::span<const int64_t> indices, Tensor& out)
{
    const int64_t n = static_cast<int64_t>(indices.size());
    const int64_t d = dim();
    assert(out.size(0) == n && out.size(1) == d);
    // DHE touches its entire parameter set for every batch element,
    // whatever the ids are: one whole-region access per element at
    // whole-table granularity (matching LinearScanTable's reporting).
    // The chunking below is a function of the public batch size only, so
    // recording per element up front equals any per-chunk ordering.
    if (recorder_) {
        const uint32_t bytes = static_cast<uint32_t>(
            std::min<int64_t>(dhe_->ParamBytes(), UINT32_MAX));
        for (int64_t i = 0; i < n; ++i) {
            recorder_->Record(trace_base_, bytes, false);
        }
    }
    for (int64_t begin = 0; begin < n; begin += kDheForwardChunk) {
        const int64_t end = std::min(n, begin + kDheForwardChunk);
        const Tensor result = dhe_->Forward(
            {indices.data() + begin, static_cast<size_t>(end - begin)});
        std::memcpy(out.data() + begin * d, result.data(),
                    static_cast<size_t>(result.numel()) * sizeof(float));
    }
}

}  // namespace secemb::core
