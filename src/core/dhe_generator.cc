#include "core/dhe_generator.h"

#include <cassert>
#include <cstring>

namespace secemb::core {

DheGenerator::DheGenerator(std::shared_ptr<dhe::DheEmbedding> dhe,
                           int64_t num_rows)
    : dhe_(std::move(dhe)), num_rows_(num_rows)
{
    assert(dhe_ != nullptr);
}

void
DheGenerator::Generate(std::span<const int64_t> indices, Tensor& out)
{
    assert(out.size(0) == static_cast<int64_t>(indices.size()) &&
           out.size(1) == dim());
    const Tensor result = dhe_->Forward(indices);
    std::memcpy(out.data(), result.data(),
                static_cast<size_t>(result.numel()) * sizeof(float));
}

}  // namespace secemb::core
