#include "core/embedding_generator.h"

#include <cassert>

namespace secemb::core {

void
EmbeddingGenerator::GeneratePooled(std::span<const int64_t> indices,
                                   std::span<const int64_t> offsets,
                                   Tensor& out)
{
    assert(offsets.size() >= 1);
    const int64_t n = static_cast<int64_t>(offsets.size()) - 1;
    const int64_t d = dim();
    assert(out.size(0) == n && out.size(1) == d);
    assert(offsets[0] == 0 &&
           offsets[static_cast<size_t>(n)] ==
               static_cast<int64_t>(indices.size()));

    // Default: generate every bag element, then segment-sum. Each
    // element generation is oblivious per the concrete technique, and
    // the summation pattern depends only on the public bag lengths.
    Tensor all({static_cast<int64_t>(indices.size()), d});
    Generate(indices, all);
    out.Fill(0.0f);
    for (int64_t i = 0; i < n; ++i) {
        float* dst = out.data() + i * d;
        for (int64_t e = offsets[static_cast<size_t>(i)];
             e < offsets[static_cast<size_t>(i) + 1]; ++e) {
            const float* src = all.data() + e * d;
            for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
        }
    }
}

}  // namespace secemb::core
