#include "core/table_generators.h"

#include <cassert>
#include <cstring>

#include "oblivious/scan.h"
#include "oblivious/vector_scan.h"
#include "perfmon/perfmon.h"
#include "telemetry/telemetry.h"
#include "tensor/parallel.h"

namespace secemb::core {

namespace {

}  // namespace

// ---------------------------------------------------------------------------
// TableLookup
// ---------------------------------------------------------------------------

TableLookup::TableLookup(Tensor table)
    : table_(std::move(table)),
      trace_base_(sidechannel::ProcessAddressSpace().Reserve(
          static_cast<uint64_t>(table_.SizeBytes()), 64, "table.lookup"))
{
    assert(table_.dim() == 2);
}

void
TableLookup::Generate(std::span<const int64_t> indices, Tensor& out)
{
    const int64_t n = static_cast<int64_t>(indices.size());
    const int64_t d = dim();
    assert(out.size(0) == n && out.size(1) == d);
    const uint32_t row_bytes = static_cast<uint32_t>(d * 4);
    for (int64_t i = 0; i < n; ++i) {
        const int64_t idx = indices[static_cast<size_t>(i)];
        assert(idx >= 0 && idx < num_rows());
        // The secret-dependent access the attacker observes.
        if (recorder_) {
            recorder_->Record(
                trace_base_ + static_cast<uint64_t>(idx) * row_bytes,
                row_bytes, false);
        }
        std::memcpy(out.data() + i * d, table_.data() + idx * d,
                    static_cast<size_t>(d) * sizeof(float));
    }
}

// ---------------------------------------------------------------------------
// LinearScanTable
// ---------------------------------------------------------------------------

LinearScanTable::LinearScanTable(Tensor table)
    : table_(std::move(table)),
      trace_base_(sidechannel::ProcessAddressSpace().Reserve(
          static_cast<uint64_t>(table_.SizeBytes()), 64, "table.scan"))
{
    assert(table_.dim() == 2);
}

void
LinearScanTable::Generate(std::span<const int64_t> indices, Tensor& out)
{
    const int64_t n = static_cast<int64_t>(indices.size());
    const int64_t d = dim();
    const int64_t rows = num_rows();
    assert(out.size(0) == n && out.size(1) == d);
    TELEMETRY_SCOPED_COUNTERS("scan.generate");
    TELEMETRY_SCOPED_LATENCY("scan.generate.ns");

    if (recorder_ == nullptr) {
        // Untraced serving path: batch-parallel vectorised scan.
        oblivious::LinearScanLookupBatch(
            table_.flat(), rows, d, indices,
            {out.data(), static_cast<size_t>(n * d)}, nthreads_);
        return;
    }
    // Traced path: every query touches the whole table regardless of its
    // index. Each slot records into its own buffer from whichever worker
    // processes it; merging in slot order afterwards reproduces the serial
    // trace exactly, so obliviousness proofs hold under parallelism.
    sidechannel::SlotTraceRecorders slots(indices.size(), recorder_);
    ParallelFor(n, nthreads_, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
            slots.slot(static_cast<size_t>(i))
                ->Record(trace_base_,
                         static_cast<uint32_t>(table_.SizeBytes()),
                         false);
            oblivious::LinearScanLookupVec(
                table_.flat(), rows, d, indices[static_cast<size_t>(i)],
                {out.data() + i * d, static_cast<size_t>(d)});
        }
    });
    slots.MergeInto();
}

void
LinearScanTable::GeneratePooled(std::span<const int64_t> indices,
                                std::span<const int64_t> offsets,
                                Tensor& out)
{
    const int64_t n = static_cast<int64_t>(offsets.size()) - 1;
    const int64_t d = dim();
    const int64_t rows = num_rows();
    assert(out.size(0) == n && out.size(1) == d);
    TELEMETRY_SCOPED_COUNTERS("scan.generate_pooled");
    TELEMETRY_SCOPED_LATENCY("scan.generate.ns");
    // Accumulating scans: one pass over the table per bag element,
    // summing directly into the output row (no per-element buffer).
    // Trace recording follows the same per-slot merge discipline as
    // Generate: slot i records one whole-table touch per bag element,
    // merged in slot order — identical to the serial trace (bag sizes are
    // public; see EmbeddingGenerator::GeneratePooled).
    out.Fill(0.0f);
    sidechannel::SlotTraceRecorders slots(static_cast<size_t>(n),
                                          recorder_);
    ParallelFor(n, nthreads_, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
            sidechannel::TraceRecorder* slot_rec =
                slots.slot(static_cast<size_t>(i));
            for (int64_t e = offsets[static_cast<size_t>(i)];
                 e < offsets[static_cast<size_t>(i) + 1]; ++e) {
                if (slot_rec != nullptr) {
                    slot_rec->Record(
                        trace_base_,
                        static_cast<uint32_t>(table_.SizeBytes()),
                        false);
                }
                oblivious::LinearScanLookupAccumulate(
                    table_.flat(), rows, d,
                    indices[static_cast<size_t>(e)],
                    {out.data() + i * d, static_cast<size_t>(d)});
            }
        }
    });
    slots.MergeInto();
}

// ---------------------------------------------------------------------------
// OramTable
// ---------------------------------------------------------------------------

OramTable::OramTable(const Tensor& table, oram::OramKind kind, Rng& rng,
                     const oram::OramParams* params)
    : rows_(table.size(0)), dim_(table.size(1))
{
    oram_ = oram::MakeOram(kind, rows_, dim_, rng, params);
    // Embedding floats are bit-cast into the ORAM's opaque words.
    static_assert(sizeof(float) == sizeof(uint32_t));
    std::vector<uint32_t> words(static_cast<size_t>(table.numel()));
    std::memcpy(words.data(), table.data(),
                words.size() * sizeof(uint32_t));
    oram_->BulkLoad(words);
}

void
OramTable::Generate(std::span<const int64_t> indices, Tensor& out)
{
    const int64_t n = static_cast<int64_t>(indices.size());
    assert(out.size(0) == n && out.size(1) == dim_);
    std::vector<uint32_t> block(static_cast<size_t>(dim_));
    // Sequential by necessity: each access mutates the controller.
    for (int64_t i = 0; i < n; ++i) {
        oram_->Read(indices[static_cast<size_t>(i)], block);
        std::memcpy(out.data() + i * dim_, block.data(),
                    block.size() * sizeof(float));
    }
}

// ---------------------------------------------------------------------------
// ProxiedOramTable
// ---------------------------------------------------------------------------

ProxiedOramTable::ProxiedOramTable(const Tensor& table, oram::OramKind kind,
                                   Rng& rng,
                                   const oram::OramParams* params,
                                   const oram::ProxyConfig& config)
    : rows_(table.size(0)), dim_(table.size(1))
{
    auto tree = oram::MakeOram(kind, rows_, dim_, rng, params);
    static_assert(sizeof(float) == sizeof(uint32_t));
    std::vector<uint32_t> words(static_cast<size_t>(table.numel()));
    std::memcpy(words.data(), table.data(),
                words.size() * sizeof(uint32_t));
    tree->BulkLoad(words);
    proxy_ = std::make_unique<oram::OramProxy>(std::move(tree), config);
}

void
ProxiedOramTable::Generate(std::span<const int64_t> indices, Tensor& out)
{
    const int64_t n = static_cast<int64_t>(indices.size());
    assert(out.size(0) == n && out.size(1) == dim_);
    // Submit the whole batch, then collect: in-window duplicates coalesce
    // and the conductor overlaps eviction with the following accesses.
    std::vector<std::future<std::vector<uint32_t>>> futures;
    futures.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
        futures.push_back(
            proxy_->SubmitRead(indices[static_cast<size_t>(i)]));
    }
    proxy_->Flush();
    for (int64_t i = 0; i < n; ++i) {
        const std::vector<uint32_t> block =
            futures[static_cast<size_t>(i)].get();
        std::memcpy(out.data() + i * dim_, block.data(),
                    block.size() * sizeof(float));
    }
}

}  // namespace secemb::core
