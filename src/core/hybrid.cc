#include "core/hybrid.h"

#include <cassert>
#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "perfmon/perfmon.h"
#include "telemetry/telemetry.h"

namespace secemb::core {

void
ThresholdTable::Add(const ThresholdEntry& entry)
{
    // Lookup computes log2(batch/entry.batch) and log2(threads/
    // entry.threads); a non-positive stored value makes both distances
    // NaN, and NaN never compares < best_dist, so every lookup would
    // silently fall through to the fallback. Reject at insertion.
    if (entry.batch_size <= 0 || entry.nthreads <= 0) {
        throw std::invalid_argument(
            "ThresholdTable::Add: batch_size and nthreads must be "
            "positive (got batch_size=" +
            std::to_string(entry.batch_size) +
            ", nthreads=" + std::to_string(entry.nthreads) + ")");
    }
    if (entry.table_size_threshold < 0) {
        throw std::invalid_argument(
            "ThresholdTable::Add: table_size_threshold must be "
            "non-negative (got " +
            std::to_string(entry.table_size_threshold) + ")");
    }
    entries_.push_back(entry);
}

int64_t
ThresholdTable::Lookup(int batch_size, int nthreads, int64_t fallback) const
{
    if (entries_.empty()) return fallback;
    double best_dist = std::numeric_limits<double>::infinity();
    int64_t best = fallback;
    for (const auto& e : entries_) {
        const double db = std::log2(static_cast<double>(batch_size) /
                                    static_cast<double>(e.batch_size));
        const double dt = std::log2(static_cast<double>(nthreads) /
                                    static_cast<double>(e.nthreads));
        const double dist = db * db + dt * dt;
        if (dist < best_dist) {
            best_dist = dist;
            best = e.table_size_threshold;
        }
    }
    return best;
}

Technique
ChooseTechnique(int64_t table_size, int64_t threshold)
{
    // Explicit tie-break: the profiled threshold is the smallest table
    // size where DHE is at least as fast as the scan, so a table exactly
    // at the threshold takes the DHE side (>=, not >). Pinned by the
    // HybridTest.ThresholdBoundaryTieBreak regression test.
    if (table_size >= threshold) return Technique::kDhe;
    return Technique::kLinearScan;
}

void
SaveThresholds(const ThresholdTable& table, const std::string& path)
{
    std::ofstream out(path);
    if (!out) {
        throw std::runtime_error("SaveThresholds: cannot open " + path);
    }
    for (const auto& e : table.entries()) {
        out << e.batch_size << ' ' << e.nthreads << ' '
            << e.table_size_threshold << '\n';
    }
    if (!out.good()) {
        throw std::runtime_error("SaveThresholds: write failed");
    }
}

ThresholdTable
LoadThresholds(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        throw std::runtime_error("LoadThresholds: cannot open " + path);
    }
    ThresholdTable table;
    ThresholdEntry e;
    int64_t row = 0;
    while (in >> e.batch_size >> e.nthreads >> e.table_size_threshold) {
        ++row;
        try {
            table.Add(e);
        } catch (const std::invalid_argument& bad) {
            // A corrupt persisted database must fail loudly here, not as
            // NaN-distance lookups that silently return the fallback.
            throw std::runtime_error("LoadThresholds: invalid entry at "
                                     "row " +
                                     std::to_string(row) + " of " + path +
                                     ": " + bad.what());
        }
    }
    if (!in.eof()) {
        throw std::runtime_error("LoadThresholds: parse error in " +
                                 path);
    }
    return table;
}

HybridGenerator::HybridGenerator(std::shared_ptr<dhe::DheEmbedding> dhe,
                                 int64_t table_size,
                                 const ThresholdTable& thresholds,
                                 int batch_size, int nthreads)
    : dhe_(std::move(dhe)), table_size_(table_size)
{
    assert(dhe_ != nullptr && table_size > 0);
    dhe_gen_ = std::make_unique<DheGenerator>(dhe_, table_size_);
    technique_ = Technique::kDhe;  // overwritten below
    Reconfigure(thresholds, batch_size, nthreads);
}

void
HybridGenerator::Reconfigure(const ThresholdTable& thresholds,
                             int batch_size, int nthreads)
{
    nthreads_ = nthreads;
    const int64_t threshold = thresholds.Lookup(batch_size, nthreads);
    technique_ = ChooseTechnique(table_size_, threshold);
    TELEMETRY_COUNT("hybrid.reconfigure", 1);
    if (technique_ == Technique::kLinearScan && !scan_) {
        // Materialise the table from the trained DHE once; later
        // reconfigurations reuse it (Algorithm 2, offline step 2).
        scan_ = std::make_unique<LinearScanTable>(
            dhe_->ToTable(table_size_));
        scan_->set_recorder(recorder_);
    }
    Active().set_nthreads(nthreads);
}

void
HybridGenerator::set_recorder(sidechannel::TraceRecorder* recorder)
{
    // Both constituents get the recorder: only the active one generates,
    // and a later Reconfigure must not silently drop the attachment.
    recorder_ = recorder;
    dhe_gen_->set_recorder(recorder);
    if (scan_) scan_->set_recorder(recorder);
}

EmbeddingGenerator&
HybridGenerator::Active()
{
    if (technique_ == Technique::kLinearScan) {
        assert(scan_ != nullptr);
        return *scan_;
    }
    return *dhe_gen_;
}

void
HybridGenerator::Generate(std::span<const int64_t> indices, Tensor& out)
{
    TELEMETRY_SCOPED_COUNTERS("hybrid.generate");
    // The dispatch count leaks only the technique choice, which is a
    // function of public quantities (table size, execution config) — the
    // same thing HybridGenerator::name() already exposes.
    if (technique_ == Technique::kLinearScan) {
        TELEMETRY_COUNT("hybrid.dispatch.scan", 1);
    } else {
        TELEMETRY_COUNT("hybrid.dispatch.dhe", 1);
    }
    Active().Generate(indices, out);
}

int64_t
HybridGenerator::dim() const
{
    return dhe_->out_dim();
}

int64_t
HybridGenerator::MemoryFootprintBytes() const
{
    // Deployment keeps only the representation in use: below-threshold
    // features ship as tables, above-threshold as DHE (paper Table VI —
    // this is why Hybrid is smaller than all-DHE).
    if (technique_ == Technique::kLinearScan && scan_) {
        return scan_->MemoryFootprintBytes();
    }
    return dhe_->ParamBytes();
}

std::string_view
HybridGenerator::name() const
{
    return technique_ == Technique::kLinearScan ? "Hybrid(LinearScan)"
                                                : "Hybrid(DHE)";
}

void
HybridGenerator::set_nthreads(int nthreads)
{
    nthreads_ = nthreads;
    Active().set_nthreads(nthreads);
}

void
HybridGenerator::set_precision(kernels::Dtype dtype)
{
    dhe_->set_dtype(dtype);
}

}  // namespace secemb::core
