#pragma once

/**
 * @file
 * Out-of-core embedding generators: the oblivious techniques of
 * table_generators.h with the table living in a src/store BackingStore
 * (file, mmap, or memory) behind a bounded page cache, instead of in RAM.
 *
 * Generate() is a void interface, so per-call store IO failures surface as
 * store::StoreError — the typed bridge serving::Server unwraps back into a
 * serving::Status for the response (chaos tests assert the mapping per
 * fault class).
 */

#include <cstdint>
#include <memory>

#include "core/embedding_generator.h"
#include "oram/proxy.h"
#include "store/paged_table.h"
#include "store/raw_oram.h"
#include "tensor/rng.h"

namespace secemb::core {

/**
 * Oblivious linear scan over a paged out-of-core table: every query
 * streams all pages through the bounded cache once — the certified public
 * page schedule (pages 0..P-1, in order, independent of the indices).
 */
class PagedScanTable : public EmbeddingGenerator
{
  public:
    /** Copies `table` (rows x dim) into a store built from `config`.
     *  Throws store::StoreError on store creation/upload failure. */
    PagedScanTable(const Tensor& table, const store::StoreConfig& config);

    /**
     * Reattach to an existing on-disk table (store::PagedTable::Recover):
     * the store header validates geometry, no upload happens. Use after a
     * crash or restart when `config.path` already holds the table.
     */
    static serving::Status Recover(int64_t rows, int64_t dim,
                                   const store::StoreConfig& config,
                                   std::unique_ptr<PagedScanTable>* out);

    void Generate(std::span<const int64_t> indices, Tensor& out) override;
    void GeneratePooled(std::span<const int64_t> indices,
                        std::span<const int64_t> offsets,
                        Tensor& out) override;
    int64_t dim() const override { return table_.dim(); }
    int64_t num_rows() const override { return table_.rows(); }
    int64_t MemoryFootprintBytes() const override
    {
        return table_.MemoryFootprintBytes();
    }
    std::string_view name() const override { return "Paged Linear Scan"; }
    bool IsOblivious() const override { return true; }
    void set_nthreads(int nthreads) override { nthreads_ = nthreads; }
    void set_recorder(sidechannel::TraceRecorder* r) override
    {
        table_.set_recorder(r);
    }

    /** Flush dirty cache frames and sync the store durably. */
    serving::Status SyncStorage() override { return table_.Sync(); }
    /** The scan table's durable state IS its pages: checkpoint = sync. */
    serving::Status CheckpointStorage() override { return table_.Sync(); }

    store::PagedTable& paged() { return table_; }

  private:
    /** For Recover(). */
    explicit PagedScanTable(std::unique_ptr<store::PagedTable> table)
        : table_(std::move(*table))
    {
    }

    store::PagedTable table_;
    int nthreads_ = 1;
};

/**
 * Embedding table behind the page-optimized RAW ORAM (src/store/raw_oram):
 * one bucket = one store page, read paths with no write-back, eviction
 * amortized every A accesses. Batch entries are processed sequentially
 * (ORAM controller state), like OramTable.
 */
class RawOramTable : public EmbeddingGenerator
{
  public:
    /**
     * Builds the store (store_config geometry; num_pages is derived from
     * RawOram::PagesNeeded) and bulk-loads `table` (rows x dim). The trace
     * recorder must arrive via oram_config.recorder — the position map
     * binds it at construction. Throws store::StoreError on failure.
     */
    RawOramTable(const Tensor& table, Rng& rng,
                 const store::StoreConfig& store_config,
                 const store::RawOramConfig& oram_config = {});

    /**
     * Reopen a crashed durable RAW ORAM table (store::RawOram::Recover):
     * `store_config.path` must hold the page file and
     * `oram_config.durability.dir` the checkpoint + journal. Fails
     * closed with the recovery path's typed errors; on success the
     * table serves exactly the acknowledged pre-crash state.
     */
    static serving::Status Recover(int64_t rows, int64_t dim, Rng& rng,
                                   const store::StoreConfig& store_config,
                                   const store::RawOramConfig& oram_config,
                                   std::unique_ptr<RawOramTable>* out);

    void Generate(std::span<const int64_t> indices, Tensor& out) override;
    int64_t dim() const override { return dim_; }
    int64_t num_rows() const override { return rows_; }
    int64_t MemoryFootprintBytes() const override
    {
        return oram_->MemoryFootprintBytes();
    }
    std::string_view name() const override { return "RAW ORAM"; }
    bool IsOblivious() const override { return true; }

    /** Flush dirty cache frames and sync the store durably. */
    serving::Status SyncStorage() override { return oram_->Sync(); }
    /** Seal a checkpoint + reset the journal (Ok no-op if not durable). */
    serving::Status CheckpointStorage() override
    {
        return oram_->Checkpoint();
    }

    store::RawOram& oram() { return *oram_; }

  private:
    /** For Recover(). */
    RawOramTable(int64_t rows, int64_t dim,
                 std::unique_ptr<store::RawOram> oram)
        : rows_(rows), dim_(dim), oram_(std::move(oram))
    {
    }

    int64_t rows_;
    int64_t dim_;
    std::unique_ptr<store::RawOram> oram_;
};

/**
 * The out-of-core RAW ORAM behind the PR 7 async proxy: batch entries are
 * submitted to the proxy queue, in-window duplicates coalesce into one
 * physical access (padded back with dummy ids), and the conductor thread
 * drives the RAW ORAM serially through OramProxy's generic BlockBackend.
 */
class ProxiedRawOramTable : public EmbeddingGenerator
{
  public:
    ProxiedRawOramTable(const Tensor& table, Rng& rng,
                        const store::StoreConfig& store_config,
                        const store::RawOramConfig& oram_config = {},
                        const oram::ProxyConfig& proxy_config = {});

    void Generate(std::span<const int64_t> indices, Tensor& out) override;
    int64_t dim() const override { return dim_; }
    int64_t num_rows() const override { return rows_; }
    int64_t MemoryFootprintBytes() const override
    {
        return oram_->MemoryFootprintBytes();
    }
    std::string_view name() const override { return "RAW ORAM (proxy)"; }
    bool IsOblivious() const override { return true; }

    /** Quiesce the proxy, then flush + sync the store durably. */
    serving::Status SyncStorage() override;

    /** Quiesce the proxy, then seal a durable checkpoint. */
    serving::Status CheckpointStorage() override;

    /** Route the proxy's lifecycle hops into a serving flight recorder. */
    void set_flight(serving::FlightRecorder* flight)
    {
        proxy_->set_flight(flight);
    }

    store::RawOram& oram() { return *oram_; }
    oram::OramProxy& proxy() { return *proxy_; }

  private:
    int64_t rows_;
    int64_t dim_;
    std::unique_ptr<store::RawOram> oram_;
    std::unique_ptr<oram::OramProxy> proxy_;
};

}  // namespace secemb::core
