#include "sidechannel/cache_model.h"

#include <cassert>

namespace secemb::sidechannel {

CacheModel::CacheModel(const CacheConfig& config)
    : config_(config),
      ways_(static_cast<size_t>(config.num_sets) * config.ways)
{
    assert(config.num_sets > 0 && config.ways > 0);
    assert((config.line_bytes & (config.line_bytes - 1)) == 0);
}

int
CacheModel::SetIndex(uint64_t addr) const
{
    return static_cast<int>((addr / config_.line_bytes) % config_.num_sets);
}

uint64_t
CacheModel::LineAddr(uint64_t addr) const
{
    return addr / config_.line_bytes * config_.line_bytes;
}

bool
CacheModel::Access(uint64_t addr)
{
    ++clock_;
    const uint64_t line = LineAddr(addr);
    const int set = SetIndex(addr);
    Way* base = &ways_[static_cast<size_t>(set) * config_.ways];

    int victim = 0;
    uint64_t oldest = UINT64_MAX;
    for (int w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == line) {
            base[w].lru = clock_;
            return true;
        }
        if (!base[w].valid) {
            // Prefer invalid ways for fill.
            if (oldest != 0) {
                victim = w;
                oldest = 0;
            }
        } else if (base[w].lru < oldest) {
            victim = w;
            oldest = base[w].lru;
        }
    }
    base[victim] = {line, clock_, true};
    return false;
}

void
CacheModel::AccessRange(uint64_t addr, uint32_t size)
{
    const uint64_t first = LineAddr(addr);
    const uint64_t last = LineAddr(addr + (size == 0 ? 0 : size - 1));
    for (uint64_t line = first; line <= last;
         line += static_cast<uint64_t>(config_.line_bytes)) {
        Access(line);
    }
}

void
CacheModel::Replay(const std::vector<MemoryAccess>& trace)
{
    for (const auto& a : trace) AccessRange(a.addr, a.size);
}

void
CacheModel::Flush()
{
    for (auto& w : ways_) w.valid = false;
}

}  // namespace secemb::sidechannel
