#include "sidechannel/trace.h"

namespace secemb::sidechannel {

uint64_t
AddressSpace::Reserve(uint64_t bytes, uint64_t align)
{
    next_ = (next_ + align - 1) / align * align;
    const uint64_t base = next_;
    // Pad regions apart so distinct tables never share a cache line.
    next_ += bytes + 4096;
    return base;
}

AddressSpace&
ProcessAddressSpace()
{
    static AddressSpace space;
    return space;
}

}  // namespace secemb::sidechannel
