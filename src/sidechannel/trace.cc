#include "sidechannel/trace.h"

#include <algorithm>

namespace secemb::sidechannel {

uint64_t
AddressSpace::Reserve(uint64_t bytes, uint64_t align, std::string_view name)
{
    std::lock_guard<std::mutex> lk(mu_);
    next_ = (next_ + align - 1) / align * align;
    const uint64_t base = next_;
    // Pad regions apart so distinct tables never share a cache line.
    next_ += bytes + 4096;
    auto region = std::make_unique<AddressRegion>();
    region->base = base;
    region->bytes = bytes;
    region->name = std::string(name);
    regions_.push_back(std::move(region));
    return base;
}

const AddressRegion*
AddressSpace::Find(uint64_t addr) const
{
    std::lock_guard<std::mutex> lk(mu_);
    // Regions are reserved at monotonically increasing bases: binary
    // search for the last region with base <= addr.
    const auto it = std::upper_bound(
        regions_.begin(), regions_.end(), addr,
        [](uint64_t a, const std::unique_ptr<AddressRegion>& r) {
            return a < r->base;
        });
    if (it == regions_.begin()) return nullptr;
    const AddressRegion* r = std::prev(it)->get();
    return r->Contains(addr) ? r : nullptr;
}

std::vector<AddressRegion>
AddressSpace::Regions() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<AddressRegion> out;
    out.reserve(regions_.size());
    for (const auto& r : regions_) out.push_back(*r);
    return out;
}

AddressSpace&
ProcessAddressSpace()
{
    static AddressSpace space;
    return space;
}

}  // namespace secemb::sidechannel
