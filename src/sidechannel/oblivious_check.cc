#include "sidechannel/oblivious_check.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace secemb::sidechannel {

ObliviousnessReport
CompareTraces(const std::vector<MemoryAccess>& a,
              const std::vector<MemoryAccess>& b)
{
    ObliviousnessReport r;
    r.identical = (a == b);
    r.same_shape = (a.size() == b.size());
    if (r.same_shape) {
        for (size_t i = 0; i < a.size(); ++i) {
            if (a[i].size != b[i].size || a[i].is_write != b[i].is_write) {
                r.same_shape = false;
                r.first_divergence = i;
                break;
            }
        }
    }
    if (!r.identical) {
        const size_t n = std::min(a.size(), b.size());
        for (size_t i = 0; i < n; ++i) {
            if (!(a[i] == b[i])) {
                r.first_divergence = i;
                break;
            }
        }
        std::ostringstream os;
        os << "len(a)=" << a.size() << " len(b)=" << b.size()
           << " first_divergence=" << r.first_divergence;
        r.detail = os.str();
    }
    return r;
}

double
ChiSquaredUniform(const std::vector<int64_t>& counts)
{
    assert(!counts.empty());
    int64_t total = 0;
    for (int64_t c : counts) total += c;
    const double expected =
        static_cast<double>(total) / static_cast<double>(counts.size());
    if (expected <= 0.0) return 0.0;
    double chi2 = 0.0;
    for (int64_t c : counts) {
        const double d = static_cast<double>(c) - expected;
        chi2 += d * d / expected;
    }
    return chi2;
}

double
EmpiricalMutualInformation(const std::vector<int64_t>& secrets,
                           const std::vector<int64_t>& guesses,
                           int64_t num_symbols)
{
    assert(secrets.size() == guesses.size());
    assert(num_symbols > 0);
    const size_t n = secrets.size();
    if (n == 0) return 0.0;

    const size_t k = static_cast<size_t>(num_symbols);
    std::vector<double> joint(k * k, 0.0), ps(k, 0.0), pg(k, 0.0);
    for (size_t i = 0; i < n; ++i) {
        const size_t s = static_cast<size_t>(secrets[i]);
        const size_t g = static_cast<size_t>(guesses[i]);
        assert(s < k && g < k);
        joint[s * k + g] += 1.0 / n;
        ps[s] += 1.0 / n;
        pg[g] += 1.0 / n;
    }
    double mi = 0.0;
    for (size_t s = 0; s < k; ++s) {
        for (size_t g = 0; g < k; ++g) {
            const double pj = joint[s * k + g];
            if (pj > 0.0 && ps[s] > 0.0 && pg[g] > 0.0) {
                mi += pj * std::log2(pj / (ps[s] * pg[g]));
            }
        }
    }
    return mi;
}

}  // namespace secemb::sidechannel
