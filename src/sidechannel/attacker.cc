#include "sidechannel/attacker.h"

#include <cassert>

namespace secemb::sidechannel {

EvictionSetAttacker::EvictionSetAttacker(CacheModel& cache,
                                         uint64_t table_base,
                                         uint64_t row_bytes,
                                         int monitored_rows)
    : cache_(cache),
      table_base_(table_base),
      row_bytes_(row_bytes),
      monitored_rows_(monitored_rows)
{
    // Attacker's own memory lives in a region aligned to the cache span so
    // that set selection is straightforward, far above any victim region.
    const uint64_t span =
        static_cast<uint64_t>(cache.config().num_sets) *
        cache.config().line_bytes;
    attacker_base_ = ((1ULL << 40) / span) * span;
}

uint64_t
EvictionSetAttacker::RowAddr(int r) const
{
    return table_base_ + static_cast<uint64_t>(r) * row_bytes_;
}

uint64_t
EvictionSetAttacker::EvictionLine(int r, int j) const
{
    const auto& cfg = cache_.config();
    const int target_set = cache_.SetIndex(RowAddr(r));
    const uint64_t stride = static_cast<uint64_t>(cfg.num_sets) *
                            cfg.line_bytes;
    return attacker_base_ + static_cast<uint64_t>(target_set) *
           cfg.line_bytes + static_cast<uint64_t>(j) * stride;
}

void
EvictionSetAttacker::Prime()
{
    const int ways = cache_.config().ways;
    for (int r = 0; r < monitored_rows_; ++r) {
        for (int j = 0; j < ways; ++j) {
            cache_.Access(EvictionLine(r, j));
        }
    }
}

AttackObservation
EvictionSetAttacker::Probe()
{
    const auto& cfg = cache_.config();
    AttackObservation obs;
    obs.probe_latency_ns.resize(static_cast<size_t>(monitored_rows_), 0.0);
    for (int r = 0; r < monitored_rows_; ++r) {
        double latency = 0.0;
        for (int j = 0; j < cfg.ways; ++j) {
            const bool hit = cache_.Access(EvictionLine(r, j));
            latency += hit ? cfg.hit_ns : cfg.miss_ns;
        }
        obs.probe_latency_ns[static_cast<size_t>(r)] = latency;
    }
    double best = -1.0;
    for (int r = 0; r < monitored_rows_; ++r) {
        if (obs.probe_latency_ns[static_cast<size_t>(r)] > best) {
            best = obs.probe_latency_ns[static_cast<size_t>(r)];
            obs.guessed_index = r;
        }
    }
    return obs;
}

AttackObservation
EvictionSetAttacker::Attack(const std::vector<MemoryAccess>& victim_trace,
                            int repeats)
{
    assert(repeats > 0);
    AttackObservation avg;
    avg.probe_latency_ns.resize(static_cast<size_t>(monitored_rows_), 0.0);
    for (int rep = 0; rep < repeats; ++rep) {
        cache_.Flush();
        Prime();
        cache_.Replay(victim_trace);
        const AttackObservation obs = Probe();
        for (int r = 0; r < monitored_rows_; ++r) {
            avg.probe_latency_ns[static_cast<size_t>(r)] +=
                obs.probe_latency_ns[static_cast<size_t>(r)] / repeats;
        }
    }
    double best = -1.0;
    for (int r = 0; r < monitored_rows_; ++r) {
        if (avg.probe_latency_ns[static_cast<size_t>(r)] > best) {
            best = avg.probe_latency_ns[static_cast<size_t>(r)];
            avg.guessed_index = r;
        }
    }
    return avg;
}

}  // namespace secemb::sidechannel
