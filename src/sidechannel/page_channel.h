#pragma once

/**
 * @file
 * Page-fault controlled-channel observer (paper Section III-A2).
 *
 * Beyond the cache channel, the paper notes a malicious OS can clear
 * present bits and observe *page-granular* access patterns of an SGX
 * enclave [Xu et al.]. This models that adversary: it sees the sequence
 * of 4 KiB pages the victim touches. Against a non-secure embedding
 * lookup it recovers the index at page granularity — coarser than the
 * cache attack but requiring no shared cache — and the paper observes
 * the two channels *compose* (page channel narrows the range, cache
 * channel resolves within it).
 */

#include <cstdint>
#include <vector>

#include "sidechannel/trace.h"

namespace secemb::sidechannel {

/** Page-granular view of a victim trace, as a controlled-channel OS
 * adversary would record it. */
class PageFaultObserver
{
  public:
    explicit PageFaultObserver(uint64_t page_bytes = 4096)
        : page_bytes_(page_bytes)
    {
    }

    /** Distinct pages touched by the trace, in first-touch order. */
    std::vector<uint64_t> ObservePages(
        const std::vector<MemoryAccess>& trace) const;

    /**
     * Candidate index range for a table lookup: given the victim table's
     * base address and row size, map the observed pages back to the rows
     * they cover. Returns {first_index, last_index} (inclusive) of the
     * narrowest single-page hypothesis, or {-1, -1} if the trace touches
     * no table page / too many pages to localise (an oblivious victim).
     */
    struct IndexRange
    {
        int64_t first = -1;
        int64_t last = -1;

        bool Localised() const { return first >= 0; }
        bool Contains(int64_t idx) const
        {
            return idx >= first && idx <= last;
        }
        int64_t Width() const
        {
            return Localised() ? last - first + 1 : -1;
        }
    };

    IndexRange InferIndexRange(const std::vector<MemoryAccess>& trace,
                               uint64_t table_base, uint64_t row_bytes,
                               int64_t num_rows) const;

    uint64_t page_bytes() const { return page_bytes_; }

  private:
    uint64_t page_bytes_;
};

}  // namespace secemb::sidechannel
