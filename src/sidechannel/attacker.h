#pragma once

/**
 * @file
 * PRIME+SCOPE-style eviction-set attacker (paper Section III-A, Fig. 3).
 *
 * The attacker knows the victim table's base address (the paper grants the
 * same via a malicious OS exposing physical addresses), builds one eviction
 * set per monitored table row, primes those sets, lets the victim run one
 * embedding lookup, then probes each eviction set and reports a modelled
 * probe latency per row. A latency spike identifies the victim's secret
 * index.
 */

#include <cstdint>
#include <vector>

#include "sidechannel/cache_model.h"
#include "sidechannel/trace.h"

namespace secemb::sidechannel {

/** One attack measurement: per-monitored-row probe latencies in ns. */
struct AttackObservation
{
    std::vector<double> probe_latency_ns;  ///< indexed by monitored row
    int64_t guessed_index = -1;            ///< argmax of probe latency
};

/**
 * Cache eviction-set attacker against a table whose row r starts at
 * table_base + r * row_bytes.
 */
class EvictionSetAttacker
{
  public:
    /**
     * @param cache shared cache model (victim and attacker both use it)
     * @param table_base victim table base virtual address
     * @param row_bytes bytes per table row (>= one cache line in all the
     *        paper's datasets, which is what makes the attack precise)
     * @param monitored_rows how many leading rows to monitor (the paper
     *        primes 25 sets for its demonstration)
     */
    EvictionSetAttacker(CacheModel& cache, uint64_t table_base,
                        uint64_t row_bytes, int monitored_rows);

    /** Fill each monitored row's cache set with attacker lines. */
    void Prime();

    /**
     * Probe each monitored set, returning modelled latency per row and the
     * index guess. Call after the victim trace has been replayed.
     */
    AttackObservation Probe();

    /**
     * Full attack round: prime, replay victim trace, probe. Averages
     * `repeats` measurements like the paper's 10-sample averaging.
     */
    AttackObservation Attack(const std::vector<MemoryAccess>& victim_trace,
                             int repeats = 10);

  private:
    CacheModel& cache_;
    uint64_t table_base_;
    uint64_t row_bytes_;
    int monitored_rows_;
    uint64_t attacker_base_;

    /** First-line address of monitored row r. */
    uint64_t RowAddr(int r) const;
    /** Attacker's j-th conflicting line for monitored row r. */
    uint64_t EvictionLine(int r, int j) const;
};

}  // namespace secemb::sidechannel
