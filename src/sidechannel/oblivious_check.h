#pragma once

/**
 * @file
 * Obliviousness verification over recorded traces.
 *
 * Deterministic techniques (linear scan, DHE) must produce *identical*
 * traces for any two secret inputs. Randomised techniques (tree ORAM) must
 * produce traces whose structure (lengths, which region is touched when)
 * is secret-independent and whose path choices are uniform; the helpers
 * here implement both checks.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sidechannel/trace.h"

namespace secemb::sidechannel {

/** Result of an obliviousness comparison. */
struct ObliviousnessReport
{
    bool identical = false;       ///< traces byte-for-byte equal
    bool same_shape = false;      ///< same length and same (size, rw) seq.
    size_t first_divergence = 0;  ///< index of first differing access
    std::string detail;
};

/** Compare two traces for exact equality and for shape equality. */
ObliviousnessReport CompareTraces(const std::vector<MemoryAccess>& a,
                                  const std::vector<MemoryAccess>& b);

/**
 * Chi-squared uniformity statistic for a histogram of observed counts
 * against a uniform expectation. Used to test that ORAM leaf/path choices
 * are indistinguishable across different secret index sequences.
 * Returns the chi-squared value; degrees of freedom = bins - 1.
 */
double ChiSquaredUniform(const std::vector<int64_t>& counts);

/**
 * Mutual-information estimate (in bits) between secret index and attacker
 * guess over paired observations; ~0 for a secure implementation,
 * ~log2(#indices) for the non-secure table. Both vectors must have equal
 * length; values must be < num_symbols.
 */
double EmpiricalMutualInformation(const std::vector<int64_t>& secrets,
                                  const std::vector<int64_t>& guesses,
                                  int64_t num_symbols);

}  // namespace secemb::sidechannel
