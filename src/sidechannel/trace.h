#pragma once

/**
 * @file
 * Memory access trace recording.
 *
 * The original artifact demonstrates leakage on real SGX hardware with a
 * PRIME+SCOPE LLC attack. In this reproduction the victim's memory
 * behaviour is captured as an explicit address trace: every
 * secret-dependent (or, for secure implementations, secret-independent)
 * table/tree access reports the virtual addresses it touches. The trace is
 * then (a) replayed through a cache model for the Fig. 3 attack, and
 * (b) compared across secrets to *prove* obliviousness.
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace secemb::sidechannel {

/** A single recorded memory access. */
struct MemoryAccess
{
    uint64_t addr;   ///< virtual byte address
    uint32_t size;   ///< bytes touched contiguously from addr
    bool is_write;

    bool operator==(const MemoryAccess&) const = default;
};

/**
 * Collects the address trace of an instrumented victim.
 *
 * Recording granularity is whatever the instrumented code reports —
 * generators in this library report whole-row or whole-bucket touches,
 * which the cache model later expands into line-granularity accesses
 * (cache-line granularity is what the paper's attack observes).
 */
class TraceRecorder
{
  public:
    void Record(uint64_t addr, uint32_t size, bool is_write)
    {
        trace_.push_back({addr, size, is_write});
    }

    const std::vector<MemoryAccess>& trace() const { return trace_; }
    void Clear() { trace_.clear(); }
    size_t size() const { return trace_.size(); }

    /** Append another recorder's trace in order (parallel-slot merging). */
    void
    Append(const TraceRecorder& other)
    {
        trace_.insert(trace_.end(), other.trace_.begin(),
                      other.trace_.end());
    }

  private:
    std::vector<MemoryAccess> trace_;
};

/**
 * Per-slot trace buffers for parallel batch regions.
 *
 * TraceRecorder is not thread-safe, and even a locked recorder would
 * interleave accesses in scheduler order — making the recorded trace a
 * function of thread timing rather than of the victim's algorithm. Instead
 * each batch slot records into its own buffer from whichever worker
 * processes it, and MergeInto() concatenates the buffers in slot order
 * after the region. The merged trace equals the serial execution's trace
 * exactly: deterministic across runs, thread counts, and schedules, so
 * trace-identity tests keep proving input-independence under parallelism.
 */
class SlotTraceRecorders
{
  public:
    /** @param sink final recorder, or nullptr to disable all recording */
    SlotTraceRecorders(size_t slots, TraceRecorder* sink) : sink_(sink)
    {
        if (sink_ != nullptr) slots_.resize(slots);
    }

    /** Slot i's private recorder; nullptr when recording is disabled. */
    TraceRecorder*
    slot(size_t i)
    {
        return sink_ != nullptr ? &slots_[i] : nullptr;
    }

    /** Concatenate all slot traces into the sink, in slot order. */
    void
    MergeInto()
    {
        if (sink_ == nullptr) return;
        for (const TraceRecorder& r : slots_) sink_->Append(r);
        slots_.clear();
    }

  private:
    TraceRecorder* sink_;
    std::vector<TraceRecorder> slots_;
};

/**
 * One reserved trace region: the virtual address range a single
 * instrumented structure (table, tree, stash, ...) reports accesses in.
 */
struct AddressRegion
{
    uint64_t base = 0;
    uint64_t bytes = 0;
    std::string name;  ///< structure kind, e.g. "oram.tree"; may be empty

    bool Contains(uint64_t addr) const
    {
        return addr >= base && addr - base < bytes;
    }
};

/**
 * Allocates non-overlapping virtual address regions so each instrumented
 * table/tree gets a distinct base address, mimicking distinct heap
 * allocations in the real victim.
 *
 * Every reservation is remembered as a named AddressRegion; Find() maps a
 * traced address back to its region, which is what the verify harness's
 * trace canonicalization uses to rebase traces into comparable
 * (region, offset) streams across runs and instances.
 *
 * Thread-safe: reservations and lookups may race (e.g. generators built
 * from pool workers in stress tests).
 */
class AddressSpace
{
  public:
    /**
     * Reserve a region of `bytes`, aligned to `align`; returns the base.
     * `name` labels the region for canonicalization and diagnostics.
     */
    uint64_t Reserve(uint64_t bytes, uint64_t align = 64,
                     std::string_view name = "");

    /**
     * Region containing `addr`, or nullptr if the address was never
     * reserved. The returned pointer stays valid for the lifetime of the
     * AddressSpace (regions are never released).
     */
    const AddressRegion* Find(uint64_t addr) const;

    /** Snapshot of all reservations, in base-address order. */
    std::vector<AddressRegion> Regions() const;

  private:
    mutable std::mutex mu_;
    uint64_t next_ = 0x10000000ULL;
    // Deque-like stability: regions are heap-allocated so Find() results
    // survive later reservations.
    std::vector<std::unique_ptr<AddressRegion>> regions_;
};

/**
 * The process-wide AddressSpace every instrumented generator reserves its
 * trace base from, so bases never collide when traces from different
 * components are merged into one cache-model replay.
 */
AddressSpace& ProcessAddressSpace();

}  // namespace secemb::sidechannel
