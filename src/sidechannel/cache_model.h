#pragma once

/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * Stands in for the shared last-level cache of the paper's Ice Lake Xeon:
 * the attacker and victim occupy the same cache, and the attacker measures
 * per-set hit/miss behaviour. Timing is modelled as
 *   latency = hits * hit_ns + misses * miss_ns.
 */

#include <cstdint>
#include <vector>

#include "sidechannel/trace.h"

namespace secemb::sidechannel {

/** Geometry and timing of the modelled cache. */
struct CacheConfig
{
    int num_sets = 1024;
    int ways = 12;
    int line_bytes = 64;
    double hit_ns = 20.0;    ///< LLC hit latency
    double miss_ns = 100.0;  ///< DRAM access latency
};

/**
 * Physically-indexed set-associative cache with true-LRU replacement.
 *
 * Tags are full line addresses; there is no prefetcher and no noise source
 * by default (noise can be injected by the attacker harness), which makes
 * the leak crisp — the same simplification the paper makes by averaging 10
 * measurements.
 */
class CacheModel
{
  public:
    explicit CacheModel(const CacheConfig& config);

    /** Touch one byte address; returns true on hit. */
    bool Access(uint64_t addr);

    /** Touch `size` bytes from addr, one access per covered line. */
    void AccessRange(uint64_t addr, uint32_t size);

    /** Replay a recorded victim trace through the cache. */
    void Replay(const std::vector<MemoryAccess>& trace);

    /** Cache set index for a byte address. */
    int SetIndex(uint64_t addr) const;

    /** Line-aligned address. */
    uint64_t LineAddr(uint64_t addr) const;

    void Flush();

    const CacheConfig& config() const { return config_; }

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t lru = 0;  ///< last-use timestamp
        bool valid = false;
    };

    CacheConfig config_;
    std::vector<Way> ways_;  ///< num_sets * ways, set-major
    uint64_t clock_ = 0;
};

}  // namespace secemb::sidechannel
