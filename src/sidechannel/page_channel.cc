#include "sidechannel/page_channel.h"

#include <algorithm>

namespace secemb::sidechannel {

std::vector<uint64_t>
PageFaultObserver::ObservePages(
    const std::vector<MemoryAccess>& trace) const
{
    std::vector<uint64_t> pages;
    for (const auto& a : trace) {
        const uint64_t first = a.addr / page_bytes_;
        const uint64_t last =
            (a.addr + (a.size == 0 ? 0 : a.size - 1)) / page_bytes_;
        for (uint64_t p = first; p <= last; ++p) {
            if (std::find(pages.begin(), pages.end(), p) == pages.end()) {
                pages.push_back(p);
            }
        }
    }
    return pages;
}

PageFaultObserver::IndexRange
PageFaultObserver::InferIndexRange(const std::vector<MemoryAccess>& trace,
                                   uint64_t table_base, uint64_t row_bytes,
                                   int64_t num_rows) const
{
    const uint64_t table_end = table_base + static_cast<uint64_t>(
                                                num_rows) * row_bytes;
    const uint64_t first_page = table_base / page_bytes_;
    const uint64_t last_page = (table_end - 1) / page_bytes_;

    // Collect the table pages the victim touched.
    std::vector<uint64_t> touched;
    for (uint64_t p : ObservePages(trace)) {
        if (p >= first_page && p <= last_page) touched.push_back(p);
    }
    IndexRange range;
    if (touched.empty()) return range;
    // An oblivious victim touches (nearly) every table page: no single-
    // page localisation is possible. Heuristic: localise only when the
    // victim touched a small fraction of the table's pages.
    const uint64_t total_pages = last_page - first_page + 1;
    if (touched.size() * 4 > total_pages && total_pages > 4) {
        return range;
    }
    // Narrowest hypothesis: the first touched table page.
    const uint64_t page = touched.front();
    const uint64_t page_start =
        std::max(page * page_bytes_, table_base);
    const uint64_t page_end =
        std::min((page + 1) * page_bytes_, table_end) - 1;
    range.first = static_cast<int64_t>((page_start - table_base) /
                                       row_bytes);
    range.last = static_cast<int64_t>((page_end - table_base) /
                                      row_bytes);
    range.last = std::min(range.last, num_rows - 1);
    return range;
}

}  // namespace secemb::sidechannel
