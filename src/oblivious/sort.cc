#include "oblivious/sort.h"

#include <cassert>

#include "oblivious/ct_ops.h"

namespace secemb::oblivious {

namespace {

/**
 * Constant-time compare-exchange: after the call, keys[i] <= keys[j]
 * (for ascending direction), payload rows moving with their keys. Both
 * elements are always read and written.
 */
void
CompareExchange(std::span<uint64_t> keys, std::span<uint32_t> rows,
                int64_t row_words, int64_t i, int64_t j, bool ascending)
{
    const uint64_t a = keys[static_cast<size_t>(i)];
    const uint64_t b = keys[static_cast<size_t>(j)];
    // Swap when out of order for the requested direction.
    const uint64_t gt = LtMask(b, a);
    const uint64_t mask = ascending ? gt : ~gt;
    uint64_t x = a, y = b;
    CtSwapU64(mask, x, y);
    keys[static_cast<size_t>(i)] = x;
    keys[static_cast<size_t>(j)] = y;
    if (row_words > 0) {
        CtSwapRows(mask,
                   {reinterpret_cast<float*>(rows.data()) + i * row_words,
                    static_cast<size_t>(row_words)},
                   {reinterpret_cast<float*>(rows.data()) + j * row_words,
                    static_cast<size_t>(row_words)});
    }
}

int64_t
NextPow2(int64_t n)
{
    int64_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

}  // namespace

void
ObliviousSortByKey(std::span<uint64_t> keys, std::span<uint32_t> rows,
                   int64_t row_words)
{
    const int64_t n = static_cast<int64_t>(keys.size());
    if (n <= 1) return;
    assert(row_words == 0 ||
           static_cast<int64_t>(rows.size()) == n * row_words);

    // Standard iterative bitonic sort over buffers physically padded to
    // a power of two with +infinity keys (padding size depends only on
    // n, so the trace stays data-independent). Padded elements sort to
    // the tail and are dropped on copy-back.
    const int64_t padded = NextPow2(n);
    std::vector<uint64_t> pkeys(static_cast<size_t>(padded), ~uint64_t{0});
    std::copy(keys.begin(), keys.end(), pkeys.begin());
    std::vector<uint32_t> prows;
    if (row_words > 0) {
        prows.assign(static_cast<size_t>(padded * row_words), 0);
        std::copy(rows.begin(), rows.end(), prows.begin());
    }

    for (int64_t k = 2; k <= padded; k <<= 1) {
        for (int64_t j = k >> 1; j > 0; j >>= 1) {
            for (int64_t i = 0; i < padded; ++i) {
                const int64_t partner = i ^ j;
                if (partner <= i) continue;
                const bool ascending = (i & k) == 0;
                CompareExchange(pkeys, prows, row_words, i, partner,
                                ascending);
            }
        }
    }
    std::copy(pkeys.begin(), pkeys.begin() + n, keys.begin());
    if (row_words > 0) {
        std::copy(prows.begin(), prows.begin() + n * row_words,
                  rows.begin());
    }
}

void
ObliviousSort(std::span<uint64_t> keys)
{
    ObliviousSortByKey(keys, {}, 0);
}

void
ObliviousShuffle(std::span<uint32_t> rows, int64_t row_words,
                 int64_t num_rows, Rng& rng)
{
    assert(static_cast<int64_t>(rows.size()) == num_rows * row_words);
    std::vector<uint64_t> keys(static_cast<size_t>(num_rows));
    for (auto& k : keys) k = rng.Next();
    ObliviousSortByKey(keys, rows, row_words);
}

}  // namespace secemb::oblivious
