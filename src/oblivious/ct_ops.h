#pragma once

/**
 * @file
 * Constant-time (branchless) primitives.
 *
 * These mirror the paper's use of cmov / AVX blend instructions (Section
 * V-A): every operation here executes the same instruction sequence and
 * touches the same memory locations regardless of the secret values it
 * operates on. Portable mask arithmetic is used instead of inline assembly;
 * a compiler barrier keeps the optimiser from re-introducing branches.
 *
 * Secrets are conditions and selected values; lengths and shapes are public.
 */

#include <cstdint>
#include <cstring>
#include <span>

namespace secemb::oblivious {

/**
 * Optimisation barrier: forces the compiler to treat v as opaque so that
 * mask arithmetic is not collapsed back into a conditional branch.
 */
inline uint64_t
ValueBarrier(uint64_t v)
{
#if defined(__GNUC__) || defined(__clang__)
    __asm__ volatile("" : "+r"(v) : : );
#endif
    return v;
}

/** All-ones mask if c != 0, else all-zeros. c must be 0 or 1. */
inline uint64_t
BoolToMask(uint64_t c)
{
    return ~(ValueBarrier(c) - 1);
}

/** All-ones mask iff a == b. */
inline uint64_t
EqMask(uint64_t a, uint64_t b)
{
    const uint64_t x = ValueBarrier(a ^ b);
    // (x | -x) has MSB set iff x != 0.
    const uint64_t nonzero = (x | (~x + 1)) >> 63;
    return BoolToMask(nonzero ^ 1);
}

/** All-ones mask iff a < b (unsigned). */
inline uint64_t
LtMask(uint64_t a, uint64_t b)
{
    // Standard branchless unsigned comparison.
    const uint64_t r = (a ^ ((a ^ b) | ((a - b) ^ b))) >> 63;
    return BoolToMask(ValueBarrier(r));
}

/** mask ? a : b, for a full-width mask. */
inline uint64_t
Select(uint64_t mask, uint64_t a, uint64_t b)
{
    return (mask & a) | (~mask & b);
}

/** mask ? a : b for int64. */
inline int64_t
SelectI64(uint64_t mask, int64_t a, int64_t b)
{
    return static_cast<int64_t>(Select(mask, static_cast<uint64_t>(a),
                                       static_cast<uint64_t>(b)));
}

/** mask ? a : b for float, via bit-level blend. */
inline float
SelectF32(uint64_t mask, float a, float b)
{
    uint32_t ua, ub;
    std::memcpy(&ua, &a, sizeof(ua));
    std::memcpy(&ub, &b, sizeof(ub));
    const uint32_t m32 = static_cast<uint32_t>(mask);
    const uint32_t ur = (m32 & ua) | (~m32 & ub);
    float r;
    std::memcpy(&r, &ur, sizeof(r));
    return r;
}

/**
 * Conditionally overwrite dst with src when mask is all-ones; always reads
 * and writes every element of dst (oblivious blend, the software analogue
 * of the paper's AVX blend copy).
 */
void CtCopyRow(uint64_t mask, std::span<const float> src,
               std::span<float> dst);

/** Conditional swap of a and b when mask is all-ones; always touches both. */
void CtSwapRows(uint64_t mask, std::span<float> a, std::span<float> b);

/**
 * CtCopyRow for raw 32-bit words: conditionally overwrite dst with src
 * when mask is all-ones, always touching every element. The out-of-core
 * ORAM layers (src/store) move encrypted payload words with this.
 */
inline void
CtCopyWords(uint64_t mask, const uint32_t* src, uint32_t* dst, int64_t n)
{
    for (int64_t i = 0; i < n; ++i) {
        dst[i] = static_cast<uint32_t>(Select(mask, src[i], dst[i]));
    }
}

/** Conditional swap of scalars. */
inline void
CtSwapU64(uint64_t mask, uint64_t& a, uint64_t& b)
{
    const uint64_t diff = mask & (a ^ b);
    a ^= diff;
    b ^= diff;
}

/**
 * Deliberately non-inlined select, used by the ZeroTrace-Original ablation
 * (Fig. 10): the original ZeroTrace called its cmov helper through a
 * non-inlined assembly stub; the optimised version inlines it.
 */
uint64_t SelectNoInline(uint64_t mask, uint64_t a, uint64_t b);

}  // namespace secemb::oblivious
