#include "oblivious/ct_ops.h"

#include <cassert>

namespace secemb::oblivious {

void
CtCopyRow(uint64_t mask, std::span<const float> src, std::span<float> dst)
{
    assert(src.size() == dst.size());
    for (size_t i = 0; i < dst.size(); ++i) {
        dst[i] = SelectF32(mask, src[i], dst[i]);
    }
}

void
CtSwapRows(uint64_t mask, std::span<float> a, std::span<float> b)
{
    assert(a.size() == b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        const float ai = SelectF32(mask, b[i], a[i]);
        const float bi = SelectF32(mask, a[i], b[i]);
        a[i] = ai;
        b[i] = bi;
    }
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
uint64_t
SelectNoInline(uint64_t mask, uint64_t a, uint64_t b)
{
    return Select(mask, a, b);
}

}  // namespace secemb::oblivious
