#pragma once

/**
 * @file
 * Oblivious sorting and shuffling (bitonic network).
 *
 * A sorting network's compare-exchange sequence depends only on the input
 * *length*, so sorting with constant-time swaps is data-oblivious — the
 * standard building block for oblivious initialisation and shuffling in
 * the ORAM literature (and the machinery behind the Square-Root ORAM
 * baseline in src/oram/sqrt_oram.*).
 */

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/rng.h"

namespace secemb::oblivious {

/**
 * Sort keys ascending with a bitonic network; rows[i] moves with
 * keys[i]. Every compare-exchange executes a constant-time conditional
 * swap of both the key and its payload row, so the memory trace depends
 * only on keys.size() (which need not be a power of two).
 *
 * @param keys sort keys, modified in place
 * @param rows optional payload matrix, row i paired with keys[i];
 *        pass {} for key-only sorting. Size must be keys.size() * row_words.
 * @param row_words payload row width in 32-bit words
 */
void ObliviousSortByKey(std::span<uint64_t> keys,
                        std::span<uint32_t> rows, int64_t row_words);

/** Key-only convenience wrapper. */
void ObliviousSort(std::span<uint64_t> keys);

/**
 * Oblivious uniform shuffle: attach random keys and sort by them. The
 * resulting permutation is uniform (up to RNG quality and the negligible
 * probability of key collisions) and the trace is input-independent.
 */
void ObliviousShuffle(std::span<uint32_t> rows, int64_t row_words,
                      int64_t num_rows, Rng& rng);

}  // namespace secemb::oblivious
