#include "oblivious/scan.h"

#include <cassert>
#include <cstring>
#include <limits>

#include "oblivious/ct_ops.h"
#include "telemetry/telemetry.h"

// Obliviousness-preserving instrumentation: every probe below fires once
// per call or per public shape (rows, k), never conditionally on the
// secret index — verified by telemetry_test.cc via ON/OFF trace equality.

namespace secemb::oblivious {

void
LinearScanLookup(std::span<const float> table, int64_t rows, int64_t cols,
                 int64_t index, std::span<float> out)
{
    assert(static_cast<int64_t>(table.size()) == rows * cols);
    assert(static_cast<int64_t>(out.size()) == cols);
    assert(index >= 0 && index < rows);
    TELEMETRY_COUNT("oblivious.scan.calls", 1);
    TELEMETRY_COUNT("oblivious.scan.rows", rows);
    for (int64_t r = 0; r < rows; ++r) {
        const uint64_t mask = EqMask(static_cast<uint64_t>(r),
                                     static_cast<uint64_t>(index));
        CtCopyRow(mask, table.subspan(static_cast<size_t>(r * cols),
                                      static_cast<size_t>(cols)),
                  out);
    }
}

void
LinearScanLookupAccumulate(std::span<const float> table, int64_t rows,
                           int64_t cols, int64_t index, std::span<float> out)
{
    assert(static_cast<int64_t>(table.size()) == rows * cols);
    assert(static_cast<int64_t>(out.size()) == cols);
    assert(index >= 0 && index < rows);
    TELEMETRY_COUNT("oblivious.scan.calls", 1);
    TELEMETRY_COUNT("oblivious.scan.rows", rows);
    for (int64_t r = 0; r < rows; ++r) {
        const uint64_t mask = EqMask(static_cast<uint64_t>(r),
                                     static_cast<uint64_t>(index));
        const float* src = table.data() + r * cols;
        for (int64_t c = 0; c < cols; ++c) {
            out[static_cast<size_t>(c)] +=
                SelectF32(mask, src[c], 0.0f);
        }
    }
}

int64_t
ObliviousArgmax(std::span<const float> values)
{
    assert(!values.empty());
    TELEMETRY_SPAN("oblivious.argmax");
    TELEMETRY_COUNT("oblivious.argmax.calls", 1);
    // Compare float bits with a total order trick: flip the sign bit for
    // non-negatives and all bits for negatives, then compare unsigned.
    auto key = [](float f) {
        uint32_t u;
        std::memcpy(&u, &f, sizeof(u));
        const uint32_t sign = u >> 31;
        return static_cast<uint64_t>(u ^ (sign ? 0xffffffffu : 0x80000000u));
    };
    uint64_t best_key = key(values[0]);
    uint64_t best_idx = 0;
    for (size_t i = 1; i < values.size(); ++i) {
        const uint64_t k = key(values[i]);
        const uint64_t greater = LtMask(best_key, k);
        best_key = Select(greater, k, best_key);
        best_idx = Select(greater, static_cast<uint64_t>(i), best_idx);
    }
    return static_cast<int64_t>(best_idx);
}

std::vector<int64_t>
ObliviousTopK(std::span<const float> values, int64_t k)
{
    assert(k >= 0 && k <= static_cast<int64_t>(values.size()));
    TELEMETRY_SPAN("oblivious.topk");
    TELEMETRY_COUNT("oblivious.topk.calls", 1);
    // Work on a masked copy: after each selection the winner is
    // obliviously overwritten with -inf (every slot is rewritten).
    std::vector<float> work(values.begin(), values.end());
    std::vector<int64_t> out;
    out.reserve(static_cast<size_t>(k));
    const float neg_inf = -std::numeric_limits<float>::infinity();
    for (int64_t round = 0; round < k; ++round) {
        const int64_t best = ObliviousArgmax(work);
        out.push_back(best);
        for (size_t i = 0; i < work.size(); ++i) {
            const uint64_t m = EqMask(static_cast<uint64_t>(i),
                                      static_cast<uint64_t>(best));
            work[i] = SelectF32(m, neg_inf, work[i]);
        }
    }
    return out;
}

uint64_t
ObliviousReadU64(std::span<const uint64_t> values, int64_t index)
{
    assert(index >= 0 && index < static_cast<int64_t>(values.size()));
    uint64_t out = 0;
    for (size_t i = 0; i < values.size(); ++i) {
        const uint64_t mask = EqMask(static_cast<uint64_t>(i),
                                     static_cast<uint64_t>(index));
        out = Select(mask, values[i], out);
    }
    return out;
}

void
ObliviousWriteU64(std::span<uint64_t> values, int64_t index, uint64_t v)
{
    assert(index >= 0 && index < static_cast<int64_t>(values.size()));
    for (size_t i = 0; i < values.size(); ++i) {
        const uint64_t mask = EqMask(static_cast<uint64_t>(i),
                                     static_cast<uint64_t>(index));
        values[i] = Select(mask, v, values[i]);
    }
}

}  // namespace secemb::oblivious
