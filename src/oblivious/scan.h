#pragma once

/**
 * @file
 * Oblivious scans: linear-scan table lookup, oblivious argmax, oblivious
 * scalar lookup/update over small arrays.
 *
 * These are the building blocks of the paper's "Table: Linear Scan"
 * technique and of the software ORAM controllers' stash and position-map
 * accesses (which must themselves be oblivious, Section V-A1).
 */

#include <cstdint>
#include <span>
#include <vector>

namespace secemb::oblivious {

/**
 * Copy row `index` of a row-major table (rows x cols) into out by scanning
 * every row and blending; the memory trace is independent of index.
 *
 * @param table flattened row-major table data (rows * cols floats)
 * @param rows number of rows; index must be in [0, rows)
 * @param cols row width; out.size() must equal cols
 */
void LinearScanLookup(std::span<const float> table, int64_t rows,
                      int64_t cols, int64_t index, std::span<float> out);

/**
 * Accumulating variant: out += table[index]. Used for multi-hot sparse
 * features (sum pooling) without a second pass.
 */
void LinearScanLookupAccumulate(std::span<const float> table, int64_t rows,
                                int64_t cols, int64_t index,
                                std::span<float> out);

/**
 * Index of the maximum value, computed with a constant-time scan
 * (the paper's oblivious argmax for LLM greedy decoding, Section V-C).
 * Ties resolve to the lowest index.
 */
int64_t ObliviousArgmax(std::span<const float> values);

/**
 * Indices of the k largest values, in descending value order, computed
 * with constant-time scans only (k passes of oblivious argmax with
 * oblivious masking). Supports the top-k sampling extension for secure
 * LLM decoding beyond the paper's greedy argmax.
 */
std::vector<int64_t> ObliviousTopK(std::span<const float> values,
                                   int64_t k);

/** Oblivious read of values[index] scanning the whole array. */
uint64_t ObliviousReadU64(std::span<const uint64_t> values, int64_t index);

/**
 * Oblivious write values[index] = v, rewriting every slot (each slot is
 * blended with itself except the target).
 */
void ObliviousWriteU64(std::span<uint64_t> values, int64_t index,
                       uint64_t v);

}  // namespace secemb::oblivious
