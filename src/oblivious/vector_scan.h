#pragma once

/**
 * @file
 * Vectorised oblivious linear scan.
 *
 * The paper's linear scan uses AVX-512 masked blends (Section V-A2);
 * this is the portable equivalent built on GCC/Clang vector extensions:
 * eight lanes of bitwise select per step, no branches, and the compiler
 * lowers it to the widest SIMD the target offers. Falls back to the
 * scalar scan for row widths that are not a multiple of the lane count —
 * the masked-tail case the paper handles with AVX masked loads.
 */

#include <cstdint>
#include <span>

namespace secemb::oblivious {

/** Lane count of the vectorised path. */
inline constexpr int64_t kScanLanes = 8;

/**
 * Vectorised LinearScanLookup: copies row `index` into out while touching
 * every row, using SIMD bitwise blends. Semantically identical to
 * LinearScanLookup for any cols (non-multiples of kScanLanes take the
 * scalar path).
 */
void LinearScanLookupVec(std::span<const float> table, int64_t rows,
                         int64_t cols, int64_t index,
                         std::span<float> out);

/**
 * Batch-parallel vectorised scan: for each batch element i, copy row
 * indices[i] into out[i*cols, (i+1)*cols) while touching every table row.
 * Elements are distributed over at most `nthreads` ParallelFor
 * participants; every participant runs the identical full-table scan per
 * element, so the data-access pattern stays independent of the indices.
 * out.size() must equal indices.size() * cols.
 */
void LinearScanLookupBatch(std::span<const float> table, int64_t rows,
                           int64_t cols, std::span<const int64_t> indices,
                           std::span<float> out, int nthreads);

/** True if `cols` takes the SIMD fast path. */
inline bool
VecScanEligible(int64_t cols)
{
    return cols % kScanLanes == 0;
}

}  // namespace secemb::oblivious
