#include "oblivious/vector_scan.h"

#include <cassert>

#include "oblivious/ct_ops.h"
#include "oblivious/scan.h"
#include "telemetry/telemetry.h"

namespace secemb::oblivious {

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define SECEMB_HAVE_VECTOR_EXT 1
using VecI = int32_t __attribute__((vector_size(32)));
// Memory-access view with element alignment only: tensor buffers are not
// guaranteed 32-byte aligned.
using VecIU = int32_t __attribute__((vector_size(32), aligned(4)));
#endif

}  // namespace

void
LinearScanLookupVec(std::span<const float> table, int64_t rows,
                    int64_t cols, int64_t index, std::span<float> out)
{
    assert(static_cast<int64_t>(table.size()) == rows * cols);
    assert(static_cast<int64_t>(out.size()) == cols);
    assert(index >= 0 && index < rows);
    // Fires per call with public shape operands only (rows is public);
    // the scalar fallback adds its own oblivious.scan.* counts.
    TELEMETRY_COUNT("oblivious.vscan.calls", 1);
    TELEMETRY_COUNT("oblivious.vscan.rows", rows);

#if SECEMB_HAVE_VECTOR_EXT
    if (VecScanEligible(cols)) {
        // Accumulate the selected row via full-width bitwise blends: for
        // each row r, lane mask is all-ones iff r == index.
        const VecIU* src =
            reinterpret_cast<const VecIU*>(table.data());
        VecIU* dst = reinterpret_cast<VecIU*>(out.data());
        const int64_t vecs_per_row = cols / kScanLanes;
        for (int64_t v = 0; v < vecs_per_row; ++v) dst[v] ^= dst[v];
        for (int64_t r = 0; r < rows; ++r) {
            const int32_t m = static_cast<int32_t>(
                EqMask(static_cast<uint64_t>(r),
                       static_cast<uint64_t>(index)));
            const VecI mask = {m, m, m, m, m, m, m, m};
            const VecIU* row = src + r * vecs_per_row;
            for (int64_t v = 0; v < vecs_per_row; ++v) {
                const VecI rv = row[v];
                const VecI dv = dst[v];
                dst[v] = (rv & mask) | (dv & ~mask);
            }
        }
        return;
    }
#endif
    LinearScanLookup(table, rows, cols, index, out);
}

}  // namespace secemb::oblivious
