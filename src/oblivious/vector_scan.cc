#include "oblivious/vector_scan.h"

#include <cassert>
#include <cstdint>
#include <type_traits>

#include "oblivious/ct_ops.h"
#include "oblivious/scan.h"
#include "telemetry/telemetry.h"
#include "tensor/parallel.h"

namespace secemb::oblivious {

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define SECEMB_HAVE_VECTOR_EXT 1
// may_alias: these vector types view float tensor storage as int32 lanes
// for bitwise blends; without it that reinterpret_cast is strict-aliasing
// UB that an LTO/optimisation bump is allowed to miscompile.
using VecI = int32_t __attribute__((vector_size(32), may_alias));
// Memory-access view with element alignment only, for callers handing in
// subspans or foreign buffers without 32-byte alignment.
using VecIU =
    int32_t __attribute__((vector_size(32), aligned(4), may_alias));

/** True if p can be accessed as a naturally-aligned 32-byte vector. */
inline bool
IsAligned32(const void* p)
{
    return (reinterpret_cast<uintptr_t>(p) & 31u) == 0;
}

/**
 * Blend-accumulate row `index` into out, touching every row. kAligned
 * selects the memory-access vector type: VecI when both buffers are
 * 32-byte aligned (Tensor payloads are 64-byte aligned, so this is the
 * common case and lowers to aligned loads/stores), VecIU otherwise.
 * The template parameter is a bool rather than the vector type itself:
 * alignment attributes do not participate in name mangling, so
 * ScanBlend<VecI> and ScanBlend<VecIU> would fold into one symbol at
 * link time and silently drop the unaligned variant.
 */
template <bool kAligned>
void
ScanBlend(const float* table, int64_t rows, int64_t vecs_per_row,
          int64_t index, float* out)
{
    using VecMem = std::conditional_t<kAligned, VecI, VecIU>;
    const VecMem* src = reinterpret_cast<const VecMem*>(table);
    VecMem* dst = reinterpret_cast<VecMem*>(out);
    for (int64_t v = 0; v < vecs_per_row; ++v) dst[v] ^= dst[v];
    for (int64_t r = 0; r < rows; ++r) {
        const int32_t m = static_cast<int32_t>(
            EqMask(static_cast<uint64_t>(r),
                   static_cast<uint64_t>(index)));
        const VecI mask = {m, m, m, m, m, m, m, m};
        const VecMem* row = src + r * vecs_per_row;
        for (int64_t v = 0; v < vecs_per_row; ++v) {
            const VecI rv = row[v];
            const VecI dv = dst[v];
            dst[v] = (rv & mask) | (dv & ~mask);
        }
    }
}
#endif

}  // namespace

void
LinearScanLookupVec(std::span<const float> table, int64_t rows,
                    int64_t cols, int64_t index, std::span<float> out)
{
    assert(static_cast<int64_t>(table.size()) == rows * cols);
    assert(static_cast<int64_t>(out.size()) == cols);
    assert(index >= 0 && index < rows);
    // Fires per call with public shape operands only (rows is public);
    // the scalar fallback adds its own oblivious.scan.* counts.
    TELEMETRY_COUNT("oblivious.vscan.calls", 1);
    TELEMETRY_COUNT("oblivious.vscan.rows", rows);

#if SECEMB_HAVE_VECTOR_EXT
    if (VecScanEligible(cols)) {
        // Accumulate the selected row via full-width bitwise blends: for
        // each row r, lane mask is all-ones iff r == index. Alignment is
        // a public property of the buffers (never index-dependent), so
        // this branch leaks nothing.
        const int64_t vecs_per_row = cols / kScanLanes;
        if (IsAligned32(table.data()) && IsAligned32(out.data())) {
            ScanBlend<true>(table.data(), rows, vecs_per_row, index,
                            out.data());
        } else {
            ScanBlend<false>(table.data(), rows, vecs_per_row, index,
                             out.data());
        }
        return;
    }
#endif
    LinearScanLookup(table, rows, cols, index, out);
}

void
LinearScanLookupBatch(std::span<const float> table, int64_t rows,
                      int64_t cols, std::span<const int64_t> indices,
                      std::span<float> out, int nthreads)
{
    const int64_t n = static_cast<int64_t>(indices.size());
    assert(static_cast<int64_t>(out.size()) == n * cols);
    // Fires once per batch with public shape operands; the per-element
    // scans add their own per-call counts (from whichever worker runs
    // them — counters are atomics, and counts depend only on n and rows).
    TELEMETRY_COUNT("oblivious.vscan.batches", 1);
    ParallelFor(n, nthreads, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
            LinearScanLookupVec(
                table, rows, cols, indices[static_cast<size_t>(i)],
                out.subspan(static_cast<size_t>(i * cols),
                            static_cast<size_t>(cols)));
        }
    });
}

}  // namespace secemb::oblivious
