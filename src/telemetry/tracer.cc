#include "telemetry/tracer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace secemb::telemetry {

namespace {

std::atomic<bool> g_enabled{true};

using Clock = std::chrono::steady_clock;

Clock::time_point
Epoch()
{
    static const Clock::time_point epoch = Clock::now();
    return epoch;
}

/**
 * Per-thread span ring. Push locks the ring's own mutex (uncontended in
 * steady state: the only other locker is a CollectSpans/ClearSpans call).
 * On thread exit the ring unregisters itself and moves its contents into
 * the global retired list so worker-pool spans survive the worker.
 */
class ThreadRing;

struct TracerState
{
    std::mutex mu;  ///< guards rings, retired, next_tid
    std::vector<ThreadRing*> rings;
    std::vector<SpanEvent> retired;
    std::atomic<uint64_t> dropped{0};
    uint32_t next_tid = 0;
};

TracerState&
State()
{
    static TracerState* state = new TracerState();  // leaked: threads may
    return *state;                                  // outlive main's exit
}

constexpr size_t kRingCapacity = 1 << 15;  ///< spans kept per thread

class ThreadRing
{
  public:
    ThreadRing()
    {
        auto& st = State();
        std::lock_guard<std::mutex> lock(st.mu);
        tid_ = st.next_tid++;
        st.rings.push_back(this);
    }

    ~ThreadRing()
    {
        auto& st = State();
        std::lock_guard<std::mutex> lock(st.mu);
        std::lock_guard<std::mutex> ring_lock(mu_);
        AppendTo(st.retired);
        events_.clear();
        st.rings.erase(std::find(st.rings.begin(), st.rings.end(), this));
    }

    void
    Push(const char* name, uint64_t start_ns, uint64_t dur_ns)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (events_.size() < kRingCapacity) {
            events_.push_back({name, start_ns, dur_ns, tid_});
        } else {
            events_[head_] = {name, start_ns, dur_ns, tid_};
            head_ = (head_ + 1) % kRingCapacity;
            State().dropped.fetch_add(1, std::memory_order_relaxed);
        }
    }

    /** Caller holds State().mu, so the ring cannot be destroyed. */
    void
    Snapshot(std::vector<SpanEvent>& out)
    {
        std::lock_guard<std::mutex> lock(mu_);
        AppendTo(out);
    }

    void
    Clear()
    {
        std::lock_guard<std::mutex> lock(mu_);
        events_.clear();
        head_ = 0;
    }

  private:
    void
    AppendTo(std::vector<SpanEvent>& out)
    {
        // Oldest-first: [head, end) then [0, head).
        out.insert(out.end(), events_.begin() + static_cast<long>(head_),
                   events_.end());
        out.insert(out.end(), events_.begin(),
                   events_.begin() + static_cast<long>(head_));
    }

    std::mutex mu_;
    std::vector<SpanEvent> events_;
    size_t head_ = 0;  ///< overwrite cursor once full
    uint32_t tid_ = 0;
};

ThreadRing&
LocalRing()
{
    thread_local ThreadRing ring;
    return ring;
}

/** Span names are string literals by convention, but the trace document
 *  must stay well-formed JSON whatever a caller passes. */
std::string
EscapeJson(const char* s)
{
    std::string out;
    for (; *s != '\0'; ++s) {
        const char c = *s;
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

void
SetEnabled(bool enabled)
{
    g_enabled.store(enabled, std::memory_order_relaxed);
}

bool
Enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

uint64_t
NowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Epoch())
            .count());
}

void
RecordSpan(const char* name, uint64_t start_ns, uint64_t dur_ns)
{
    LocalRing().Push(name, start_ns, dur_ns);
}

std::vector<SpanEvent>
CollectSpans()
{
    auto& st = State();
    std::vector<SpanEvent> out;
    {
        std::lock_guard<std::mutex> lock(st.mu);
        out = st.retired;
        for (ThreadRing* ring : st.rings) ring->Snapshot(out);
    }
    std::sort(out.begin(), out.end(),
              [](const SpanEvent& a, const SpanEvent& b) {
                  return a.start_ns < b.start_ns;
              });
    return out;
}

uint64_t
DroppedSpans()
{
    return State().dropped.load(std::memory_order_relaxed);
}

void
ClearSpans()
{
    auto& st = State();
    std::lock_guard<std::mutex> lock(st.mu);
    st.retired.clear();
    for (ThreadRing* ring : st.rings) ring->Clear();
    st.dropped.store(0, std::memory_order_relaxed);
}

bool
WriteChromeTrace(const std::string& path)
{
    const std::vector<SpanEvent> spans = CollectSpans();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\"traceEvents\":[");
    bool first = true;
    for (const SpanEvent& s : spans) {
        std::fprintf(
            f,
            "%s\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%u,"
            "\"ts\":%.3f,\"dur\":%.3f}",
            first ? "" : ",", EscapeJson(s.name).c_str(), s.tid,
            static_cast<double>(s.start_ns) * 1e-3,
            static_cast<double>(s.dur_ns) * 1e-3);
        first = false;
    }
    std::fprintf(f, "\n]}\n");
    const bool ok = std::fclose(f) == 0;
    return ok;
}

}  // namespace secemb::telemetry
