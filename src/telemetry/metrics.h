#pragma once

/**
 * @file
 * Metrics registry: branchless counters, gauges, and log-bucketed latency
 * histograms (p50/p95/p99).
 *
 * All mutation paths are wait-free atomic updates whose control flow never
 * depends on secret data: a counter increment happens for every call of an
 * instrumented function regardless of the index values it was given, which
 * is the repo's obliviousness-preserving instrumentation rule (see
 * DESIGN.md "Observability").
 */

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/tracer.h"

namespace secemb::telemetry {

/** Monotonic event counter. Add() is a single relaxed fetch_add. */
class Counter
{
  public:
    void
    Add(uint64_t n = 1) noexcept
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    Value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

    void Reset() noexcept { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-writer-wins instantaneous value. */
class Gauge
{
  public:
    void
    Set(int64_t v) noexcept
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    Add(int64_t n) noexcept
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    int64_t
    Value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

    void Reset() noexcept { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * Log-linear bucketed histogram for non-negative integer samples
 * (latencies in ns). Values below 2^kSubBucketLog2 get exact buckets;
 * above, each power of two is split into 2^kSubBucketLog2 sub-buckets, so
 * the relative bucket width — and hence the worst-case percentile error —
 * is 2^-kSubBucketLog2 (6.25%). Recording is two relaxed atomic adds plus
 * bounded min/max CAS loops; no allocation after construction.
 */
class Histogram
{
  public:
    static constexpr int kSubBucketLog2 = 4;
    static constexpr uint64_t kSubBuckets = 1ull << kSubBucketLog2;
    /** Exact buckets [0, kSubBuckets) + 16 sub-buckets per exponent. */
    static constexpr size_t kNumBuckets =
        kSubBuckets + (64 - kSubBucketLog2) * kSubBuckets;

    /** Point-in-time summary. With count == 0 there is no data to
     *  summarise, so mean/p50/p95/p99 are NaN (serialised as null by
     *  JsonWriter) rather than a misleading 0.0. */
    struct Snapshot
    {
        uint64_t count = 0;
        uint64_t sum = 0;
        uint64_t min = 0;
        uint64_t max = 0;
        double mean = std::numeric_limits<double>::quiet_NaN();
        double p50 = std::numeric_limits<double>::quiet_NaN();
        double p95 = std::numeric_limits<double>::quiet_NaN();
        double p99 = std::numeric_limits<double>::quiet_NaN();
    };

    Histogram() = default;

    void Record(uint64_t value) noexcept;

    /**
     * Approximate value at percentile p in [0, 100]; returns NaN for an
     * empty histogram (there is no sample to report — 0 would be
     * indistinguishable from a real 0ns latency). p <= 0 reports the
     * minimum, p >= 100 the maximum.
     */
    double Percentile(double p) const;

    uint64_t Count() const;
    uint64_t Sum() const;
    Snapshot TakeSnapshot() const;
    void Reset();

    /** Bucket index for a sample value (exposed for tests). */
    static size_t BucketIndex(uint64_t value);
    /** Inclusive [lo, hi] value range covered by bucket `idx`. */
    static void BucketRange(size_t idx, uint64_t* lo, uint64_t* hi);

  private:
    std::atomic<uint64_t> buckets_[kNumBuckets] = {};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> min_{UINT64_MAX};
    std::atomic<uint64_t> max_{0};
};

/** RAII timer recording the scope's duration (ns) into a histogram. */
class ScopedLatency
{
  public:
    explicit ScopedLatency(Histogram& hist)
    {
        if (Enabled()) {
            hist_ = &hist;
            start_ns_ = NowNs();
        }
    }

    ~ScopedLatency()
    {
        if (hist_ != nullptr) hist_->Record(NowNs() - start_ns_);
    }

    ScopedLatency(const ScopedLatency&) = delete;
    ScopedLatency& operator=(const ScopedLatency&) = delete;

  private:
    Histogram* hist_ = nullptr;
    uint64_t start_ns_ = 0;
};

/**
 * Process-wide metric registry. Get* registers on first use and returns a
 * reference that stays valid for the process lifetime; lookups take a
 * mutex, so instrumentation sites cache the reference in a function-local
 * static (what the TELEMETRY_* macros below do).
 */
class Registry
{
  public:
    static Registry& Instance();

    Counter& GetCounter(std::string_view name);
    Gauge& GetGauge(std::string_view name);
    Histogram& GetHistogram(std::string_view name);

    struct MetricsSnapshot
    {
        std::vector<std::pair<std::string, uint64_t>> counters;
        std::vector<std::pair<std::string, int64_t>> gauges;
        std::vector<std::pair<std::string, Histogram::Snapshot>>
            histograms;
    };

    /** Name-sorted snapshot of every registered metric. */
    MetricsSnapshot TakeSnapshot() const;

    /** Zero every metric (registrations are kept). Test/bench helper. */
    void ResetAll();

  private:
    Registry() = default;
    struct Impl;
    Impl& impl() const;
};

#if SECEMB_TELEMETRY_ENABLED
/** Add `n` to process counter `name` (string literal). */
#define TELEMETRY_COUNT(name, n)                                          \
    do {                                                                  \
        if (::secemb::telemetry::Enabled()) {                             \
            static ::secemb::telemetry::Counter& secemb_telemetry_c =     \
                ::secemb::telemetry::Registry::Instance().GetCounter(     \
                    name);                                                \
            secemb_telemetry_c.Add(static_cast<uint64_t>(n));             \
        }                                                                 \
    } while (0)

/** Record a duration/size sample into histogram `name`. */
#define TELEMETRY_HIST(name, v)                                           \
    do {                                                                  \
        if (::secemb::telemetry::Enabled()) {                             \
            static ::secemb::telemetry::Histogram& secemb_telemetry_h =   \
                ::secemb::telemetry::Registry::Instance().GetHistogram(   \
                    name);                                                \
            secemb_telemetry_h.Record(static_cast<uint64_t>(v));          \
        }                                                                 \
    } while (0)

/** Set process gauge `name` (string literal) to value `v`. */
#define TELEMETRY_GAUGE_SET(name, v)                                      \
    do {                                                                  \
        if (::secemb::telemetry::Enabled()) {                             \
            static ::secemb::telemetry::Gauge& secemb_telemetry_g =       \
                ::secemb::telemetry::Registry::Instance().GetGauge(name); \
            secemb_telemetry_g.Set(static_cast<int64_t>(v));              \
        }                                                                 \
    } while (0)

/** Time the rest of the scope into histogram `name` (ns samples). */
#define TELEMETRY_SCOPED_LATENCY(name)                                    \
    static ::secemb::telemetry::Histogram&                                \
        SECEMB_TELEMETRY_CONCAT(secemb_telemetry_sl_h_, __LINE__) =       \
            ::secemb::telemetry::Registry::Instance().GetHistogram(name); \
    ::secemb::telemetry::ScopedLatency SECEMB_TELEMETRY_CONCAT(           \
        secemb_telemetry_sl_, __LINE__)(                                  \
        SECEMB_TELEMETRY_CONCAT(secemb_telemetry_sl_h_, __LINE__))
#else
#define TELEMETRY_COUNT(name, n) ((void)0)
#define TELEMETRY_HIST(name, v) ((void)0)
#define TELEMETRY_GAUGE_SET(name, v) ((void)0)
#define TELEMETRY_SCOPED_LATENCY(name) ((void)0)
#endif

}  // namespace secemb::telemetry
