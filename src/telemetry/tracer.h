#pragma once

/**
 * @file
 * Low-overhead scoped-span tracer.
 *
 * Spans are recorded into fixed-capacity thread-local ring buffers (no
 * allocation, no locking on the hot path beyond one uncontended per-thread
 * mutex) and can be exported as chrome://tracing JSON. The whole facility
 * compiles out to nothing when the build sets SECEMB_TELEMETRY_ENABLED=0
 * (CMake option SECEMB_TELEMETRY=OFF) and is runtime-gated by
 * telemetry::SetEnabled otherwise.
 *
 * Security note (DESIGN.md "Observability"): span begin/end points depend
 * only on public control flow (which function ran, with what public
 * shapes), never on secret index values, so tracing an oblivious path does
 * not perturb its memory access pattern.
 */

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace secemb::telemetry {

#if !defined(SECEMB_TELEMETRY_ENABLED)
#define SECEMB_TELEMETRY_ENABLED 1
#endif

/** One completed span. `name` must be a string literal (not owned). */
struct SpanEvent
{
    const char* name;
    uint64_t start_ns;  ///< relative to the process trace epoch
    uint64_t dur_ns;
    uint32_t tid;  ///< small dense thread id assigned at first span
};

/** Runtime master switch (compile-time switch is SECEMB_TELEMETRY). */
void SetEnabled(bool enabled);
bool Enabled();

/** Nanoseconds since the process trace epoch (steady clock). */
uint64_t NowNs();

/** Append one completed span to the calling thread's ring buffer. */
void RecordSpan(const char* name, uint64_t start_ns, uint64_t dur_ns);

/**
 * Snapshot of every span recorded so far (live thread rings plus rings of
 * already-exited threads), sorted by start time. Rings overwrite their
 * oldest entries when full; DroppedSpans() counts the overwritten ones.
 */
std::vector<SpanEvent> CollectSpans();

/** Spans overwritten because a thread ring was full. */
uint64_t DroppedSpans();

/** Discard all recorded spans (live and retired) and the drop counter. */
void ClearSpans();

/**
 * Write all recorded spans as a chrome://tracing / Perfetto JSON document
 * ({"traceEvents": [...]}, "X" phase events, microsecond timestamps).
 * Returns false if the file cannot be written.
 */
bool WriteChromeTrace(const std::string& path);

/** RAII span: records [construction, destruction) under `name`. */
class SpanGuard
{
  public:
    explicit SpanGuard(const char* name)
    {
        if (Enabled()) {
            name_ = name;
            start_ns_ = NowNs();
        }
    }

    ~SpanGuard()
    {
        if (name_ != nullptr) {
            RecordSpan(name_, start_ns_, NowNs() - start_ns_);
        }
    }

    SpanGuard(const SpanGuard&) = delete;
    SpanGuard& operator=(const SpanGuard&) = delete;

  private:
    const char* name_ = nullptr;  ///< nullptr = disabled at entry
    uint64_t start_ns_ = 0;
};

#define SECEMB_TELEMETRY_CONCAT2(a, b) a##b
#define SECEMB_TELEMETRY_CONCAT(a, b) SECEMB_TELEMETRY_CONCAT2(a, b)

#if SECEMB_TELEMETRY_ENABLED
/**
 * Open a scoped span named by a string literal:
 *   TELEMETRY_SPAN("gemm");
 * Compiles to ((void)0) when SECEMB_TELEMETRY=OFF.
 */
#define TELEMETRY_SPAN(name)                             \
    ::secemb::telemetry::SpanGuard SECEMB_TELEMETRY_CONCAT( \
        secemb_telemetry_span_, __LINE__)(name)
#else
#define TELEMETRY_SPAN(name) ((void)0)
#endif

}  // namespace secemb::telemetry
