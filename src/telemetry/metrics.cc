#include "telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

namespace secemb::telemetry {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

size_t
Histogram::BucketIndex(uint64_t value)
{
    if (value < kSubBuckets) return static_cast<size_t>(value);
    const int exp = 63 - std::countl_zero(value);
    const uint64_t sub = (value >> (exp - kSubBucketLog2)) - kSubBuckets;
    return kSubBuckets +
           static_cast<size_t>(exp - kSubBucketLog2) * kSubBuckets +
           static_cast<size_t>(sub);
}

void
Histogram::BucketRange(size_t idx, uint64_t* lo, uint64_t* hi)
{
    if (idx < kSubBuckets) {
        *lo = *hi = idx;
        return;
    }
    const size_t rel = idx - kSubBuckets;
    const int exp = kSubBucketLog2 + static_cast<int>(rel / kSubBuckets);
    const uint64_t sub = rel % kSubBuckets;
    *lo = (kSubBuckets + sub) << (exp - kSubBucketLog2);
    *hi = *lo + (1ull << (exp - kSubBucketLog2)) - 1;
}

void
Histogram::Record(uint64_t value) noexcept
{
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (value < cur &&
           !min_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
}

uint64_t
Histogram::Count() const
{
    return count_.load(std::memory_order_relaxed);
}

uint64_t
Histogram::Sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
Histogram::Percentile(double p) const
{
    const uint64_t count = Count();
    if (count == 0) return std::numeric_limits<double>::quiet_NaN();
    const uint64_t observed_min = min_.load(std::memory_order_relaxed);
    const uint64_t observed_max = max_.load(std::memory_order_relaxed);
    if (p <= 0.0) return static_cast<double>(observed_min);
    if (p >= 100.0) return static_cast<double>(observed_max);
    const uint64_t rank = std::clamp<uint64_t>(
        static_cast<uint64_t>(
            std::ceil(p / 100.0 * static_cast<double>(count))),
        1, count);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
        const uint64_t in_bucket =
            buckets_[i].load(std::memory_order_relaxed);
        cumulative += in_bucket;
        if (cumulative >= rank) {
            uint64_t lo = 0, hi = 0;
            BucketRange(i, &lo, &hi);
            // Bucket midpoint, clamped to the observed range so the first
            // and last buckets do not over/under-shoot min and max.
            const double mid =
                (static_cast<double>(lo) + static_cast<double>(hi)) / 2.0;
            return std::clamp(mid, static_cast<double>(observed_min),
                              static_cast<double>(observed_max));
        }
    }
    return static_cast<double>(observed_max);  // unreachable
}

Histogram::Snapshot
Histogram::TakeSnapshot() const
{
    Snapshot s;
    s.count = Count();
    s.sum = Sum();
    if (s.count > 0) {
        s.min = min_.load(std::memory_order_relaxed);
        s.max = max_.load(std::memory_order_relaxed);
        s.mean = static_cast<double>(s.sum) / static_cast<double>(s.count);
        s.p50 = Percentile(50.0);
        s.p95 = Percentile(95.0);
        s.p99 = Percentile(99.0);
    }
    return s;
}

void
Histogram::Reset()
{
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry::Impl
{
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms;
};

Registry::Impl&
Registry::impl() const
{
    // Leaked so instrumented code in static destructors stays safe.
    static Impl* impl = new Impl();
    return *impl;
}

Registry&
Registry::Instance()
{
    static Registry registry;
    return registry;
}

Counter&
Registry::GetCounter(std::string_view name)
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    auto it = im.counters.find(name);
    if (it == im.counters.end()) {
        it = im.counters
                 .emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge&
Registry::GetGauge(std::string_view name)
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    auto it = im.gauges.find(name);
    if (it == im.gauges.end()) {
        it = im.gauges
                 .emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    }
    return *it->second;
}

Histogram&
Registry::GetHistogram(std::string_view name)
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    auto it = im.histograms.find(name);
    if (it == im.histograms.end()) {
        it = im.histograms
                 .emplace(std::string(name),
                          std::make_unique<Histogram>())
                 .first;
    }
    return *it->second;
}

Registry::MetricsSnapshot
Registry::TakeSnapshot() const
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    MetricsSnapshot snap;
    for (const auto& [name, c] : im.counters) {
        snap.counters.emplace_back(name, c->Value());
    }
    for (const auto& [name, g] : im.gauges) {
        snap.gauges.emplace_back(name, g->Value());
    }
    for (const auto& [name, h] : im.histograms) {
        snap.histograms.emplace_back(name, h->TakeSnapshot());
    }
    return snap;
}

void
Registry::ResetAll()
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    for (auto& [name, c] : im.counters) c->Reset();
    for (auto& [name, g] : im.gauges) g->Reset();
    for (auto& [name, h] : im.histograms) h->Reset();
}

}  // namespace secemb::telemetry
