#pragma once

/**
 * @file
 * Umbrella header for the telemetry subsystem: scoped-span tracing
 * (TELEMETRY_SPAN), counters/gauges/histograms (TELEMETRY_COUNT,
 * TELEMETRY_HIST, TELEMETRY_SCOPED_LATENCY), chrome://tracing export, and
 * the process metric registry.
 *
 * Configure with the CMake option SECEMB_TELEMETRY (default ON). When OFF,
 * every macro expands to ((void)0) and instrumented code pays nothing; the
 * runtime API (Registry, CollectSpans, ...) still links but records
 * nothing. When ON, telemetry::SetEnabled(false) is the runtime kill
 * switch.
 *
 * Instrumentation rule (obliviousness-preserving observability): a probe
 * may fire per call, per row, or per public shape — never conditionally on
 * a secret index or on data derived from one. telemetry_test.cc enforces
 * this by recording the memory trace of the oblivious paths with telemetry
 * ON vs OFF and asserting bit-identical traces.
 */

#include "telemetry/metrics.h"
#include "telemetry/tracer.h"
