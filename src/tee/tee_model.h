#pragma once

/**
 * @file
 * TEE execution-cost model.
 *
 * The paper's ZeroTrace ablation (Fig. 10) compares three deployments of
 * the software ORAM controller on SGX:
 *   - ZT-Original: ORAM tree outside the enclave; every path read/write
 *     crosses the enclave boundary (ocall), and the oblivious-select helper
 *     is a non-inlined assembly stub.
 *   - ZT-Gramine: whole tree inside the (scalable SGX) EPC — no boundary
 *     crossings — but the select helper is still non-inlined and posmap
 *     recursion is disabled.
 *   - ZT-Gramine-Opt: recursion enabled and the select helper inlined.
 *
 * We do not have SGX hardware; the enclave-boundary cost is modelled as a
 * calibrated busy-wait per crossing (default 8 us, the commonly reported
 * SGX ocall round-trip), while the inlining and recursion effects are
 * *real* code-path differences, not modelled.
 */

#include <cstdint>

namespace secemb::tee {

/** The three ZeroTrace deployment variants of Fig. 10. */
enum class ZtVariant
{
    kOriginal,    ///< ocalls per path + non-inlined select + no recursion
    kGramine,     ///< in-EPC tree + non-inlined select + no recursion
    kGramineOpt,  ///< in-EPC tree + inlined select + recursion
};

/** Cost knobs derived from a ZtVariant. */
struct TeeCostModel
{
    double ocall_ns = 0.0;  ///< penalty per enclave boundary crossing
    bool inline_select = true;
    bool enable_recursion = true;

    /** Model for a given deployment variant. */
    static TeeCostModel ForVariant(ZtVariant v, double ocall_ns = 8000.0);
};

/** Busy-wait for approximately `ns` nanoseconds (no-op if ns <= 0). */
void Spin(double ns);

/** Human-readable variant name. */
const char* ZtVariantName(ZtVariant v);

}  // namespace secemb::tee
