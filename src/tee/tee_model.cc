#include "tee/tee_model.h"

#include <chrono>

namespace secemb::tee {

TeeCostModel
TeeCostModel::ForVariant(ZtVariant v, double ocall_ns)
{
    switch (v) {
      case ZtVariant::kOriginal:
        return {ocall_ns, /*inline_select=*/false,
                /*enable_recursion=*/false};
      case ZtVariant::kGramine:
        return {0.0, /*inline_select=*/false, /*enable_recursion=*/false};
      case ZtVariant::kGramineOpt:
        return {0.0, /*inline_select=*/true, /*enable_recursion=*/true};
    }
    return {};
}

void
Spin(double ns)
{
    if (ns <= 0.0) return;
    const auto start = std::chrono::steady_clock::now();
    const auto deadline =
        start + std::chrono::nanoseconds(static_cast<int64_t>(ns));
    while (std::chrono::steady_clock::now() < deadline) {
        // busy wait
    }
}

const char*
ZtVariantName(ZtVariant v)
{
    switch (v) {
      case ZtVariant::kOriginal: return "ZT-Original";
      case ZtVariant::kGramine: return "ZT-Gramine";
      case ZtVariant::kGramineOpt: return "ZT-Gramine-Opt";
    }
    return "?";
}

}  // namespace secemb::tee
