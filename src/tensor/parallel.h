#pragma once

/**
 * @file
 * Thread-count-parameterised parallel loop backed by a persistent pool.
 *
 * The paper's profiling sweeps thread counts explicitly (Fig. 6), so the
 * thread count stays a per-call parameter rather than a global pool
 * setting: a call with `nthreads` never uses more than `nthreads`
 * participants (the caller plus at most nthreads-1 pool workers). What the
 * pool changes is *where the threads come from*: workers are created
 * lazily on first use, parked on a condition variable between regions, and
 * woken per region — so the Fig. 6 / Fig. 12 sweeps no longer pay a
 * thread create+join on every data point (the per-request overhead that
 * batched embedding lookups are supposed to amortise away).
 */

#include <cstdint>
#include <functional>

namespace secemb {

/**
 * Run fn(begin, end) over [0, n) split into min(nthreads, n) contiguous
 * chunks executed by at most that many concurrent participants.
 *
 * Semantics:
 *  - nthreads <= 1 (or n <= 1) runs fn(0, n) inline on the calling thread.
 *  - Chunk boundaries are deterministic (ceil(n/workers)-sized contiguous
 *    ranges) regardless of which participant executes which chunk.
 *  - Exception safety: the first exception thrown by any participant
 *    (worker or caller) is captured via std::exception_ptr, remaining
 *    unstarted chunks are skipped, every participant is quiesced, and the
 *    exception is rethrown on the calling thread. Workers survive and are
 *    reused by the next region — a throwing fn no longer terminates the
 *    process.
 *  - Nested calls (fn itself calling ParallelFor, on the caller or on a
 *    pool worker) run inline rather than deadlocking on the pool.
 *  - Concurrent top-level calls from distinct user threads are serialised;
 *    the pool runs one region at a time so per-call thread caps stay
 *    honest.
 */
void ParallelFor(int64_t n, int nthreads,
                 const std::function<void(int64_t, int64_t)>& fn);

/**
 * Default worker count for callers that do not sweep thread counts:
 * the SECEMB_THREADS environment variable if set to a positive integer,
 * otherwise std::thread::hardware_concurrency() (minimum 1). Read once
 * and cached.
 */
int DefaultNumThreads();

/**
 * True while the calling thread is executing inside a ParallelFor region
 * (as the caller or as a pool worker). Nested ParallelFor calls observe
 * this and run inline.
 */
bool InParallelRegion();

/**
 * Test hook for schedule fuzzing: when max_spin > 0, every participant
 * spins a pseudo-random (seeded, deterministic) number of iterations —
 * up to max_spin — before claiming each chunk. This perturbs which
 * participant executes which chunk without changing the chunk boundaries,
 * so trace-identity tests can prove that recorded memory traces are
 * invariant under scheduling (deterministic replay). max_spin = 0
 * restores normal operation. Not for production use.
 */
void SetScheduleJitterForTest(uint32_t max_spin, uint64_t seed);

/**
 * Test hook invoked by whichever participant claimed a chunk, immediately
 * before the region body runs on that chunk's [begin, end) range. The
 * fault-injection framework (src/fault) installs a hook here to force
 * worker stalls and exceptions inside parallel regions: an exception
 * thrown by the hook propagates exactly like one thrown by the region body
 * (captured, region quiesced, rethrown on the calling thread). The hook
 * also fires on the inline path (nthreads <= 1 or nested regions) so
 * injection does not depend on the thread count. nullptr restores normal
 * operation. Install only while no region is running.
 */
using ChunkFaultHook = void (*)(int64_t begin, int64_t end);
void SetChunkFaultHookForTest(ChunkFaultHook hook);

/** Point-in-time observability of the persistent pool (tests/benches). */
struct ThreadPoolStats
{
    int threads = 0;          ///< parked/working pool threads alive now
    uint64_t regions = 0;     ///< parallel regions dispatched to the pool
    uint64_t helper_joins = 0;  ///< pool workers that joined some region
};

ThreadPoolStats GetThreadPoolStats();

}  // namespace secemb
