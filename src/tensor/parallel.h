#pragma once

/**
 * @file
 * Thread-count-parameterised parallel loop.
 *
 * The paper's profiling sweeps thread counts explicitly (Fig. 6), so the
 * thread count is a per-call parameter rather than a global pool setting.
 */

#include <cstdint>
#include <functional>

namespace secemb {

/**
 * Run fn(begin, end) over [0, n) split into nthreads contiguous chunks.
 *
 * nthreads <= 1 (or n small) runs inline on the calling thread. Threads are
 * created per call; for the workload sizes in this library the creation
 * cost is amortised, and per-call creation keeps the thread count honest
 * when sweeping configurations.
 */
void ParallelFor(int64_t n, int nthreads,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace secemb
