#include "tensor/rng.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace secemb {

namespace {

uint64_t
SplitMix64(uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
Rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed)
{
    Seed(seed);
}

void
Rng::Seed(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
    has_cached_gaussian_ = false;
}

uint64_t
Rng::Next()
{
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::NextBounded(uint64_t bound)
{
    // bound == 0 would divide by zero in `-bound % bound` (UB); there is
    // no uniform draw from an empty range, so refuse it loudly.
    assert(bound > 0);
    if (bound == 0) {
        throw std::invalid_argument("Rng::NextBounded: bound must be > 0");
    }
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        const uint64_t r = Next();
        if (r >= threshold) return r % bound;
    }
}

double
Rng::NextDouble()
{
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float
Rng::NextUniform(float lo, float hi)
{
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

float
Rng::NextGaussian()
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = NextDouble();
    } while (u1 <= 1e-300);
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = static_cast<float>(r * std::sin(theta));
    has_cached_gaussian_ = true;
    return static_cast<float>(r * std::cos(theta));
}

}  // namespace secemb
