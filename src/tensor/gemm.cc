#include "tensor/gemm.h"

#include <cassert>
#include <stdexcept>

#include "perfmon/perfmon.h"
#include "telemetry/telemetry.h"
#include "tensor/parallel.h"

namespace secemb {

namespace {

/**
 * Validate all three operands of C = A * B against the public shape
 * (m, k, n). `b_rows`/`b_cols` are what the B operand must actually be
 * — (k, n) for Gemm, (n, k) for GemmBT — so a mismatched B fails here
 * instead of producing silent out-of-bounds reads.
 */
void
CheckMatMulShapes(const Tensor& a, const Tensor& b, const Tensor& c,
                  int64_t m, int64_t k, int64_t n, int64_t b_rows,
                  int64_t b_cols)
{
    if (a.dim() != 2 || b.dim() != 2 || c.dim() != 2) {
        throw std::invalid_argument("Gemm: all operands must be 2-D");
    }
    if (a.size(0) != m || a.size(1) != k) {
        throw std::invalid_argument("Gemm: A shape mismatch");
    }
    if (b.size(0) != b_rows || b.size(1) != b_cols) {
        throw std::invalid_argument("Gemm: B shape mismatch");
    }
    if (c.size(0) != m || c.size(1) != n) {
        throw std::invalid_argument("Gemm: C shape mismatch");
    }
}

/** Tensor-buffer alignment contract at the kernel boundary. */
void
AssertKernelAlignment(const Tensor& a, const Tensor& c)
{
    assert(IsAligned64(a.data()));
    assert(IsAligned64(c.data()));
    (void)a;
    (void)c;
}

}  // namespace

void
Gemm(const Tensor& a, const Tensor& b, Tensor& c, int nthreads)
{
    const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
    if (b.size(0) != k) throw std::invalid_argument("Gemm: inner mismatch");
    CheckMatMulShapes(a, b, c, m, k, n, k, n);
    TELEMETRY_SCOPED_COUNTERS("tensor.gemm");
    TELEMETRY_COUNT("tensor.gemm.calls", 1);
    TELEMETRY_COUNT("tensor.gemm.flops", 2 * m * k * n);
    AssertKernelAlignment(a, c);

    // Transient pack: A and B here are usually activations, not weights.
    kernels::PackedB packed;
    kernels::PackB(b.data(), k, n, /*transposed_src=*/false,
                   kernels::ActiveIsa(), &packed);
    kernels::GemmArgs args;
    args.a = a.data();
    args.b = &packed;
    args.c = c.data();
    args.m = m;
    args.nthreads = nthreads;
    kernels::GemmPacked(args);
}

void
GemmBT(const Tensor& a, const Tensor& b_t, Tensor& c, int nthreads)
{
    const int64_t m = a.size(0), k = a.size(1), n = b_t.size(0);
    if (b_t.size(1) != k) {
        throw std::invalid_argument("GemmBT: inner mismatch");
    }
    CheckMatMulShapes(a, b_t, c, m, k, n, n, k);
    TELEMETRY_SPAN("tensor.gemm_bt");
    TELEMETRY_COUNT("tensor.gemm.calls", 1);
    TELEMETRY_COUNT("tensor.gemm.flops", 2 * m * k * n);
    AssertKernelAlignment(a, c);

    kernels::PackedB packed;
    kernels::PackB(b_t.data(), k, n, /*transposed_src=*/true,
                   kernels::ActiveIsa(), &packed);
    kernels::GemmArgs args;
    args.a = a.data();
    args.b = &packed;
    args.c = c.data();
    args.m = m;
    args.nthreads = nthreads;
    kernels::GemmPacked(args);
}

void
GemmWeightBT(const Tensor& a, const Tensor& w, Tensor& c, int nthreads,
             kernels::Dtype dtype)
{
    const int64_t m = a.size(0), k = a.size(1), n = w.size(0);
    if (w.size(1) != k) {
        throw std::invalid_argument("GemmWeightBT: inner mismatch");
    }
    CheckMatMulShapes(a, w, c, m, k, n, n, k);
    TELEMETRY_SPAN("tensor.gemm_bt");
    TELEMETRY_COUNT("tensor.gemm.calls", 1);
    TELEMETRY_COUNT("tensor.gemm.flops", 2 * m * k * n);
    AssertKernelAlignment(a, c);

    const auto packed = kernels::PackedWeightCache::Instance().Get(
        w.data(), k, n, /*transposed_src=*/true, dtype);
    kernels::GemmArgs args;
    args.a = a.data();
    args.b = packed.get();
    args.c = c.data();
    args.m = m;
    args.nthreads = nthreads;
    kernels::GemmPacked(args);
}

void
GemmAT(const Tensor& a_t, const Tensor& b, Tensor& c, int nthreads)
{
    const int64_t k = a_t.size(0), m = a_t.size(1), n = b.size(1);
    if (b.size(0) != k) {
        throw std::invalid_argument("GemmAT: inner mismatch");
    }
    if (c.size(0) != m || c.size(1) != n) {
        throw std::invalid_argument("GemmAT: output shape mismatch");
    }
    TELEMETRY_SPAN("tensor.gemm_at");
    TELEMETRY_COUNT("tensor.gemm.calls", 1);
    TELEMETRY_COUNT("tensor.gemm.flops", 2 * m * k * n);
    AssertKernelAlignment(a_t, c);

    kernels::PackedB packed;
    kernels::PackB(b.data(), k, n, /*transposed_src=*/false,
                   kernels::ActiveIsa(), &packed);
    kernels::GemmArgs args;
    args.a = a_t.data();
    args.a_transposed = true;
    args.b = &packed;
    args.c = c.data();
    args.m = m;
    args.nthreads = nthreads;
    kernels::GemmPacked(args);
}

Tensor
MatMul(const Tensor& a, const Tensor& b, int nthreads)
{
    Tensor c({a.size(0), b.size(1)});
    Gemm(a, b, c, nthreads);
    return c;
}

void
AffineForward(const Tensor& x, const Tensor& w, const Tensor& bias,
              Tensor& y, int nthreads, kernels::Dtype dtype)
{
    AffineActForward(x, w, bias, y, nthreads,
                     kernels::Activation::kIdentity, nullptr, dtype);
}

void
AffineActForward(const Tensor& x, const Tensor& w, const Tensor& bias,
                 Tensor& y, int nthreads, kernels::Activation act,
                 Tensor* preact, kernels::Dtype dtype)
{
    const int64_t m = x.size(0), k = x.size(1), n = w.size(1);
    if (w.size(0) != k) {
        throw std::invalid_argument("AffineForward: inner mismatch");
    }
    CheckMatMulShapes(x, w, y, m, k, n, k, n);
    assert(bias.empty() || bias.numel() == n);
    assert(preact == nullptr ||
           (preact->size(0) == m && preact->size(1) == n));
    TELEMETRY_SPAN("tensor.affine");
    TELEMETRY_COUNT("tensor.gemm.calls", 1);
    TELEMETRY_COUNT("tensor.gemm.flops", 2 * m * k * n);
    AssertKernelAlignment(x, y);

    const auto packed = kernels::PackedWeightCache::Instance().Get(
        w.data(), k, n, /*transposed_src=*/false, dtype);
    kernels::GemmArgs args;
    args.a = x.data();
    args.b = packed.get();
    args.c = y.data();
    args.m = m;
    args.epilogue.bias = bias.empty() ? nullptr : bias.data();
    args.epilogue.act = act;
    args.epilogue.preact = preact == nullptr ? nullptr : preact->data();
    args.nthreads = nthreads;
    kernels::GemmPacked(args);
}

// ---------------------------------------------------------------------------
// Naive reference kernels
// ---------------------------------------------------------------------------

void
GemmNaive(const Tensor& a, const Tensor& b, Tensor& c, int nthreads)
{
    const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
    if (b.size(0) != k) throw std::invalid_argument("Gemm: inner mismatch");
    CheckMatMulShapes(a, b, c, m, k, n, k, n);

    const float* ap = a.data();
    const float* bp = b.data();
    float* cp = c.data();

    ParallelFor(m, nthreads, [=](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
            float* crow = cp + i * n;
            for (int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
            const float* arow = ap + i * k;
            for (int64_t p = 0; p < k; ++p) {
                const float aval = arow[p];
                const float* brow = bp + p * n;
                for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
            }
        }
    });
}

void
GemmBTNaive(const Tensor& a, const Tensor& b_t, Tensor& c, int nthreads)
{
    const int64_t m = a.size(0), k = a.size(1), n = b_t.size(0);
    if (b_t.size(1) != k) {
        throw std::invalid_argument("GemmBT: inner mismatch");
    }
    CheckMatMulShapes(a, b_t, c, m, k, n, n, k);

    const float* ap = a.data();
    const float* bp = b_t.data();
    float* cp = c.data();

    ParallelFor(m, nthreads, [=](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
            const float* arow = ap + i * k;
            float* crow = cp + i * n;
            for (int64_t j = 0; j < n; ++j) {
                const float* brow = bp + j * k;
                float acc = 0.0f;
                for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
                crow[j] = acc;
            }
        }
    });
}

void
GemmATNaive(const Tensor& a_t, const Tensor& b, Tensor& c, int nthreads)
{
    const int64_t k = a_t.size(0), m = a_t.size(1), n = b.size(1);
    if (b.size(0) != k) {
        throw std::invalid_argument("GemmAT: inner mismatch");
    }
    if (c.size(0) != m || c.size(1) != n) {
        throw std::invalid_argument("GemmAT: output shape mismatch");
    }

    const float* ap = a_t.data();
    const float* bp = b.data();
    float* cp = c.data();

    ParallelFor(m, nthreads, [=](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
            float* crow = cp + i * n;
            for (int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
            for (int64_t p = 0; p < k; ++p) {
                const float aval = ap[p * m + i];
                const float* brow = bp + p * n;
                for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
            }
        }
    });
}

}  // namespace secemb
