#include "tensor/gemm.h"

#include <cassert>
#include <stdexcept>

#include "telemetry/telemetry.h"
#include "tensor/parallel.h"

namespace secemb {

namespace {

void
CheckMatMulShapes(const Tensor& a, const Tensor& b, const Tensor& c,
                  int64_t m, int64_t k, int64_t n)
{
    if (a.dim() != 2 || b.dim() != 2 || c.dim() != 2) {
        throw std::invalid_argument("Gemm: all operands must be 2-D");
    }
    if (a.size(0) != m || a.size(1) != k || c.size(0) != m ||
        c.size(1) != n) {
        throw std::invalid_argument("Gemm: shape mismatch");
    }
    (void)b;
}

}  // namespace

void
Gemm(const Tensor& a, const Tensor& b, Tensor& c, int nthreads)
{
    const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
    if (b.size(0) != k) throw std::invalid_argument("Gemm: inner mismatch");
    CheckMatMulShapes(a, b, c, m, k, n);
    TELEMETRY_SPAN("tensor.gemm");
    TELEMETRY_COUNT("tensor.gemm.calls", 1);
    TELEMETRY_COUNT("tensor.gemm.flops", 2 * m * k * n);

    const float* ap = a.data();
    const float* bp = b.data();
    float* cp = c.data();

    ParallelFor(m, nthreads, [=](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
            float* crow = cp + i * n;
            for (int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
            const float* arow = ap + i * k;
            for (int64_t p = 0; p < k; ++p) {
                const float aval = arow[p];
                const float* brow = bp + p * n;
                for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
            }
        }
    });
}

void
GemmBT(const Tensor& a, const Tensor& b_t, Tensor& c, int nthreads)
{
    const int64_t m = a.size(0), k = a.size(1), n = b_t.size(0);
    if (b_t.size(1) != k) {
        throw std::invalid_argument("GemmBT: inner mismatch");
    }
    CheckMatMulShapes(a, b_t, c, m, k, n);
    TELEMETRY_SPAN("tensor.gemm_bt");
    TELEMETRY_COUNT("tensor.gemm.calls", 1);
    TELEMETRY_COUNT("tensor.gemm.flops", 2 * m * k * n);

    const float* ap = a.data();
    const float* bp = b_t.data();
    float* cp = c.data();

    ParallelFor(m, nthreads, [=](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
            const float* arow = ap + i * k;
            float* crow = cp + i * n;
            for (int64_t j = 0; j < n; ++j) {
                const float* brow = bp + j * k;
                float acc = 0.0f;
                for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
                crow[j] = acc;
            }
        }
    });
}

void
GemmAT(const Tensor& a_t, const Tensor& b, Tensor& c, int nthreads)
{
    const int64_t k = a_t.size(0), m = a_t.size(1), n = b.size(1);
    if (b.size(0) != k) {
        throw std::invalid_argument("GemmAT: inner mismatch");
    }
    if (c.size(0) != m || c.size(1) != n) {
        throw std::invalid_argument("GemmAT: output shape mismatch");
    }
    TELEMETRY_SPAN("tensor.gemm_at");
    TELEMETRY_COUNT("tensor.gemm.calls", 1);
    TELEMETRY_COUNT("tensor.gemm.flops", 2 * m * k * n);

    const float* ap = a_t.data();
    const float* bp = b.data();
    float* cp = c.data();

    ParallelFor(m, nthreads, [=](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
            float* crow = cp + i * n;
            for (int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
            for (int64_t p = 0; p < k; ++p) {
                const float aval = ap[p * m + i];
                const float* brow = bp + p * n;
                for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
            }
        }
    });
}

Tensor
MatMul(const Tensor& a, const Tensor& b, int nthreads)
{
    Tensor c({a.size(0), b.size(1)});
    Gemm(a, b, c, nthreads);
    return c;
}

void
AffineForward(const Tensor& x, const Tensor& w, const Tensor& bias,
              Tensor& y, int nthreads)
{
    Gemm(x, w, y, nthreads);
    if (bias.empty()) return;
    const int64_t m = y.size(0), n = y.size(1);
    assert(bias.numel() == n);
    const float* bp = bias.data();
    float* yp = y.data();
    for (int64_t i = 0; i < m; ++i) {
        float* yrow = yp + i * n;
        for (int64_t j = 0; j < n; ++j) yrow[j] += bp[j];
    }
}

}  // namespace secemb
