/**
 * @file
 * AVX2+FMA microkernels: the f32 6x16 register tile (12 ymm
 * accumulators + 2 B vectors + 1 broadcast = 15 of 16 registers), the
 * bf16 variant (same FMA pattern behind widening B loads), and the
 * int8 tile (pmaddubsw + pmaddwd over depth-groups of 4 — the 7-bit
 * unsigned A quantization keeps the i16 pair sums below saturation).
 * Compiled with -mavx2 -mfma on this TU only; the dispatcher never
 * selects it unless the CPU reports both features.
 */

#include <immintrin.h>

#include <cstring>

#include "tensor/kernels/driver.h"

namespace secemb::kernels::detail {

namespace {

struct MicroAvx2
{
    static constexpr int kMr = 6;
    static constexpr int kNr = 16;

    static void
    Tile(const float* pa, const float* pb, int64_t kc, float* acc)
    {
        __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
        __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
        __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
        __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
        __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
        __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
        for (int64_t p = 0; p < kc; ++p) {
            // Panel rows are 64B groups off a 64B base: aligned loads.
            const __m256 b0 = _mm256_load_ps(pb + p * kNr);
            const __m256 b1 = _mm256_load_ps(pb + p * kNr + 8);
            const float* av = pa + p * kMr;
            __m256 a;
            a = _mm256_broadcast_ss(av + 0);
            c00 = _mm256_fmadd_ps(a, b0, c00);
            c01 = _mm256_fmadd_ps(a, b1, c01);
            a = _mm256_broadcast_ss(av + 1);
            c10 = _mm256_fmadd_ps(a, b0, c10);
            c11 = _mm256_fmadd_ps(a, b1, c11);
            a = _mm256_broadcast_ss(av + 2);
            c20 = _mm256_fmadd_ps(a, b0, c20);
            c21 = _mm256_fmadd_ps(a, b1, c21);
            a = _mm256_broadcast_ss(av + 3);
            c30 = _mm256_fmadd_ps(a, b0, c30);
            c31 = _mm256_fmadd_ps(a, b1, c31);
            a = _mm256_broadcast_ss(av + 4);
            c40 = _mm256_fmadd_ps(a, b0, c40);
            c41 = _mm256_fmadd_ps(a, b1, c41);
            a = _mm256_broadcast_ss(av + 5);
            c50 = _mm256_fmadd_ps(a, b0, c50);
            c51 = _mm256_fmadd_ps(a, b1, c51);
        }
        _mm256_store_ps(acc + 0 * kNr, c00);
        _mm256_store_ps(acc + 0 * kNr + 8, c01);
        _mm256_store_ps(acc + 1 * kNr, c10);
        _mm256_store_ps(acc + 1 * kNr + 8, c11);
        _mm256_store_ps(acc + 2 * kNr, c20);
        _mm256_store_ps(acc + 2 * kNr + 8, c21);
        _mm256_store_ps(acc + 3 * kNr, c30);
        _mm256_store_ps(acc + 3 * kNr + 8, c31);
        _mm256_store_ps(acc + 4 * kNr, c40);
        _mm256_store_ps(acc + 4 * kNr + 8, c41);
        _mm256_store_ps(acc + 5 * kNr, c50);
        _mm256_store_ps(acc + 5 * kNr + 8, c51);
    }
};

/** 16 bf16 lanes widened to two f32 ymm vectors (exact: bf16 is the
 * truncated top half of the f32 bit pattern). */
inline __m256
WidenBf16(__m128i h)
{
    return _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16));
}

struct MicroAvx2Bf16
{
    static constexpr int kMr = 6;
    static constexpr int kNr = 16;

    static void
    TileBf16(const float* pa, const uint16_t* pb, int64_t kc, float* acc)
    {
        __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
        __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
        __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
        __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
        __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
        __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
        for (int64_t p = 0; p < kc; ++p) {
            // Panel rows are 32B groups off a 64B base: aligned loads.
            const __m256i bh = _mm256_load_si256(
                reinterpret_cast<const __m256i*>(pb + p * kNr));
            const __m256 b0 = WidenBf16(_mm256_castsi256_si128(bh));
            const __m256 b1 = WidenBf16(_mm256_extracti128_si256(bh, 1));
            const float* av = pa + p * kMr;
            __m256 a;
            a = _mm256_broadcast_ss(av + 0);
            c00 = _mm256_fmadd_ps(a, b0, c00);
            c01 = _mm256_fmadd_ps(a, b1, c01);
            a = _mm256_broadcast_ss(av + 1);
            c10 = _mm256_fmadd_ps(a, b0, c10);
            c11 = _mm256_fmadd_ps(a, b1, c11);
            a = _mm256_broadcast_ss(av + 2);
            c20 = _mm256_fmadd_ps(a, b0, c20);
            c21 = _mm256_fmadd_ps(a, b1, c21);
            a = _mm256_broadcast_ss(av + 3);
            c30 = _mm256_fmadd_ps(a, b0, c30);
            c31 = _mm256_fmadd_ps(a, b1, c31);
            a = _mm256_broadcast_ss(av + 4);
            c40 = _mm256_fmadd_ps(a, b0, c40);
            c41 = _mm256_fmadd_ps(a, b1, c41);
            a = _mm256_broadcast_ss(av + 5);
            c50 = _mm256_fmadd_ps(a, b0, c50);
            c51 = _mm256_fmadd_ps(a, b1, c51);
        }
        _mm256_store_ps(acc + 0 * kNr, c00);
        _mm256_store_ps(acc + 0 * kNr + 8, c01);
        _mm256_store_ps(acc + 1 * kNr, c10);
        _mm256_store_ps(acc + 1 * kNr + 8, c11);
        _mm256_store_ps(acc + 2 * kNr, c20);
        _mm256_store_ps(acc + 2 * kNr + 8, c21);
        _mm256_store_ps(acc + 3 * kNr, c30);
        _mm256_store_ps(acc + 3 * kNr + 8, c31);
        _mm256_store_ps(acc + 4 * kNr, c40);
        _mm256_store_ps(acc + 4 * kNr + 8, c41);
        _mm256_store_ps(acc + 5 * kNr, c50);
        _mm256_store_ps(acc + 5 * kNr + 8, c51);
    }
};

struct MicroAvx2Int8
{
    static constexpr int kMr = 6;
    static constexpr int kNr = 16;

    static void
    TileInt8(const uint8_t* qa, const int8_t* qb, int64_t groups,
             int32_t* acc)
    {
        // 12 i32 accumulators; each ymm covers 8 columns x 4 depths.
        __m256i c[kMr][2];
        for (int r = 0; r < kMr; ++r) {
            c[r][0] = _mm256_setzero_si256();
            c[r][1] = _mm256_setzero_si256();
        }
        const __m256i ones = _mm256_set1_epi16(1);
        for (int64_t g = 0; g < groups; ++g) {
            // Panel groups are 64B off a 64B base: aligned loads.
            const __m256i b0 = _mm256_load_si256(
                reinterpret_cast<const __m256i*>(qb + g * 4 * kNr));
            const __m256i b1 = _mm256_load_si256(
                reinterpret_cast<const __m256i*>(qb + g * 4 * kNr + 32));
            const uint8_t* av = qa + g * 4 * kMr;
            for (int r = 0; r < kMr; ++r) {
                uint32_t aw;
                std::memcpy(&aw, av + r * 4, sizeof(aw));
                const __m256i a =
                    _mm256_set1_epi32(static_cast<int>(aw));
                // u8(A) x s8(B) pair products; |pair sum| <= 2*127*127
                // < 2^15, so the i16 intermediate cannot saturate.
                const __m256i p0 = _mm256_maddubs_epi16(a, b0);
                const __m256i p1 = _mm256_maddubs_epi16(a, b1);
                c[r][0] = _mm256_add_epi32(c[r][0],
                                           _mm256_madd_epi16(p0, ones));
                c[r][1] = _mm256_add_epi32(c[r][1],
                                           _mm256_madd_epi16(p1, ones));
            }
        }
        for (int r = 0; r < kMr; ++r) {
            _mm256_store_si256(reinterpret_cast<__m256i*>(acc + r * kNr),
                               c[r][0]);
            _mm256_store_si256(
                reinterpret_cast<__m256i*>(acc + r * kNr + 8), c[r][1]);
        }
    }
};

}  // namespace

const TierOps&
Avx2TierOps()
{
    static const TierOps ops = {
        MicroAvx2::kMr,
        MicroAvx2::kNr,
        &PackBPanels<MicroAvx2::kNr>,
        &BlockedDriver<MicroAvx2>::Run,
        &PackBPanelsBf16<MicroAvx2Bf16::kNr>,
        &Bf16BlockedDriver<MicroAvx2Bf16>::Run,
        &PackBPanelsInt8<MicroAvx2Int8::kNr>,
        &Int8BlockedDriver<MicroAvx2Int8>::Run,
    };
    return ops;
}

}  // namespace secemb::kernels::detail
