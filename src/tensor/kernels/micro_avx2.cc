/**
 * @file
 * AVX2+FMA microkernel: 6x16 register tile (12 ymm accumulators + 2 B
 * vectors + 1 broadcast = 15 of 16 registers). Compiled with
 * -mavx2 -mfma on this TU only; the dispatcher never selects it unless
 * the CPU reports both features.
 */

#include <immintrin.h>

#include "tensor/kernels/driver.h"

namespace secemb::kernels::detail {

namespace {

struct MicroAvx2
{
    static constexpr int kMr = 6;
    static constexpr int kNr = 16;

    static void
    Tile(const float* pa, const float* pb, int64_t kc, float* acc)
    {
        __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
        __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
        __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
        __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
        __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
        __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
        for (int64_t p = 0; p < kc; ++p) {
            // Panel rows are 64B groups off a 64B base: aligned loads.
            const __m256 b0 = _mm256_load_ps(pb + p * kNr);
            const __m256 b1 = _mm256_load_ps(pb + p * kNr + 8);
            const float* av = pa + p * kMr;
            __m256 a;
            a = _mm256_broadcast_ss(av + 0);
            c00 = _mm256_fmadd_ps(a, b0, c00);
            c01 = _mm256_fmadd_ps(a, b1, c01);
            a = _mm256_broadcast_ss(av + 1);
            c10 = _mm256_fmadd_ps(a, b0, c10);
            c11 = _mm256_fmadd_ps(a, b1, c11);
            a = _mm256_broadcast_ss(av + 2);
            c20 = _mm256_fmadd_ps(a, b0, c20);
            c21 = _mm256_fmadd_ps(a, b1, c21);
            a = _mm256_broadcast_ss(av + 3);
            c30 = _mm256_fmadd_ps(a, b0, c30);
            c31 = _mm256_fmadd_ps(a, b1, c31);
            a = _mm256_broadcast_ss(av + 4);
            c40 = _mm256_fmadd_ps(a, b0, c40);
            c41 = _mm256_fmadd_ps(a, b1, c41);
            a = _mm256_broadcast_ss(av + 5);
            c50 = _mm256_fmadd_ps(a, b0, c50);
            c51 = _mm256_fmadd_ps(a, b1, c51);
        }
        _mm256_store_ps(acc + 0 * kNr, c00);
        _mm256_store_ps(acc + 0 * kNr + 8, c01);
        _mm256_store_ps(acc + 1 * kNr, c10);
        _mm256_store_ps(acc + 1 * kNr + 8, c11);
        _mm256_store_ps(acc + 2 * kNr, c20);
        _mm256_store_ps(acc + 2 * kNr + 8, c21);
        _mm256_store_ps(acc + 3 * kNr, c30);
        _mm256_store_ps(acc + 3 * kNr + 8, c31);
        _mm256_store_ps(acc + 4 * kNr, c40);
        _mm256_store_ps(acc + 4 * kNr + 8, c41);
        _mm256_store_ps(acc + 5 * kNr, c50);
        _mm256_store_ps(acc + 5 * kNr + 8, c51);
    }
};

}  // namespace

const TierOps&
Avx2TierOps()
{
    static const TierOps ops = {
        MicroAvx2::kMr,
        MicroAvx2::kNr,
        &PackBPanels<MicroAvx2::kNr>,
        &BlockedDriver<MicroAvx2>::Run,
    };
    return ops;
}

}  // namespace secemb::kernels::detail
