/**
 * @file
 * Scalar fallback microkernel: 4x8 register tile, plain loops, no ISA
 * flags — the tier every build and machine can run (SECEMB_ISA=scalar).
 * The fixed-trip-count inner loops still let the baseline compiler
 * vectorize to whatever the default target offers (SSE2 on x86-64).
 */

#include "tensor/kernels/driver.h"

namespace secemb::kernels::detail {

namespace {

struct MicroScalar
{
    static constexpr int kMr = 4;
    static constexpr int kNr = 8;

    static void
    Tile(const float* pa, const float* pb, int64_t kc, float* acc)
    {
        float sum[kMr][kNr] = {};
        for (int64_t p = 0; p < kc; ++p) {
            const float* av = pa + p * kMr;
            const float* bv = pb + p * kNr;
            for (int r = 0; r < kMr; ++r) {
                const float a = av[r];
                for (int j = 0; j < kNr; ++j) sum[r][j] += a * bv[j];
            }
        }
        for (int r = 0; r < kMr; ++r) {
            for (int j = 0; j < kNr; ++j) acc[r * kNr + j] = sum[r][j];
        }
    }
};

struct MicroScalarBf16
{
    static constexpr int kMr = 4;
    static constexpr int kNr = 8;

    static void
    TileBf16(const float* pa, const uint16_t* pb, int64_t kc, float* acc)
    {
        float sum[kMr][kNr] = {};
        for (int64_t p = 0; p < kc; ++p) {
            const float* av = pa + p * kMr;
            const uint16_t* bv = pb + p * kNr;
            float b[kNr];
            for (int j = 0; j < kNr; ++j) b[j] = Bf16ToF32(bv[j]);
            for (int r = 0; r < kMr; ++r) {
                const float a = av[r];
                for (int j = 0; j < kNr; ++j) sum[r][j] += a * b[j];
            }
        }
        for (int r = 0; r < kMr; ++r) {
            for (int j = 0; j < kNr; ++j) acc[r * kNr + j] = sum[r][j];
        }
    }
};

struct MicroScalarInt8
{
    static constexpr int kMr = 4;
    static constexpr int kNr = 8;

    static void
    TileInt8(const uint8_t* qa, const int8_t* qb, int64_t groups,
             int32_t* acc)
    {
        int32_t sum[kMr][kNr] = {};
        for (int64_t g = 0; g < groups; ++g) {
            const uint8_t* av = qa + g * 4 * kMr;
            const int8_t* bv = qb + g * 4 * kNr;
            for (int r = 0; r < kMr; ++r) {
                for (int j = 0; j < kNr; ++j) {
                    int32_t s = 0;
                    for (int t = 0; t < 4; ++t) {
                        s += static_cast<int32_t>(av[r * 4 + t]) *
                             static_cast<int32_t>(bv[j * 4 + t]);
                    }
                    sum[r][j] += s;
                }
            }
        }
        for (int r = 0; r < kMr; ++r) {
            for (int j = 0; j < kNr; ++j) acc[r * kNr + j] = sum[r][j];
        }
    }
};

}  // namespace

const TierOps&
ScalarTierOps()
{
    static const TierOps ops = {
        MicroScalar::kMr,
        MicroScalar::kNr,
        &PackBPanels<MicroScalar::kNr>,
        &BlockedDriver<MicroScalar>::Run,
        &PackBPanelsBf16<MicroScalarBf16::kNr>,
        &Bf16BlockedDriver<MicroScalarBf16>::Run,
        &PackBPanelsInt8<MicroScalarInt8::kNr>,
        &Int8BlockedDriver<MicroScalarInt8>::Run,
    };
    return ops;
}

}  // namespace secemb::kernels::detail
