/**
 * @file
 * Scalar fallback microkernel: 4x8 register tile, plain loops, no ISA
 * flags — the tier every build and machine can run (SECEMB_ISA=scalar).
 * The fixed-trip-count inner loops still let the baseline compiler
 * vectorize to whatever the default target offers (SSE2 on x86-64).
 */

#include "tensor/kernels/driver.h"

namespace secemb::kernels::detail {

namespace {

struct MicroScalar
{
    static constexpr int kMr = 4;
    static constexpr int kNr = 8;

    static void
    Tile(const float* pa, const float* pb, int64_t kc, float* acc)
    {
        float sum[kMr][kNr] = {};
        for (int64_t p = 0; p < kc; ++p) {
            const float* av = pa + p * kMr;
            const float* bv = pb + p * kNr;
            for (int r = 0; r < kMr; ++r) {
                const float a = av[r];
                for (int j = 0; j < kNr; ++j) sum[r][j] += a * bv[j];
            }
        }
        for (int r = 0; r < kMr; ++r) {
            for (int j = 0; j < kNr; ++j) acc[r * kNr + j] = sum[r][j];
        }
    }
};

}  // namespace

const TierOps&
ScalarTierOps()
{
    static const TierOps ops = {
        MicroScalar::kMr,
        MicroScalar::kNr,
        &PackBPanels<MicroScalar::kNr>,
        &BlockedDriver<MicroScalar>::Run,
    };
    return ops;
}

}  // namespace secemb::kernels::detail
