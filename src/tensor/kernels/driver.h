#pragma once

/**
 * @file
 * The ISA-independent half of the packed GEMM: cache-blocked MC/KC/NC
 * traversal, A/B panel packing, tile merge with the fused epilogue, and
 * ParallelFor chunking over row tiles. Each microkernel TU instantiates
 * BlockedDriver<Micro> under its own -m flags, so the merge/pack loops
 * auto-vectorize to the same ISA as the microkernel they serve.
 *
 * A Micro provides:
 *   static constexpr int kMr, kNr;          // register tile shape
 *   static void Tile(const float* pa,       // kMr-grouped A slab
 *                    const float* pb,       // kNr-grouped B slab
 *                    int64_t kc,            // depth of this k block
 *                    float* acc);           // kMr*kNr out, 64B aligned
 *
 * Tile computes acc = pa * pb over kc steps (overwriting acc); the
 * driver owns everything else, including C accumulation across k blocks
 * and the bias/activation/preact epilogue on the final block. Keeping
 * stores out of the microkernel costs one L1-resident round trip per
 * tile (kMr*kNr floats against 2*kMr*kNr*KC flops, ~0.1%) and buys
 * uniform handling of edge tiles and epilogues.
 */

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "tensor/aligned.h"
#include "tensor/kernels/kernels.h"
#include "tensor/parallel.h"

namespace secemb::kernels::detail {

/** Cache-blocking constants (floats): KC * NR panels stay L1-resident,
 * MC rows of C bound the working set re-walked per k block. MC is a
 * multiple of every tier's kMr (lcm(4, 6, 8) = 24). */
inline constexpr int64_t kBlockKc = 384;
inline constexpr int64_t kBlockMc = 240;
inline constexpr int64_t kBlockNc = 4096;

/**
 * Per-thread A-panel scratch, shared by every tier (a thread runs one
 * GEMM at a time). Returns a buffer resized to `need_floats`. The buffer
 * persists across calls so steady-state serving reuses one allocation,
 * but it shrinks back when the retained capacity dwarfs the current
 * request — long-lived pool workers must not pin the largest A panel
 * they ever packed (defined in kernels.cc).
 */
AlignedFloatVector& AcquireAPackScratch(std::size_t need_floats);

/** The calling thread's retained scratch capacity in floats (test hook). */
std::size_t APackScratchCapacityForTest();

/** Pack A into kMr-row panels: panel t stores, for each depth p, the
 * kMr row values contiguously (zero-padded past m). `trans` reads A as
 * a k x m buffer (the GemmAT case: C = A^T * B). */
template <int MR>
void
PackAPanels(const float* a, int64_t m, int64_t k, bool trans, float* out)
{
    const int64_t tiles = (m + MR - 1) / MR;
    for (int64_t t = 0; t < tiles; ++t) {
        float* panel = out + t * MR * k;
        for (int r = 0; r < MR; ++r) {
            const int64_t row = t * MR + r;
            if (row >= m) {
                for (int64_t p = 0; p < k; ++p) panel[p * MR + r] = 0.0f;
            } else if (trans) {
                for (int64_t p = 0; p < k; ++p) {
                    panel[p * MR + r] = a[p * m + row];
                }
            } else {
                const float* arow = a + row * k;
                for (int64_t p = 0; p < k; ++p) {
                    panel[p * MR + r] = arow[p];
                }
            }
        }
    }
}

/** Pack B into kNr-wide column panels (see PackedB); `trans` reads B as
 * an n x k buffer (the GemmBT case). */
template <int NR>
void
PackBPanels(const float* b, int64_t k, int64_t n, bool trans, float* out)
{
    const int64_t panels = (n + NR - 1) / NR;
    for (int64_t jp = 0; jp < panels; ++jp) {
        float* panel = out + jp * k * NR;
        for (int j = 0; j < NR; ++j) {
            const int64_t col = jp * NR + j;
            if (col >= n) {
                for (int64_t p = 0; p < k; ++p) panel[p * NR + j] = 0.0f;
            } else if (trans) {
                const float* bcol = b + col * k;
                for (int64_t p = 0; p < k; ++p) {
                    panel[p * NR + j] = bcol[p];
                }
            } else {
                for (int64_t p = 0; p < k; ++p) {
                    panel[p * NR + j] = b[p * n + col];
                }
            }
        }
    }
}

template <class Micro>
struct BlockedDriver
{
    static constexpr int MR = Micro::kMr;
    static constexpr int NR = Micro::kNr;

    /**
     * Merge one computed tile into C. `first` overwrites (first k
     * block), otherwise accumulates; `last` applies the epilogue. The
     * loops carry no data-dependent branches: activation selection is
     * a shape-class (public) property of the call.
     */
    static void
    MergeTile(const float* acc, float* c, int64_t ldc, int64_t i0,
              int64_t j0, int mr, int nr, bool first, bool last,
              const Epilogue& ep)
    {
        for (int r = 0; r < mr; ++r) {
            const float* t = acc + r * NR;
            float* crow = c + (i0 + r) * ldc + j0;
            if (!last) {
                if (first) {
                    for (int j = 0; j < nr; ++j) crow[j] = t[j];
                } else {
                    for (int j = 0; j < nr; ++j) crow[j] += t[j];
                }
                continue;
            }
            float* prow = ep.preact == nullptr
                              ? nullptr
                              : ep.preact + (i0 + r) * ldc + j0;
            for (int j = 0; j < nr; ++j) {
                float v = t[j];
                if (!first) v += crow[j];
                if (ep.bias != nullptr) v += ep.bias[j0 + j];
                if (prow != nullptr) prow[j] = v;
                switch (ep.act) {
                    case Activation::kIdentity:
                        break;
                    case Activation::kRelu:
                        v = std::max(v, 0.0f);
                        break;
                    case Activation::kGelu:
                        v = GeluF(v);
                        break;
                }
                crow[j] = v;
            }
        }
    }

    static void
    Run(const GemmArgs& args)
    {
        const PackedB& b = *args.b;
        assert(b.nr == NR);
        assert(IsAligned64(b.data.data()));
        const int64_t m = args.m, k = b.k, n = b.n;
        if (m == 0 || n == 0) return;

        const int64_t tiles_m = (m + MR - 1) / MR;
        const int64_t panels = (n + NR - 1) / NR;
        // k == 0 still runs one (empty) block so the epilogue fires:
        // C = act(bias) matches the mathematical A*B for k = 0.
        const int64_t k_blocks =
            std::max<int64_t>(1, (k + kBlockKc - 1) / kBlockKc);

        // A panels are transient per call; the scratch is thread-local
        // (with a shrink policy) so steady-state serving reuses one
        // allocation. Packed on the caller before the region — workers
        // only read it.
        AlignedFloatVector& a_pack =
            AcquireAPackScratch(static_cast<size_t>(tiles_m * MR * k));
        PackAPanels<MR>(args.a, m, k, args.a_transposed, a_pack.data());
        const float* pa_base = a_pack.data();
        const float* pb_base = b.data.data();
        const int64_t panel_stride = b.panel_stride();

        constexpr int64_t mc_tiles = kBlockMc / MR;
        ParallelFor(tiles_m, args.nthreads, [&](int64_t tb, int64_t te) {
            alignas(64) float acc[MR * NR];
            for (int64_t jc = 0; jc < n; jc += kBlockNc) {
                const int64_t jp_begin = jc / NR;
                const int64_t jp_end = std::min<int64_t>(
                    panels, (jc + kBlockNc + NR - 1) / NR);
                for (int64_t ic = tb; ic < te; ic += mc_tiles) {
                    const int64_t it_end = std::min(te, ic + mc_tiles);
                    for (int64_t kb = 0; kb < k_blocks; ++kb) {
                        const int64_t k0 = kb * kBlockKc;
                        const int64_t kc =
                            std::min<int64_t>(kBlockKc, k - k0);
                        const bool first = kb == 0;
                        const bool last = kb == k_blocks - 1;
                        for (int64_t jp = jp_begin; jp < jp_end; ++jp) {
                            const float* pb = pb_base +
                                              jp * panel_stride +
                                              k0 * NR;
                            const int nr = static_cast<int>(
                                std::min<int64_t>(NR, n - jp * NR));
                            for (int64_t it = ic; it < it_end; ++it) {
                                const float* pa =
                                    pa_base + it * MR * k + k0 * MR;
                                const int mr = static_cast<int>(
                                    std::min<int64_t>(MR, m - it * MR));
                                Micro::Tile(pa, pb, kc, acc);
                                MergeTile(acc, args.c, n, it * MR,
                                          jp * NR, mr, nr, first, last,
                                          args.epilogue);
                            }
                        }
                    }
                }
            }
        });
    }
};

/** The function-pointer surface each microkernel TU exports. */
struct TierOps
{
    int mr = 0;
    int nr = 0;
    void (*pack_b)(const float* b, int64_t k, int64_t n, bool trans,
                   float* out) = nullptr;
    void (*run)(const GemmArgs& args) = nullptr;
};

const TierOps& ScalarTierOps();
const TierOps& Avx2TierOps();    // defined only when compiled in
const TierOps& Avx512TierOps();  // defined only when compiled in

}  // namespace secemb::kernels::detail
