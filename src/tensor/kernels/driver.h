#pragma once

/**
 * @file
 * The ISA-independent half of the packed GEMM: cache-blocked MC/KC/NC
 * traversal, A/B panel packing, tile merge with the fused epilogue, and
 * ParallelFor chunking over row tiles. Each microkernel TU instantiates
 * BlockedDriver<Micro> under its own -m flags, so the merge/pack loops
 * auto-vectorize to the same ISA as the microkernel they serve.
 *
 * A Micro provides:
 *   static constexpr int kMr, kNr;          // register tile shape
 *   static void Tile(const float* pa,       // kMr-grouped A slab
 *                    const float* pb,       // kNr-grouped B slab
 *                    int64_t kc,            // depth of this k block
 *                    float* acc);           // kMr*kNr out, 64B aligned
 *
 * Tile computes acc = pa * pb over kc steps (overwriting acc); the
 * driver owns everything else, including C accumulation across k blocks
 * and the bias/activation/preact epilogue on the final block. Keeping
 * stores out of the microkernel costs one L1-resident round trip per
 * tile (kMr*kNr floats against 2*kMr*kNr*KC flops, ~0.1%) and buys
 * uniform handling of edge tiles and epilogues.
 *
 * The quantized drivers use the same skeleton with a different tile
 * contract: TileBf16 takes a uint16_t B slab (widening loads), TileInt8
 * takes a u8 A slab / s8 B slab in depth-groups of 4 and fills an
 * int32 accumulator that the driver dequantizes into the float acc
 * before the shared MergeTile — so bias/activation fusion and the
 * first/last k-block logic are precision-independent.
 *
 * Parallelism is 2-D when the shape demands it: the default split is
 * over MR-row tiles of C, but when tiles_m < nthreads (skinny decoder
 * GEMMs, m = 1..8) the driver splits over (row tile x NR-aligned
 * column range) work items instead. Each C element is always owned by
 * exactly one worker and sees the same sequential k-block order, so
 * results are bit-identical at every thread count.
 */

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "tensor/aligned.h"
#include "tensor/kernels/kernels.h"
#include "tensor/parallel.h"

namespace secemb::kernels::detail {

/** Cache-blocking constants (floats): KC * NR panels stay L1-resident,
 * MC rows of C bound the working set re-walked per k block. MC is a
 * multiple of every tier's kMr (lcm(4, 6, 8) = 24). */
inline constexpr int64_t kBlockKc = 384;
inline constexpr int64_t kBlockMc = 240;
inline constexpr int64_t kBlockNc = 4096;

/**
 * Per-thread A-panel scratch, shared by every tier (a thread runs one
 * GEMM at a time). Returns a buffer resized to `need_floats`. The buffer
 * persists across calls so steady-state serving reuses one allocation,
 * but it shrinks back when the retained capacity dwarfs the current
 * request — long-lived pool workers must not pin the largest A panel
 * they ever packed (defined in kernels.cc).
 */
AlignedFloatVector& AcquireAPackScratch(std::size_t need_floats);

/** The calling thread's retained scratch capacity in floats (test hook). */
std::size_t APackScratchCapacityForTest();

/** Per-thread quantized A-panel scratch (u8 panels for the int8 tier),
 * with the same persistence/shrink policy as AcquireAPackScratch. */
AlignedByteVector& AcquireQuantAPackScratch(std::size_t need_bytes);

// ---------------------------------------------------------------------------
// Quantization parameters
// ---------------------------------------------------------------------------

/** int8 A quantization: 7-bit unsigned with a mid-range zero point.
 * a_u = round(a * 63 / amax_row) + 64 in [1, 127], so u8 x s8 products
 * stay <= 127*127 and the AVX2 pmaddubsw pair-sum cannot saturate; the
 * zero-point term is subtracted exactly via the per-column, per-k-block
 * sums PackBPanelsInt8 records. */
inline constexpr int kInt8AZero = 64;
inline constexpr int kInt8AMax = 63;
/** int8 B quantization: symmetric signed, per column. */
inline constexpr int kInt8BMax = 127;

/** Round-to-nearest-even f32 -> bf16 (top 16 bits of the f32 pattern). */
inline uint16_t
F32ToBf16(float v)
{
    uint32_t u;
    std::memcpy(&u, &v, sizeof(u));
    u += 0x7FFFu + ((u >> 16) & 1u);
    return static_cast<uint16_t>(u >> 16);
}

/** Widen bf16 back to f32 (exact: bf16 is a truncated f32). */
inline float
Bf16ToF32(uint16_t v)
{
    const uint32_t u = static_cast<uint32_t>(v) << 16;
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

/** Pack A into kMr-row panels: panel t stores, for each depth p, the
 * kMr row values contiguously (zero-padded past m). `trans` reads A as
 * a k x m buffer (the GemmAT case: C = A^T * B). */
template <int MR>
void
PackAPanels(const float* a, int64_t m, int64_t k, bool trans, float* out)
{
    const int64_t tiles = (m + MR - 1) / MR;
    for (int64_t t = 0; t < tiles; ++t) {
        float* panel = out + t * MR * k;
        for (int r = 0; r < MR; ++r) {
            const int64_t row = t * MR + r;
            if (row >= m) {
                for (int64_t p = 0; p < k; ++p) panel[p * MR + r] = 0.0f;
            } else if (trans) {
                for (int64_t p = 0; p < k; ++p) {
                    panel[p * MR + r] = a[p * m + row];
                }
            } else {
                const float* arow = a + row * k;
                for (int64_t p = 0; p < k; ++p) {
                    panel[p * MR + r] = arow[p];
                }
            }
        }
    }
}

/** Pack B into kNr-wide column panels (see PackedB); `trans` reads B as
 * an n x k buffer (the GemmBT case). */
template <int NR>
void
PackBPanels(const float* b, int64_t k, int64_t n, bool trans, float* out)
{
    const int64_t panels = (n + NR - 1) / NR;
    for (int64_t jp = 0; jp < panels; ++jp) {
        float* panel = out + jp * k * NR;
        for (int j = 0; j < NR; ++j) {
            const int64_t col = jp * NR + j;
            if (col >= n) {
                for (int64_t p = 0; p < k; ++p) panel[p * NR + j] = 0.0f;
            } else if (trans) {
                const float* bcol = b + col * k;
                for (int64_t p = 0; p < k; ++p) {
                    panel[p * NR + j] = bcol[p];
                }
            } else {
                for (int64_t p = 0; p < k; ++p) {
                    panel[p * NR + j] = b[p * n + col];
                }
            }
        }
    }
}

/** PackBPanels at bf16 storage: identical group layout, 2-byte
 * round-to-nearest-even elements. */
template <int NR>
void
PackBPanelsBf16(const float* b, int64_t k, int64_t n, bool trans,
                uint16_t* out)
{
    const int64_t panels = (n + NR - 1) / NR;
    for (int64_t jp = 0; jp < panels; ++jp) {
        uint16_t* panel = out + jp * k * NR;
        for (int j = 0; j < NR; ++j) {
            const int64_t col = jp * NR + j;
            for (int64_t p = 0; p < k; ++p) {
                const float v = col >= n ? 0.0f
                                : trans  ? b[col * k + p]
                                         : b[p * n + col];
                panel[p * NR + j] = F32ToBf16(v);
            }
        }
    }
}

/**
 * Quantize-and-pack B for the int8 tier. Depths are grouped in fours
 * (zero-padded): group g of panel jp stores, for each of its NR
 * columns, the 4 consecutive s8 values of depths [4g, 4g+4) — the
 * operand order vpdpbusd / pmaddubsw+pmaddwd consume. Per (padded)
 * column: `col_scales` receives the symmetric dequant scale
 * max|b|/127, and `col_block_sums` the sum of quantized values per
 * KC-sized k block (indexed [kb * panels * NR + jp * NR + j]) — the
 * exact zero-point correction for the u8 A operand.
 */
template <int NR>
void
PackBPanelsInt8(const float* b, int64_t k, int64_t n, bool trans,
                int8_t* out, float* col_scales, int32_t* col_block_sums)
{
    const int64_t panels = (n + NR - 1) / NR;
    const int64_t kq = (k + 3) / 4;
    const int64_t k_blocks = std::max<int64_t>(1, (k + kBlockKc - 1) / kBlockKc);
    std::fill(col_block_sums, col_block_sums + k_blocks * panels * NR, 0);
    for (int64_t jp = 0; jp < panels; ++jp) {
        int8_t* panel = out + jp * kq * 4 * NR;
        for (int j = 0; j < NR; ++j) {
            const int64_t col = jp * NR + j;
            float bmax = 0.0f;
            if (col < n) {
                for (int64_t p = 0; p < k; ++p) {
                    const float v = trans ? b[col * k + p] : b[p * n + col];
                    bmax = std::max(bmax, std::fabs(v));
                }
            }
            col_scales[jp * NR + j] =
                bmax / static_cast<float>(kInt8BMax);
            const float inv =
                bmax > 0.0f ? static_cast<float>(kInt8BMax) / bmax : 0.0f;
            for (int64_t g = 0; g < kq; ++g) {
                for (int t = 0; t < 4; ++t) {
                    const int64_t p = g * 4 + t;
                    int q = 0;
                    if (col < n && p < k) {
                        const float v =
                            trans ? b[col * k + p] : b[p * n + col];
                        q = std::clamp(
                            static_cast<int>(std::lrintf(v * inv)),
                            -kInt8BMax, kInt8BMax);
                    }
                    panel[g * 4 * NR + j * 4 + t] =
                        static_cast<int8_t>(q);
                    if (q != 0) {
                        col_block_sums[(p / kBlockKc) * panels * NR +
                                       jp * NR + j] += q;
                    }
                }
            }
        }
    }
}

/**
 * Dynamic per-row A quantization for the int8 tier: panel t stores
 * depth-groups of 4 u8 values per row (`kInt8AZero`-biased, padded
 * depths and rows at the zero point), and `row_scales[t*MR+r]` the
 * per-row dequant scale max|a|/63 (0 for all-zero and padded rows,
 * which therefore contribute exactly 0 after dequant).
 *
 * This runs on every call (A is the activation), so the contiguous-row
 * case is vectorized under __AVX2__. Bit-exactness across tiers holds
 * because _mm256_cvtps_epi32 and std::lrintf both round to nearest
 * even under the default FP environment, and the clamp/bias are
 * integer ops.
 */
template <int MR>
void
PackAPanelsInt8(const float* a, int64_t m, int64_t k, bool trans,
                uint8_t* out, float* row_scales)
{
    const int64_t tiles = (m + MR - 1) / MR;
    const int64_t kq = (k + 3) / 4;
    for (int64_t t = 0; t < tiles; ++t) {
        uint8_t* panel = out + t * kq * 4 * MR;
        for (int r = 0; r < MR; ++r) {
            const int64_t row = t * MR + r;
            if (row >= m) {
                row_scales[t * MR + r] = 0.0f;
                for (int64_t g = 0; g < kq; ++g) {
                    uint8_t* dst = panel + g * 4 * MR + r * 4;
                    dst[0] = dst[1] = dst[2] = dst[3] = kInt8AZero;
                }
                continue;
            }
            const float* arow = a + row * k;  // valid only when !trans
            float amax = 0.0f;
            if (trans) {
                for (int64_t p = 0; p < k; ++p) {
                    amax = std::max(amax, std::fabs(a[p * m + row]));
                }
            } else {
                int64_t p = 0;
#if defined(__AVX2__)
                const __m256 sign = _mm256_set1_ps(-0.0f);
                __m256 vmax = _mm256_setzero_ps();
                for (; p + 8 <= k; p += 8) {
                    vmax = _mm256_max_ps(
                        vmax, _mm256_andnot_ps(
                                  sign, _mm256_loadu_ps(arow + p)));
                }
                alignas(32) float mtmp[8];
                _mm256_store_ps(mtmp, vmax);
                for (int i = 0; i < 8; ++i) {
                    amax = std::max(amax, mtmp[i]);
                }
#endif
                for (; p < k; ++p) {
                    amax = std::max(amax, std::fabs(arow[p]));
                }
            }
            row_scales[t * MR + r] =
                amax / static_cast<float>(kInt8AMax);
            const float inv =
                amax > 0.0f ? static_cast<float>(kInt8AMax) / amax : 0.0f;
            int64_t g = 0;
#if defined(__AVX2__)
            if (!trans) {
                const __m256 vinv = _mm256_set1_ps(inv);
                const __m256i lo = _mm256_set1_epi32(-kInt8AMax);
                const __m256i hi = _mm256_set1_epi32(kInt8AMax);
                const __m256i zp = _mm256_set1_epi32(kInt8AZero);
                // 16 full depths (4 groups) per iteration; the scalar
                // tail also covers the zero-padded final group.
                for (; (g + 4) * 4 <= k; g += 4) {
                    const int64_t p = g * 4;
                    __m256i q0 = _mm256_cvtps_epi32(_mm256_mul_ps(
                        _mm256_loadu_ps(arow + p), vinv));
                    __m256i q1 = _mm256_cvtps_epi32(_mm256_mul_ps(
                        _mm256_loadu_ps(arow + p + 8), vinv));
                    q0 = _mm256_add_epi32(
                        _mm256_min_epi32(_mm256_max_epi32(q0, lo), hi),
                        zp);
                    q1 = _mm256_add_epi32(
                        _mm256_min_epi32(_mm256_max_epi32(q1, lo), hi),
                        zp);
                    // i32 -> i16 -> u8, restoring depth order across
                    // the 128-bit lane interleave of packs_epi32.
                    __m256i w16 = _mm256_packs_epi32(q0, q1);
                    w16 = _mm256_permute4x64_epi64(w16, 0xD8);
                    const __m128i bytes = _mm_packus_epi16(
                        _mm256_castsi256_si128(w16),
                        _mm256_extracti128_si256(w16, 1));
                    alignas(16) uint8_t buf[16];
                    _mm_store_si128(reinterpret_cast<__m128i*>(buf),
                                    bytes);
                    for (int i = 0; i < 4; ++i) {
                        std::memcpy(panel + (g + i) * 4 * MR + r * 4,
                                    buf + 4 * i, 4);
                    }
                }
            }
#endif
            for (; g < kq; ++g) {
                for (int t4 = 0; t4 < 4; ++t4) {
                    const int64_t p = g * 4 + t4;
                    int q = 0;
                    if (p < k) {
                        const float v =
                            trans ? a[p * m + row] : arow[p];
                        q = std::clamp(
                            static_cast<int>(std::lrintf(v * inv)),
                            -kInt8AMax, kInt8AMax);
                    }
                    panel[g * 4 * MR + r * 4 + t4] =
                        static_cast<uint8_t>(q + kInt8AZero);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shared blocked traversal
// ---------------------------------------------------------------------------

/**
 * Merge one computed tile into C. `first` overwrites (first k block),
 * otherwise accumulates; `last` applies the epilogue. The loops carry
 * no data-dependent branches: activation selection is a shape-class
 * (public) property of the call.
 */
template <int MR, int NR>
inline void
MergeTile(const float* acc, float* c, int64_t ldc, int64_t i0, int64_t j0,
          int mr, int nr, bool first, bool last, const Epilogue& ep)
{
    for (int r = 0; r < mr; ++r) {
        const float* t = acc + r * NR;
        float* crow = c + (i0 + r) * ldc + j0;
        if (!last) {
            if (first) {
                for (int j = 0; j < nr; ++j) crow[j] = t[j];
            } else {
                for (int j = 0; j < nr; ++j) crow[j] += t[j];
            }
            continue;
        }
        float* prow = ep.preact == nullptr
                          ? nullptr
                          : ep.preact + (i0 + r) * ldc + j0;
        for (int j = 0; j < nr; ++j) {
            float v = t[j];
            if (!first) v += crow[j];
            if (ep.bias != nullptr) v += ep.bias[j0 + j];
            if (prow != nullptr) prow[j] = v;
            switch (ep.act) {
                case Activation::kIdentity:
                    break;
                case Activation::kRelu:
                    v = std::max(v, 0.0f);
                    break;
                case Activation::kGelu:
                    v = GeluF(v);
                    break;
            }
            crow[j] = v;
        }
    }
}

/** Column splits of the 2-D skinny-m plan: >1 only when there are too
 * few row tiles to feed the pool and more than one B panel to split. */
inline int64_t
ColSplits(int64_t tiles_m, int64_t panels, int nthreads)
{
    if (nthreads <= 1 || tiles_m >= nthreads || panels <= 1) return 1;
    return std::min<int64_t>(
        panels, std::max<int64_t>(1, int64_t{nthreads} / tiles_m));
}

/**
 * The cache-blocked traversal every precision shares. `tile` fills the
 * MR*NR float accumulator for (row tile `it`, panel `jp`, k block
 * `kb` covering depths [k0, k0+kc)); the skeleton owns the MC/KC/NC
 * loop structure, the ParallelFor plan (1-D over row tiles, or the 2-D
 * row-tile x column-range split when tiles_m < nthreads), and the
 * MergeTile stores with the fused epilogue.
 */
template <int MR, int NR, class TileFn>
void
RunBlockedLoops(int64_t m, int64_t k, int64_t n, int nthreads, float* c,
                const Epilogue& ep, const TileFn& tile,
                int64_t kc_block = kBlockKc)
{
    const int64_t tiles_m = (m + MR - 1) / MR;
    const int64_t panels = (n + NR - 1) / NR;
    // k == 0 still runs one (empty) block so the epilogue fires:
    // C = act(bias) matches the mathematical A*B for k = 0.
    const int64_t k_blocks =
        std::max<int64_t>(1, (k + kc_block - 1) / kc_block);

    const int64_t col_splits = ColSplits(tiles_m, panels, nthreads);
    if (col_splits > 1) {
        // Skinny-m 2-D split: each work item owns (row tile, disjoint
        // NR-aligned column range), so every C element is produced by
        // exactly one worker with the same sequential k-block order —
        // bit-identical to the 1-D plan at any thread count.
        ParallelFor(
            tiles_m * col_splits, nthreads,
            [&](int64_t wb, int64_t we) {
                alignas(64) float acc[MR * NR];
                for (int64_t w = wb; w < we; ++w) {
                    const int64_t it = w / col_splits;
                    const int64_t s = w % col_splits;
                    const int64_t jp_begin = panels * s / col_splits;
                    const int64_t jp_end =
                        panels * (s + 1) / col_splits;
                    const int mr = static_cast<int>(
                        std::min<int64_t>(MR, m - it * MR));
                    for (int64_t kb = 0; kb < k_blocks; ++kb) {
                        const int64_t k0 = kb * kc_block;
                        const int64_t kc =
                            std::min<int64_t>(kc_block, k - k0);
                        const bool first = kb == 0;
                        const bool last = kb == k_blocks - 1;
                        for (int64_t jp = jp_begin; jp < jp_end; ++jp) {
                            const int nr = static_cast<int>(
                                std::min<int64_t>(NR, n - jp * NR));
                            tile(acc, it, jp, kb, k0, kc);
                            MergeTile<MR, NR>(acc, c, n, it * MR,
                                              jp * NR, mr, nr, first,
                                              last, ep);
                        }
                    }
                }
            });
        return;
    }

    constexpr int64_t mc_tiles = kBlockMc / MR;
    ParallelFor(tiles_m, nthreads, [&](int64_t tb, int64_t te) {
        alignas(64) float acc[MR * NR];
        for (int64_t jc = 0; jc < n; jc += kBlockNc) {
            const int64_t jp_begin = jc / NR;
            const int64_t jp_end = std::min<int64_t>(
                panels, (jc + kBlockNc + NR - 1) / NR);
            for (int64_t ic = tb; ic < te; ic += mc_tiles) {
                const int64_t it_end = std::min(te, ic + mc_tiles);
                for (int64_t kb = 0; kb < k_blocks; ++kb) {
                    const int64_t k0 = kb * kc_block;
                    const int64_t kc = std::min<int64_t>(kc_block, k - k0);
                    const bool first = kb == 0;
                    const bool last = kb == k_blocks - 1;
                    for (int64_t jp = jp_begin; jp < jp_end; ++jp) {
                        const int nr = static_cast<int>(
                            std::min<int64_t>(NR, n - jp * NR));
                        for (int64_t it = ic; it < it_end; ++it) {
                            const int mr = static_cast<int>(
                                std::min<int64_t>(MR, m - it * MR));
                            tile(acc, it, jp, kb, k0, kc);
                            MergeTile<MR, NR>(acc, c, n, it * MR,
                                              jp * NR, mr, nr, first,
                                              last, ep);
                        }
                    }
                }
            }
        }
    });
}

template <class Micro>
struct BlockedDriver
{
    static constexpr int MR = Micro::kMr;
    static constexpr int NR = Micro::kNr;

    static void
    Run(const GemmArgs& args)
    {
        const PackedB& b = *args.b;
        assert(b.nr == NR);
        assert(b.dtype == Dtype::kF32);
        assert(IsAligned64(b.data.data()));
        const int64_t m = args.m, k = b.k, n = b.n;
        if (m == 0 || n == 0) return;

        const int64_t tiles_m = (m + MR - 1) / MR;
        // A panels are transient per call; the scratch is thread-local
        // (with a shrink policy) so steady-state serving reuses one
        // allocation. Packed on the caller before the region — workers
        // only read it.
        AlignedFloatVector& a_pack =
            AcquireAPackScratch(static_cast<size_t>(tiles_m * MR * k));
        PackAPanels<MR>(args.a, m, k, args.a_transposed, a_pack.data());
        const float* pa_base = a_pack.data();
        const float* pb_base = b.data.data();
        const int64_t panel_stride = b.panel_stride();

        RunBlockedLoops<MR, NR>(
            m, k, n, args.nthreads, args.c, args.epilogue,
            [&](float* acc, int64_t it, int64_t jp, int64_t /*kb*/,
                int64_t k0, int64_t kc) {
                Micro::Tile(pa_base + it * MR * k + k0 * MR,
                            pb_base + jp * panel_stride + k0 * NR, kc,
                            acc);
            });
    }
};

/** BlockedDriver over bf16 B panels: A stays f32, the microkernel
 * widens the 2-byte B groups on load, and accumulation/merge are the
 * f32 path exactly. */
template <class Micro>
struct Bf16BlockedDriver
{
    static constexpr int MR = Micro::kMr;
    static constexpr int NR = Micro::kNr;

    static void
    Run(const GemmArgs& args)
    {
        const PackedB& b = *args.b;
        assert(b.nr == NR);
        assert(b.dtype == Dtype::kBf16);
        assert(IsAligned64(b.qdata.data()));
        const int64_t m = args.m, k = b.k, n = b.n;
        if (m == 0 || n == 0) return;

        const int64_t tiles_m = (m + MR - 1) / MR;
        AlignedFloatVector& a_pack =
            AcquireAPackScratch(static_cast<size_t>(tiles_m * MR * k));
        PackAPanels<MR>(args.a, m, k, args.a_transposed, a_pack.data());
        const float* pa_base = a_pack.data();
        const auto* pb_base =
            reinterpret_cast<const uint16_t*>(b.qdata.data());
        const int64_t panel_stride = b.panel_stride();  // elements

        RunBlockedLoops<MR, NR>(
            m, k, n, args.nthreads, args.c, args.epilogue,
            [&](float* acc, int64_t it, int64_t jp, int64_t /*kb*/,
                int64_t k0, int64_t kc) {
                Micro::TileBf16(pa_base + it * MR * k + k0 * MR,
                                pb_base + jp * panel_stride + k0 * NR,
                                kc, acc);
            });
    }
};

/**
 * int8 driver-side k-block: the int32 tile accumulator is exact, so
 * the int8 tier blocks k far coarser than the f32 KC — dequant and the
 * C merge run once per kBlockKcInt8 depths instead of once per 384.
 * A multiple of kBlockKc so the pack-time per-block column sums
 * aggregate exactly onto driver-block boundaries; the worst-case lane
 * accumulation kBlockKcInt8 * 127 * 127 < 2^31 cannot overflow.
 */
inline constexpr int64_t kBlockKcInt8 = kBlockKc * 128;  // 49152

/**
 * BlockedDriver over quantized s8 B / u8 A panels: A is quantized
 * per row on entry (dynamic, into the thread-local byte scratch), the
 * microkernel produces exact int32 dot products per k block, and the
 * driver dequantizes into the float accumulator — including the exact
 * zero-point correction from the packed per-block column sums — before
 * the shared MergeTile. The k blocks are kBlockKcInt8-sized (usually
 * one), but accumulation across them and the fused epilogue still run
 * the f32 path's MergeTile logic.
 */
template <class Micro>
struct Int8BlockedDriver
{
    static constexpr int MR = Micro::kMr;
    static constexpr int NR = Micro::kNr;

    static void
    Run(const GemmArgs& args)
    {
        const PackedB& b = *args.b;
        assert(b.nr == NR);
        assert(b.dtype == Dtype::kInt8);
        assert(IsAligned64(b.qdata.data()));
        const int64_t m = args.m, k = b.k, n = b.n;
        if (m == 0 || n == 0) return;

        const int64_t tiles_m = (m + MR - 1) / MR;
        const int64_t panels = (n + NR - 1) / NR;
        const int64_t kq = (k + 3) / 4;
        const int64_t pa_stride = kq * 4 * MR;
        const int64_t pb_stride = kq * 4 * NR;

        AlignedFloatVector& scales = AcquireAPackScratch(
            static_cast<size_t>(tiles_m * MR));
        AlignedByteVector& a_pack = AcquireQuantAPackScratch(
            static_cast<size_t>(tiles_m * pa_stride));
        PackAPanelsInt8<MR>(args.a, m, k, args.a_transposed,
                            a_pack.data(), scales.data());
        const uint8_t* pa_base = a_pack.data();
        const auto* pb_base =
            reinterpret_cast<const int8_t*>(b.qdata.data());
        const float* sa = scales.data();
        const float* sb = b.col_scales.data();

        // Zero-point corrections per driver-side k block: the sum of
        // the pack-time per-KC-block column sums it spans.
        const int64_t pack_blocks =
            std::max<int64_t>(1, (k + kBlockKc - 1) / kBlockKc);
        const int64_t drv_blocks =
            std::max<int64_t>(1, (k + kBlockKcInt8 - 1) / kBlockKcInt8);
        constexpr int64_t kPackPerDrv = kBlockKcInt8 / kBlockKc;
        std::vector<int32_t> agg(
            static_cast<size_t>(drv_blocks * panels * NR), 0);
        for (int64_t pb = 0; pb < pack_blocks; ++pb) {
            const int32_t* src =
                b.col_block_sums.data() + pb * panels * NR;
            int32_t* dst =
                agg.data() + (pb / kPackPerDrv) * panels * NR;
            for (int64_t i = 0; i < panels * NR; ++i) dst[i] += src[i];
        }

        RunBlockedLoops<MR, NR>(
            m, k, n, args.nthreads, args.c, args.epilogue,
            [&](float* acc, int64_t it, int64_t jp, int64_t kb,
                int64_t k0, int64_t kc) {
                alignas(64) int32_t iacc[MR * NR];
                const int64_t g0 = k0 / 4;
                const int64_t groups = (kc + 3) / 4;
                Micro::TileInt8(pa_base + it * pa_stride + g0 * 4 * MR,
                                pb_base + jp * pb_stride + g0 * 4 * NR,
                                groups, iacc);
                const int32_t* bsum =
                    agg.data() + kb * panels * NR + jp * NR;
                for (int r = 0; r < MR; ++r) {
                    const float s = sa[it * MR + r];
                    for (int j = 0; j < NR; ++j) {
                        acc[r * NR + j] =
                            s * sb[jp * NR + j] *
                            static_cast<float>(iacc[r * NR + j] -
                                               kInt8AZero * bsum[j]);
                    }
                }
            },
            kBlockKcInt8);
    }
};

/** The function-pointer surface each microkernel TU exports. Quantized
 * slots are nullptr when the tier has no kernel for that precision
 * (dispatch steps down via EffectiveIsaFor). */
struct TierOps
{
    int mr = 0;
    int nr = 0;
    void (*pack_b)(const float* b, int64_t k, int64_t n, bool trans,
                   float* out) = nullptr;
    void (*run)(const GemmArgs& args) = nullptr;
    void (*pack_b_bf16)(const float* b, int64_t k, int64_t n, bool trans,
                        uint16_t* out) = nullptr;
    void (*run_bf16)(const GemmArgs& args) = nullptr;
    void (*pack_b_int8)(const float* b, int64_t k, int64_t n, bool trans,
                        int8_t* out, float* col_scales,
                        int32_t* col_block_sums) = nullptr;
    void (*run_int8)(const GemmArgs& args) = nullptr;
};

const TierOps& ScalarTierOps();
const TierOps& Avx2TierOps();    // defined only when compiled in
const TierOps& Avx512TierOps();  // defined only when compiled in

// Defined in micro_int8_avx512.cc (the AVX-512 VNNI TU) when the
// compiler supports its flags; referenced by Avx512TierOps.
void Avx512VnniInt8PackB(const float* b, int64_t k, int64_t n, bool trans,
                         int8_t* out, float* col_scales,
                         int32_t* col_block_sums);
void Avx512VnniInt8Run(const GemmArgs& args);

}  // namespace secemb::kernels::detail
