#include "tensor/kernels/kernels.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>

#include "telemetry/telemetry.h"
#include "tensor/kernels/driver.h"

namespace secemb::kernels {

namespace {

std::atomic<int> g_test_isa{-1};

bool
CpuSupports(Isa isa)
{
#if defined(__x86_64__) || defined(__i386__)
    switch (isa) {
        case Isa::kScalar:
            return true;
        case Isa::kAvx2:
            return __builtin_cpu_supports("avx2") &&
                   __builtin_cpu_supports("fma");
        case Isa::kAvx512:
            return __builtin_cpu_supports("avx512f");
    }
    return false;
#else
    return isa == Isa::kScalar;
#endif
}

/** Widest supported tier not wider than `want`. */
Isa
ClampToSupported(Isa want)
{
    for (int t = static_cast<int>(want); t > 0; --t) {
        if (IsaSupported(static_cast<Isa>(t))) return static_cast<Isa>(t);
    }
    return Isa::kScalar;
}

/** Parse SECEMB_ISA once; unknown values warn and select automatically. */
Isa
IsaFromEnvironment()
{
    const char* env = std::getenv("SECEMB_ISA");
    if (env == nullptr || *env == '\0') return WidestSupportedIsa();
    const std::string v(env);
    Isa want;
    if (v == "scalar") {
        want = Isa::kScalar;
    } else if (v == "avx2") {
        want = Isa::kAvx2;
    } else if (v == "avx512") {
        want = Isa::kAvx512;
    } else {
        std::fprintf(stderr,
                     "secemb: unknown SECEMB_ISA='%s' "
                     "(want scalar|avx2|avx512); auto-selecting %s\n",
                     v.c_str(), IsaName(WidestSupportedIsa()));
        return WidestSupportedIsa();
    }
    const Isa got = ClampToSupported(want);
    if (got != want) {
        std::fprintf(stderr,
                     "secemb: SECEMB_ISA=%s not supported on this "
                     "machine/build; using %s\n",
                     v.c_str(), IsaName(got));
    }
    return got;
}

const detail::TierOps&
OpsFor(Isa isa)
{
    switch (isa) {
#if defined(SECEMB_KERNELS_AVX2)
        case Isa::kAvx2:
            return detail::Avx2TierOps();
#endif
#if defined(SECEMB_KERNELS_AVX512)
        case Isa::kAvx512:
            return detail::Avx512TierOps();
#endif
        default:
            return detail::ScalarTierOps();
    }
}

}  // namespace

const char*
IsaName(Isa isa)
{
    switch (isa) {
        case Isa::kScalar:
            return "scalar";
        case Isa::kAvx2:
            return "avx2";
        case Isa::kAvx512:
            return "avx512";
    }
    return "?";
}

bool
IsaCompiledIn(Isa isa)
{
    switch (isa) {
        case Isa::kScalar:
            return true;
        case Isa::kAvx2:
#if defined(SECEMB_KERNELS_AVX2)
            return true;
#else
            return false;
#endif
        case Isa::kAvx512:
#if defined(SECEMB_KERNELS_AVX512)
            return true;
#else
            return false;
#endif
    }
    return false;
}

bool
IsaSupported(Isa isa)
{
    return IsaCompiledIn(isa) && CpuSupports(isa);
}

Isa
WidestSupportedIsa()
{
    static const Isa widest = ClampToSupported(Isa::kAvx512);
    return widest;
}

Isa
ActiveIsa()
{
    const int forced = g_test_isa.load(std::memory_order_relaxed);
    if (forced >= 0) return ClampToSupported(static_cast<Isa>(forced));
    static const Isa selected = IsaFromEnvironment();
    return selected;
}

void
SetIsaForTest(int isa_or_negative)
{
    g_test_isa.store(isa_or_negative, std::memory_order_relaxed);
}

void
PackB(const float* b, int64_t k, int64_t n, bool transposed_src, Isa isa,
      PackedB* out)
{
    assert(b != nullptr || k * n == 0);
    const detail::TierOps& ops = OpsFor(isa);
    out->k = k;
    out->n = n;
    out->nr = ops.nr;
    out->isa = isa;
    out->transposed_src = transposed_src;
    out->content_hash = 0;
    out->data.resize(
        static_cast<size_t>(out->panels() * out->panel_stride()));
    ops.pack_b(b, k, n, transposed_src, out->data.data());
    TELEMETRY_COUNT("kernels.pack_b.calls", 1);
    TELEMETRY_COUNT("kernels.pack_b.floats", k * n);
}

uint64_t
HashWeights(const float* data, int64_t count)
{
    // Multiply-xor over 8-byte words: fast change detection for the
    // packed-weight cache, not adversarial hashing.
    constexpr uint64_t kMul = 0x9E3779B97F4A7C15ull;
    uint64_t h = 0x243F6A8885A308D3ull ^
                 (static_cast<uint64_t>(count) * kMul);
    const auto* bytes = reinterpret_cast<const unsigned char*>(data);
    size_t remaining = static_cast<size_t>(count) * sizeof(float);
    while (remaining >= 8) {
        uint64_t w;
        std::memcpy(&w, bytes, 8);
        h = (h ^ w) * kMul;
        h ^= h >> 29;
        bytes += 8;
        remaining -= 8;
    }
    if (remaining > 0) {
        uint64_t w = 0;
        std::memcpy(&w, bytes, remaining);
        h = (h ^ w) * kMul;
        h ^= h >> 29;
    }
    return h * kMul;
}

void
GemmPacked(const GemmArgs& args)
{
    assert(args.b != nullptr);
    assert(args.c != nullptr || args.m * args.b->n == 0);
    // Kernel-entry alignment contract: packed panels come from the
    // 64-byte allocator, unconditionally.
    assert(IsAligned64(args.b->data.data()));
    TELEMETRY_COUNT("kernels.gemm.calls", 1);
    OpsFor(args.b->isa).run(args);
}

// ---------------------------------------------------------------------------
// PackedWeightCache
// ---------------------------------------------------------------------------

namespace {

struct CacheKey
{
    uintptr_t ptr;
    int64_t k;
    int64_t n;
    bool transposed;
    int isa;

    bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash
{
    size_t
    operator()(const CacheKey& key) const
    {
        uint64_t h = key.ptr;
        h = (h ^ static_cast<uint64_t>(key.k)) * 0x9E3779B97F4A7C15ull;
        h = (h ^ static_cast<uint64_t>(key.n)) * 0x9E3779B97F4A7C15ull;
        h ^= (key.transposed ? 0x10000u : 0u) ^
             static_cast<uint64_t>(key.isa);
        h ^= h >> 31;
        return static_cast<size_t>(h);
    }
};

}  // namespace

struct PackedWeightCache::Impl
{
    mutable std::mutex mu;
    std::unordered_map<CacheKey, std::shared_ptr<const PackedB>,
                       CacheKeyHash>
        entries;
    Stats stats;
};

PackedWeightCache::Impl&
PackedWeightCache::impl() const
{
    static Impl instance;
    return instance;
}

PackedWeightCache&
PackedWeightCache::Instance()
{
    static PackedWeightCache cache;
    return cache;
}

std::shared_ptr<const PackedB>
PackedWeightCache::Get(const float* w, int64_t k, int64_t n,
                       bool transposed_src)
{
    const Isa isa = ActiveIsa();
    // Hash outside the lock: it reads the whole weight buffer (an
    // input-independent, whole-region access) and is the staleness
    // check that makes in-place weight updates safe to cache under.
    const uint64_t hash = HashWeights(w, k * n);
    const CacheKey key{reinterpret_cast<uintptr_t>(w), k, n,
                       transposed_src, static_cast<int>(isa)};

    Impl& im = impl();
    std::unique_lock<std::mutex> lock(im.mu);
    auto it = im.entries.find(key);
    if (it != im.entries.end() && it->second->content_hash == hash) {
        ++im.stats.hits;
        TELEMETRY_COUNT("kernels.cache.hits", 1);
        return it->second;
    }
    const bool repack = it != im.entries.end();
    lock.unlock();

    auto packed = std::make_shared<PackedB>();
    PackB(w, k, n, transposed_src, isa, packed.get());
    packed->content_hash = hash;

    lock.lock();
    if (repack) {
        ++im.stats.repacks;
        TELEMETRY_COUNT("kernels.cache.repacks", 1);
    } else {
        ++im.stats.misses;
        TELEMETRY_COUNT("kernels.cache.misses", 1);
    }
    im.entries[key] = packed;
    return packed;
}

void
PackedWeightCache::Clear()
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    im.entries.clear();
    im.stats = Stats{};
}

PackedWeightCache::Stats
PackedWeightCache::stats() const
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    return im.stats;
}

size_t
PackedWeightCache::entries() const
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    return im.entries.size();
}

namespace detail {

namespace {
thread_local AlignedFloatVector g_a_pack_scratch;
}  // namespace

AlignedFloatVector&
AcquireAPackScratch(std::size_t need_floats)
{
    AlignedFloatVector& buf = g_a_pack_scratch;
    // Release the backing storage when the retained capacity dwarfs the
    // request (> 4x) and is big enough to matter (> 256 KiB): without
    // this, every pool worker permanently pins the largest A panel it
    // ever packed. Buffers below the floor stay cached — reallocating
    // tiny panels every call would cost more than it frees.
    constexpr std::size_t kShrinkFactor = 4;
    constexpr std::size_t kShrinkFloorBytes = 256u * 1024u;
    if (buf.capacity() * sizeof(float) > kShrinkFloorBytes &&
        buf.capacity() / kShrinkFactor > need_floats) {
        AlignedFloatVector().swap(buf);
    }
    buf.resize(need_floats);
    return buf;
}

std::size_t
APackScratchCapacityForTest()
{
    return g_a_pack_scratch.capacity();
}

}  // namespace detail

}  // namespace secemb::kernels
