#include "tensor/kernels/kernels.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>

#include "telemetry/telemetry.h"
#include "tensor/kernels/driver.h"

namespace secemb::kernels {

namespace {

std::atomic<int> g_test_isa{-1};
std::atomic<int> g_test_dtype{-1};

/** AVX-512 VNNI (vpdpbusd) — beyond what Isa::kAvx512 guarantees. */
bool
CpuSupportsVnni()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx512vnni");
#else
    return false;
#endif
}

bool
CpuSupports(Isa isa)
{
#if defined(__x86_64__) || defined(__i386__)
    switch (isa) {
        case Isa::kScalar:
            return true;
        case Isa::kAvx2:
            return __builtin_cpu_supports("avx2") &&
                   __builtin_cpu_supports("fma");
        case Isa::kAvx512:
            return __builtin_cpu_supports("avx512f");
    }
    return false;
#else
    return isa == Isa::kScalar;
#endif
}

/** Widest supported tier not wider than `want`. */
Isa
ClampToSupported(Isa want)
{
    for (int t = static_cast<int>(want); t > 0; --t) {
        if (IsaSupported(static_cast<Isa>(t))) return static_cast<Isa>(t);
    }
    return Isa::kScalar;
}

/** Parse SECEMB_ISA once; unknown values warn and select automatically. */
Isa
IsaFromEnvironment()
{
    const char* env = std::getenv("SECEMB_ISA");
    if (env == nullptr || *env == '\0') return WidestSupportedIsa();
    const std::string v(env);
    Isa want;
    if (v == "scalar") {
        want = Isa::kScalar;
    } else if (v == "avx2") {
        want = Isa::kAvx2;
    } else if (v == "avx512") {
        want = Isa::kAvx512;
    } else {
        std::fprintf(stderr,
                     "secemb: unknown SECEMB_ISA='%s' "
                     "(want scalar|avx2|avx512); auto-selecting %s\n",
                     v.c_str(), IsaName(WidestSupportedIsa()));
        return WidestSupportedIsa();
    }
    const Isa got = ClampToSupported(want);
    if (got != want) {
        std::fprintf(stderr,
                     "secemb: SECEMB_ISA=%s not supported on this "
                     "machine/build; using %s\n",
                     v.c_str(), IsaName(got));
    }
    return got;
}

const detail::TierOps&
OpsFor(Isa isa)
{
    switch (isa) {
#if defined(SECEMB_KERNELS_AVX2)
        case Isa::kAvx2:
            return detail::Avx2TierOps();
#endif
#if defined(SECEMB_KERNELS_AVX512)
        case Isa::kAvx512:
            return detail::Avx512TierOps();
#endif
        default:
            return detail::ScalarTierOps();
    }
}

/** True when `isa` has a kernel for `dtype` on this machine/build. */
bool
DtypeTierAvailable(Isa isa, Dtype dtype)
{
    if (!IsaSupported(isa)) return false;
    const detail::TierOps& ops = OpsFor(isa);
    switch (dtype) {
        case Dtype::kF32:
            return ops.run != nullptr;
        case Dtype::kBf16:
            return ops.run_bf16 != nullptr;
        case Dtype::kInt8:
            if (ops.run_int8 == nullptr) return false;
            // The AVX-512 int8 kernel is vpdpbusd: it needs VNNI on
            // top of the avx512f the tier itself guarantees.
            return isa != Isa::kAvx512 || CpuSupportsVnni();
    }
    return false;
}

/** Parse SECEMB_PRECISION once; unknown values warn and select f32. */
Dtype
DtypeFromEnvironment()
{
    const char* env = std::getenv("SECEMB_PRECISION");
    if (env == nullptr || *env == '\0') return Dtype::kF32;
    Dtype parsed;
    if (!ParseDtype(env, &parsed)) {
        std::fprintf(stderr,
                     "secemb: unknown SECEMB_PRECISION='%s' "
                     "(want f32|bf16|int8); using f32\n",
                     env);
        return Dtype::kF32;
    }
    return parsed;
}

}  // namespace

const char*
IsaName(Isa isa)
{
    switch (isa) {
        case Isa::kScalar:
            return "scalar";
        case Isa::kAvx2:
            return "avx2";
        case Isa::kAvx512:
            return "avx512";
    }
    return "?";
}

bool
IsaCompiledIn(Isa isa)
{
    switch (isa) {
        case Isa::kScalar:
            return true;
        case Isa::kAvx2:
#if defined(SECEMB_KERNELS_AVX2)
            return true;
#else
            return false;
#endif
        case Isa::kAvx512:
#if defined(SECEMB_KERNELS_AVX512)
            return true;
#else
            return false;
#endif
    }
    return false;
}

bool
IsaSupported(Isa isa)
{
    return IsaCompiledIn(isa) && CpuSupports(isa);
}

Isa
WidestSupportedIsa()
{
    static const Isa widest = ClampToSupported(Isa::kAvx512);
    return widest;
}

Isa
ActiveIsa()
{
    const int forced = g_test_isa.load(std::memory_order_relaxed);
    if (forced >= 0) return ClampToSupported(static_cast<Isa>(forced));
    static const Isa selected = IsaFromEnvironment();
    return selected;
}

void
SetIsaForTest(int isa_or_negative)
{
    g_test_isa.store(isa_or_negative, std::memory_order_relaxed);
}

const char*
DtypeName(Dtype dtype)
{
    switch (dtype) {
        case Dtype::kF32:
            return "f32";
        case Dtype::kBf16:
            return "bf16";
        case Dtype::kInt8:
            return "int8";
    }
    return "?";
}

bool
ParseDtype(const char* name, Dtype* out)
{
    const std::string v(name == nullptr ? "" : name);
    if (v == "f32") {
        *out = Dtype::kF32;
    } else if (v == "bf16") {
        *out = Dtype::kBf16;
    } else if (v == "int8") {
        *out = Dtype::kInt8;
    } else {
        return false;
    }
    return true;
}

Dtype
ActiveDtype()
{
    const int forced = g_test_dtype.load(std::memory_order_relaxed);
    if (forced >= 0) return static_cast<Dtype>(forced);
    static const Dtype selected = DtypeFromEnvironment();
    return selected;
}

void
SetDtypeForTest(int dtype_or_negative)
{
    g_test_dtype.store(dtype_or_negative, std::memory_order_relaxed);
}

Isa
EffectiveIsaFor(Isa want, Dtype dtype)
{
    for (int t = static_cast<int>(ClampToSupported(want)); t > 0; --t) {
        if (DtypeTierAvailable(static_cast<Isa>(t), dtype)) {
            return static_cast<Isa>(t);
        }
    }
    return Isa::kScalar;
}

void
PackB(const float* b, int64_t k, int64_t n, bool transposed_src, Isa isa,
      PackedB* out)
{
    PackB(b, k, n, transposed_src, isa, Dtype::kF32, out);
}

void
PackB(const float* b, int64_t k, int64_t n, bool transposed_src, Isa isa,
      Dtype dtype, PackedB* out)
{
    assert(b != nullptr || k * n == 0);
    isa = EffectiveIsaFor(isa, dtype);
    const detail::TierOps& ops = OpsFor(isa);
    out->k = k;
    out->n = n;
    out->nr = ops.nr;
    out->isa = isa;
    out->dtype = dtype;
    out->transposed_src = transposed_src;
    out->content_hash = 0;
    out->data.clear();
    out->qdata.clear();
    out->col_scales.clear();
    out->col_block_sums.clear();
    switch (dtype) {
        case Dtype::kF32:
            out->data.resize(
                static_cast<size_t>(out->panels() * out->panel_stride()));
            ops.pack_b(b, k, n, transposed_src, out->data.data());
            break;
        case Dtype::kBf16:
            out->qdata.resize(static_cast<size_t>(
                out->panels() * out->panel_stride_bytes()));
            ops.pack_b_bf16(
                b, k, n, transposed_src,
                reinterpret_cast<uint16_t*>(out->qdata.data()));
            break;
        case Dtype::kInt8: {
            const int64_t padded_cols = out->panels() * out->nr;
            const int64_t k_blocks = std::max<int64_t>(
                1, (k + detail::kBlockKc - 1) / detail::kBlockKc);
            out->qdata.resize(static_cast<size_t>(
                out->panels() * out->panel_stride_bytes()));
            out->col_scales.resize(static_cast<size_t>(padded_cols));
            out->col_block_sums.resize(
                static_cast<size_t>(k_blocks * padded_cols));
            ops.pack_b_int8(b, k, n, transposed_src,
                            reinterpret_cast<int8_t*>(out->qdata.data()),
                            out->col_scales.data(),
                            out->col_block_sums.data());
            break;
        }
    }
    TELEMETRY_COUNT("kernels.pack_b.calls", 1);
    TELEMETRY_COUNT("kernels.pack_b.floats", k * n);
}

uint64_t
HashWeights(const float* data, int64_t count)
{
    // Multiply-xor over 8-byte words: fast change detection for the
    // packed-weight cache, not adversarial hashing.
    constexpr uint64_t kMul = 0x9E3779B97F4A7C15ull;
    uint64_t h = 0x243F6A8885A308D3ull ^
                 (static_cast<uint64_t>(count) * kMul);
    const auto* bytes = reinterpret_cast<const unsigned char*>(data);
    size_t remaining = static_cast<size_t>(count) * sizeof(float);
    while (remaining >= 8) {
        uint64_t w;
        std::memcpy(&w, bytes, 8);
        h = (h ^ w) * kMul;
        h ^= h >> 29;
        bytes += 8;
        remaining -= 8;
    }
    if (remaining > 0) {
        uint64_t w = 0;
        std::memcpy(&w, bytes, remaining);
        h = (h ^ w) * kMul;
        h ^= h >> 29;
    }
    return h * kMul;
}

void
GemmPacked(const GemmArgs& args)
{
    assert(args.b != nullptr);
    assert(args.c != nullptr || args.m * args.b->n == 0);
    // Kernel-entry alignment contract: packed panels come from the
    // 64-byte allocator, unconditionally.
    assert(IsAligned64(args.b->data.data()));
    assert(IsAligned64(args.b->qdata.data()));
    TELEMETRY_COUNT("kernels.gemm.calls", 1);
    const detail::TierOps& ops = OpsFor(args.b->isa);
    switch (args.b->dtype) {
        case Dtype::kF32:
            ops.run(args);
            break;
        case Dtype::kBf16:
            assert(ops.run_bf16 != nullptr);
            ops.run_bf16(args);
            break;
        case Dtype::kInt8:
            assert(ops.run_int8 != nullptr);
            ops.run_int8(args);
            break;
    }
}

// ---------------------------------------------------------------------------
// PackedWeightCache
// ---------------------------------------------------------------------------

namespace {

struct CacheKey
{
    uintptr_t ptr;
    int64_t k;
    int64_t n;
    bool transposed;
    int isa;
    int dtype;

    bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash
{
    size_t
    operator()(const CacheKey& key) const
    {
        uint64_t h = key.ptr;
        h = (h ^ static_cast<uint64_t>(key.k)) * 0x9E3779B97F4A7C15ull;
        h = (h ^ static_cast<uint64_t>(key.n)) * 0x9E3779B97F4A7C15ull;
        h ^= (key.transposed ? 0x10000u : 0u) ^
             static_cast<uint64_t>(key.isa) ^
             (static_cast<uint64_t>(key.dtype) << 4);
        h ^= h >> 31;
        return static_cast<size_t>(h);
    }
};

}  // namespace

struct PackedWeightCache::Impl
{
    mutable std::mutex mu;
    std::unordered_map<CacheKey, std::shared_ptr<const PackedB>,
                       CacheKeyHash>
        entries;
    Stats stats;
};

PackedWeightCache::Impl&
PackedWeightCache::impl() const
{
    static Impl instance;
    return instance;
}

PackedWeightCache&
PackedWeightCache::Instance()
{
    static PackedWeightCache cache;
    return cache;
}

std::shared_ptr<const PackedB>
PackedWeightCache::Get(const float* w, int64_t k, int64_t n,
                       bool transposed_src, Dtype dtype)
{
    const Isa isa = EffectiveIsaFor(ActiveIsa(), dtype);
    // Hash outside the lock: it reads the whole weight buffer (an
    // input-independent, whole-region access) and is the staleness
    // check that makes in-place weight updates safe to cache under.
    // Quantized entries revalidate against the same f32 source hash.
    const uint64_t hash = HashWeights(w, k * n);
    const CacheKey key{reinterpret_cast<uintptr_t>(w), k, n,
                       transposed_src, static_cast<int>(isa),
                       static_cast<int>(dtype)};

    Impl& im = impl();
    std::unique_lock<std::mutex> lock(im.mu);
    auto it = im.entries.find(key);
    if (it != im.entries.end() && it->second->content_hash == hash) {
        ++im.stats.hits;
        TELEMETRY_COUNT("kernels.cache.hits", 1);
        return it->second;
    }
    const bool repack = it != im.entries.end();
    lock.unlock();

    auto packed = std::make_shared<PackedB>();
    PackB(w, k, n, transposed_src, isa, dtype, packed.get());
    packed->content_hash = hash;

    lock.lock();
    if (repack) {
        ++im.stats.repacks;
        TELEMETRY_COUNT("kernels.cache.repacks", 1);
    } else {
        ++im.stats.misses;
        TELEMETRY_COUNT("kernels.cache.misses", 1);
    }
    im.entries[key] = packed;
    return packed;
}

void
PackedWeightCache::Clear()
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    im.entries.clear();
    im.stats = Stats{};
}

PackedWeightCache::Stats
PackedWeightCache::stats() const
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    return im.stats;
}

size_t
PackedWeightCache::entries() const
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    return im.entries.size();
}

namespace detail {

namespace {
thread_local AlignedFloatVector g_a_pack_scratch;
thread_local AlignedByteVector g_quant_a_pack_scratch;

// Release the backing storage when the retained capacity dwarfs the
// request (> 4x) and is big enough to matter (> 256 KiB): without
// this, every pool worker permanently pins the largest A panel it
// ever packed. Buffers below the floor stay cached — reallocating
// tiny panels every call would cost more than it frees.
constexpr std::size_t kShrinkFactor = 4;
constexpr std::size_t kShrinkFloorBytes = 256u * 1024u;
}  // namespace

AlignedFloatVector&
AcquireAPackScratch(std::size_t need_floats)
{
    AlignedFloatVector& buf = g_a_pack_scratch;
    if (buf.capacity() * sizeof(float) > kShrinkFloorBytes &&
        buf.capacity() / kShrinkFactor > need_floats) {
        AlignedFloatVector().swap(buf);
    }
    buf.resize(need_floats);
    return buf;
}

AlignedByteVector&
AcquireQuantAPackScratch(std::size_t need_bytes)
{
    AlignedByteVector& buf = g_quant_a_pack_scratch;
    if (buf.capacity() > kShrinkFloorBytes &&
        buf.capacity() / kShrinkFactor > need_bytes) {
        AlignedByteVector().swap(buf);
    }
    buf.resize(need_bytes);
    return buf;
}

std::size_t
APackScratchCapacityForTest()
{
    return g_a_pack_scratch.capacity();
}

}  // namespace detail

}  // namespace secemb::kernels
