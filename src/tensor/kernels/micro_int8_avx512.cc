/**
 * @file
 * AVX-512 VNNI int8 microkernel: 8x32 tile of int32 accumulators fed
 * by vpdpbusd (u8 A x s8 B, 4-deep dot products per lane — 64 MACs
 * per instruction against the f32 tier's 16). Compiled with
 * -mavx512vnni on this TU only; the dispatcher resolves int8 at the
 * AVX-512 tier only when __builtin_cpu_supports("avx512vnni") holds,
 * stepping down to the AVX2 pmaddubsw kernel otherwise.
 */

#include <immintrin.h>

#include <cstring>

#include "tensor/kernels/driver.h"

namespace secemb::kernels::detail {

namespace {

struct MicroInt8Avx512
{
    static constexpr int kMr = 8;
    static constexpr int kNr = 32;

    static void
    TileInt8(const uint8_t* qa, const int8_t* qb, int64_t groups,
             int32_t* acc)
    {
        // 16 i32 accumulators; each zmm covers 16 columns x 4 depths.
        __m512i c[kMr][2];
        for (int r = 0; r < kMr; ++r) {
            c[r][0] = _mm512_setzero_si512();
            c[r][1] = _mm512_setzero_si512();
        }
        for (int64_t g = 0; g < groups; ++g) {
            // Panel groups are 128B off a 64B base: aligned loads.
            const __m512i b0 = _mm512_load_si512(qb + g * 4 * kNr);
            const __m512i b1 = _mm512_load_si512(qb + g * 4 * kNr + 64);
            const uint8_t* av = qa + g * 4 * kMr;
            for (int r = 0; r < kMr; ++r) {
                uint32_t aw;
                std::memcpy(&aw, av + r * 4, sizeof(aw));
                const __m512i a =
                    _mm512_set1_epi32(static_cast<int>(aw));
                c[r][0] = _mm512_dpbusd_epi32(c[r][0], a, b0);
                c[r][1] = _mm512_dpbusd_epi32(c[r][1], a, b1);
            }
        }
        for (int r = 0; r < kMr; ++r) {
            _mm512_store_si512(acc + r * kNr, c[r][0]);
            _mm512_store_si512(acc + r * kNr + 16, c[r][1]);
        }
    }
};

}  // namespace

void
Avx512VnniInt8PackB(const float* b, int64_t k, int64_t n, bool trans,
                    int8_t* out, float* col_scales,
                    int32_t* col_block_sums)
{
    PackBPanelsInt8<MicroInt8Avx512::kNr>(b, k, n, trans, out, col_scales,
                                          col_block_sums);
}

void
Avx512VnniInt8Run(const GemmArgs& args)
{
    Int8BlockedDriver<MicroInt8Avx512>::Run(args);
}

}  // namespace secemb::kernels::detail
