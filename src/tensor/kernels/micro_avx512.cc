/**
 * @file
 * AVX-512F microkernel: 8x32 register tile (16 zmm accumulators + 2 B
 * vectors + 1 broadcast of 32 registers). Compiled with -mavx512f on
 * this TU only; selected at runtime only when the CPU reports avx512f.
 */

#include <immintrin.h>

#include "tensor/kernels/driver.h"

namespace secemb::kernels::detail {

namespace {

struct MicroAvx512
{
    static constexpr int kMr = 8;
    static constexpr int kNr = 32;

    static void
    Tile(const float* pa, const float* pb, int64_t kc, float* acc)
    {
        __m512 c[kMr][2];
        for (int r = 0; r < kMr; ++r) {
            c[r][0] = _mm512_setzero_ps();
            c[r][1] = _mm512_setzero_ps();
        }
        for (int64_t p = 0; p < kc; ++p) {
            // Panel rows are 128B groups off a 64B base: aligned loads.
            const __m512 b0 = _mm512_load_ps(pb + p * kNr);
            const __m512 b1 = _mm512_load_ps(pb + p * kNr + 16);
            const float* av = pa + p * kMr;
            for (int r = 0; r < kMr; ++r) {
                const __m512 a = _mm512_set1_ps(av[r]);
                c[r][0] = _mm512_fmadd_ps(a, b0, c[r][0]);
                c[r][1] = _mm512_fmadd_ps(a, b1, c[r][1]);
            }
        }
        for (int r = 0; r < kMr; ++r) {
            _mm512_store_ps(acc + r * kNr, c[r][0]);
            _mm512_store_ps(acc + r * kNr + 16, c[r][1]);
        }
    }
};

}  // namespace

const TierOps&
Avx512TierOps()
{
    static const TierOps ops = {
        MicroAvx512::kMr,
        MicroAvx512::kNr,
        &PackBPanels<MicroAvx512::kNr>,
        &BlockedDriver<MicroAvx512>::Run,
    };
    return ops;
}

}  // namespace secemb::kernels::detail
