/**
 * @file
 * AVX-512F microkernels: the f32 8x32 register tile (16 zmm
 * accumulators + 2 B vectors + 1 broadcast of 32 registers) and the
 * bf16 variant widening 2-byte B groups on load (avx512f only — no
 * avx512bf16 needed). Compiled with -mavx512f on this TU only;
 * selected at runtime only when the CPU reports avx512f. The int8
 * vpdpbusd tile needs -mavx512vnni and lives in micro_int8_avx512.cc.
 */

#include <immintrin.h>

#include "tensor/kernels/driver.h"

namespace secemb::kernels::detail {

namespace {

struct MicroAvx512
{
    static constexpr int kMr = 8;
    static constexpr int kNr = 32;

    static void
    Tile(const float* pa, const float* pb, int64_t kc, float* acc)
    {
        __m512 c[kMr][2];
        for (int r = 0; r < kMr; ++r) {
            c[r][0] = _mm512_setzero_ps();
            c[r][1] = _mm512_setzero_ps();
        }
        for (int64_t p = 0; p < kc; ++p) {
            // Panel rows are 128B groups off a 64B base: aligned loads.
            const __m512 b0 = _mm512_load_ps(pb + p * kNr);
            const __m512 b1 = _mm512_load_ps(pb + p * kNr + 16);
            const float* av = pa + p * kMr;
            for (int r = 0; r < kMr; ++r) {
                const __m512 a = _mm512_set1_ps(av[r]);
                c[r][0] = _mm512_fmadd_ps(a, b0, c[r][0]);
                c[r][1] = _mm512_fmadd_ps(a, b1, c[r][1]);
            }
        }
        for (int r = 0; r < kMr; ++r) {
            _mm512_store_ps(acc + r * kNr, c[r][0]);
            _mm512_store_ps(acc + r * kNr + 16, c[r][1]);
        }
    }
};

/** 16 bf16 lanes widened to one f32 zmm (exact widening). */
inline __m512
WidenBf16(__m256i h)
{
    return _mm512_castsi512_ps(
        _mm512_slli_epi32(_mm512_cvtepu16_epi32(h), 16));
}

struct MicroAvx512Bf16
{
    static constexpr int kMr = 8;
    static constexpr int kNr = 32;

    static void
    TileBf16(const float* pa, const uint16_t* pb, int64_t kc, float* acc)
    {
        __m512 c[kMr][2];
        for (int r = 0; r < kMr; ++r) {
            c[r][0] = _mm512_setzero_ps();
            c[r][1] = _mm512_setzero_ps();
        }
        for (int64_t p = 0; p < kc; ++p) {
            // Panel rows are 64B groups off a 64B base: aligned loads.
            const __m512i bh = _mm512_load_si512(pb + p * kNr);
            const __m512 b0 = WidenBf16(_mm512_castsi512_si256(bh));
            const __m512 b1 =
                WidenBf16(_mm512_extracti64x4_epi64(bh, 1));
            const float* av = pa + p * kMr;
            for (int r = 0; r < kMr; ++r) {
                const __m512 a = _mm512_set1_ps(av[r]);
                c[r][0] = _mm512_fmadd_ps(a, b0, c[r][0]);
                c[r][1] = _mm512_fmadd_ps(a, b1, c[r][1]);
            }
        }
        for (int r = 0; r < kMr; ++r) {
            _mm512_store_ps(acc + r * kNr, c[r][0]);
            _mm512_store_ps(acc + r * kNr + 16, c[r][1]);
        }
    }
};

}  // namespace

const TierOps&
Avx512TierOps()
{
    static const TierOps ops = {
        MicroAvx512::kMr,
        MicroAvx512::kNr,
        &PackBPanels<MicroAvx512::kNr>,
        &BlockedDriver<MicroAvx512>::Run,
        &PackBPanelsBf16<MicroAvx512Bf16::kNr>,
        &Bf16BlockedDriver<MicroAvx512Bf16>::Run,
#if defined(SECEMB_KERNELS_AVX512VNNI)
        &Avx512VnniInt8PackB,
        &Avx512VnniInt8Run,
#else
        nullptr,
        nullptr,
#endif
    };
    return ops;
}

}  // namespace secemb::kernels::detail
