#pragma once

/**
 * @file
 * Runtime-dispatched packed GEMM microkernels with fused epilogues.
 *
 * This is the compute engine under every FC GEMM in the library (DHE
 * decoder, DLRM MLPs, the transformer head/FFN). Three tiers are built as
 * separate translation units with per-TU ISA flags and selected once at
 * startup:
 *
 *   AVX-512F (8x32 tiles) -> AVX2+FMA (6x16 tiles) -> scalar (4x8 tiles)
 *
 * The active tier can be forced with SECEMB_ISA=scalar|avx2|avx512 (for
 * A/B testing and the certification gate) and overridden per-process in
 * tests via SetIsaForTest(). Requests for a tier the CPU or build cannot
 * satisfy clamp down to the widest supported tier.
 *
 * B operands are packed into 64-byte-aligned NR-wide column panels
 * (cache-blocked MC/KC/NC traversal); weight matrices are packed once
 * into a persistent process-wide cache keyed by buffer identity and
 * validated by content hash, so serving workloads pack each FC weight a
 * single time and reuse the panels across every batch.
 *
 * Obliviousness: control flow in every kernel depends only on shapes
 * (public in the threat model); the packed traversal touches the whole
 * weight panel for every batch, exactly like the reference loops. The
 * PR-3 certification harness proves canonical traces are bit-identical
 * across tiers (see tests/kernel_test.cc, label `kernels`/`leakage`).
 */

#include <cmath>
#include <cstdint>
#include <memory>

#include "tensor/aligned.h"

namespace secemb::kernels {

/** Dispatch tiers, widest last. */
enum class Isa
{
    kScalar = 0,
    kAvx2 = 1,
    kAvx512 = 2,
};

/** Lowercase tier name: "scalar", "avx2", "avx512". */
const char* IsaName(Isa isa);

/** True if the tier's microkernel TU was compiled into this binary. */
bool IsaCompiledIn(Isa isa);

/** True if the tier is compiled in AND the CPU reports support. */
bool IsaSupported(Isa isa);

/** Widest tier usable on this machine/build (always >= kScalar). */
Isa WidestSupportedIsa();

/**
 * The tier all dispatched GEMMs use: SetIsaForTest() override if set,
 * else SECEMB_ISA (clamped to supported, parsed once), else the widest
 * supported tier.
 */
Isa ActiveIsa();

/**
 * Test hook: force a tier (pass static_cast<int>(Isa)) or restore
 * normal selection (pass -1). Forcing an unsupported tier clamps, like
 * the environment variable. Not for production use.
 */
void SetIsaForTest(int isa_or_negative);

// ---------------------------------------------------------------------------
// Precision tiers
// ---------------------------------------------------------------------------

/**
 * Storage precision of packed weight panels. Quantization happens at
 * pack time; every tier accumulates and stores C in f32, and the
 * blocked traversal (hence the address trace) is identical across
 * precisions — only the payload of the panel loads changes.
 *
 *   kF32  : reference panels, bit-exact packed GEMM
 *   kBf16 : B panels stored as round-to-nearest-even bf16, widened to
 *           f32 in the microkernel (half the panel traffic)
 *   kInt8 : B quantized per column (symmetric, s8), A quantized per row
 *           at pack time (7-bit unsigned, zero point 64 — keeps the
 *           AVX2 pmaddubsw path saturation-free), integer dot products
 *           with f32 dequant fused into the final-k-block store
 */
enum class Dtype
{
    kF32 = 0,
    kBf16 = 1,
    kInt8 = 2,
};

/** Lowercase precision name: "f32", "bf16", "int8". */
const char* DtypeName(Dtype dtype);

/** Parse a DtypeName; returns false on unknown name. */
bool ParseDtype(const char* name, Dtype* out);

/**
 * The precision dispatched GEMMs default to: SetDtypeForTest() override
 * if set, else SECEMB_PRECISION=f32|bf16|int8 (parsed once), else f32.
 * Layers can still pin a precision explicitly.
 */
Dtype ActiveDtype();

/**
 * Test hook: force a precision (pass static_cast<int>(Dtype)) or
 * restore normal selection (pass -1). Not for production use.
 */
void SetDtypeForTest(int dtype_or_negative);

/**
 * The tier that actually serves (want, dtype): steps down from `want`
 * while the precision's microkernel is unavailable there (e.g. int8 at
 * kAvx512 needs AVX-512 VNNI; without it the int8 path runs the AVX2
 * kernel). The scalar tier implements every precision, so this always
 * resolves. Packing and dispatch both use this, keeping PackedB::isa
 * consistent with the kernel that consumes it.
 */
Isa EffectiveIsaFor(Isa want, Dtype dtype);

// ---------------------------------------------------------------------------
// Fused epilogue
// ---------------------------------------------------------------------------

/** Activation applied in the GEMM epilogue (and by nn fused layers). */
enum class Activation
{
    kIdentity = 0,
    kRelu = 1,
    kGelu = 2,
};

/** GELU (tanh approximation, as in GPT-2) — single source of truth for
 * both the fused epilogue and nn::Gelu so results match exactly. */
inline float
GeluF(float x)
{
    constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
    const float inner = kC * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
}

/** d/dx of GeluF. */
inline float
GeluGradF(float x)
{
    constexpr float kC = 0.7978845608028654f;
    const float x3 = x * x * x;
    const float inner = kC * (x + 0.044715f * x3);
    const float t = std::tanh(inner);
    const float dinner = kC * (1.0f + 3.0f * 0.044715f * x * x);
    return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
}

/**
 * Work fused into the GEMM's final store: bias broadcast, activation,
 * and an optional pre-activation side output (what fused training
 * layers cache for Backward). All pointers are borrowed.
 */
struct Epilogue
{
    const float* bias = nullptr;  ///< length n; nullptr = no bias
    Activation act = Activation::kIdentity;
    float* preact = nullptr;  ///< m x n row-major; receives C + bias
};

// ---------------------------------------------------------------------------
// Packed operands
// ---------------------------------------------------------------------------

/**
 * B (k x n) packed into NR-wide column panels for one tier: panel j
 * holds rows 0..k of columns [j*nr, j*nr+nr) as k contiguous nr-float
 * groups, zero-padded to nr. The buffer is 64-byte aligned and panel
 * strides preserve that alignment.
 *
 * Quantized precisions store panels in `qdata` instead of `data`:
 *   kBf16 : the same group layout with 2-byte bf16 elements.
 *   kInt8 : k is padded to groups of 4; group g of panel j holds, for
 *           each of the nr columns, the 4 consecutive s8 values of
 *           depths [4g, 4g+4) — the operand order vpdpbusd/pmaddubsw
 *           consume directly. Per-column scales (`col_scales`) and
 *           per-k-block column sums (`col_block_sums`, for the A
 *           zero-point correction) are computed at pack time.
 */
struct PackedB
{
    int64_t k = 0;
    int64_t n = 0;
    int nr = 0;
    Isa isa = Isa::kScalar;
    Dtype dtype = Dtype::kF32;
    bool transposed_src = false;  ///< packed from an n x k (B^T) source
    uint64_t content_hash = 0;    ///< hash of the source weights
    AlignedFloatVector data;      ///< kF32 panels
    AlignedByteVector qdata;      ///< kBf16 / kInt8 panels
    /** kInt8: dequant scale per padded column (panels() * nr). */
    AlignedFloatVector col_scales;
    /** kInt8: per k-block sums of the quantized column values, indexed
     * [k_block * panels() * nr + column] — the zero-point correction. */
    std::vector<int32_t> col_block_sums;

    int64_t panels() const { return nr == 0 ? 0 : (n + nr - 1) / nr; }
    int64_t panel_stride() const { return k * int64_t{nr}; }
    /** kInt8: depth groups of 4 (k zero-padded up). */
    int64_t k_groups() const { return (k + 3) / 4; }
    /** Panel stride in bytes of the active storage. */
    int64_t panel_stride_bytes() const
    {
        switch (dtype) {
            case Dtype::kF32:
                return panel_stride() * int64_t{sizeof(float)};
            case Dtype::kBf16:
                return panel_stride() * 2;
            case Dtype::kInt8:
                return k_groups() * 4 * int64_t{nr};
        }
        return 0;
    }
};

/**
 * Pack `b` for `isa` at f32. When transposed_src, `b` is an n x k
 * row-major buffer read as B^T (the GemmBT case: C = A * B^T).
 */
void PackB(const float* b, int64_t k, int64_t n, bool transposed_src,
           Isa isa, PackedB* out);

/**
 * Pack `b` for (`isa`, `dtype`). `isa` must be the EffectiveIsaFor the
 * dtype (callers that dispatch through ActiveIsa() resolve it first);
 * quantization parameters are derived from the source values here, at
 * pack time.
 */
void PackB(const float* b, int64_t k, int64_t n, bool transposed_src,
           Isa isa, Dtype dtype, PackedB* out);

/** Cheap 64-bit content hash used for packed-weight staleness checks. */
uint64_t HashWeights(const float* data, int64_t count);

// ---------------------------------------------------------------------------
// Dispatched GEMM
// ---------------------------------------------------------------------------

/** One C = A * B (+ epilogue) invocation against a prepacked B. */
struct GemmArgs
{
    const float* a = nullptr;  ///< m x k row-major (k x m if a_transposed)
    bool a_transposed = false;
    const PackedB* b = nullptr;
    float* c = nullptr;  ///< m x n row-major, fully overwritten
    int64_t m = 0;
    Epilogue epilogue;
    int nthreads = 1;
};

/**
 * Run the blocked, packed GEMM for args.b->isa. Parallelised over MR-row
 * tiles of C via ParallelFor (deterministic chunk boundaries). The
 * epilogue is applied in the same pass as the final k-block's stores.
 */
void GemmPacked(const GemmArgs& args);

// ---------------------------------------------------------------------------
// Persistent packed-weight cache
// ---------------------------------------------------------------------------

/**
 * Process-wide cache of packed weight panels, keyed by (buffer address,
 * shape, transposition, tier, precision). Every Get() rehashes the
 * source buffer and repacks on mismatch, so in-place optimiser updates
 * (and buffer reuse after frees) can never serve stale panels; the hash
 * pass is O(k*n) reads versus the GEMM's O(2*m*k*n) flops. Entries are
 * returned as shared_ptr so a Clear() or repack cannot invalidate
 * panels a running GEMM still holds. Quantize-on-pack: a quantized
 * precision's scales and integer panels are derived here, once, and
 * revalidated by the same f32 content hash. Thread-safe.
 */
class PackedWeightCache
{
  public:
    static PackedWeightCache& Instance();

    /** Packed panels for weights `w` (k x n; n x k if transposed_src),
     * packed for EffectiveIsaFor(ActiveIsa(), dtype). Packs on first
     * use, content change, or first use at a new precision (distinct
     * precisions keep distinct entries — switching back is a hit). */
    std::shared_ptr<const PackedB> Get(const float* w, int64_t k,
                                       int64_t n, bool transposed_src,
                                       Dtype dtype = Dtype::kF32);

    /** Drop all entries (tests; also releases panel memory). */
    void Clear();

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;    ///< first-time packs
        uint64_t repacks = 0;   ///< content-hash mismatches
    };
    Stats stats() const;
    size_t entries() const;

  private:
    PackedWeightCache() = default;
    struct Impl;
    Impl& impl() const;
};

}  // namespace secemb::kernels
