#pragma once

/**
 * @file
 * Runtime-dispatched packed GEMM microkernels with fused epilogues.
 *
 * This is the compute engine under every FC GEMM in the library (DHE
 * decoder, DLRM MLPs, the transformer head/FFN). Three tiers are built as
 * separate translation units with per-TU ISA flags and selected once at
 * startup:
 *
 *   AVX-512F (8x32 tiles) -> AVX2+FMA (6x16 tiles) -> scalar (4x8 tiles)
 *
 * The active tier can be forced with SECEMB_ISA=scalar|avx2|avx512 (for
 * A/B testing and the certification gate) and overridden per-process in
 * tests via SetIsaForTest(). Requests for a tier the CPU or build cannot
 * satisfy clamp down to the widest supported tier.
 *
 * B operands are packed into 64-byte-aligned NR-wide column panels
 * (cache-blocked MC/KC/NC traversal); weight matrices are packed once
 * into a persistent process-wide cache keyed by buffer identity and
 * validated by content hash, so serving workloads pack each FC weight a
 * single time and reuse the panels across every batch.
 *
 * Obliviousness: control flow in every kernel depends only on shapes
 * (public in the threat model); the packed traversal touches the whole
 * weight panel for every batch, exactly like the reference loops. The
 * PR-3 certification harness proves canonical traces are bit-identical
 * across tiers (see tests/kernel_test.cc, label `kernels`/`leakage`).
 */

#include <cmath>
#include <cstdint>
#include <memory>

#include "tensor/aligned.h"

namespace secemb::kernels {

/** Dispatch tiers, widest last. */
enum class Isa
{
    kScalar = 0,
    kAvx2 = 1,
    kAvx512 = 2,
};

/** Lowercase tier name: "scalar", "avx2", "avx512". */
const char* IsaName(Isa isa);

/** True if the tier's microkernel TU was compiled into this binary. */
bool IsaCompiledIn(Isa isa);

/** True if the tier is compiled in AND the CPU reports support. */
bool IsaSupported(Isa isa);

/** Widest tier usable on this machine/build (always >= kScalar). */
Isa WidestSupportedIsa();

/**
 * The tier all dispatched GEMMs use: SetIsaForTest() override if set,
 * else SECEMB_ISA (clamped to supported, parsed once), else the widest
 * supported tier.
 */
Isa ActiveIsa();

/**
 * Test hook: force a tier (pass static_cast<int>(Isa)) or restore
 * normal selection (pass -1). Forcing an unsupported tier clamps, like
 * the environment variable. Not for production use.
 */
void SetIsaForTest(int isa_or_negative);

// ---------------------------------------------------------------------------
// Fused epilogue
// ---------------------------------------------------------------------------

/** Activation applied in the GEMM epilogue (and by nn fused layers). */
enum class Activation
{
    kIdentity = 0,
    kRelu = 1,
    kGelu = 2,
};

/** GELU (tanh approximation, as in GPT-2) — single source of truth for
 * both the fused epilogue and nn::Gelu so results match exactly. */
inline float
GeluF(float x)
{
    constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
    const float inner = kC * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
}

/** d/dx of GeluF. */
inline float
GeluGradF(float x)
{
    constexpr float kC = 0.7978845608028654f;
    const float x3 = x * x * x;
    const float inner = kC * (x + 0.044715f * x3);
    const float t = std::tanh(inner);
    const float dinner = kC * (1.0f + 3.0f * 0.044715f * x * x);
    return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
}

/**
 * Work fused into the GEMM's final store: bias broadcast, activation,
 * and an optional pre-activation side output (what fused training
 * layers cache for Backward). All pointers are borrowed.
 */
struct Epilogue
{
    const float* bias = nullptr;  ///< length n; nullptr = no bias
    Activation act = Activation::kIdentity;
    float* preact = nullptr;  ///< m x n row-major; receives C + bias
};

// ---------------------------------------------------------------------------
// Packed operands
// ---------------------------------------------------------------------------

/**
 * B (k x n) packed into NR-wide column panels for one tier: panel j
 * holds rows 0..k of columns [j*nr, j*nr+nr) as k contiguous nr-float
 * groups, zero-padded to nr. The buffer is 64-byte aligned and panel
 * strides preserve that alignment.
 */
struct PackedB
{
    int64_t k = 0;
    int64_t n = 0;
    int nr = 0;
    Isa isa = Isa::kScalar;
    bool transposed_src = false;  ///< packed from an n x k (B^T) source
    uint64_t content_hash = 0;    ///< hash of the source weights
    AlignedFloatVector data;

    int64_t panels() const { return nr == 0 ? 0 : (n + nr - 1) / nr; }
    int64_t panel_stride() const { return k * int64_t{nr}; }
};

/**
 * Pack `b` for `isa`. When transposed_src, `b` is an n x k row-major
 * buffer read as B^T (the GemmBT case: C = A * B^T).
 */
void PackB(const float* b, int64_t k, int64_t n, bool transposed_src,
           Isa isa, PackedB* out);

/** Cheap 64-bit content hash used for packed-weight staleness checks. */
uint64_t HashWeights(const float* data, int64_t count);

// ---------------------------------------------------------------------------
// Dispatched GEMM
// ---------------------------------------------------------------------------

/** One C = A * B (+ epilogue) invocation against a prepacked B. */
struct GemmArgs
{
    const float* a = nullptr;  ///< m x k row-major (k x m if a_transposed)
    bool a_transposed = false;
    const PackedB* b = nullptr;
    float* c = nullptr;  ///< m x n row-major, fully overwritten
    int64_t m = 0;
    Epilogue epilogue;
    int nthreads = 1;
};

/**
 * Run the blocked, packed GEMM for args.b->isa. Parallelised over MR-row
 * tiles of C via ParallelFor (deterministic chunk boundaries). The
 * epilogue is applied in the same pass as the final k-block's stores.
 */
void GemmPacked(const GemmArgs& args);

// ---------------------------------------------------------------------------
// Persistent packed-weight cache
// ---------------------------------------------------------------------------

/**
 * Process-wide cache of packed weight panels, keyed by (buffer address,
 * shape, transposition, tier). Every Get() rehashes the source buffer
 * and repacks on mismatch, so in-place optimiser updates (and buffer
 * reuse after frees) can never serve stale panels; the hash pass is
 * O(k*n) reads versus the GEMM's O(2*m*k*n) flops. Entries are returned
 * as shared_ptr so a Clear() or repack cannot invalidate panels a
 * running GEMM still holds. Thread-safe.
 */
class PackedWeightCache
{
  public:
    static PackedWeightCache& Instance();

    /** Packed panels for weights `w` (k x n; n x k if transposed_src),
     * packed for ActiveIsa(). Packs on first use or content change. */
    std::shared_ptr<const PackedB> Get(const float* w, int64_t k,
                                       int64_t n, bool transposed_src);

    /** Drop all entries (tests; also releases panel memory). */
    void Clear();

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;    ///< first-time packs
        uint64_t repacks = 0;   ///< content-hash mismatches
    };
    Stats stats() const;
    size_t entries() const;

  private:
    PackedWeightCache() = default;
    struct Impl;
    Impl& impl() const;
};

}  // namespace secemb::kernels
