#pragma once

/**
 * @file
 * 64-byte-aligned allocation for float buffers.
 *
 * Tensor payloads and packed GEMM panels are cache-line (and AVX-512
 * vector) aligned: the SIMD microkernels can then use full-width loads
 * without split-line penalties, and whole-region trace reporting maps
 * cleanly onto cache-line granularity in the sidechannel models.
 */

#include <cstddef>
#include <new>
#include <vector>

namespace secemb {

inline constexpr std::size_t kTensorAlignment = 64;

/** True if `p` meets the library-wide 64-byte buffer alignment. */
inline bool
IsAligned64(const void* p)
{
    return reinterpret_cast<std::uintptr_t>(p) % kTensorAlignment == 0;
}

/** Minimal allocator handing out 64-byte-aligned storage. */
template <class T>
struct AlignedAllocator64
{
    using value_type = T;

    AlignedAllocator64() = default;
    template <class U>
    AlignedAllocator64(const AlignedAllocator64<U>&)
    {
    }

    T*
    allocate(std::size_t n)
    {
        return static_cast<T*>(::operator new(
            n * sizeof(T), std::align_val_t{kTensorAlignment}));
    }

    void
    deallocate(T* p, std::size_t n)
    {
        ::operator delete(p, n * sizeof(T),
                          std::align_val_t{kTensorAlignment});
    }

    template <class U>
    bool
    operator==(const AlignedAllocator64<U>&) const
    {
        return true;
    }
};

/** The storage type behind Tensor payloads and packed kernel panels. */
using AlignedFloatVector = std::vector<float, AlignedAllocator64<float>>;

/** Aligned raw storage for quantized (bf16/int8) packed panels. */
using AlignedByteVector =
    std::vector<unsigned char, AlignedAllocator64<unsigned char>>;

}  // namespace secemb
