#pragma once

/**
 * @file
 * Deterministic pseudo-random number generation for the secemb library.
 *
 * All stochastic behaviour in the library (weight init, synthetic datasets,
 * ORAM leaf assignment) flows through Rng so experiments are reproducible
 * from a single seed.
 */

#include <cstdint>

namespace secemb {

/**
 * xoshiro256** generator with splitmix64 seeding.
 *
 * Small, fast, and statistically strong enough for simulation workloads.
 * Not cryptographically secure; the ORAM security argument in this repo is
 * about access-pattern structure, not about the RNG, and the paper's
 * software baseline (ZeroTrace) similarly treats randomness quality as
 * orthogonal.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t Next();

    /** Uniform integer in [0, bound) with rejection sampling. bound must
     * be > 0: 0 asserts in debug builds and throws std::invalid_argument
     * otherwise (an empty range has no uniform draw). */
    uint64_t NextBounded(uint64_t bound);

    /** Uniform double in [0, 1). */
    double NextDouble();

    /** Uniform float in [lo, hi). */
    float NextUniform(float lo, float hi);

    /** Standard normal via Box-Muller (caches the second deviate). */
    float NextGaussian();

    /** Re-seed in place, discarding cached Gaussian state. */
    void Seed(uint64_t seed);

  private:
    uint64_t state_[4];
    bool has_cached_gaussian_ = false;
    float cached_gaussian_ = 0.0f;
};

}  // namespace secemb
