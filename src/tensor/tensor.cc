#include "tensor/tensor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace secemb {

int64_t
ShapeNumel(const Shape& shape)
{
    int64_t n = 1;
    for (int64_t d : shape) n *= d;
    return shape.empty() ? 0 : n;
}

namespace {

/** numel with dimension validation; runs before storage is allocated. */
int64_t
CheckedNumel(const Shape& shape)
{
    for (int64_t d : shape) {
        if (d < 0) throw std::invalid_argument("negative tensor dimension");
    }
    return ShapeNumel(shape);
}

}  // namespace

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(CheckedNumel(shape_)), 0.0f)
{
}

Tensor
Tensor::Values(std::initializer_list<float> values)
{
    Tensor t;
    t.shape_ = {static_cast<int64_t>(values.size())};
    t.data_ = values;
    return t;
}

Tensor
Tensor::Zeros(Shape shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::Ones(Shape shape)
{
    return Full(std::move(shape), 1.0f);
}

Tensor
Tensor::Full(Shape shape, float value)
{
    Tensor t(std::move(shape));
    t.Fill(value);
    return t;
}

Tensor
Tensor::Randn(Shape shape, Rng& rng, float stddev)
{
    Tensor t(std::move(shape));
    for (float& v : t.data_) v = rng.NextGaussian() * stddev;
    return t;
}

Tensor
Tensor::Uniform(Shape shape, Rng& rng, float lo, float hi)
{
    Tensor t(std::move(shape));
    for (float& v : t.data_) v = rng.NextUniform(lo, hi);
    return t;
}

int64_t
Tensor::size(int64_t d) const
{
    assert(d >= 0 && d < dim());
    return shape_[static_cast<size_t>(d)];
}

int64_t
Tensor::Offset2(int64_t i, int64_t j) const
{
    assert(dim() == 2);
    assert(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1]);
    return i * shape_[1] + j;
}

int64_t
Tensor::Offset3(int64_t i, int64_t j, int64_t k) const
{
    assert(dim() == 3);
    assert(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] &&
           k >= 0 && k < shape_[2]);
    return (i * shape_[1] + j) * shape_[2] + k;
}

float&
Tensor::at(int64_t i)
{
    assert(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
}

float
Tensor::at(int64_t i) const
{
    assert(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
}

float&
Tensor::at(int64_t i, int64_t j)
{
    return data_[static_cast<size_t>(Offset2(i, j))];
}

float
Tensor::at(int64_t i, int64_t j) const
{
    return data_[static_cast<size_t>(Offset2(i, j))];
}

float&
Tensor::at(int64_t i, int64_t j, int64_t k)
{
    return data_[static_cast<size_t>(Offset3(i, j, k))];
}

float
Tensor::at(int64_t i, int64_t j, int64_t k) const
{
    return data_[static_cast<size_t>(Offset3(i, j, k))];
}

std::span<float>
Tensor::row(int64_t i)
{
    assert(dim() == 2 && i >= 0 && i < shape_[0]);
    return {data_.data() + i * shape_[1], static_cast<size_t>(shape_[1])};
}

std::span<const float>
Tensor::row(int64_t i) const
{
    assert(dim() == 2 && i >= 0 && i < shape_[0]);
    return {data_.data() + i * shape_[1], static_cast<size_t>(shape_[1])};
}

Tensor
Tensor::Reshape(Shape shape) const
{
    if (ShapeNumel(shape) != numel()) {
        throw std::invalid_argument("Reshape: numel mismatch");
    }
    Tensor t = *this;
    t.shape_ = std::move(shape);
    return t;
}

Tensor
Tensor::Transpose2D() const
{
    assert(dim() == 2);
    const int64_t r = shape_[0], c = shape_[1];
    Tensor t({c, r});
    for (int64_t i = 0; i < r; ++i) {
        for (int64_t j = 0; j < c; ++j) {
            t.at(j, i) = at(i, j);
        }
    }
    return t;
}

Tensor&
Tensor::Fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
    return *this;
}

Tensor&
Tensor::AddInPlace(const Tensor& other)
{
    assert(numel() == other.numel());
    for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
}

Tensor&
Tensor::SubInPlace(const Tensor& other)
{
    assert(numel() == other.numel());
    for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
}

Tensor&
Tensor::MulInPlace(const Tensor& other)
{
    assert(numel() == other.numel());
    for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
    return *this;
}

Tensor&
Tensor::ScaleInPlace(float s)
{
    for (float& v : data_) v *= s;
    return *this;
}

Tensor&
Tensor::AddScalarInPlace(float s)
{
    for (float& v : data_) v += s;
    return *this;
}

Tensor
Tensor::Add(const Tensor& other) const
{
    Tensor t = *this;
    return t.AddInPlace(other), t;
}

Tensor
Tensor::Sub(const Tensor& other) const
{
    Tensor t = *this;
    return t.SubInPlace(other), t;
}

Tensor
Tensor::Mul(const Tensor& other) const
{
    Tensor t = *this;
    return t.MulInPlace(other), t;
}

Tensor
Tensor::Scale(float s) const
{
    Tensor t = *this;
    return t.ScaleInPlace(s), t;
}

float
Tensor::Sum() const
{
    // Pairwise-ish accumulation in double for stability on long vectors.
    double acc = 0.0;
    for (float v : data_) acc += v;
    return static_cast<float>(acc);
}

float
Tensor::Mean() const
{
    return numel() == 0 ? 0.0f : Sum() / static_cast<float>(numel());
}

float
Tensor::Max() const
{
    assert(!data_.empty());
    return *std::max_element(data_.begin(), data_.end());
}

float
Tensor::Min() const
{
    assert(!data_.empty());
    return *std::min_element(data_.begin(), data_.end());
}

int64_t
Tensor::Argmax() const
{
    assert(!data_.empty());
    return std::distance(data_.begin(),
                         std::max_element(data_.begin(), data_.end()));
}

float
Tensor::SquaredNorm() const
{
    double acc = 0.0;
    for (float v : data_) acc += static_cast<double>(v) * v;
    return static_cast<float>(acc);
}

std::string
Tensor::ShapeString() const
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < shape_.size(); ++i) {
        if (i) os << ", ";
        os << shape_[i];
    }
    os << "]";
    return os.str();
}

bool
Tensor::AllClose(const Tensor& other, float tol) const
{
    if (shape_ != other.shape_) return false;
    for (size_t i = 0; i < data_.size(); ++i) {
        if (std::abs(data_[i] - other.data_[i]) > tol) return false;
    }
    return true;
}

}  // namespace secemb
