#pragma once

/**
 * @file
 * Blocked single-precision GEMM and matrix-vector helpers.
 *
 * This is the compute substrate under DHE's FC decoder, the DLRM MLPs, and
 * the transformer. Everything is branch-free with respect to data values:
 * the control flow depends only on shapes, which are public in the threat
 * model (Section III of the paper).
 */

#include <cstdint>

#include "tensor/tensor.h"

namespace secemb {

/**
 * C = A * B for row-major A (m x k), B (k x n), C (m x n).
 *
 * Uses an i-k-j loop order with register accumulation; optionally
 * parallelised over rows of A with nthreads.
 */
void Gemm(const Tensor& a, const Tensor& b, Tensor& c, int nthreads = 1);

/** C = A * B^T for A (m x k), B (n x k), C (m x n). */
void GemmBT(const Tensor& a, const Tensor& b_t, Tensor& c, int nthreads = 1);

/** C = A^T * B for A (k x m), B (k x n), C (m x n). */
void GemmAT(const Tensor& a_t, const Tensor& b, Tensor& c, int nthreads = 1);

/** Returning convenience wrapper around Gemm. */
Tensor MatMul(const Tensor& a, const Tensor& b, int nthreads = 1);

/**
 * y += x * W + bias broadcast, for x (m x k), w (k x n), bias (n).
 * The canonical FC-layer forward; bias may be empty to skip.
 */
void AffineForward(const Tensor& x, const Tensor& w, const Tensor& bias,
                   Tensor& y, int nthreads = 1);

}  // namespace secemb
