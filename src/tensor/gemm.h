#pragma once

/**
 * @file
 * Single-precision GEMM and matrix-vector helpers.
 *
 * This is the compute substrate under DHE's FC decoder, the DLRM MLPs, and
 * the transformer. Everything is branch-free with respect to data values:
 * the control flow depends only on shapes, which are public in the threat
 * model (Section III of the paper).
 *
 * All entry points dispatch to the packed SIMD kernel subsystem
 * (tensor/kernels): cache-blocked microkernels selected per the active
 * ISA tier (SECEMB_ISA), with B packed into 64-byte-aligned panels. The
 * *Naive reference loops are kept as the correctness/perf baseline for
 * tests and benchmarks. Weight-operand variants (AffineActForward,
 * GemmWeightBT) pack through the persistent weight cache so FC weights
 * are packed once and reused across batches; they take a kernels::Dtype
 * selecting the weight precision (f32 / bf16 / int8 quantize-on-pack),
 * defaulting to the process-wide kernels::ActiveDtype().
 */

#include <cstdint>

#include "tensor/kernels/kernels.h"
#include "tensor/tensor.h"

namespace secemb {

/**
 * C = A * B for row-major A (m x k), B (k x n), C (m x n).
 *
 * Packed-kernel path (transient B pack); optionally parallelised over
 * row tiles of C with nthreads.
 */
void Gemm(const Tensor& a, const Tensor& b, Tensor& c, int nthreads = 1);

/** C = A * B^T for A (m x k), B (n x k), C (m x n). */
void GemmBT(const Tensor& a, const Tensor& b_t, Tensor& c, int nthreads = 1);

/** C = A^T * B for A (k x m), B (k x n), C (m x n). */
void GemmAT(const Tensor& a_t, const Tensor& b, Tensor& c, int nthreads = 1);

/**
 * C = A * W^T with W packed via the persistent weight cache — the FC
 * backward data path (dx = g W^T), where W is a layer weight reused
 * across every step at unchanged content.
 */
void GemmWeightBT(const Tensor& a, const Tensor& w, Tensor& c,
                  int nthreads = 1,
                  kernels::Dtype dtype = kernels::ActiveDtype());

/** Returning convenience wrapper around Gemm. */
Tensor MatMul(const Tensor& a, const Tensor& b, int nthreads = 1);

/**
 * y = x * W + bias broadcast, for x (m x k), w (k x n), bias (n).
 * The canonical FC-layer forward; bias may be empty to skip. W is packed
 * through the persistent weight cache; bias is fused into the GEMM
 * epilogue (no separate pass).
 */
void AffineForward(const Tensor& x, const Tensor& w, const Tensor& bias,
                   Tensor& y, int nthreads = 1,
                   kernels::Dtype dtype = kernels::ActiveDtype());

/**
 * y = act(x * W + bias): AffineForward with the activation fused into
 * the same epilogue pass. When `preact` is non-null it receives
 * x * W + bias (same shape as y) for Backward, still in one pass.
 */
void AffineActForward(const Tensor& x, const Tensor& w, const Tensor& bias,
                      Tensor& y, int nthreads, kernels::Activation act,
                      Tensor* preact = nullptr,
                      kernels::Dtype dtype = kernels::ActiveDtype());

// ---------------------------------------------------------------------------
// Naive reference kernels (tests and benchmarks)
// ---------------------------------------------------------------------------

/** The pre-kernel scalar triple loop: i-k-j order, row-parallel. */
void GemmNaive(const Tensor& a, const Tensor& b, Tensor& c,
               int nthreads = 1);

/** Naive C = A * B^T. */
void GemmBTNaive(const Tensor& a, const Tensor& b_t, Tensor& c,
                 int nthreads = 1);

/** Naive C = A^T * B. */
void GemmATNaive(const Tensor& a_t, const Tensor& b, Tensor& c,
                 int nthreads = 1);

}  // namespace secemb
