#include "tensor/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/telemetry.h"

namespace secemb {

namespace {

/// Set for every thread (caller or pool worker) while it executes region
/// chunks; nested ParallelFor calls observe it and run inline.
thread_local bool tls_in_region = false;

/// Backstop against pathological nthreads requests; dynamic chunk claiming
/// means a region still completes when capped (the caller and whatever
/// workers exist drain the remaining chunks).
constexpr int kMaxPoolThreads = 256;

/// Schedule-fuzzing state (SetScheduleJitterForTest): participants spin a
/// deterministic pseudo-random number of iterations before each chunk
/// claim, perturbing claim interleavings without changing chunk bounds.
std::atomic<uint32_t> jitter_max_spin{0};
std::atomic<uint64_t> jitter_state{0};

/// Fault-injection hook (SetChunkFaultHookForTest): consulted before every
/// chunk body, on pool and inline paths alike.
std::atomic<ChunkFaultHook> chunk_fault_hook{nullptr};

void
JitterSpin()
{
    const uint32_t max_spin =
        jitter_max_spin.load(std::memory_order_relaxed);
    if (max_spin == 0) return;
    // splitmix64 step over a shared counter: deterministic sequence of
    // spin lengths, racy interleaving of who consumes which — exactly the
    // schedule variance the trace stress tests want.
    uint64_t z = jitter_state.fetch_add(0x9e3779b97f4a7c15ULL,
                                        std::memory_order_relaxed);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    const uint32_t spins = static_cast<uint32_t>(z >> 33) % max_spin;
    for (volatile uint32_t i = 0; i < spins; ++i) {
    }
}

/**
 * Persistent worker pool. Workers are spawned lazily (only as many as the
 * largest nthreads seen so far, minus the caller), parked on a condition
 * variable between regions, and woken by a generation bump per region.
 *
 * One region runs at a time (region_mu_): per-call thread caps stay honest
 * and the region descriptor can live in the pool rather than being
 * allocated per call.
 */
class ThreadPool
{
  public:
    static ThreadPool&
    Instance()
    {
        static ThreadPool pool;
        return pool;
    }

    void
    Run(int64_t n, int64_t workers,
        const std::function<void(int64_t, int64_t)>& fn)
    {
        // Serialise regions; held until every joined helper has quiesced,
        // so the next region can safely reuse the task descriptor.
        std::unique_lock<std::mutex> region_lock(region_mu_);

        const int helpers_wanted = static_cast<int>(workers) - 1;
        EnsureWorkers(helpers_wanted);

        {
            std::lock_guard<std::mutex> lk(mu_);
            task_.fn = &fn;
            task_.n = n;
            task_.chunk = (n + workers - 1) / workers;
            task_.nchunks = (n + task_.chunk - 1) / task_.chunk;
            task_.next.store(0, std::memory_order_relaxed);
            task_.failed.store(false, std::memory_order_relaxed);
            task_.error = nullptr;
            task_.helpers_wanted =
                std::min<int>(helpers_wanted,
                              static_cast<int>(threads_.size()));
            task_.helpers_joined = 0;
            task_.helpers_done = 0;
            task_.closed = false;
#if SECEMB_TELEMETRY_ENABLED
            task_.dispatch_ns = telemetry::NowNs();
#endif
            ++generation_;
            ++regions_;
        }
        TELEMETRY_COUNT("pool.regions", 1);
        TELEMETRY_COUNT("pool.chunks", task_.nchunks);
        TELEMETRY_GAUGE_SET("pool.active_workers", workers);
        cv_.notify_all();

        // The caller is participant #0: it claims chunks like any worker,
        // so a region completes even if every wake is slow or the pool is
        // capped below the request.
        tls_in_region = true;
        RunChunks();
        tls_in_region = false;

        std::exception_ptr error;
        {
            std::unique_lock<std::mutex> lk(mu_);
            task_.closed = true;  // no further helpers may join
            done_cv_.wait(lk, [this] {
                return task_.helpers_done == task_.helpers_joined;
            });
            error = task_.error;
            task_.fn = nullptr;
        }
        TELEMETRY_GAUGE_SET("pool.active_workers", 0);
        if (error) std::rethrow_exception(error);
    }

    ThreadPoolStats
    Stats()
    {
        std::lock_guard<std::mutex> lk(mu_);
        ThreadPoolStats s;
        s.threads = static_cast<int>(threads_.size());
        s.regions = regions_;
        s.helper_joins = helper_joins_;
        return s;
    }

  private:
    /** One parallel region; reused across regions (one at a time). */
    struct Task
    {
        const std::function<void(int64_t, int64_t)>* fn = nullptr;
        int64_t n = 0;
        int64_t chunk = 1;
        int64_t nchunks = 0;
        std::atomic<int64_t> next{0};   ///< next chunk index to claim
        std::atomic<bool> failed{false};  ///< stop claiming after a throw
        std::exception_ptr error;       ///< first exception (guarded by mu_)
        int helpers_wanted = 0;         ///< max pool helpers for this region
        int helpers_joined = 0;         ///< guarded by mu_
        int helpers_done = 0;           ///< guarded by mu_
        bool closed = false;            ///< joins refused once caller drains
        uint64_t dispatch_ns = 0;       ///< wake-latency reference point
    };

    ThreadPool() = default;

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            shutdown_ = true;
        }
        cv_.notify_all();
        for (auto& t : threads_) t.join();
    }

    void
    EnsureWorkers(int wanted)
    {
        std::lock_guard<std::mutex> lk(mu_);
        const int target = std::min(wanted, kMaxPoolThreads);
        while (static_cast<int>(threads_.size()) < target) {
            try {
                threads_.emplace_back([this] { WorkerLoop(); });
            } catch (...) {
                // Resource exhaustion: run with the workers we have. The
                // already-spawned threads stay owned and joinable, and
                // chunk claiming completes any region with fewer helpers.
                break;
            }
        }
        TELEMETRY_GAUGE_SET("pool.threads", threads_.size());
    }

    /**
     * Claim and execute chunks until none remain (or a participant
     * failed). Chunk ranges are a pure function of the chunk index, so the
     * work partition is deterministic however claims interleave.
     */
    void
    RunChunks()
    {
        for (;;) {
            if (task_.failed.load(std::memory_order_relaxed)) break;
            JitterSpin();
            const int64_t c =
                task_.next.fetch_add(1, std::memory_order_relaxed);
            if (c >= task_.nchunks) break;
            const int64_t begin = c * task_.chunk;
            const int64_t end = std::min(task_.n, begin + task_.chunk);
            try {
                if (ChunkFaultHook hook = chunk_fault_hook.load(
                        std::memory_order_relaxed)) {
                    hook(begin, end);
                }
                (*task_.fn)(begin, end);
            } catch (...) {
                std::lock_guard<std::mutex> lk(mu_);
                if (!task_.error) task_.error = std::current_exception();
                task_.failed.store(true, std::memory_order_relaxed);
            }
        }
    }

    void
    WorkerLoop()
    {
        uint64_t seen_gen = 0;
        for (;;) {
            bool joined = false;
            {
                std::unique_lock<std::mutex> lk(mu_);
                cv_.wait(lk, [&] {
                    return shutdown_ || generation_ != seen_gen;
                });
                if (shutdown_) return;
                seen_gen = generation_;
                if (!task_.closed &&
                    task_.helpers_joined < task_.helpers_wanted) {
                    ++task_.helpers_joined;
                    ++helper_joins_;
                    joined = true;
                }
            }
            if (!joined) continue;

#if SECEMB_TELEMETRY_ENABLED
            // Wake latency: dispatch (generation bump) to this worker
            // starting on the region. Public timing of public control
            // flow — never secret-dependent.
            TELEMETRY_HIST("pool.wake.ns",
                           telemetry::NowNs() - task_.dispatch_ns);
#endif
            tls_in_region = true;
            RunChunks();
            tls_in_region = false;

            {
                std::lock_guard<std::mutex> lk(mu_);
                ++task_.helpers_done;
            }
            done_cv_.notify_all();
        }
    }

    std::mutex region_mu_;  ///< one region at a time

    std::mutex mu_;  ///< guards everything below plus Task bookkeeping
    std::condition_variable cv_;       ///< workers park here
    std::condition_variable done_cv_;  ///< caller awaits helper quiesce
    std::vector<std::thread> threads_;
    Task task_;
    uint64_t generation_ = 0;
    uint64_t regions_ = 0;
    uint64_t helper_joins_ = 0;
    bool shutdown_ = false;
};

}  // namespace

void
ParallelFor(int64_t n, int nthreads,
            const std::function<void(int64_t, int64_t)>& fn)
{
    if (n <= 0) return;
    const int64_t workers =
        std::max<int64_t>(1, std::min<int64_t>(nthreads, n));
    if (workers == 1 || tls_in_region) {
        // Inline path: single-threaded request, tiny n, or a nested call
        // from inside another region (running it on the pool would
        // deadlock on region serialisation).
        if (ChunkFaultHook hook =
                chunk_fault_hook.load(std::memory_order_relaxed)) {
            hook(0, n);
        }
        fn(0, n);
        return;
    }
    ThreadPool::Instance().Run(n, workers, fn);
}

int
DefaultNumThreads()
{
    static const int cached = [] {
        if (const char* env = std::getenv("SECEMB_THREADS")) {
            const int v = std::atoi(env);
            if (v > 0) return v;
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? static_cast<int>(hw) : 1;
    }();
    return cached;
}

bool
InParallelRegion()
{
    return tls_in_region;
}

void
SetScheduleJitterForTest(uint32_t max_spin, uint64_t seed)
{
    jitter_state.store(seed, std::memory_order_relaxed);
    jitter_max_spin.store(max_spin, std::memory_order_relaxed);
}

void
SetChunkFaultHookForTest(ChunkFaultHook hook)
{
    chunk_fault_hook.store(hook, std::memory_order_relaxed);
}

ThreadPoolStats
GetThreadPoolStats()
{
    return ThreadPool::Instance().Stats();
}

}  // namespace secemb
