#include "tensor/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace secemb {

void
ParallelFor(int64_t n, int nthreads,
            const std::function<void(int64_t, int64_t)>& fn)
{
    if (n <= 0) return;
    const int64_t workers =
        std::max<int64_t>(1, std::min<int64_t>(nthreads, n));
    if (workers == 1) {
        fn(0, n);
        return;
    }
    const int64_t chunk = (n + workers - 1) / workers;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int64_t w = 0; w < workers; ++w) {
        const int64_t begin = w * chunk;
        const int64_t end = std::min(n, begin + chunk);
        if (begin >= end) break;
        threads.emplace_back([&fn, begin, end] { fn(begin, end); });
    }
    for (auto& t : threads) t.join();
}

}  // namespace secemb
