#pragma once

/**
 * @file
 * Minimal dense float tensor used throughout the secemb library.
 *
 * Row-major, owning, up to 4 dimensions. This deliberately small surface
 * replaces the PyTorch dependency of the original artifact: the paper's
 * evaluation only needs dense GEMM, elementwise math, and gather/scatter.
 */

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "tensor/aligned.h"
#include "tensor/rng.h"

namespace secemb {

/** Shape of a tensor; at most 4 dimensions in this library. */
using Shape = std::vector<int64_t>;

/**
 * Dense row-major float tensor with value semantics.
 *
 * Copying copies the buffer; moves are cheap. All indexing is checked in
 * debug builds via assert and unchecked in release builds. Payloads are
 * allocated 64-byte aligned (see tensor/aligned.h): the SIMD GEMM and
 * scan kernels rely on data() being cache-line/vector aligned.
 */
class Tensor
{
  public:
    /** Empty tensor (numel() == 0, dim() == 0). */
    Tensor() = default;

    /**
     * Zero-initialised tensor of the given shape.
     *
     * Deliberately the only braced-constructible form: a value-list
     * constructor would make Tensor({rows, cols}) silently build a 1-D
     * value tensor (the std::vector gotcha); use Values() for literals.
     */
    explicit Tensor(Shape shape);

    /** 1-D tensor from explicit values, e.g. Tensor::Values({1, 2, 3}). */
    static Tensor Values(std::initializer_list<float> values);

    // -- Factories ---------------------------------------------------------

    static Tensor Zeros(Shape shape);
    static Tensor Ones(Shape shape);
    static Tensor Full(Shape shape, float value);
    /** I.i.d. N(0, stddev^2). */
    static Tensor Randn(Shape shape, Rng& rng, float stddev = 1.0f);
    /** I.i.d. U[lo, hi). */
    static Tensor Uniform(Shape shape, Rng& rng, float lo, float hi);

    // -- Introspection -----------------------------------------------------

    const Shape& shape() const { return shape_; }
    int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
    int64_t size(int64_t d) const;
    int64_t numel() const { return static_cast<int64_t>(data_.size()); }
    bool empty() const { return data_.empty(); }

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }
    std::span<float> flat() { return data_; }
    std::span<const float> flat() const { return data_; }

    // -- Element access ----------------------------------------------------

    float& at(int64_t i);
    float at(int64_t i) const;
    float& at(int64_t i, int64_t j);
    float at(int64_t i, int64_t j) const;
    float& at(int64_t i, int64_t j, int64_t k);
    float at(int64_t i, int64_t j, int64_t k) const;

    /** Row view of a 2-D tensor. */
    std::span<float> row(int64_t i);
    std::span<const float> row(int64_t i) const;

    // -- Shape manipulation --------------------------------------------------

    /** Reshape preserving numel; returns a copy with the new shape. */
    Tensor Reshape(Shape shape) const;
    /** Transpose of a 2-D tensor. */
    Tensor Transpose2D() const;

    // -- Elementwise (in place) ----------------------------------------------

    Tensor& Fill(float value);
    Tensor& AddInPlace(const Tensor& other);
    Tensor& SubInPlace(const Tensor& other);
    Tensor& MulInPlace(const Tensor& other);
    Tensor& ScaleInPlace(float s);
    Tensor& AddScalarInPlace(float s);

    // -- Elementwise (returning) ---------------------------------------------

    Tensor Add(const Tensor& other) const;
    Tensor Sub(const Tensor& other) const;
    Tensor Mul(const Tensor& other) const;
    Tensor Scale(float s) const;

    // -- Reductions ----------------------------------------------------------

    float Sum() const;
    float Mean() const;
    float Max() const;
    float Min() const;
    /** Index of the maximum element (first on ties). */
    int64_t Argmax() const;
    /** Squared L2 norm. */
    float SquaredNorm() const;

    /** Memory used by the payload in bytes. */
    int64_t SizeBytes() const { return numel() * int64_t{sizeof(float)}; }

    /** Human-readable shape, e.g. "[2, 3]". */
    std::string ShapeString() const;

    /** True if shapes equal and all elements within tol. */
    bool AllClose(const Tensor& other, float tol = 1e-5f) const;

  private:
    Shape shape_;
    AlignedFloatVector data_;

    int64_t Offset2(int64_t i, int64_t j) const;
    int64_t Offset3(int64_t i, int64_t j, int64_t k) const;
};

/** numel for a shape. */
int64_t ShapeNumel(const Shape& shape);

}  // namespace secemb
