#include "dhe/hashing.h"

#include <cassert>
#include <cmath>

#include "dhe/hash_kernels.h"
#include "tensor/kernels/kernels.h"
#include "tensor/parallel.h"

namespace secemb::dhe {

namespace detail {

void
HashRowScalar(const HashRowArgs& args)
{
    constexpr uint64_t kP = (uint64_t{1} << 31) - 1;
    const uint64_t x = args.xr;
    const uint64_t m = args.m;
    const uint64_t mu = args.mu;
    for (int64_t j = 0; j < args.k; ++j) {
        uint64_t t = static_cast<uint64_t>(args.a[j]) * x + args.b[j];
        t = (t >> 31) + (t & kP);
        t = (t >> 31) + (t & kP);
        if (t >= kP) t -= kP;
        if (!args.mod_identity) {
            const uint64_t q = (t * mu) >> 32;
            t -= q * m;
            if (t >= m) t -= m;
        }
        // Single-rounding fma on every tier keeps the f32 outputs
        // bit-identical to the SIMD kernels' vfmadd.
        args.row[j] =
            std::fmaf(static_cast<float>(t), args.scale, -1.0f);
    }
}

namespace {

/** Hash-row kernel for the active ISA tier (resolved per Encode call so
 *  SECEMB_ISA / SetIsaForTest changes take effect immediately). */
HashRowFn
ActiveHashRowFn()
{
    switch (kernels::ActiveIsa()) {
#if defined(SECEMB_DHE_AVX512)
      case kernels::Isa::kAvx512: return &HashRowAvx512;
#endif
#if defined(SECEMB_DHE_AVX2)
      case kernels::Isa::kAvx2: return &HashRowAvx2;
#endif
      default: return &HashRowScalar;
    }
}

}  // namespace

}  // namespace detail

HashEncoder::HashEncoder(int64_t k, int64_t m, Rng& rng) : k_(k), m_(m)
{
    assert(k > 0 && m > 1);
    a_.resize(static_cast<size_t>(k));
    b_.resize(static_cast<size_t>(k));
    a32_.resize(static_cast<size_t>(k));
    b32_.resize(static_cast<size_t>(k));
    for (int64_t i = 0; i < k; ++i) {
        a_[static_cast<size_t>(i)] = static_cast<int64_t>(
            1 + rng.NextBounded(static_cast<uint64_t>(kPrime - 1)));
        b_[static_cast<size_t>(i)] = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(kPrime)));
        a32_[static_cast<size_t>(i)] =
            static_cast<uint32_t>(a_[static_cast<size_t>(i)]);
        b32_[static_cast<size_t>(i)] =
            static_cast<uint32_t>(b_[static_cast<size_t>(i)]);
    }
    // ((a x + b) mod p) mod m: when m > p the hash value is already
    // below m and the outer mod is the identity; otherwise m fits u32
    // and a 32-bit Barrett constant makes it division-free.
    mod_identity_ = m_ > kPrime;
    if (!mod_identity_) {
        barrett_mu_ = static_cast<uint32_t>(
            (uint64_t{1} << 32) / static_cast<uint64_t>(m_));
    }
}

void
HashEncoder::Encode(std::span<const int64_t> ids, Tensor& out,
                    int nthreads) const
{
    const int64_t n = static_cast<int64_t>(ids.size());
    assert(out.dim() == 2 && out.size(0) == n && out.size(1) == k_);
    const float scale = 2.0f / static_cast<float>(m_ - 1);
    const detail::HashRowFn row_fn = detail::ActiveHashRowFn();
    float* out_p = out.data();
    ParallelFor(n, nthreads, [&](int64_t row_begin, int64_t row_end) {
        detail::HashRowArgs args;
        args.a = a32_.data();
        args.b = b32_.data();
        args.k = k_;
        args.m = static_cast<uint32_t>(mod_identity_ ? 0 : m_);
        args.mu = barrett_mu_;
        args.mod_identity = mod_identity_;
        args.scale = scale;
        for (int64_t i = row_begin; i < row_end; ++i) {
            // Reduce the full-width id once; exact because
            // (a x + b) mod p == (a (x mod p) + b) mod p.
            args.xr = static_cast<uint32_t>(
                static_cast<uint64_t>(ids[static_cast<size_t>(i)]) %
                static_cast<uint64_t>(kPrime));
            args.row = out_p + i * k_;
            row_fn(args);
        }
    });
}

Tensor
HashEncoder::Encode(std::span<const int64_t> ids, int nthreads) const
{
    Tensor out({static_cast<int64_t>(ids.size()), k_});
    Encode(ids, out, nthreads);
    return out;
}

void
HashEncoder::EncodeReference(std::span<const int64_t> ids,
                             Tensor& out) const
{
    const int64_t n = static_cast<int64_t>(ids.size());
    assert(out.dim() == 2 && out.size(0) == n && out.size(1) == k_);
    const float scale = 2.0f / static_cast<float>(m_ - 1);
    for (int64_t i = 0; i < n; ++i) {
        // 128-bit intermediate avoids overflow of a*x for any int64 id
        // (two's-complement bit pattern, see the header's id-domain
        // contract).
        const unsigned __int128 x = static_cast<unsigned __int128>(
            static_cast<uint64_t>(ids[static_cast<size_t>(i)]));
        float* row = out.data() + i * k_;
        for (int64_t j = 0; j < k_; ++j) {
            const unsigned __int128 ax =
                static_cast<unsigned __int128>(
                    static_cast<uint64_t>(a_[static_cast<size_t>(j)])) *
                    x +
                static_cast<uint64_t>(b_[static_cast<size_t>(j)]);
            const int64_t y = static_cast<int64_t>(
                ax % static_cast<uint64_t>(kPrime)) % m_;
            row[j] =
                std::fmaf(static_cast<float>(y), scale, -1.0f);
        }
    }
}

}  // namespace secemb::dhe
