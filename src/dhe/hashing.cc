#include "dhe/hashing.h"

#include <cassert>

namespace secemb::dhe {

HashEncoder::HashEncoder(int64_t k, int64_t m, Rng& rng) : k_(k), m_(m)
{
    assert(k > 0 && m > 1);
    a_.resize(static_cast<size_t>(k));
    b_.resize(static_cast<size_t>(k));
    for (int64_t i = 0; i < k; ++i) {
        a_[static_cast<size_t>(i)] = static_cast<int64_t>(
            1 + rng.NextBounded(static_cast<uint64_t>(kPrime - 1)));
        b_[static_cast<size_t>(i)] = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(kPrime)));
    }
}

void
HashEncoder::Encode(std::span<const int64_t> ids, Tensor& out) const
{
    const int64_t n = static_cast<int64_t>(ids.size());
    assert(out.dim() == 2 && out.size(0) == n && out.size(1) == k_);
    const float scale = 2.0f / static_cast<float>(m_ - 1);
    for (int64_t i = 0; i < n; ++i) {
        // 128-bit intermediate avoids overflow of a*x for ids up to 2^63.
        const unsigned __int128 x = static_cast<unsigned __int128>(
            static_cast<uint64_t>(ids[static_cast<size_t>(i)]));
        float* row = out.data() + i * k_;
        for (int64_t j = 0; j < k_; ++j) {
            const unsigned __int128 ax =
                static_cast<unsigned __int128>(
                    static_cast<uint64_t>(a_[static_cast<size_t>(j)])) *
                    x +
                static_cast<uint64_t>(b_[static_cast<size_t>(j)]);
            const int64_t y = static_cast<int64_t>(
                ax % static_cast<uint64_t>(kPrime)) % m_;
            row[j] = static_cast<float>(y) * scale - 1.0f;
        }
    }
}

Tensor
HashEncoder::Encode(std::span<const int64_t> ids) const
{
    Tensor out({static_cast<int64_t>(ids.size()), k_});
    Encode(ids, out);
    return out;
}

}  // namespace secemb::dhe
