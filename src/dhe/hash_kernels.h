#pragma once

/**
 * @file
 * Internal SIMD kernels for the DHE universal multi-hash (Algorithm 1
 * step 1+2). One call encodes one id across all k hash lanes:
 *
 *     y_j = ((a_j * x + b_j) mod p) mod m,    row[j] = fma(y_j, s, -1)
 *
 * with p = 2^31 - 1 (Mersenne). The id is pre-reduced once per row,
 * x_r = uint64(id) mod p, which is exact because
 * (a x + b) mod p == (a (x mod p) + b) mod p; after that every
 * intermediate fits in 64 bits:
 *
 *   - a_j * x_r + b_j <= (p-1)^2 + (p-1) < 2^62
 *   - mod p by Mersenne folding: t = (t >> 31) + (t & p), twice
 *     (first fold brings t under 2^32, second under p + 2), then one
 *     conditional subtract
 *   - mod m by 32-bit Barrett: with mu = floor(2^32 / m) the estimate
 *     q = (y * mu) >> 32 is floor(y/m) or one less, so the remainder
 *     needs at most one conditional subtract. When m > p the outer
 *     mod is the identity (y < p < m) and the step is skipped.
 *
 * Every tier produces bit-identical integers, and the final transform
 * is a correctly-rounded fused multiply-add on every tier (std::fmaf /
 * vfmadd), so the f32 outputs are bit-identical too — pinned against
 * HashEncoder::EncodeReference by tests.
 *
 * All arithmetic is data-oblivious: lane values never steer control
 * flow or addresses (the identity-vs-Barrett branch depends only on
 * the public bucket count m).
 */

#include <cstdint>

namespace secemb::dhe::detail {

/** One row's worth of multi-hash work (k lanes for a single id). */
struct HashRowArgs
{
    const uint32_t* a;  ///< k multipliers, in [1, p-1]
    const uint32_t* b;  ///< k offsets, in [0, p-1]
    int64_t k;
    uint32_t xr;        ///< uint64(id) mod p
    uint32_t m;         ///< bucket count (valid when !mod_identity)
    uint32_t mu;        ///< floor(2^32 / m) (valid when !mod_identity)
    bool mod_identity;  ///< m > p: outer mod m is a no-op
    float scale;        ///< 2 / (m - 1)
    float* row;         ///< k outputs in [-1, 1]
};

using HashRowFn = void (*)(const HashRowArgs&);

/** Portable u64 tier (baseline target; also the SIMD kernels' tail). */
void HashRowScalar(const HashRowArgs& args);

#if defined(SECEMB_DHE_AVX2)
void HashRowAvx2(const HashRowArgs& args);
#endif
#if defined(SECEMB_DHE_AVX512)
void HashRowAvx512(const HashRowArgs& args);
#endif

}  // namespace secemb::dhe::detail
