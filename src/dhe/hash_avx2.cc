/**
 * @file
 * AVX2 multi-hash kernel: 8 hash lanes per iteration as two 4x64-bit
 * vectors. Compiled with -mavx2 -mfma on this TU only; hashing.cc
 * dispatches to it only when kernels::ActiveIsa() resolves at least
 * the AVX2 tier.
 */

#include <immintrin.h>

#include "dhe/hash_kernels.h"

namespace secemb::dhe::detail {

namespace {

constexpr uint64_t kPrime = (uint64_t{1} << 31) - 1;

/** (a * xr + b) mod p for 4 u64 lanes (inputs < 2^31). */
inline __m256i
MersenneMod(__m256i a, __m256i b, __m256i x, __m256i p)
{
    __m256i t = _mm256_add_epi64(_mm256_mul_epu32(a, x), b);
    t = _mm256_add_epi64(_mm256_srli_epi64(t, 31),
                         _mm256_and_si256(t, p));
    t = _mm256_add_epi64(_mm256_srli_epi64(t, 31),
                         _mm256_and_si256(t, p));
    // t <= p + 1 here; lanes are far below 2^63, so the signed compare
    // is exact.
    const __m256i ge = _mm256_cmpgt_epi64(t, _mm256_sub_epi64(
                                                 p, _mm256_set1_epi64x(1)));
    return _mm256_sub_epi64(t, _mm256_and_si256(ge, p));
}

/** y mod m for 4 u64 lanes via 32-bit Barrett (y < 2^31, m < 2^31). */
inline __m256i
BarrettMod(__m256i y, __m256i m, __m256i mu)
{
    const __m256i q = _mm256_srli_epi64(_mm256_mul_epu32(y, mu), 32);
    __m256i rem = _mm256_sub_epi64(y, _mm256_mul_epu32(q, m));
    const __m256i ge = _mm256_cmpgt_epi64(
        rem, _mm256_sub_epi64(m, _mm256_set1_epi64x(1)));
    return _mm256_sub_epi64(rem, _mm256_and_si256(ge, m));
}

}  // namespace

void
HashRowAvx2(const HashRowArgs& args)
{
    const __m256i p = _mm256_set1_epi64x(static_cast<int64_t>(kPrime));
    const __m256i x = _mm256_set1_epi64x(static_cast<int64_t>(args.xr));
    const __m256i m = _mm256_set1_epi64x(static_cast<int64_t>(args.m));
    const __m256i mu = _mm256_set1_epi64x(static_cast<int64_t>(args.mu));
    const __m256 vscale = _mm256_set1_ps(args.scale);
    const __m256 vneg1 = _mm256_set1_ps(-1.0f);
    // Low dwords of the 4 u64 lanes of each half, in order.
    const __m256i pack_idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);

    int64_t j = 0;
    for (; j + 8 <= args.k; j += 8) {
        const __m256i a0 = _mm256_cvtepu32_epi64(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(args.a + j)));
        const __m256i a1 = _mm256_cvtepu32_epi64(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(args.a + j + 4)));
        const __m256i b0 = _mm256_cvtepu32_epi64(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(args.b + j)));
        const __m256i b1 = _mm256_cvtepu32_epi64(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(args.b + j + 4)));
        __m256i y0 = MersenneMod(a0, b0, x, p);
        __m256i y1 = MersenneMod(a1, b1, x, p);
        if (!args.mod_identity) {
            y0 = BarrettMod(y0, m, mu);
            y1 = BarrettMod(y1, m, mu);
        }
        const __m256i lo0 = _mm256_permutevar8x32_epi32(y0, pack_idx);
        const __m256i lo1 = _mm256_permutevar8x32_epi32(y1, pack_idx);
        const __m256i packed = _mm256_inserti128_si256(
            lo0, _mm256_castsi256_si128(lo1), 1);
        const __m256 f = _mm256_cvtepi32_ps(packed);
        _mm256_storeu_ps(args.row + j,
                         _mm256_fmadd_ps(f, vscale, vneg1));
    }
    if (j < args.k) {
        HashRowArgs tail = args;
        tail.a += j;
        tail.b += j;
        tail.k = args.k - j;
        tail.row += j;
        HashRowScalar(tail);
    }
}

}  // namespace secemb::dhe::detail
