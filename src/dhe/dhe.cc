#include "dhe/dhe.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "perfmon/perfmon.h"
#include "telemetry/telemetry.h"

namespace secemb::dhe {

DheConfig
DheConfig::Uniform(int64_t out_dim)
{
    DheConfig c;
    c.k = 1024;
    c.fc_hidden = {512, 256};
    c.out_dim = out_dim;
    return c;
}

DheConfig
DheConfig::Varied(int64_t table_size, int64_t out_dim)
{
    DheConfig c = Uniform(out_dim);
    if (table_size >= 10000000) return c;
    // 0.125x per order of magnitude below 1e7, interpolated
    // geometrically. The floors (k = 128, FC width = 64) keep the decoder
    // expressive enough to match table accuracy — the paper sizes Varied
    // DHE "for no loss", and its Fig. 4 Varied latency corresponds to a
    // decoder of roughly this size at small tables.
    const double decades =
        std::log10(1e7 / static_cast<double>(std::max<int64_t>(
                             1, table_size)));
    const double scale = std::pow(0.125, decades);
    auto scaled = [&](int64_t v, int64_t floor_v) {
        return std::max<int64_t>(
            floor_v,
            static_cast<int64_t>(static_cast<double>(v) * scale));
    };
    c.k = scaled(c.k, 128);
    for (auto& h : c.fc_hidden) h = scaled(h, 64);
    return c;
}

DheConfig
DheConfig::ForLlm(int64_t emb_dim)
{
    DheConfig c;
    c.k = 2 * emb_dim;
    // 4 FC layers total: 3 hidden of width 2*dim plus the output layer.
    c.fc_hidden = {2 * emb_dim, 2 * emb_dim, 2 * emb_dim};
    c.out_dim = emb_dim;
    return c;
}

int64_t
DheConfig::DecoderParams() const
{
    int64_t params = 0;
    int64_t prev = k;
    for (int64_t h : fc_hidden) {
        params += prev * h + h;
        prev = h;
    }
    params += prev * out_dim + out_dim;
    return params;
}

DheEmbedding::DheEmbedding(const DheConfig& config, Rng& rng, int nthreads)
    : config_(config), encoder_(config.k, config.hash_buckets, rng),
      nthreads_(nthreads)
{
    std::vector<int64_t> sizes;
    sizes.push_back(config.k);
    for (int64_t h : config.fc_hidden) sizes.push_back(h);
    sizes.push_back(config.out_dim);
    decoder_ = nn::MakeMlp(sizes, rng, /*final_sigmoid=*/false, nthreads);
}

Tensor
DheEmbedding::Forward(std::span<const int64_t> ids)
{
    TELEMETRY_SCOPED_COUNTERS("dhe.forward");
    TELEMETRY_SCOPED_LATENCY("dhe.forward.ns");
    TELEMETRY_COUNT("dhe.forward.calls", 1);
    TELEMETRY_COUNT("dhe.forward.ids", ids.size());
    const Tensor encoded = encoder_.Encode(ids, nthreads_);
    return decoder_->Forward(encoded);
}

void
DheEmbedding::Backward(const Tensor& grad_out)
{
    decoder_->Backward(grad_out);
}

int64_t
DheEmbedding::ParamBytes()
{
    return decoder_->ParamBytes() + encoder_.ParamBytes();
}

Tensor
DheEmbedding::ToTable(int64_t table_size)
{
    std::vector<int64_t> ids(static_cast<size_t>(table_size));
    for (int64_t i = 0; i < table_size; ++i) {
        ids[static_cast<size_t>(i)] = i;
    }
    // Generate in chunks so huge tables do not allocate a huge activation.
    Tensor table({table_size, config_.out_dim});
    const int64_t chunk = 4096;
    for (int64_t begin = 0; begin < table_size; begin += chunk) {
        const int64_t end = std::min(table_size, begin + chunk);
        const Tensor part =
            Forward({ids.data() + begin, static_cast<size_t>(end - begin)});
        std::copy(part.data(), part.data() + part.numel(),
                  table.data() + begin * config_.out_dim);
    }
    return table;
}

void
DheEmbedding::set_nthreads(int n)
{
    nthreads_ = n;
    for (size_t i = 0; i < decoder_->size(); ++i) {
        if (auto* lin = dynamic_cast<nn::Linear*>(&decoder_->at(i))) {
            lin->set_nthreads(n);
        }
    }
}

void
DheEmbedding::set_dtype(kernels::Dtype dtype)
{
    for (size_t i = 0; i < decoder_->size(); ++i) {
        if (auto* lin = dynamic_cast<nn::Linear*>(&decoder_->at(i))) {
            lin->set_dtype(dtype);
        }
    }
}

}  // namespace secemb::dhe
