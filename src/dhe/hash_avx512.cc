/**
 * @file
 * AVX-512F multi-hash kernel: 16 hash lanes per iteration as two
 * 8x64-bit vectors, with masked conditional subtracts replacing the
 * AVX2 compare/and/sub sequence. Compiled with -mavx512f on this TU
 * only; hashing.cc dispatches to it only when kernels::ActiveIsa()
 * resolves the AVX-512 tier.
 */

#include <immintrin.h>

#include "dhe/hash_kernels.h"

namespace secemb::dhe::detail {

namespace {

constexpr uint64_t kPrime = (uint64_t{1} << 31) - 1;

/** (a * xr + b) mod p for 8 u64 lanes (inputs < 2^31). */
inline __m512i
MersenneMod(__m512i a, __m512i b, __m512i x, __m512i p)
{
    __m512i t = _mm512_add_epi64(_mm512_mul_epu32(a, x), b);
    t = _mm512_add_epi64(_mm512_srli_epi64(t, 31),
                         _mm512_and_si512(t, p));
    t = _mm512_add_epi64(_mm512_srli_epi64(t, 31),
                         _mm512_and_si512(t, p));
    const __mmask8 ge = _mm512_cmpge_epu64_mask(t, p);
    return _mm512_mask_sub_epi64(t, ge, t, p);
}

/** y mod m for 8 u64 lanes via 32-bit Barrett (y < 2^31, m < 2^31). */
inline __m512i
BarrettMod(__m512i y, __m512i m, __m512i mu)
{
    const __m512i q = _mm512_srli_epi64(_mm512_mul_epu32(y, mu), 32);
    const __m512i rem = _mm512_sub_epi64(y, _mm512_mul_epu32(q, m));
    const __mmask8 ge = _mm512_cmpge_epu64_mask(rem, m);
    return _mm512_mask_sub_epi64(rem, ge, rem, m);
}

}  // namespace

void
HashRowAvx512(const HashRowArgs& args)
{
    const __m512i p = _mm512_set1_epi64(static_cast<int64_t>(kPrime));
    const __m512i x = _mm512_set1_epi64(static_cast<int64_t>(args.xr));
    const __m512i m = _mm512_set1_epi64(static_cast<int64_t>(args.m));
    const __m512i mu = _mm512_set1_epi64(static_cast<int64_t>(args.mu));
    const __m512 vscale = _mm512_set1_ps(args.scale);
    const __m512 vneg1 = _mm512_set1_ps(-1.0f);

    int64_t j = 0;
    for (; j + 16 <= args.k; j += 16) {
        const __m512i a0 = _mm512_cvtepu32_epi64(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(args.a + j)));
        const __m512i a1 = _mm512_cvtepu32_epi64(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(args.a + j + 8)));
        const __m512i b0 = _mm512_cvtepu32_epi64(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(args.b + j)));
        const __m512i b1 = _mm512_cvtepu32_epi64(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(args.b + j + 8)));
        __m512i y0 = MersenneMod(a0, b0, x, p);
        __m512i y1 = MersenneMod(a1, b1, x, p);
        if (!args.mod_identity) {
            y0 = BarrettMod(y0, m, mu);
            y1 = BarrettMod(y1, m, mu);
        }
        const __m512i packed = _mm512_inserti64x4(
            _mm512_castsi256_si512(_mm512_cvtepi64_epi32(y0)),
            _mm512_cvtepi64_epi32(y1), 1);
        const __m512 f = _mm512_cvtepi32_ps(packed);
        _mm512_storeu_ps(args.row + j,
                         _mm512_fmadd_ps(f, vscale, vneg1));
    }
    if (j < args.k) {
        HashRowArgs tail = args;
        tail.a += j;
        tail.b += j;
        tail.k = args.k - j;
        tail.row += j;
        HashRowScalar(tail);
    }
}

}  // namespace secemb::dhe::detail
