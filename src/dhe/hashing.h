#pragma once

/**
 * @file
 * Universal hash encoder for Deep Hash Embedding (paper Algorithm 1).
 *
 * Step 1: encode a categorical id x into k values with k universal hash
 *         functions y_i = ((a_i x + b_i) mod p) mod m  [Carter & Wegman].
 * Step 2: uniformly transform each y_i into a real value in [-1, 1].
 *
 * Both steps are pure arithmetic on the id — no table, no data-dependent
 * memory access, which is precisely the property the paper exploits for
 * side-channel protection.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace secemb::dhe {

/** k-way universal hash encoder producing values in [-1, 1]. */
class HashEncoder
{
  public:
    /** Mersenne prime used as the universal-hash modulus. */
    static constexpr int64_t kPrime = (int64_t{1} << 31) - 1;

    /**
     * @param k number of hash functions
     * @param m hash bucket count (paper uses m = 1e6)
     * @param rng source for the hash coefficients a_i, b_i
     */
    HashEncoder(int64_t k, int64_t m, Rng& rng);

    /**
     * Encode a batch of ids into out (n x k), each entry in [-1, 1].
     * out must be preshaped to (ids.size(), k).
     */
    void Encode(std::span<const int64_t> ids, Tensor& out) const;

    /** Returning convenience wrapper. */
    Tensor Encode(std::span<const int64_t> ids) const;

    int64_t k() const { return k_; }
    int64_t m() const { return m_; }
    /** Bytes of hash-coefficient state. */
    int64_t ParamBytes() const { return k_ * 2 * 8; }

  private:
    int64_t k_;
    int64_t m_;
    std::vector<int64_t> a_;
    std::vector<int64_t> b_;
};

}  // namespace secemb::dhe
