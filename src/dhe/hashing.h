#pragma once

/**
 * @file
 * Universal hash encoder for Deep Hash Embedding (paper Algorithm 1).
 *
 * Step 1: encode a categorical id x into k values with k universal hash
 *         functions y_i = ((a_i x + b_i) mod p) mod m  [Carter & Wegman].
 * Step 2: uniformly transform each y_i into a real value in [-1, 1].
 *
 * Both steps are pure arithmetic on the id — no table, no data-dependent
 * memory access, which is precisely the property the paper exploits for
 * side-channel protection.
 *
 * **Id domain.** Ids are accepted over the full int64_t range, including
 * negatives: the hash operates on the two's-complement bit pattern,
 * x = uint64_t(id), so id = -1 hashes as 2^64 - 1 (it does NOT collide
 * with id = 1). The mapping id -> x is a bijection, so universality of
 * the hash family is preserved. Pinned by tests over {negative ids, 0,
 * INT64_MAX}.
 *
 * Encode dispatches to SIMD kernels (hash_kernels.h) selected by the
 * active kernel ISA tier (SECEMB_ISA) and parallelises over rows; all
 * tiers are bit-exact to EncodeReference, the kept __int128 scalar
 * reference.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace secemb::dhe {

/** k-way universal hash encoder producing values in [-1, 1]. */
class HashEncoder
{
  public:
    /** Mersenne prime used as the universal-hash modulus. */
    static constexpr int64_t kPrime = (int64_t{1} << 31) - 1;

    /**
     * @param k number of hash functions
     * @param m hash bucket count (paper uses m = 1e6)
     * @param rng source for the hash coefficients a_i, b_i
     */
    HashEncoder(int64_t k, int64_t m, Rng& rng);

    /**
     * Encode a batch of ids into out (n x k), each entry in [-1, 1].
     * out must be preshaped to (ids.size(), k). Rows are split over
     * `nthreads` workers (each id's k lanes stay on one worker); the
     * output is identical at any thread count.
     */
    void Encode(std::span<const int64_t> ids, Tensor& out,
                int nthreads = 1) const;

    /** Returning convenience wrapper. */
    Tensor Encode(std::span<const int64_t> ids, int nthreads = 1) const;

    /**
     * The pinned scalar reference: per-lane 128-bit multiply + two
     * divisions, no pre-reduction, no SIMD. Every Encode tier must
     * match it bit-exactly (kernel_test asserts this, including the
     * id-domain edge cases).
     */
    void EncodeReference(std::span<const int64_t> ids, Tensor& out) const;

    int64_t k() const { return k_; }
    int64_t m() const { return m_; }
    /** Bytes of hash-coefficient state. */
    int64_t ParamBytes() const { return k_ * 2 * 8; }

  private:
    int64_t k_;
    int64_t m_;
    std::vector<int64_t> a_;
    std::vector<int64_t> b_;
    /** u32 copies of a_/b_ for the u64-lane SIMD kernels (values < p). */
    std::vector<uint32_t> a32_;
    std::vector<uint32_t> b32_;
    uint32_t barrett_mu_ = 0;  ///< floor(2^32 / m) when m <= p
    bool mod_identity_ = false;  ///< m > p: outer mod m is a no-op
};

}  // namespace secemb::dhe
