#pragma once

/**
 * @file
 * Deep Hash Embedding (DHE): hash-encode the categorical id, then decode
 * with a fully-connected stack into the embedding vector (paper Section
 * IV-A3). Trainable, so models can be trained end-to-end with DHE layers
 * (Table V / Fig. 14 accuracy-parity experiments), and usable at inference
 * as a secure embedding generator (its access pattern is input-free).
 */

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dhe/hashing.h"
#include "nn/layers.h"
#include "tensor/rng.h"

namespace secemb::dhe {

/** Architecture of one DHE instance. */
struct DheConfig
{
    int64_t k = 1024;                     ///< number of hash functions
    std::vector<int64_t> fc_hidden{512, 256};  ///< decoder hidden widths
    int64_t out_dim = 64;                 ///< embedding dimension
    int64_t hash_buckets = 1000000;       ///< m in Algorithm 1

    /**
     * The paper's DHE Uniform for DLRM (Table IV): k = 1024,
     * FC 512-256-dim.
     */
    static DheConfig Uniform(int64_t out_dim);

    /**
     * DHE Varied: Uniform scaled down 0.125x per order of magnitude of
     * table size below 1e7 (Section VI-A2), floored so tiny tables still
     * get a usable decoder.
     */
    static DheConfig Varied(int64_t table_size, int64_t out_dim);

    /**
     * The paper's LLM sizing (Section VI-A3): k and all internal FC widths
     * are twice the embedding dimension; 4 FC layers.
     */
    static DheConfig ForLlm(int64_t emb_dim);

    /** Total trainable decoder parameters implied by this config. */
    int64_t DecoderParams() const;
};

/** A trainable DHE embedding generator. */
class DheEmbedding
{
  public:
    DheEmbedding(const DheConfig& config, Rng& rng, int nthreads = 1);

    /** Generate embeddings (n x out_dim) for a batch of ids. */
    Tensor Forward(std::span<const int64_t> ids);

    /**
     * Backpropagate grad_out (n x out_dim) through the decoder,
     * accumulating parameter gradients. (The hash encoder has no
     * trainable parameters, so no input gradient exists.)
     */
    void Backward(const Tensor& grad_out);

    std::vector<nn::Parameter*> Parameters() { return decoder_->Parameters(); }

    const DheConfig& config() const { return config_; }
    int64_t out_dim() const { return config_.out_dim; }

    /** Model footprint: decoder weights + hash coefficients. */
    int64_t ParamBytes();

    /**
     * Materialise the DHE outputs for all ids in [0, table_size) as a
     * table — the paper's hybrid-deployment step (Algorithm 2, offline
     * step 2): below-threshold features convert their trained DHE into a
     * table for linear scan.
     */
    Tensor ToTable(int64_t table_size);

    void set_nthreads(int n);

    /**
     * Decoder weight precision for Forward (f32 / bf16 / int8
     * quantize-on-pack in the persistent weight cache). Training
     * (Backward) is unaffected — gradients always run f32.
     */
    void set_dtype(kernels::Dtype dtype);

  private:
    DheConfig config_;
    HashEncoder encoder_;
    std::unique_ptr<nn::Sequential> decoder_;
    int nthreads_ = 1;  ///< shared by the encoder and decoder GEMMs
};

}  // namespace secemb::dhe
