#include "bench_util/trajectory.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

#include "tensor/kernels/kernels.h"

namespace secemb::bench {

namespace {

std::string
ReadCpuModelName()
{
#if defined(__linux__)
    std::FILE* f = std::fopen("/proc/cpuinfo", "r");
    if (f == nullptr) return "";
    char line[512];
    std::string model;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        if (std::strncmp(line, "model name", 10) == 0) {
            const char* colon = std::strchr(line, ':');
            if (colon != nullptr) {
                model = colon + 1;
                while (!model.empty() &&
                       (model.front() == ' ' || model.front() == '\t')) {
                    model.erase(model.begin());
                }
                while (!model.empty() &&
                       (model.back() == '\n' || model.back() == '\r')) {
                    model.pop_back();
                }
            }
            break;
        }
    }
    std::fclose(f);
    return model;
#else
    return "";
#endif
}

}  // namespace

MachineInfo
CollectMachineInfo()
{
    MachineInfo m;
#if defined(__unix__) || defined(__APPLE__)
    utsname u;
    if (uname(&u) == 0) {
        m.os = std::string(u.sysname) + " " + u.release;
        m.arch = u.machine;
    }
#endif
    m.cpu = ReadCpuModelName();
    m.isa = kernels::IsaName(kernels::ActiveIsa());
    m.nproc = static_cast<int>(std::thread::hardware_concurrency());
    return m;
}

bool
ValidateBenchDoc(const JsonValue& doc, std::string* error)
{
    const auto fail = [&](const std::string& what) {
        if (error != nullptr) *error = what;
        return false;
    };
    if (!doc.IsObject()) return fail("bench doc is not an object");
    const JsonValue* schema = doc.Find("schema");
    if (schema == nullptr || !schema->IsString() ||
        schema->str_v != "secemb-bench-v1") {
        return fail("schema is not \"secemb-bench-v1\"");
    }
    const JsonValue* bench = doc.Find("bench");
    if (bench == nullptr || !bench->IsString() || bench->str_v.empty()) {
        return fail("missing \"bench\" name");
    }
    const JsonValue* results = doc.Find("results");
    if (results == nullptr || !results->IsArray()) {
        return fail("missing \"results\" array");
    }
    for (size_t i = 0; i < results->array_v.size(); ++i) {
        const JsonValue& r = results->array_v[i];
        const std::string at =
            "results[" + std::to_string(i) + "] in bench \"" +
            bench->str_v + "\"";
        if (!r.IsObject()) return fail(at + " is not an object");
        const JsonValue* name = r.Find("name");
        if (name == nullptr || !name->IsString() || name->str_v.empty()) {
            return fail(at + " missing \"name\"");
        }
        const JsonValue* latency = r.Find("latency_ns");
        if (latency == nullptr || !latency->IsObject()) {
            return fail(at + " missing \"latency_ns\"");
        }
        for (const char* key : {"count", "mean", "min", "max", "p50",
                                "p95", "p99"}) {
            const JsonValue* v = latency->Find(key);
            // NaN serialises as null: legal for empty-sample stats.
            if (v == nullptr ||
                (!v->IsNumber() && v->kind != JsonValue::Kind::kNull)) {
                return fail(at + " latency_ns missing \"" +
                            std::string(key) + "\"");
            }
        }
        for (const char* key : {"params", "counters"}) {
            const JsonValue* v = r.Find(key);
            if (v == nullptr || !v->IsObject()) {
                return fail(at + " missing \"" + std::string(key) + "\"");
            }
        }
    }
    return true;
}

std::string
BuildSummaryJson(const MachineInfo& machine,
                 const std::vector<BenchSource>& sources,
                 std::string* error)
{
    // Parse + validate every report first so a summary can never embed a
    // malformed document.
    std::vector<JsonValue> parsed(sources.size());
    for (size_t i = 0; i < sources.size(); ++i) {
        std::string perr;
        if (!JsonParse(sources[i].report, &parsed[i], &perr)) {
            if (error != nullptr) {
                *error = sources[i].source + ": parse error: " + perr;
            }
            return "";
        }
        if (!ValidateBenchDoc(parsed[i], &perr)) {
            if (error != nullptr) {
                *error = sources[i].source + ": " + perr;
            }
            return "";
        }
    }
    JsonWriter w;
    w.BeginObject();
    w.Key("schema").Value("secemb-bench-summary-v1");
    w.Key("machine").BeginObject();
    w.Key("os").Value(machine.os);
    w.Key("arch").Value(machine.arch);
    w.Key("cpu").Value(machine.cpu);
    w.Key("isa").Value(machine.isa);
    w.Key("nproc").Value(static_cast<int64_t>(machine.nproc));
    w.EndObject();
    w.Key("benches").BeginArray();
    for (const BenchSource& s : sources) {
        w.BeginObject();
        w.Key("source").Value(s.source);
        // Validated above, so splicing the verbatim text keeps the
        // embedded report byte-identical to what the binary wrote.
        w.Key("report").Raw(s.report);
        w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    return w.str();
}

bool
ValidateSummary(const JsonValue& doc, std::string* error)
{
    const auto fail = [&](const std::string& what) {
        if (error != nullptr) *error = what;
        return false;
    };
    if (!doc.IsObject()) return fail("summary is not an object");
    const JsonValue* schema = doc.Find("schema");
    if (schema == nullptr || !schema->IsString() ||
        schema->str_v != "secemb-bench-summary-v1") {
        return fail("schema is not \"secemb-bench-summary-v1\"");
    }
    const JsonValue* machine = doc.Find("machine");
    if (machine == nullptr || !machine->IsObject()) {
        return fail("missing \"machine\" object");
    }
    for (const char* key : {"os", "arch", "cpu", "isa"}) {
        const JsonValue* v = machine->Find(key);
        if (v == nullptr || !v->IsString()) {
            return fail("machine missing \"" + std::string(key) + "\"");
        }
    }
    const JsonValue* nproc = machine->Find("nproc");
    if (nproc == nullptr || !nproc->IsNumber()) {
        return fail("machine missing \"nproc\"");
    }
    const JsonValue* benches = doc.Find("benches");
    if (benches == nullptr || !benches->IsArray()) {
        return fail("missing \"benches\" array");
    }
    for (size_t i = 0; i < benches->array_v.size(); ++i) {
        const JsonValue& b = benches->array_v[i];
        const std::string at = "benches[" + std::to_string(i) + "]";
        if (!b.IsObject()) return fail(at + " is not an object");
        const JsonValue* source = b.Find("source");
        if (source == nullptr || !source->IsString()) {
            return fail(at + " missing \"source\"");
        }
        const JsonValue* report = b.Find("report");
        if (report == nullptr) return fail(at + " missing \"report\"");
        std::string perr;
        if (!ValidateBenchDoc(*report, &perr)) {
            return fail(at + ": " + perr);
        }
    }
    return true;
}

namespace {

/** "<bench>/<result name>" -> mean latency, across every embedded report. */
std::map<std::string, double>
IndexMeans(const JsonValue& summary)
{
    std::map<std::string, double> means;
    const JsonValue* benches = summary.Find("benches");
    for (const JsonValue& b : benches->array_v) {
        const JsonValue* report = b.Find("report");
        const std::string& bench = report->Find("bench")->str_v;
        for (const JsonValue& r : report->Find("results")->array_v) {
            const JsonValue* mean = r.Find("latency_ns")->Find("mean");
            if (!mean->IsNumber()) continue;  // null mean: no samples
            means[bench + "/" + r.Find("name")->str_v] = mean->num_v;
        }
    }
    return means;
}

}  // namespace

bool
CompareSummaries(const JsonValue& baseline, const JsonValue& current,
                 double gate, CompareReport* out, std::string* error)
{
    std::string verr;
    if (!ValidateSummary(baseline, &verr)) {
        if (error != nullptr) *error = "baseline: " + verr;
        return false;
    }
    if (!ValidateSummary(current, &verr)) {
        if (error != nullptr) *error = "current: " + verr;
        return false;
    }
    out->rows.clear();
    out->only_in_baseline.clear();
    out->only_in_current.clear();
    out->gate = gate;
    out->ok = true;

    const auto base = IndexMeans(baseline);
    const auto cur = IndexMeans(current);
    for (const auto& [key, base_mean] : base) {
        const auto it = cur.find(key);
        if (it == cur.end()) {
            out->only_in_baseline.push_back(key);
            continue;
        }
        CompareRow row;
        row.key = key;
        row.baseline_mean_ns = base_mean;
        row.current_mean_ns = it->second;
        // A zero-mean baseline row (degenerate timer resolution) cannot
        // express a meaningful ratio. The old 0.0 placeholder rendered as
        // a 100% speedup; NaN keeps the "no data" meaning through both
        // the table ("n/a") and JSON (null), and the row is excluded from
        // gating explicitly rather than by ratio comparison accident.
        row.excluded = !(base_mean > 0.0);
        row.ratio = row.excluded ? std::numeric_limits<double>::quiet_NaN()
                                 : it->second / base_mean;
        row.regression = !row.excluded && row.ratio > gate;
        if (row.regression) out->ok = false;
        out->rows.push_back(std::move(row));
    }
    for (const auto& [key, mean] : cur) {
        if (base.find(key) == base.end()) {
            out->only_in_current.push_back(key);
        }
    }
    return true;
}

std::string
CompareReport::ToText() const
{
    std::string out;
    char line[512];
    std::snprintf(line, sizeof(line), "%-48s %14s %14s %8s  %s\n",
                  "bench/result", "baseline(ns)", "current(ns)", "ratio",
                  "verdict");
    out += line;
    for (const CompareRow& r : rows) {
        if (r.excluded) {
            std::snprintf(line, sizeof(line),
                          "%-48s %14.1f %14.1f %8s  %s\n", r.key.c_str(),
                          r.baseline_mean_ns, r.current_mean_ns, "n/a",
                          "excluded");
        } else {
            std::snprintf(line, sizeof(line),
                          "%-48s %14.1f %14.1f %8.3f  %s\n", r.key.c_str(),
                          r.baseline_mean_ns, r.current_mean_ns, r.ratio,
                          r.regression ? "REGRESSION" : "ok");
        }
        out += line;
    }
    for (const std::string& k : only_in_baseline) {
        out += "  (removed since baseline) " + k + "\n";
    }
    for (const std::string& k : only_in_current) {
        out += "  (new since baseline) " + k + "\n";
    }
    std::snprintf(line, sizeof(line), "gate: ratio > %.3f fails\n", gate);
    out += line;
    out += ok ? "RESULT: PASS\n" : "RESULT: FAIL\n";
    return out;
}

std::string
CompareReport::ToJson() const
{
    JsonWriter w;
    w.BeginObject();
    w.Key("schema").Value("secemb-bench-compare-v1");
    w.Key("gate").Value(gate);
    w.Key("ok").Value(ok);
    w.Key("rows").BeginArray();
    for (const CompareRow& r : rows) {
        w.BeginObject();
        w.Key("key").Value(r.key);
        w.Key("baseline_mean_ns").Value(r.baseline_mean_ns);
        w.Key("current_mean_ns").Value(r.current_mean_ns);
        w.Key("ratio").Value(r.ratio);  // NaN -> null for excluded rows
        w.Key("regression").Value(r.regression);
        w.Key("excluded").Value(r.excluded);
        w.EndObject();
    }
    w.EndArray();
    w.Key("only_in_baseline").BeginArray();
    for (const std::string& k : only_in_baseline) w.Value(k);
    w.EndArray();
    w.Key("only_in_current").BeginArray();
    for (const std::string& k : only_in_current) w.Value(k);
    w.EndArray();
    w.EndObject();
    return w.str();
}

}  // namespace secemb::bench
