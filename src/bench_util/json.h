#pragma once

/**
 * @file
 * Minimal JSON support for machine-readable benchmark output: a streaming
 * writer (escaping, object/array nesting), a small recursive-descent
 * parser (used by the bench_smoke schema validator and tests), and the
 * schema-stable BenchReport emitter every bench binary shares via
 * --json <path>.
 *
 * Schema "secemb-bench-v1":
 * {
 *   "schema": "secemb-bench-v1",
 *   "bench": "<binary name>",
 *   "results": [
 *     { "name": "...",
 *       "params": { "<key>": <number|string>, ... },
 *       "latency_ns": { "count": N, "mean": ..., "min": ..., "max": ...,
 *                       "p50": ..., "p95": ..., "p99": ... },
 *       "counters": { "<telemetry counter>": N, ... } },
 *     ...
 *   ]
 * }
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace secemb::bench {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/** Escape a string for embedding in a JSON document (no quotes added). */
std::string JsonEscape(std::string_view s);

/**
 * Streaming JSON writer. Keys and values must be emitted in a valid
 * order (Key before a value inside objects); commas are inserted
 * automatically.
 */
class JsonWriter
{
  public:
    JsonWriter& BeginObject();
    JsonWriter& EndObject();
    JsonWriter& BeginArray();
    JsonWriter& EndArray();
    JsonWriter& Key(std::string_view k);
    JsonWriter& Value(std::string_view v);
    JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
    JsonWriter& Value(double v);
    JsonWriter& Value(int64_t v);
    JsonWriter& Value(uint64_t v);
    JsonWriter& Value(bool v);
    /** Splice pre-serialised JSON verbatim (caller guarantees validity). */
    JsonWriter& Raw(std::string_view json);

    const std::string& str() const { return out_; }

  private:
    void MaybeComma();

    std::string out_;
    std::vector<bool> needs_comma_;  ///< one per open scope
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/** Parsed JSON value (numbers are doubles, objects are name-sorted maps). */
struct JsonValue
{
    enum class Kind
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Kind kind = Kind::kNull;
    bool bool_v = false;
    double num_v = 0.0;
    std::string str_v;
    std::vector<JsonValue> array_v;
    std::map<std::string, JsonValue> object_v;

    bool IsNumber() const { return kind == Kind::kNumber; }
    bool IsString() const { return kind == Kind::kString; }
    bool IsArray() const { return kind == Kind::kArray; }
    bool IsObject() const { return kind == Kind::kObject; }

    /** Member lookup; returns nullptr if not an object or key missing. */
    const JsonValue* Find(const std::string& key) const;
};

/**
 * Parse a complete JSON document. Returns false (and fills *error with a
 * position-annotated message) on malformed input or trailing garbage.
 */
bool JsonParse(std::string_view text, JsonValue* out, std::string* error);

// ---------------------------------------------------------------------------
// BenchReport
// ---------------------------------------------------------------------------

/** Latency summary computed exactly from raw samples (sorted reference). */
struct LatencyStats
{
    uint64_t count = 0;
    double mean_ns = 0.0;
    double min_ns = 0.0;
    double max_ns = 0.0;
    double p50_ns = 0.0;
    double p95_ns = 0.0;
    double p99_ns = 0.0;

    /**
     * Exact stats from raw samples: percentile p is the value at rank
     * ceil(p/100 * n) of the sorted samples (the same definition the
     * telemetry histogram approximates).
     */
    static LatencyStats FromSamples(std::vector<double> samples_ns);

    /** Degenerate stats from a single aggregate mean (gbench adapters). */
    static LatencyStats FromMean(double mean_ns, uint64_t count);
};

/**
 * Accumulates benchmark results and writes the secemb-bench-v1 document.
 * One instance per bench binary; AddResult once per measured
 * configuration.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string bench_name);

    struct Result
    {
        std::string name;
        std::vector<std::pair<std::string, double>> num_params;
        std::vector<std::pair<std::string, std::string>> str_params;
        LatencyStats latency;
        std::vector<std::pair<std::string, uint64_t>> counters;
    };

    Result& AddResult(std::string name);

    /**
     * Copy the current telemetry registry counter values into `result`
     * (sorted by name, skipping zero-valued counters).
     */
    static void AttachTelemetryCounters(Result& result);

    /** Serialise the report. */
    std::string ToJson() const;

    /** Write ToJson() to `path`; returns false on IO failure. */
    bool WriteTo(const std::string& path) const;

  private:
    std::string bench_name_;
    std::vector<std::unique_ptr<Result>> results_;  ///< stable refs
};

}  // namespace secemb::bench
