#include "bench_util/bench_util.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace secemb::bench {

double
TimeCallNs(const std::function<void()>& fn, int warmup, int reps)
{
    for (int i = 0; i < warmup; ++i) fn();
    WallTimer t;
    for (int i = 0; i < reps; ++i) fn();
    return t.ElapsedNs() / reps;
}

std::vector<double>
TimeCallSamplesNs(const std::function<void()>& fn, int warmup, int reps)
{
    for (int i = 0; i < warmup; ++i) fn();
    std::vector<double> samples;
    samples.reserve(static_cast<size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        WallTimer t;
        fn();
        samples.push_back(t.ElapsedNs());
    }
    return samples;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::AddRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TablePrinter::Print() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
        std::printf("|");
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string& cell = c < row.size() ? row[c] : "";
            std::printf(" %-*s |", static_cast<int>(widths[c]),
                        cell.c_str());
        }
        std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
        for (size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
        std::printf("|");
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
}

std::string
TablePrinter::Ms(double ns, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << ns * 1e-6;
    return os.str();
}

std::string
TablePrinter::Mb(int64_t bytes, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << static_cast<double>(bytes) / (1024.0 * 1024.0);
    return os.str();
}

std::string
TablePrinter::Num(double v, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << v;
    return os.str();
}

Args::Args(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
}

const std::string*
Args::FindValue(const std::string& flag) const
{
    for (size_t i = 0; i < args_.size(); ++i) {
        if (args_[i] != flag) continue;
        if (i + 1 >= args_.size()) {
            throw std::runtime_error(flag + ": missing value");
        }
        return &args_[i + 1];
    }
    return nullptr;
}

int64_t
Args::GetInt(const std::string& flag, int64_t def) const
{
    const std::string* raw = FindValue(flag);
    if (raw == nullptr) return def;
    int64_t v = 0;
    const char* first = raw->c_str();
    const char* last = first + raw->size();
    const auto [ptr, ec] = std::from_chars(first, last, v);
    if (ec == std::errc::result_out_of_range) {
        throw std::runtime_error(flag + ": integer out of range: '" +
                                 *raw + "'");
    }
    if (ec != std::errc() || ptr != last) {
        throw std::runtime_error(flag + ": expected an integer, got '" +
                                 *raw + "'");
    }
    return v;
}

double
Args::GetDouble(const std::string& flag, double def) const
{
    const std::string* raw = FindValue(flag);
    if (raw == nullptr) return def;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(raw->c_str(), &end);
    if (end == raw->c_str() || end != raw->c_str() + raw->size()) {
        throw std::runtime_error(flag + ": expected a number, got '" +
                                 *raw + "'");
    }
    if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
        throw std::runtime_error(flag + ": number out of range: '" + *raw +
                                 "'");
    }
    return v;
}

std::string
Args::GetString(const std::string& flag, const std::string& def) const
{
    const std::string* raw = FindValue(flag);
    return raw != nullptr ? *raw : def;
}

bool
Args::GetBool(const std::string& flag) const
{
    for (const auto& a : args_) {
        if (a == flag) return true;
    }
    return false;
}

}  // namespace secemb::bench
