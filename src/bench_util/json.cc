#include "bench_util/json.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "telemetry/metrics.h"

namespace secemb::bench {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

std::string
JsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                // Promote through unsigned char: a plain (signed) char
                // would sign-extend into %x and overflow the %04x width.
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::MaybeComma()
{
    if (!needs_comma_.empty()) {
        if (needs_comma_.back()) out_ += ',';
        needs_comma_.back() = true;
    }
}

JsonWriter&
JsonWriter::BeginObject()
{
    MaybeComma();
    out_ += '{';
    needs_comma_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::EndObject()
{
    out_ += '}';
    needs_comma_.pop_back();
    return *this;
}

JsonWriter&
JsonWriter::BeginArray()
{
    MaybeComma();
    out_ += '[';
    needs_comma_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::EndArray()
{
    out_ += ']';
    needs_comma_.pop_back();
    return *this;
}

JsonWriter&
JsonWriter::Key(std::string_view k)
{
    MaybeComma();
    out_ += '"';
    out_ += JsonEscape(k);
    out_ += "\":";
    // The upcoming value must not emit another comma.
    needs_comma_.back() = false;
    return *this;
}

JsonWriter&
JsonWriter::Value(std::string_view v)
{
    MaybeComma();
    out_ += '"';
    out_ += JsonEscape(v);
    out_ += '"';
    return *this;
}

JsonWriter&
JsonWriter::Value(double v)
{
    MaybeComma();
    if (!std::isfinite(v)) {
        out_ += "null";  // JSON has no inf/nan
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
}

JsonWriter&
JsonWriter::Value(int64_t v)
{
    MaybeComma();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter&
JsonWriter::Value(uint64_t v)
{
    MaybeComma();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter&
JsonWriter::Value(bool v)
{
    MaybeComma();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter&
JsonWriter::Raw(std::string_view json)
{
    MaybeComma();
    out_ += json;
    return *this;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const JsonValue*
JsonValue::Find(const std::string& key) const
{
    if (kind != Kind::kObject) return nullptr;
    const auto it = object_v.find(key);
    return it == object_v.end() ? nullptr : &it->second;
}

namespace {

class Parser
{
  public:
    Parser(std::string_view text, std::string* error)
        : text_(text), error_(error)
    {
    }

    bool
    ParseDocument(JsonValue* out)
    {
        SkipWs();
        if (!ParseValue(out)) return false;
        SkipWs();
        if (pos_ != text_.size()) return Fail("trailing characters");
        return true;
    }

  private:
    bool
    Fail(const std::string& what)
    {
        if (error_ != nullptr) {
            *error_ = what + " at offset " + std::to_string(pos_);
        }
        return false;
    }

    void
    SkipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    Consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    ConsumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) == lit) {
            pos_ += lit.size();
            return true;
        }
        return false;
    }

    bool
    ParseValue(JsonValue* out)
    {
        if (pos_ >= text_.size()) return Fail("unexpected end of input");
        const char c = text_[pos_];
        switch (c) {
          case '{': return ParseObject(out);
          case '[': return ParseArray(out);
          case '"':
            out->kind = JsonValue::Kind::kString;
            return ParseString(&out->str_v);
          case 't':
            out->kind = JsonValue::Kind::kBool;
            out->bool_v = true;
            return ConsumeLiteral("true") || Fail("bad literal");
          case 'f':
            out->kind = JsonValue::Kind::kBool;
            out->bool_v = false;
            return ConsumeLiteral("false") || Fail("bad literal");
          case 'n':
            out->kind = JsonValue::Kind::kNull;
            return ConsumeLiteral("null") || Fail("bad literal");
          default: return ParseNumber(out);
        }
    }

    bool
    ParseObject(JsonValue* out)
    {
        out->kind = JsonValue::Kind::kObject;
        ++pos_;  // '{'
        SkipWs();
        if (Consume('}')) return true;
        while (true) {
            SkipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"' ||
                !ParseString(&key)) {
                return Fail("expected object key");
            }
            SkipWs();
            if (!Consume(':')) return Fail("expected ':'");
            SkipWs();
            JsonValue value;
            if (!ParseValue(&value)) return false;
            out->object_v.emplace(std::move(key), std::move(value));
            SkipWs();
            if (Consume('}')) return true;
            if (!Consume(',')) return Fail("expected ',' or '}'");
        }
    }

    bool
    ParseArray(JsonValue* out)
    {
        out->kind = JsonValue::Kind::kArray;
        ++pos_;  // '['
        SkipWs();
        if (Consume(']')) return true;
        while (true) {
            SkipWs();
            JsonValue value;
            if (!ParseValue(&value)) return false;
            out->array_v.push_back(std::move(value));
            SkipWs();
            if (Consume(']')) return true;
            if (!Consume(',')) return Fail("expected ',' or ']'");
        }
    }

    bool
    ParseString(std::string* out)
    {
        ++pos_;  // opening quote
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return true;
            if (c == '\\') {
                if (pos_ >= text_.size()) break;
                const char e = text_[pos_++];
                switch (e) {
                  case '"': *out += '"'; break;
                  case '\\': *out += '\\'; break;
                  case '/': *out += '/'; break;
                  case 'b': *out += '\b'; break;
                  case 'f': *out += '\f'; break;
                  case 'n': *out += '\n'; break;
                  case 'r': *out += '\r'; break;
                  case 't': *out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        return Fail("bad \\u escape");
                    }
                    const std::string hex(text_.substr(pos_, 4));
                    pos_ += 4;
                    const long cp = std::strtol(hex.c_str(), nullptr, 16);
                    // ASCII only; anything above is replaced — the bench
                    // schema emits no non-ASCII escapes.
                    *out += cp < 0x80 ? static_cast<char>(cp) : '?';
                    break;
                  }
                  default: return Fail("bad escape");
                }
            } else {
                *out += c;
            }
        }
        return Fail("unterminated string");
    }

    bool
    ParseNumber(JsonValue* out)
    {
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        if (pos_ == start) return Fail("unexpected character");
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') return Fail("bad number");
        out->kind = JsonValue::Kind::kNumber;
        out->num_v = v;
        return true;
    }

    std::string_view text_;
    size_t pos_ = 0;
    std::string* error_;
};

}  // namespace

bool
JsonParse(std::string_view text, JsonValue* out, std::string* error)
{
    return Parser(text, error).ParseDocument(out);
}

// ---------------------------------------------------------------------------
// LatencyStats / BenchReport
// ---------------------------------------------------------------------------

LatencyStats
LatencyStats::FromSamples(std::vector<double> samples_ns)
{
    LatencyStats s;
    if (samples_ns.empty()) return s;
    std::sort(samples_ns.begin(), samples_ns.end());
    s.count = samples_ns.size();
    double sum = 0.0;
    for (const double v : samples_ns) sum += v;
    s.mean_ns = sum / static_cast<double>(samples_ns.size());
    s.min_ns = samples_ns.front();
    s.max_ns = samples_ns.back();
    const auto at = [&](double p) {
        const size_t rank = static_cast<size_t>(std::max(
            1.0,
            std::ceil(p / 100.0 *
                      static_cast<double>(samples_ns.size()))));
        return samples_ns[std::min(rank, samples_ns.size()) - 1];
    };
    s.p50_ns = at(50.0);
    s.p95_ns = at(95.0);
    s.p99_ns = at(99.0);
    return s;
}

LatencyStats
LatencyStats::FromMean(double mean_ns, uint64_t count)
{
    LatencyStats s;
    s.count = count;
    s.mean_ns = s.min_ns = s.max_ns = mean_ns;
    s.p50_ns = s.p95_ns = s.p99_ns = mean_ns;
    return s;
}

BenchReport::BenchReport(std::string bench_name)
    : bench_name_(std::move(bench_name))
{
}

BenchReport::Result&
BenchReport::AddResult(std::string name)
{
    results_.push_back(std::make_unique<Result>());
    results_.back()->name = std::move(name);
    return *results_.back();
}

void
BenchReport::AttachTelemetryCounters(Result& result)
{
    const auto snap = telemetry::Registry::Instance().TakeSnapshot();
    for (const auto& [name, value] : snap.counters) {
        if (value != 0) result.counters.emplace_back(name, value);
    }
}

std::string
BenchReport::ToJson() const
{
    JsonWriter w;
    w.BeginObject();
    w.Key("schema").Value("secemb-bench-v1");
    w.Key("bench").Value(bench_name_);
    w.Key("results").BeginArray();
    for (const auto& r : results_) {
        w.BeginObject();
        w.Key("name").Value(r->name);
        w.Key("params").BeginObject();
        for (const auto& [k, v] : r->num_params) w.Key(k).Value(v);
        for (const auto& [k, v] : r->str_params) {
            w.Key(k).Value(std::string_view(v));
        }
        w.EndObject();
        w.Key("latency_ns").BeginObject();
        w.Key("count").Value(r->latency.count);
        w.Key("mean").Value(r->latency.mean_ns);
        w.Key("min").Value(r->latency.min_ns);
        w.Key("max").Value(r->latency.max_ns);
        w.Key("p50").Value(r->latency.p50_ns);
        w.Key("p95").Value(r->latency.p95_ns);
        w.Key("p99").Value(r->latency.p99_ns);
        w.EndObject();
        w.Key("counters").BeginObject();
        for (const auto& [k, v] : r->counters) w.Key(k).Value(v);
        w.EndObject();
        w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    return w.str();
}

bool
BenchReport::WriteTo(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string doc = ToJson();
    const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    const bool ok = written == doc.size() && std::fclose(f) == 0;
    if (written != doc.size()) std::fclose(f);
    return ok;
}

}  // namespace secemb::bench
