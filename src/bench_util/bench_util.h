#pragma once

/**
 * @file
 * Shared benchmark plumbing: wall-clock timing of callables, a fixed-width
 * table printer matching the paper's result tables, and a minimal flag
 * parser so every bench binary accepts --scale-style overrides.
 */

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace secemb::bench {

/** Monotonic wall-clock timer. */
class WallTimer
{
  public:
    WallTimer() : start_(Clock::now()) {}
    void Reset() { start_ = Clock::now(); }

    double
    ElapsedNs() const
    {
        return std::chrono::duration<double, std::nano>(Clock::now() -
                                                        start_)
            .count();
    }

    double ElapsedMs() const { return ElapsedNs() * 1e-6; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Mean wall time of fn over `reps` calls after `warmup` unmeasured calls.
 */
double TimeCallNs(const std::function<void()>& fn, int warmup = 1,
                  int reps = 3);

/**
 * Per-rep wall times (ns) of fn after `warmup` unmeasured calls: the raw
 * samples percentile reporting needs (BenchReport / LatencyStats).
 */
std::vector<double> TimeCallSamplesNs(const std::function<void()>& fn,
                                      int warmup = 1, int reps = 3);

/** Fixed-width console table. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void AddRow(std::vector<std::string> cells);
    void Print() const;

    /** Format helpers. */
    static std::string Ms(double ns, int precision = 2);
    static std::string Mb(int64_t bytes, int precision = 1);
    static std::string Num(double v, int precision = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Minimal --flag value parser.
 *
 * Numeric accessors parse strictly: a malformed value (`--steps abc`),
 * trailing junk (`--steps 12x`), a missing value (`--steps` as the last
 * argument), or an out-of-range number throws std::runtime_error naming
 * the flag and the offending text — never a silent default or UB.
 */
class Args
{
  public:
    Args(int argc, char** argv);

    int64_t GetInt(const std::string& flag, int64_t def) const;
    double GetDouble(const std::string& flag, double def) const;
    bool GetBool(const std::string& flag) const;
    /** Value following `flag` (e.g. --json out.json), or `def`. */
    std::string GetString(const std::string& flag,
                          const std::string& def = "") const;

  private:
    /** Value after `flag`, nullptr if the flag is absent; throws if the
     *  flag is present with no value after it. */
    const std::string* FindValue(const std::string& flag) const;

    std::vector<std::string> args_;
};

}  // namespace secemb::bench
