#pragma once

/**
 * @file
 * Bench-trajectory harness: merge per-binary secemb-bench-v1 documents
 * into one machine-annotated summary, and gate a new summary against a
 * checked-in baseline.
 *
 * Schema "secemb-bench-summary-v1":
 * {
 *   "schema": "secemb-bench-summary-v1",
 *   "machine": { "os": ..., "arch": ..., "cpu": ..., "isa": ...,
 *                "nproc": N },
 *   "benches": [
 *     { "source": "<file the report came from>",
 *       "report": { <verbatim secemb-bench-v1 document> } },
 *     ...
 *   ]
 * }
 *
 * Comparison keys each result by "<bench>/<result name>" and compares
 * mean latency: ratio = current / baseline. A row regresses when
 * ratio > gate (default 1.15, i.e. >15% slower). Results present in only
 * one summary are reported but never fail the gate — the bench tier is
 * allowed to grow. The whole compare fails (CompareReport::ok == false)
 * iff at least one shared result regresses.
 *
 * Everything here is pure (no exec, no clocks) so the regression gate is
 * unit-testable; the secemb-bench-all driver owns running the binaries.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util/json.h"

namespace secemb::bench {

/** Host annotations stamped into every summary. */
struct MachineInfo
{
    std::string os;    ///< uname sysname + release
    std::string arch;  ///< uname machine
    std::string cpu;   ///< /proc/cpuinfo "model name" (may be empty)
    std::string isa;   ///< kernels::IsaName(ActiveIsa())
    int nproc = 0;     ///< std::thread::hardware_concurrency
};

MachineInfo CollectMachineInfo();

/**
 * Check one parsed document against the secemb-bench-v1 schema (the same
 * shape bench_smoke_check enforces). Returns false and fills *error with
 * the first violation.
 */
bool ValidateBenchDoc(const JsonValue& doc, std::string* error);

/** One per-binary report going into a summary. */
struct BenchSource
{
    std::string source;  ///< provenance label (usually the JSON filename)
    std::string report;  ///< verbatim secemb-bench-v1 document text
};

/**
 * Build a secemb-bench-summary-v1 document. Each report must be a valid
 * secemb-bench-v1 document; returns empty string and fills *error
 * otherwise.
 */
std::string BuildSummaryJson(const MachineInfo& machine,
                             const std::vector<BenchSource>& sources,
                             std::string* error);

/** Validate a parsed summary document; false + *error on violation. */
bool ValidateSummary(const JsonValue& doc, std::string* error);

// ---------------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------------

/** One "<bench>/<result>" pair present in both summaries. */
struct CompareRow
{
    std::string key;
    double baseline_mean_ns = 0.0;
    double current_mean_ns = 0.0;
    /// current / baseline; NaN when the baseline mean is zero (degenerate
    /// timer resolution), matching the NaN→null stats convention.
    double ratio = 0.0;
    bool regression = false;
    /// True when the row cannot express a meaningful ratio (zero-mean
    /// baseline). Excluded rows never regress and render as "excluded".
    bool excluded = false;
};

struct CompareReport
{
    std::vector<CompareRow> rows;  ///< shared results, key-sorted
    std::vector<std::string> only_in_baseline;
    std::vector<std::string> only_in_current;
    double gate = 0.0;
    bool ok = true;  ///< false iff any shared row regressed

    /** Human-readable table for the driver's stdout. */
    std::string ToText() const;

    /**
     * Machine-readable report ("secemb-bench-compare-v1"). NaN ratios
     * serialize as null, the same convention LatencyStats uses for
     * empty-sample fields.
     */
    std::string ToJson() const;
};

/**
 * Compare two parsed secemb-bench-summary-v1 documents.
 * @param gate fail threshold on mean-latency ratio (1.15 = 15% slower).
 * Returns false + *error if either document fails ValidateSummary.
 */
bool CompareSummaries(const JsonValue& baseline, const JsonValue& current,
                      double gate, CompareReport* out, std::string* error);

}  // namespace secemb::bench
