#pragma once

/**
 * @file
 * Golden canonical-trace snapshots.
 *
 * A golden file pins the exact canonical trace of one small generator
 * configuration (see GoldenConfigs() in harness.h). The snapshot test
 * regenerates the trace and diffs it against the committed file, catching
 * any unintended change to a generator's access pattern — stronger than
 * the differential engine alone, which only proves runs agree with *each
 * other*. Regenerate deliberately with `secemb-verify --update-golden`.
 *
 * Format (plain text, diffable in review):
 *
 *   secemb-canonical-trace v1
 *   config <slug>
 *   regions <n>
 *   region <id> <bytes> <name>
 *   accesses <n>
 *   <region> 0x<offset> <size> R|W
 */

#include <string>

#include "verify/canonical.h"

namespace secemb::verify {

/** Serialize a canonical trace to the golden text format. */
std::string SerializeTrace(const CanonicalTrace& trace,
                           const std::string& config_name);

/**
 * Parse the golden text format. Returns false (with *error set) on any
 * syntax or version mismatch; config_name may be nullptr.
 */
bool ParseTrace(const std::string& text, CanonicalTrace* trace,
                std::string* config_name, std::string* error);

/** Write a golden file; returns false with *error on IO failure. */
bool WriteTraceFile(const std::string& path, const CanonicalTrace& trace,
                    const std::string& config_name, std::string* error);

/** Read a golden file; returns false with *error on IO/parse failure. */
bool ReadTraceFile(const std::string& path, CanonicalTrace* trace,
                   std::string* config_name, std::string* error);

/** Golden file name for a configuration: "<slug>.trace". */
std::string GoldenFileName(const std::string& config_name);

}  // namespace secemb::verify
