/**
 * @file
 * secemb-verify: the obliviousness certification CLI.
 *
 * Runs the differential trace engine and the statistical fixed-vs-random
 * leakage check across the fuzz corpus of every (requested) generator,
 * and maintains the golden canonical-trace snapshots under tests/golden/.
 *
 * Usage:
 *   secemb-verify [--subjects=scan,dhe,...] [--sets=N] [--seed=N]
 *                 [--golden-dir=DIR [--update-golden]]
 *                 [--json=PATH] [--list]
 *
 * Exit status: 0 if every check passed, 1 otherwise (including usage
 * errors). `ctest -L leakage` runs the same engine via the test suite;
 * this binary is the interactive / CI-artifact entry point.
 */

#include <unistd.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util/json.h"
#include "verify/golden.h"
#include "verify/harness.h"

namespace secemb::verify {
namespace {

struct CliOptions
{
    std::vector<Subject> subjects = AllSecureSubjects();
    int secret_sets = 0;  ///< 0 = per-config default
    uint64_t seed = 1;
    std::string golden_dir;
    bool update_golden = false;
    std::string json_path;
    bool list_only = false;
    /// Run the recovered-instance arm (durable RAW ORAM: crash-recover
    /// each instance before certifying it).
    bool recovered = false;
    std::string scratch_dir;  ///< recovered-arm working files
};

void
PrintUsage()
{
    std::cout
        << "secemb-verify: obliviousness certification harness\n\n"
           "  --subjects=a,b,...  comma list of: scan vecscan dhe hybrid\n"
           "                      tree_oram sqrt_oram proxy_oram\n"
           "                      paged_scan raw_oram\n"
           "                      (default: all nine)\n"
           "  --sets=N            secret sets per differential config\n"
           "  --seed=N            fuzz corpus seed (default 1)\n"
           "  --golden-dir=DIR    diff golden traces in DIR as well\n"
           "  --update-golden     rewrite golden traces in DIR and exit\n"
           "  --json=PATH         write a machine-readable report\n"
           "  --recovered         also certify crash-recovered durable\n"
           "                      RAW ORAM instances (slower)\n"
           "  --scratch-dir=DIR   recovered-arm working directory\n"
           "                      (default: under /tmp, wiped)\n"
           "  --list              print the fuzz corpus and exit\n";
}

bool
ParseArgs(int argc, char** argv, CliOptions* opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char* flag) -> const char* {
            const size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) == 0 && arg.size() > n &&
                arg[n] == '=') {
                return arg.c_str() + n + 1;
            }
            return nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            PrintUsage();
            std::exit(0);
        } else if (arg == "--list") {
            opt->list_only = true;
        } else if (arg == "--update-golden") {
            opt->update_golden = true;
        } else if (arg == "--recovered") {
            opt->recovered = true;
        } else if (const char* v = value("--subjects")) {
            opt->subjects.clear();
            std::istringstream is(v);
            std::string item;
            while (std::getline(is, item, ',')) {
                Subject s;
                if (!ParseSubject(item, &s)) {
                    std::cerr << "unknown subject: " << item << "\n";
                    return false;
                }
                opt->subjects.push_back(s);
            }
            if (opt->subjects.empty()) {
                std::cerr << "--subjects: empty list\n";
                return false;
            }
        } else if (const char* v = value("--sets")) {
            opt->secret_sets = std::atoi(v);
            if (opt->secret_sets < 2) {
                std::cerr << "--sets: need at least 2\n";
                return false;
            }
        } else if (const char* v = value("--seed")) {
            opt->seed = std::strtoull(v, nullptr, 10);
        } else if (const char* v = value("--golden-dir")) {
            opt->golden_dir = v;
        } else if (const char* v = value("--json")) {
            opt->json_path = v;
        } else if (const char* v = value("--scratch-dir")) {
            opt->scratch_dir = v;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            PrintUsage();
            return false;
        }
    }
    if (opt->update_golden && opt->golden_dir.empty()) {
        std::cerr << "--update-golden requires --golden-dir\n";
        return false;
    }
    return true;
}

bool
SubjectRequested(const CliOptions& opt, Subject s)
{
    for (const Subject r : opt.subjects) {
        if (r == s) return true;
    }
    return false;
}

int
ListCorpus(const CliOptions& opt)
{
    for (const Subject s : opt.subjects) {
        for (const VerifyConfig& c : FuzzCorpus(s, opt.seed)) {
            std::cout << c.Name() << "\n";
        }
    }
    return 0;
}

int
UpdateGolden(const CliOptions& opt)
{
    int written = 0;
    for (const VerifyConfig& c : GoldenConfigs()) {
        if (!SubjectRequested(opt, c.subject)) continue;
        const CanonicalTrace trace = GoldenRun(c);
        const std::string path =
            opt.golden_dir + "/" + GoldenFileName(c.Name());
        std::string error;
        if (!WriteTraceFile(path, trace, c.Name(), &error)) {
            std::cerr << "FAIL " << error << "\n";
            return 1;
        }
        std::cout << "wrote " << path << " (" << trace.accesses.size()
                  << " accesses)\n";
        written++;
    }
    std::cout << written << " golden trace(s) updated\n";
    return 0;
}

struct GoldenOutcome
{
    std::string name;
    bool passed = false;
    std::string detail;
};

std::vector<GoldenOutcome>
CheckGolden(const CliOptions& opt, bool* all_passed)
{
    std::vector<GoldenOutcome> outcomes;
    for (const VerifyConfig& c : GoldenConfigs()) {
        if (!SubjectRequested(opt, c.subject)) continue;
        GoldenOutcome o;
        o.name = c.Name();
        const std::string path =
            opt.golden_dir + "/" + GoldenFileName(c.Name());
        CanonicalTrace golden;
        std::string error;
        if (!ReadTraceFile(path, &golden, nullptr, &error)) {
            o.detail = error + " (run --update-golden?)";
        } else {
            const TraceDivergence d =
                CompareCanonical(golden, GoldenRun(c));
            o.passed = !d.diverged;
            o.detail = d.detail;
        }
        *all_passed = *all_passed && o.passed;
        outcomes.push_back(std::move(o));
    }
    return outcomes;
}

bool
WriteJsonReport(const std::string& path, const SweepResult& sweep,
                const std::vector<RecoveredResult>& recovered,
                const std::vector<GoldenOutcome>& golden, bool all_passed)
{
    bench::JsonWriter w;
    w.BeginObject();
    w.Key("schema").Value("secemb-verify-v1");
    w.Key("passed").Value(all_passed);
    w.Key("differential").BeginArray();
    for (const DifferentialResult& r : sweep.differential) {
        w.BeginObject();
        w.Key("config").Value(r.config.Name());
        w.Key("passed").Value(r.passed);
        w.Key("sets").Value(static_cast<int64_t>(r.sets_run));
        w.Key("trace_len").Value(static_cast<uint64_t>(r.trace_len));
        if (!r.detail.empty()) w.Key("detail").Value(r.detail);
        w.EndObject();
    }
    w.EndArray();
    w.Key("statistical").BeginArray();
    for (const StatisticalResult& r : sweep.statistical) {
        w.BeginObject();
        w.Key("config").Value(r.config.Name());
        w.Key("passed").Value(r.passed);
        w.Key("cache_chi2").Value(r.cache_chi2);
        w.Key("cache_df").Value(r.cache_df);
        w.Key("page_chi2").Value(r.page_chi2);
        w.Key("page_df").Value(r.page_df);
        w.EndObject();
    }
    w.EndArray();
    w.Key("recovered").BeginArray();
    for (const RecoveredResult& r : recovered) {
        w.BeginObject();
        w.Key("config").Value(r.config.Name());
        w.Key("passed").Value(r.passed);
        w.Key("shape_passed").Value(r.shape_passed);
        w.Key("differential_passed").Value(r.differential.passed);
        w.Key("statistical_passed").Value(r.statistical.passed);
        w.Key("trace_len").Value(static_cast<uint64_t>(r.trace_len));
        if (!r.detail.empty()) w.Key("detail").Value(r.detail);
        w.EndObject();
    }
    w.EndArray();
    w.Key("golden").BeginArray();
    for (const GoldenOutcome& o : golden) {
        w.BeginObject();
        w.Key("config").Value(o.name);
        w.Key("passed").Value(o.passed);
        if (!o.detail.empty()) w.Key("detail").Value(o.detail);
        w.EndObject();
    }
    w.EndArray();
    w.EndObject();

    std::ofstream f(path);
    f << w.str() << "\n";
    f.flush();
    if (!f) {
        std::cerr << "secemb-verify: cannot write " << path << "\n";
        return false;
    }
    return true;
}

int
Run(const CliOptions& opt)
{
    if (opt.list_only) return ListCorpus(opt);
    if (opt.update_golden) return UpdateGolden(opt);

    const SweepResult sweep =
        RunSweep(opt.subjects, opt.seed, opt.secret_sets);
    bool all_passed = sweep.all_passed;

    for (const DifferentialResult& r : sweep.differential) {
        std::cout << (r.passed ? "PASS" : "FAIL") << " differential "
                  << r.config.Name() << " (" << r.sets_run << " sets, "
                  << r.trace_len << " accesses)\n";
        if (!r.passed) std::cout << "     " << r.detail << "\n";
    }
    for (const StatisticalResult& r : sweep.statistical) {
        std::cout << (r.passed ? "PASS" : "FAIL") << " statistical  "
                  << r.config.Name() << " (cache chi2=" << r.cache_chi2
                  << "/df=" << r.cache_df << ", page chi2=" << r.page_chi2
                  << "/df=" << r.page_df << ")\n";
        if (!r.passed) std::cout << "     " << r.detail << "\n";
    }

    std::vector<RecoveredResult> recovered;
    if (opt.recovered && SubjectRequested(opt, Subject::kRawOram)) {
        std::string scratch = opt.scratch_dir;
        if (scratch.empty()) {
            scratch = "/tmp/secemb-verify-recovered." +
                      std::to_string(static_cast<long>(::getpid()));
        }
        for (VerifyConfig c : RecoveredCorpus(opt.seed)) {
            if (opt.secret_sets > 0) c.secret_sets = opt.secret_sets;
            RecoveredResult r =
                RunRecovered(c, scratch + "/" + c.Name());
            std::cout << (r.passed ? "PASS" : "FAIL") << " recovered    "
                      << r.config.Name() << " (" << r.trace_len
                      << " accesses, shape "
                      << (r.shape_passed ? "ok" : "DIVERGED")
                      << ", differential "
                      << (r.differential.passed ? "ok" : "FAIL")
                      << ", statistical "
                      << (r.statistical.passed ? "ok" : "FAIL") << ")\n";
            if (!r.passed) std::cout << "     " << r.detail << "\n";
            all_passed = all_passed && r.passed;
            recovered.push_back(std::move(r));
        }
    }

    std::vector<GoldenOutcome> golden;
    if (!opt.golden_dir.empty()) {
        golden = CheckGolden(opt, &all_passed);
        for (const GoldenOutcome& o : golden) {
            std::cout << (o.passed ? "PASS" : "FAIL") << " golden       "
                      << o.name << "\n";
            if (!o.passed) std::cout << "     " << o.detail << "\n";
        }
    }

    if (!opt.json_path.empty() &&
        !WriteJsonReport(opt.json_path, sweep, recovered, golden,
                         all_passed)) {
        return 1;
    }

    std::cout << (all_passed ? "CERTIFIED" : "LEAKAGE SUSPECTED") << ": "
              << sweep.differential.size() << " differential, "
              << sweep.statistical.size() << " statistical, "
              << recovered.size() << " recovered, " << golden.size()
              << " golden check(s)\n";
    return all_passed ? 0 : 1;
}

}  // namespace
}  // namespace secemb::verify

int
main(int argc, char** argv)
{
    secemb::verify::CliOptions opt;
    if (!secemb::verify::ParseArgs(argc, argv, &opt)) return 1;
    return secemb::verify::Run(opt);
}
