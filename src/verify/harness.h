#pragma once

/**
 * @file
 * Obliviousness certification harness (the machinery behind the
 * `secemb-verify` CLI and the `ctest -L leakage` gate).
 *
 * Three layers of checking, applied per generator configuration:
 *
 *  1. Differential engine: N seeded secret-index sets are run through
 *     freshly-built generators with identical construction seeds; all
 *     canonicalized traces must be bit-identical (deterministic subjects:
 *     linear scan, vectorized scan, DHE, hybrid) or shape-identical
 *     (randomized subjects: tree/sqrt ORAM, whose traces legitimately
 *     differ in offsets). The first divergent access is reported with
 *     region/offset/op context.
 *
 *  2. Statistical leakage check (fixed-vs-random, TVLA style): one group
 *     of runs replays a fixed secret set, the other fresh random secret
 *     sets, with generator randomness (construction seed) varying in both
 *     groups. Each trace is fed through the existing src/sidechannel
 *     cache and page-channel models; the pooled per-cache-set and
 *     per-page observation histograms of the two groups must be
 *     statistically indistinguishable (two-sample chi-squared, calibrated
 *     by a seeded permutation test because ORAM traces are clustered
 *     samples). This is what certifies the randomized ORAMs — and what
 *     catches the non-secure index lookup.
 *
 *  3. Fuzz driver: a deterministic corpus sweeps generator kind, table
 *     shape, batch size, and thread count from a seed, so the gate covers
 *     many configurations without hand-picking them.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/embedding_generator.h"
#include "verify/canonical.h"

namespace secemb::verify {

/** Generators the harness can certify. */
enum class Subject
{
    kLinearScan,   ///< core::LinearScanTable (production scan path)
    kVectorScan,   ///< SIMD scan kernel driven directly, row-granular trace
    kDhe,          ///< core::DheGenerator
    kHybrid,       ///< core::HybridGenerator (both sides of the threshold)
    kTreeOram,     ///< core::OramTable — Path (variant 0) / Circuit (1)
    kSqrtOram,     ///< oram::SqrtOram behind a generator adapter
    kIndexLookup,  ///< non-secure baseline — negative control only
    kProxyOram,    ///< core::ProxiedOramTable — async coalescing proxy
    kPagedScan,    ///< core::PagedScanTable — out-of-core page-granular scan
    kRawOram,      ///< core::RawOramTable — page-optimized RAW ORAM
};

/** CLI name: "scan", "vecscan", "dhe", "hybrid", "tree_oram", ... */
const char* SubjectName(Subject s);

/** Parse a SubjectName; returns false on unknown name. */
bool ParseSubject(const std::string& name, Subject* out);

/** The nine certified kinds (excludes the non-secure control). */
std::vector<Subject> AllSecureSubjects();

/** True if the subject's trace must be bit-identical across secrets
 * (false: randomized — shape identity + statistical check instead). */
bool SubjectIsDeterministic(Subject s);

/** One generator configuration under certification. */
struct VerifyConfig
{
    Subject subject = Subject::kLinearScan;
    int64_t rows = 64;
    int64_t dim = 8;
    int batch = 8;
    int nthreads = 1;
    int variant = 0;       ///< tree ORAM: 0 = Path, 1 = Circuit
    bool pooled = false;   ///< exercise GeneratePooled (scan subjects)
    int secret_sets = 4;   ///< N secret sets (differential) / runs per group
    uint64_t seed = 1;     ///< corpus seed: weights, secrets, randomness

    /** Stable slug, e.g. "scan_r64_d8_b8_t1" (golden file stem). */
    std::string Name() const;
};

/**
 * Builds a fresh generator for `config`, seeded with `construction_seed`,
 * with `recorder` attached. Custom factories let tests certify fixtures
 * (e.g. a deliberately planted secret-dependent branch).
 */
using GeneratorFactory =
    std::function<std::unique_ptr<core::EmbeddingGenerator>(
        uint64_t construction_seed, sidechannel::TraceRecorder* recorder)>;

/** The harness's own factory for a subject configuration. */
GeneratorFactory MakeSubjectFactory(const VerifyConfig& config);

/** Deterministic secret-index set `set_index` for a configuration. */
std::vector<int64_t> MakeSecretSet(const VerifyConfig& config,
                                   int set_index);

/** Result of the differential engine on one configuration. */
struct DifferentialResult
{
    VerifyConfig config;
    bool passed = false;
    int sets_run = 0;
    size_t trace_len = 0;   ///< canonical accesses per run
    std::string detail;     ///< first divergent access context on failure
};

/**
 * Run the differential engine: N secret sets, fixed construction seed,
 * canonical bit-identity (deterministic subjects) or shape identity
 * (randomized subjects) across all runs.
 */
DifferentialResult RunDifferential(const VerifyConfig& config);

/** Differential engine over a custom factory (test fixtures). */
DifferentialResult RunDifferentialWith(const VerifyConfig& config,
                                       const GeneratorFactory& factory,
                                       bool expect_bit_identical);

/** Result of the statistical fixed-vs-random leakage check. */
struct StatisticalResult
{
    VerifyConfig config;
    bool passed = false;
    int runs_per_group = 0;
    double cache_chi2 = 0.0;  ///< per-cache-set observation histograms
    double cache_df = 0.0;
    double page_chi2 = 0.0;   ///< per-page observation histograms
    double page_df = 0.0;
    std::string detail;
};

/** Run the fixed-vs-random statistical check on one configuration. */
StatisticalResult RunStatistical(const VerifyConfig& config);

/** Result of the interleaving-fuzz engine on one configuration. */
struct InterleavingResult
{
    VerifyConfig config;
    bool passed = false;
    int runs = 0;          ///< traces compared (sets x interleavings)
    int secret_sets = 0;   ///< secret sets covered
    size_t trace_len = 0;  ///< canonical accesses per run
    std::string detail;    ///< first divergent access context on failure
};

/**
 * Interleaving fuzz for queue-fed subjects (the ORAM proxy): every secret
 * set is submitted under `interleavings` seeded arrival-order
 * permutations, each against a freshly built generator with the identical
 * construction seed, and every canonical trace must be shape-identical to
 * the first. This is the concurrency side of the obliviousness argument:
 * the physical schedule may depend on arrival order (a public input) only
 * through the request count, never through the (secret) ids or their
 * duplicate structure.
 */
InterleavingResult RunInterleavingFuzz(const VerifyConfig& config,
                                       int interleavings);

/** Statistical check over a custom factory (negative controls). */
StatisticalResult RunStatisticalWith(const VerifyConfig& config,
                                     const GeneratorFactory& factory);

/**
 * Factory for durable, file-backed RAW ORAM generators under
 * `scratch_dir` (each call gets a private subdirectory). Every instance
 * is warmed up with one eviction period of public accesses (id = i mod
 * rows) and checkpointed, so the certified trace starts from a
 * non-trivial stash/journal state. With `recovered` the warmed instance
 * is then torn down and rebuilt through RawOram::Recover — the returned
 * generator serves from replayed checkpoint + journal state. With
 * `sparse_negative_control` checkpoints use the occupancy-dependent
 * sparse format (DurabilityConfig::unsafe_sparse_checkpoint), the
 * planted leak the statistical engine must reject; combining it with
 * `recovered` makes the factory throw, because recovery refuses sparse
 * checkpoints by design.
 */
GeneratorFactory MakeDurableRawOramFactory(const VerifyConfig& config,
                                           const std::string& scratch_dir,
                                           bool recovered,
                                           bool sparse_negative_control);

/** Result of the recovered-instance certification (durable RAW ORAM). */
struct RecoveredResult
{
    VerifyConfig config;
    bool passed = false;
    size_t trace_len = 0;       ///< canonical accesses per run
    /** Fresh-vs-recovered shape identity on the same secret set. */
    bool shape_passed = false;
    DifferentialResult differential;  ///< across secrets, recovered only
    StatisticalResult statistical;    ///< fixed-vs-random, recovered only
    std::string detail;
};

/**
 * Certify that crash recovery is leakage-free: a recovered instance's
 * canonical trace must be shape-identical to a fresh instance's under
 * the same public schedule (checkpoint history is not allowed to leave a
 * fingerprint in the access pattern), the differential engine must hold
 * across secret sets on recovered instances, and the fixed-vs-random
 * statistical check must accept recovered instances. `scratch_dir` holds
 * the store/checkpoint/journal files and is wiped per generator.
 */
RecoveredResult RunRecovered(const VerifyConfig& config,
                             const std::string& scratch_dir);

/** Trimmed corpus for the (slower) recovered-instance arm. */
std::vector<VerifyConfig> RecoveredCorpus(uint64_t seed);

/**
 * Deterministic fuzz corpus for one subject: at least 8 configurations
 * sweeping table shape, batch size, and thread count (1 vs pooled),
 * derived from `seed`.
 */
std::vector<VerifyConfig> FuzzCorpus(Subject subject, uint64_t seed);

/** Whole-sweep result: every config of every requested subject. */
struct SweepResult
{
    std::vector<DifferentialResult> differential;
    std::vector<StatisticalResult> statistical;
    bool all_passed = true;
};

/**
 * Certify `subjects` across their fuzz corpora: differential engine on
 * every config, plus the statistical check on randomized subjects.
 */
SweepResult RunSweep(const std::vector<Subject>& subjects, uint64_t seed,
                     int secret_sets);

/**
 * Canonical trace of the config's golden run: fixed secret set 0 through
 * a generator built with the config seed. This is what golden snapshots
 * under tests/golden/ pin.
 */
CanonicalTrace GoldenRun(const VerifyConfig& config);

/** One small pinned configuration per certified subject. */
std::vector<VerifyConfig> GoldenConfigs();

}  // namespace secemb::verify
