#include "verify/golden.h"

#include <fstream>
#include <sstream>

namespace secemb::verify {

namespace {

constexpr const char* kMagic = "secemb-canonical-trace v1";

bool
Fail(std::string* error, const std::string& message)
{
    if (error != nullptr) *error = message;
    return false;
}

}  // namespace

std::string
SerializeTrace(const CanonicalTrace& trace, const std::string& config_name)
{
    std::ostringstream os;
    os << kMagic << "\n";
    os << "config " << config_name << "\n";
    os << "regions " << trace.region_names.size() << "\n";
    for (size_t i = 0; i < trace.region_names.size(); ++i) {
        os << "region " << i << " " << trace.region_bytes[i] << " "
           << (trace.region_names[i].empty() ? "<anonymous>"
                                             : trace.region_names[i])
           << "\n";
    }
    os << "accesses " << trace.accesses.size() << "\n";
    for (const CanonicalAccess& a : trace.accesses) {
        os << a.region << " 0x" << std::hex << a.offset << std::dec << " "
           << a.size << " " << (a.is_write ? "W" : "R") << "\n";
    }
    return os.str();
}

bool
ParseTrace(const std::string& text, CanonicalTrace* trace,
           std::string* config_name, std::string* error)
{
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line) || line != kMagic) {
        return Fail(error, "bad magic line (want \"" +
                               std::string(kMagic) + "\")");
    }

    CanonicalTrace out;
    std::string word;
    size_t count = 0;

    if (!(is >> word) || word != "config" || !(is >> word)) {
        return Fail(error, "missing config line");
    }
    if (config_name != nullptr) *config_name = word;

    if (!(is >> word) || word != "regions" || !(is >> count)) {
        return Fail(error, "missing regions header");
    }
    for (size_t i = 0; i < count; ++i) {
        size_t id = 0;
        uint64_t bytes = 0;
        std::string name;
        if (!(is >> word) || word != "region" || !(is >> id >> bytes >> name) ||
            id != i) {
            return Fail(error,
                        "bad region line " + std::to_string(i));
        }
        out.region_names.push_back(name == "<anonymous>" ? "" : name);
        out.region_bytes.push_back(bytes);
    }

    if (!(is >> word) || word != "accesses" || !(is >> count)) {
        return Fail(error, "missing accesses header");
    }
    out.accesses.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        CanonicalAccess a;
        std::string offset_hex, op;
        int64_t region = 0;
        uint64_t size = 0;
        if (!(is >> region >> offset_hex >> size >> op)) {
            return Fail(error,
                        "bad access line " + std::to_string(i));
        }
        if (offset_hex.rfind("0x", 0) != 0 || (op != "R" && op != "W")) {
            return Fail(error,
                        "bad access line " + std::to_string(i));
        }
        a.region = static_cast<int32_t>(region);
        a.offset = std::stoull(offset_hex.substr(2), nullptr, 16);
        a.size = static_cast<uint32_t>(size);
        a.is_write = op == "W";
        out.accesses.push_back(a);
    }

    *trace = std::move(out);
    return true;
}

bool
WriteTraceFile(const std::string& path, const CanonicalTrace& trace,
               const std::string& config_name, std::string* error)
{
    std::ofstream f(path);
    if (!f) return Fail(error, "cannot open " + path + " for writing");
    f << SerializeTrace(trace, config_name);
    f.flush();
    if (!f) return Fail(error, "write failed for " + path);
    return true;
}

bool
ReadTraceFile(const std::string& path, CanonicalTrace* trace,
              std::string* config_name, std::string* error)
{
    std::ifstream f(path);
    if (!f) return Fail(error, "cannot open " + path);
    std::ostringstream content;
    content << f.rdbuf();
    return ParseTrace(content.str(), trace, config_name, error);
}

std::string
GoldenFileName(const std::string& config_name)
{
    return config_name + ".trace";
}

}  // namespace secemb::verify
