#include "verify/harness.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/dhe_generator.h"
#include "core/hybrid.h"
#include "core/paged_generators.h"
#include "core/table_generators.h"
#include "oblivious/vector_scan.h"
#include "oram/sqrt_oram.h"
#include "sidechannel/cache_model.h"
#include "sidechannel/page_channel.h"
#include "tensor/rng.h"

namespace secemb::verify {

namespace {

/// Table size at which the harness's hybrid threshold database switches
/// the hybrid generator from linear scan to DHE (kept small so the fuzz
/// corpus exercises both sides cheaply).
constexpr int64_t kHybridThreshold = 128;

uint64_t
Mix(uint64_t a, uint64_t b)
{
    uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Construction seed shared by every run of the differential engine (and
/// the golden run) for one configuration: identical generator internals,
/// only the secret indices vary.
uint64_t
ConstructionSeed(const VerifyConfig& config)
{
    return Mix(config.seed, 0xc0175eedULL);
}

Tensor
SubjectTable(const VerifyConfig& config, uint64_t construction_seed)
{
    Rng rng(Mix(construction_seed, 0x7ab1eULL));
    return Tensor::Randn({config.rows, config.dim}, rng);
}

std::shared_ptr<dhe::DheEmbedding>
SubjectDhe(const VerifyConfig& config, uint64_t construction_seed,
           int nthreads)
{
    dhe::DheConfig cfg;
    cfg.k = 8;
    cfg.fc_hidden = {8};
    cfg.out_dim = config.dim;
    cfg.hash_buckets = 1 << 16;
    Rng rng(Mix(construction_seed, 0xd4eULL));
    return std::make_shared<dhe::DheEmbedding>(cfg, rng, nthreads);
}

/**
 * Drives the SIMD scan kernel directly with a row-granular trace: one
 * recorded read per table row per batch element, mirroring exactly what
 * LinearScanLookupVec touches (every row, every element, in order).
 */
class VectorScanGenerator : public core::EmbeddingGenerator
{
  public:
    VectorScanGenerator(const Tensor& table, int nthreads)
        : rows_(table.size(0)),
          cols_(table.size(1)),
          nthreads_(nthreads),
          data_(table.data(), table.data() + rows_ * cols_)
    {
        trace_base_ = sidechannel::ProcessAddressSpace().Reserve(
            static_cast<uint64_t>(rows_ * cols_) * sizeof(float), 64,
            "vecscan.table");
    }

    void
    Generate(std::span<const int64_t> indices, Tensor& out) override
    {
        const uint64_t row_bytes =
            static_cast<uint64_t>(cols_) * sizeof(float);
        if (recorder_ != nullptr) {
            // Row-granular trace, recorded in the serial element order the
            // kernel is defined by; the parallel execution below touches
            // the same rows (chunk boundaries are deterministic).
            for (size_t i = 0; i < indices.size(); ++i) {
                for (int64_t r = 0; r < rows_; ++r) {
                    recorder_->Record(
                        trace_base_ + static_cast<uint64_t>(r) * row_bytes,
                        static_cast<uint32_t>(row_bytes), false);
                }
            }
        }
        oblivious::LinearScanLookupBatch(
            data_, rows_, cols_, indices,
            std::span<float>(out.data(),
                             static_cast<size_t>(out.size(0) * cols_)),
            nthreads_);
    }

    int64_t dim() const override { return cols_; }
    int64_t num_rows() const override { return rows_; }
    int64_t MemoryFootprintBytes() const override
    {
        return static_cast<int64_t>(data_.size() * sizeof(float));
    }
    std::string_view name() const override { return "Vector Scan"; }
    bool IsOblivious() const override { return true; }
    void set_nthreads(int nthreads) override { nthreads_ = nthreads; }
    void set_recorder(sidechannel::TraceRecorder* r) override
    {
        recorder_ = r;
    }

  private:
    int64_t rows_;
    int64_t cols_;
    int nthreads_;
    std::vector<float> data_;
    sidechannel::TraceRecorder* recorder_ = nullptr;
    uint64_t trace_base_;
};

/** Square-root ORAM behind the EmbeddingGenerator interface. */
class SqrtOramGenerator : public core::EmbeddingGenerator
{
  public:
    SqrtOramGenerator(const Tensor& table, Rng& rng,
                      sidechannel::TraceRecorder* recorder)
        : rows_(table.size(0)),
          dim_(table.size(1)),
          oram_(rows_, dim_, rng, recorder)
    {
        std::vector<uint32_t> words(
            static_cast<size_t>(rows_ * dim_));
        static_assert(sizeof(float) == sizeof(uint32_t));
        std::memcpy(words.data(), table.data(),
                    words.size() * sizeof(uint32_t));
        oram_.BulkLoad(words);
    }

    void
    Generate(std::span<const int64_t> indices, Tensor& out) override
    {
        std::vector<uint32_t> block(static_cast<size_t>(dim_));
        for (size_t i = 0; i < indices.size(); ++i) {
            oram_.Read(indices[i], block);
            std::memcpy(out.data() + static_cast<int64_t>(i) * dim_,
                        block.data(), block.size() * sizeof(uint32_t));
        }
    }

    int64_t dim() const override { return dim_; }
    int64_t num_rows() const override { return rows_; }
    int64_t MemoryFootprintBytes() const override
    {
        return oram_.MemoryFootprintBytes();
    }
    std::string_view name() const override { return "Sqrt ORAM"; }
    bool IsOblivious() const override { return true; }

  private:
    int64_t rows_;
    int64_t dim_;
    oram::SqrtOram oram_;
};

core::ThresholdTable
HarnessThresholds()
{
    core::ThresholdTable t;
    t.Add({1, 1, kHybridThreshold});
    return t;
}

/// Bag boundaries for pooled generation: deterministic mix of bag sizes
/// (including an empty bag) that always consumes exactly `batch` indices.
std::vector<int64_t>
PooledOffsets(int batch)
{
    static constexpr int kPattern[] = {1, 2, 0, 3};
    std::vector<int64_t> offsets{0};
    int consumed = 0, p = 0;
    while (consumed < batch) {
        const int bag =
            std::min(kPattern[p % 4], batch - consumed);
        consumed += bag;
        offsets.push_back(consumed);
        p++;
    }
    return offsets;
}

/// One run: build a fresh generator, drop the construction-time trace,
/// record the batch, canonicalize.
CanonicalTrace
RunOne(const VerifyConfig& config, const GeneratorFactory& factory,
       uint64_t construction_seed, const std::vector<int64_t>& secrets)
{
    sidechannel::TraceRecorder rec;
    auto gen = factory(construction_seed, &rec);
    if (gen == nullptr) {
        throw std::runtime_error("generator factory returned null");
    }
    rec.Clear();  // focus the trace on query-time accesses
    if (config.pooled) {
        const auto offsets = PooledOffsets(config.batch);
        Tensor out({static_cast<int64_t>(offsets.size()) - 1, gen->dim()});
        gen->GeneratePooled(secrets, offsets, out);
    } else {
        Tensor out({static_cast<int64_t>(secrets.size()), gen->dim()});
        gen->Generate(secrets, out);
    }
    return Canonicalize(rec.trace());
}

/// Two-sample chi-squared over two count histograms sharing a key space.
struct ChiSquared
{
    double chi2 = 0.0;
    double df = 0.0;
};

ChiSquared
TwoSampleChiSquared(const std::map<uint64_t, int64_t>& a,
                    const std::map<uint64_t, int64_t>& b)
{
    double total_a = 0.0, total_b = 0.0;
    for (const auto& [k, v] : a) total_a += static_cast<double>(v);
    for (const auto& [k, v] : b) total_b += static_cast<double>(v);
    ChiSquared r;
    if (total_a <= 0.0 || total_b <= 0.0) return r;

    std::map<uint64_t, std::pair<double, double>> bins;
    for (const auto& [k, v] : a) bins[k].first = static_cast<double>(v);
    for (const auto& [k, v] : b) bins[k].second = static_cast<double>(v);

    const double total = total_a + total_b;
    for (const auto& [k, ab] : bins) {
        const double row = ab.first + ab.second;
        if (row <= 0.0) continue;
        const double ea = row * total_a / total;
        const double eb = row * total_b / total;
        r.chi2 += (ab.first - ea) * (ab.first - ea) / ea +
                  (ab.second - eb) * (ab.second - eb) / eb;
        r.df += 1.0;
    }
    r.df = std::max(0.0, r.df - 1.0);
    return r;
}

/// Pool per-run histograms selected by `group` (0 or 1) under `labels`.
std::map<uint64_t, int64_t>
PoolByLabel(const std::vector<std::map<uint64_t, int64_t>>& runs,
            const std::vector<int>& labels, int group)
{
    std::map<uint64_t, int64_t> pooled;
    for (size_t i = 0; i < runs.size(); ++i) {
        if (labels[i] != group) continue;
        for (const auto& [k, v] : runs[i]) pooled[k] += v;
    }
    return pooled;
}

/**
 * Permutation-calibrated two-sample test. ORAM traces are *clustered*
 * samples — one leaf draw yields a whole correlated path of
 * observations — so the raw chi-squared statistic is overdispersed
 * relative to its nominal distribution and no analytic bound is safe on
 * both sides. Instead the null distribution is estimated from the data
 * itself: re-split the same runs with shuffled group labels (which
 * destroys any fixed-vs-random signal but preserves the clustering) and
 * compare the true split's statistic against the permuted ones.
 *
 * Accept if observed <= 1.5 * max(permuted) + 10: under H0 the observed
 * value is one more draw from the permuted distribution — exceeding the
 * maximum of 60 such draws by another 50% is vanishingly unlikely —
 * while a secret-dependent pattern concentrates the fixed group's
 * histogram and pushes the observed statistic far beyond anything a
 * mixed re-split can produce (the planted index-lookup baseline lands at
 * ~2.2x the permuted max). All randomness is seeded: a verdict is
 * reproducible.
 */
struct PermutationOutcome
{
    double observed_chi2 = 0.0;
    double df = 0.0;
    double max_permuted = 0.0;
    bool accepted = true;
};

PermutationOutcome
PermutationTest(const std::vector<std::map<uint64_t, int64_t>>& runs,
                const std::vector<int>& labels, uint64_t seed)
{
    constexpr int kPermutations = 60;
    PermutationOutcome out;
    const ChiSquared obs = TwoSampleChiSquared(
        PoolByLabel(runs, labels, 0), PoolByLabel(runs, labels, 1));
    out.observed_chi2 = obs.chi2;
    out.df = obs.df;

    Rng rng(Mix(seed, 0xbe57ULL));
    std::vector<int> shuffled = labels;
    for (int p = 0; p < kPermutations; ++p) {
        for (size_t i = shuffled.size(); i > 1; --i) {
            const size_t j = rng.NextBounded(i);
            std::swap(shuffled[i - 1], shuffled[j]);
        }
        const ChiSquared perm = TwoSampleChiSquared(
            PoolByLabel(runs, shuffled, 0),
            PoolByLabel(runs, shuffled, 1));
        out.max_permuted = std::max(out.max_permuted, perm.chi2);
    }
    out.accepted = out.observed_chi2 <= 1.5 * out.max_permuted + 10.0;
    if (std::getenv("SECEMB_VERIFY_DEBUG") != nullptr) {
        std::fprintf(stderr, "permtest obs=%.2f max_perm=%.2f df=%.0f\n",
                     out.observed_chi2, out.max_permuted, out.df);
    }
    return out;
}

void
AccumulateCacheSets(const sidechannel::CacheModel& cache,
                    const std::vector<sidechannel::MemoryAccess>& trace,
                    std::map<uint64_t, int64_t>& hist)
{
    // One observation per access, at the set of its first line. The
    // remaining lines of a multi-line access are a deterministic function
    // of (region, offset, size) — counting them would add perfectly
    // correlated observations, inflating the chi-squared statistic's
    // variance (clustered sampling) without adding information. Access
    // sizes themselves are pinned by the shape comparison.
    for (const auto& a : trace) {
        hist[static_cast<uint64_t>(cache.SetIndex(a.addr))]++;
    }
}

void
AccumulatePages(const sidechannel::PageFaultObserver& observer,
                const std::vector<sidechannel::MemoryAccess>& trace,
                std::map<uint64_t, int64_t>& hist)
{
    for (const uint64_t page : observer.ObservePages(trace)) {
        hist[page]++;
    }
}

}  // namespace

const char*
SubjectName(Subject s)
{
    switch (s) {
      case Subject::kLinearScan: return "scan";
      case Subject::kVectorScan: return "vecscan";
      case Subject::kDhe: return "dhe";
      case Subject::kHybrid: return "hybrid";
      case Subject::kTreeOram: return "tree_oram";
      case Subject::kSqrtOram: return "sqrt_oram";
      case Subject::kIndexLookup: return "index_lookup";
      case Subject::kProxyOram: return "proxy_oram";
      case Subject::kPagedScan: return "paged_scan";
      case Subject::kRawOram: return "raw_oram";
    }
    return "unknown";
}

bool
ParseSubject(const std::string& name, Subject* out)
{
    for (Subject s :
         {Subject::kLinearScan, Subject::kVectorScan, Subject::kDhe,
          Subject::kHybrid, Subject::kTreeOram, Subject::kSqrtOram,
          Subject::kIndexLookup, Subject::kProxyOram,
          Subject::kPagedScan, Subject::kRawOram}) {
        if (name == SubjectName(s)) {
            *out = s;
            return true;
        }
    }
    return false;
}

std::vector<Subject>
AllSecureSubjects()
{
    return {Subject::kLinearScan, Subject::kVectorScan, Subject::kDhe,
            Subject::kHybrid,     Subject::kTreeOram,   Subject::kSqrtOram,
            Subject::kProxyOram,  Subject::kPagedScan,  Subject::kRawOram};
}

bool
SubjectIsDeterministic(Subject s)
{
    switch (s) {
      case Subject::kTreeOram:
      case Subject::kSqrtOram:
      case Subject::kProxyOram:
      case Subject::kRawOram:
        return false;
      default:
        return true;
    }
}

std::string
VerifyConfig::Name() const
{
    std::ostringstream os;
    os << SubjectName(subject);
    if (subject == Subject::kTreeOram) {
        os << (variant == 0 ? "_path" : "_circuit");
    }
    os << "_r" << rows << "_d" << dim << "_b" << batch << "_t" << nthreads;
    if (pooled) os << "_pooled";
    return os.str();
}

GeneratorFactory
MakeSubjectFactory(const VerifyConfig& config)
{
    const VerifyConfig c = config;
    switch (config.subject) {
      case Subject::kLinearScan:
        return [c](uint64_t seed, sidechannel::TraceRecorder* rec) {
            auto gen = std::make_unique<core::LinearScanTable>(
                SubjectTable(c, seed));
            gen->set_nthreads(c.nthreads);
            gen->set_recorder(rec);
            return std::unique_ptr<core::EmbeddingGenerator>(
                std::move(gen));
        };
      case Subject::kVectorScan:
        return [c](uint64_t seed, sidechannel::TraceRecorder* rec) {
            auto gen = std::make_unique<VectorScanGenerator>(
                SubjectTable(c, seed), c.nthreads);
            gen->set_recorder(rec);
            return std::unique_ptr<core::EmbeddingGenerator>(
                std::move(gen));
        };
      case Subject::kDhe:
        return [c](uint64_t seed, sidechannel::TraceRecorder* rec) {
            auto gen = std::make_unique<core::DheGenerator>(
                SubjectDhe(c, seed, c.nthreads), c.rows);
            gen->set_recorder(rec);
            return std::unique_ptr<core::EmbeddingGenerator>(
                std::move(gen));
        };
      case Subject::kHybrid:
        return [c](uint64_t seed, sidechannel::TraceRecorder* rec) {
            auto gen = std::make_unique<core::HybridGenerator>(
                SubjectDhe(c, seed, c.nthreads), c.rows,
                HarnessThresholds(), c.batch, c.nthreads);
            gen->set_recorder(rec);
            return std::unique_ptr<core::EmbeddingGenerator>(
                std::move(gen));
        };
      case Subject::kTreeOram:
        return [c](uint64_t seed, sidechannel::TraceRecorder* rec) {
            const oram::OramKind kind = c.variant == 0
                                            ? oram::OramKind::kPath
                                            : oram::OramKind::kCircuit;
            Rng rng(Mix(seed, 0x07a3ULL));
            oram::OramParams params = oram::OramParams::Defaults(kind);
            params.recorder = rec;
            return std::unique_ptr<core::EmbeddingGenerator>(
                std::make_unique<core::OramTable>(SubjectTable(c, seed),
                                                  kind, rng, &params));
        };
      case Subject::kSqrtOram:
        return [c](uint64_t seed, sidechannel::TraceRecorder* rec) {
            Rng rng(Mix(seed, 0x5047ULL));
            return std::unique_ptr<core::EmbeddingGenerator>(
                std::make_unique<SqrtOramGenerator>(SubjectTable(c, seed),
                                                    rng, rec));
        };
      case Subject::kIndexLookup:
        return [c](uint64_t seed, sidechannel::TraceRecorder* rec) {
            auto gen = std::make_unique<core::TableLookup>(
                SubjectTable(c, seed));
            gen->set_recorder(rec);
            return std::unique_ptr<core::EmbeddingGenerator>(
                std::move(gen));
        };
      case Subject::kPagedScan:
        return [c](uint64_t seed, sidechannel::TraceRecorder* rec) {
            // Small pages and a deliberately tight cache so the certified
            // page schedule is exercised under constant eviction churn.
            store::StoreConfig sc;
            sc.backend = store::StoreBackend::kMemory;
            sc.page_bytes = 128;
            sc.cache_pages = 4;
            auto gen = std::make_unique<core::PagedScanTable>(
                SubjectTable(c, seed), sc);
            gen->set_nthreads(c.nthreads);
            gen->set_recorder(rec);
            return std::unique_ptr<core::EmbeddingGenerator>(
                std::move(gen));
        };
      case Subject::kRawOram:
        return [c](uint64_t seed, sidechannel::TraceRecorder* rec) {
            Rng rng(Mix(seed, 0x0c8aULL));
            store::StoreConfig sc;
            sc.backend = store::StoreBackend::kMemory;
            sc.page_bytes = 384;  // Z in [6, 24] over the corpus dims
            sc.cache_pages = 4;
            store::RawOramConfig rc;
            rc.recorder = rec;
            return std::unique_ptr<core::EmbeddingGenerator>(
                std::make_unique<core::RawOramTable>(SubjectTable(c, seed),
                                                     rng, sc, rc));
        };
      case Subject::kProxyOram:
        return [c](uint64_t seed, sidechannel::TraceRecorder* rec) {
            Rng rng(Mix(seed, 0x9c0aULL));
            oram::OramParams params =
                oram::OramParams::Defaults(oram::OramKind::kPath);
            params.recorder = rec;
            oram::ProxyConfig pc;
            pc.batch_window = 4;
            pc.nthreads = c.nthreads;
            return std::unique_ptr<core::EmbeddingGenerator>(
                std::make_unique<core::ProxiedOramTable>(
                    SubjectTable(c, seed), oram::OramKind::kPath, rng,
                    &params, pc));
        };
    }
    throw std::invalid_argument("unknown verify subject");
}

std::vector<int64_t>
MakeSecretSet(const VerifyConfig& config, int set_index)
{
    std::vector<int64_t> secrets(static_cast<size_t>(config.batch));
    if (set_index == 0) {
        // A readable fixed pattern for golden runs and the TVLA fixed
        // group; stride 7 spreads it across rows for small batches.
        for (size_t i = 0; i < secrets.size(); ++i) {
            secrets[i] = static_cast<int64_t>(i * 7 + 3) % config.rows;
        }
        return secrets;
    }
    Rng rng(Mix(config.seed,
                0x5ec3e75ULL + static_cast<uint64_t>(set_index)));
    for (auto& s : secrets) {
        s = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(config.rows)));
    }
    return secrets;
}

DifferentialResult
RunDifferentialWith(const VerifyConfig& config,
                    const GeneratorFactory& factory,
                    bool expect_bit_identical)
{
    DifferentialResult result;
    result.config = config;
    const uint64_t cseed = ConstructionSeed(config);
    const int sets = std::max(2, config.secret_sets);

    CanonicalTrace reference =
        RunOne(config, factory, cseed, MakeSecretSet(config, 0));
    result.trace_len = reference.accesses.size();
    result.sets_run = 1;
    for (int s = 1; s < sets; ++s) {
        const CanonicalTrace trace =
            RunOne(config, factory, cseed, MakeSecretSet(config, s));
        const TraceDivergence d =
            expect_bit_identical ? CompareCanonical(reference, trace)
                                 : CompareCanonicalShape(reference, trace);
        result.sets_run++;
        if (d.diverged) {
            std::ostringstream os;
            os << config.Name() << ": secret set " << s
               << " diverges from set 0: " << d.detail;
            result.detail = os.str();
            return result;
        }
    }
    result.passed = true;
    return result;
}

DifferentialResult
RunDifferential(const VerifyConfig& config)
{
    return RunDifferentialWith(config, MakeSubjectFactory(config),
                               SubjectIsDeterministic(config.subject));
}

StatisticalResult
RunStatisticalWith(const VerifyConfig& config,
                   const GeneratorFactory& factory)
{
    StatisticalResult result;
    result.config = config;
    result.runs_per_group = std::max(12, 2 * config.secret_sets);

    const sidechannel::CacheModel cache{sidechannel::CacheConfig{}};
    const sidechannel::PageFaultObserver observer;
    const std::vector<int64_t> fixed = MakeSecretSet(config, 0);

    std::vector<std::map<uint64_t, int64_t>> cache_runs, page_runs;
    std::vector<int> labels;  ///< 0 = fixed secrets, 1 = random secrets
    for (int run = 0; run < result.runs_per_group; ++run) {
        for (int group = 0; group < 2; ++group) {
            // The construction seed varies per run in BOTH groups: the
            // generator's own randomness (ORAM leaves, epoch keys) is not
            // the secret under test, the indices are. Holding it fixed
            // would concentrate the fixed group's histogram and reject
            // secure randomized ORAMs.
            const uint64_t cseed = Mix(
                config.seed, 0xabcdULL + static_cast<uint64_t>(
                                             run * 2 + group));
            const std::vector<int64_t> secrets =
                group == 0 ? fixed
                           : MakeSecretSet(config, 1000 + run);
            const CanonicalTrace trace =
                RunOne(config, factory, cseed, secrets);
            const auto model = ToModelTrace(trace);
            cache_runs.emplace_back();
            AccumulateCacheSets(cache, model, cache_runs.back());
            page_runs.emplace_back();
            AccumulatePages(observer, model, page_runs.back());
            labels.push_back(group);
        }
    }

    const PermutationOutcome cache_out =
        PermutationTest(cache_runs, labels, config.seed);
    const PermutationOutcome page_out =
        PermutationTest(page_runs, labels, Mix(config.seed, 0x9a6eULL));
    result.cache_chi2 = cache_out.observed_chi2;
    result.cache_df = cache_out.df;
    result.page_chi2 = page_out.observed_chi2;
    result.page_df = page_out.df;

    result.passed = cache_out.accepted && page_out.accepted;
    if (!result.passed) {
        std::ostringstream os;
        os << config.Name()
           << ": fixed-vs-random histograms distinguishable:";
        if (!cache_out.accepted) {
            os << " cache chi2=" << cache_out.observed_chi2
               << " vs permuted max " << cache_out.max_permuted
               << " (df=" << cache_out.df << ")";
        }
        if (!page_out.accepted) {
            os << " page chi2=" << page_out.observed_chi2
               << " vs permuted max " << page_out.max_permuted
               << " (df=" << page_out.df << ")";
        }
        result.detail = os.str();
    }
    return result;
}

StatisticalResult
RunStatistical(const VerifyConfig& config)
{
    return RunStatisticalWith(config, MakeSubjectFactory(config));
}

GeneratorFactory
MakeDurableRawOramFactory(const VerifyConfig& config,
                          const std::string& scratch_dir, bool recovered,
                          bool sparse_negative_control)
{
    const VerifyConfig c = config;
    auto next = std::make_shared<std::atomic<uint64_t>>(0);
    return [c, scratch_dir, recovered, sparse_negative_control, next](
               uint64_t seed, sidechannel::TraceRecorder* rec)
               -> std::unique_ptr<core::EmbeddingGenerator> {
        namespace fs = std::filesystem;
        const std::string dir =
            scratch_dir + "/g" +
            std::to_string(next->fetch_add(1, std::memory_order_relaxed));
        std::error_code ec;
        fs::remove_all(dir, ec);
        fs::create_directories(dir, ec);
        if (ec) {
            throw std::runtime_error("cannot create scratch dir " + dir);
        }

        store::StoreConfig sc;
        sc.backend = store::StoreBackend::kFile;
        sc.path = dir + "/pages.bin";
        sc.page_bytes = 384;  // match the in-memory raw_oram subject
        sc.cache_pages = 4;
        store::RawOramConfig rc;
        rc.durability.dir = dir;
        // The warmup below runs exactly one eviction period, so the
        // recorded batch starts right after a drain and finishes before
        // the next eviction: stash occupancy during the batch is the
        // running distinct-id count of the secrets, undiluted by
        // mid-batch drains. A content-dependent checkpoint format has
        // nowhere to hide; the sealed (public-size) format is unchanged
        // by any of this.
        rc.eviction_period = std::max<int64_t>(2 * c.batch, 16);
        // Small interval so auto checkpoints fire INSIDE the recorded
        // batch — the write schedule under certification includes
        // mid-traffic checkpoints, where a content-dependent format
        // would leak.
        rc.durability.checkpoint_interval = 2;
        rc.durability.unsafe_sparse_checkpoint = sparse_negative_control;
        rc.posmap.enable_recursion = false;
        rc.recorder = rec;

        Rng rng(Mix(seed, 0xd0c8aULL));
        auto gen = std::make_unique<core::RawOramTable>(
            SubjectTable(c, seed), rng, sc, rc);
        // Public warmup — one eviction period of id = i mod rows — then a
        // sealed checkpoint. Both arms share this schedule, so fresh and
        // recovered instances face the recorded batch from the same
        // (public) checkpoint/journal phase.
        const int64_t warmup = rc.eviction_period;
        std::vector<int64_t> ids(static_cast<size_t>(warmup));
        for (int64_t i = 0; i < warmup; ++i) {
            ids[static_cast<size_t>(i)] = i % c.rows;
        }
        Tensor warm({warmup, c.dim});
        gen->Generate(ids, warm);
        store::ThrowIfError(gen->CheckpointStorage());
        if (!recovered) return gen;

        gen.reset();  // tear down: only the on-disk state survives
        Rng recovery_rng(Mix(seed, 0x2ec0fe2ULL));
        std::unique_ptr<core::RawOramTable> back;
        store::ThrowIfError(core::RawOramTable::Recover(
            c.rows, c.dim, recovery_rng, sc, rc, &back));
        return back;
    };
}

RecoveredResult
RunRecovered(const VerifyConfig& config, const std::string& scratch_dir)
{
    RecoveredResult result;
    result.config = config;
    const uint64_t cseed = ConstructionSeed(config);
    const GeneratorFactory fresh = MakeDurableRawOramFactory(
        config, scratch_dir + "/fresh", false, false);
    const GeneratorFactory recovered = MakeDurableRawOramFactory(
        config, scratch_dir + "/recovered", true, false);

    // 1. A recovered instance must be indistinguishable in shape from a
    //    fresh one under the same secrets: recovery leaves no
    //    fingerprint in the access pattern.
    const std::vector<int64_t> secrets = MakeSecretSet(config, 0);
    const CanonicalTrace a = RunOne(config, fresh, cseed, secrets);
    const CanonicalTrace b = RunOne(config, recovered, cseed, secrets);
    result.trace_len = a.accesses.size();
    const TraceDivergence d = CompareCanonicalShape(a, b);
    result.shape_passed = !d.diverged;
    if (d.diverged) {
        result.detail = config.Name() +
                        ": recovered instance diverges in shape from a "
                        "fresh instance: " +
                        d.detail;
    }
    // 2. Shape identity across secret sets, on recovered instances only.
    result.differential = RunDifferentialWith(config, recovered, false);
    // 3. Fixed-vs-random statistical check on recovered instances.
    result.statistical = RunStatisticalWith(config, recovered);

    result.passed = result.shape_passed && result.differential.passed &&
                    result.statistical.passed;
    if (!result.passed && result.detail.empty()) {
        result.detail = !result.differential.passed
                            ? result.differential.detail
                            : result.statistical.detail;
    }
    std::error_code ec;
    std::filesystem::remove_all(scratch_dir, ec);
    return result;
}

std::vector<VerifyConfig>
RecoveredCorpus(uint64_t seed)
{
    // Durable runs build, checkpoint, and recover file-backed instances
    // per trace — trim the sweep to a representative sample.
    const std::vector<VerifyConfig> full =
        FuzzCorpus(Subject::kRawOram, seed);
    std::vector<VerifyConfig> corpus;
    for (size_t i = 0; i < full.size() && corpus.size() < 3; i += 4) {
        corpus.push_back(full[i]);
    }
    return corpus;
}

InterleavingResult
RunInterleavingFuzz(const VerifyConfig& config, int interleavings)
{
    InterleavingResult result;
    result.config = config;
    const uint64_t cseed = ConstructionSeed(config);
    const GeneratorFactory factory = MakeSubjectFactory(config);
    const int sets = std::max(2, config.secret_sets);
    const int perms = std::max(1, interleavings);

    CanonicalTrace reference;
    for (int set = 0; set < sets; ++set) {
        const std::vector<int64_t> base = MakeSecretSet(config, set);
        for (int k = 0; k < perms; ++k) {
            // Permutation k is shared across secret sets so every trace
            // pair differs in exactly one variable (ids or order).
            std::vector<int64_t> order = base;
            if (k > 0) {
                Rng perm(Mix(config.seed,
                             0x17e2ULL + static_cast<uint64_t>(k)));
                for (size_t i = order.size(); i > 1; --i) {
                    const size_t j =
                        static_cast<size_t>(perm.NextBounded(i));
                    std::swap(order[i - 1], order[j]);
                }
            }
            const CanonicalTrace trace =
                RunOne(config, factory, cseed, order);
            if (result.runs == 0) {
                reference = trace;
                result.trace_len = trace.accesses.size();
            } else {
                const TraceDivergence d =
                    CompareCanonicalShape(reference, trace);
                if (d.diverged) {
                    std::ostringstream os;
                    os << config.Name() << ": secret set " << set
                       << " interleaving " << k
                       << " diverges in shape from the reference run: "
                       << d.detail;
                    result.detail = os.str();
                    result.runs++;
                    return result;
                }
            }
            result.runs++;
        }
        result.secret_sets++;
    }
    result.passed = true;
    return result;
}

std::vector<VerifyConfig>
FuzzCorpus(Subject subject, uint64_t seed)
{
    constexpr int kConfigs = 10;
    // Row pools: hybrid alternates both sides of kHybridThreshold; the
    // ORAMs stay small enough for per-config differential + statistical
    // runs to remain fast.
    const std::vector<int64_t> rows_small{16, 33, 48, 64};
    const std::vector<int64_t> rows_large{128, 160, 256};
    const std::vector<int64_t> dims{4, 8, 16};
    const std::vector<int64_t> dims_with_tail{4, 6, 8, 16};
    const std::vector<int> batches{1, 3, 8};
    const std::vector<int> threads{1, 4};

    Rng rng(Mix(seed, static_cast<uint64_t>(subject) + 0xf022ULL));
    auto pick = [&rng](const auto& pool) {
        return pool[rng.NextBounded(pool.size())];
    };

    std::vector<VerifyConfig> corpus;
    for (int i = 0; i < kConfigs; ++i) {
        VerifyConfig c;
        c.subject = subject;
        if (subject == Subject::kHybrid) {
            // Cover both the scan side and the DHE side of the threshold.
            c.rows = i % 2 == 0 ? pick(rows_small) : pick(rows_large);
        } else {
            c.rows = pick(rows_small);
        }
        c.dim = subject == Subject::kVectorScan ? pick(dims_with_tail)
                                                : pick(dims);
        c.batch = pick(batches);
        c.nthreads = pick(threads);
        c.variant = subject == Subject::kTreeOram ? i % 2 : 0;
        // Pooled generation goes through a distinct code path for the
        // scan; exercise it on a third of the scan/hybrid configs.
        c.pooled = (subject == Subject::kLinearScan ||
                    subject == Subject::kHybrid ||
                    subject == Subject::kPagedScan) &&
                   i % 3 == 2;
        c.secret_sets = 4;
        c.seed = Mix(seed, 0xc0fU + static_cast<uint64_t>(i));
        corpus.push_back(c);
    }
    return corpus;
}

SweepResult
RunSweep(const std::vector<Subject>& subjects, uint64_t seed,
         int secret_sets)
{
    SweepResult sweep;
    for (const Subject subject : subjects) {
        for (VerifyConfig config : FuzzCorpus(subject, seed)) {
            if (secret_sets > 0) config.secret_sets = secret_sets;
            DifferentialResult d = RunDifferential(config);
            sweep.all_passed = sweep.all_passed && d.passed;
            sweep.differential.push_back(std::move(d));
            if (!SubjectIsDeterministic(subject)) {
                StatisticalResult s = RunStatistical(config);
                sweep.all_passed = sweep.all_passed && s.passed;
                sweep.statistical.push_back(std::move(s));
            }
        }
    }
    return sweep;
}

CanonicalTrace
GoldenRun(const VerifyConfig& config)
{
    return RunOne(config, MakeSubjectFactory(config),
                  ConstructionSeed(config), MakeSecretSet(config, 0));
}

std::vector<VerifyConfig>
GoldenConfigs()
{
    std::vector<VerifyConfig> configs;
    for (const Subject subject : AllSecureSubjects()) {
        VerifyConfig c;
        c.subject = subject;
        c.rows = 16;
        c.dim = 4;
        c.batch = 3;
        c.nthreads = 1;
        c.variant = 0;
        c.seed = 42;
        configs.push_back(c);
    }
    return configs;
}

}  // namespace secemb::verify
