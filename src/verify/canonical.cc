#include "verify/canonical.h"

#include <map>
#include <sstream>

namespace secemb::verify {

std::string
CanonicalTrace::RegionName(int32_t region) const
{
    if (region < 0) return "<unregistered>";
    const size_t i = static_cast<size_t>(region);
    if (i >= region_names.size()) return "<region " + std::to_string(region) + ">";
    return region_names[i].empty() ? "<anonymous>" : region_names[i];
}

CanonicalTrace
Canonicalize(const std::vector<sidechannel::MemoryAccess>& trace,
             const sidechannel::AddressSpace& space)
{
    CanonicalTrace out;
    out.accesses.reserve(trace.size());
    // Raw region base -> canonical id, assigned in first-touch order.
    std::map<uint64_t, int32_t> canon_ids;
    for (const auto& a : trace) {
        const sidechannel::AddressRegion* region = space.Find(a.addr);
        CanonicalAccess c;
        c.is_write = a.is_write;
        c.size = a.size;
        if (region == nullptr) {
            c.region = -1;
            c.offset = a.addr;
        } else {
            auto [it, inserted] = canon_ids.try_emplace(
                region->base,
                static_cast<int32_t>(out.region_names.size()));
            if (inserted) {
                out.region_names.push_back(region->name);
                out.region_bytes.push_back(region->bytes);
            }
            c.region = it->second;
            c.offset = a.addr - region->base;
        }
        out.accesses.push_back(c);
    }
    return out;
}

CanonicalTrace
Canonicalize(const std::vector<sidechannel::MemoryAccess>& trace)
{
    return Canonicalize(trace, sidechannel::ProcessAddressSpace());
}

std::string
FormatAccess(const CanonicalTrace& t, size_t index)
{
    if (index >= t.accesses.size()) {
        return "<end of trace (len " + std::to_string(t.accesses.size()) +
               ")>";
    }
    const CanonicalAccess& a = t.accesses[index];
    std::ostringstream os;
    os << t.RegionName(a.region) << "+0x" << std::hex << a.offset
       << std::dec << " " << a.size << "B " << (a.is_write ? "W" : "R");
    return os.str();
}

namespace {

TraceDivergence
Diverge(const CanonicalTrace& a, const CanonicalTrace& b, size_t i,
        const char* what)
{
    TraceDivergence d;
    d.diverged = true;
    d.index = i;
    std::ostringstream os;
    os << what << " at access " << i << ": a=" << FormatAccess(a, i)
       << " vs b=" << FormatAccess(b, i) << " (len(a)=" << a.accesses.size()
       << " len(b)=" << b.accesses.size() << ")";
    d.detail = os.str();
    return d;
}

bool
SameRegionIdentity(const CanonicalTrace& a, const CanonicalTrace& b,
                   const CanonicalAccess& x, const CanonicalAccess& y)
{
    if (x.region != y.region) return false;
    if (x.region < 0) return true;
    // Same canonical id must also mean the same kind and size of region,
    // or the comparison would equate e.g. a stash with a posmap.
    const size_t i = static_cast<size_t>(x.region);
    return a.region_names[i] == b.region_names[i] &&
           a.region_bytes[i] == b.region_bytes[i];
}

}  // namespace

TraceDivergence
CompareCanonical(const CanonicalTrace& a, const CanonicalTrace& b)
{
    const size_t n = std::min(a.accesses.size(), b.accesses.size());
    for (size_t i = 0; i < n; ++i) {
        const CanonicalAccess& x = a.accesses[i];
        const CanonicalAccess& y = b.accesses[i];
        if (!SameRegionIdentity(a, b, x, y)) {
            return Diverge(a, b, i, "region mismatch");
        }
        if (x.region < 0 || y.region < 0) {
            // Unregistered addresses cannot be rebased: treat any such
            // access as divergent so holes in instrumentation never pass
            // silently.
            return Diverge(a, b, i, "unregistered address");
        }
        if (!(x == y)) return Diverge(a, b, i, "access mismatch");
    }
    if (a.accesses.size() != b.accesses.size()) {
        return Diverge(a, b, n, "length mismatch");
    }
    return {};
}

TraceDivergence
CompareCanonicalShape(const CanonicalTrace& a, const CanonicalTrace& b)
{
    const size_t n = std::min(a.accesses.size(), b.accesses.size());
    for (size_t i = 0; i < n; ++i) {
        const CanonicalAccess& x = a.accesses[i];
        const CanonicalAccess& y = b.accesses[i];
        if (!SameRegionIdentity(a, b, x, y)) {
            return Diverge(a, b, i, "region mismatch");
        }
        if (x.region < 0 || y.region < 0) {
            return Diverge(a, b, i, "unregistered address");
        }
        if (x.size != y.size || x.is_write != y.is_write) {
            return Diverge(a, b, i, "shape mismatch");
        }
    }
    if (a.accesses.size() != b.accesses.size()) {
        return Diverge(a, b, n, "length mismatch");
    }
    return {};
}

std::vector<sidechannel::MemoryAccess>
ToModelTrace(const CanonicalTrace& t)
{
    std::vector<sidechannel::MemoryAccess> out;
    out.reserve(t.accesses.size());
    for (const auto& a : t.accesses) {
        sidechannel::MemoryAccess m;
        m.size = a.size;
        m.is_write = a.is_write;
        m.addr = a.region < 0
                     ? a.offset
                     : (static_cast<uint64_t>(a.region) + 1) *
                               kCanonicalRegionStride +
                           a.offset;
        out.push_back(m);
    }
    return out;
}

}  // namespace secemb::verify
