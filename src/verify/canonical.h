#pragma once

/**
 * @file
 * Trace canonicalization for the obliviousness certification harness.
 *
 * Raw traces carry absolute virtual addresses handed out by the process
 * AddressSpace; two runs of the same workload (fresh generator instances,
 * different construction order, different threads) land in different
 * regions even when their access *patterns* are identical — exactly the
 * situation ASLR creates for a real attacker. Canonicalization rebases a
 * trace against the registered regions and renumbers regions in order of
 * first touch, collapsing the trace to a (region, offset, size, op)
 * stream that is equal across runs iff the access patterns are equal.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sidechannel/trace.h"

namespace secemb::verify {

/** One canonicalized access: region id by first-touch order + offset. */
struct CanonicalAccess
{
    int32_t region;    ///< first-touch ordinal, or -1 if unregistered
    bool is_write;
    uint32_t size;     ///< bytes touched contiguously
    uint64_t offset;   ///< byte offset within the region (raw addr if -1)

    bool operator==(const CanonicalAccess&) const = default;
};

/** A canonical trace plus the region table it refers to. */
struct CanonicalTrace
{
    std::vector<CanonicalAccess> accesses;
    /** Canonical region id -> name (from AddressRegion reservation). */
    std::vector<std::string> region_names;
    /** Canonical region id -> reserved size in bytes. */
    std::vector<uint64_t> region_bytes;

    /** Region name for diagnostics; handles -1 and stale ids. */
    std::string RegionName(int32_t region) const;
};

/**
 * Rebase `trace` against the regions registered in `space`. Accesses whose
 * address lies in no registered region keep their raw address as the
 * offset under region -1 (they defeat canonical comparison on purpose:
 * every instrumented structure is supposed to reserve its trace range).
 */
CanonicalTrace Canonicalize(const std::vector<sidechannel::MemoryAccess>& trace,
                            const sidechannel::AddressSpace& space);

/** Convenience: canonicalize against ProcessAddressSpace(). */
CanonicalTrace Canonicalize(const std::vector<sidechannel::MemoryAccess>& trace);

/** Outcome of a canonical trace comparison. */
struct TraceDivergence
{
    bool diverged = false;
    size_t index = 0;     ///< first divergent access (or min length)
    std::string detail;   ///< human-readable region/offset/op context
};

/**
 * Exact comparison of two canonical traces (lengths, region sequence,
 * offsets, sizes, ops). On divergence, `detail` names the first divergent
 * access on both sides with region/offset/op context.
 */
TraceDivergence CompareCanonical(const CanonicalTrace& a,
                                 const CanonicalTrace& b);

/**
 * Shape comparison: lengths, region sequence, sizes, and ops must match;
 * offsets within a region are free. This is the deterministic part of the
 * obliviousness argument for randomized generators (tree/sqrt ORAM),
 * whose traces legitimately differ in *which* bucket/entry they touch but
 * never in how many, how large, or in what region order.
 */
TraceDivergence CompareCanonicalShape(const CanonicalTrace& a,
                                      const CanonicalTrace& b);

/**
 * Deterministic flat re-addressing for channel-model replay: canonical
 * region k is placed at base (k + 1) * kCanonicalRegionStride, so cache
 * set indices and page numbers derived from the result are comparable
 * across runs. Region -1 accesses keep their raw address.
 */
inline constexpr uint64_t kCanonicalRegionStride = uint64_t{1} << 30;

std::vector<sidechannel::MemoryAccess> ToModelTrace(const CanonicalTrace& t);

/** "region_name+0x<offset> <size>B R|W" for one access. */
std::string FormatAccess(const CanonicalTrace& t, size_t index);

}  // namespace secemb::verify
