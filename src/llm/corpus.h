#pragma once

/**
 * @file
 * Synthetic language corpus standing in for OpenWebText.
 *
 * A sparse random Markov process over the vocabulary: each token has a
 * small set of plausible successors (plus uniform noise), giving the
 * stream real next-token structure with a known entropy floor. Both the
 * table-based and the DHE-based GPT can learn it, which is what the
 * Fig. 14 perplexity-parity experiment needs; token frequencies are
 * Zipf-skewed like natural text.
 */

#include <cstdint>
#include <vector>

#include "tensor/rng.h"

namespace secemb::llm {

/** Deterministic synthetic token stream with learnable structure. */
class SyntheticCorpus
{
  public:
    /**
     * @param vocab_size token alphabet size
     * @param seed corpus identity
     * @param branching successors per token
     * @param noise probability of an unconditioned (uniform) token
     */
    SyntheticCorpus(int64_t vocab_size, uint64_t seed, int branching = 8,
                    double noise = 0.05);

    /**
     * Sample `batch` sequences of length seq_len, flattened sample-major
     * (size batch * seq_len). Use seq_len = train_seq + 1 for TrainStep.
     */
    std::vector<int64_t> Sample(int64_t batch, int64_t seq_len);

    int64_t vocab_size() const { return vocab_size_; }

  private:
    int64_t vocab_size_;
    int branching_;
    double noise_;
    Rng rng_;
    uint64_t salt_;

    int64_t Successor(int64_t token, int64_t which) const;
    int64_t ZipfToken();
};

}  // namespace secemb::llm
