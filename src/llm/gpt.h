#pragma once

/**
 * @file
 * GPT-2-architecture decoder models.
 *
 * GptModel trains end-to-end (next-token prediction) with either a table
 * or a DHE token-embedding layer — the Fig. 14 perplexity-parity
 * experiment. SecureGpt runs prefill/decode inference with any
 * EmbeddingGenerator supplying token embeddings and an *oblivious* greedy
 * argmax over the output logits (paper Section V-C).
 */

#include <memory>
#include <span>
#include <vector>

#include "core/embedding_generator.h"
#include "dhe/dhe.h"
#include "llm/attention.h"
#include "llm/gpt_config.h"
#include "nn/embedding.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optim.h"

namespace secemb::llm {

/** Pre-norm transformer block: x += attn(ln1(x)); x += mlp(ln2(x)). */
class TransformerBlock
{
  public:
    TransformerBlock(const GptConfig& config, Rng& rng, int nthreads = 1);

    Tensor Forward(const Tensor& x, int64_t batch, int64_t seq);
    Tensor Backward(const Tensor& grad_out);
    Tensor ForwardCached(const Tensor& x, int64_t batch, int64_t new_seq,
                         KvCache& cache);

    std::vector<nn::Parameter*> Parameters();
    void set_nthreads(int n);

  private:
    nn::LayerNorm ln1_;
    CausalSelfAttention attn_;
    nn::LayerNorm ln2_;
    nn::Linear fc1_;  ///< GELU fused into the GEMM epilogue
    nn::Linear fc2_;
};

/** Token-embedding representation used by a trainable GPT. */
enum class TokenEmbMode
{
    kTable,
    kDhe,
};

/** End-to-end trainable GPT (the Fig. 14 finetuning experiment). */
class GptModel
{
  public:
    GptModel(const GptConfig& config, TokenEmbMode mode, Rng& rng);

    /**
     * Forward to logits (batch*seq, vocab) for token ids laid out
     * sample-major (tokens.size() == batch * seq).
     */
    Tensor Forward(std::span<const int64_t> tokens, int64_t batch,
                   int64_t seq);

    /**
     * One optimiser step of next-token prediction: for each sample,
     * tokens[0..seq-1] predict tokens[1..seq]. `tokens` holds batch
     * sequences of length seq+1. Returns the mean cross-entropy.
     */
    float TrainStep(std::span<const int64_t> tokens, int64_t batch,
                    int64_t seq, nn::Optimizer& opt);

    /** Mean next-token cross-entropy without gradients. */
    float EvalLoss(std::span<const int64_t> tokens, int64_t batch,
                   int64_t seq);

    std::vector<nn::Parameter*> Parameters();
    const GptConfig& config() const { return config_; }
    TokenEmbMode mode() const { return mode_; }

    /** Trained token table (table mode) for secure deployment. */
    const Tensor& token_table() const;
    std::shared_ptr<dhe::DheEmbedding> token_dhe() { return dhe_; }

    /** Footprint of the token-embedding state only. */
    int64_t TokenEmbeddingBytes();

  private:
    GptConfig config_;
    TokenEmbMode mode_;
    std::unique_ptr<nn::EmbeddingTable> tok_table_;
    std::shared_ptr<dhe::DheEmbedding> dhe_;
    std::unique_ptr<nn::EmbeddingTable> pos_table_;
    std::vector<std::unique_ptr<TransformerBlock>> blocks_;
    std::unique_ptr<nn::LayerNorm> ln_f_;
    std::unique_ptr<nn::Linear> head_;  ///< untied output head

    // Backward caches.
    std::vector<int64_t> cached_tokens_;
    std::vector<int64_t> cached_positions_;
    int64_t cached_batch_ = 0, cached_seq_ = 0;
};

/** Inference-only GPT with pluggable secure token-embedding generation. */
class SecureGpt
{
  public:
    /**
     * @param config architecture (vocab must match the generator rows)
     * @param token_gen embedding generator for token ids
     * @param rng weight init (random weights suffice for latency studies)
     * @param nthreads inference threads (the paper fixes 16 for LLMs)
     */
    SecureGpt(const GptConfig& config,
              std::unique_ptr<core::EmbeddingGenerator> token_gen,
              Rng& rng, int nthreads = 1);

    /**
     * Prefill: process `prompts` (batch x prompt_len token ids), fill the
     * KV caches, and return the last-position logits (batch x vocab).
     */
    Tensor Prefill(const std::vector<std::vector<int64_t>>& prompts);

    /**
     * One decode step: embed one new token per sample and return the next
     * logits (batch x vocab). Prefill must have run first.
     */
    Tensor DecodeStep(std::span<const int64_t> tokens);

    /** Greedy next tokens from logits via *oblivious* argmax. */
    std::vector<int64_t> GreedyTokens(const Tensor& logits) const;

    /** Greedy next tokens via plain (non-secure) argmax, for the §V-C
     * overhead measurement. */
    std::vector<int64_t> GreedyTokensNonSecure(const Tensor& logits) const;

    /**
     * Top-k sampling with an oblivious candidate search: the k candidate
     * ids are found with constant-time scans (ObliviousTopK) and one is
     * drawn by softmax weight. Extends the paper's greedy decoding to
     * stochastic sampling without reintroducing value-dependent branches
     * in the candidate search. k is public.
     */
    std::vector<int64_t> SampleTopK(const Tensor& logits, int64_t k,
                                    Rng& rng) const;

    /** Generate `steps` tokens after a prefill; returns generated ids. */
    std::vector<std::vector<int64_t>> Generate(
        const std::vector<std::vector<int64_t>>& prompts, int64_t steps);

    void Reset(int64_t batch);

    core::EmbeddingGenerator& token_generator() { return *token_gen_; }
    const GptConfig& config() const { return config_; }

  private:
    GptConfig config_;
    std::unique_ptr<core::EmbeddingGenerator> token_gen_;
    std::unique_ptr<nn::EmbeddingTable> pos_table_;
    std::vector<std::unique_ptr<TransformerBlock>> blocks_;
    std::unique_ptr<nn::LayerNorm> ln_f_;
    std::unique_ptr<nn::Linear> head_;
    std::vector<KvCache> caches_;
    int64_t batch_ = 0;
    int nthreads_;

    Tensor Trunk(const Tensor& emb, int64_t batch, int64_t new_seq);
};

}  // namespace secemb::llm
