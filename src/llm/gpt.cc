#include "llm/gpt.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "oblivious/scan.h"
#include "telemetry/telemetry.h"

namespace secemb::llm {

// ---------------------------------------------------------------------------
// TransformerBlock
// ---------------------------------------------------------------------------

TransformerBlock::TransformerBlock(const GptConfig& config, Rng& rng,
                                   int nthreads)
    : ln1_(config.dim),
      attn_(config.dim, config.num_heads, rng, nthreads),
      ln2_(config.dim),
      fc1_(config.dim, config.ffn_mult * config.dim, rng, nthreads,
           nn::Activation::kGelu),
      fc2_(config.ffn_mult * config.dim, config.dim, rng, nthreads)
{
}

Tensor
TransformerBlock::Forward(const Tensor& x, int64_t batch, int64_t seq)
{
    Tensor h = x;
    h.AddInPlace(attn_.Forward(ln1_.Forward(x), batch, seq));
    Tensor ff = fc2_.Forward(fc1_.Forward(ln2_.Forward(h)));
    return h.AddInPlace(ff), h;
}

Tensor
TransformerBlock::Backward(const Tensor& grad_out)
{
    // h2 = h + ff(h): grad flows to both branches.
    Tensor gh = grad_out;
    const Tensor gff =
        ln2_.Backward(fc1_.Backward(fc2_.Backward(grad_out)));
    gh.AddInPlace(gff);
    // h = x + attn(ln1(x)).
    Tensor gx = gh;
    const Tensor gattn = ln1_.Backward(attn_.Backward(gh));
    gx.AddInPlace(gattn);
    return gx;
}

Tensor
TransformerBlock::ForwardCached(const Tensor& x, int64_t batch,
                                int64_t new_seq, KvCache& cache)
{
    Tensor h = x;
    h.AddInPlace(
        attn_.ForwardCached(ln1_.Forward(x), batch, new_seq, cache));
    Tensor ff = fc2_.Forward(fc1_.Forward(ln2_.Forward(h)));
    return h.AddInPlace(ff), h;
}

std::vector<nn::Parameter*>
TransformerBlock::Parameters()
{
    std::vector<nn::Parameter*> ps;
    for (auto* p : ln1_.Parameters()) ps.push_back(p);
    for (auto* p : attn_.Parameters()) ps.push_back(p);
    for (auto* p : ln2_.Parameters()) ps.push_back(p);
    for (auto* p : fc1_.Parameters()) ps.push_back(p);
    for (auto* p : fc2_.Parameters()) ps.push_back(p);
    return ps;
}

void
TransformerBlock::set_nthreads(int n)
{
    attn_.set_nthreads(n);
    fc1_.set_nthreads(n);
    fc2_.set_nthreads(n);
}

// ---------------------------------------------------------------------------
// GptModel (trainable)
// ---------------------------------------------------------------------------

GptModel::GptModel(const GptConfig& config, TokenEmbMode mode, Rng& rng)
    : config_(config), mode_(mode)
{
    if (mode == TokenEmbMode::kTable) {
        tok_table_ = std::make_unique<nn::EmbeddingTable>(
            config.vocab_size, config.dim, rng);
    } else {
        dhe_ = std::make_shared<dhe::DheEmbedding>(
            dhe::DheConfig::ForLlm(config.dim), rng);
    }
    pos_table_ = std::make_unique<nn::EmbeddingTable>(config.max_seq,
                                                      config.dim, rng);
    for (int64_t l = 0; l < config.num_layers; ++l) {
        blocks_.push_back(std::make_unique<TransformerBlock>(config, rng));
    }
    ln_f_ = std::make_unique<nn::LayerNorm>(config.dim);
    head_ = std::make_unique<nn::Linear>(config.dim, config.vocab_size,
                                         rng);
}

Tensor
GptModel::Forward(std::span<const int64_t> tokens, int64_t batch,
                  int64_t seq)
{
    assert(static_cast<int64_t>(tokens.size()) == batch * seq);
    TELEMETRY_SPAN("llm.forward");
    TELEMETRY_SCOPED_LATENCY("llm.forward.ns");
    TELEMETRY_COUNT("llm.forward.tokens", batch * seq);
    cached_tokens_.assign(tokens.begin(), tokens.end());
    cached_positions_.resize(static_cast<size_t>(batch * seq));
    for (int64_t b = 0; b < batch; ++b) {
        for (int64_t t = 0; t < seq; ++t) {
            cached_positions_[static_cast<size_t>(b * seq + t)] = t;
        }
    }
    cached_batch_ = batch;
    cached_seq_ = seq;

    Tensor h = mode_ == TokenEmbMode::kTable
                   ? tok_table_->Forward(tokens)
                   : dhe_->Forward(tokens);
    h.AddInPlace(pos_table_->Forward(cached_positions_));
    for (auto& block : blocks_) h = block->Forward(h, batch, seq);
    h = ln_f_->Forward(h);
    return head_->Forward(h);
}

float
GptModel::TrainStep(std::span<const int64_t> tokens, int64_t batch,
                    int64_t seq, nn::Optimizer& opt)
{
    assert(static_cast<int64_t>(tokens.size()) ==
           batch * (seq + 1));
    // Inputs are positions 0..seq-1; targets are 1..seq, per sample.
    std::vector<int64_t> inputs(static_cast<size_t>(batch * seq));
    std::vector<int64_t> targets(static_cast<size_t>(batch * seq));
    for (int64_t b = 0; b < batch; ++b) {
        for (int64_t t = 0; t < seq; ++t) {
            inputs[static_cast<size_t>(b * seq + t)] =
                tokens[static_cast<size_t>(b * (seq + 1) + t)];
            targets[static_cast<size_t>(b * seq + t)] =
                tokens[static_cast<size_t>(b * (seq + 1) + t + 1)];
        }
    }
    opt.ZeroGrad();
    const Tensor logits = Forward(inputs, batch, seq);
    Tensor grad;
    const float loss = nn::SoftmaxCrossEntropy(logits, targets, &grad);

    Tensor gh = head_->Backward(grad);
    gh = ln_f_->Backward(gh);
    for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
        gh = (*it)->Backward(gh);
    }
    pos_table_->Backward(cached_positions_, gh);
    if (mode_ == TokenEmbMode::kTable) {
        tok_table_->Backward(cached_tokens_, gh);
    } else {
        dhe_->Backward(gh);
    }
    opt.Step();
    return loss;
}

float
GptModel::EvalLoss(std::span<const int64_t> tokens, int64_t batch,
                   int64_t seq)
{
    std::vector<int64_t> inputs(static_cast<size_t>(batch * seq));
    std::vector<int64_t> targets(static_cast<size_t>(batch * seq));
    for (int64_t b = 0; b < batch; ++b) {
        for (int64_t t = 0; t < seq; ++t) {
            inputs[static_cast<size_t>(b * seq + t)] =
                tokens[static_cast<size_t>(b * (seq + 1) + t)];
            targets[static_cast<size_t>(b * seq + t)] =
                tokens[static_cast<size_t>(b * (seq + 1) + t + 1)];
        }
    }
    const Tensor logits = Forward(inputs, batch, seq);
    return nn::SoftmaxCrossEntropy(logits, targets, nullptr);
}

std::vector<nn::Parameter*>
GptModel::Parameters()
{
    std::vector<nn::Parameter*> ps;
    if (tok_table_) ps.push_back(&tok_table_->weight());
    if (dhe_) {
        for (auto* p : dhe_->Parameters()) ps.push_back(p);
    }
    ps.push_back(&pos_table_->weight());
    for (auto& b : blocks_) {
        for (auto* p : b->Parameters()) ps.push_back(p);
    }
    for (auto* p : ln_f_->Parameters()) ps.push_back(p);
    for (auto* p : head_->Parameters()) ps.push_back(p);
    return ps;
}

const Tensor&
GptModel::token_table() const
{
    if (!tok_table_) {
        throw std::logic_error("token_table(): model uses DHE");
    }
    return tok_table_->table();
}

int64_t
GptModel::TokenEmbeddingBytes()
{
    return tok_table_ ? tok_table_->ParamBytes() : dhe_->ParamBytes();
}

// ---------------------------------------------------------------------------
// SecureGpt (inference)
// ---------------------------------------------------------------------------

SecureGpt::SecureGpt(const GptConfig& config,
                     std::unique_ptr<core::EmbeddingGenerator> token_gen,
                     Rng& rng, int nthreads)
    : config_(config), token_gen_(std::move(token_gen)), nthreads_(nthreads)
{
    assert(token_gen_->dim() == config.dim);
    pos_table_ = std::make_unique<nn::EmbeddingTable>(config.max_seq,
                                                      config.dim, rng);
    for (int64_t l = 0; l < config.num_layers; ++l) {
        blocks_.push_back(
            std::make_unique<TransformerBlock>(config, rng, nthreads));
    }
    ln_f_ = std::make_unique<nn::LayerNorm>(config.dim);
    head_ = std::make_unique<nn::Linear>(config.dim, config.vocab_size,
                                         rng, nthreads);
    token_gen_->set_nthreads(nthreads);
}

void
SecureGpt::Reset(int64_t batch)
{
    batch_ = batch;
    caches_.clear();
    for (int64_t l = 0; l < config_.num_layers; ++l) {
        caches_.emplace_back(batch, config_.max_seq, config_.dim);
    }
}

Tensor
SecureGpt::Trunk(const Tensor& emb, int64_t batch, int64_t new_seq)
{
    Tensor h = emb;
    for (size_t l = 0; l < blocks_.size(); ++l) {
        h = blocks_[l]->ForwardCached(h, batch, new_seq, caches_[l]);
    }
    return ln_f_->Forward(h);
}

Tensor
SecureGpt::Prefill(const std::vector<std::vector<int64_t>>& prompts)
{
    TELEMETRY_SPAN("llm.prefill");
    TELEMETRY_SCOPED_LATENCY("llm.prefill.ns");
    const int64_t batch = static_cast<int64_t>(prompts.size());
    assert(batch > 0);
    const int64_t seq = static_cast<int64_t>(prompts[0].size());
    Reset(batch);

    // Flatten tokens sample-major; the embedding-generation batch is
    // batch * seq (the paper's "scale by 256x" note under Fig. 15).
    std::vector<int64_t> flat(static_cast<size_t>(batch * seq));
    std::vector<int64_t> positions(static_cast<size_t>(batch * seq));
    for (int64_t b = 0; b < batch; ++b) {
        assert(static_cast<int64_t>(prompts[static_cast<size_t>(b)]
                                        .size()) == seq);
        for (int64_t t = 0; t < seq; ++t) {
            flat[static_cast<size_t>(b * seq + t)] =
                prompts[static_cast<size_t>(b)][static_cast<size_t>(t)];
            positions[static_cast<size_t>(b * seq + t)] = t;
        }
    }
    Tensor emb = token_gen_->GenerateBatch(flat);
    emb.AddInPlace(pos_table_->Forward(positions));
    const Tensor h = Trunk(emb, batch, seq);

    // Last-position logits per sample.
    Tensor last({batch, config_.dim});
    for (int64_t b = 0; b < batch; ++b) {
        const float* src = h.data() + (b * seq + seq - 1) * config_.dim;
        std::copy(src, src + config_.dim, last.data() + b * config_.dim);
    }
    return head_->Forward(last);
}

Tensor
SecureGpt::DecodeStep(std::span<const int64_t> tokens)
{
    TELEMETRY_SPAN("llm.decode_step");
    TELEMETRY_SCOPED_LATENCY("llm.decode_step.ns");
    const int64_t batch = static_cast<int64_t>(tokens.size());
    assert(batch == batch_ && !caches_.empty());
    std::vector<int64_t> positions(static_cast<size_t>(batch),
                                   caches_[0].len);
    Tensor emb = token_gen_->GenerateBatch(tokens);
    emb.AddInPlace(pos_table_->Forward(positions));
    const Tensor h = Trunk(emb, batch, 1);
    return head_->Forward(h);
}

std::vector<int64_t>
SecureGpt::GreedyTokens(const Tensor& logits) const
{
    std::vector<int64_t> out(static_cast<size_t>(logits.size(0)));
    for (int64_t b = 0; b < logits.size(0); ++b) {
        out[static_cast<size_t>(b)] =
            oblivious::ObliviousArgmax(logits.row(b));
    }
    return out;
}

std::vector<int64_t>
SecureGpt::GreedyTokensNonSecure(const Tensor& logits) const
{
    std::vector<int64_t> out(static_cast<size_t>(logits.size(0)));
    for (int64_t b = 0; b < logits.size(0); ++b) {
        const auto row = logits.row(b);
        int64_t best = 0;
        for (size_t j = 1; j < row.size(); ++j) {
            if (row[j] > row[static_cast<size_t>(best)]) {
                best = static_cast<int64_t>(j);
            }
        }
        out[static_cast<size_t>(b)] = best;
    }
    return out;
}

std::vector<int64_t>
SecureGpt::SampleTopK(const Tensor& logits, int64_t k, Rng& rng) const
{
    assert(k > 0 && k <= logits.size(1));
    std::vector<int64_t> out(static_cast<size_t>(logits.size(0)));
    for (int64_t b = 0; b < logits.size(0); ++b) {
        const auto row = logits.row(b);
        const auto candidates = oblivious::ObliviousTopK(row, k);
        // Softmax over the k candidate logits, then inverse-CDF draw.
        double mx = -1e30;
        for (int64_t c = 0; c < k; ++c) {
            mx = std::max(mx, static_cast<double>(
                                  row[static_cast<size_t>(
                                      candidates[static_cast<size_t>(
                                          c)])]));
        }
        std::vector<double> w(static_cast<size_t>(k));
        double sum = 0.0;
        for (int64_t c = 0; c < k; ++c) {
            w[static_cast<size_t>(c)] = std::exp(
                static_cast<double>(
                    row[static_cast<size_t>(
                        candidates[static_cast<size_t>(c)])]) -
                mx);
            sum += w[static_cast<size_t>(c)];
        }
        const double u = rng.NextDouble() * sum;
        double acc = 0.0;
        int64_t pick = k - 1;
        for (int64_t c = 0; c < k; ++c) {
            acc += w[static_cast<size_t>(c)];
            if (u < acc) {
                pick = c;
                break;
            }
        }
        out[static_cast<size_t>(b)] =
            candidates[static_cast<size_t>(pick)];
    }
    return out;
}

std::vector<std::vector<int64_t>>
SecureGpt::Generate(const std::vector<std::vector<int64_t>>& prompts,
                    int64_t steps)
{
    Tensor logits = Prefill(prompts);
    std::vector<std::vector<int64_t>> generated(prompts.size());
    for (int64_t s = 0; s < steps; ++s) {
        const std::vector<int64_t> next = GreedyTokens(logits);
        for (size_t b = 0; b < generated.size(); ++b) {
            generated[b].push_back(next[b]);
        }
        if (s + 1 < steps) logits = DecodeStep(next);
    }
    return generated;
}

}  // namespace secemb::llm
