#pragma once

/**
 * @file
 * Multi-head causal self-attention with a training path (full
 * forward/backward) and an inference path (incremental KV cache).
 *
 * Attention is data-oblivious for a given (public) sequence length: QKV
 * projections are GEMMs, masking is position- (not value-) dependent, and
 * softmax is elementwise math (paper Section V-C).
 */

#include <cstdint>
#include <vector>

#include "nn/layers.h"
#include "tensor/rng.h"

namespace secemb::llm {

/** Per-layer key/value cache for autoregressive decoding. */
struct KvCache
{
    Tensor k;  ///< (batch, max_seq, dim) packed head-major within dim
    Tensor v;
    int64_t len = 0;  ///< tokens currently cached

    KvCache() = default;
    KvCache(int64_t batch, int64_t max_seq, int64_t dim)
        : k(Tensor::Zeros({batch, max_seq, dim})),
          v(Tensor::Zeros({batch, max_seq, dim}))
    {
    }
};

/** Causal multi-head self-attention block. */
class CausalSelfAttention
{
  public:
    CausalSelfAttention(int64_t dim, int64_t num_heads, Rng& rng,
                        int nthreads = 1);

    /**
     * Training forward over x (batch*seq, dim), caching activations.
     * Rows are sample-major: row b*seq + t is token t of sample b.
     */
    Tensor Forward(const Tensor& x, int64_t batch, int64_t seq);

    /** Backward from grad (batch*seq, dim); returns grad wrt input. */
    Tensor Backward(const Tensor& grad_out);

    /**
     * Inference forward of `new_seq` appended tokens per sample with the
     * KV cache holding `cache.len` previous tokens. x is
     * (batch*new_seq, dim); the cache is extended in place.
     */
    Tensor ForwardCached(const Tensor& x, int64_t batch, int64_t new_seq,
                         KvCache& cache);

    std::vector<nn::Parameter*> Parameters();
    void set_nthreads(int n);

  private:
    int64_t dim_;
    int64_t heads_;
    nn::Linear qkv_;   ///< dim -> 3*dim
    nn::Linear proj_;  ///< dim -> dim

    // Training caches.
    int64_t batch_ = 0, seq_ = 0;
    Tensor q_, k_, v_;   ///< (batch*seq, dim) after qkv split
    Tensor probs_;       ///< (batch, heads, seq, seq) softmax weights
};

}  // namespace secemb::llm
