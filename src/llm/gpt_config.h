#pragma once

/**
 * @file
 * GPT model configuration.
 *
 * The paper evaluates GPT-2 medium (355M parameters, 24 layers, dim 1024,
 * vocab 50257). Absolute transformer compute is not the object of study —
 * the *embedding layer* is — so benchmarks default to a scaled-down
 * transformer with the real vocabulary size; the full configuration is
 * available behind a flag.
 */

#include <cstdint>

namespace secemb::llm {

/** Decoder-only transformer architecture. */
struct GptConfig
{
    int64_t vocab_size = 50257;
    int64_t max_seq = 1024;
    int64_t dim = 1024;
    int64_t num_heads = 16;
    int64_t num_layers = 24;
    int64_t ffn_mult = 4;  ///< FFN hidden = ffn_mult * dim

    int64_t head_dim() const { return dim / num_heads; }

    /** The paper's GPT-2 medium. */
    static GptConfig Gpt2Medium();

    /**
     * Bench-scale model: real GPT-2 vocabulary, reduced depth/width so a
     * single-core run finishes in seconds. Vocab and dim are the knobs
     * that matter for the embedding-generation comparison.
     */
    static GptConfig BenchScale(int64_t dim = 256, int64_t vocab = 50257,
                                int64_t layers = 4);

    /** Tiny model for unit tests. */
    static GptConfig Tiny();
};

}  // namespace secemb::llm
