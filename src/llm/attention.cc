#include "llm/attention.h"

#include <cassert>
#include <cmath>

namespace secemb::llm {

namespace {

/** Numerically stable in-place softmax over the first `n` entries. */
void
SoftmaxRow(float* row, int64_t n)
{
    float mx = row[0];
    for (int64_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (int64_t j = 0; j < n; ++j) {
        row[j] = std::exp(row[j] - mx);
        sum += row[j];
    }
    const float inv = 1.0f / static_cast<float>(sum);
    for (int64_t j = 0; j < n; ++j) row[j] *= inv;
}

}  // namespace

CausalSelfAttention::CausalSelfAttention(int64_t dim, int64_t num_heads,
                                         Rng& rng, int nthreads)
    : dim_(dim),
      heads_(num_heads),
      qkv_(dim, 3 * dim, rng, nthreads),
      proj_(dim, dim, rng, nthreads)
{
    assert(dim % num_heads == 0);
}

Tensor
CausalSelfAttention::Forward(const Tensor& x, int64_t batch, int64_t seq)
{
    assert(x.size(0) == batch * seq && x.size(1) == dim_);
    batch_ = batch;
    seq_ = seq;
    const int64_t hd = dim_ / heads_;
    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

    const Tensor qkv = qkv_.Forward(x);  // (B*T, 3D)
    q_ = Tensor({batch * seq, dim_});
    k_ = Tensor({batch * seq, dim_});
    v_ = Tensor({batch * seq, dim_});
    for (int64_t r = 0; r < batch * seq; ++r) {
        const float* src = qkv.data() + r * 3 * dim_;
        std::copy(src, src + dim_, q_.data() + r * dim_);
        std::copy(src + dim_, src + 2 * dim_, k_.data() + r * dim_);
        std::copy(src + 2 * dim_, src + 3 * dim_, v_.data() + r * dim_);
    }

    probs_ = Tensor::Zeros({batch, heads_, seq, seq});
    Tensor context({batch * seq, dim_});

    for (int64_t b = 0; b < batch; ++b) {
        for (int64_t h = 0; h < heads_; ++h) {
            const int64_t off = h * hd;
            for (int64_t t = 0; t < seq; ++t) {
                const float* qrow = q_.data() + (b * seq + t) * dim_ + off;
                float* prow = probs_.data() +
                              ((b * heads_ + h) * seq + t) * seq;
                for (int64_t u = 0; u <= t; ++u) {
                    const float* krow =
                        k_.data() + (b * seq + u) * dim_ + off;
                    float acc = 0.0f;
                    for (int64_t j = 0; j < hd; ++j) {
                        acc += qrow[j] * krow[j];
                    }
                    prow[u] = acc * scale;
                }
                SoftmaxRow(prow, t + 1);  // rows beyond t stay zero
                float* crow =
                    context.data() + (b * seq + t) * dim_ + off;
                for (int64_t j = 0; j < hd; ++j) crow[j] = 0.0f;
                for (int64_t u = 0; u <= t; ++u) {
                    const float p = prow[u];
                    const float* vrow =
                        v_.data() + (b * seq + u) * dim_ + off;
                    for (int64_t j = 0; j < hd; ++j) {
                        crow[j] += p * vrow[j];
                    }
                }
            }
        }
    }
    return proj_.Forward(context);
}

Tensor
CausalSelfAttention::Backward(const Tensor& grad_out)
{
    const int64_t batch = batch_, seq = seq_;
    const int64_t hd = dim_ / heads_;
    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

    const Tensor grad_context = proj_.Backward(grad_out);  // (B*T, D)
    Tensor gq = Tensor::Zeros({batch * seq, dim_});
    Tensor gk = Tensor::Zeros({batch * seq, dim_});
    Tensor gv = Tensor::Zeros({batch * seq, dim_});

    std::vector<float> gp(static_cast<size_t>(seq));
    for (int64_t b = 0; b < batch; ++b) {
        for (int64_t h = 0; h < heads_; ++h) {
            const int64_t off = h * hd;
            for (int64_t t = 0; t < seq; ++t) {
                const float* gc =
                    grad_context.data() + (b * seq + t) * dim_ + off;
                const float* prow = probs_.data() +
                                    ((b * heads_ + h) * seq + t) * seq;
                // dP = gC V^T ; dV += P^T gC
                for (int64_t u = 0; u <= t; ++u) {
                    const float* vrow =
                        v_.data() + (b * seq + u) * dim_ + off;
                    float* gvrow =
                        gv.data() + (b * seq + u) * dim_ + off;
                    float acc = 0.0f;
                    const float p = prow[u];
                    for (int64_t j = 0; j < hd; ++j) {
                        acc += gc[j] * vrow[j];
                        gvrow[j] += p * gc[j];
                    }
                    gp[static_cast<size_t>(u)] = acc;
                }
                // Softmax backward: gS = P o (gP - sum(gP o P)).
                double dot = 0.0;
                for (int64_t u = 0; u <= t; ++u) {
                    dot += static_cast<double>(
                               gp[static_cast<size_t>(u)]) *
                           prow[u];
                }
                const float* qrow = q_.data() + (b * seq + t) * dim_ + off;
                float* gqrow = gq.data() + (b * seq + t) * dim_ + off;
                for (int64_t u = 0; u <= t; ++u) {
                    const float gs =
                        prow[u] * (gp[static_cast<size_t>(u)] -
                                   static_cast<float>(dot)) *
                        scale;
                    const float* krow =
                        k_.data() + (b * seq + u) * dim_ + off;
                    float* gkrow =
                        gk.data() + (b * seq + u) * dim_ + off;
                    for (int64_t j = 0; j < hd; ++j) {
                        gqrow[j] += gs * krow[j];
                        gkrow[j] += gs * qrow[j];
                    }
                }
            }
        }
    }

    // Repack into qkv gradient and run the projection backward.
    Tensor gqkv({batch * seq, 3 * dim_});
    for (int64_t r = 0; r < batch * seq; ++r) {
        float* dst = gqkv.data() + r * 3 * dim_;
        std::copy(gq.data() + r * dim_, gq.data() + (r + 1) * dim_, dst);
        std::copy(gk.data() + r * dim_, gk.data() + (r + 1) * dim_,
                  dst + dim_);
        std::copy(gv.data() + r * dim_, gv.data() + (r + 1) * dim_,
                  dst + 2 * dim_);
    }
    return qkv_.Backward(gqkv);
}

Tensor
CausalSelfAttention::ForwardCached(const Tensor& x, int64_t batch,
                                   int64_t new_seq, KvCache& cache)
{
    assert(x.size(0) == batch * new_seq && x.size(1) == dim_);
    assert(cache.k.size(0) == batch);
    const int64_t hd = dim_ / heads_;
    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    const int64_t past = cache.len;
    const int64_t max_seq = cache.k.size(1);
    assert(past + new_seq <= max_seq);
    (void)max_seq;

    const Tensor qkv = qkv_.Forward(x);
    // Append K/V to the cache.
    for (int64_t b = 0; b < batch; ++b) {
        for (int64_t t = 0; t < new_seq; ++t) {
            const float* src = qkv.data() + (b * new_seq + t) * 3 * dim_;
            float* kdst = cache.k.data() +
                          (b * cache.k.size(1) + past + t) * dim_;
            float* vdst = cache.v.data() +
                          (b * cache.v.size(1) + past + t) * dim_;
            std::copy(src + dim_, src + 2 * dim_, kdst);
            std::copy(src + 2 * dim_, src + 3 * dim_, vdst);
        }
    }

    Tensor context({batch * new_seq, dim_});
    std::vector<float> scores(static_cast<size_t>(past + new_seq));
    for (int64_t b = 0; b < batch; ++b) {
        for (int64_t h = 0; h < heads_; ++h) {
            const int64_t off = h * hd;
            for (int64_t t = 0; t < new_seq; ++t) {
                const float* qrow =
                    qkv.data() + (b * new_seq + t) * 3 * dim_ + off;
                const int64_t visible = past + t + 1;
                for (int64_t u = 0; u < visible; ++u) {
                    const float* krow =
                        cache.k.data() +
                        (b * cache.k.size(1) + u) * dim_ + off;
                    float acc = 0.0f;
                    for (int64_t j = 0; j < hd; ++j) {
                        acc += qrow[j] * krow[j];
                    }
                    scores[static_cast<size_t>(u)] = acc * scale;
                }
                SoftmaxRow(scores.data(), visible);
                float* crow =
                    context.data() + (b * new_seq + t) * dim_ + off;
                for (int64_t j = 0; j < hd; ++j) crow[j] = 0.0f;
                for (int64_t u = 0; u < visible; ++u) {
                    const float p = scores[static_cast<size_t>(u)];
                    const float* vrow =
                        cache.v.data() +
                        (b * cache.v.size(1) + u) * dim_ + off;
                    for (int64_t j = 0; j < hd; ++j) {
                        crow[j] += p * vrow[j];
                    }
                }
            }
        }
    }
    cache.len = past + new_seq;
    return proj_.Forward(context);
}

std::vector<nn::Parameter*>
CausalSelfAttention::Parameters()
{
    std::vector<nn::Parameter*> ps = qkv_.Parameters();
    for (auto* p : proj_.Parameters()) ps.push_back(p);
    return ps;
}

void
CausalSelfAttention::set_nthreads(int n)
{
    qkv_.set_nthreads(n);
    proj_.set_nthreads(n);
}

}  // namespace secemb::llm
