#include "llm/corpus.h"

#include <cmath>

namespace secemb::llm {

namespace {

uint64_t
Mix(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

}  // namespace

SyntheticCorpus::SyntheticCorpus(int64_t vocab_size, uint64_t seed,
                                 int branching, double noise)
    : vocab_size_(vocab_size),
      branching_(branching),
      noise_(noise),
      rng_(seed),
      salt_(Mix(seed ^ 0xabcdef1234567890ULL))
{
}

int64_t
SyntheticCorpus::Successor(int64_t token, int64_t which) const
{
    const uint64_t h = Mix(salt_ ^ (static_cast<uint64_t>(token) << 20) ^
                           static_cast<uint64_t>(which));
    return static_cast<int64_t>(h % static_cast<uint64_t>(vocab_size_));
}

int64_t
SyntheticCorpus::ZipfToken()
{
    // Inverse-CDF approximation of a Zipf-like marginal.
    const double u = rng_.NextDouble();
    const double skewed = std::pow(u, 3.0);
    const int64_t t = static_cast<int64_t>(
        skewed * static_cast<double>(vocab_size_));
    return std::min(t, vocab_size_ - 1);
}

std::vector<int64_t>
SyntheticCorpus::Sample(int64_t batch, int64_t seq_len)
{
    std::vector<int64_t> out(static_cast<size_t>(batch * seq_len));
    for (int64_t b = 0; b < batch; ++b) {
        int64_t cur = ZipfToken();
        for (int64_t t = 0; t < seq_len; ++t) {
            out[static_cast<size_t>(b * seq_len + t)] = cur;
            if (rng_.NextDouble() < noise_) {
                cur = ZipfToken();
            } else {
                cur = Successor(
                    cur, static_cast<int64_t>(rng_.NextBounded(
                             static_cast<uint64_t>(branching_))));
            }
        }
    }
    return out;
}

}  // namespace secemb::llm
