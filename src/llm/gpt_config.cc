#include "llm/gpt_config.h"

namespace secemb::llm {

GptConfig
GptConfig::Gpt2Medium()
{
    GptConfig c;
    c.vocab_size = 50257;
    c.max_seq = 1024;
    c.dim = 1024;
    c.num_heads = 16;
    c.num_layers = 24;
    return c;
}

GptConfig
GptConfig::BenchScale(int64_t dim, int64_t vocab, int64_t layers)
{
    GptConfig c;
    c.vocab_size = vocab;
    c.max_seq = 512;
    c.dim = dim;
    c.num_heads = dim >= 64 ? 8 : 2;
    c.num_layers = layers;
    return c;
}

GptConfig
GptConfig::Tiny()
{
    GptConfig c;
    c.vocab_size = 97;
    c.max_seq = 32;
    c.dim = 32;
    c.num_heads = 4;
    c.num_layers = 2;
    return c;
}

}  // namespace secemb::llm
