#include "dlrm/dataset.h"

#include <cassert>
#include <cmath>

namespace secemb::dlrm {

namespace {

/** Cheap stateless hash for the ground-truth bucket contributions. */
uint64_t
Mix(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

}  // namespace

SyntheticCtrDataset::SyntheticCtrDataset(const DlrmConfig& config,
                                         uint64_t seed)
    : config_(config), rng_(seed)
{
    dense_weights_.resize(static_cast<size_t>(config.num_dense));
    for (auto& w : dense_weights_) w = rng_.NextGaussian() * 0.5f;
    feature_salt_.resize(config.table_sizes.size());
    for (auto& s : feature_salt_) s = rng_.Next();
}

int64_t
SyntheticCtrDataset::SampleIndex(int64_t table_size)
{
    // u^3 concentrates mass near 0: a light-weight power-law stand-in.
    const double u = rng_.NextDouble();
    const double skewed = u * u * u;
    int64_t idx = static_cast<int64_t>(skewed * table_size);
    return std::min(idx, table_size - 1);
}

float
SyntheticCtrDataset::TrueScore(const std::vector<float>& dense,
                               const std::vector<int64_t>& sparse_row) const
{
    float score = 0.0f;
    for (size_t j = 0; j < dense.size(); ++j) {
        score += dense_weights_[j] * dense[j];
    }
    for (size_t f = 0; f < sparse_row.size(); ++f) {
        const uint64_t h =
            Mix(feature_salt_[f] ^ static_cast<uint64_t>(sparse_row[f]));
        // Map hash to a contribution in [-1, 1].
        score += static_cast<float>(static_cast<double>(h >> 11) *
                                    0x1.0p-53 * 2.0 - 1.0);
    }
    return score;
}

CtrBatch
SyntheticCtrDataset::NextBatch(int64_t batch_size)
{
    const int64_t nd = config_.num_dense;
    const int64_t nf = config_.num_sparse();
    CtrBatch batch;
    batch.dense = Tensor({batch_size, nd});
    batch.labels = Tensor({batch_size});
    batch.sparse.assign(static_cast<size_t>(nf),
                        std::vector<int64_t>(
                            static_cast<size_t>(batch_size), 0));

    std::vector<float> dense_row(static_cast<size_t>(nd));
    std::vector<int64_t> sparse_row(static_cast<size_t>(nf));
    for (int64_t i = 0; i < batch_size; ++i) {
        for (int64_t j = 0; j < nd; ++j) {
            dense_row[static_cast<size_t>(j)] = rng_.NextGaussian();
            batch.dense.at(i, j) = dense_row[static_cast<size_t>(j)];
        }
        for (int64_t f = 0; f < nf; ++f) {
            const int64_t idx =
                SampleIndex(config_.table_sizes[static_cast<size_t>(f)]);
            sparse_row[static_cast<size_t>(f)] = idx;
            batch.sparse[static_cast<size_t>(f)]
                        [static_cast<size_t>(i)] = idx;
        }
        const float score = TrueScore(dense_row, sparse_row);
        const float p = 1.0f / (1.0f + std::exp(-score));
        batch.labels.at(i) =
            (rng_.NextDouble() < static_cast<double>(p)) ? 1.0f : 0.0f;
    }
    return batch;
}

}  // namespace secemb::dlrm
