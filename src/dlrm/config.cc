#include "dlrm/config.h"

#include <algorithm>
#include <cmath>

#include "tensor/rng.h"

namespace secemb::dlrm {

int64_t
DlrmConfig::InteractionOutputDim() const
{
    const int64_t f = num_sparse() + 1;  // embeddings + processed dense
    if (interaction == Interaction::kDot) {
        return emb_dim + f * (f - 1) / 2;
    }
    return emb_dim * f;
}

DlrmConfig
DlrmConfig::Scaled(int64_t scale, int64_t min_rows) const
{
    DlrmConfig c = *this;
    for (auto& s : c.table_sizes) {
        s = std::max<int64_t>(min_rows, s / scale);
    }
    return c;
}

DlrmConfig
DlrmConfig::CriteoKaggle()
{
    DlrmConfig c;
    c.num_dense = 13;
    // Cardinalities of the 26 categorical features of the Criteo Kaggle
    // display-advertising dataset (as in Meta's dlrm repo).
    c.table_sizes = {1460,    583,     10131227, 2202608, 305,    24,
                     12517,   633,     3,        93145,   5683,   8351593,
                     3194,    27,      14992,    5461306, 10,     5652,
                     2173,    4,       7046547,  18,      15,     286181,
                     105,     142572};
    c.emb_dim = 16;
    c.bot_mlp = {512, 256, 64, 16};
    c.top_mlp = {512, 256};
    c.interaction = Interaction::kDot;
    return c;
}

DlrmConfig
DlrmConfig::CriteoTerabyte()
{
    DlrmConfig c;
    c.num_dense = 13;
    // Criteo Terabyte cardinalities with the standard 1e7 hash cap
    // ("Criteo only go up to 1e7", Section VI-C).
    c.table_sizes = {9980333, 36084,   17217,   7378,    20134,  3,
                     7112,    1442,    61,      9758201, 1333352, 313829,
                     10,      2208,    11156,   122,     4,       970,
                     14,      9994222, 7267859, 9946608, 415421,  12420,
                     101,     36};
    c.emb_dim = 64;
    c.bot_mlp = {512, 256, 64};
    c.top_mlp = {512, 512, 256};
    c.interaction = Interaction::kDot;
    return c;
}

std::vector<int64_t>
MetaDatasetTableSizes()
{
    // The Meta 2022 trace has 788 tables with a heavy-tailed size
    // distribution topping out at 4e7 rows. We reproduce that shape with
    // a deterministic log-uniform body plus a handful of giant tables.
    constexpr int kTables = 788;
    std::vector<int64_t> sizes;
    sizes.reserve(kTables);
    Rng rng(20220101);
    for (int i = 0; i < kTables; ++i) {
        // Log-uniform between 1e3 and 4e7: mean ~3.8M rows, which puts
        // the aggregate table footprint at dim 64 in the paper's ~900 GB
        // regime.
        const double log_size = 3.0 + rng.NextDouble() * 4.602;
        sizes.push_back(
            static_cast<int64_t>(std::pow(10.0, log_size)));
    }
    // Tail: the largest tables reach 4e7 (beyond anything in Criteo).
    for (int i = 0; i < 12; ++i) {
        sizes[static_cast<size_t>(i)] =
            static_cast<int64_t>(4e7 / (1 + i));
    }
    std::sort(sizes.begin(), sizes.end(), std::greater<>());
    return sizes;
}

}  // namespace secemb::dlrm
