#pragma once

/**
 * @file
 * DLRM models.
 *
 * TrainableDlrm trains end-to-end with either table embeddings or DHE
 * (Uniform / Varied) — the setup behind the paper's Table V accuracy
 * parity. SecureDlrm runs inference with an arbitrary EmbeddingGenerator
 * per sparse feature — the setup behind every latency table.
 */

#include <memory>
#include <vector>

#include "core/embedding_generator.h"
#include "dhe/dhe.h"
#include "dlrm/config.h"
#include "dlrm/dataset.h"
#include "dlrm/interaction.h"
#include "nn/embedding.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optim.h"

namespace secemb::dlrm {

/** Embedding representation used during training. */
enum class EmbeddingMode
{
    kTable,
    kDheUniform,
    kDheVaried,
};

/** End-to-end trainable DLRM. */
class TrainableDlrm
{
  public:
    /**
     * @param config architecture
     * @param mode embedding representation to train
     * @param rng weight init
     * @param dhe_size_divisor divides the DHE k / FC widths (floor 16).
     *        The paper's Uniform sizing targets 1e7-row tables; studies
     *        on scaled-down tables scale the decoder consistently.
     */
    TrainableDlrm(const DlrmConfig& config, EmbeddingMode mode, Rng& rng,
                  int64_t dhe_size_divisor = 1);

    /** Forward pass to CTR logits (batch). */
    Tensor Forward(const CtrBatch& batch);

    /** Backward from dLoss/dlogits; accumulates all parameter grads. */
    void Backward(const Tensor& grad_logits);

    /** One SGD step on a batch; returns the loss. */
    float TrainStep(const CtrBatch& batch, nn::Optimizer& opt);

    /** Mean accuracy over a batch (no grad). */
    float Evaluate(const CtrBatch& batch);

    std::vector<nn::Parameter*> Parameters();

    /** Bytes of embedding state only (Table VI rows). */
    int64_t EmbeddingParamBytes();

    const DlrmConfig& config() const { return config_; }
    EmbeddingMode mode() const { return mode_; }

    /** Trained table of feature f (tables mode), for secure deployment. */
    const Tensor& table(int64_t f) const;
    /** Trained DHE of feature f (DHE modes), shared for hybrid use. */
    std::shared_ptr<dhe::DheEmbedding> dhe(int64_t f);

  private:
    DlrmConfig config_;
    EmbeddingMode mode_;
    std::unique_ptr<nn::Sequential> bot_;
    std::unique_ptr<nn::Sequential> top_;
    std::vector<std::unique_ptr<nn::EmbeddingTable>> tables_;
    std::vector<std::shared_ptr<dhe::DheEmbedding>> dhes_;

    // Forward caches for backward.
    Tensor cached_dense_out_;
    std::vector<Tensor> cached_embs_;
    const CtrBatch* cached_batch_ = nullptr;
};

/** Inference-only DLRM with pluggable (secure) embedding generation. */
class SecureDlrm
{
  public:
    /**
     * @param config architecture
     * @param generators one per sparse feature, in feature order
     * @param rng weight init for the MLPs (latency studies need no
     *        trained weights; use FromTrained to deploy a real model)
     */
    SecureDlrm(const DlrmConfig& config,
               std::vector<std::unique_ptr<core::EmbeddingGenerator>>
                   generators,
               Rng& rng);

    /**
     * End-to-end inference: returns CTR probabilities (batch).
     * Sparse features are processed sequentially, as in the paper's
     * evaluation setup.
     */
    Tensor Inference(const Tensor& dense,
                     const std::vector<std::vector<int64_t>>& sparse);

    /**
     * Multi-hot inference: feature f's ids are a flat list with bag
     * offsets (sum pooling per sample), the production DLRM input shape.
     * offsets[f] has batch+1 entries; bag lengths are public.
     */
    Tensor InferencePooled(
        const Tensor& dense,
        const std::vector<std::vector<int64_t>>& sparse_ids,
        const std::vector<std::vector<int64_t>>& sparse_offsets);

    /** Embedding-layers-only pass (Fig. 4 / Table VIII measurements). */
    void EmbeddingLayersOnly(
        const std::vector<std::vector<int64_t>>& sparse);

    void set_nthreads(int nthreads);

    int64_t EmbeddingFootprintBytes() const;
    core::EmbeddingGenerator& generator(int64_t f)
    {
        return *generators_[static_cast<size_t>(f)];
    }
    const DlrmConfig& config() const { return config_; }

  private:
    DlrmConfig config_;
    std::vector<std::unique_ptr<core::EmbeddingGenerator>> generators_;
    std::unique_ptr<nn::Sequential> bot_;
    std::unique_ptr<nn::Sequential> top_;
    int nthreads_ = 1;
};

}  // namespace secemb::dlrm
