#pragma once

/**
 * @file
 * DLRM feature interaction: concatenation or all-to-all dot products of
 * the processed dense vector and the sparse embeddings, with backward
 * passes for end-to-end training.
 *
 * Both variants are data-oblivious: the computation pattern depends only
 * on feature counts and dimensions (paper Section V-C).
 */

#include <vector>

#include "dlrm/config.h"
#include "tensor/tensor.h"

namespace secemb::dlrm {

/**
 * Forward interaction.
 *
 * @param kind dot or concat
 * @param dense processed dense features (batch x d)
 * @param embs one (batch x d) tensor per sparse feature
 * @return dot: (batch, d + f(f-1)/2) with f = #embs + 1 — dense vector
 *         concatenated with the upper triangle of pairwise dots;
 *         concat: (batch, d * (#embs + 1)).
 */
Tensor InteractionForward(Interaction kind, const Tensor& dense,
                          const std::vector<Tensor>& embs);

/**
 * Backward interaction: scatter grad_out into gradients for the dense
 * vector and each embedding. grad_dense / grad_embs are allocated by the
 * callee to match the forward inputs.
 */
void InteractionBackward(Interaction kind, const Tensor& dense,
                         const std::vector<Tensor>& embs,
                         const Tensor& grad_out, Tensor& grad_dense,
                         std::vector<Tensor>& grad_embs);

}  // namespace secemb::dlrm
