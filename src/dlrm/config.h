#pragma once

/**
 * @file
 * DLRM architecture configuration and the dataset-shaped presets the paper
 * evaluates (Table IV): Criteo Kaggle, Criteo Terabyte, and the Meta 2022
 * synthetic-trace table-size distribution (Section VI-C).
 */

#include <cstdint>
#include <vector>

namespace secemb::dlrm {

/** How sparse and dense features are combined before the top MLP. */
enum class Interaction
{
    kDot,     ///< all-to-all inner products (DLRM default)
    kConcat,  ///< plain concatenation
};

/** Architecture of one DLRM. */
struct DlrmConfig
{
    int64_t num_dense = 13;
    std::vector<int64_t> table_sizes;  ///< one per sparse feature
    int64_t emb_dim = 16;
    std::vector<int64_t> bot_mlp;  ///< hidden+out sizes, e.g. {512,256,64,16}
    std::vector<int64_t> top_mlp;  ///< hidden sizes; final 1 appended
    Interaction interaction = Interaction::kDot;

    int64_t num_sparse() const
    {
        return static_cast<int64_t>(table_sizes.size());
    }

    /** Width of the interaction output fed to the top MLP. */
    int64_t InteractionOutputDim() const;

    /**
     * Copy with every table size divided by `scale` (floored at
     * `min_rows`). Benchmarks use this to fit the full pipeline in a small
     * time/memory budget while preserving the size *spectrum*.
     */
    DlrmConfig Scaled(int64_t scale, int64_t min_rows = 4) const;

    /** Criteo Kaggle model of Table IV (dim 16). */
    static DlrmConfig CriteoKaggle();
    /** Criteo Terabyte model of Table IV (dim 64). */
    static DlrmConfig CriteoTerabyte();
};

/**
 * Table sizes shaped like the Meta 2022 embedding-trace dataset: 788
 * tables, heavy-tailed, max 4e7 rows (paper Section VI-C). Drawn
 * deterministically from a log-uniform-with-tail model of the published
 * statistics.
 */
std::vector<int64_t> MetaDatasetTableSizes();

}  // namespace secemb::dlrm
