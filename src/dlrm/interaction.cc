#include "dlrm/interaction.h"

#include <cassert>
#include <cstring>

namespace secemb::dlrm {

namespace {

/** Gather pointers to the f = embs+1 interacting vectors of sample i. */
std::vector<const float*>
VectorsOf(const Tensor& dense, const std::vector<Tensor>& embs, int64_t i,
          int64_t d)
{
    std::vector<const float*> vs;
    vs.reserve(embs.size() + 1);
    vs.push_back(dense.data() + i * d);
    for (const auto& e : embs) vs.push_back(e.data() + i * d);
    return vs;
}

}  // namespace

Tensor
InteractionForward(Interaction kind, const Tensor& dense,
                   const std::vector<Tensor>& embs)
{
    const int64_t batch = dense.size(0);
    const int64_t d = dense.size(1);
    const int64_t f = static_cast<int64_t>(embs.size()) + 1;
    for (const auto& e : embs) {
        assert(e.size(0) == batch && e.size(1) == d);
        (void)e;
    }

    if (kind == Interaction::kConcat) {
        Tensor out({batch, d * f});
        for (int64_t i = 0; i < batch; ++i) {
            float* o = out.data() + i * d * f;
            std::memcpy(o, dense.data() + i * d,
                        static_cast<size_t>(d) * sizeof(float));
            for (size_t e = 0; e < embs.size(); ++e) {
                std::memcpy(o + (e + 1) * d, embs[e].data() + i * d,
                            static_cast<size_t>(d) * sizeof(float));
            }
        }
        return out;
    }

    const int64_t pairs = f * (f - 1) / 2;
    Tensor out({batch, d + pairs});
    for (int64_t i = 0; i < batch; ++i) {
        const auto vs = VectorsOf(dense, embs, i, d);
        float* o = out.data() + i * (d + pairs);
        std::memcpy(o, vs[0], static_cast<size_t>(d) * sizeof(float));
        int64_t p = d;
        for (int64_t a = 0; a < f; ++a) {
            for (int64_t b = a + 1; b < f; ++b) {
                float acc = 0.0f;
                for (int64_t j = 0; j < d; ++j) {
                    acc += vs[static_cast<size_t>(a)][j] *
                           vs[static_cast<size_t>(b)][j];
                }
                o[p++] = acc;
            }
        }
    }
    return out;
}

void
InteractionBackward(Interaction kind, const Tensor& dense,
                    const std::vector<Tensor>& embs, const Tensor& grad_out,
                    Tensor& grad_dense, std::vector<Tensor>& grad_embs)
{
    const int64_t batch = dense.size(0);
    const int64_t d = dense.size(1);
    const int64_t f = static_cast<int64_t>(embs.size()) + 1;

    grad_dense = Tensor::Zeros({batch, d});
    grad_embs.assign(embs.size(), Tensor());
    for (size_t e = 0; e < embs.size(); ++e) {
        grad_embs[e] = Tensor::Zeros({batch, d});
    }

    if (kind == Interaction::kConcat) {
        assert(grad_out.size(1) == d * f);
        for (int64_t i = 0; i < batch; ++i) {
            const float* g = grad_out.data() + i * d * f;
            std::memcpy(grad_dense.data() + i * d, g,
                        static_cast<size_t>(d) * sizeof(float));
            for (size_t e = 0; e < embs.size(); ++e) {
                std::memcpy(grad_embs[e].data() + i * d, g + (e + 1) * d,
                            static_cast<size_t>(d) * sizeof(float));
            }
        }
        return;
    }

    const int64_t pairs = f * (f - 1) / 2;
    assert(grad_out.size(1) == d + pairs);
    for (int64_t i = 0; i < batch; ++i) {
        const auto vs = VectorsOf(dense, embs, i, d);
        std::vector<float*> gs;
        gs.reserve(static_cast<size_t>(f));
        gs.push_back(grad_dense.data() + i * d);
        for (auto& ge : grad_embs) gs.push_back(ge.data() + i * d);

        const float* g = grad_out.data() + i * (d + pairs);
        // Pass-through of the dense copy.
        for (int64_t j = 0; j < d; ++j) gs[0][j] += g[j];
        int64_t p = d;
        for (int64_t a = 0; a < f; ++a) {
            for (int64_t b = a + 1; b < f; ++b) {
                const float gp = g[p++];
                for (int64_t j = 0; j < d; ++j) {
                    gs[static_cast<size_t>(a)][j] +=
                        gp * vs[static_cast<size_t>(b)][j];
                    gs[static_cast<size_t>(b)][j] +=
                        gp * vs[static_cast<size_t>(a)][j];
                }
            }
        }
    }
}

}  // namespace secemb::dlrm
