#include "dlrm/model.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "telemetry/telemetry.h"

namespace secemb::dlrm {

namespace {

std::vector<int64_t>
WithInput(int64_t input, const std::vector<int64_t>& hidden,
          int64_t output)
{
    std::vector<int64_t> sizes;
    sizes.push_back(input);
    for (int64_t h : hidden) sizes.push_back(h);
    sizes.push_back(output);
    return sizes;
}

}  // namespace

// ---------------------------------------------------------------------------
// TrainableDlrm
// ---------------------------------------------------------------------------

TrainableDlrm::TrainableDlrm(const DlrmConfig& config, EmbeddingMode mode,
                             Rng& rng, int64_t dhe_size_divisor)
    : config_(config), mode_(mode)
{
    // Bottom MLP: num_dense -> ... -> emb_dim (last bot size must match).
    assert(!config.bot_mlp.empty() &&
           config.bot_mlp.back() == config.emb_dim);
    std::vector<int64_t> bot_sizes;
    bot_sizes.push_back(config.num_dense);
    for (int64_t h : config.bot_mlp) bot_sizes.push_back(h);
    bot_ = nn::MakeMlp(bot_sizes, rng);

    // Top MLP: interaction width -> ... -> 1 logit (loss adds sigmoid).
    top_ = nn::MakeMlp(
        WithInput(config.InteractionOutputDim(), config.top_mlp, 1), rng);

    for (int64_t f = 0; f < config.num_sparse(); ++f) {
        const int64_t rows = config.table_sizes[static_cast<size_t>(f)];
        if (mode == EmbeddingMode::kTable) {
            tables_.push_back(std::make_unique<nn::EmbeddingTable>(
                rows, config.emb_dim, rng));
        } else {
            dhe::DheConfig dc =
                mode == EmbeddingMode::kDheUniform
                    ? dhe::DheConfig::Uniform(config.emb_dim)
                    : dhe::DheConfig::Varied(rows, config.emb_dim);
            if (dhe_size_divisor > 1) {
                dc.k = std::max<int64_t>(16, dc.k / dhe_size_divisor);
                for (auto& w : dc.fc_hidden) {
                    w = std::max<int64_t>(16, w / dhe_size_divisor);
                }
            }
            dhes_.push_back(
                std::make_shared<dhe::DheEmbedding>(dc, rng));
        }
    }
}

Tensor
TrainableDlrm::Forward(const CtrBatch& batch)
{
    cached_batch_ = &batch;
    cached_dense_out_ = bot_->Forward(batch.dense);
    cached_embs_.clear();
    for (int64_t f = 0; f < config_.num_sparse(); ++f) {
        const auto& ids = batch.sparse[static_cast<size_t>(f)];
        if (mode_ == EmbeddingMode::kTable) {
            cached_embs_.push_back(
                tables_[static_cast<size_t>(f)]->Forward(ids));
        } else {
            cached_embs_.push_back(
                dhes_[static_cast<size_t>(f)]->Forward(ids));
        }
    }
    const Tensor z = InteractionForward(config_.interaction,
                                        cached_dense_out_, cached_embs_);
    Tensor logits = top_->Forward(z);
    return logits.Reshape({logits.size(0)});
}

void
TrainableDlrm::Backward(const Tensor& grad_logits)
{
    assert(cached_batch_ != nullptr);
    const Tensor grad_z =
        top_->Backward(grad_logits.Reshape({grad_logits.numel(), 1}));
    Tensor grad_dense;
    std::vector<Tensor> grad_embs;
    InteractionBackward(config_.interaction, cached_dense_out_,
                        cached_embs_, grad_z, grad_dense, grad_embs);
    for (int64_t f = 0; f < config_.num_sparse(); ++f) {
        const auto& ids = cached_batch_->sparse[static_cast<size_t>(f)];
        if (mode_ == EmbeddingMode::kTable) {
            tables_[static_cast<size_t>(f)]->Backward(
                ids, grad_embs[static_cast<size_t>(f)]);
        } else {
            dhes_[static_cast<size_t>(f)]->Backward(
                grad_embs[static_cast<size_t>(f)]);
        }
    }
    bot_->Backward(grad_dense);
}

float
TrainableDlrm::TrainStep(const CtrBatch& batch, nn::Optimizer& opt)
{
    opt.ZeroGrad();
    const Tensor logits = Forward(batch);
    Tensor grad;
    const float loss = nn::BceWithLogits(logits, batch.labels, &grad);
    Backward(grad);
    opt.Step();
    return loss;
}

float
TrainableDlrm::Evaluate(const CtrBatch& batch)
{
    const Tensor logits = Forward(batch);
    return nn::BinaryAccuracy(logits, batch.labels);
}

std::vector<nn::Parameter*>
TrainableDlrm::Parameters()
{
    std::vector<nn::Parameter*> ps;
    for (auto* p : bot_->Parameters()) ps.push_back(p);
    for (auto* p : top_->Parameters()) ps.push_back(p);
    for (auto& t : tables_) ps.push_back(&t->weight());
    for (auto& d : dhes_) {
        for (auto* p : d->Parameters()) ps.push_back(p);
    }
    return ps;
}

int64_t
TrainableDlrm::EmbeddingParamBytes()
{
    int64_t bytes = 0;
    for (auto& t : tables_) bytes += t->ParamBytes();
    for (auto& d : dhes_) bytes += d->ParamBytes();
    return bytes;
}

const Tensor&
TrainableDlrm::table(int64_t f) const
{
    if (mode_ != EmbeddingMode::kTable) {
        throw std::logic_error("table(): model trained with DHE");
    }
    return tables_[static_cast<size_t>(f)]->table();
}

std::shared_ptr<dhe::DheEmbedding>
TrainableDlrm::dhe(int64_t f)
{
    if (mode_ == EmbeddingMode::kTable) {
        throw std::logic_error("dhe(): model trained with tables");
    }
    return dhes_[static_cast<size_t>(f)];
}

// ---------------------------------------------------------------------------
// SecureDlrm
// ---------------------------------------------------------------------------

SecureDlrm::SecureDlrm(
    const DlrmConfig& config,
    std::vector<std::unique_ptr<core::EmbeddingGenerator>> generators,
    Rng& rng)
    : config_(config), generators_(std::move(generators))
{
    assert(static_cast<int64_t>(generators_.size()) ==
           config.num_sparse());
    std::vector<int64_t> bot_sizes;
    bot_sizes.push_back(config.num_dense);
    for (int64_t h : config.bot_mlp) bot_sizes.push_back(h);
    bot_ = nn::MakeMlp(bot_sizes, rng);
    top_ = nn::MakeMlp(
        WithInput(config.InteractionOutputDim(), config.top_mlp, 1), rng,
        /*final_sigmoid=*/true);
}

Tensor
SecureDlrm::Inference(const Tensor& dense,
                      const std::vector<std::vector<int64_t>>& sparse)
{
    TELEMETRY_SPAN("dlrm.inference");
    TELEMETRY_SCOPED_LATENCY("dlrm.inference.ns");
    TELEMETRY_COUNT("dlrm.inference.requests", dense.size(0));
    const Tensor dense_out = bot_->Forward(dense);
    std::vector<Tensor> embs;
    embs.reserve(sparse.size());
    {
        TELEMETRY_SPAN("dlrm.embedding_layers");
        for (int64_t f = 0; f < config_.num_sparse(); ++f) {
            embs.push_back(
                generators_[static_cast<size_t>(f)]->GenerateBatch(
                    sparse[static_cast<size_t>(f)]));
        }
    }
    const Tensor z =
        InteractionForward(config_.interaction, dense_out, embs);
    Tensor probs = top_->Forward(z);
    return probs.Reshape({probs.size(0)});
}

Tensor
SecureDlrm::InferencePooled(
    const Tensor& dense,
    const std::vector<std::vector<int64_t>>& sparse_ids,
    const std::vector<std::vector<int64_t>>& sparse_offsets)
{
    assert(sparse_ids.size() == sparse_offsets.size());
    TELEMETRY_SPAN("dlrm.inference_pooled");
    TELEMETRY_SCOPED_LATENCY("dlrm.inference.ns");
    TELEMETRY_COUNT("dlrm.inference.requests", dense.size(0));
    const Tensor dense_out = bot_->Forward(dense);
    std::vector<Tensor> embs;
    embs.reserve(sparse_ids.size());
    for (int64_t f = 0; f < config_.num_sparse(); ++f) {
        const auto& offsets = sparse_offsets[static_cast<size_t>(f)];
        const int64_t bags = static_cast<int64_t>(offsets.size()) - 1;
        Tensor pooled({bags, config_.emb_dim});
        generators_[static_cast<size_t>(f)]->GeneratePooled(
            sparse_ids[static_cast<size_t>(f)], offsets, pooled);
        embs.push_back(std::move(pooled));
    }
    const Tensor z =
        InteractionForward(config_.interaction, dense_out, embs);
    Tensor probs = top_->Forward(z);
    return probs.Reshape({probs.size(0)});
}

void
SecureDlrm::EmbeddingLayersOnly(
    const std::vector<std::vector<int64_t>>& sparse)
{
    for (int64_t f = 0; f < config_.num_sparse(); ++f) {
        Tensor out({static_cast<int64_t>(
                        sparse[static_cast<size_t>(f)].size()),
                    config_.emb_dim});
        generators_[static_cast<size_t>(f)]->Generate(
            sparse[static_cast<size_t>(f)], out);
    }
}

void
SecureDlrm::set_nthreads(int nthreads)
{
    nthreads_ = nthreads;
    for (auto& g : generators_) g->set_nthreads(nthreads);
}

int64_t
SecureDlrm::EmbeddingFootprintBytes() const
{
    int64_t bytes = 0;
    for (const auto& g : generators_) bytes += g->MemoryFootprintBytes();
    return bytes;
}

}  // namespace secemb::dlrm
