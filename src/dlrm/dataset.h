#pragma once

/**
 * @file
 * Synthetic click-through-rate dataset with Criteo-like structure.
 *
 * The real Criteo datasets (2 TB) are substituted by a generator that
 * produces (dense, sparse, label) triples from a hidden ground-truth
 * logistic model with skewed (power-law) index popularity — the properties
 * that matter for the paper's experiments: the task is *learnable*, so the
 * table-vs-DHE accuracy-parity experiment (Table V) is meaningful, and the
 * index distribution exercises caches the way production traffic does.
 */

#include <cstdint>
#include <vector>

#include "dlrm/config.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace secemb::dlrm {

/** One mini-batch of CTR training data. */
struct CtrBatch
{
    Tensor dense;    ///< (batch x num_dense)
    /** sparse[f][i]: index of feature f for sample i. */
    std::vector<std::vector<int64_t>> sparse;
    Tensor labels;   ///< (batch), values in {0, 1}
};

/** Synthetic CTR data source with a hidden ground-truth model. */
class SyntheticCtrDataset
{
  public:
    /**
     * @param config model/dataset shape (table sizes bound the indices)
     * @param seed dataset identity; the same seed replays the same stream
     */
    SyntheticCtrDataset(const DlrmConfig& config, uint64_t seed);

    /** Draw the next batch. */
    CtrBatch NextBatch(int64_t batch_size);

    /**
     * Draw a power-law-distributed index in [0, table_size): small
     * indices are hot, mimicking production popularity skew.
     */
    int64_t SampleIndex(int64_t table_size);

  private:
    DlrmConfig config_;
    Rng rng_;
    // Hidden ground truth: a linear scorer over dense features plus a
    // per-feature per-bucket contribution (hashed, so no giant tables).
    std::vector<float> dense_weights_;
    std::vector<uint64_t> feature_salt_;

    float TrueScore(const std::vector<float>& dense,
                    const std::vector<int64_t>& sparse_row) const;
};

}  // namespace secemb::dlrm
