#include "fault/fault.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "telemetry/telemetry.h"
#include "tensor/parallel.h"

namespace secemb::fault {

namespace {

std::atomic<FaultPlan*> g_active_plan{nullptr};

/// Worker-stall duration for the installed chunk hook (ScopedWorkerFaults).
std::atomic<uint64_t> g_stall_us{0};

/// splitmix64: the repo's idiom for cheap deterministic pseudo-randomness.
uint64_t
Mix64(uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
U01(uint64_t z)
{
    return static_cast<double>(z >> 11) * 0x1.0p-53;
}

void
ChunkHook(int64_t /*begin*/, int64_t /*end*/)
{
    FaultPlan* plan = g_active_plan.load(std::memory_order_relaxed);
    if (plan == nullptr) return;
    if (plan->ShouldFire(FaultSite::kWorkerStall)) {
        const uint64_t us = g_stall_us.load(std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
    if (plan->ShouldFire(FaultSite::kWorkerException)) {
        throw InjectedFault("injected worker exception");
    }
}

}  // namespace

const char*
FaultSiteName(FaultSite site)
{
    switch (site) {
        case FaultSite::kAlloc: return "alloc";
        case FaultSite::kWorkerException: return "worker_exception";
        case FaultSite::kWorkerStall: return "worker_stall";
        case FaultSite::kGenerate: return "generate";
        case FaultSite::kIoOpen: return "io_open";
        case FaultSite::kIoRead: return "io_read";
        case FaultSite::kIoWrite: return "io_write";
        case FaultSite::kCount: break;
    }
    return "unknown";
}

FaultPlan::FaultPlan(uint64_t seed) : seed_(seed) {}

void
FaultPlan::ArmCountdown(FaultSite site, uint64_t first_hit, uint64_t period,
                        uint64_t max_fires)
{
    Site& s = sites_[static_cast<int>(site)];
    s.mode = Site::Mode::kCountdown;
    s.first_hit = first_hit == 0 ? 1 : first_hit;
    s.period = period;
    s.max_fires = max_fires;
}

void
FaultPlan::ArmRate(FaultSite site, double rate, uint64_t max_fires)
{
    Site& s = sites_[static_cast<int>(site)];
    s.mode = Site::Mode::kRate;
    s.rate = rate;
    s.max_fires = max_fires;
}

void
FaultPlan::Disarm(FaultSite site)
{
    sites_[static_cast<int>(site)].mode = Site::Mode::kOff;
}

void
FaultPlan::set_clock_skew_ns(int64_t skew_ns)
{
    clock_skew_ns_.store(skew_ns, std::memory_order_relaxed);
}

int64_t
FaultPlan::clock_skew_ns() const
{
    return clock_skew_ns_.load(std::memory_order_relaxed);
}

bool
FaultPlan::ShouldFire(FaultSite site)
{
    Site& s = sites_[static_cast<int>(site)];
    if (s.mode == Site::Mode::kOff) return false;
    const uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire = false;
    switch (s.mode) {
        case Site::Mode::kOff: return false;
        case Site::Mode::kCountdown:
            if (hit < s.first_hit) return false;
            fire = s.period == 0 ? hit == s.first_hit
                                 : (hit - s.first_hit) % s.period == 0;
            break;
        case Site::Mode::kRate:
            fire = U01(Mix64(seed_ ^ (static_cast<uint64_t>(site) << 56) ^
                             hit)) < s.rate;
            break;
    }
    if (!fire) return false;
    // Respect the fire cap under concurrent hits: claim a fire slot or bail.
    uint64_t f = s.fires.load(std::memory_order_relaxed);
    for (;;) {
        if (s.max_fires != 0 && f >= s.max_fires) return false;
        if (s.fires.compare_exchange_weak(f, f + 1,
                                          std::memory_order_relaxed)) {
            break;
        }
    }
    TELEMETRY_COUNT("fault.injected", 1);
    return true;
}

uint64_t
FaultPlan::hits(FaultSite site) const
{
    return sites_[static_cast<int>(site)].hits.load(
        std::memory_order_relaxed);
}

uint64_t
FaultPlan::fires(FaultSite site) const
{
    return sites_[static_cast<int>(site)].fires.load(
        std::memory_order_relaxed);
}

void
FaultPlan::ResetCounters()
{
    for (Site& s : sites_) {
        s.hits.store(0, std::memory_order_relaxed);
        s.fires.store(0, std::memory_order_relaxed);
    }
}

ScopedFaultInjection::ScopedFaultInjection(FaultPlan* plan)
    : previous_(g_active_plan.exchange(plan, std::memory_order_relaxed))
{
}

ScopedFaultInjection::~ScopedFaultInjection()
{
    g_active_plan.store(previous_, std::memory_order_relaxed);
}

FaultPlan*
ActivePlan()
{
    return g_active_plan.load(std::memory_order_relaxed);
}

bool
ShouldInject(FaultSite site)
{
    FaultPlan* plan = g_active_plan.load(std::memory_order_relaxed);
    return plan != nullptr && plan->ShouldFire(site);
}

void
MaybeThrow(FaultSite site, const char* what)
{
    if (ShouldInject(site)) throw InjectedFault(what);
}

ScopedWorkerFaults::ScopedWorkerFaults(uint64_t stall_us)
{
    g_stall_us.store(stall_us, std::memory_order_relaxed);
    SetChunkFaultHookForTest(&ChunkHook);
}

ScopedWorkerFaults::~ScopedWorkerFaults()
{
    SetChunkFaultHookForTest(nullptr);
}

uint64_t
CorruptFileBytes(const std::string& path, uint64_t seed, int flips,
                 uint64_t skip_prefix)
{
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    if (f == nullptr) {
        throw std::runtime_error("CorruptFileBytes: cannot open " + path);
    }
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    if (size < 0 || static_cast<uint64_t>(size) <= skip_prefix) {
        std::fclose(f);
        throw std::runtime_error(
            "CorruptFileBytes: no corruptible payload in " + path);
    }
    const uint64_t span = static_cast<uint64_t>(size) - skip_prefix;
    uint64_t first_offset = 0;
    for (int i = 0; i < flips; ++i) {
        const uint64_t offset =
            skip_prefix + Mix64(seed ^ static_cast<uint64_t>(i)) % span;
        if (i == 0) first_offset = offset;
        unsigned char byte = 0;
        std::fseek(f, static_cast<long>(offset), SEEK_SET);
        if (std::fread(&byte, 1, 1, f) != 1) {
            std::fclose(f);
            throw std::runtime_error("CorruptFileBytes: read failed in " +
                                     path);
        }
        byte ^= 0xa5;  // xor with a fixed mask always changes the byte
        std::fseek(f, static_cast<long>(offset), SEEK_SET);
        if (std::fwrite(&byte, 1, 1, f) != 1) {
            std::fclose(f);
            throw std::runtime_error("CorruptFileBytes: write failed in " +
                                     path);
        }
    }
    std::fclose(f);
    return first_offset;
}

void
TruncateFile(const std::string& path, double fraction)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) {
        throw std::runtime_error("TruncateFile: cannot stat " + path);
    }
    const auto target = static_cast<uintmax_t>(
        static_cast<double>(size) * fraction);
    std::filesystem::resize_file(path, target, ec);
    if (ec) {
        throw std::runtime_error("TruncateFile: resize failed for " + path);
    }
}

}  // namespace secemb::fault
