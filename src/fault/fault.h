#pragma once

/**
 * @file
 * Deterministic, seeded fault injection for chaos testing.
 *
 * A FaultPlan is a replayable schedule of failures: each fault *site*
 * (allocation, worker exception, worker stall, generation attempt) is
 * armed either with a countdown ("fire on the Nth hit") or a rate ("fire
 * each hit with probability p, decided by seed and hit ordinal"). Every
 * decision is a pure function of (seed, site, hit count), so a chaos run
 * replays bit-for-bit from its seed and failing cases are regular ctest
 * cases, not flaky coin flips.
 *
 * Plans are installed process-wide with ScopedFaultInjection (RAII);
 * instrumented code asks ShouldInject(site) at each site, which is a
 * single relaxed atomic load when no plan is active — cheap enough to
 * leave compiled into hot paths.
 *
 * Obliviousness note: fault sites key on *where* execution is (an
 * allocation, a chunk claim, a generation attempt), never on request
 * values — injected faults perturb load and health signals only, which is
 * exactly the class of signal the serving layer is allowed to degrade on.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace secemb::fault {

/// Thrown by every injected failure so retry logic and tests can
/// distinguish injected transients from genuine bugs.
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

enum class FaultSite : int
{
    kAlloc = 0,        ///< FaultAllocator throws std::bad_alloc
    kWorkerException,  ///< ParallelFor chunk throws InjectedFault
    kWorkerStall,      ///< ParallelFor chunk sleeps before running
    kGenerate,         ///< serving generation attempt fails up front
    kIoOpen,           ///< backing-store open/create fails
    kIoRead,           ///< backing-store page read fails (short read)
    kIoWrite,          ///< backing-store page write fails (ENOSPC)
    kCount,
};

const char* FaultSiteName(FaultSite site);

/**
 * A seeded, replayable fault schedule. Arm sites before installing the
 * plan (arming is not thread-safe against ShouldFire); ShouldFire itself
 * is thread-safe and may be hit concurrently from pool workers.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(uint64_t seed);

    /// Fire on the `first_hit`-th hit (1-based), then every `period` hits
    /// after that (period 0 = that one hit only), at most `max_fires`
    /// times in total (0 = unlimited).
    void ArmCountdown(FaultSite site, uint64_t first_hit,
                      uint64_t period = 0, uint64_t max_fires = 1);

    /// Fire each hit independently with probability `rate`; the decision
    /// for hit k is a pure function of (seed, site, k). max_fires 0 =
    /// unlimited.
    void ArmRate(FaultSite site, double rate, uint64_t max_fires = 0);

    void Disarm(FaultSite site);

    /// Constant skew added to the serving clock while this plan is active
    /// (positive = time appears to have advanced; models deadline overrun).
    void set_clock_skew_ns(int64_t skew_ns);
    int64_t clock_skew_ns() const;

    /// Count one hit at `site` and decide whether the fault fires now.
    bool ShouldFire(FaultSite site);

    uint64_t hits(FaultSite site) const;
    uint64_t fires(FaultSite site) const;
    uint64_t seed() const { return seed_; }

    /// Zero hit/fire counters (arming kept) so the same plan replays.
    void ResetCounters();

  private:
    struct Site
    {
        enum class Mode
        {
            kOff,
            kCountdown,
            kRate
        };
        Mode mode = Mode::kOff;
        uint64_t first_hit = 0;
        uint64_t period = 0;
        uint64_t max_fires = 0;
        double rate = 0.0;
        std::atomic<uint64_t> hits{0};
        std::atomic<uint64_t> fires{0};
    };

    Site sites_[static_cast<int>(FaultSite::kCount)];
    uint64_t seed_ = 0;
    std::atomic<int64_t> clock_skew_ns_{0};
};

/** RAII: install `plan` as the process-wide active plan; restores the
 *  previously active plan (usually none) on destruction. */
class ScopedFaultInjection
{
  public:
    explicit ScopedFaultInjection(FaultPlan* plan);
    ~ScopedFaultInjection();
    ScopedFaultInjection(const ScopedFaultInjection&) = delete;
    ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  private:
    FaultPlan* previous_ = nullptr;
};

/// The currently installed plan, or nullptr.
FaultPlan* ActivePlan();

/// True iff a plan is active and `site` fires on this hit. A single
/// relaxed atomic load when no plan is installed.
bool ShouldInject(FaultSite site);

/// Throw InjectedFault(what) if `site` fires on this hit.
void MaybeThrow(FaultSite site, const char* what);

/**
 * Allocator for hot-path containers: behaves as std::allocator<T> but
 * throws std::bad_alloc when the active plan fires kAlloc, so allocation
 * failure in a queue push or batch assembly is forced deterministically
 * rather than by exhausting real memory.
 */
template <typename T>
struct FaultAllocator
{
    using value_type = T;

    FaultAllocator() = default;
    template <typename U>
    FaultAllocator(const FaultAllocator<U>&)  // NOLINT(runtime/explicit)
    {
    }

    T*
    allocate(std::size_t n)
    {
        if (ShouldInject(FaultSite::kAlloc)) throw std::bad_alloc();
        return std::allocator<T>{}.allocate(n);
    }

    void
    deallocate(T* p, std::size_t n)
    {
        std::allocator<T>{}.deallocate(p, n);
    }

    template <typename U>
    bool
    operator==(const FaultAllocator<U>&) const
    {
        return true;
    }
    template <typename U>
    bool
    operator!=(const FaultAllocator<U>&) const
    {
        return false;
    }
};

/**
 * RAII: install the ParallelFor chunk hook that consults the active plan
 * before every chunk body — kWorkerStall fires → sleep `stall_us`;
 * kWorkerException fires → throw InjectedFault (propagated to the region
 * caller exactly like a real worker exception). Install only while no
 * parallel region is running.
 */
class ScopedWorkerFaults
{
  public:
    explicit ScopedWorkerFaults(uint64_t stall_us = 100);
    ~ScopedWorkerFaults();
    ScopedWorkerFaults(const ScopedWorkerFaults&) = delete;
    ScopedWorkerFaults& operator=(const ScopedWorkerFaults&) = delete;
};

/**
 * Deterministically corrupt a file in place: flip `flips` bytes at
 * seeded offsets in [skip_prefix, file size). Returns the first flipped
 * offset. Throws std::runtime_error on IO failure or if the file has no
 * corruptible payload past `skip_prefix`.
 */
uint64_t CorruptFileBytes(const std::string& path, uint64_t seed,
                          int flips = 1, uint64_t skip_prefix = 0);

/// Truncate the file to floor(fraction * current size) bytes.
void TruncateFile(const std::string& path, double fraction);

}  // namespace secemb::fault
