#pragma once

/**
 * @file
 * Asynchronous ORAM front-end (TaoStore-style proxy).
 *
 * The serial TreeOram controller processes one access at a time with
 * eviction inline — exactly the scaling weakness the paper's Fig. 12
 * exposes. OramProxy owns a TreeOram and exposes a request-queue/future
 * interface: callers submit logical block reads; a single conductor
 * thread drains the queue in fixed-size windows and executes, for every
 * window of w logical requests, exactly w physical accesses.
 *
 * Security argument (DESIGN.md "Concurrent ORAM proxy"):
 *  - The physical schedule is public and input-independent: w accesses
 *    per window, each with the identical trace shape of one serial Path
 *    ORAM access, regardless of which ids were requested.
 *  - Duplicate ids inside a window are coalesced — one physical access
 *    fans its result out to every waiter (the TaoStore correctness and
 *    security point: re-fetching a duplicate's fresh path would correlate
 *    with request contents). The schedule is padded back to w with dummy
 *    accesses of uniformly random ids, so the number of physical accesses
 *    never reveals the (secret) duplicate structure.
 *  - All trace recording happens on the conductor thread, serially and at
 *    fixed points; pool threads only move payload words whose placement
 *    was decided by a serial oblivious metadata pass. Recorded traces are
 *    bit-identical to the serial controller's access shape.
 *  - Eviction (the path write-back's payload blend + re-encryption) is
 *    deferred and executed on pool threads fused with the NEXT access's
 *    position-map scan — work overlap without reordering any recorded
 *    event. Deferred work drains before any state it wrote is read again.
 *
 * Parallel decomposition applies to Path ORAM with a flat position map;
 * Circuit ORAM and recursive position maps fall back to the serial
 * controller behind the same queue (still coalesced + padded).
 *
 * Thread-compatibility: SubmitRead/Flush are safe from any thread;
 * construction and destruction must not race submissions.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "oram/tree_oram.h"
#include "serving/flight_recorder.h"

namespace secemb::oram {

/** Tunables for one proxy instance. */
struct ProxyConfig
{
    /** Logical requests per window; one window = this many physical
     *  accesses (public). */
    int batch_window = 4;
    /** ParallelFor width for intra-access data movement and the fused
     *  eviction/position-map region. <= 1 still runs the same phases. */
    int nthreads = 1;
    /** Bounded request queue; SubmitRead blocks when full. */
    size_t queue_capacity = 256;
    /** Optional lifecycle-hop sink (proxy_enqueue/coalesce/access/evict). */
    serving::FlightRecorder* flight = nullptr;
};

/** Running counters, cumulative since construction. */
struct ProxyStats
{
    uint64_t requests = 0;          ///< logical reads submitted
    uint64_t physical_accesses = 0; ///< real + dummy accesses issued
    uint64_t real_accesses = 0;     ///< first occurrence of an id
    uint64_t dummy_accesses = 0;    ///< padding accesses (random id)
    uint64_t coalesced = 0;         ///< waiters served by another access
    uint64_t windows = 0;           ///< windows processed
    uint64_t evictions_deferred = 0;   ///< write-back tasks staged
    uint64_t evictions_overlapped = 0; ///< drained fused with later work
};

class OramProxy
{
  public:
    /**
     * A pluggable serial ORAM controller: fills `out` (block_words) with
     * the payload of block `id`. Only the conductor thread calls it, so
     * implementations need not be thread-safe — this is how the proxy
     * fronts backends other than TreeOram (the out-of-core RAW ORAM in
     * src/store).
     */
    using BlockBackend =
        std::function<void(int64_t id, std::vector<uint32_t>& out)>;

    /** Takes ownership of a loaded TreeOram. The conductor thread starts
     *  immediately. */
    OramProxy(std::unique_ptr<TreeOram> oram, const ProxyConfig& config);

    /**
     * Front a generic oblivious block backend: same queue, coalescing,
     * and dummy padding; every physical access runs the backend serially
     * on the conductor (the parallel Path decomposition needs TreeOram
     * internals and does not apply).
     *
     * @param dummy_seed seeds the dummy-access id stream
     */
    OramProxy(BlockBackend backend, int64_t num_blocks,
              int64_t block_words, uint64_t dummy_seed,
              const ProxyConfig& config);

    ~OramProxy();

    OramProxy(const OramProxy&) = delete;
    OramProxy& operator=(const OramProxy&) = delete;

    /**
     * Enqueue an oblivious read of block `id`; the future resolves with
     * the block payload once its window is processed. Blocks while the
     * queue is full. Throws std::runtime_error after Shutdown().
     */
    std::future<std::vector<uint32_t>> SubmitRead(int64_t id);

    /**
     * Process any partial tail window and wait until every request
     * submitted before this call has been fulfilled and all deferred
     * eviction work has drained.
     */
    void Flush();

    /** Flush, then stop the conductor. Idempotent. */
    void Shutdown();

    /** Valid only for the TreeOram-owning constructor (has_tree()). */
    TreeOram& oram() { return *tree_; }
    const TreeOram& oram() const { return *tree_; }
    bool has_tree() const { return tree_ != nullptr; }
    ProxyStats stats() const;

    /** ParallelFor width for subsequent accesses (any thread). */
    void set_nthreads(int n) { nthreads_.store(n); }
    /** Swap the lifecycle-hop sink (any thread; nullptr disables). */
    void set_flight(serving::FlightRecorder* flight)
    {
        flight_.store(flight);
    }

  private:
    struct Request
    {
        int64_t id = 0;
        uint64_t rid = 0;  ///< proxy-local request id (flight recorder)
        std::promise<std::vector<uint32_t>> promise;
    };

    /** One deferred write-back bucket: payload blend + re-encryption. */
    struct EvictTask
    {
        int64_t bucket = 0;
        /** Chosen stash index per slot (sentinel = stash size = none). */
        std::vector<uint64_t> chosen;
    };

    void ConductorLoop();
    void ProcessWindow(std::vector<Request>& window);
    void PhysicalAccess(int64_t id, std::vector<uint32_t>& out);
    void ParallelPathAccess(int64_t id, std::vector<uint32_t>& out);
    void RunEvictTask(const EvictTask& task);
    void DrainEvictions();
    void RecordHop(serving::FlightHop hop, uint64_t rid, uint32_t detail);

    std::unique_ptr<TreeOram> tree_;
    BlockBackend backend_;   ///< set iff tree_ is null
    int64_t num_blocks_;     ///< cached geometry (both backends)
    int64_t block_words_;
    ProxyConfig config_;
    bool parallel_path_;  ///< Path kind + flat posmap: parallel pipeline
    Rng dummy_rng_;       ///< dummy-access ids (split from the tree's rng)
    std::atomic<int> nthreads_;  ///< live copy of config_.nthreads
    std::atomic<serving::FlightRecorder*> flight_;  ///< live hop sink

    // Conductor-owned scratch (no per-access allocation in steady state).
    std::vector<uint64_t> take_;     ///< path-read take-mask matrix
    std::vector<uint64_t> placed_;   ///< write-back placement masks
    std::vector<EvictTask> deferred_;
    std::vector<EvictTask> task_pool_;  ///< recycled EvictTask storage

    // Queue + lifecycle (guarded by mu_).
    mutable std::mutex mu_;
    std::condition_variable cv_space_;  ///< queue has room
    std::condition_variable cv_work_;   ///< conductor: work or flush
    std::condition_variable cv_done_;   ///< waiters: progress
    std::vector<Request> queue_;
    uint64_t submitted_ = 0;
    uint64_t completed_ = 0;
    int flush_waiters_ = 0;
    bool shutdown_ = false;
    bool broken_ = false;  ///< a physical access threw; state untrusted
    ProxyStats stats_;

    std::thread conductor_;
};

/** Drop-in helper: total window count for n requests (public shape). */
inline int64_t
ProxyWindows(int64_t requests, int batch_window)
{
    const int64_t w = batch_window > 0 ? batch_window : 1;
    return (requests + w - 1) / w;
}

}  // namespace secemb::oram
