#include "oram/proxy.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "oblivious/ct_ops.h"
#include "perfmon/perfmon.h"
#include "telemetry/telemetry.h"
#include "tensor/parallel.h"

namespace secemb::oram {

using oblivious::BoolToMask;
using oblivious::EqMask;

// ---------------------------------------------------------------------------
// Construction / lifecycle
// ---------------------------------------------------------------------------

OramProxy::OramProxy(std::unique_ptr<TreeOram> oram,
                     const ProxyConfig& config)
    : tree_(std::move(oram)),
      num_blocks_(tree_->num_blocks_),
      block_words_(tree_->block_words_),
      config_(config),
      dummy_rng_(tree_->rng_.Next()),
      nthreads_(config.nthreads),
      flight_(config.flight)
{
    if (config_.batch_window < 1) config_.batch_window = 1;
    if (config_.queue_capacity < 1) config_.queue_capacity = 1;
    // The parallel decomposition below replicates the Path ORAM phases;
    // Circuit ORAM and recursive position maps run the serial controller
    // behind the same queue (coalescing + padding still apply).
    parallel_path_ = tree_->kind_ == OramKind::kPath &&
                     !tree_->posmap_.recursive();
    const size_t slots = static_cast<size_t>(
        (tree_->levels_ + 1) * tree_->params_.bucket_capacity);
    take_.assign(slots * tree_->stash_id_.size(), 0);
    placed_.assign(tree_->stash_id_.size(), 0);
    conductor_ = std::thread([this] { ConductorLoop(); });
}

OramProxy::OramProxy(BlockBackend backend, int64_t num_blocks,
                     int64_t block_words, uint64_t dummy_seed,
                     const ProxyConfig& config)
    : backend_(std::move(backend)),
      num_blocks_(num_blocks),
      block_words_(block_words),
      config_(config),
      dummy_rng_(dummy_seed),
      nthreads_(config.nthreads),
      flight_(config.flight)
{
    if (config_.batch_window < 1) config_.batch_window = 1;
    if (config_.queue_capacity < 1) config_.queue_capacity = 1;
    // Generic backends are serial controllers by contract; the parallel
    // decomposition is TreeOram-specific.
    parallel_path_ = false;
    conductor_ = std::thread([this] { ConductorLoop(); });
}

OramProxy::~OramProxy()
{
    Shutdown();
}

std::future<std::vector<uint32_t>>
OramProxy::SubmitRead(int64_t id)
{
    if (id < 0 || id >= num_blocks_) {
        throw std::invalid_argument("OramProxy: id out of range");
    }
    Request req;
    req.id = id;
    std::future<std::vector<uint32_t>> fut = req.promise.get_future();
    uint64_t rid = 0;
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_space_.wait(lock, [&] {
            return shutdown_ || queue_.size() < config_.queue_capacity;
        });
        if (shutdown_) {
            throw std::runtime_error("OramProxy: shut down");
        }
        rid = req.rid = ++submitted_;
        ++stats_.requests;
        queue_.push_back(std::move(req));
    }
    TELEMETRY_COUNT("oram.proxy.requests", 1);
    RecordHop(serving::FlightHop::kProxyEnqueue, rid, 0);
    cv_work_.notify_one();
    return fut;
}

void
OramProxy::Flush()
{
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t target = submitted_;
    ++flush_waiters_;
    cv_work_.notify_one();
    cv_done_.wait(lock, [&] { return completed_ >= target || shutdown_; });
    --flush_waiters_;
    // completed_ only advances after the window's deferred evictions
    // drained, so returning here means the tree state is quiescent.
}

void
OramProxy::Shutdown()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (shutdown_) {
            // Idempotent: just wait for the conductor if still running.
        }
        shutdown_ = true;
    }
    cv_work_.notify_all();
    cv_space_.notify_all();
    if (conductor_.joinable()) conductor_.join();
    cv_done_.notify_all();
}

ProxyStats
OramProxy::stats() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return stats_;
}

void
OramProxy::RecordHop(serving::FlightHop hop, uint64_t rid, uint32_t detail)
{
    serving::FlightRecorder* flight = flight_.load();
    if (flight == nullptr) return;
    serving::FlightEvent e;
    e.request_id = rid;
    e.hop = hop;
    e.detail = detail;
    flight->Record(e);
}

// ---------------------------------------------------------------------------
// Conductor
// ---------------------------------------------------------------------------

void
OramProxy::ConductorLoop()
{
    std::vector<Request> window;
    for (;;) {
        window.clear();
        {
            std::unique_lock<std::mutex> lock(mu_);
            for (;;) {
                while (!queue_.empty() &&
                       window.size() <
                           static_cast<size_t>(config_.batch_window)) {
                    window.push_back(std::move(queue_.front()));
                    queue_.erase(queue_.begin());
                    cv_space_.notify_one();
                }
                if (window.size() ==
                    static_cast<size_t>(config_.batch_window)) {
                    break;
                }
                // A partial window is processed only when a Flush() is
                // waiting or we are shutting down — window boundaries
                // stay a deterministic function of arrival order.
                if (!window.empty() &&
                    (flush_waiters_ > 0 || shutdown_)) {
                    break;
                }
                if (window.empty() && shutdown_ && queue_.empty()) {
                    return;  // deferred work was drained with the last
                             // window (ProcessWindow always drains)
                }
                if (window.empty() && flush_waiters_ > 0 &&
                    queue_.empty()) {
                    // Nothing to do for this flush; let it observe
                    // completed_ == submitted_.
                    cv_done_.notify_all();
                }
                cv_work_.wait(lock);
            }
        }
        ProcessWindow(window);
        {
            std::unique_lock<std::mutex> lock(mu_);
            completed_ += window.size();
            ++stats_.windows;
        }
        cv_done_.notify_all();
    }
}

void
OramProxy::ProcessWindow(std::vector<Request>& window)
{
    TELEMETRY_SCOPED_COUNTERS("oram.proxy.window");
    TELEMETRY_SCOPED_LATENCY("oram.proxy.window.ns");
    TELEMETRY_COUNT("oram.proxy.windows", 1);

    const size_t w = window.size();
    // Coalesce: one entry per distinct id, in first-occurrence order;
    // duplicates join the earlier entry's waiter list.
    struct Entry
    {
        int64_t id;
        std::vector<size_t> waiters;  ///< indices into `window`
    };
    std::vector<Entry> entries;
    entries.reserve(w);
    for (size_t i = 0; i < w; ++i) {
        size_t at = entries.size();
        for (size_t e = 0; e < entries.size(); ++e) {
            if (entries[e].id == window[i].id) {
                at = e;
                break;
            }
        }
        if (at == entries.size()) {
            entries.push_back(Entry{window[i].id, {i}});
        } else {
            entries[at].waiters.push_back(i);
            {
                std::unique_lock<std::mutex> lock(mu_);
                ++stats_.coalesced;
            }
            RecordHop(serving::FlightHop::kProxyCoalesce, window[i].rid,
                      static_cast<uint32_t>(at));
        }
    }

    // Physical schedule: exactly w accesses — the d distinct ids in
    // first-occurrence order, padded with dummy reads of uniformly
    // random ids. Each access has the identical trace shape, so the
    // schedule reveals only w (public).
    std::vector<uint32_t> block(static_cast<size_t>(block_words_));
    for (size_t s = 0; s < w; ++s) {
        const bool real = s < entries.size();
        const int64_t id =
            real ? entries[s].id
                 : static_cast<int64_t>(dummy_rng_.NextBounded(
                       static_cast<uint64_t>(num_blocks_)));
        const uint64_t rid = real ? window[entries[s].waiters[0]].rid : 0;
        RecordHop(serving::FlightHop::kProxyAccess, rid,
                  static_cast<uint32_t>(s));
        bool failed = false;
        std::exception_ptr error;
        if (broken_) {
            failed = true;
            error = std::make_exception_ptr(std::runtime_error(
                "OramProxy: controller state poisoned by earlier fault"));
        } else {
            try {
                PhysicalAccess(id, block);
            } catch (...) {
                failed = true;
                error = std::current_exception();
                broken_ = true;
            }
        }
        {
            std::unique_lock<std::mutex> lock(mu_);
            ++stats_.physical_accesses;
            if (real) {
                ++stats_.real_accesses;
            } else {
                ++stats_.dummy_accesses;
            }
        }
        if (real) {
            for (size_t wi : entries[s].waiters) {
                if (failed) {
                    window[wi].promise.set_exception(error);
                } else {
                    window[wi].promise.set_value(block);
                }
            }
        }
    }
    // Window boundary: drain eviction work staged by the last access so
    // Flush() returns with a quiescent tree.
    DrainEvictions();
}

// ---------------------------------------------------------------------------
// Physical access
// ---------------------------------------------------------------------------

void
OramProxy::PhysicalAccess(int64_t id, std::vector<uint32_t>& out)
{
    TELEMETRY_SCOPED_COUNTERS("oram.proxy.access");
    if (backend_) {
        // Generic serial backend (e.g. the out-of-core RAW ORAM): the
        // backend stages no deferred eviction work here, so there is
        // nothing to drain.
        backend_(id, out);
        return;
    }
    if (!parallel_path_ || nthreads_.load() <= 1) {
        // Serial fallback (Circuit ORAM / recursive posmap / one thread):
        // identical per-access trace shape by the serial controller's own
        // argument. With one thread the decomposed path buys nothing, so
        // skip its extra metadata passes entirely — but first drain any
        // write-back encryption staged by a previous parallel access,
        // which the serial controller expects to be applied.
        // The controller counts its own oram.access spans.
        DrainEvictions();
        tree_->Read(id, out);
        return;
    }
    TELEMETRY_COUNT("oram.accesses", 1);
    ParallelPathAccess(id, out);
}

/**
 * One Path ORAM access decomposed for pool threads. The recorded trace
 * and the resulting controller state are identical to TreeOram::Access
 * (asserted by the differential tests); what changes is who moves the
 * payload words:
 *
 *   A. position-map scan in parallel chunks, fused with the previous
 *      access's deferred eviction tasks (disjoint state: posmap flat_
 *      vs tree slot_data_/stash payloads);
 *   B. path read — serial oblivious metadata pass decides stash
 *      placement (take-mask matrix), then pool threads decrypt buckets
 *      (disjoint) and move payloads (one writer per stash entry);
 *   C. stash read-remove / re-insert — serial (tiny);
 *   D. write-back — serial metadata pass chooses blocks and updates all
 *      ids/leaves, while the payload blend + re-encryption of each
 *      bucket is staged as an EvictTask drained in the next access's
 *      phase A (or at the window boundary).
 */
void
OramProxy::ParallelPathAccess(int64_t id, std::vector<uint32_t>& out)
{
    TreeOram& t = *tree_;
    ++t.stats_.accesses;
    const int64_t bw = t.block_words_;
    const int64_t z = t.params_.bucket_capacity;
    const int64_t levels = t.levels_;
    const size_t stash = t.stash_id_.size();
    const uint64_t sentinel = static_cast<uint64_t>(stash);
    const int nthreads = std::max(1, nthreads_.load());

    // --- A: posmap update fused with deferred evictions -------------------
    const uint32_t new_leaf = t.RandomLeaf();
    PositionMap& pm = t.posmap_;
    if (pm.recorder_) {
        pm.recorder_->Record(pm.trace_base_,
                             static_cast<uint32_t>(pm.flat_.size() * 4),
                             false);
        pm.recorder_->Record(pm.trace_base_,
                             static_cast<uint32_t>(pm.flat_.size() * 4),
                             true);
    }
    const size_t n_evict = deferred_.size();
    const int64_t pm_chunks = std::max<int64_t>(1, nthreads);
    const int64_t pm_size = static_cast<int64_t>(pm.flat_.size());
    const int64_t pm_step = (pm_size + pm_chunks - 1) / pm_chunks;
    std::vector<uint32_t> old_partial(static_cast<size_t>(pm_chunks), 0);
    const int64_t tasks =
        static_cast<int64_t>(n_evict) + pm_chunks;
    ParallelFor(tasks, nthreads, [&](int64_t b, int64_t e) {
        for (int64_t task = b; task < e; ++task) {
            if (task < static_cast<int64_t>(n_evict)) {
                RunEvictTask(deferred_[static_cast<size_t>(task)]);
                continue;
            }
            const int64_t c = task - static_cast<int64_t>(n_evict);
            const int64_t lo = c * pm_step;
            const int64_t hi = std::min(pm_size, lo + pm_step);
            uint32_t old = 0;
            if (pm.inline_select_) {
                for (int64_t i = lo; i < hi; ++i) {
                    const uint64_t m =
                        EqMask(static_cast<uint64_t>(i),
                               static_cast<uint64_t>(id));
                    old = static_cast<uint32_t>(oblivious::Select(
                        m, pm.flat_[static_cast<size_t>(i)], old));
                    pm.flat_[static_cast<size_t>(i)] =
                        static_cast<uint32_t>(oblivious::Select(
                            m, new_leaf,
                            pm.flat_[static_cast<size_t>(i)]));
                }
            } else {
                for (int64_t i = lo; i < hi; ++i) {
                    const uint64_t m =
                        EqMask(static_cast<uint64_t>(i),
                               static_cast<uint64_t>(id));
                    old = static_cast<uint32_t>(oblivious::SelectNoInline(
                        m, pm.flat_[static_cast<size_t>(i)], old));
                    pm.flat_[static_cast<size_t>(i)] =
                        static_cast<uint32_t>(oblivious::SelectNoInline(
                            m, new_leaf,
                            pm.flat_[static_cast<size_t>(i)]));
                }
            }
            old_partial[static_cast<size_t>(c)] = old;
        }
    });
    if (n_evict > 0) {
        std::unique_lock<std::mutex> lock(mu_);
        stats_.evictions_overlapped += n_evict;
    }
    for (EvictTask& task : deferred_) {
        task_pool_.push_back(std::move(task));
    }
    deferred_.clear();
    // Exactly one chunk holds `id`; the others contribute 0.
    uint32_t old_leaf = 0;
    for (uint32_t p : old_partial) old_leaf |= p;

    // --- B: path read ------------------------------------------------------
    // Trace + ocall/stat bookkeeping in the serial controller's order.
    for (int64_t level = 0; level <= levels; ++level) {
        t.RecordBucket(t.BucketOnPath(old_leaf, level),
                       /*is_write=*/false);
        t.RecordStashScan(/*is_write=*/true);
    }
    // Serial metadata pass: replicate the oblivious free-slot insertion
    // over ids/leaves only, capturing the per-(slot, stash entry) take
    // masks for the payload movement below.
    const size_t path_slots = static_cast<size_t>((levels + 1) * z);
    assert(take_.size() == path_slots * stash);
    for (int64_t level = 0; level <= levels; ++level) {
        const int64_t b = t.BucketOnPath(old_leaf, level);
        for (int64_t s = 0; s < z; ++s) {
            const int64_t slot = b * z + s;
            const size_t row =
                static_cast<size_t>(level * z + s) * stash;
            const uint64_t valid = ~EqMask(
                t.slot_id_[static_cast<size_t>(slot)], TreeOram::kDummyId);
            uint64_t inserted = ~valid;
            const uint64_t bid = t.slot_id_[static_cast<size_t>(slot)];
            const uint32_t bleaf =
                t.slot_leaf_[static_cast<size_t>(slot)];
            for (size_t j = 0; j < stash; ++j) {
                const uint64_t free =
                    EqMask(t.stash_id_[j], TreeOram::kDummyId);
                const uint64_t take = free & ~inserted;
                t.stash_id_[j] = t.Sel(take, bid, t.stash_id_[j]);
                t.stash_leaf_[j] = static_cast<uint32_t>(
                    t.Sel(take, bleaf, t.stash_leaf_[j]));
                take_[row + j] = take;
                inserted |= take;
            }
            if (inserted == 0) {
                throw std::runtime_error("TreeOram: stash overflow");
            }
            t.slot_id_[static_cast<size_t>(slot)] = TreeOram::kDummyId;
        }
    }
    // Pool: decrypt the path's buckets (payloads only; disjoint per
    // level), then move payloads into the stash (one writer per entry).
    ParallelFor(levels + 1, nthreads, [&](int64_t b, int64_t e) {
        for (int64_t level = b; level < e; ++level) {
            t.DecryptBucket(t.BucketOnPath(old_leaf, level));
        }
    });
    ParallelFor(static_cast<int64_t>(stash), nthreads,
                [&](int64_t jb, int64_t je) {
        for (int64_t j = jb; j < je; ++j) {
            uint32_t* dst = t.stash_data_.data() + j * bw;
            for (int64_t level = 0; level <= levels; ++level) {
                const int64_t bkt = t.BucketOnPath(old_leaf, level);
                for (int64_t s = 0; s < z; ++s) {
                    const int64_t slot = bkt * z + s;
                    const size_t row =
                        static_cast<size_t>(level * z + s) * stash;
                    t.MaskCopyWords(
                        take_[row + static_cast<size_t>(j)],
                        t.slot_data_.data() + slot * bw, dst, bw);
                }
            }
        }
    });

    // --- C: stash read-remove + re-insert (serial, tiny) -------------------
    std::fill(out.begin(), out.end(), 0);
    uint32_t junk_leaf = 0;
    uint64_t found = 0;
    t.StashReadRemove(id, out, &junk_leaf, &found);
    (void)found;  // absent blocks read as zeros, like the controller
    t.StashInsert(static_cast<uint64_t>(id), new_leaf, out.data());

    // --- D: write-back — serial choice, deferred payload blend -------------
    for (int64_t level = levels; level >= 0; --level) {
        t.RecordBucket(t.BucketOnPath(old_leaf, level),
                       /*is_write=*/true);
        t.RecordStashScan(/*is_write=*/true);
    }
    std::fill(placed_.begin(), placed_.end(), 0);
    for (int64_t level = levels; level >= 0; --level) {
        const int64_t b = t.BucketOnPath(old_leaf, level);
        EvictTask task;
        if (!task_pool_.empty()) {
            task = std::move(task_pool_.back());
            task_pool_.pop_back();
        }
        task.bucket = b;
        task.chosen.assign(static_cast<size_t>(z), sentinel);
        for (int64_t s = 0; s < z; ++s) {
            const int64_t slot = b * z + s;
            uint64_t chosen = sentinel;
            for (size_t j = 0; j < stash; ++j) {
                const uint64_t real =
                    ~EqMask(t.stash_id_[j], TreeOram::kDummyId);
                const uint64_t deep_enough = BoolToMask(
                    t.CommonLevel(t.stash_leaf_[j], old_leaf) >= level
                        ? 1
                        : 0);
                const uint64_t not_yet = EqMask(chosen, sentinel);
                const uint64_t take =
                    real & deep_enough & ~placed_[j] & not_yet;
                chosen = t.Sel(take, static_cast<uint64_t>(j), chosen);
            }
            const uint64_t have = ~EqMask(chosen, sentinel);
            t.slot_id_[static_cast<size_t>(slot)] = TreeOram::kDummyId;
            t.slot_leaf_[static_cast<size_t>(slot)] = 0;
            for (size_t j = 0; j < stash; ++j) {
                const uint64_t is_ch =
                    EqMask(static_cast<uint64_t>(j), chosen) & have;
                t.slot_id_[static_cast<size_t>(slot)] =
                    t.Sel(is_ch, t.stash_id_[j],
                          t.slot_id_[static_cast<size_t>(slot)]);
                t.slot_leaf_[static_cast<size_t>(slot)] =
                    static_cast<uint32_t>(
                        t.Sel(is_ch, t.stash_leaf_[j],
                              t.slot_leaf_[static_cast<size_t>(slot)]));
                t.stash_id_[j] = t.Sel(is_ch, TreeOram::kDummyId,
                                       t.stash_id_[j]);
                placed_[j] |= is_ch;
            }
            task.chosen[static_cast<size_t>(s)] = chosen;
        }
        deferred_.push_back(std::move(task));
    }
    {
        std::unique_lock<std::mutex> lock(mu_);
        stats_.evictions_deferred +=
            static_cast<uint64_t>(levels + 1);
    }
}

/**
 * Deferred half of one write-back bucket: zero the payloads, blend in
 * the chosen stash blocks (whose stash_data_ rows stay untouched until
 * after the drain by construction), and re-encrypt. Runs on pool
 * threads; buckets are disjoint across tasks.
 */
void
OramProxy::RunEvictTask(const EvictTask& task)
{
    TreeOram& t = *tree_;
    const int64_t bw = t.block_words_;
    const int64_t z = t.params_.bucket_capacity;
    const size_t stash = t.stash_id_.size();
    const uint64_t sentinel = static_cast<uint64_t>(stash);
    for (int64_t s = 0; s < z; ++s) {
        const int64_t slot = task.bucket * z + s;
        uint32_t* dst = t.slot_data_.data() + slot * bw;
        for (int64_t w = 0; w < bw; ++w) dst[w] = 0;
        const uint64_t chosen = task.chosen[static_cast<size_t>(s)];
        const uint64_t have = ~EqMask(chosen, sentinel);
        for (size_t j = 0; j < stash; ++j) {
            const uint64_t is_ch =
                EqMask(static_cast<uint64_t>(j), chosen) & have;
            t.MaskCopyWords(is_ch,
                            t.stash_data_.data() +
                                static_cast<int64_t>(j) * bw,
                            dst, bw);
        }
    }
    t.EncryptBucket(task.bucket);
}

void
OramProxy::DrainEvictions()
{
    if (deferred_.empty()) return;
    const int nthreads = std::max(1, nthreads_.load());
    const size_t n = deferred_.size();
    ParallelFor(static_cast<int64_t>(n), nthreads,
                [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
            RunEvictTask(deferred_[static_cast<size_t>(i)]);
        }
    });
    RecordHop(serving::FlightHop::kProxyEvict, 0,
              static_cast<uint32_t>(n));
    for (EvictTask& task : deferred_) {
        task_pool_.push_back(std::move(task));
    }
    deferred_.clear();
}

}  // namespace secemb::oram
