#pragma once

/**
 * @file
 * Closed-form ORAM footprint estimation.
 *
 * Mirrors TreeOram::MemoryFootprintBytes without allocating the tree, so
 * Table VI / Table VIII can report full-scale (multi-GB) Criteo and Meta
 * footprints on a small machine.
 */

#include <cstdint>

#include "oram/params.h"

namespace secemb::oram {

/**
 * Bytes a TreeOram(kind, num_blocks, block_words, params) would occupy,
 * including recursive position maps. Matches MemoryFootprintBytes
 * (asserted by tests).
 */
int64_t EstimateFootprintBytes(OramKind kind, int64_t num_blocks,
                               int64_t block_words,
                               const OramParams& params);

/** Estimate with the per-kind default parameters. */
int64_t EstimateFootprintBytes(OramKind kind, int64_t num_blocks,
                               int64_t block_words);

}  // namespace secemb::oram
