#include "oram/tree_oram.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "oblivious/ct_ops.h"
#include "perfmon/perfmon.h"
#include "telemetry/telemetry.h"

namespace secemb::oram {

using oblivious::BoolToMask;
using oblivious::EqMask;

namespace {

/** Sentinel for "no level" in the Circuit ORAM eviction metadata. */
constexpr int64_t kNoneLevel = -1;

int64_t
CeilLog2(int64_t n)
{
    int64_t l = 0;
    while ((int64_t{1} << l) < n) ++l;
    return l;
}

}  // namespace

OramParams
OramParams::Defaults(OramKind kind)
{
    OramParams p;
    if (kind == OramKind::kPath) {
        p.stash_capacity = 150;
        p.recursion_threshold = int64_t{1} << 16;
    } else {
        p.stash_capacity = 10;
        p.recursion_threshold = int64_t{1} << 12;
    }
    return p;
}

void
OramParams::ApplyTeeModel(const tee::TeeCostModel& m)
{
    ocall_ns = m.ocall_ns;
    inline_select = m.inline_select;
    enable_recursion = m.enable_recursion;
}

// ---------------------------------------------------------------------------
// PositionMap
// ---------------------------------------------------------------------------

PositionMap::PositionMap(OramKind kind, int64_t num_ids, uint32_t leaf_bound,
                         Rng& rng, const OramParams& params)
    : num_ids_(num_ids),
      fanout_(params.posmap_fanout),
      inline_select_(params.inline_select),
      recorder_(params.recorder)
{
    assert(num_ids > 0 && leaf_bound > 0);
    initial_leaves_.resize(static_cast<size_t>(num_ids));
    for (auto& leaf : initial_leaves_) {
        leaf = static_cast<uint32_t>(rng.NextBounded(leaf_bound));
    }

    const bool recurse =
        params.enable_recursion && num_ids > params.recursion_threshold;
    if (!recurse) {
        flat_ = initial_leaves_;
        trace_base_ = sidechannel::ProcessAddressSpace().Reserve(
            static_cast<uint64_t>(num_ids) * 4, 64, "oram.posmap");
    } else {
        const int64_t child_blocks = (num_ids + fanout_ - 1) / fanout_;
        child_ = std::make_unique<TreeOram>(kind, child_blocks, fanout_,
                                            rng, params);
        std::vector<uint32_t> packed(
            static_cast<size_t>(child_blocks * fanout_), 0);
        std::memcpy(packed.data(), initial_leaves_.data(),
                    initial_leaves_.size() * sizeof(uint32_t));
        child_->BulkLoad(packed);
    }
}

PositionMap::~PositionMap() = default;
PositionMap::PositionMap(PositionMap&&) noexcept = default;
PositionMap& PositionMap::operator=(PositionMap&&) noexcept = default;

uint32_t
PositionMap::Update(int64_t id, uint32_t new_leaf)
{
    assert(id >= 0 && id < num_ids_);
    if (child_) {
        return child_->RmwWord(id / fanout_, id % fanout_, new_leaf);
    }
    // Flat map: full oblivious scan for both the read and the write.
    if (recorder_) {
        recorder_->Record(trace_base_,
                          static_cast<uint32_t>(flat_.size() * 4), false);
        recorder_->Record(trace_base_,
                          static_cast<uint32_t>(flat_.size() * 4), true);
    }
    uint32_t old = 0;
    if (inline_select_) {
        for (size_t i = 0; i < flat_.size(); ++i) {
            const uint64_t m = EqMask(static_cast<uint64_t>(i),
                                      static_cast<uint64_t>(id));
            old = static_cast<uint32_t>(
                oblivious::Select(m, flat_[i], old));
            flat_[i] = static_cast<uint32_t>(
                oblivious::Select(m, new_leaf, flat_[i]));
        }
    } else {
        // ZT-Original/Gramine: the cmov helper is an out-of-line call per
        // element, the overhead the GramineOpt variant removes.
        for (size_t i = 0; i < flat_.size(); ++i) {
            const uint64_t m = EqMask(static_cast<uint64_t>(i),
                                      static_cast<uint64_t>(id));
            old = static_cast<uint32_t>(
                oblivious::SelectNoInline(m, flat_[i], old));
            flat_[i] = static_cast<uint32_t>(
                oblivious::SelectNoInline(m, new_leaf, flat_[i]));
        }
    }
    return old;
}

int64_t
PositionMap::FootprintBytes() const
{
    if (child_) return child_->MemoryFootprintBytes();
    return static_cast<int64_t>(flat_.size()) * 4;
}

int
PositionMap::Depth() const
{
    if (!child_) return 0;
    // The child ORAM's own position map may recurse further.
    return 1;
}

serving::Status
PositionMap::SnapshotLeaves(std::vector<uint32_t>* out) const
{
    if (child_) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "posmap snapshot requires a flat map (disable recursion for "
            "durable configurations)");
    }
    *out = flat_;
    return serving::Status::Ok();
}

serving::Status
PositionMap::RestoreLeaves(const std::vector<uint32_t>& leaves)
{
    if (child_) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "posmap restore requires a flat map");
    }
    if (leaves.size() != flat_.size()) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "posmap restore: leaf table has " +
                std::to_string(leaves.size()) + " entries, map holds " +
                std::to_string(flat_.size()));
    }
    flat_ = leaves;
    return serving::Status::Ok();
}

// ---------------------------------------------------------------------------
// TreeOram: construction
// ---------------------------------------------------------------------------

TreeOram::TreeOram(OramKind kind, int64_t num_blocks, int64_t block_words,
                   Rng& rng, OramParams params)
    : kind_(kind),
      num_blocks_(num_blocks),
      block_words_(block_words),
      params_(params),
      rng_(rng.Next()),
      // Leaves >= num_blocks / 2: capacity ~4N slots with Z = 4, matching
      // the footprint regime the paper reports (~3.3x the raw table) while
      // keeping stash occupancy low (verified by tests).
      levels_(CeilLog2(std::max<int64_t>(2, (num_blocks + 1) / 2))),
      num_leaves_(int64_t{1} << levels_),
      num_buckets_(2 * num_leaves_ - 1),
      posmap_(kind, num_blocks, static_cast<uint32_t>(num_leaves_), rng,
              params),
      cipher_(rng.Next())
{
    assert(num_blocks > 0 && block_words > 0);
    const int64_t slots = num_buckets_ * params_.bucket_capacity;
    slot_id_.assign(static_cast<size_t>(slots), kDummyId);
    slot_leaf_.assign(static_cast<size_t>(slots), 0);
    slot_data_.assign(static_cast<size_t>(slots * block_words_), 0);

    stash_id_.assign(static_cast<size_t>(params_.stash_capacity), kDummyId);
    stash_leaf_.assign(static_cast<size_t>(params_.stash_capacity), 0);
    stash_data_.assign(
        static_cast<size_t>(params_.stash_capacity * block_words_), 0);
    bucket_version_.assign(static_cast<size_t>(num_buckets_), 0);

    auto& space = sidechannel::ProcessAddressSpace();
    tree_trace_base_ = space.Reserve(
        static_cast<uint64_t>(slots * block_words_) * 4, 64, "oram.tree");
    stash_trace_base_ = space.Reserve(
        static_cast<uint64_t>(params_.stash_capacity * block_words_) * 4,
        64, "oram.stash");
}

// ---------------------------------------------------------------------------
// TreeOram: small helpers
// ---------------------------------------------------------------------------

int64_t
TreeOram::BucketOnPath(uint32_t leaf, int64_t level) const
{
    assert(level >= 0 && level <= levels_);
    const int64_t node =
        (num_leaves_ + static_cast<int64_t>(leaf)) >> (levels_ - level);
    return node - 1;
}

int64_t
TreeOram::CommonLevel(uint32_t a, uint32_t b) const
{
    const uint32_t x = a ^ b;
    if (x == 0) return levels_;
    const int64_t width = 64 - std::countl_zero(static_cast<uint64_t>(x));
    return levels_ - width;
}

uint32_t
TreeOram::RandomLeaf()
{
    return static_cast<uint32_t>(
        rng_.NextBounded(static_cast<uint64_t>(num_leaves_)));
}

uint64_t
TreeOram::Sel(uint64_t mask, uint64_t a, uint64_t b) const
{
    return params_.inline_select ? oblivious::Select(mask, a, b)
                                 : oblivious::SelectNoInline(mask, a, b);
}

void
TreeOram::MaskCopyWords(uint64_t mask, const uint32_t* src, uint32_t* dst,
                        int64_t n) const
{
    if (params_.inline_select) {
        for (int64_t i = 0; i < n; ++i) {
            dst[i] = static_cast<uint32_t>(
                oblivious::Select(mask, src[i], dst[i]));
        }
    } else {
        for (int64_t i = 0; i < n; ++i) {
            dst[i] = static_cast<uint32_t>(
                oblivious::SelectNoInline(mask, src[i], dst[i]));
        }
    }
}

void
TreeOram::RecordBucket(int64_t bucket, bool is_write)
{
    // In the ZT-Original deployment every bucket transfer crosses the
    // enclave boundary.
    PayOcall();
    if (is_write) {
        ++stats_.bucket_writes;
    } else {
        ++stats_.bucket_reads;
    }
    if (params_.recorder) {
        const uint32_t bucket_bytes = static_cast<uint32_t>(
            params_.bucket_capacity * block_words_ * 4);
        params_.recorder->Record(
            tree_trace_base_ + static_cast<uint64_t>(bucket) * bucket_bytes,
            bucket_bytes, is_write);
    }
}

void
TreeOram::RecordStashScan(bool is_write)
{
    ++stats_.stash_scans;
    if (params_.recorder) {
        params_.recorder->Record(
            stash_trace_base_,
            static_cast<uint32_t>(params_.stash_capacity * block_words_ * 4),
            is_write);
    }
}

void
TreeOram::DecryptBucket(int64_t b)
{
    if (!params_.encrypt_payloads) return;
    const uint64_t version = bucket_version_[static_cast<size_t>(b)];
    if (version == 0) return;  // still plaintext from initialisation
    const int64_t bucket_words = params_.bucket_capacity * block_words_;
    cipher_.Apply(b, version,
                  {slot_data_.data() + b * bucket_words,
                   static_cast<size_t>(bucket_words)});
}

void
TreeOram::EncryptBucket(int64_t b)
{
    if (!params_.encrypt_payloads) return;
    const uint64_t version = ++bucket_version_[static_cast<size_t>(b)];
    const int64_t bucket_words = params_.bucket_capacity * block_words_;
    cipher_.Apply(b, version,
                  {slot_data_.data() + b * bucket_words,
                   static_cast<size_t>(bucket_words)});
}

void
TreeOram::PayOcall()
{
    if (params_.ocall_ns > 0.0) {
        ++stats_.ocalls;
        tee::Spin(params_.ocall_ns);
    }
}

// ---------------------------------------------------------------------------
// TreeOram: stash operations
// ---------------------------------------------------------------------------

void
TreeOram::StashInsert(uint64_t id, uint32_t leaf, const uint32_t* data,
                      bool record)
{
    if (record) RecordStashScan(/*is_write=*/true);
    uint64_t inserted = 0;
    for (size_t j = 0; j < stash_id_.size(); ++j) {
        const uint64_t free = EqMask(stash_id_[j], kDummyId);
        const uint64_t take = free & ~inserted;
        stash_id_[j] = Sel(take, id, stash_id_[j]);
        stash_leaf_[j] = static_cast<uint32_t>(
            Sel(take, leaf, stash_leaf_[j]));
        MaskCopyWords(take, data,
                      stash_data_.data() +
                          static_cast<int64_t>(j) * block_words_,
                      block_words_);
        inserted |= take;
    }
    if (inserted == 0) {
        throw std::runtime_error("TreeOram: stash overflow");
    }
}

void
TreeOram::StashReadRemove(int64_t id, std::span<uint32_t> data_out,
                          uint32_t* leaf_out, uint64_t* found_mask)
{
    RecordStashScan(/*is_write=*/true);
    uint64_t found = 0;
    uint32_t leaf = 0;
    for (size_t j = 0; j < stash_id_.size(); ++j) {
        const uint64_t match =
            EqMask(stash_id_[j], static_cast<uint64_t>(id));
        MaskCopyWords(match,
                      stash_data_.data() +
                          static_cast<int64_t>(j) * block_words_,
                      data_out.data(), block_words_);
        leaf = static_cast<uint32_t>(Sel(match, stash_leaf_[j], leaf));
        stash_id_[j] = Sel(match, kDummyId, stash_id_[j]);
        found |= match;
    }
    *leaf_out = leaf;
    *found_mask = found;
}

// ---------------------------------------------------------------------------
// TreeOram: Path ORAM phases
// ---------------------------------------------------------------------------

void
TreeOram::PathReadPathToStash(uint32_t leaf)
{
    for (int64_t level = 0; level <= levels_; ++level) {
        const int64_t b = BucketOnPath(leaf, level);
        RecordBucket(b, /*is_write=*/false);
        DecryptBucket(b);
        for (int64_t s = 0; s < params_.bucket_capacity; ++s) {
            const int64_t slot = b * params_.bucket_capacity + s;
            const uint64_t valid =
                ~EqMask(slot_id_[static_cast<size_t>(slot)], kDummyId);
            // Oblivious insert: a dummy slot inserts nothing but the scan
            // happens regardless.
            uint64_t inserted = ~valid;
            const uint64_t id = slot_id_[static_cast<size_t>(slot)];
            const uint32_t blk_leaf =
                slot_leaf_[static_cast<size_t>(slot)];
            const uint32_t* data = slot_data_.data() + slot * block_words_;
            for (size_t j = 0; j < stash_id_.size(); ++j) {
                const uint64_t free = EqMask(stash_id_[j], kDummyId);
                const uint64_t take = free & ~inserted;
                stash_id_[j] = Sel(take, id, stash_id_[j]);
                stash_leaf_[j] = static_cast<uint32_t>(
                    Sel(take, blk_leaf, stash_leaf_[j]));
                MaskCopyWords(take, data,
                              stash_data_.data() +
                                  static_cast<int64_t>(j) * block_words_,
                              block_words_);
                inserted |= take;
            }
            if (inserted == 0) {
                throw std::runtime_error("TreeOram: stash overflow");
            }
            slot_id_[static_cast<size_t>(slot)] = kDummyId;
        }
        RecordStashScan(/*is_write=*/true);
    }
}

void
TreeOram::PathWriteBack(uint32_t leaf)
{
    const uint64_t sentinel = static_cast<uint64_t>(stash_id_.size());
    std::vector<uint64_t> placed(stash_id_.size(), 0);

    for (int64_t level = levels_; level >= 0; --level) {
        const int64_t b = BucketOnPath(leaf, level);
        RecordBucket(b, /*is_write=*/true);
        for (int64_t s = 0; s < params_.bucket_capacity; ++s) {
            const int64_t slot = b * params_.bucket_capacity + s;
            // Select the first stash block that may live at this level.
            uint64_t chosen = sentinel;
            for (size_t j = 0; j < stash_id_.size(); ++j) {
                const uint64_t real = ~EqMask(stash_id_[j], kDummyId);
                const uint64_t deep_enough = BoolToMask(
                    CommonLevel(stash_leaf_[j], leaf) >= level ? 1 : 0);
                const uint64_t not_yet = EqMask(chosen, sentinel);
                const uint64_t take =
                    real & deep_enough & ~placed[j] & not_yet;
                chosen = Sel(take, static_cast<uint64_t>(j), chosen);
            }
            const uint64_t have = ~EqMask(chosen, sentinel);
            // Clear the slot, then blend the chosen block in.
            slot_id_[static_cast<size_t>(slot)] = kDummyId;
            slot_leaf_[static_cast<size_t>(slot)] = 0;
            uint32_t* dst = slot_data_.data() + slot * block_words_;
            for (int64_t w = 0; w < block_words_; ++w) dst[w] = 0;
            for (size_t j = 0; j < stash_id_.size(); ++j) {
                const uint64_t is_ch =
                    EqMask(static_cast<uint64_t>(j), chosen) & have;
                slot_id_[static_cast<size_t>(slot)] =
                    Sel(is_ch, stash_id_[j],
                        slot_id_[static_cast<size_t>(slot)]);
                slot_leaf_[static_cast<size_t>(slot)] =
                    static_cast<uint32_t>(
                        Sel(is_ch, stash_leaf_[j],
                            slot_leaf_[static_cast<size_t>(slot)]));
                MaskCopyWords(is_ch,
                              stash_data_.data() +
                                  static_cast<int64_t>(j) * block_words_,
                              dst, block_words_);
                stash_id_[j] = Sel(is_ch, kDummyId, stash_id_[j]);
                placed[j] |= is_ch;
            }
        }
        EncryptBucket(b);
        RecordStashScan(/*is_write=*/true);
    }
}

// ---------------------------------------------------------------------------
// TreeOram: Circuit ORAM phases
// ---------------------------------------------------------------------------

void
TreeOram::CircuitReadBlockFromPath(uint32_t leaf, int64_t id,
                                   std::span<uint32_t> data_out,
                                   uint64_t* found_mask)
{
    uint64_t found = 0;
    for (int64_t level = 0; level <= levels_; ++level) {
        const int64_t b = BucketOnPath(leaf, level);
        RecordBucket(b, /*is_write=*/false);
        RecordBucket(b, /*is_write=*/true);  // removal writes back
        DecryptBucket(b);
        for (int64_t s = 0; s < params_.bucket_capacity; ++s) {
            const int64_t slot = b * params_.bucket_capacity + s;
            const uint64_t match = EqMask(
                slot_id_[static_cast<size_t>(slot)],
                static_cast<uint64_t>(id));
            MaskCopyWords(match, slot_data_.data() + slot * block_words_,
                          data_out.data(), block_words_);
            slot_id_[static_cast<size_t>(slot)] =
                Sel(match, kDummyId, slot_id_[static_cast<size_t>(slot)]);
            found |= match;
        }
        EncryptBucket(b);
    }
    *found_mask = found;
}

uint32_t
TreeOram::NextEvictionLeaf()
{
    // Reverse-lexicographic (bit-reversed counter) order, the standard
    // Circuit ORAM eviction schedule; public and input-independent.
    const uint64_t g = evict_counter_++;
    uint64_t leaf = 0;
    for (int64_t bit = 0; bit < levels_; ++bit) {
        leaf = (leaf << 1) | ((g >> bit) & 1);
    }
    return static_cast<uint32_t>(leaf %
                                 static_cast<uint64_t>(num_leaves_));
}

void
TreeOram::CircuitEvictOnce(uint32_t path_leaf)
{
    // Deterministic trace preamble: an oblivious controller touches the
    // stash and every bucket on the eviction path unconditionally (the
    // functional branches below are the masked-operation equivalent).
    // Recording them here keeps the observable trace shape independent of
    // occupancy and secrets.
    RecordStashScan(/*is_write=*/false);  // PrepareDeepest stash scan
    RecordStashScan(/*is_write=*/false);  // PrepareTarget occupancy scan
    RecordStashScan(/*is_write=*/true);   // EvictOnceFast stash pass
    for (int64_t level = 0; level <= levels_; ++level) {
        const int64_t b = BucketOnPath(path_leaf, level);
        RecordBucket(b, /*is_write=*/false);  // metadata scans
        RecordBucket(b, /*is_write=*/false);
        RecordBucket(b, /*is_write=*/true);   // move pass write-back
        DecryptBucket(b);
    }
    const int64_t n_idx = levels_ + 2;  // index 0 = stash, i>=1 = level i-1
    std::vector<int64_t> deepest(static_cast<size_t>(n_idx), kNoneLevel);
    std::vector<int64_t> target(static_cast<size_t>(n_idx), kNoneLevel);

    auto level_of_index = [](int64_t i) { return i - 1; };

    // Deepest index a block with leaf lf may occupy on this path.
    auto block_goal = [&](uint32_t lf) {
        return CommonLevel(lf, path_leaf) + 1;
    };

    // --- PrepareDeepest ---
    int64_t src = kNoneLevel;
    int64_t goal = kNoneLevel;
    {
        int64_t stash_goal = kNoneLevel;
        for (size_t j = 0; j < stash_id_.size(); ++j) {
            const bool real = stash_id_[j] != kDummyId;
            const int64_t g = block_goal(stash_leaf_[j]);
            const uint64_t take =
                BoolToMask((real && g > stash_goal) ? 1 : 0);
            stash_goal = oblivious::SelectI64(take, g, stash_goal);
        }
        if (stash_goal != kNoneLevel) {
            src = 0;
            goal = stash_goal;
        }
    }
    for (int64_t i = 1; i < n_idx; ++i) {
        if (goal >= i) deepest[static_cast<size_t>(i)] = src;
        const int64_t b = BucketOnPath(path_leaf, level_of_index(i));
        int64_t l = kNoneLevel;
        for (int64_t s = 0; s < params_.bucket_capacity; ++s) {
            const int64_t slot = b * params_.bucket_capacity + s;
            const bool real =
                slot_id_[static_cast<size_t>(slot)] != kDummyId;
            const int64_t g =
                block_goal(slot_leaf_[static_cast<size_t>(slot)]);
            const uint64_t take = BoolToMask((real && g > l) ? 1 : 0);
            l = oblivious::SelectI64(take, g, l);
        }
        if (l > goal) {
            goal = l;
            src = i;
        }
    }

    // --- PrepareTarget ---
    int64_t dest = kNoneLevel;
    src = kNoneLevel;
    for (int64_t i = n_idx - 1; i >= 0; --i) {
        if (i == src) {
            target[static_cast<size_t>(i)] = dest;
            dest = kNoneLevel;
            src = kNoneLevel;
        }
        bool has_empty = false;
        if (i == 0) {
            for (uint64_t sid : stash_id_) has_empty |= (sid == kDummyId);
        } else {
            const int64_t b = BucketOnPath(path_leaf, level_of_index(i));
            for (int64_t s = 0; s < params_.bucket_capacity; ++s) {
                has_empty |=
                    slot_id_[static_cast<size_t>(
                        b * params_.bucket_capacity + s)] == kDummyId;
            }
        }
        if (((dest == kNoneLevel && has_empty) ||
             target[static_cast<size_t>(i)] != kNoneLevel) &&
            deepest[static_cast<size_t>(i)] != kNoneLevel) {
            src = deepest[static_cast<size_t>(i)];
            dest = i;
        }
    }

    // --- EvictOnceFast ---
    uint64_t hold_id = kDummyId;
    uint32_t hold_leaf = 0;
    std::vector<uint32_t> hold_data(static_cast<size_t>(block_words_), 0);
    std::vector<uint32_t> scratch(static_cast<size_t>(block_words_), 0);
    dest = kNoneLevel;

    for (int64_t i = 0; i < n_idx; ++i) {
        uint64_t write_id = kDummyId;
        uint32_t write_leaf = 0;
        bool do_write = false;
        if (hold_id != kDummyId && i == dest) {
            write_id = hold_id;
            write_leaf = hold_leaf;
            std::memcpy(scratch.data(), hold_data.data(),
                        scratch.size() * sizeof(uint32_t));
            do_write = true;
            hold_id = kDummyId;
            dest = kNoneLevel;
        }
        if (target[static_cast<size_t>(i)] != kNoneLevel) {
            // Read and remove the deepest-eligible block at this index.
            if (i == 0) {
                const uint64_t sentinel =
                    static_cast<uint64_t>(stash_id_.size());
                uint64_t chosen = sentinel;
                int64_t best = kNoneLevel;
                for (size_t j = 0; j < stash_id_.size(); ++j) {
                    const bool real = stash_id_[j] != kDummyId;
                    const int64_t g = block_goal(stash_leaf_[j]);
                    const uint64_t take =
                        BoolToMask((real && g > best) ? 1 : 0);
                    best = oblivious::SelectI64(take, g, best);
                    chosen =
                        Sel(take, static_cast<uint64_t>(j), chosen);
                }
                const uint64_t have = ~EqMask(chosen, sentinel);
                for (size_t j = 0; j < stash_id_.size(); ++j) {
                    const uint64_t is_ch =
                        EqMask(static_cast<uint64_t>(j), chosen) & have;
                    hold_id = Sel(is_ch, stash_id_[j], hold_id);
                    hold_leaf = static_cast<uint32_t>(
                        Sel(is_ch, stash_leaf_[j], hold_leaf));
                    MaskCopyWords(
                        is_ch,
                        stash_data_.data() +
                            static_cast<int64_t>(j) * block_words_,
                        hold_data.data(), block_words_);
                    stash_id_[j] = Sel(is_ch, kDummyId, stash_id_[j]);
                }
            } else {
                const int64_t b =
                    BucketOnPath(path_leaf, level_of_index(i));
                const uint64_t sentinel =
                    static_cast<uint64_t>(params_.bucket_capacity);
                uint64_t chosen = sentinel;
                int64_t best = kNoneLevel;
                for (int64_t s = 0; s < params_.bucket_capacity; ++s) {
                    const int64_t slot = b * params_.bucket_capacity + s;
                    const bool real =
                        slot_id_[static_cast<size_t>(slot)] != kDummyId;
                    const int64_t g = block_goal(
                        slot_leaf_[static_cast<size_t>(slot)]);
                    const uint64_t take =
                        BoolToMask((real && g > best) ? 1 : 0);
                    best = oblivious::SelectI64(take, g, best);
                    chosen =
                        Sel(take, static_cast<uint64_t>(s), chosen);
                }
                const uint64_t have = ~EqMask(chosen, sentinel);
                for (int64_t s = 0; s < params_.bucket_capacity; ++s) {
                    const int64_t slot = b * params_.bucket_capacity + s;
                    const uint64_t is_ch =
                        EqMask(static_cast<uint64_t>(s), chosen) & have;
                    hold_id = Sel(is_ch,
                                  slot_id_[static_cast<size_t>(slot)],
                                  hold_id);
                    hold_leaf = static_cast<uint32_t>(
                        Sel(is_ch,
                            slot_leaf_[static_cast<size_t>(slot)],
                            hold_leaf));
                    MaskCopyWords(is_ch,
                                  slot_data_.data() + slot * block_words_,
                                  hold_data.data(), block_words_);
                    slot_id_[static_cast<size_t>(slot)] =
                        Sel(is_ch, kDummyId,
                            slot_id_[static_cast<size_t>(slot)]);
                }
            }
            dest = target[static_cast<size_t>(i)];
        }
        if (do_write) {
            if (i == 0) {
                StashInsert(write_id, write_leaf, scratch.data(),
                            /*record=*/false);
            } else {
                const int64_t b =
                    BucketOnPath(path_leaf, level_of_index(i));
                uint64_t inserted = 0;
                for (int64_t s = 0; s < params_.bucket_capacity; ++s) {
                    const int64_t slot = b * params_.bucket_capacity + s;
                    const uint64_t free = EqMask(
                        slot_id_[static_cast<size_t>(slot)], kDummyId);
                    const uint64_t take = free & ~inserted;
                    slot_id_[static_cast<size_t>(slot)] =
                        Sel(take, write_id,
                            slot_id_[static_cast<size_t>(slot)]);
                    slot_leaf_[static_cast<size_t>(slot)] =
                        static_cast<uint32_t>(Sel(
                            take, write_leaf,
                            slot_leaf_[static_cast<size_t>(slot)]));
                    MaskCopyWords(take, scratch.data(),
                                  slot_data_.data() + slot * block_words_,
                                  block_words_);
                    inserted |= take;
                }
                if (inserted == 0) {
                    throw std::runtime_error(
                        "TreeOram: circuit eviction bucket overflow");
                }
            }
        }
    }
    for (int64_t level = 0; level <= levels_; ++level) {
        EncryptBucket(BucketOnPath(path_leaf, level));
    }
}

// ---------------------------------------------------------------------------
// TreeOram: public operations
// ---------------------------------------------------------------------------

void
TreeOram::Access(int64_t id, Op op, std::span<uint32_t> read_out,
                 std::span<const uint32_t> write_in, int64_t word_idx,
                 uint32_t word_val, uint32_t* old_word)
{
    assert(id >= 0 && id < num_blocks_);
    ++stats_.accesses;
    // Spans/counters fire once per access whatever `id` is; recursive
    // position-map accesses nest their own oram.access spans.
    TELEMETRY_SCOPED_COUNTERS("oram.access");
    TELEMETRY_SCOPED_LATENCY("oram.access.ns");
    TELEMETRY_COUNT("oram.accesses", 1);

    const uint32_t new_leaf = RandomLeaf();
    const uint32_t old_leaf = posmap_.Update(id, new_leaf);

    std::vector<uint32_t> data(static_cast<size_t>(block_words_), 0);
    uint64_t found = 0;

    if (kind_ == OramKind::kPath) {
        PathReadPathToStash(old_leaf);
        uint32_t junk_leaf = 0;
        StashReadRemove(id, data, &junk_leaf, &found);
    } else {
        CircuitReadBlockFromPath(old_leaf, id, data, &found);
        std::vector<uint32_t> from_stash(
            static_cast<size_t>(block_words_), 0);
        uint32_t junk_leaf = 0;
        uint64_t found_stash = 0;
        StashReadRemove(id, from_stash, &junk_leaf, &found_stash);
        MaskCopyWords(found_stash, from_stash.data(), data.data(),
                      block_words_);
        found |= found_stash;
    }
    // A never-written block is absent everywhere; it reads as zeros.
    (void)found;

    switch (op) {
      case Op::kRead:
        std::memcpy(read_out.data(), data.data(),
                    data.size() * sizeof(uint32_t));
        break;
      case Op::kWrite:
        std::memcpy(data.data(), write_in.data(),
                    data.size() * sizeof(uint32_t));
        break;
      case Op::kRmw: {
        uint32_t old = 0;
        for (int64_t w = 0; w < block_words_; ++w) {
            const uint64_t m = EqMask(static_cast<uint64_t>(w),
                                      static_cast<uint64_t>(word_idx));
            old = static_cast<uint32_t>(
                Sel(m, data[static_cast<size_t>(w)], old));
            data[static_cast<size_t>(w)] = static_cast<uint32_t>(
                Sel(m, word_val, data[static_cast<size_t>(w)]));
        }
        *old_word = old;
        break;
      }
    }

    StashInsert(static_cast<uint64_t>(id), new_leaf, data.data());

    if (kind_ == OramKind::kPath) {
        PathWriteBack(old_leaf);
    } else {
        CircuitEvictOnce(NextEvictionLeaf());
        CircuitEvictOnce(NextEvictionLeaf());
    }
}

void
TreeOram::Read(int64_t id, std::span<uint32_t> out)
{
    assert(static_cast<int64_t>(out.size()) == block_words_);
    Access(id, Op::kRead, out, {}, 0, 0, nullptr);
}

void
TreeOram::Write(int64_t id, std::span<const uint32_t> in)
{
    assert(static_cast<int64_t>(in.size()) == block_words_);
    Access(id, Op::kWrite, {}, in, 0, 0, nullptr);
}

uint32_t
TreeOram::RmwWord(int64_t id, int64_t word_idx, uint32_t new_word)
{
    assert(word_idx >= 0 && word_idx < block_words_);
    uint32_t old = 0;
    Access(id, Op::kRmw, {}, {}, word_idx, new_word, &old);
    return old;
}

void
TreeOram::BulkLoad(std::span<const uint32_t> data)
{
    if (static_cast<int64_t>(data.size()) != num_blocks_ * block_words_) {
        throw std::invalid_argument("BulkLoad: data size mismatch");
    }
    const auto& leaves = posmap_.initial_leaves();
    for (int64_t id = 0; id < num_blocks_; ++id) {
        const uint32_t leaf = leaves[static_cast<size_t>(id)];
        bool placed = false;
        for (int64_t level = levels_; level >= 0 && !placed; --level) {
            const int64_t b = BucketOnPath(leaf, level);
            for (int64_t s = 0; s < params_.bucket_capacity && !placed;
                 ++s) {
                const int64_t slot = b * params_.bucket_capacity + s;
                if (slot_id_[static_cast<size_t>(slot)] == kDummyId) {
                    slot_id_[static_cast<size_t>(slot)] =
                        static_cast<uint64_t>(id);
                    slot_leaf_[static_cast<size_t>(slot)] = leaf;
                    std::memcpy(
                        slot_data_.data() + slot * block_words_,
                        data.data() + id * block_words_,
                        static_cast<size_t>(block_words_) *
                            sizeof(uint32_t));
                    placed = true;
                }
            }
        }
        if (!placed) {
            // Rare with 4N slot capacity: spill to the stash.
            bool stashed = false;
            for (size_t j = 0; j < stash_id_.size() && !stashed; ++j) {
                if (stash_id_[j] == kDummyId) {
                    stash_id_[j] = static_cast<uint64_t>(id);
                    stash_leaf_[j] = leaf;
                    std::memcpy(
                        stash_data_.data() +
                            static_cast<int64_t>(j) * block_words_,
                        data.data() + id * block_words_,
                        static_cast<size_t>(block_words_) *
                            sizeof(uint32_t));
                    stashed = true;
                }
            }
            if (!stashed) {
                throw std::runtime_error(
                    "BulkLoad: tree and stash full (tree undersized)");
            }
        }
    }
}

int64_t
TreeOram::MemoryFootprintBytes() const
{
    const int64_t per_slot_meta = 8 + 4;  // id + leaf
    const int64_t slots = num_buckets_ * params_.bucket_capacity;
    const int64_t tree_bytes =
        slots * (block_words_ * 4 + per_slot_meta);
    const int64_t stash_bytes =
        params_.stash_capacity * (block_words_ * 4 + per_slot_meta);
    const int64_t version_bytes = num_buckets_ * 8;
    return tree_bytes + stash_bytes + version_bytes +
           posmap_.FootprintBytes();
}

int64_t
TreeOram::StashOccupancy() const
{
    int64_t n = 0;
    for (uint64_t id : stash_id_) n += (id != kDummyId) ? 1 : 0;
    return n;
}

std::unique_ptr<TreeOram>
MakeOram(OramKind kind, int64_t num_blocks, int64_t block_words, Rng& rng,
         const OramParams* params)
{
    OramParams p = params ? *params : OramParams::Defaults(kind);
    return std::make_unique<TreeOram>(kind, num_blocks, block_words, rng,
                                      p);
}

}  // namespace secemb::oram
