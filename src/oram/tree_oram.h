#pragma once

/**
 * @file
 * Tree-based ORAM: Path ORAM [Stefanov et al.] and Circuit ORAM
 * [Wang et al.] controllers with recursive oblivious position maps,
 * re-implemented from scratch after ZeroTrace [Sasy et al.] (the paper's
 * software baseline, Section V-A1).
 *
 * Payloads are opaque 32-bit words (embedding floats are bit-cast by the
 * caller), so the same controller serves both the data ORAM and the packed
 * position-map ORAMs of the recursion.
 *
 * Client-side state (stash, flat position map) is accessed exclusively via
 * full linear scans with constant-time selects, as ZeroTrace does, so the
 * controller itself does not reintroduce a secret-dependent access pattern.
 * Tree bucket addresses depend only on (a) leaves that were assigned
 * uniformly at random and never reused after being revealed, and (b) a
 * public eviction counter (Circuit ORAM) — the standard ORAM security
 * argument.
 */

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "oram/crypto.h"
#include "oram/params.h"
#include "serving/status.h"
#include "tensor/rng.h"

namespace secemb::oram {

class TreeOram;
class OramProxy;

/**
 * Position map: block id -> tree leaf.
 *
 * Small maps are a flat array scanned obliviously on every update; large
 * maps pack `posmap_fanout` leaves per block into a child TreeOram of the
 * same kind, recursively (the paper enables recursion above 2^16 blocks
 * for Path ORAM and 2^12 for Circuit ORAM).
 */
class PositionMap
{
  public:
    /**
     * @param kind algorithm used by recursive child ORAMs
     * @param num_ids number of positions tracked
     * @param leaf_bound leaves are drawn uniformly from [0, leaf_bound)
     * @param rng randomness source for initial and replacement leaves
     * @param params inherited ORAM parameters
     */
    PositionMap(OramKind kind, int64_t num_ids, uint32_t leaf_bound,
                Rng& rng, const OramParams& params);
    ~PositionMap();

    PositionMap(PositionMap&&) noexcept;
    PositionMap& operator=(PositionMap&&) noexcept;

    /** Returns the current leaf of `id` and replaces it with new_leaf. */
    uint32_t Update(int64_t id, uint32_t new_leaf);

    /** Initial leaf of every id, only valid before the first Update. */
    const std::vector<uint32_t>& initial_leaves() const
    {
        return initial_leaves_;
    }

    int64_t FootprintBytes() const;
    bool recursive() const { return child_ != nullptr; }
    /** Recursion depth below this map (0 for a flat map). */
    int Depth() const;

    /**
     * Copy of the current leaf of every id, for checkpointing. Flat maps
     * only (durable configurations disable posmap recursion); a recursive
     * map returns kInvalidArgument and leaves `out` untouched.
     */
    serving::Status SnapshotLeaves(std::vector<uint32_t>* out) const;
    /** Replace the full leaf table from a checkpoint (flat maps only). */
    serving::Status RestoreLeaves(const std::vector<uint32_t>& leaves);

  private:
    /** The async proxy (src/oram/proxy) re-implements the flat-map scan
     *  in parallel chunks with the identical recorded trace. */
    friend class OramProxy;

    int64_t num_ids_;
    int fanout_;
    bool inline_select_ = true;
    std::vector<uint32_t> flat_;            ///< flat representation
    std::unique_ptr<TreeOram> child_;       ///< recursive representation
    std::vector<uint32_t> initial_leaves_;  ///< for BulkLoad of the parent
    sidechannel::TraceRecorder* recorder_;
    uint64_t trace_base_ = 0;
};

/**
 * A Path or Circuit ORAM instance over `num_blocks` fixed-size blocks.
 *
 * Thread-compatibility: not thread-safe; accesses mutate internal state
 * (exactly why the paper notes ORAM batches are processed sequentially).
 */
class TreeOram
{
  public:
    /** Sentinel id marking an empty block slot. */
    static constexpr uint64_t kDummyId = ~uint64_t{0};

    /**
     * @param kind Path or Circuit
     * @param num_blocks logical blocks stored
     * @param block_words payload words per block
     * @param rng leaf randomness (a private generator is split from it)
     * @param params tunables; see OramParams::Defaults
     */
    TreeOram(OramKind kind, int64_t num_blocks, int64_t block_words,
             Rng& rng, OramParams params);

    /** Oblivious read of block `id` into out (block_words). */
    void Read(int64_t id, std::span<uint32_t> out);

    /** Oblivious write of block `id` from in (block_words). */
    void Write(int64_t id, std::span<const uint32_t> in);

    /**
     * Oblivious read-modify-write of one word inside block `id`; returns
     * the previous word value. One ORAM access total — used by recursive
     * position maps.
     */
    uint32_t RmwWord(int64_t id, int64_t word_idx, uint32_t new_word);

    /**
     * Non-oblivious bulk initialisation from flat data
     * (num_blocks x block_words). Permissible because model weights are
     * public in the threat model — only query indices are secret.
     */
    void BulkLoad(std::span<const uint32_t> data);

    /** Total controller footprint: tree + stash + position maps. */
    int64_t MemoryFootprintBytes() const;

    const OramStats& stats() const { return stats_; }
    int64_t num_blocks() const { return num_blocks_; }
    int64_t block_words() const { return block_words_; }
    int64_t num_leaves() const { return num_leaves_; }
    /** Tree levels, root = 0 .. levels() = leaf level. */
    int64_t levels() const { return levels_; }
    /** Current number of real blocks in the stash (for overflow tests). */
    int64_t StashOccupancy() const;
    OramKind kind() const { return kind_; }

  private:
    /** The async proxy decomposes Path ORAM accesses into the same
     *  phases with data movement on pool threads; it needs the private
     *  state and phase helpers but must not widen the public surface. */
    friend class OramProxy;

    enum class Op { kRead, kWrite, kRmw };

    OramKind kind_;
    int64_t num_blocks_;
    int64_t block_words_;
    OramParams params_;
    Rng rng_;

    int64_t levels_;      ///< leaf level index; tree has levels_+1 levels
    int64_t num_leaves_;  ///< 2^levels_
    int64_t num_buckets_;

    // Tree storage, slot-major: slot s of bucket b is index b * Z + s.
    std::vector<uint64_t> slot_id_;
    std::vector<uint32_t> slot_leaf_;
    std::vector<uint32_t> slot_data_;

    // Stash.
    std::vector<uint64_t> stash_id_;
    std::vector<uint32_t> stash_leaf_;
    std::vector<uint32_t> stash_data_;

    PositionMap posmap_;
    uint64_t evict_counter_ = 0;  ///< Circuit ORAM reverse-lex schedule

    // Payload encryption state: one version counter per bucket; version 0
    // means "still the zero-filled / bulk-loaded plaintext".
    BucketCipher cipher_;
    std::vector<uint64_t> bucket_version_;

    OramStats stats_;
    uint64_t tree_trace_base_ = 0;
    uint64_t stash_trace_base_ = 0;

    // -- helpers -----------------------------------------------------------

    void Access(int64_t id, Op op, std::span<uint32_t> read_out,
                std::span<const uint32_t> write_in, int64_t word_idx,
                uint32_t word_val, uint32_t* old_word);

    int64_t BucketOnPath(uint32_t leaf, int64_t level) const;
    /** Deepest tree level shared by the paths to leaves a and b. */
    int64_t CommonLevel(uint32_t a, uint32_t b) const;
    uint32_t RandomLeaf();

    uint64_t Sel(uint64_t mask, uint64_t a, uint64_t b) const;
    void MaskCopyWords(uint64_t mask, const uint32_t* src, uint32_t* dst,
                       int64_t n) const;

    void RecordBucket(int64_t bucket, bool is_write);
    void RecordStashScan(bool is_write);
    void PayOcall();

    /** Undo the current ciphertext of bucket b (no-op at version 0). */
    void DecryptBucket(int64_t b);
    /** Re-encrypt bucket b under a fresh version. */
    void EncryptBucket(int64_t b);

    // Path ORAM phases.
    void PathReadPathToStash(uint32_t leaf);
    void PathWriteBack(uint32_t leaf);

    // Circuit ORAM phases.
    void CircuitReadBlockFromPath(uint32_t leaf, int64_t id,
                                  std::span<uint32_t> data_out,
                                  uint64_t* found_mask);
    void CircuitEvictOnce(uint32_t path_leaf);
    uint32_t NextEvictionLeaf();

    // Stash operations (all full-scan, constant trace shape).
    void StashInsert(uint64_t id, uint32_t leaf, const uint32_t* data,
                     bool record = true);
    /** Reads and removes block `id` from the stash if present. */
    void StashReadRemove(int64_t id, std::span<uint32_t> data_out,
                         uint32_t* leaf_out, uint64_t* found_mask);
};

/** Convenience factory applying per-kind default parameters. */
std::unique_ptr<TreeOram> MakeOram(OramKind kind, int64_t num_blocks,
                                   int64_t block_words, Rng& rng,
                                   const OramParams* params = nullptr);

}  // namespace secemb::oram
