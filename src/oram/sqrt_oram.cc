#include "oram/sqrt_oram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <numeric>

#include "oblivious/ct_ops.h"
#include "oblivious/sort.h"
#include "telemetry/telemetry.h"

namespace secemb::oram {

using oblivious::EqMask;
using oblivious::Select;

namespace {

constexpr uint64_t kEmpty = ~uint64_t{0};

void
DeriveKey(uint64_t seed, uint32_t key[4])
{
    for (int i = 0; i < 4; ++i) {
        seed += 0x9e3779b97f4a7c15ULL;
        uint64_t z = seed;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        key[i] = static_cast<uint32_t>(z ^ (z >> 31));
    }
}

}  // namespace

SqrtOram::SqrtOram(int64_t num_blocks, int64_t block_words, Rng& rng,
                   sidechannel::TraceRecorder* recorder)
    : num_blocks_(num_blocks),
      block_words_(block_words),
      shelter_cap_(static_cast<int64_t>(
          std::ceil(std::sqrt(static_cast<double>(num_blocks))))),
      rng_(rng.Next()),
      recorder_(recorder)
{
    assert(num_blocks > 0 && block_words > 0);
    const int64_t entries = num_blocks_ + shelter_cap_;
    tag_.resize(static_cast<size_t>(entries));
    id_.resize(static_cast<size_t>(entries));
    data_.assign(static_cast<size_t>(entries * block_words_), 0);
    shelter_id_.assign(static_cast<size_t>(shelter_cap_), kEmpty);
    shelter_data_.assign(
        static_cast<size_t>(shelter_cap_ * block_words_), 0);

    // Real ids then dummies; initial epoch sorts them by tag.
    for (int64_t e = 0; e < entries; ++e) {
        id_[static_cast<size_t>(e)] = static_cast<uint64_t>(e);
    }
    epoch_key_ = rng_.Next();
    for (int64_t e = 0; e < entries; ++e) {
        tag_[static_cast<size_t>(e)] =
            PrfTag(id_[static_cast<size_t>(e)]);
    }
    // Initial state is public: a plain sort is fine here.
    std::vector<int64_t> order(static_cast<size_t>(entries));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
        return tag_[static_cast<size_t>(a)] < tag_[static_cast<size_t>(b)];
    });
    std::vector<uint64_t> t2(tag_.size()), i2(id_.size());
    for (int64_t e = 0; e < entries; ++e) {
        t2[static_cast<size_t>(e)] =
            tag_[static_cast<size_t>(order[static_cast<size_t>(e)])];
        i2[static_cast<size_t>(e)] =
            id_[static_cast<size_t>(order[static_cast<size_t>(e)])];
    }
    tag_ = std::move(t2);
    id_ = std::move(i2);

    auto& space = sidechannel::ProcessAddressSpace();
    trace_base_ = space.Reserve(
        static_cast<uint64_t>(entries * block_words_) * 4, 64,
        "sqrt_oram.store");
    shelter_trace_base_ = space.Reserve(
        static_cast<uint64_t>(shelter_cap_ * block_words_) * 4, 64,
        "sqrt_oram.shelter");
}

uint64_t
SqrtOram::PrfTag(uint64_t logical_id) const
{
    uint32_t key[4];
    DeriveKey(epoch_key_, key);
    return BucketCipher::EncryptBlock(key, logical_id);
}

int64_t
SqrtOram::FindTagPosition(uint64_t tag) const
{
    const auto it = std::lower_bound(tag_.begin(), tag_.end(), tag);
    assert(it != tag_.end() && *it == tag);
    return std::distance(tag_.begin(), it);
}

void
SqrtOram::RecordEntry(int64_t pos)
{
    if (recorder_) {
        recorder_->Record(
            trace_base_ +
                static_cast<uint64_t>(pos * block_words_ * 4),
            static_cast<uint32_t>(block_words_ * 4), false);
    }
}

void
SqrtOram::RecordShelterScan()
{
    ++stats_.shelter_scans;
    if (recorder_) {
        recorder_->Record(
            shelter_trace_base_,
            static_cast<uint32_t>(shelter_cap_ * block_words_ * 4),
            true);
    }
}

void
SqrtOram::Access(int64_t logical_id, bool is_write,
                 std::span<uint32_t> read_out,
                 std::span<const uint32_t> write_in)
{
    assert(logical_id >= 0 && logical_id < num_blocks_);
    ++stats_.accesses;
    TELEMETRY_SPAN("sqrt_oram.access");
    TELEMETRY_COUNT("sqrt_oram.accesses", 1);
    const uint64_t id = static_cast<uint64_t>(logical_id);

    // 1. Oblivious shelter scan: collect data if present.
    RecordShelterScan();
    std::vector<uint32_t> merged(static_cast<size_t>(block_words_), 0);
    uint64_t found = 0;
    for (size_t s = 0; s < shelter_id_.size(); ++s) {
        const uint64_t m = EqMask(shelter_id_[s], id);
        oblivious::CtCopyRow(
            m,
            {reinterpret_cast<const float*>(shelter_data_.data()) +
                 static_cast<int64_t>(s) * block_words_,
             static_cast<size_t>(block_words_)},
            {reinterpret_cast<float*>(merged.data()),
             static_cast<size_t>(block_words_)});
        found |= m;
    }

    // 2. Fetch from the permuted store: the real position if this is the
    //    block's first touch this epoch, else the next unused dummy.
    const uint64_t real_tag = PrfTag(id);
    const uint64_t dummy_tag = PrfTag(
        static_cast<uint64_t>(num_blocks_ + dummies_used_));
    const uint64_t target_tag = Select(found, dummy_tag, real_tag);
    if (found) ++dummies_used_;  // bounded by shelter_cap_ per epoch
    const int64_t pos = FindTagPosition(target_tag);
    RecordEntry(pos);
    // Take the entry's payload only when the shelter missed.
    oblivious::CtCopyRow(
        ~found,
        {reinterpret_cast<const float*>(data_.data()) +
             pos * block_words_,
         static_cast<size_t>(block_words_)},
        {reinterpret_cast<float*>(merged.data()),
         static_cast<size_t>(block_words_)});

    // 3. Apply the operation.
    if (is_write) {
        std::memcpy(merged.data(), write_in.data(),
                    merged.size() * sizeof(uint32_t));
    } else {
        std::memcpy(read_out.data(), merged.data(),
                    merged.size() * sizeof(uint32_t));
    }

    // 4. Upsert into the shelter: update the matching slot if present,
    //    otherwise insert into the first free slot. Both passes scan the
    //    full shelter.
    RecordShelterScan();
    uint64_t placed = found;
    for (size_t s = 0; s < shelter_id_.size(); ++s) {
        const uint64_t match = EqMask(shelter_id_[s], id);
        const uint64_t free_slot = EqMask(shelter_id_[s], kEmpty);
        const uint64_t take = match | (free_slot & ~placed);
        shelter_id_[s] = Select(take, id, shelter_id_[s]);
        oblivious::CtCopyRow(
            take,
            {reinterpret_cast<const float*>(merged.data()),
             static_cast<size_t>(block_words_)},
            {reinterpret_cast<float*>(shelter_data_.data()) +
                 static_cast<int64_t>(s) * block_words_,
             static_cast<size_t>(block_words_)});
        placed |= take;
    }
    assert(placed != 0);

    ++epoch_accesses_;
    if (epoch_accesses_ >= shelter_cap_) Reshuffle();
}

void
SqrtOram::Reshuffle()
{
    ++stats_.reshuffles;
    const int64_t entries = num_blocks_ + shelter_cap_;

    // Fold the shelter back: every (shelter, entry) pair is touched so
    // the fold itself is oblivious.
    for (size_t s = 0; s < shelter_id_.size(); ++s) {
        for (int64_t e = 0; e < entries; ++e) {
            const uint64_t m =
                EqMask(id_[static_cast<size_t>(e)], shelter_id_[s]);
            oblivious::CtCopyRow(
                m,
                {reinterpret_cast<const float*>(shelter_data_.data()) +
                     static_cast<int64_t>(s) * block_words_,
                 static_cast<size_t>(block_words_)},
                {reinterpret_cast<float*>(data_.data()) +
                     e * block_words_,
                 static_cast<size_t>(block_words_)});
        }
        shelter_id_[s] = kEmpty;
    }

    // Re-key and obliviously reshuffle (sort by the fresh PRF tags).
    epoch_key_ = rng_.Next();
    for (int64_t e = 0; e < entries; ++e) {
        tag_[static_cast<size_t>(e)] =
            PrfTag(id_[static_cast<size_t>(e)]);
    }
    // Pack (id, data) rows so they travel with their tags.
    const int64_t row_words = 2 + block_words_;
    std::vector<uint32_t> rows(static_cast<size_t>(entries * row_words));
    for (int64_t e = 0; e < entries; ++e) {
        uint32_t* row = rows.data() + e * row_words;
        row[0] = static_cast<uint32_t>(id_[static_cast<size_t>(e)]);
        row[1] =
            static_cast<uint32_t>(id_[static_cast<size_t>(e)] >> 32);
        std::memcpy(row + 2, data_.data() + e * block_words_,
                    static_cast<size_t>(block_words_) * 4);
    }
    oblivious::ObliviousSortByKey(tag_, rows, row_words);
    for (int64_t e = 0; e < entries; ++e) {
        const uint32_t* row = rows.data() + e * row_words;
        id_[static_cast<size_t>(e)] =
            static_cast<uint64_t>(row[0]) |
            (static_cast<uint64_t>(row[1]) << 32);
        std::memcpy(data_.data() + e * block_words_, row + 2,
                    static_cast<size_t>(block_words_) * 4);
    }
    if (recorder_) {
        recorder_->Record(trace_base_,
                          static_cast<uint32_t>(entries * block_words_ *
                                                4),
                          true);
    }
    epoch_accesses_ = 0;
    dummies_used_ = 0;
}

void
SqrtOram::Read(int64_t id, std::span<uint32_t> out)
{
    assert(static_cast<int64_t>(out.size()) == block_words_);
    Access(id, /*is_write=*/false, out, {});
}

void
SqrtOram::Write(int64_t id, std::span<const uint32_t> in)
{
    assert(static_cast<int64_t>(in.size()) == block_words_);
    Access(id, /*is_write=*/true, {}, in);
}

void
SqrtOram::BulkLoad(std::span<const uint32_t> data)
{
    assert(static_cast<int64_t>(data.size()) ==
           num_blocks_ * block_words_);
    const int64_t entries = num_blocks_ + shelter_cap_;
    for (int64_t e = 0; e < entries; ++e) {
        const uint64_t logical = id_[static_cast<size_t>(e)];
        if (logical < static_cast<uint64_t>(num_blocks_)) {
            std::memcpy(data_.data() + e * block_words_,
                        data.data() +
                            static_cast<int64_t>(logical) * block_words_,
                        static_cast<size_t>(block_words_) * 4);
        }
    }
}

int64_t
SqrtOram::MemoryFootprintBytes() const
{
    const int64_t entries = num_blocks_ + shelter_cap_;
    return entries * (8 + 8 + block_words_ * 4) +
           shelter_cap_ * (8 + block_words_ * 4);
}

}  // namespace secemb::oram
