#pragma once

/**
 * @file
 * Square-Root ORAM (Goldreich & Ostrovsky) — the classic pre-tree design,
 * provided as an additional related-work baseline (the paper's Section
 * VII surveys non-tree ORAMs with "different performance characteristics";
 * this one makes the trade-offs concrete: O(sqrt(n)) amortised accesses
 * but epoch-boundary reshuffle spikes).
 *
 * Layout: the n real blocks plus m = ceil(sqrt(n)) dummies are stored
 * sorted by a per-epoch PRF tag (Speck64 of the id under an epoch key) —
 * a pseudorandom permutation realised with the oblivious bitonic sort.
 * A shelter holds the blocks touched this epoch (scanned obliviously on
 * every access). Each access touches: the whole shelter, one binary
 * search over the public sorted tags, and one table entry; a block is
 * never fetched from the table twice per epoch (repeats are covered by
 * fetching the next unused dummy), which is the scheme's security
 * argument. After m accesses everything is reshuffled under a fresh key.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "oram/crypto.h"
#include "oram/params.h"
#include "tensor/rng.h"

namespace secemb::oram {

/** Running counters for the square-root ORAM. */
struct SqrtOramStats
{
    int64_t accesses = 0;
    int64_t reshuffles = 0;
    int64_t shelter_scans = 0;
};

/** Goldreich-Ostrovsky square-root ORAM over fixed-size blocks. */
class SqrtOram
{
  public:
    /**
     * @param num_blocks logical blocks
     * @param block_words payload words per block
     * @param rng epoch-key and shuffle randomness
     * @param recorder optional trace sink
     */
    SqrtOram(int64_t num_blocks, int64_t block_words, Rng& rng,
             sidechannel::TraceRecorder* recorder = nullptr);

    /** Oblivious read of block id. */
    void Read(int64_t id, std::span<uint32_t> out);

    /** Oblivious write of block id. */
    void Write(int64_t id, std::span<const uint32_t> in);

    /** Non-oblivious bulk initialisation (public model weights). */
    void BulkLoad(std::span<const uint32_t> data);

    int64_t MemoryFootprintBytes() const;
    const SqrtOramStats& stats() const { return stats_; }
    int64_t num_blocks() const { return num_blocks_; }
    int64_t shelter_capacity() const { return shelter_cap_; }

  private:
    int64_t num_blocks_;
    int64_t block_words_;
    int64_t shelter_cap_;  ///< m = ceil(sqrt(n)), also dummies per epoch
    Rng rng_;
    sidechannel::TraceRecorder* recorder_;

    // Permuted store: entry e holds (tag_[e], id_[e], data_).
    // Sorted ascending by tag each epoch; tags are public after sorting.
    std::vector<uint64_t> tag_;
    std::vector<uint64_t> id_;       ///< real id, or n+j for dummy j
    std::vector<uint32_t> data_;     ///< slot-major payloads

    // Shelter (linear-scanned).
    std::vector<uint64_t> shelter_id_;
    std::vector<uint32_t> shelter_data_;

    uint64_t epoch_key_ = 0;
    int64_t epoch_accesses_ = 0;
    int64_t dummies_used_ = 0;

    SqrtOramStats stats_;
    uint64_t trace_base_ = 0;
    uint64_t shelter_trace_base_ = 0;

    void Access(int64_t id, bool is_write, std::span<uint32_t> read_out,
                std::span<const uint32_t> write_in);
    uint64_t PrfTag(uint64_t logical_id) const;
    /** Position of `tag` in the sorted tag array (binary search). */
    int64_t FindTagPosition(uint64_t tag) const;
    /** Re-key, fold the shelter back, and obliviously reshuffle. */
    void Reshuffle();
    void RecordEntry(int64_t pos);
    void RecordShelterScan();
};

}  // namespace secemb::oram
