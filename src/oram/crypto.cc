#include "oram/crypto.h"

namespace secemb::oram {

namespace {

constexpr int kRounds = 27;  // Speck64/128

inline uint32_t
Rotr(uint32_t x, int r)
{
    return (x >> r) | (x << (32 - r));
}

inline uint32_t
Rotl(uint32_t x, int r)
{
    return (x << r) | (x >> (32 - r));
}

inline void
SpeckRound(uint32_t& x, uint32_t& y, uint32_t k)
{
    x = Rotr(x, 8);
    x += y;
    x ^= k;
    y = Rotl(y, 3);
    y ^= x;
}

uint64_t
SplitMix64(uint64_t& s)
{
    s += 0x9e3779b97f4a7c15ULL;
    uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace

BucketCipher::BucketCipher(uint64_t key_seed)
{
    uint64_t s = key_seed;
    for (int i = 0; i < 4; i += 2) {
        const uint64_t v = SplitMix64(s);
        key_[i] = static_cast<uint32_t>(v);
        key_[i + 1] = static_cast<uint32_t>(v >> 32);
    }
}

uint64_t
BucketCipher::EncryptBlock(const uint32_t key[4], uint64_t block)
{
    uint32_t x = static_cast<uint32_t>(block >> 32);
    uint32_t y = static_cast<uint32_t>(block);
    // Key schedule interleaved with encryption (standard Speck trick).
    uint32_t l[3] = {key[1], key[2], key[3]};
    uint32_t k = key[0];
    for (int i = 0; i < kRounds; ++i) {
        SpeckRound(x, y, k);
        // Schedule next round key.
        uint32_t& li = l[i % 3];
        li = (Rotr(li, 8) + k) ^ static_cast<uint32_t>(i);
        k = Rotl(k, 3) ^ li;
    }
    return (static_cast<uint64_t>(x) << 32) | y;
}

void
BucketCipher::Apply(int64_t bucket, uint64_t version,
                    std::span<uint32_t> words) const
{
    // CTR mode: keystream block i for this bucket/version encrypts words
    // 2i and 2i+1. The counter folds bucket and version so no (key,
    // counter) pair ever repeats across write-backs.
    const uint64_t tweak =
        (static_cast<uint64_t>(bucket) << 24) ^ (version * 0x9e3779b9ULL);
    const size_t n = words.size();
    for (size_t i = 0; i < n; i += 2) {
        const uint64_t ks =
            EncryptBlock(key_, tweak ^ (static_cast<uint64_t>(i) << 48));
        words[i] ^= static_cast<uint32_t>(ks);
        if (i + 1 < n) words[i + 1] ^= static_cast<uint32_t>(ks >> 32);
    }
}

}  // namespace secemb::oram
