#pragma once

/**
 * @file
 * Bucket payload encryption for the ORAM controllers.
 *
 * Tree-based ORAM requires every block to be re-encrypted on every path
 * write-back — otherwise the adversary can correlate ciphertexts across
 * shuffles and the obliviousness guarantee collapses. ZeroTrace (the
 * paper's baseline) pays this cost with AES; we use Speck64/128 in CTR
 * mode keyed per controller, with a (bucket, version, offset) counter so
 * each write produces a fresh ciphertext. This is real computational work
 * per path touch, and it is what puts software ORAM latency in the regime
 * the paper measures.
 *
 * Note: this repo's adversary is simulated, so the cipher's role is
 * (a) cost fidelity and (b) payload confidentiality against the modelled
 * memory-bus observer; it is not a review-grade cryptographic boundary.
 */

#include <cstdint>
#include <span>

namespace secemb::oram {

/** Speck64/128 CTR keystream generator for bucket payloads. */
class BucketCipher
{
  public:
    /** Derive the 4x32-bit key from a seed (one controller = one key). */
    explicit BucketCipher(uint64_t key_seed);

    /**
     * XOR `words` with the keystream for (bucket, version). Symmetric:
     * applying it twice with the same coordinates restores the input, so
     * the same call encrypts and decrypts.
     */
    void Apply(int64_t bucket, uint64_t version,
               std::span<uint32_t> words) const;

    /** Raw Speck64/128 block encryption (exposed for tests). */
    static uint64_t EncryptBlock(const uint32_t key[4], uint64_t block);

  private:
    uint32_t key_[4];
};

}  // namespace secemb::oram
