#pragma once

/**
 * @file
 * Shared configuration and statistics for the tree-based ORAM substrate.
 *
 * Defaults follow the paper (Section V-A1): bucket size Z = 4; stash 150
 * (Path) / 10 (Circuit); recursion after 2^16 blocks (Path) / 2^12
 * (Circuit); position-map reduction 16x per recursion level.
 */

#include <cstdint>

#include "sidechannel/trace.h"
#include "tee/tee_model.h"

namespace secemb::oram {

/** Which tree-ORAM algorithm a TreeOram instance runs. */
enum class OramKind
{
    kPath,
    kCircuit,
};

/** Tunables for one ORAM instance (and, recursively, its position maps). */
struct OramParams
{
    int bucket_capacity = 4;           ///< Z
    int64_t stash_capacity = 150;      ///< blocks held client-side
    int64_t recursion_threshold = 1 << 16;  ///< flat posmap below this
    int posmap_fanout = 16;            ///< posmap entries per posmap block
    bool enable_recursion = true;
    bool inline_select = true;         ///< false models ZT's stub cmov call
    bool encrypt_payloads = true;      ///< CTR re-encryption per path touch
    double ocall_ns = 0.0;             ///< TEE boundary cost per path op
    sidechannel::TraceRecorder* recorder = nullptr;

    /** Paper defaults for the given algorithm. */
    static OramParams Defaults(OramKind kind);

    /** Apply a ZeroTrace-variant cost model (Fig. 10 ablation). */
    void ApplyTeeModel(const tee::TeeCostModel& m);
};

/** Running counters, cumulative since construction. */
struct OramStats
{
    int64_t accesses = 0;        ///< logical block accesses
    int64_t bucket_reads = 0;    ///< tree buckets fetched
    int64_t bucket_writes = 0;   ///< tree buckets written back
    int64_t stash_scans = 0;     ///< full stash linear scans
    int64_t ocalls = 0;          ///< modelled enclave crossings
};

}  // namespace secemb::oram
