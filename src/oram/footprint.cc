#include "oram/footprint.h"

#include <algorithm>

namespace secemb::oram {

namespace {

int64_t
CeilLog2(int64_t n)
{
    int64_t l = 0;
    while ((int64_t{1} << l) < n) ++l;
    return l;
}

}  // namespace

int64_t
EstimateFootprintBytes(OramKind kind, int64_t num_blocks,
                       int64_t block_words, const OramParams& params)
{
    // Mirrors the sizing arithmetic in TreeOram's constructor and
    // MemoryFootprintBytes.
    const int64_t levels =
        CeilLog2(std::max<int64_t>(2, (num_blocks + 1) / 2));
    const int64_t num_leaves = int64_t{1} << levels;
    const int64_t num_buckets = 2 * num_leaves - 1;
    const int64_t per_slot_meta = 8 + 4;
    const int64_t slots = num_buckets * params.bucket_capacity;
    const int64_t tree_bytes = slots * (block_words * 4 + per_slot_meta);
    const int64_t stash_bytes =
        params.stash_capacity * (block_words * 4 + per_slot_meta);
    const int64_t version_bytes = num_buckets * 8;

    int64_t posmap_bytes;
    const bool recurse = params.enable_recursion &&
                         num_blocks > params.recursion_threshold;
    if (!recurse) {
        posmap_bytes = num_blocks * 4;
    } else {
        const int64_t child_blocks =
            (num_blocks + params.posmap_fanout - 1) / params.posmap_fanout;
        posmap_bytes = EstimateFootprintBytes(kind, child_blocks,
                                              params.posmap_fanout,
                                              params);
    }
    return tree_bytes + stash_bytes + version_bytes + posmap_bytes;
}

int64_t
EstimateFootprintBytes(OramKind kind, int64_t num_blocks,
                       int64_t block_words)
{
    return EstimateFootprintBytes(kind, num_blocks, block_words,
                                  OramParams::Defaults(kind));
}

}  // namespace secemb::oram
