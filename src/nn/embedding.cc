#include "nn/embedding.h"

#include <cassert>
#include <cmath>
#include <cstring>

namespace secemb::nn {

EmbeddingTable::EmbeddingTable(int64_t num_rows, int64_t dim, Rng& rng)
    : weight_(Tensor::Randn({num_rows, dim}, rng,
                            1.0f / std::sqrt(static_cast<float>(dim))))
{
}

Tensor
EmbeddingTable::Forward(std::span<const int64_t> indices)
{
    const int64_t n = static_cast<int64_t>(indices.size());
    const int64_t d = dim();
    Tensor out({n, d});
    for (int64_t i = 0; i < n; ++i) {
        assert(indices[static_cast<size_t>(i)] >= 0 &&
               indices[static_cast<size_t>(i)] < num_rows());
        std::memcpy(out.data() + i * d,
                    weight_.value.data() + indices[static_cast<size_t>(i)] * d,
                    static_cast<size_t>(d) * sizeof(float));
    }
    return out;
}

void
EmbeddingTable::Backward(std::span<const int64_t> indices,
                         const Tensor& grad_out)
{
    const int64_t n = static_cast<int64_t>(indices.size());
    const int64_t d = dim();
    assert(grad_out.size(0) == n && grad_out.size(1) == d);
    for (int64_t i = 0; i < n; ++i) {
        float* g = weight_.grad.data() + indices[static_cast<size_t>(i)] * d;
        const float* go = grad_out.data() + i * d;
        for (int64_t j = 0; j < d; ++j) g[j] += go[j];
    }
}

}  // namespace secemb::nn
