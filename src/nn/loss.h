#pragma once

/**
 * @file
 * Losses: binary cross-entropy with logits (DLRM CTR) and softmax
 * cross-entropy (LLM next-token prediction). Both return the mean loss and
 * produce the gradient with respect to the logits.
 */

#include <cstdint>
#include <span>

#include "tensor/tensor.h"

namespace secemb::nn {

/**
 * Mean binary cross-entropy on logits (numerically stable log-sum-exp
 * form). logits and targets are both (n); targets in {0, 1}.
 * If grad is non-null it receives dLoss/dlogits (n).
 */
float BceWithLogits(const Tensor& logits, const Tensor& targets,
                    Tensor* grad);

/**
 * Mean softmax cross-entropy. logits (n x classes); targets length n with
 * class ids. If grad is non-null it receives dLoss/dlogits (n x classes).
 */
float SoftmaxCrossEntropy(const Tensor& logits,
                          std::span<const int64_t> targets, Tensor* grad);

/** Binary classification accuracy at a 0.5 probability threshold. */
float BinaryAccuracy(const Tensor& logits, const Tensor& targets);

/** Perplexity = exp(mean cross-entropy). */
float Perplexity(float mean_cross_entropy);

}  // namespace secemb::nn
