#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>

namespace secemb::nn {

namespace {

constexpr uint32_t kMagic = 0x53454d42;  // "SEMB"
constexpr uint32_t kVersion = 1;

struct FileCloser
{
    void operator()(std::FILE* f) const { std::fclose(f); }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File
OpenOrThrow(const std::string& path, const char* mode)
{
    File f(std::fopen(path.c_str(), mode));
    if (!f) {
        throw std::runtime_error("serialize: cannot open " + path);
    }
    return f;
}

void
WriteU64(std::FILE* f, uint64_t v)
{
    if (std::fwrite(&v, sizeof(v), 1, f) != 1) {
        throw std::runtime_error("serialize: short write");
    }
}

uint64_t
ReadU64(std::FILE* f)
{
    uint64_t v = 0;
    if (std::fread(&v, sizeof(v), 1, f) != 1) {
        throw std::runtime_error("serialize: short read");
    }
    return v;
}

void
WriteTensorBody(std::FILE* f, const Tensor& t)
{
    WriteU64(f, static_cast<uint64_t>(t.dim()));
    for (int64_t d = 0; d < t.dim(); ++d) {
        WriteU64(f, static_cast<uint64_t>(t.size(d)));
    }
    const size_t n = static_cast<size_t>(t.numel());
    if (n > 0 && std::fwrite(t.data(), sizeof(float), n, f) != n) {
        throw std::runtime_error("serialize: short payload write");
    }
}

Tensor
ReadTensorBody(std::FILE* f)
{
    const uint64_t ndims = ReadU64(f);
    if (ndims > 8) throw std::runtime_error("serialize: corrupt header");
    Shape shape;
    for (uint64_t d = 0; d < ndims; ++d) {
        shape.push_back(static_cast<int64_t>(ReadU64(f)));
    }
    Tensor t(shape);
    const size_t n = static_cast<size_t>(t.numel());
    if (n > 0 && std::fread(t.data(), sizeof(float), n, f) != n) {
        throw std::runtime_error("serialize: short payload read");
    }
    return t;
}

void
WriteHeader(std::FILE* f, uint64_t count)
{
    WriteU64(f, kMagic);
    WriteU64(f, kVersion);
    WriteU64(f, count);
}

uint64_t
ReadHeader(std::FILE* f)
{
    if (ReadU64(f) != kMagic) {
        throw std::runtime_error("serialize: bad magic");
    }
    if (ReadU64(f) != kVersion) {
        throw std::runtime_error("serialize: unsupported version");
    }
    return ReadU64(f);
}

}  // namespace

void
SaveTensor(const Tensor& t, const std::string& path)
{
    File f = OpenOrThrow(path, "wb");
    WriteHeader(f.get(), 1);
    WriteTensorBody(f.get(), t);
}

Tensor
LoadTensor(const std::string& path)
{
    File f = OpenOrThrow(path, "rb");
    if (ReadHeader(f.get()) != 1) {
        throw std::runtime_error("serialize: expected a single tensor");
    }
    return ReadTensorBody(f.get());
}

void
SaveParameters(const std::vector<Parameter*>& params,
               const std::string& path)
{
    File f = OpenOrThrow(path, "wb");
    WriteHeader(f.get(), params.size());
    for (const Parameter* p : params) {
        WriteTensorBody(f.get(), p->value);
    }
}

void
LoadParameters(const std::vector<Parameter*>& params,
               const std::string& path)
{
    File f = OpenOrThrow(path, "rb");
    const uint64_t count = ReadHeader(f.get());
    if (count != params.size()) {
        throw std::runtime_error("serialize: parameter count mismatch");
    }
    for (Parameter* p : params) {
        Tensor t = ReadTensorBody(f.get());
        if (t.shape() != p->value.shape()) {
            throw std::runtime_error("serialize: shape mismatch");
        }
        p->value = std::move(t);
    }
}

}  // namespace secemb::nn
