#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

namespace secemb::nn {

namespace {

constexpr uint32_t kMagic = 0x53454d42;  // "SEMB"
constexpr uint32_t kVersion = 1;

struct FileCloser
{
    void operator()(std::FILE* f) const { std::fclose(f); }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File
OpenOrThrow(const std::string& path, const char* mode)
{
    File f(std::fopen(path.c_str(), mode));
    if (!f) {
        throw std::runtime_error("serialize: cannot open " + path);
    }
    return f;
}

void
WriteU64(std::FILE* f, uint64_t v)
{
    if (std::fwrite(&v, sizeof(v), 1, f) != 1) {
        throw std::runtime_error("serialize: short write");
    }
}

[[noreturn]] void
ThrowCorrupt(const std::string& path, uint64_t offset,
             const std::string& why)
{
    throw std::runtime_error("serialize: corrupt data in " + path +
                             " at offset " + std::to_string(offset) +
                             ": " + why);
}

uint64_t
Offset(std::FILE* f)
{
    const long pos = std::ftell(f);
    return pos < 0 ? 0 : static_cast<uint64_t>(pos);
}

uint64_t
FileSize(std::FILE* f)
{
    const long cur = std::ftell(f);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, cur < 0 ? 0 : cur, SEEK_SET);
    return size < 0 ? 0 : static_cast<uint64_t>(size);
}

uint64_t
ReadU64(std::FILE* f, const std::string& path)
{
    uint64_t v = 0;
    const uint64_t offset = Offset(f);
    if (std::fread(&v, sizeof(v), 1, f) != 1) {
        ThrowCorrupt(path, offset, "short read (truncated file?)");
    }
    return v;
}

void
WriteTensorBody(std::FILE* f, const Tensor& t)
{
    WriteU64(f, static_cast<uint64_t>(t.dim()));
    for (int64_t d = 0; d < t.dim(); ++d) {
        WriteU64(f, static_cast<uint64_t>(t.size(d)));
    }
    const size_t n = static_cast<size_t>(t.numel());
    if (n > 0 && std::fwrite(t.data(), sizeof(float), n, f) != n) {
        throw std::runtime_error("serialize: short payload write");
    }
}

/**
 * Read one tensor, validating the header against `file_size` *before*
 * allocating: a corrupt rank, a dim that does not fit int64, or an
 * element count whose payload could not possibly fit in the bytes that
 * remain all fail up front with the offending path and byte offset —
 * never with a multi-GB resize or an integer overflow.
 */
Tensor
ReadTensorBody(std::FILE* f, const std::string& path, uint64_t file_size)
{
    uint64_t offset = Offset(f);
    const uint64_t ndims = ReadU64(f, path);
    if (ndims > 8) {
        ThrowCorrupt(path, offset,
                     "tensor rank " + std::to_string(ndims) +
                         " exceeds the maximum of 8");
    }
    // The payload can never exceed the file itself, so the running
    // element-count product is bounded by file_size / sizeof(float);
    // checking against that bound before each multiply also rules out
    // uint64 overflow.
    const uint64_t max_elems = file_size / sizeof(float);
    Shape shape;
    shape.reserve(ndims);
    uint64_t numel = 1;
    for (uint64_t d = 0; d < ndims; ++d) {
        offset = Offset(f);
        const uint64_t v = ReadU64(f, path);
        if (v > static_cast<uint64_t>(
                    std::numeric_limits<int64_t>::max())) {
            ThrowCorrupt(path, offset,
                         "dimension " + std::to_string(d) +
                             " does not fit in int64");
        }
        if (v != 0 && numel > max_elems / v) {
            ThrowCorrupt(path, offset,
                         "dimension " + std::to_string(d) + " = " +
                             std::to_string(v) +
                             " puts the element count past the " +
                             std::to_string(file_size) + "-byte file");
        }
        numel = v == 0 ? 0 : numel * v;
        shape.push_back(static_cast<int64_t>(v));
    }
    const uint64_t data_offset = Offset(f);
    const uint64_t remaining =
        file_size > data_offset ? file_size - data_offset : 0;
    if (numel * sizeof(float) > remaining) {
        ThrowCorrupt(path, data_offset,
                     "payload of " + std::to_string(numel) +
                         " floats exceeds the " +
                         std::to_string(remaining) + " bytes remaining");
    }
    Tensor t(shape);
    const size_t n = static_cast<size_t>(t.numel());
    if (n > 0 && std::fread(t.data(), sizeof(float), n, f) != n) {
        ThrowCorrupt(path, data_offset, "short payload read");
    }
    return t;
}

void
WriteHeader(std::FILE* f, uint64_t count)
{
    WriteU64(f, kMagic);
    WriteU64(f, kVersion);
    WriteU64(f, count);
}

uint64_t
ReadHeader(std::FILE* f, const std::string& path)
{
    if (ReadU64(f, path) != kMagic) {
        ThrowCorrupt(path, 0, "bad magic (not a SEMB checkpoint)");
    }
    if (ReadU64(f, path) != kVersion) {
        ThrowCorrupt(path, sizeof(uint64_t), "unsupported version");
    }
    return ReadU64(f, path);
}

}  // namespace

void
SaveTensor(const Tensor& t, const std::string& path)
{
    File f = OpenOrThrow(path, "wb");
    WriteHeader(f.get(), 1);
    WriteTensorBody(f.get(), t);
}

Tensor
LoadTensor(const std::string& path)
{
    File f = OpenOrThrow(path, "rb");
    const uint64_t file_size = FileSize(f.get());
    if (ReadHeader(f.get(), path) != 1) {
        throw std::runtime_error("serialize: expected a single tensor in " +
                                 path);
    }
    return ReadTensorBody(f.get(), path, file_size);
}

void
SaveParameters(const std::vector<Parameter*>& params,
               const std::string& path)
{
    File f = OpenOrThrow(path, "wb");
    WriteHeader(f.get(), params.size());
    for (const Parameter* p : params) {
        WriteTensorBody(f.get(), p->value);
    }
}

void
LoadParameters(const std::vector<Parameter*>& params,
               const std::string& path)
{
    File f = OpenOrThrow(path, "rb");
    const uint64_t file_size = FileSize(f.get());
    const uint64_t count = ReadHeader(f.get(), path);
    if (count != params.size()) {
        throw std::runtime_error(
            "serialize: parameter count mismatch in " + path +
            " (file has " + std::to_string(count) + ", model expects " +
            std::to_string(params.size()) + ")");
    }
    for (size_t i = 0; i < params.size(); ++i) {
        const uint64_t offset = Offset(f.get());
        Tensor t = ReadTensorBody(f.get(), path, file_size);
        if (t.shape() != params[i]->value.shape()) {
            throw std::runtime_error(
                "serialize: shape mismatch for parameter " +
                std::to_string(i) + " in " + path + " at offset " +
                std::to_string(offset));
        }
        params[i]->value = std::move(t);
    }
}

}  // namespace secemb::nn
