#pragma once

/**
 * @file
 * Trainable embedding table (the storage-based representation).
 *
 * This is the non-secure baseline of the paper: Forward gathers rows by
 * index (data-dependent access — exactly the leak demonstrated in Fig. 3),
 * Backward scatter-adds gradients. Secure inference wrappers live in
 * src/core; this class is the *training* representation and the source of
 * table weights for linear scan / ORAM deployments.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "nn/module.h"
#include "tensor/rng.h"

namespace secemb::nn {

/** Lookup-table embedding with scatter-add gradient. */
class EmbeddingTable
{
  public:
    /**
     * @param num_rows table entries (vocabulary / feature cardinality)
     * @param dim embedding dimension
     * @param rng init source; rows ~ N(0, 1/sqrt(dim))
     */
    EmbeddingTable(int64_t num_rows, int64_t dim, Rng& rng);

    /** Gather: out (n x dim) rows for the given indices. */
    Tensor Forward(std::span<const int64_t> indices);

    /** Scatter-add grad_out (n x dim) into the table gradient. */
    void Backward(std::span<const int64_t> indices, const Tensor& grad_out);

    Parameter& weight() { return weight_; }
    const Tensor& table() const { return weight_.value; }
    int64_t num_rows() const { return weight_.value.size(0); }
    int64_t dim() const { return weight_.value.size(1); }
    int64_t ParamBytes() const { return weight_.value.SizeBytes(); }

  private:
    Parameter weight_;  ///< (num_rows x dim)
};

}  // namespace secemb::nn
