#include "nn/layers.h"

#include <cassert>
#include <cmath>

#include "oblivious/ct_ops.h"
#include "tensor/gemm.h"

namespace secemb::nn {

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

Linear::Linear(int64_t in, int64_t out, Rng& rng, int nthreads,
               Activation act)
    : w_(Tensor()), b_(Tensor::Zeros({out})), nthreads_(nthreads),
      act_(act)
{
    const float bound = std::sqrt(6.0f / static_cast<float>(in));
    w_ = Parameter(Tensor::Uniform({in, out}, rng, -bound, bound));
}

Tensor
Linear::Forward(const Tensor& x)
{
    assert(x.dim() == 2 && x.size(1) == in_features());
    cached_x_ = x;
    Tensor y({x.size(0), out_features()});
    // GELU's gradient needs the pre-activation, which the fused epilogue
    // saves in the same pass; ReLU's gradient only needs the output sign.
    Tensor* preact = nullptr;
    if (act_ == Activation::kGelu) {
        cached_preact_ = Tensor({x.size(0), out_features()});
        preact = &cached_preact_;
    }
    AffineActForward(x, w_.value, b_.value, y, nthreads_, act_, preact,
                     dtype_);
    if (act_ == Activation::kRelu) cached_y_ = y;
    return y;
}

Tensor
Linear::Backward(const Tensor& grad_out)
{
    assert(grad_out.size(0) == cached_x_.size(0));
    assert(grad_out.size(1) == out_features());
    const int64_t m = grad_out.size(0), n = grad_out.size(1);

    // Gradient through the fused activation (branchless, like ReLU's
    // standalone module: the blend depends on data values, not control
    // flow).
    Tensor g = grad_out;
    if (act_ == Activation::kRelu) {
        float* gp = g.data();
        const float* yp = cached_y_.data();
        for (int64_t i = 0; i < g.numel(); ++i) {
            const uint64_t positive =
                oblivious::BoolToMask(yp[i] > 0.0f ? 1 : 0);
            gp[i] = oblivious::SelectF32(positive, gp[i], 0.0f);
        }
    } else if (act_ == Activation::kGelu) {
        float* gp = g.data();
        const float* pre = cached_preact_.data();
        for (int64_t i = 0; i < g.numel(); ++i) {
            gp[i] *= kernels::GeluGradF(pre[i]);
        }
    }

    // dW += x^T g ; accumulate into existing grad.
    Tensor dw({in_features(), out_features()});
    GemmAT(cached_x_, g, dw, nthreads_);
    w_.grad.AddInPlace(dw);

    // db += column sums of g.
    for (int64_t i = 0; i < m; ++i) {
        const float* gi = g.data() + i * n;
        float* db = b_.grad.data();
        for (int64_t j = 0; j < n; ++j) db[j] += gi[j];
    }

    // dx = g W^T (weights packed once in the persistent cache).
    // Always f32: low precision is an inference-path optimisation.
    Tensor dx({m, in_features()});
    GemmWeightBT(g, w_.value, dx, nthreads_, kernels::Dtype::kF32);
    return dx;
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

Tensor
ReLU::Forward(const Tensor& x)
{
    Tensor y = x;
    cached_mask_ = Tensor::Zeros(x.shape());
    float* yp = y.data();
    float* mp = cached_mask_.data();
    for (int64_t i = 0; i < y.numel(); ++i) {
        const uint64_t positive =
            oblivious::BoolToMask(yp[i] > 0.0f ? 1 : 0);
        yp[i] = oblivious::SelectF32(positive, yp[i], 0.0f);
        mp[i] = oblivious::SelectF32(positive, 1.0f, 0.0f);
    }
    return y;
}

Tensor
ReLU::Backward(const Tensor& grad_out)
{
    Tensor dx = grad_out;
    dx.MulInPlace(cached_mask_);
    return dx;
}

void
ObliviousReLUInPlace(Tensor& x)
{
    float* p = x.data();
    for (int64_t i = 0; i < x.numel(); ++i) {
        const uint64_t positive = oblivious::BoolToMask(p[i] > 0.0f ? 1 : 0);
        p[i] = oblivious::SelectF32(positive, p[i], 0.0f);
    }
}

// ---------------------------------------------------------------------------
// Sigmoid / Tanh / Gelu
// ---------------------------------------------------------------------------

Tensor
Sigmoid::Forward(const Tensor& x)
{
    Tensor y = x;
    float* p = y.data();
    for (int64_t i = 0; i < y.numel(); ++i) {
        p[i] = 1.0f / (1.0f + std::exp(-p[i]));
    }
    cached_y_ = y;
    return y;
}

Tensor
Sigmoid::Backward(const Tensor& grad_out)
{
    Tensor dx = grad_out;
    float* d = dx.data();
    const float* y = cached_y_.data();
    for (int64_t i = 0; i < dx.numel(); ++i) {
        d[i] *= y[i] * (1.0f - y[i]);
    }
    return dx;
}

Tensor
Tanh::Forward(const Tensor& x)
{
    Tensor y = x;
    for (int64_t i = 0; i < y.numel(); ++i) y.at(i) = std::tanh(y.at(i));
    cached_y_ = y;
    return y;
}

Tensor
Tanh::Backward(const Tensor& grad_out)
{
    Tensor dx = grad_out;
    float* d = dx.data();
    const float* y = cached_y_.data();
    for (int64_t i = 0; i < dx.numel(); ++i) d[i] *= 1.0f - y[i] * y[i];
    return dx;
}

Tensor
Gelu::Forward(const Tensor& x)
{
    cached_x_ = x;
    Tensor y = x;
    float* p = y.data();
    for (int64_t i = 0; i < y.numel(); ++i) p[i] = kernels::GeluF(p[i]);
    return y;
}

Tensor
Gelu::Backward(const Tensor& grad_out)
{
    Tensor dx = grad_out;
    float* d = dx.data();
    const float* x = cached_x_.data();
    for (int64_t i = 0; i < dx.numel(); ++i) {
        d[i] *= kernels::GeluGradF(x[i]);
    }
    return dx;
}

// ---------------------------------------------------------------------------
// LayerNorm
// ---------------------------------------------------------------------------

LayerNorm::LayerNorm(int64_t dim, float eps)
    : gamma_(Tensor::Ones({dim})), beta_(Tensor::Zeros({dim})), eps_(eps)
{
}

Tensor
LayerNorm::Forward(const Tensor& x)
{
    assert(x.dim() == 2);
    const int64_t rows = x.size(0), d = x.size(1);
    assert(d == gamma_.value.numel());

    Tensor y({rows, d});
    cached_xhat_ = Tensor({rows, d});
    cached_inv_std_ = Tensor({rows});

    for (int64_t i = 0; i < rows; ++i) {
        const float* xi = x.data() + i * d;
        double mean = 0.0;
        for (int64_t j = 0; j < d; ++j) mean += xi[j];
        mean /= d;
        double var = 0.0;
        for (int64_t j = 0; j < d; ++j) {
            const double c = xi[j] - mean;
            var += c * c;
        }
        var /= d;
        const float inv_std =
            1.0f / std::sqrt(static_cast<float>(var) + eps_);
        cached_inv_std_.at(i) = inv_std;
        float* xh = cached_xhat_.data() + i * d;
        float* yi = y.data() + i * d;
        const float* g = gamma_.value.data();
        const float* b = beta_.value.data();
        for (int64_t j = 0; j < d; ++j) {
            xh[j] = (xi[j] - static_cast<float>(mean)) * inv_std;
            yi[j] = xh[j] * g[j] + b[j];
        }
    }
    return y;
}

Tensor
LayerNorm::Backward(const Tensor& grad_out)
{
    const int64_t rows = grad_out.size(0), d = grad_out.size(1);
    Tensor dx({rows, d});
    const float* g = gamma_.value.data();
    for (int64_t i = 0; i < rows; ++i) {
        const float* go = grad_out.data() + i * d;
        const float* xh = cached_xhat_.data() + i * d;
        const float inv_std = cached_inv_std_.at(i);
        float* dgi = gamma_.grad.data();
        float* dbi = beta_.grad.data();

        // dgamma/dbeta accumulation and intermediate sums.
        double sum_gxh = 0.0, sum_g = 0.0;
        for (int64_t j = 0; j < d; ++j) {
            dgi[j] += go[j] * xh[j];
            dbi[j] += go[j];
            const double gg = static_cast<double>(go[j]) * g[j];
            sum_gxh += gg * xh[j];
            sum_g += gg;
        }
        float* dxi = dx.data() + i * d;
        const float k1 = static_cast<float>(sum_g) / d;
        const float k2 = static_cast<float>(sum_gxh) / d;
        for (int64_t j = 0; j < d; ++j) {
            dxi[j] = inv_std * (go[j] * g[j] - k1 - xh[j] * k2);
        }
    }
    return dx;
}

// ---------------------------------------------------------------------------
// Sequential
// ---------------------------------------------------------------------------

Tensor
Sequential::Forward(const Tensor& x)
{
    Tensor h = x;
    for (auto& m : modules_) h = m->Forward(h);
    return h;
}

Tensor
Sequential::Backward(const Tensor& grad_out)
{
    Tensor g = grad_out;
    for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
        g = (*it)->Backward(g);
    }
    return g;
}

std::vector<Parameter*>
Sequential::Parameters()
{
    std::vector<Parameter*> ps;
    for (auto& m : modules_) {
        for (Parameter* p : m->Parameters()) ps.push_back(p);
    }
    return ps;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

Tensor
Softmax2D(const Tensor& logits)
{
    assert(logits.dim() == 2);
    const int64_t rows = logits.size(0), d = logits.size(1);
    Tensor y({rows, d});
    for (int64_t i = 0; i < rows; ++i) {
        const float* xi = logits.data() + i * d;
        float* yi = y.data() + i * d;
        float mx = xi[0];
        for (int64_t j = 1; j < d; ++j) mx = std::max(mx, xi[j]);
        double sum = 0.0;
        for (int64_t j = 0; j < d; ++j) {
            yi[j] = std::exp(xi[j] - mx);
            sum += yi[j];
        }
        const float inv = 1.0f / static_cast<float>(sum);
        for (int64_t j = 0; j < d; ++j) yi[j] *= inv;
    }
    return y;
}

std::unique_ptr<Sequential>
MakeMlp(const std::vector<int64_t>& sizes, Rng& rng, bool final_sigmoid,
        int nthreads)
{
    assert(sizes.size() >= 2);
    auto mlp = std::make_unique<Sequential>();
    for (size_t i = 0; i + 1 < sizes.size(); ++i) {
        const bool last = (i + 2 == sizes.size());
        const Activation act =
            last ? Activation::kIdentity : Activation::kRelu;
        mlp->Add(std::make_unique<Linear>(sizes[i], sizes[i + 1], rng,
                                          nthreads, act));
        if (last && final_sigmoid) {
            mlp->Add(std::make_unique<Sigmoid>());
        }
    }
    return mlp;
}

}  // namespace secemb::nn
