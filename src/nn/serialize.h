#pragma once

/**
 * @file
 * Binary serialization for tensors and parameter sets.
 *
 * The original artifact ships pretrained models (Zenodo); this is the
 * equivalent facility: train once (e.g. the all-DHE DLRM of Algorithm 2),
 * save, and deploy into secure generators later. The format is a simple
 * versioned little-endian stream — not an interchange format.
 *
 * Loading is hardened against corrupt or truncated files: header dims and
 * the total element count are validated against the remaining file size
 * *before* any allocation, so a flipped header byte cannot trigger a
 * multi-GB resize or an integer overflow. Every load error names the
 * offending path and byte offset.
 */

#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace secemb::nn {

/** Write one tensor (shape + payload). Throws std::runtime_error on IO
 * failure. */
void SaveTensor(const Tensor& t, const std::string& path);

/** Read a tensor written by SaveTensor. */
Tensor LoadTensor(const std::string& path);

/**
 * Write all parameter values (grads excluded) in order. The loader must
 * present the same number of parameters with identical shapes.
 */
void SaveParameters(const std::vector<Parameter*>& params,
                    const std::string& path);

/**
 * Restore parameter values saved by SaveParameters into `params`.
 * Throws std::runtime_error on count/shape mismatch or IO failure.
 */
void LoadParameters(const std::vector<Parameter*>& params,
                    const std::string& path);

}  // namespace secemb::nn
