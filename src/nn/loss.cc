#include "nn/loss.h"

#include <cassert>
#include <cmath>

namespace secemb::nn {

float
BceWithLogits(const Tensor& logits, const Tensor& targets, Tensor* grad)
{
    assert(logits.numel() == targets.numel());
    const int64_t n = logits.numel();
    assert(n > 0);
    if (grad) *grad = Tensor::Zeros(logits.shape());

    double loss = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        const float z = logits.at(i);
        const float t = targets.at(i);
        // log(1 + e^{-|z|}) + max(z, 0) - z t  (stable form)
        loss += std::log1p(std::exp(-std::abs(z))) + std::max(z, 0.0f) -
                z * t;
        if (grad) {
            const float p = 1.0f / (1.0f + std::exp(-z));
            grad->at(i) = (p - t) / static_cast<float>(n);
        }
    }
    return static_cast<float>(loss / n);
}

float
SoftmaxCrossEntropy(const Tensor& logits, std::span<const int64_t> targets,
                    Tensor* grad)
{
    assert(logits.dim() == 2);
    const int64_t n = logits.size(0), c = logits.size(1);
    assert(static_cast<int64_t>(targets.size()) == n);
    assert(n > 0);
    if (grad) *grad = Tensor::Zeros(logits.shape());

    double loss = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        const float* zi = logits.data() + i * c;
        const int64_t t = targets[static_cast<size_t>(i)];
        assert(t >= 0 && t < c);
        float mx = zi[0];
        for (int64_t j = 1; j < c; ++j) mx = std::max(mx, zi[j]);
        double sum = 0.0;
        for (int64_t j = 0; j < c; ++j) sum += std::exp(zi[j] - mx);
        const double log_z = mx + std::log(sum);
        loss += log_z - zi[t];
        if (grad) {
            float* gi = grad->data() + i * c;
            for (int64_t j = 0; j < c; ++j) {
                const double p = std::exp(zi[j] - log_z);
                gi[j] = static_cast<float>(p / n);
            }
            gi[t] -= 1.0f / static_cast<float>(n);
        }
    }
    return static_cast<float>(loss / n);
}

float
BinaryAccuracy(const Tensor& logits, const Tensor& targets)
{
    assert(logits.numel() == targets.numel());
    const int64_t n = logits.numel();
    if (n == 0) return 0.0f;
    int64_t correct = 0;
    for (int64_t i = 0; i < n; ++i) {
        const bool pred = logits.at(i) > 0.0f;  // p > 0.5 <=> logit > 0
        const bool truth = targets.at(i) > 0.5f;
        correct += (pred == truth) ? 1 : 0;
    }
    return static_cast<float>(correct) / static_cast<float>(n);
}

float
Perplexity(float mean_cross_entropy)
{
    return std::exp(mean_cross_entropy);
}

}  // namespace secemb::nn
