#pragma once

/**
 * @file
 * Core neural-network abstractions: trainable parameters and the module
 * interface with explicit forward/backward.
 *
 * This replaces PyTorch's autograd for the subset of models the paper
 * evaluates (MLPs, DLRM, a GPT-2-architecture decoder). Each module caches
 * whatever it needs during Forward and consumes it in Backward.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/tensor.h"

namespace secemb::nn {

/** A trainable tensor with its gradient accumulator. */
struct Parameter
{
    Tensor value;
    Tensor grad;

    explicit Parameter(Tensor v)
        : value(std::move(v)), grad(Tensor::Zeros(value.shape()))
    {
    }

    void ZeroGrad() { grad.Fill(0.0f); }
    int64_t numel() const { return value.numel(); }
};

/**
 * A differentiable layer mapping one tensor to one tensor.
 *
 * Contract: Backward must be called after Forward with a gradient whose
 * shape matches Forward's output; it accumulates into parameter grads and
 * returns the gradient with respect to the input.
 */
class Module
{
  public:
    virtual ~Module() = default;

    virtual Tensor Forward(const Tensor& x) = 0;
    virtual Tensor Backward(const Tensor& grad_out) = 0;

    /** All trainable parameters (possibly empty). */
    virtual std::vector<Parameter*> Parameters() { return {}; }

    virtual std::string_view name() const = 0;

    void
    ZeroGrad()
    {
        for (Parameter* p : Parameters()) p->ZeroGrad();
    }

    int64_t
    NumParams()
    {
        int64_t n = 0;
        for (Parameter* p : Parameters()) n += p->numel();
        return n;
    }

    /** Payload bytes of parameters (grads excluded), for footprint tables. */
    int64_t
    ParamBytes()
    {
        return NumParams() * int64_t{sizeof(float)};
    }
};

}  // namespace secemb::nn
