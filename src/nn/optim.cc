#include "nn/optim.h"

#include <cmath>

namespace secemb::nn {

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum)
{
    if (momentum_ != 0.0f) {
        velocity_.reserve(params_.size());
        for (Parameter* p : params_) {
            velocity_.push_back(Tensor::Zeros(p->value.shape()));
        }
    }
}

void
Sgd::Step()
{
    for (size_t i = 0; i < params_.size(); ++i) {
        Parameter* p = params_[i];
        float* w = p->value.data();
        const float* g = p->grad.data();
        if (momentum_ == 0.0f) {
            for (int64_t j = 0; j < p->numel(); ++j) w[j] -= lr_ * g[j];
        } else {
            float* v = velocity_[i].data();
            for (int64_t j = 0; j < p->numel(); ++j) {
                v[j] = momentum_ * v[j] + g[j];
                w[j] -= lr_ * v[j];
            }
        }
    }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1,
           float beta2, float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (Parameter* p : params_) {
        m_.push_back(Tensor::Zeros(p->value.shape()));
        v_.push_back(Tensor::Zeros(p->value.shape()));
    }
}

void
Adam::Step()
{
    ++t_;
    const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (size_t i = 0; i < params_.size(); ++i) {
        Parameter* p = params_[i];
        float* w = p->value.data();
        const float* g = p->grad.data();
        float* m = m_[i].data();
        float* v = v_[i].data();
        for (int64_t j = 0; j < p->numel(); ++j) {
            m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
            v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
            const float mhat = m[j] / bc1;
            const float vhat = v[j] / bc2;
            w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
        }
    }
}

}  // namespace secemb::nn
