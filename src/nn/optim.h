#pragma once

/**
 * @file
 * Optimisers: SGD with momentum and Adam.
 *
 * The paper trains DLRM variants with SGD and finetunes GPT-2 with Adam;
 * both are provided so the accuracy-parity experiments (Table V, Fig. 14)
 * use the same optimiser family as the original artifact.
 */

#include <cstdint>
#include <vector>

#include "nn/module.h"

namespace secemb::nn {

/** Optimiser interface over a fixed parameter set. */
class Optimizer
{
  public:
    explicit Optimizer(std::vector<Parameter*> params)
        : params_(std::move(params))
    {
    }
    virtual ~Optimizer() = default;

    /** Apply one update from the accumulated gradients. */
    virtual void Step() = 0;

    void
    ZeroGrad()
    {
        for (Parameter* p : params_) p->ZeroGrad();
    }

  protected:
    std::vector<Parameter*> params_;
};

/** Stochastic gradient descent with classical momentum. */
class Sgd : public Optimizer
{
  public:
    Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0f);
    void Step() override;

    void set_lr(float lr) { lr_ = lr; }
    float lr() const { return lr_; }

  private:
    float lr_;
    float momentum_;
    std::vector<Tensor> velocity_;
};

/** Adam (Kingma & Ba) with bias correction. */
class Adam : public Optimizer
{
  public:
    Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
         float beta2 = 0.999f, float eps = 1e-8f);
    void Step() override;

    void set_lr(float lr) { lr_ = lr; }

  private:
    float lr_, beta1_, beta2_, eps_;
    int64_t t_ = 0;
    std::vector<Tensor> m_, v_;
};

}  // namespace secemb::nn
