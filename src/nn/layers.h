#pragma once

/**
 * @file
 * Standard layers: Linear, activations, LayerNorm, Sequential.
 *
 * Control flow in every layer depends only on tensor shapes, never on
 * values — matching the paper's observation (Section V-B) that FC layers
 * and elementwise math are naturally oblivious. ReLU additionally has an
 * explicitly branchless forward (ObliviousReLU) mirroring the paper's
 * AVX-512 proof-of-concept.
 */

#include <memory>
#include <vector>

#include "nn/module.h"
#include "tensor/kernels/kernels.h"
#include "tensor/rng.h"

namespace secemb::nn {

/** Activation fused into a Linear's GEMM epilogue. */
using Activation = kernels::Activation;

/**
 * Fully-connected layer y = act(x W + b); x is (batch x in).
 *
 * The default activation is identity (a plain affine layer). With
 * kRelu/kGelu the activation runs inside the GEMM's fused epilogue —
 * one pass, no separate bias-add or activation sweep — and Backward
 * applies the matching gradient before the weight/input GEMMs (ReLU
 * from the cached output's sign, GELU from the cached pre-activation
 * that the epilogue saves in the same pass).
 */
class Linear : public Module
{
  public:
    /**
     * @param in input features
     * @param out output features
     * @param rng weight init source (Kaiming-uniform-ish)
     * @param nthreads GEMM threads for forward/backward
     * @param act activation fused into the forward epilogue
     */
    Linear(int64_t in, int64_t out, Rng& rng, int nthreads = 1,
           Activation act = Activation::kIdentity);

    Tensor Forward(const Tensor& x) override;
    Tensor Backward(const Tensor& grad_out) override;
    std::vector<Parameter*> Parameters() override { return {&w_, &b_}; }
    std::string_view name() const override { return "Linear"; }

    int64_t in_features() const { return w_.value.size(0); }
    int64_t out_features() const { return w_.value.size(1); }
    Parameter& weight() { return w_; }
    Parameter& bias() { return b_; }
    Activation activation() const { return act_; }
    void set_nthreads(int n) { nthreads_ = n; }

    /**
     * Weight precision for Forward's packed GEMM (f32 / bf16 / int8
     * quantize-on-pack). Defaults to the process-wide ActiveDtype()
     * (SECEMB_PRECISION) at construction. Backward always runs f32:
     * low precision is an inference-path optimisation and gradients
     * keep full fidelity.
     */
    void set_dtype(kernels::Dtype dtype) { dtype_ = dtype; }
    kernels::Dtype dtype() const { return dtype_; }

  private:
    Parameter w_;  ///< (in x out)
    Parameter b_;  ///< (out)
    Tensor cached_x_;
    Tensor cached_y_;       ///< post-activation output (ReLU mask source)
    Tensor cached_preact_;  ///< pre-activation (GELU gradient source)
    int nthreads_;
    Activation act_;
    kernels::Dtype dtype_ = kernels::ActiveDtype();
};

/** Rectified linear unit with branchless (mask-blend) forward. */
class ReLU : public Module
{
  public:
    Tensor Forward(const Tensor& x) override;
    Tensor Backward(const Tensor& grad_out) override;
    std::string_view name() const override { return "ReLU"; }

  private:
    Tensor cached_mask_;
};

/** Logistic sigmoid. */
class Sigmoid : public Module
{
  public:
    Tensor Forward(const Tensor& x) override;
    Tensor Backward(const Tensor& grad_out) override;
    std::string_view name() const override { return "Sigmoid"; }

  private:
    Tensor cached_y_;
};

/** tanh activation. */
class Tanh : public Module
{
  public:
    Tensor Forward(const Tensor& x) override;
    Tensor Backward(const Tensor& grad_out) override;
    std::string_view name() const override { return "Tanh"; }

  private:
    Tensor cached_y_;
};

/** Gaussian error linear unit (tanh approximation, as in GPT-2). */
class Gelu : public Module
{
  public:
    Tensor Forward(const Tensor& x) override;
    Tensor Backward(const Tensor& grad_out) override;
    std::string_view name() const override { return "Gelu"; }

  private:
    Tensor cached_x_;
};

/** Layer normalisation over the last dimension with learned gain/bias. */
class LayerNorm : public Module
{
  public:
    explicit LayerNorm(int64_t dim, float eps = 1e-5f);

    Tensor Forward(const Tensor& x) override;
    Tensor Backward(const Tensor& grad_out) override;
    std::vector<Parameter*> Parameters() override
    {
        return {&gamma_, &beta_};
    }
    std::string_view name() const override { return "LayerNorm"; }

  private:
    Parameter gamma_;
    Parameter beta_;
    float eps_;
    Tensor cached_xhat_;     ///< normalised input
    Tensor cached_inv_std_;  ///< per-row 1/std
};

/** Ordered container of modules applied in sequence. */
class Sequential : public Module
{
  public:
    Sequential() = default;

    void Add(std::unique_ptr<Module> m) { modules_.push_back(std::move(m)); }

    Tensor Forward(const Tensor& x) override;
    Tensor Backward(const Tensor& grad_out) override;
    std::vector<Parameter*> Parameters() override;
    std::string_view name() const override { return "Sequential"; }

    size_t size() const { return modules_.size(); }
    Module& at(size_t i) { return *modules_[i]; }

  private:
    std::vector<std::unique_ptr<Module>> modules_;
};

/**
 * Branchless ReLU over a buffer, the software analogue of the paper's
 * AVX-512 max(0, x): same instructions executed for every element.
 */
void ObliviousReLUInPlace(Tensor& x);

/** Row-wise softmax of a 2-D tensor (forward only; CE loss fuses backward). */
Tensor Softmax2D(const Tensor& logits);

/**
 * Build an MLP: sizes = {in, h1, ..., out}; ReLU fused into each hidden
 * Linear's epilogue, optional sigmoid at the end (DLRM top MLP
 * convention). Parameter order matches the historical Linear+ReLU
 * layout (ReLU carried no parameters), so serialized checkpoints stay
 * compatible.
 */
std::unique_ptr<Sequential> MakeMlp(const std::vector<int64_t>& sizes,
                                    Rng& rng, bool final_sigmoid = false,
                                    int nthreads = 1);

}  // namespace secemb::nn
