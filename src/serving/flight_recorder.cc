#include "serving/flight_recorder.h"

#include <algorithm>
#include <cstdio>

namespace secemb::serving {

namespace {

constexpr size_t kMinCapacity = 16;

size_t
RoundUpPow2(size_t n)
{
    size_t p = kMinCapacity;
    while (p < n) p <<= 1;
    return p;
}

// A FlightEvent packs into four 64-bit words so slots can be arrays of
// relaxed atomics: writers and readers may race on a wrapped slot, and
// word-atomic payloads keep that race benign (and TSan-clean) — the
// stamp check then discards any mixed read.
constexpr size_t kEventWords = 4;

void
Encode(const FlightEvent& e, uint64_t w[kEventWords])
{
    w[0] = e.request_id;
    w[1] = e.t_ns;
    w[2] = static_cast<uint64_t>(e.queue_depth) |
           (static_cast<uint64_t>(e.detail) << 32);
    w[3] = static_cast<uint64_t>(static_cast<uint8_t>(e.hop)) |
           (static_cast<uint64_t>(e.degrade) << 8) |
           (static_cast<uint64_t>(static_cast<uint16_t>(e.feature))
            << 16) |
           (static_cast<uint64_t>(static_cast<uint32_t>(e.code)) << 32);
}

FlightEvent
Decode(const uint64_t w[kEventWords])
{
    FlightEvent e;
    e.request_id = w[0];
    e.t_ns = w[1];
    e.queue_depth = static_cast<uint32_t>(w[2]);
    e.detail = static_cast<uint32_t>(w[2] >> 32);
    e.hop = static_cast<FlightHop>(static_cast<uint8_t>(w[3]));
    e.degrade = static_cast<uint8_t>(w[3] >> 8);
    e.feature =
        static_cast<int16_t>(static_cast<uint16_t>(w[3] >> 16));
    e.code = static_cast<StatusCode>(static_cast<uint32_t>(w[3] >> 32));
    return e;
}

/** Minimal JSON string escaper (names/args are ASCII identifiers, but a
 *  hostile name must still never break the document). */
std::string
EscapeJson(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

const char*
FlightHopName(FlightHop hop)
{
    switch (hop) {
        case FlightHop::kEnqueue: return "enqueue";
        case FlightHop::kShed: return "shed";
        case FlightHop::kRejectedShutdown: return "rejected_shutdown";
        case FlightHop::kInvalidArgument: return "invalid_argument";
        case FlightHop::kAdmissionAllocFail:
            return "admission_alloc_fail";
        case FlightHop::kBatchJoin: return "batch_join";
        case FlightHop::kServeStart: return "serve_start";
        case FlightHop::kRetry: return "retry";
        case FlightHop::kDeadlineExceeded: return "deadline_exceeded";
        case FlightHop::kRespond: return "respond";
        case FlightHop::kProxyEnqueue: return "proxy_enqueue";
        case FlightHop::kProxyCoalesce: return "proxy_coalesce";
        case FlightHop::kProxyAccess: return "proxy_access";
        case FlightHop::kProxyEvict: return "proxy_evict";
        case FlightHop::kStoreFetch: return "store_fetch";
        case FlightHop::kStoreWriteback: return "store_writeback";
        case FlightHop::kStoreCheckpoint: return "store_checkpoint";
        case FlightHop::kStoreRecover: return "store_recover";
    }
    return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
{
    const size_t cap = RoundUpPow2(capacity);
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
}

void
FlightRecorder::Record(const FlightEvent& event) noexcept
{
    const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[seq & mask_];
    // Invalidate, write payload (relaxed word atomics), publish. Readers
    // accept only when the stamp is identical before and after copying.
    slot.stamp.store(0, std::memory_order_release);
    uint64_t w[4];
    Encode(event, w);
    for (size_t i = 0; i < 4; ++i) {
        slot.words[i].store(w[i], std::memory_order_relaxed);
    }
    slot.stamp.store(seq + 1, std::memory_order_release);
}

std::vector<FlightEvent>
FlightRecorder::Snapshot() const
{
    const uint64_t end = next_.load(std::memory_order_acquire);
    const uint64_t cap = mask_ + 1;
    const uint64_t begin = end > cap ? end - cap : 0;
    std::vector<FlightEvent> out;
    out.reserve(static_cast<size_t>(end - begin));
    for (uint64_t seq = begin; seq < end; ++seq) {
        const Slot& slot = slots_[seq & mask_];
        const uint64_t s1 = slot.stamp.load(std::memory_order_acquire);
        if (s1 != seq + 1) continue;  // overwritten or mid-write
        uint64_t w[4];
        for (size_t i = 0; i < 4; ++i) {
            w[i] = slot.words[i].load(std::memory_order_relaxed);
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        const uint64_t s2 = slot.stamp.load(std::memory_order_relaxed);
        if (s1 != s2) continue;  // torn: overwritten while copying
        out.push_back(Decode(w));
    }
    return out;
}

std::vector<FlightEvent>
FlightRecorder::ForRequest(uint64_t request_id) const
{
    std::vector<FlightEvent> all = Snapshot();
    std::vector<FlightEvent> out;
    for (const FlightEvent& e : all) {
        if (e.request_id == request_id) out.push_back(e);
    }
    return out;
}

uint64_t
FlightRecorder::recorded() const
{
    return next_.load(std::memory_order_relaxed);
}

uint64_t
FlightRecorder::dropped() const
{
    const uint64_t total = recorded();
    const uint64_t cap = mask_ + 1;
    return total > cap ? total - cap : 0;
}

std::string
FlightRecorder::ToChromeTraceJson() const
{
    const std::vector<FlightEvent> events = Snapshot();
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const FlightEvent& e : events) {
        char buf[320];
        // One track per request (31-bit fold for the viewer); instant
        // events with thread scope carry the per-hop context as args.
        std::snprintf(
            buf, sizeof(buf),
            "%s\n{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
            "\"tid\":%u,\"ts\":%.3f,\"args\":{\"request_id\":%llu,"
            "\"queue_depth\":%u,\"degrade\":%u,\"feature\":%d,"
            "\"code\":\"%s\",\"detail\":%u}}",
            first ? "" : ",", EscapeJson(FlightHopName(e.hop)).c_str(),
            static_cast<unsigned>(e.request_id & 0x7fffffffu),
            static_cast<double>(e.t_ns) * 1e-3,
            static_cast<unsigned long long>(e.request_id), e.queue_depth,
            e.degrade, e.feature, StatusCodeName(e.code), e.detail);
        out += buf;
        first = false;
    }
    out += "\n]}\n";
    return out;
}

bool
FlightRecorder::WriteChromeTrace(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string doc = ToChromeTraceJson();
    const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    const bool ok = written == doc.size() && std::fclose(f) == 0;
    if (written != doc.size()) std::fclose(f);
    return ok;
}

}  // namespace secemb::serving
