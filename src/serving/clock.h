#pragma once

/**
 * @file
 * Injectable monotonic clock for the serving pipeline. Deadlines and
 * batch-flush timing read through a Clock so tests can skew time
 * deterministically: FaultSkewedClock adds the active FaultPlan's
 * clock_skew_ns to every reading, which is how the chaos suite forces
 * deadline overruns without sleeping.
 */

#include <chrono>
#include <cstdint>

#include "fault/fault.h"

namespace secemb::serving {

class Clock
{
  public:
    virtual ~Clock() = default;
    /** Monotonic nanoseconds; only differences are meaningful. */
    virtual uint64_t NowNs() const = 0;
};

class MonotonicClock : public Clock
{
  public:
    uint64_t
    NowNs() const override
    {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }
};

/** The process-default clock (a MonotonicClock). */
const Clock& DefaultClock();

/**
 * Applies the active FaultPlan's clock skew on top of a base clock; reads
 * the plan at every call so a ScopedFaultInjection installed mid-run takes
 * effect immediately. Negative skew saturates at 0.
 */
class FaultSkewedClock : public Clock
{
  public:
    explicit FaultSkewedClock(const Clock* base = nullptr)
        : base_(base != nullptr ? base : &DefaultClock())
    {
    }

    uint64_t
    NowNs() const override
    {
        const uint64_t now = base_->NowNs();
        fault::FaultPlan* plan = fault::ActivePlan();
        if (plan == nullptr) return now;
        const int64_t skew = plan->clock_skew_ns();
        if (skew >= 0) return now + static_cast<uint64_t>(skew);
        const uint64_t back = static_cast<uint64_t>(-skew);
        return now > back ? now - back : 0;
    }

  private:
    const Clock* base_;
};

inline const Clock&
DefaultClock()
{
    static const MonotonicClock clock;
    return clock;
}

}  // namespace secemb::serving
