#pragma once

/**
 * @file
 * Bounded-queue, deadline-aware batch serving for embedding generation.
 *
 * A Server owns one EmbeddingGenerator per sparse feature (HybridGenerator
 * in the paper's deployment) behind a bounded MPSC queue. Producer threads
 * Submit() requests and get a future; a single batcher thread pops
 * requests, coalesces same-feature lookups into batches (flushing on a
 * batch ceiling or a flush deadline, whichever comes first), runs the
 * generators, and fulfils the futures. Admission control sheds load with
 * typed Status results instead of ever blocking a caller.
 *
 * Graceful degradation is **input-independent by construction**: the
 * degrade controller sees only load and health signals — queue depth at
 * flush time and the count of consecutive faulted batches — never request
 * values. The degraded behaviours likewise touch only public execution
 * shape:
 *
 *   level 0  normal: full batch ceiling, native pooled generation
 *   level 1  ceiling halved (bounds tail latency under pressure)
 *   level 2  ceiling quartered; pooled requests served per-slot
 *            (Generate over the flat index list + local segment-sum,
 *            skipping the native pooled path)
 *
 * Because each underlying generator is oblivious and the per-slot
 * fallback touches the same model state in the same order as the native
 * pooled path, degraded traces stay bit-identical across secret index
 * sets — certified by tests/serving_verify_test.cc through the
 * secemb-verify differential engine, with a planted value-dependent
 * fallback as the negative control.
 *
 * Fault handling: generation attempts that fail with a *transient* fault
 * (std::bad_alloc, fault::InjectedFault — including worker exceptions
 * propagated out of ParallelFor) are retried with capped exponential
 * backoff; non-transient exceptions fail the affected requests
 * immediately with kInternal. When a trace recorder is attached, each
 * attempt records into a scratch recorder that is appended to the sink
 * only on success, so failed partial traces (whose extent depends on
 * scheduling) never pollute the canonical trace.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/embedding_generator.h"
#include "fault/fault.h"
#include "serving/clock.h"
#include "serving/flight_recorder.h"
#include "serving/queue.h"
#include "serving/status.h"
#include "tensor/tensor.h"

namespace secemb::serving {

struct ServerConfig
{
    size_t queue_capacity = 64;
    int max_batch = 16;
    /// How long the batcher waits for more requests after the first one.
    uint64_t flush_deadline_us = 200;
    /// Deadline assigned to requests that carry none (0 = no deadline).
    uint64_t default_deadline_us = 100000;
    /// Transient-fault retries per generation attempt.
    int max_retries = 2;
    uint64_t retry_backoff_us = 50;
    uint64_t retry_backoff_cap_us = 800;
    /// Queue depth (at flush time) that escalates the degrade level;
    /// 0 = 3/4 of queue_capacity.
    size_t degrade_high_watermark = 0;
    /// Queue depth at/below which recovery credit accrues; 0 = 1/4 of
    /// queue_capacity.
    size_t degrade_low_watermark = 0;
    /// Consecutive faulted batches that escalate the degrade level.
    int fault_streak_escalate = 2;
    /// Calm (low-depth, fault-free) batches before stepping back down.
    int recover_after_batches = 4;
    /// Floor for the degrade level (tests pin degraded behaviour with 2).
    int min_degrade_level = 0;
    /// Worker threads handed to each generator.
    int nthreads = 1;
    /// GEMM weight precision applied to every generator at construction
    /// (compute-based generators quantize their decoder weights on the
    /// next pack; table generators ignore it). Defaults to the
    /// process-wide kernels::ActiveDtype() (SECEMB_PRECISION).
    kernels::Dtype precision = kernels::ActiveDtype();
    /// Time source; nullptr = DefaultClock(). Point at a FaultSkewedClock
    /// to let a FaultPlan skew batcher time.
    const Clock* clock = nullptr;
    /// Flight-recorder ring capacity (events, rounded up to a power of
    /// two). 0 disables per-request lifecycle recording entirely.
    size_t flight_recorder_capacity = 2048;
    /// Call SyncStorage() on every generator during Shutdown so
    /// out-of-core tables flush dirty pages durably before the process
    /// exits. Failures are counted (ServerStats::storage_sync_failures)
    /// and recorded as store_writeback flight hops with the error code.
    bool sync_storage_on_shutdown = true;
    /// Periodic SyncStorage() across all generators, driven off the
    /// batcher thread between batches (generators are quiescent there).
    /// 0 disables. The schedule is clock-driven and public — it never
    /// depends on request values, so periodic flushes are trace-safe.
    uint64_t storage_sync_interval_us = 0;
    /// Periodic CheckpointStorage() across all generators (durable RAW
    /// ORAM seals a checkpoint + resets its journal; others sync or
    /// no-op). 0 disables. Failures are counted
    /// (ServerStats::storage_checkpoint_failures) and recorded as
    /// store_checkpoint flight hops; the server keeps serving.
    uint64_t storage_checkpoint_interval_us = 0;
};

struct Request
{
    int feature = 0;
    /// Secret ids. For pooled requests this is the flat concatenation of
    /// all bags.
    std::vector<int64_t> indices;
    /// Empty = single-hot (one row per index). Otherwise bag boundaries
    /// into `indices` (size = bags + 1, starting 0, ending indices.size());
    /// the response holds one sum-pooled row per bag. Bag lengths are
    /// public in the threat model.
    std::vector<int64_t> pooled_offsets;
    /// Absolute deadline in Clock ns; 0 = ServerConfig default.
    uint64_t deadline_ns = 0;
};

struct Response
{
    Status status;
    /// (rows x dim) on kOk — one row per index, or per bag when pooled.
    Tensor embeddings;
    /// Process-unique id assigned at Submit; the key into the flight
    /// recorder (FlightRecorder::ForRequest) for post-hoc diagnosis.
    uint64_t request_id = 0;
    uint64_t e2e_ns = 0;      ///< submit-to-fulfil latency
    int retries = 0;          ///< transient-fault retries spent
    int degrade_level = 0;    ///< level the batch was served at
};

/** Snapshot of the server's counters (all monotonic except degrade_level
 *  and queue_depth). */
struct ServerStats
{
    uint64_t submitted = 0;
    uint64_t accepted = 0;
    uint64_t shed = 0;
    uint64_t rejected_shutdown = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t deadline_exceeded = 0;
    uint64_t retries = 0;
    uint64_t batches = 0;
    uint64_t degraded_batches = 0;
    /// Generators whose SyncStorage() failed (shutdown or periodic).
    uint64_t storage_sync_failures = 0;
    /// Completed periodic SyncStorage sweeps (all features).
    uint64_t storage_syncs = 0;
    /// Completed periodic CheckpointStorage sweeps (all features).
    uint64_t storage_checkpoints = 0;
    /// Generators whose periodic CheckpointStorage() failed.
    uint64_t storage_checkpoint_failures = 0;
    int degrade_level = 0;
    size_t queue_depth = 0;
    /// Flight-recorder occupancy: total lifecycle events recorded and
    /// how many were overwritten by ring wrap (0/0 when disabled).
    uint64_t flight_recorded = 0;
    uint64_t flight_dropped = 0;
};

class Server
{
  public:
    /**
     * @param features one generator per sparse feature (index = feature
     *        id); shared so the caller can keep using them elsewhere
     * @param config   queue/batch/degradation parameters
     *
     * The batcher thread starts immediately.
     */
    Server(std::vector<std::shared_ptr<core::EmbeddingGenerator>> features,
           ServerConfig config);

    /** Shuts down (draining admitted requests) if not already done. */
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Admit a request. Never blocks: on shed/shutdown/allocation failure
     * the returned future is already fulfilled with the typed Status.
     */
    std::future<Response> Submit(Request req);

    /** Submit and block for the response. */
    Response SubmitAndWait(Request req);

    /**
     * Stop admitting, drain everything already admitted, join the batcher.
     * Idempotent and safe to call concurrently.
     */
    void Shutdown();

    ServerStats GetStats() const;
    int degrade_level() const;
    size_t queue_depth() const { return queue_.size(); }

    /**
     * The per-request flight recorder, or nullptr when disabled
     * (flight_recorder_capacity = 0). Query ForRequest(id) with a
     * Response's request_id to reconstruct its path through the server;
     * WriteChromeTrace dumps the retained window.
     */
    const FlightRecorder* flight_recorder() const { return flight_.get(); }

    /**
     * Attach a per-feature canonical-trace sink (verify harness hook).
     * Only successful generation attempts append to it; set before
     * submitting traffic.
     */
    void set_recorder(int feature, sidechannel::TraceRecorder* recorder);

  private:
    struct Pending
    {
        Request req;
        std::promise<Response> promise;
        uint64_t id = 0;           ///< process-unique request id
        uint64_t enqueue_ns = 0;
        uint64_t deadline_ns = 0;  ///< 0 = none
    };

    void BatcherLoop();
    void ServeBatch(std::vector<Pending>& batch);
    /** Serve one same-feature group (`pooled` selects the pooled path);
     *  returns true if any generation attempt faulted. */
    bool ServeGroupReturningFault(int feature, bool pooled,
                                  std::vector<Pending*>& group,
                                  int degrade);
    /** Run one generation call with retry/backoff and trace-safe
     *  recording; returns the final status and retry count. */
    Status GenerateWithRetry(int feature,
                             const std::function<void()>& call,
                             int* retries_out);
    void Respond(Pending& p, Status status, Tensor embeddings, int retries,
                 int degrade);
    /** Append one lifecycle event for request `id` (no-op when the
     *  recorder is disabled). Payloads are public-only by contract. */
    void RecordHop(uint64_t id, FlightHop hop, StatusCode code,
                   int feature, int degrade, uint32_t detail);
    void UpdateDegrade(bool batch_had_faults);
    /** Run any due periodic storage sync/checkpoint sweeps. Batcher
     *  thread only — generators must be quiescent. */
    void MaybeRunStorageMaintenance();
    int BatchCeiling(int degrade) const;
    uint64_t NowNs() const { return clock_->NowNs(); }

    Status Validate(const Request& req) const;

    std::vector<std::shared_ptr<core::EmbeddingGenerator>> features_;
    ServerConfig config_;
    const Clock* clock_;

    BoundedQueue<Pending, fault::FaultAllocator<Pending>> queue_;
    std::unique_ptr<FlightRecorder> flight_;  ///< nullptr = disabled
    std::atomic<uint64_t> next_request_id_{1};
    std::thread batcher_;
    std::once_flag shutdown_once_;

    std::vector<std::atomic<sidechannel::TraceRecorder*>> sinks_;

    // Degrade state: written by the batcher thread only.
    std::atomic<int> degrade_level_;
    int fault_streak_ = 0;
    int calm_batches_ = 0;

    // Storage-maintenance due times (batcher thread only; 0 = disabled).
    uint64_t next_storage_sync_ns_ = 0;
    uint64_t next_storage_ckpt_ns_ = 0;

    // Counters (relaxed atomics; exact totals once quiesced).
    mutable std::atomic<uint64_t> submitted_{0};
    mutable std::atomic<uint64_t> accepted_{0};
    mutable std::atomic<uint64_t> shed_{0};
    mutable std::atomic<uint64_t> rejected_shutdown_{0};
    mutable std::atomic<uint64_t> completed_{0};
    mutable std::atomic<uint64_t> failed_{0};
    mutable std::atomic<uint64_t> deadline_exceeded_{0};
    mutable std::atomic<uint64_t> retries_{0};
    mutable std::atomic<uint64_t> batches_{0};
    mutable std::atomic<uint64_t> degraded_batches_{0};
    mutable std::atomic<uint64_t> storage_sync_failures_{0};
    mutable std::atomic<uint64_t> storage_syncs_{0};
    mutable std::atomic<uint64_t> storage_checkpoints_{0};
    mutable std::atomic<uint64_t> storage_checkpoint_failures_{0};
};

}  // namespace secemb::serving
