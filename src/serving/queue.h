#pragma once

/**
 * @file
 * Bounded MPSC request queue for the serving pipeline.
 *
 * Producers (caller threads) never block: TryPush returns a typed
 * StatusCode immediately — kShed when the queue is at capacity (admission
 * control / load shedding), kShutdown once Shutdown() has been called, and
 * kResourceExhausted when the underlying allocation fails (which the fault
 * framework can force via FaultAllocator). The single consumer (the
 * batcher) blocks with a timeout in PopWait.
 *
 * Shutdown semantics: producers are rejected from the moment Shutdown()
 * returns, but the consumer keeps draining whatever was admitted —
 * PopWait returns kDrained only once the queue is both shut down and
 * empty, so no admitted request is ever dropped on the floor.
 */

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "serving/status.h"

namespace secemb::serving {

template <typename T, typename Alloc = std::allocator<T>>
class BoundedQueue
{
  public:
    enum class PopResult
    {
        kItem,     ///< *out holds a dequeued item
        kTimeout,  ///< nothing arrived within the timeout
        kDrained,  ///< shut down and empty; no item will ever arrive
    };

    explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

    /**
     * Non-blocking admission. `item` is moved from only on kOk; on any
     * rejection the caller still owns it (and its promise, if any).
     */
    StatusCode
    TryPush(T&& item)
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (shutdown_) return StatusCode::kShutdown;
        if (items_.size() >= capacity_) return StatusCode::kShed;
        try {
            items_.push_back(std::move(item));
        } catch (const std::bad_alloc&) {
            return StatusCode::kResourceExhausted;
        }
        cv_.notify_one();
        return StatusCode::kOk;
    }

    /** Blocking dequeue with timeout; drains queued items past shutdown. */
    PopResult
    PopWait(T* out, uint64_t timeout_ns)
    {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait_for(lk, std::chrono::nanoseconds(timeout_ns),
                     [this] { return !items_.empty() || shutdown_; });
        if (!items_.empty()) {
            *out = std::move(items_.front());
            items_.pop_front();
            return PopResult::kItem;
        }
        return shutdown_ ? PopResult::kDrained : PopResult::kTimeout;
    }

    /** Reject producers from now on; wakes the consumer to drain. */
    void
    Shutdown()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            shutdown_ = true;
        }
        cv_.notify_all();
    }

    bool
    shutdown() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return shutdown_;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return items_.size();
    }

    size_t capacity() const { return capacity_; }

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<T, Alloc> items_;
    const size_t capacity_;
    bool shutdown_ = false;
};

}  // namespace secemb::serving
