#pragma once

/**
 * @file
 * Typed results for the serving pipeline. Every admission or serving
 * failure is reported as a Status with a machine-checkable code — callers
 * are never blocked indefinitely and never see an untyped exception from
 * Submit(); chaos tests assert on these codes per fault class.
 */

#include <string>

namespace secemb::serving {

enum class StatusCode : int
{
    kOk = 0,
    /// Admission control rejected the request: the bounded queue is full.
    kShed,
    /// The server is shutting down (or already shut down); in-flight
    /// requests still drain, new ones get this.
    kShutdown,
    /// The request's deadline expired before generation started.
    kDeadlineExceeded,
    /// Allocation failure persisted through every retry.
    kResourceExhausted,
    /// Malformed request (unknown feature, empty batch, bad offsets,
    /// out-of-range index).
    kInvalidArgument,
    /// A non-transient error, or transient faults persisted through every
    /// retry.
    kInternal,
};

inline const char*
StatusCodeName(StatusCode code)
{
    switch (code) {
        case StatusCode::kOk: return "OK";
        case StatusCode::kShed: return "SHED";
        case StatusCode::kShutdown: return "SHUTDOWN";
        case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
        case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
        case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
        case StatusCode::kInternal: return "INTERNAL";
    }
    return "UNKNOWN";
}

struct Status
{
    StatusCode code = StatusCode::kOk;
    std::string message;

    bool ok() const { return code == StatusCode::kOk; }

    static Status Ok() { return {}; }

    static Status
    Error(StatusCode code, std::string message)
    {
        return {code, std::move(message)};
    }

    std::string
    ToString() const
    {
        std::string s = StatusCodeName(code);
        if (!message.empty()) {
            s += ": ";
            s += message;
        }
        return s;
    }
};

}  // namespace secemb::serving
