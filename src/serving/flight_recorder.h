#pragma once

/**
 * @file
 * Per-request flight recorder for the serving pipeline.
 *
 * Every request admitted to (or rejected by) a Server carries a process-
 * unique request id, and each lifecycle hop — enqueue, shed, batch join,
 * serve start, retry, deadline miss, respond — appends one fixed-size
 * FlightEvent to a lock-free ring. After a shed storm or a p99 outlier,
 * the ring answers "what happened to request N?" without any logging on
 * the hot path: ForRequest() reconstructs the request's path with the
 * queue depth and degrade level it saw at every hop, and WriteChromeTrace
 * dumps the whole window for chrome://tracing.
 *
 * Concurrency: Record() is wait-free for writers (one fetch_add claiming
 * a slot, plain stores, one release store publishing it). Readers run
 * concurrently and validate each slot's stamp before and after copying,
 * discarding entries that were being overwritten mid-copy. An entry can
 * be misread only if the ring wraps a full capacity during one half-
 * finished write — capacity choices make that astronomically unlikely,
 * and a torn read at worst drops a diagnostic event, never corrupts the
 * server.
 *
 * Observability rule: events are recorded at public control-flow points
 * with public payloads (ids, depths, status codes) — never index values —
 * so the recorder follows the same obliviousness-preserving contract as
 * the telemetry subsystem (DESIGN.md "Observability").
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serving/status.h"

namespace secemb::serving {

/** Lifecycle points a request passes through. */
enum class FlightHop : uint8_t
{
    kEnqueue = 0,        ///< Submit() accepted into the queue
    kShed,               ///< admission control rejected (queue full)
    kRejectedShutdown,   ///< rejected: server shutting down
    kInvalidArgument,    ///< rejected: request failed validation
    kAdmissionAllocFail, ///< rejected: allocation failure at admission
    kBatchJoin,          ///< popped by the batcher into a batch
    kServeStart,         ///< its same-feature group starts generation
    kRetry,              ///< generation needed transient-fault retries
    kDeadlineExceeded,   ///< dropped at serve time: deadline passed
    kRespond,            ///< response published (ok or error)
    // ORAM proxy hops (src/oram/proxy): detail carries the window slot.
    kProxyEnqueue,       ///< logical read accepted into the proxy queue
    kProxyCoalesce,      ///< joined an in-window duplicate's access
    kProxyAccess,        ///< one physical (real or dummy) ORAM access
    kProxyEvict,         ///< deferred eviction work drained
    // Out-of-core store hops (src/store): detail carries the page index
    // (a public value: the paged schedules are certified input-independent).
    kStoreFetch,         ///< page cache miss fetched from the backing store
    kStoreWriteback,     ///< dirty page written back to the backing store
    kStoreCheckpoint,    ///< durable checkpoint sealed (detail: KiB written)
    kStoreRecover,       ///< recovery replay finished (detail: records)
};

/** Stable name for JSON / debugging ("enqueue", "shed", ...). */
const char* FlightHopName(FlightHop hop);

/** One recorded lifecycle event (fixed-size, trivially copyable). */
struct FlightEvent
{
    uint64_t request_id = 0;
    uint64_t t_ns = 0;        ///< server Clock timestamp
    uint32_t queue_depth = 0; ///< depth observed at the hop
    uint32_t detail = 0;      ///< hop-specific: batch size, retries, ...
    StatusCode code = StatusCode::kOk;  ///< respond/reject hops
    int16_t feature = -1;     ///< feature id where known
    FlightHop hop = FlightHop::kEnqueue;
    uint8_t degrade = 0;      ///< degrade level at the hop
};

class FlightRecorder
{
  public:
    /** @param capacity ring size; rounded up to a power of two, >= 16. */
    explicit FlightRecorder(size_t capacity);

    /** Append one event. Wait-free; overwrites the oldest entry when
     *  full. Safe from any thread. */
    void Record(const FlightEvent& event) noexcept;

    /**
     * Copy of the currently retained window, oldest-first (stable order:
     * claim sequence). Entries caught mid-overwrite are skipped.
     */
    std::vector<FlightEvent> Snapshot() const;

    /** The retained events of one request, in lifecycle order. */
    std::vector<FlightEvent> ForRequest(uint64_t request_id) const;

    /** Total Record() calls since construction. */
    uint64_t recorded() const;

    /** Events overwritten because the ring wrapped. */
    uint64_t dropped() const;

    size_t capacity() const { return mask_ + 1; }

    /**
     * Serialise the retained window as a chrome://tracing document:
     * one instant event per hop, one track (tid) per request (ids are
     * folded into 31 bits for the viewer), args carrying queue depth,
     * degrade level, status code, and detail.
     */
    std::string ToChromeTraceJson() const;

    /** Write ToChromeTraceJson() to `path`; false on IO failure. */
    bool WriteChromeTrace(const std::string& path) const;

  private:
    struct Slot
    {
        /** 0 = never written / mid-write; claim_seq + 1 once published. */
        std::atomic<uint64_t> stamp{0};
        /** FlightEvent packed into word-atomics so a reader racing a
         *  wrap-around writer stays benign (and TSan-clean); the stamp
         *  check discards mixed reads. */
        std::atomic<uint64_t> words[4]{};
    };

    std::unique_ptr<Slot[]> slots_;
    size_t mask_;
    std::atomic<uint64_t> next_{0};
};

}  // namespace secemb::serving
