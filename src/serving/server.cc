#include "serving/server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>

#include "perfmon/perfmon.h"
#include "store/backing_store.h"
#include "telemetry/telemetry.h"

namespace secemb::serving {

namespace {

/// Highest degrade level (see the header's level table).
constexpr int kMaxDegradeLevel = 2;

/// Batcher idle poll period while the queue is empty.
constexpr uint64_t kIdleWaitNs = 2'000'000;

}  // namespace

Server::Server(
    std::vector<std::shared_ptr<core::EmbeddingGenerator>> features,
    ServerConfig config)
    : features_(std::move(features)),
      config_(config),
      clock_(config.clock != nullptr ? config.clock : &DefaultClock()),
      queue_(config.queue_capacity == 0 ? 1 : config.queue_capacity),
      sinks_(features_.size()),
      degrade_level_(std::clamp(config.min_degrade_level, 0,
                                kMaxDegradeLevel))
{
    if (config_.max_batch < 1) config_.max_batch = 1;
    if (config_.flight_recorder_capacity > 0) {
        flight_ = std::make_unique<FlightRecorder>(
            config_.flight_recorder_capacity);
    }
    for (auto& sink : sinks_) {
        sink.store(nullptr, std::memory_order_relaxed);
    }
    for (auto& f : features_) {
        if (f != nullptr) f->set_precision(config_.precision);
    }
    batcher_ = std::thread([this] { BatcherLoop(); });
}

Server::~Server() { Shutdown(); }

void
Server::Shutdown()
{
    std::call_once(shutdown_once_, [this] {
        queue_.Shutdown();
        if (batcher_.joinable()) batcher_.join();
        if (config_.sync_storage_on_shutdown) {
            // Batcher is joined: generators are quiescent, so the flush
            // races nothing. In-RAM generators return Ok trivially.
            for (size_t f = 0; f < features_.size(); ++f) {
                const Status s = features_[f]->SyncStorage();
                if (!s.ok()) {
                    storage_sync_failures_.fetch_add(
                        1, std::memory_order_relaxed);
                    TELEMETRY_COUNT("serving.storage_sync_failures", 1);
                    RecordHop(0, FlightHop::kStoreWriteback, s.code,
                              static_cast<int>(f), degrade_level(), 0);
                }
            }
        }
    });
}

Status
Server::Validate(const Request& req) const
{
    if (req.feature < 0 ||
        req.feature >= static_cast<int>(features_.size())) {
        return Status::Error(StatusCode::kInvalidArgument,
                             "unknown feature id " +
                                 std::to_string(req.feature));
    }
    if (req.indices.empty()) {
        return Status::Error(StatusCode::kInvalidArgument,
                             "empty index batch");
    }
    // Range check: accumulate over the whole batch, branch once at the
    // end — the scan touches the request buffer identically whatever the
    // values, and validity bounds are public (num_rows).
    const int64_t rows = features_[req.feature]->num_rows();
    bool out_of_range = false;
    for (const int64_t idx : req.indices) {
        out_of_range |= (idx < 0 || idx >= rows);
    }
    if (out_of_range) {
        return Status::Error(StatusCode::kInvalidArgument,
                             "index out of range for feature " +
                                 std::to_string(req.feature));
    }
    if (!req.pooled_offsets.empty()) {
        const auto& po = req.pooled_offsets;
        if (po.size() < 2 || po.front() != 0 ||
            po.back() != static_cast<int64_t>(req.indices.size())) {
            return Status::Error(StatusCode::kInvalidArgument,
                                 "pooled offsets must start at 0 and end "
                                 "at indices.size()");
        }
        for (size_t i = 1; i < po.size(); ++i) {
            if (po[i] < po[i - 1]) {
                return Status::Error(StatusCode::kInvalidArgument,
                                     "pooled offsets not monotonic");
            }
        }
    }
    return Status::Ok();
}

std::future<Response>
Server::Submit(Request req)
{
    Pending p;
    p.req = std::move(req);
    p.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    std::future<Response> fut = p.promise.get_future();

    submitted_.fetch_add(1, std::memory_order_relaxed);
    TELEMETRY_COUNT("serving.submitted", 1);

    const uint64_t now = NowNs();
    p.enqueue_ns = now;
    p.deadline_ns = p.req.deadline_ns != 0
                        ? p.req.deadline_ns
                        : (config_.default_deadline_us != 0
                               ? now + config_.default_deadline_us * 1000
                               : 0);

    const int degrade = degrade_level_.load(std::memory_order_relaxed);
    if (Status v = Validate(p.req); !v.ok()) {
        RecordHop(p.id, FlightHop::kInvalidArgument, v.code,
                  p.req.feature, degrade, 0);
        Respond(p, std::move(v), Tensor(), 0, degrade);
        return fut;
    }

    // The admission decision is recorded before fulfilling the promise so
    // a client woken by the future finds its full flight already written.
    const uint64_t id = p.id;
    const int feature = p.req.feature;

    // TryPush moves `p` only on kOk; on every rejection we still own it
    // (and its promise) and fulfil the typed status immediately.
    switch (queue_.TryPush(std::move(p))) {
        case StatusCode::kOk:
            accepted_.fetch_add(1, std::memory_order_relaxed);
            TELEMETRY_COUNT("serving.accepted", 1);
            TELEMETRY_GAUGE_SET("serving.queue_depth", queue_.size());
            RecordHop(id, FlightHop::kEnqueue, StatusCode::kOk, feature,
                      degrade, 0);
            break;
        case StatusCode::kShed:
            shed_.fetch_add(1, std::memory_order_relaxed);
            TELEMETRY_COUNT("serving.shed", 1);
            RecordHop(id, FlightHop::kShed, StatusCode::kShed, feature,
                      degrade, 0);
            Respond(p,
                    Status::Error(StatusCode::kShed,
                                  "queue full (admission control)"),
                    Tensor(), 0, degrade);
            break;
        case StatusCode::kShutdown:
            rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
            TELEMETRY_COUNT("serving.rejected_shutdown", 1);
            RecordHop(id, FlightHop::kRejectedShutdown,
                      StatusCode::kShutdown, feature, degrade, 0);
            Respond(p,
                    Status::Error(StatusCode::kShutdown,
                                  "server is shutting down"),
                    Tensor(), 0, degrade);
            break;
        default:
            TELEMETRY_COUNT("serving.admission_alloc_failure", 1);
            RecordHop(id, FlightHop::kAdmissionAllocFail,
                      StatusCode::kResourceExhausted, feature, degrade, 0);
            Respond(p,
                    Status::Error(StatusCode::kResourceExhausted,
                                  "allocation failed during admission"),
                    Tensor(), 0, degrade);
            break;
    }
    return fut;
}

Response
Server::SubmitAndWait(Request req)
{
    return Submit(std::move(req)).get();
}

void
Server::set_recorder(int feature, sidechannel::TraceRecorder* recorder)
{
    sinks_.at(static_cast<size_t>(feature))
        .store(recorder, std::memory_order_release);
}

int
Server::degrade_level() const
{
    return degrade_level_.load(std::memory_order_relaxed);
}

int
Server::BatchCeiling(int degrade) const
{
    return std::max(1, config_.max_batch >> degrade);
}

void
Server::BatcherLoop()
{
    using PopResult =
        BoundedQueue<Pending, fault::FaultAllocator<Pending>>::PopResult;
    if (config_.storage_sync_interval_us > 0) {
        next_storage_sync_ns_ =
            NowNs() + config_.storage_sync_interval_us * 1000;
    }
    if (config_.storage_checkpoint_interval_us > 0) {
        next_storage_ckpt_ns_ =
            NowNs() + config_.storage_checkpoint_interval_us * 1000;
    }
    std::vector<Pending> batch;
    for (;;) {
        Pending first;
        const PopResult r = queue_.PopWait(&first, kIdleWaitNs);
        if (r == PopResult::kDrained) break;
        if (r == PopResult::kTimeout) {
            MaybeRunStorageMaintenance();
            continue;
        }

        batch.clear();
        batch.push_back(std::move(first));
        const int ceiling =
            BatchCeiling(degrade_level_.load(std::memory_order_relaxed));
        const uint64_t flush_ns = config_.flush_deadline_us * 1000;
        const uint64_t flush_at = NowNs() + flush_ns;
        while (static_cast<int>(batch.size()) < ceiling) {
            const uint64_t now = NowNs();
            if (now >= flush_at) break;
            // Clamp in case an injected clock skew moves time backwards.
            const uint64_t wait = std::min(flush_at - now, flush_ns);
            Pending next;
            if (queue_.PopWait(&next, wait) != PopResult::kItem) break;
            batch.push_back(std::move(next));
        }
        const size_t depth = queue_.size();
        TELEMETRY_GAUGE_SET("serving.queue_depth", depth);
        // Sampled depth time-series: one observation per batch flush, so
        // the histogram answers "how deep did the queue run?" (p50/p99)
        // rather than only "how deep is it right now".
        TELEMETRY_HIST("serving.queue_depth.sample",
                       static_cast<int64_t>(depth));
        const int degrade =
            degrade_level_.load(std::memory_order_relaxed);
        for (const Pending& p : batch) {
            RecordHop(p.id, FlightHop::kBatchJoin, StatusCode::kOk,
                      p.req.feature, degrade,
                      static_cast<uint32_t>(batch.size()));
        }
        ServeBatch(batch);
        // Between batches the generators are quiescent (this thread is
        // their only caller), so durable maintenance races nothing.
        MaybeRunStorageMaintenance();
    }
}

void
Server::MaybeRunStorageMaintenance()
{
    // Clock-driven public schedule: the decision reads only the time
    // source, never request values, so the extra store IO it causes is
    // independent of any secret and stays off the canonical trace (only
    // generation attempts record into the verify sinks).
    const uint64_t now = NowNs();
    if (next_storage_sync_ns_ != 0 && now >= next_storage_sync_ns_) {
        for (size_t f = 0; f < features_.size(); ++f) {
            const Status s = features_[f]->SyncStorage();
            if (!s.ok()) {
                storage_sync_failures_.fetch_add(1,
                                                 std::memory_order_relaxed);
                TELEMETRY_COUNT("serving.storage_sync_failures", 1);
                RecordHop(0, FlightHop::kStoreWriteback, s.code,
                          static_cast<int>(f), degrade_level(), 0);
            }
        }
        storage_syncs_.fetch_add(1, std::memory_order_relaxed);
        TELEMETRY_COUNT("serving.storage_syncs", 1);
        next_storage_sync_ns_ =
            now + config_.storage_sync_interval_us * 1000;
    }
    if (next_storage_ckpt_ns_ != 0 && now >= next_storage_ckpt_ns_) {
        for (size_t f = 0; f < features_.size(); ++f) {
            const Status s = features_[f]->CheckpointStorage();
            if (!s.ok()) {
                storage_checkpoint_failures_.fetch_add(
                    1, std::memory_order_relaxed);
                TELEMETRY_COUNT("serving.storage_checkpoint_failures", 1);
                RecordHop(0, FlightHop::kStoreCheckpoint, s.code,
                          static_cast<int>(f), degrade_level(), 0);
            }
        }
        storage_checkpoints_.fetch_add(1, std::memory_order_relaxed);
        TELEMETRY_COUNT("serving.storage_checkpoints", 1);
        next_storage_ckpt_ns_ =
            now + config_.storage_checkpoint_interval_us * 1000;
    }
}

void
Server::ServeBatch(std::vector<Pending>& batch)
{
    TELEMETRY_SCOPED_COUNTERS("serving.batch");
    const int degrade = degrade_level_.load(std::memory_order_relaxed);
    const uint64_t start = NowNs();

    // Deadline check before any model-state access: the decision reads
    // the clock and per-request deadlines only, never index values.
    std::vector<Pending*> live;
    live.reserve(batch.size());
    for (Pending& p : batch) {
        if (p.deadline_ns != 0 && start > p.deadline_ns) {
            deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
            TELEMETRY_COUNT("serving.deadline_exceeded", 1);
            RecordHop(p.id, FlightHop::kDeadlineExceeded,
                      StatusCode::kDeadlineExceeded, p.req.feature,
                      degrade, 0);
            Respond(p,
                    Status::Error(StatusCode::kDeadlineExceeded,
                                  "deadline expired before serving"),
                    Tensor(), 0, degrade);
        } else {
            live.push_back(&p);
        }
    }

    bool had_faults = false;
    for (int f = 0; f < static_cast<int>(features_.size()); ++f) {
        for (const bool pooled : {false, true}) {
            std::vector<Pending*> group;
            for (Pending* p : live) {
                if (p->req.feature == f &&
                    pooled == !p->req.pooled_offsets.empty()) {
                    group.push_back(p);
                }
            }
            if (!group.empty()) {
                had_faults |= ServeGroupReturningFault(f, pooled, group,
                                                       degrade);
            }
        }
    }

    batches_.fetch_add(1, std::memory_order_relaxed);
    if (degrade > 0) {
        degraded_batches_.fetch_add(1, std::memory_order_relaxed);
        TELEMETRY_COUNT("serving.degraded_batches", 1);
    }
    TELEMETRY_COUNT("serving.batches", 1);
    TELEMETRY_HIST("serving.batch_size",
                   static_cast<int64_t>(batch.size()));
    TELEMETRY_HIST("serving.batch.ns", NowNs() - start);
    UpdateDegrade(had_faults);
}

bool
Server::ServeGroupReturningFault(int feature, bool pooled,
                                 std::vector<Pending*>& group, int degrade)
{
    core::EmbeddingGenerator& gen = *features_[feature];
    gen.set_nthreads(config_.nthreads);
    const int64_t dim = gen.dim();

    // Coalesce the group into one generator call: flat index list, bag
    // offsets rebuilt against it when pooled, and each request's row span
    // in the group output.
    std::vector<int64_t> indices;
    std::vector<int64_t> offsets;
    struct RowSpan
    {
        int64_t begin;
        int64_t rows;
    };
    std::vector<RowSpan> spans;
    spans.reserve(group.size());
    size_t total = 0;
    for (const Pending* p : group) total += p->req.indices.size();
    indices.reserve(total);
    if (pooled) offsets.push_back(0);
    int64_t row_cursor = 0;
    for (const Pending* p : group) {
        int64_t rows;
        if (pooled) {
            const auto& po = p->req.pooled_offsets;
            const int64_t base = static_cast<int64_t>(indices.size());
            for (size_t b = 1; b < po.size(); ++b) {
                offsets.push_back(base + po[b]);
            }
            rows = static_cast<int64_t>(po.size()) - 1;
        } else {
            rows = static_cast<int64_t>(p->req.indices.size());
        }
        spans.push_back({row_cursor, rows});
        row_cursor += rows;
        indices.insert(indices.end(), p->req.indices.begin(),
                       p->req.indices.end());
    }

    Tensor out;
    std::function<void()> call;
    if (!pooled) {
        out = Tensor({static_cast<int64_t>(indices.size()), dim});
        call = [&] { gen.Generate(indices, out); };
    } else if (degrade >= kMaxDegradeLevel) {
        // Degraded pooled path: generate every id per-slot, then sum the
        // bags locally. The generator touches the same model state in the
        // same order as the native pooled path (one oblivious lookup per
        // id), so the recorded trace is unchanged — only the (public)
        // pooling arithmetic moves into the server.
        call = [&] {
            Tensor flat({static_cast<int64_t>(indices.size()), dim});
            gen.Generate(indices, flat);
            out = Tensor(
                {static_cast<int64_t>(offsets.size()) - 1, dim});
            for (size_t b = 0; b + 1 < offsets.size(); ++b) {
                float* dst = out.data() + static_cast<int64_t>(b) * dim;
                for (int64_t i = offsets[b]; i < offsets[b + 1]; ++i) {
                    const float* src = flat.data() + i * dim;
                    for (int64_t d = 0; d < dim; ++d) dst[d] += src[d];
                }
            }
        };
    } else {
        out = Tensor({static_cast<int64_t>(offsets.size()) - 1, dim});
        call = [&] { gen.GeneratePooled(indices, offsets, out); };
    }

    for (const Pending* p : group) {
        RecordHop(p->id, FlightHop::kServeStart, StatusCode::kOk, feature,
                  degrade, static_cast<uint32_t>(group.size()));
    }
    int retries = 0;
    Status st = GenerateWithRetry(feature, call, &retries);
    const bool had_fault = retries > 0 || !st.ok();
    if (retries > 0) {
        for (const Pending* p : group) {
            RecordHop(p->id, FlightHop::kRetry, st.code, feature, degrade,
                      static_cast<uint32_t>(retries));
        }
    }
    if (!st.ok()) {
        for (Pending* p : group) {
            Respond(*p, st, Tensor(), retries, degrade);
        }
        return had_fault;
    }
    for (size_t i = 0; i < group.size(); ++i) {
        Tensor emb({spans[i].rows, dim});
        std::memcpy(emb.data(), out.data() + spans[i].begin * dim,
                    static_cast<size_t>(spans[i].rows * dim) *
                        sizeof(float));
        Respond(*group[i], Status::Ok(), std::move(emb), retries, degrade);
    }
    return had_fault;
}

Status
Server::GenerateWithRetry(int feature, const std::function<void()>& call,
                          int* retries_out)
{
    core::EmbeddingGenerator& gen = *features_[feature];
    sidechannel::TraceRecorder* sink =
        sinks_[static_cast<size_t>(feature)].load(
            std::memory_order_acquire);
    Status last = Status::Ok();
    for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
        // Trace-safe retry: record each attempt into a scratch recorder
        // and append to the sink only on success — a failed attempt's
        // partial trace depends on worker scheduling and must never reach
        // the canonical stream.
        sidechannel::TraceRecorder scratch;
        if (sink != nullptr) gen.set_recorder(&scratch);
        try {
            fault::MaybeThrow(fault::FaultSite::kGenerate,
                              "injected generation fault");
            call();
            if (sink != nullptr) {
                gen.set_recorder(nullptr);
                sink->Append(scratch);
            }
            *retries_out = attempt;
            return Status::Ok();
        } catch (const std::bad_alloc&) {
            last = Status::Error(StatusCode::kResourceExhausted,
                                 "allocation failed during generation");
        } catch (const fault::InjectedFault& e) {
            last = Status::Error(StatusCode::kInternal,
                                 std::string("transient fault: ") +
                                     e.what());
        } catch (const store::StoreError& e) {
            // Typed out-of-core IO failure (torn write, short read,
            // ENOSPC, ...): not transient — surface its Status verbatim
            // without burning retries.
            if (sink != nullptr) gen.set_recorder(nullptr);
            *retries_out = attempt;
            return e.status();
        } catch (const std::exception& e) {
            if (sink != nullptr) gen.set_recorder(nullptr);
            *retries_out = attempt;
            return Status::Error(StatusCode::kInternal,
                                 std::string("generation failed: ") +
                                     e.what());
        }
        if (sink != nullptr) gen.set_recorder(nullptr);
        if (attempt == config_.max_retries) break;
        retries_.fetch_add(1, std::memory_order_relaxed);
        TELEMETRY_COUNT("serving.retries", 1);
        const int shift = std::min(attempt, 20);
        const uint64_t backoff_us =
            std::min(config_.retry_backoff_us << shift,
                     config_.retry_backoff_cap_us);
        if (backoff_us > 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(backoff_us));
        }
    }
    *retries_out = config_.max_retries;
    return last;
}

void
Server::Respond(Pending& p, Status status, Tensor embeddings, int retries,
                int degrade)
{
    const uint64_t now = NowNs();
    const uint64_t e2e = now >= p.enqueue_ns ? now - p.enqueue_ns : 0;
    const bool ok = status.ok();
    RecordHop(p.id, FlightHop::kRespond, status.code, p.req.feature,
              degrade, static_cast<uint32_t>(retries));
    Response resp;
    resp.status = std::move(status);
    resp.embeddings = std::move(embeddings);
    resp.request_id = p.id;
    resp.e2e_ns = e2e;
    resp.retries = retries;
    resp.degrade_level = degrade;
    // Stats must be visible before the response is published: a client
    // woken by the future may immediately read GetStats().
    if (ok) {
        completed_.fetch_add(1, std::memory_order_relaxed);
        TELEMETRY_COUNT("serving.completed", 1);
    } else {
        failed_.fetch_add(1, std::memory_order_relaxed);
        TELEMETRY_COUNT("serving.failed", 1);
    }
    TELEMETRY_HIST("serving.e2e.ns", e2e);
    p.promise.set_value(std::move(resp));
}

void
Server::RecordHop(uint64_t id, FlightHop hop, StatusCode code,
                  int feature, int degrade, uint32_t detail)
{
    if (flight_ == nullptr) return;
    FlightEvent e;
    e.request_id = id;
    e.t_ns = NowNs();
    e.queue_depth = static_cast<uint32_t>(queue_.size());
    e.detail = detail;
    e.code = code;
    e.feature = static_cast<int16_t>(feature);
    e.hop = hop;
    e.degrade = static_cast<uint8_t>(std::clamp(degrade, 0, 255));
    flight_->Record(e);
}

void
Server::UpdateDegrade(bool batch_had_faults)
{
    const size_t cap = queue_.capacity();
    const size_t high = config_.degrade_high_watermark != 0
                            ? config_.degrade_high_watermark
                            : (3 * cap) / 4;
    const size_t low = config_.degrade_low_watermark != 0
                           ? config_.degrade_low_watermark
                           : cap / 4;
    const size_t depth = queue_.size();
    const int floor_level =
        std::clamp(config_.min_degrade_level, 0, kMaxDegradeLevel);

    if (batch_had_faults) {
        ++fault_streak_;
    } else {
        fault_streak_ = 0;
    }

    int level = degrade_level_.load(std::memory_order_relaxed);
    if (depth >= high || fault_streak_ >= config_.fault_streak_escalate) {
        level = std::min(level + 1, kMaxDegradeLevel);
        calm_batches_ = 0;
        if (fault_streak_ >= config_.fault_streak_escalate) {
            fault_streak_ = 0;
        }
    } else if (depth <= low && !batch_had_faults) {
        if (++calm_batches_ >= config_.recover_after_batches) {
            level = std::max(level - 1, floor_level);
            calm_batches_ = 0;
        }
    } else {
        calm_batches_ = 0;
    }
    level = std::max(level, floor_level);
    if (level != degrade_level_.load(std::memory_order_relaxed)) {
        degrade_level_.store(level, std::memory_order_relaxed);
        TELEMETRY_GAUGE_SET("serving.degrade_level", level);
    }
}

ServerStats
Server::GetStats() const
{
    ServerStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.shed = shed_.load(std::memory_order_relaxed);
    s.rejected_shutdown =
        rejected_shutdown_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.deadline_exceeded =
        deadline_exceeded_.load(std::memory_order_relaxed);
    s.retries = retries_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.degraded_batches = degraded_batches_.load(std::memory_order_relaxed);
    s.storage_sync_failures =
        storage_sync_failures_.load(std::memory_order_relaxed);
    s.storage_syncs = storage_syncs_.load(std::memory_order_relaxed);
    s.storage_checkpoints =
        storage_checkpoints_.load(std::memory_order_relaxed);
    s.storage_checkpoint_failures =
        storage_checkpoint_failures_.load(std::memory_order_relaxed);
    s.degrade_level = degrade_level_.load(std::memory_order_relaxed);
    s.queue_depth = queue_.size();
    if (flight_ != nullptr) {
        s.flight_recorded = flight_->recorded();
        s.flight_dropped = flight_->dropped();
    }
    return s;
}

}  // namespace secemb::serving
