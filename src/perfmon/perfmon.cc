#include "perfmon/perfmon.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#if defined(__linux__) && SECEMB_PERFMON_ENABLED
#define SECEMB_PERFMON_SYSCALLS 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define SECEMB_PERFMON_SYSCALLS 0
#endif

namespace secemb::perfmon {

namespace {

const char* const kEventNames[kNumEvents] = {
    "cycles",        "instructions", "llc_misses",       "dtlb_misses",
    "task_clock_ns", "page_faults",  "context_switches",
};

bool
EnvEnables()
{
    const char* v = std::getenv("SECEMB_PERFMON");
    if (v == nullptr) return false;
    return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
           std::strcmp(v, "ON") == 0 || std::strcmp(v, "true") == 0;
}

std::atomic<bool>&
EnabledFlag()
{
    static std::atomic<bool> enabled{EnvEnables()};
    return enabled;
}

#if SECEMB_PERFMON_SYSCALLS

/** Cache-event config triple (type | op | result), see perf_event_open(2). */
constexpr uint64_t
CacheConfig(uint64_t cache, uint64_t op, uint64_t result)
{
    return cache | (op << 8) | (result << 16);
}

/** attr (type, config) for each Event, in enum order. */
struct EventSpec
{
    uint32_t type;
    uint64_t config;
};

const EventSpec kEventSpecs[kNumEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     CacheConfig(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_HW_CACHE,
     CacheConfig(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES},
};

int
OpenEvent(int idx)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = kEventSpecs[idx].type;
    attr.config = kEventSpecs[idx].config;
    attr.disabled = 0;
    // Self-monitoring only, user space only: works at
    // perf_event_paranoid <= 2 and never observes other tenants.
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                            /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0UL);
    return fd < 0 ? -1 : static_cast<int>(fd);
}

#endif  // SECEMB_PERFMON_SYSCALLS

}  // namespace

const char*
EventName(Event e)
{
    return kEventNames[static_cast<size_t>(e)];
}

Sample
Sample::Delta(const Sample& begin, const Sample& end)
{
    Sample d;
    for (int i = 0; i < kNumEvents; ++i) {
        const auto idx = static_cast<size_t>(i);
        d.available[idx] = begin.available[idx] && end.available[idx];
        if (d.available[idx] && end.value[idx] >= begin.value[idx]) {
            d.value[idx] = end.value[idx] - begin.value[idx];
        }
    }
    return d;
}

void
SetEnabled(bool enabled)
{
    EnabledFlag().store(enabled, std::memory_order_relaxed);
}

bool
Enabled()
{
    return EnabledFlag().load(std::memory_order_relaxed);
}

CounterGroup::CounterGroup()
{
    for (int i = 0; i < kNumEvents; ++i) fds_[i] = -1;
#if SECEMB_PERFMON_SYSCALLS
    for (int i = 0; i < kNumEvents; ++i) fds_[i] = OpenEvent(i);
#endif
}

CounterGroup::~CounterGroup()
{
#if SECEMB_PERFMON_SYSCALLS
    for (int i = 0; i < kNumEvents; ++i) {
        if (fds_[i] >= 0) close(fds_[i]);
    }
#endif
}

bool
CounterGroup::Available(Event e) const
{
    return fds_[static_cast<size_t>(e)] >= 0;
}

bool
CounterGroup::AnyAvailable() const
{
    for (int i = 0; i < kNumEvents; ++i) {
        if (fds_[i] >= 0) return true;
    }
    return false;
}

Sample
CounterGroup::Read() const
{
    Sample s;
#if SECEMB_PERFMON_SYSCALLS
    for (int i = 0; i < kNumEvents; ++i) {
        if (fds_[i] < 0) continue;
        uint64_t v = 0;
        if (read(fds_[i], &v, sizeof(v)) == sizeof(v)) {
            const auto idx = static_cast<size_t>(i);
            s.value[idx] = v;
            s.available[idx] = true;
        }
    }
#endif
    return s;
}

void
CounterGroup::Reset()
{
#if SECEMB_PERFMON_SYSCALLS
    for (int i = 0; i < kNumEvents; ++i) {
        if (fds_[i] >= 0) ioctl(fds_[i], PERF_EVENT_IOC_RESET, 0);
    }
#endif
}

CounterGroup&
ThreadCounterGroup()
{
    thread_local CounterGroup group;
    return group;
}

bool
HardwareCountersAvailable()
{
    static const bool available = [] {
#if SECEMB_PERFMON_SYSCALLS
        CounterGroup probe;
        return probe.Available(Event::kCycles) ||
               probe.Available(Event::kInstructions) ||
               probe.Available(Event::kLlcMisses) ||
               probe.Available(Event::kDtlbMisses);
#else
        return false;
#endif
    }();
    return available;
}

std::string
AvailabilitySummary()
{
    CounterGroup probe;
    std::string out;
    for (int i = 0; i < kNumEvents; ++i) {
        if (!out.empty()) out += ' ';
        out += kEventNames[i];
        out += probe.Available(static_cast<Event>(i)) ? "=ok" : "=n/a";
    }
#if !SECEMB_PERFMON_SYSCALLS
    out += " (perfmon compiled out or non-linux)";
#endif
    return out;
}

SiteCounters&
RegisterSite(const char* name)
{
    // Leaked map (same rationale as the telemetry registry): sites may be
    // touched from static destructors.
    static std::mutex* mu = new std::mutex();
    static auto* sites = new std::map<std::string, SiteCounters>();
    std::lock_guard<std::mutex> lock(*mu);
    const auto it = sites->find(name);
    if (it != sites->end()) return it->second;
    SiteCounters site;
    auto& registry = telemetry::Registry::Instance();
    const std::string prefix = std::string("perf.") + name + ".";
    for (int i = 0; i < kNumEvents; ++i) {
        site.events[i] = &registry.GetCounter(prefix + kEventNames[i]);
    }
    site.spans = &registry.GetCounter(prefix + "spans");
    return sites->emplace(name, site).first->second;
}

void
ScopedCounters::Finish()
{
    const Sample end = ThreadCounterGroup().Read();
    const Sample delta = Sample::Delta(begin_, end);
    for (int i = 0; i < kNumEvents; ++i) {
        const auto idx = static_cast<size_t>(i);
        if (delta.available[idx]) {
            site_->events[idx]->Add(delta.value[idx]);
        }
    }
    site_->spans->Add(1);
}

}  // namespace secemb::perfmon
