#pragma once

/**
 * @file
 * Hardware performance-counter sampling via perf_event_open(2).
 *
 * A CounterGroup opens one self-monitoring counter fd per event (LLC
 * misses, dTLB misses, instructions, cycles, plus the software events
 * task-clock / page-faults / context-switches that keep working where the
 * PMU is hidden, e.g. most containers). Every event degrades
 * independently: if the kernel refuses an event (perf_event_paranoid,
 * missing PMU, seccomp), that event simply reads as unavailable and
 * everything else keeps working — there is no configuration in which
 * construction throws or instrumented code changes behaviour.
 *
 * Attachment points:
 *   - TELEMETRY_SCOPED_COUNTERS(name): like TELEMETRY_SPAN, but also
 *     accumulates per-event deltas into telemetry counters named
 *     "perf.<name>.<event>" (visible in Registry::TakeSnapshot and every
 *     --json bench report via BenchReport::AttachTelemetryCounters).
 *   - CounterGroup directly, for benches that bracket a measured region
 *     (see bench/perf01_xcheck.cc, the cache-model cross-check).
 *
 * Obliviousness-preserving rule (same contract as the tracer): counters
 * are read only at span boundaries — entry and exit of public control
 * flow — never conditionally on secret data, and a read touches no
 * instrumented victim memory (a read(2) into a stack buffer). The
 * perfmon_test leakage suite certifies that recorded victim traces are
 * bit-identical with perfmon ON vs OFF.
 *
 * Switches:
 *   - CMake -DSECEMB_PERFMON=OFF compiles the macro down to
 *     TELEMETRY_SPAN and stubs the syscall layer (everything reads
 *     unavailable); the runtime API still links.
 *   - At runtime sampling is *disabled by default* — counter reads are
 *     ~14 syscalls per span and must never distort an uninstrumented
 *     run. Enable per process with SECEMB_PERFMON=on (or =1/true) in the
 *     environment, or programmatically with perfmon::SetEnabled(true).
 */

#include <array>
#include <cstdint>
#include <string>

#include "telemetry/telemetry.h"

namespace secemb::perfmon {

#if !defined(SECEMB_PERFMON_ENABLED)
#define SECEMB_PERFMON_ENABLED 1
#endif

/** The fixed event set a CounterGroup samples. */
enum class Event : int
{
    kCycles = 0,        ///< PERF_COUNT_HW_CPU_CYCLES
    kInstructions,      ///< PERF_COUNT_HW_INSTRUCTIONS
    kLlcMisses,         ///< LLC read misses (PERF_TYPE_HW_CACHE)
    kDtlbMisses,        ///< dTLB read misses (PERF_TYPE_HW_CACHE)
    kTaskClockNs,       ///< PERF_COUNT_SW_TASK_CLOCK (always-on fallback)
    kPageFaults,        ///< PERF_COUNT_SW_PAGE_FAULTS
    kContextSwitches,   ///< PERF_COUNT_SW_CONTEXT_SWITCHES
};

inline constexpr int kNumEvents = 7;

/** Stable short name ("llc_misses", ...) used in metric/JSON keys. */
const char* EventName(Event e);

/** One reading of every event (totals or deltas, caller's context). */
struct Sample
{
    std::array<uint64_t, kNumEvents> value{};
    std::array<bool, kNumEvents> available{};

    uint64_t
    operator[](Event e) const
    {
        return value[static_cast<size_t>(e)];
    }

    bool
    has(Event e) const
    {
        return available[static_cast<size_t>(e)];
    }

    /** Per-event end - begin; an event is available iff both sides had it. */
    static Sample Delta(const Sample& begin, const Sample& end);
};

/**
 * Runtime master switch. Initialised once from the SECEMB_PERFMON
 * environment variable ("1"/"on"/"true" enables); defaults to off.
 */
void SetEnabled(bool enabled);
bool Enabled();

/** True if at least one *hardware* event can be opened (probed once). */
bool HardwareCountersAvailable();

/** Human-readable per-event availability, for bench/CLI banners. */
std::string AvailabilitySummary();

/**
 * A set of per-thread self-monitoring counters, one fd per event.
 * Construction never fails: events the kernel refuses are simply marked
 * unavailable. Counters follow the opening thread only; in ParallelFor
 * regions they cover the calling thread's share of the work.
 */
class CounterGroup
{
  public:
    CounterGroup();
    ~CounterGroup();

    CounterGroup(const CounterGroup&) = delete;
    CounterGroup& operator=(const CounterGroup&) = delete;

    bool Available(Event e) const;
    bool AnyAvailable() const;

    /** Running totals since construction or the last Reset(). */
    Sample Read() const;

    /** Zero every available counter. */
    void Reset();

  private:
    int fds_[kNumEvents];
};

/**
 * The lazily-opened CounterGroup TELEMETRY_SCOPED_COUNTERS reads from on
 * this thread. Opened on first use after perfmon is enabled.
 */
CounterGroup& ThreadCounterGroup();

/**
 * Per-call-site registry slots: one telemetry counter per event named
 * "perf.<site>.<event>" plus "perf.<site>.spans" counting executions.
 * Returned reference is process-lifetime stable.
 */
struct SiteCounters
{
    telemetry::Counter* events[kNumEvents];
    telemetry::Counter* spans;
};

SiteCounters& RegisterSite(const char* name);

/**
 * RAII sampler: reads the thread counter group at construction and
 * destruction (span boundaries only) and accumulates the deltas into the
 * site's telemetry counters. No-op unless both perfmon and telemetry are
 * enabled at entry.
 */
class ScopedCounters
{
  public:
    explicit ScopedCounters(SiteCounters& site)
    {
        if (Enabled() && telemetry::Enabled()) {
            site_ = &site;
            begin_ = ThreadCounterGroup().Read();
        }
    }

    ~ScopedCounters()
    {
        if (site_ != nullptr) Finish();
    }

    ScopedCounters(const ScopedCounters&) = delete;
    ScopedCounters& operator=(const ScopedCounters&) = delete;

  private:
    void Finish();

    SiteCounters* site_ = nullptr;  ///< nullptr = disabled at entry
    Sample begin_;
};

#if SECEMB_PERFMON_ENABLED && SECEMB_TELEMETRY_ENABLED
/**
 * Open a scoped telemetry span *and* sample the perf counters across it:
 *   TELEMETRY_SCOPED_COUNTERS("tensor.gemm");
 * Falls back to a plain TELEMETRY_SPAN when perfmon is compiled out, and
 * to nothing when telemetry is compiled out.
 */
#define TELEMETRY_SCOPED_COUNTERS(name)                                    \
    TELEMETRY_SPAN(name);                                                  \
    static ::secemb::perfmon::SiteCounters& SECEMB_TELEMETRY_CONCAT(       \
        secemb_perfmon_site_, __LINE__) =                                  \
        ::secemb::perfmon::RegisterSite(name);                             \
    ::secemb::perfmon::ScopedCounters SECEMB_TELEMETRY_CONCAT(             \
        secemb_perfmon_scope_, __LINE__)(                                  \
        SECEMB_TELEMETRY_CONCAT(secemb_perfmon_site_, __LINE__))
#else
#define TELEMETRY_SCOPED_COUNTERS(name) TELEMETRY_SPAN(name)
#endif

}  // namespace secemb::perfmon
