#pragma once

/**
 * @file
 * Out-of-core oblivious linear scan: the paper's O(n) scan with the table
 * living in a BackingStore instead of RAM.
 *
 * Rows are packed page-granular — rows_per_page = page_bytes / row_bytes,
 * the last page zero-padded — so one scan stripe costs exactly one page.
 * A batched lookup streams every page through the bounded cache exactly
 * once and blends each page's rows into every batch slot with the same
 * constant-time selects the in-RAM scan uses. The page-fetch schedule is
 * therefore fixed: pages 0..P-1 in order, once per call, independent of
 * the (secret) indices — the out-of-core certified public schedule.
 *
 * The recorded trace is page-granular (one access per page per call in
 * the "store.scan.pages" region), matching what a controlled-channel
 * adversary observes of an out-of-core table.
 */

#include <cstdint>
#include <memory>
#include <span>

#include "sidechannel/trace.h"
#include "store/page_cache.h"

namespace secemb::store {

class PagedTable
{
  public:
    /**
     * Create the store (config geometry) and upload `rows` x `dim` floats.
     * Throws StoreError on creation/upload failure (constructors cannot
     * return Status); per-call IO errors are returned as Status.
     *
     * @param data row-major rows*dim floats (copied to the store)
     */
    PagedTable(const float* data, int64_t rows, int64_t dim,
               const StoreConfig& config);

    /**
     * Reattach to an existing on-disk table after a crash or restart:
     * opens the store with create=false (the header validates page size
     * and page count, so a geometry mismatch fails closed) and skips the
     * upload. The scan table keeps no client-side state beyond its
     * pages, so recovery is pure reattachment — the paged CRC table
     * catches torn page writes on first touch.
     */
    static serving::Status Recover(int64_t rows, int64_t dim,
                                   const StoreConfig& config,
                                   std::unique_ptr<PagedTable>* out);

    int64_t rows() const { return rows_; }
    int64_t dim() const { return dim_; }
    int64_t rows_per_page() const { return rows_per_page_; }
    int64_t num_pages() const { return num_pages_; }
    int64_t page_bytes() const { return cache_->page_bytes(); }

    /**
     * Oblivious batched lookup: out[i] = row indices[i], touching every
     * page once. out must hold indices.size()*dim floats. `nthreads`
     * parallelises the per-page blend over batch slots; the page schedule
     * and recorded trace are identical for every thread count.
     */
    serving::Status LookupBatch(std::span<const int64_t> indices,
                                float* out, int nthreads);

    /**
     * Pooled (multi-hot) lookup: out row b accumulates the sum of rows
     * indices[offsets[b]..offsets[b+1]). out must hold
     * (offsets.size()-1)*dim floats.
     */
    serving::Status LookupPooled(std::span<const int64_t> indices,
                                 std::span<const int64_t> offsets,
                                 float* out, int nthreads);

    /** Flush dirty cache frames and sync the store durably. */
    serving::Status Sync() { return cache_->Sync(); }

    void set_recorder(sidechannel::TraceRecorder* recorder)
    {
        recorder_ = recorder;
    }

    /** Route fetch/write-back hops into a serving flight recorder. */
    void set_flight(serving::FlightRecorder* flight, int16_t feature = -1)
    {
        cache_->set_flight(flight, feature);
    }

    PageCacheStats cache_stats() const { return cache_->stats(); }
    std::string_view backend_name() const
    {
        return cache_->store().backend_name();
    }

    /** Resident bytes: cache frames (the table itself lives out of core). */
    int64_t MemoryFootprintBytes() const
    {
        return cache_->capacity_pages() * cache_->page_bytes();
    }

    /** Bytes occupied in the backing store. */
    int64_t DiskFootprintBytes() const
    {
        return num_pages_ * cache_->page_bytes();
    }

  private:
    /** For Recover(), which fills every field itself. */
    PagedTable() = default;

    /** Blend rows of one fetched page into the batch slots of [b0, b1). */
    void BlendPage(const float* page_rows, int64_t first_row,
                   int64_t rows_in_page,
                   std::span<const int64_t> indices, int64_t b0,
                   int64_t b1, float* out) const;

    /** Accumulate rows of one fetched page into pooled out slots. */
    void AccumulatePage(const float* page_rows, int64_t first_row,
                        int64_t rows_in_page,
                        std::span<const int64_t> indices,
                        std::span<const int64_t> offsets, int64_t b0,
                        int64_t b1, float* out) const;

    int64_t rows_ = 0;
    int64_t dim_ = 0;
    int64_t rows_per_page_ = 0;
    int64_t num_pages_ = 0;
    std::unique_ptr<PageCache> cache_;
    sidechannel::TraceRecorder* recorder_ = nullptr;
    uint64_t trace_base_ = 0;
};

}  // namespace secemb::store
