#include "store/durable.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "fault/fault.h"
#include "store/backing_store.h"
#include "telemetry/telemetry.h"

namespace secemb::store {

namespace {

constexpr char kJournalMagic[8] = {'S', 'E', 'C', 'E', 'M', 'B', 'J', '1'};
constexpr char kCkptMagic[8] = {'S', 'E', 'C', 'E', 'M', 'B', 'C', '1'};
constexpr uint32_t kRecordMagic = 0x4c4a4553u;  // "SEJL"
constexpr uint32_t kFormatVersion = 1;
constexpr int64_t kJournalHeaderBytes = 40;
constexpr int64_t kRecordHeaderBytes = 24;  // magic + type + seq + len
constexpr int64_t kCkptPrologueBytes = 24;  // magic + version + flags + len
// Sanity bound on a single record payload (an eviction pre-image of a
// deep tree with 4 KiB pages is well under this).
constexpr int64_t kMaxRecordPayload = int64_t{1} << 28;

serving::Status
Errno(serving::StatusCode code, const std::string& what)
{
    return serving::Status::Error(code,
                                  what + ": " + std::strerror(errno));
}

serving::Status
CheckOpenFault()
{
    if (fault::ShouldInject(fault::FaultSite::kIoOpen)) {
        return serving::Status::Error(serving::StatusCode::kInternal,
                                      "injected open failure");
    }
    return serving::Status::Ok();
}

serving::Status
CheckReadFault()
{
    if (fault::ShouldInject(fault::FaultSite::kIoRead)) {
        return serving::Status::Error(serving::StatusCode::kInternal,
                                      "injected read failure (EIO)");
    }
    return serving::Status::Ok();
}

serving::Status
CheckWriteFault()
{
    if (fault::ShouldInject(fault::FaultSite::kIoWrite)) {
        return serving::Status::Error(
            serving::StatusCode::kResourceExhausted,
            "injected write failure (ENOSPC)");
    }
    return serving::Status::Ok();
}

void
PutBytes(std::vector<uint8_t>* out, const void* data, size_t n)
{
    const size_t off = out->size();
    out->resize(off + n);
    std::memcpy(out->data() + off, data, n);
}

void
PutU32(std::vector<uint8_t>* out, uint32_t v)
{
    const size_t n = out->size();
    out->resize(n + sizeof(v));
    std::memcpy(out->data() + n, &v, sizeof(v));
}

void
PutU64(std::vector<uint8_t>* out, uint64_t v)
{
    const size_t n = out->size();
    out->resize(n + sizeof(v));
    std::memcpy(out->data() + n, &v, sizeof(v));
}

void
PutI64(std::vector<uint8_t>* out, int64_t v)
{
    PutU64(out, static_cast<uint64_t>(v));
}

template <typename T>
void
PutVec(std::vector<uint8_t>* out, const std::vector<T>& v)
{
    const size_t n = out->size();
    const size_t bytes = v.size() * sizeof(T);
    out->resize(n + bytes);
    if (bytes > 0) std::memcpy(out->data() + n, v.data(), bytes);
}

/** Bounds-checked little reader over a byte buffer. */
class ByteReader
{
  public:
    ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size)
    {
    }

    bool GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
    bool GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
    bool
    GetI64(int64_t* v)
    {
        return GetRaw(v, sizeof(*v));
    }

    template <typename T>
    bool
    GetVec(std::vector<T>* v, size_t count)
    {
        const size_t bytes = count * sizeof(T);
        if (size_ - off_ < bytes) return false;
        v->resize(count);
        if (bytes > 0) std::memcpy(v->data(), data_ + off_, bytes);
        off_ += bytes;
        return true;
    }

    size_t remaining() const { return size_ - off_; }

  private:
    bool
    GetRaw(void* v, size_t bytes)
    {
        if (size_ - off_ < bytes) return false;
        std::memcpy(v, data_ + off_, bytes);
        off_ += bytes;
        return true;
    }

    const uint8_t* data_;
    size_t size_;
    size_t off_ = 0;
};

serving::Status
WriteAll(int fd, const uint8_t* data, size_t size, const std::string& what)
{
    size_t done = 0;
    while (done < size) {
        const ssize_t n = ::write(fd, data + done, size - done);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            return Errno(serving::StatusCode::kResourceExhausted,
                         "write " + what);
        }
        done += static_cast<size_t>(n);
    }
    return serving::Status::Ok();
}

serving::Status
ReadWholeFile(const std::string& path, std::vector<uint8_t>* out,
              const std::string& what)
{
    if (auto s = CheckOpenFault(); !s.ok()) return s;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        return Errno(serving::StatusCode::kInternal,
                     "open " + what + " " + path);
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        const auto s =
            Errno(serving::StatusCode::kInternal, "fstat " + path);
        ::close(fd);
        return s;
    }
    out->resize(static_cast<size_t>(st.st_size));
    size_t done = 0;
    while (done < out->size()) {
        if (auto s = CheckReadFault(); !s.ok()) {
            ::close(fd);
            return s;
        }
        const ssize_t n = ::pread(fd, out->data() + done,
                                  out->size() - done,
                                  static_cast<off_t>(done));
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            ::close(fd);
            return Errno(serving::StatusCode::kInternal, "read " + path);
        }
        done += static_cast<size_t>(n);
    }
    ::close(fd);
    return serving::Status::Ok();
}

std::vector<uint8_t>
JournalHeaderBytesFor(uint64_t base_seq, uint64_t geometry_hash)
{
    std::vector<uint8_t> h;
    h.reserve(static_cast<size_t>(kJournalHeaderBytes));
    PutBytes(&h, kJournalMagic, 8);
    PutU32(&h, kFormatVersion);
    PutU32(&h, 0);  // flags
    PutU64(&h, base_seq);
    PutU64(&h, geometry_hash);
    PutU32(&h, Crc32({h.data() + 8, h.size() - 8}));
    PutU32(&h, 0);  // pad to kJournalHeaderBytes
    return h;
}

/** Parse one record at `data`; returns false if damaged/short. */
bool
ParseRecordAt(const uint8_t* data, size_t size, JournalRecord* rec,
              int64_t* frame_bytes)
{
    if (size < static_cast<size_t>(kRecordHeaderBytes + 4)) return false;
    uint32_t magic = 0, type = 0;
    uint64_t seq = 0, payload_bytes = 0;
    std::memcpy(&magic, data, 4);
    std::memcpy(&type, data + 4, 4);
    std::memcpy(&seq, data + 8, 8);
    std::memcpy(&payload_bytes, data + 16, 8);
    if (magic != kRecordMagic) return false;
    if (type != static_cast<uint32_t>(JournalRecordType::kAccess) &&
        type != static_cast<uint32_t>(JournalRecordType::kEvict)) {
        return false;
    }
    if (payload_bytes > static_cast<uint64_t>(kMaxRecordPayload)) {
        return false;
    }
    const size_t frame = static_cast<size_t>(kRecordHeaderBytes) +
                         static_cast<size_t>(payload_bytes) + 4;
    if (size < frame) return false;
    uint32_t crc = 0;
    std::memcpy(&crc, data + kRecordHeaderBytes + payload_bytes, 4);
    // CRC covers type + seq + len + payload (not the magic).
    if (crc != Crc32({data + 4,
                      static_cast<size_t>(kRecordHeaderBytes - 4 +
                                          payload_bytes)})) {
        return false;
    }
    rec->type = static_cast<JournalRecordType>(type);
    rec->seq = seq;
    rec->payload.assign(data + kRecordHeaderBytes,
                        data + kRecordHeaderBytes + payload_bytes);
    *frame_bytes = static_cast<int64_t>(frame);
    return true;
}

// Crash plan: process-local, survives fork() (the harness arms it in the
// child after forking; no exec happens).
std::atomic<int> g_crash_site{0};
std::atomic<int64_t> g_crash_countdown{0};

}  // namespace

void
SetCrashPlanForTest(CrashSite site, int64_t countdown)
{
    g_crash_countdown.store(countdown, std::memory_order_relaxed);
    g_crash_site.store(static_cast<int>(site), std::memory_order_relaxed);
}

void
ClearCrashPlanForTest()
{
    g_crash_site.store(0, std::memory_order_relaxed);
    g_crash_countdown.store(0, std::memory_order_relaxed);
}

bool
CrashHit(CrashSite site)
{
    if (g_crash_site.load(std::memory_order_relaxed) !=
        static_cast<int>(site)) {
        return false;
    }
    return g_crash_countdown.fetch_sub(1, std::memory_order_relaxed) == 1;
}

void
CrashNowForTest()
{
    ::raise(SIGKILL);
    ::_exit(137);  // unreachable; SIGKILL cannot be handled
}

void
MaybeCrash(CrashSite site)
{
    if (CrashHit(site)) CrashNowForTest();
}

serving::Status
FsyncDir(const std::string& dir_path)
{
    const int fd = ::open(dir_path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        return Errno(serving::StatusCode::kInternal,
                     "open dir " + dir_path);
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
        return Errno(serving::StatusCode::kInternal,
                     "fsync dir " + dir_path);
    }
    return serving::Status::Ok();
}

serving::Status
FsyncParentDir(const std::string& file_path)
{
    std::string dir =
        std::filesystem::path(file_path).parent_path().string();
    if (dir.empty()) dir = ".";
    return FsyncDir(dir);
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

int64_t
JournalFileHeaderBytes()
{
    return kJournalHeaderBytes;
}

int64_t
JournalRecordBytes(int64_t payload_bytes)
{
    return kRecordHeaderBytes + payload_bytes + 4;
}

int64_t
JournalAccessPayloadBytes(int64_t block_words)
{
    return 8 + 4 + 4 + 4 * block_words;  // id + leaf + op + payload
}

int64_t
JournalEvictPayloadBytes(int64_t path_slots, int64_t block_words)
{
    // evict_counter + leaf + pad, then per path slot: id + leaf + payload.
    return 8 + 4 + 4 + path_slots * (8 + 4 + 4 * block_words);
}

void
AppendJournalRecordBytes(std::vector<uint8_t>* out, JournalRecordType type,
                         uint64_t seq, std::span<const uint8_t> payload)
{
    const size_t body_start = out->size() + 4;
    PutU32(out, kRecordMagic);
    PutU32(out, static_cast<uint32_t>(type));
    PutU64(out, seq);
    PutU64(out, static_cast<uint64_t>(payload.size()));
    out->insert(out->end(), payload.begin(), payload.end());
    PutU32(out, Crc32({out->data() + body_start,
                       out->size() - body_start}));
}

Journal::~Journal()
{
    Close();
}

void
Journal::Close()
{
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
}

serving::Status
Journal::Reset(const std::string& path, uint64_t base_seq,
               uint64_t geometry_hash)
{
    Close();
    const std::string tmp = path + ".tmp";
    if (auto s = CheckOpenFault(); !s.ok()) return s;
    const int fd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        return Errno(serving::StatusCode::kInternal, "open " + tmp);
    }
    const std::vector<uint8_t> header =
        JournalHeaderBytesFor(base_seq, geometry_hash);
    if (auto s = CheckWriteFault(); !s.ok()) {
        ::close(fd);
        return s;
    }
    if (auto s = WriteAll(fd, header.data(), header.size(), tmp);
        !s.ok()) {
        ::close(fd);
        return s;
    }
    if (::fsync(fd) != 0) {
        const auto s =
            Errno(serving::StatusCode::kInternal, "fsync " + tmp);
        ::close(fd);
        return s;
    }
    // Atomic swap: the old journal (full records) or the fresh one; a
    // crash anywhere in between leaves a valid state either way. The fd
    // follows the inode through the rename, so appends continue on it.
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const auto s = Errno(serving::StatusCode::kInternal,
                             "rename " + tmp + " -> " + path);
        ::close(fd);
        return s;
    }
    if (auto s = FsyncParentDir(path); !s.ok()) {
        ::close(fd);
        return s;
    }
    fd_ = fd;
    path_ = path;
    base_seq_ = base_seq;
    records_ = 0;
    bytes_ = 0;
    return serving::Status::Ok();
}

serving::Status
Journal::OpenForAppend(const std::string& path, int64_t records,
                       int64_t bytes)
{
    Close();
    if (auto s = CheckOpenFault(); !s.ok()) return s;
    const int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0) {
        return Errno(serving::StatusCode::kInternal, "open " + path);
    }
    uint8_t header[kJournalHeaderBytes];
    if (::pread(fd, header, sizeof(header), 0) !=
        static_cast<ssize_t>(sizeof(header))) {
        ::close(fd);
        return serving::Status::Error(serving::StatusCode::kInternal,
                                      "short journal header in " + path);
    }
    if (std::memcmp(header, kJournalMagic, 8) != 0) {
        ::close(fd);
        return serving::Status::Error(serving::StatusCode::kInternal,
                                      path + " is not a secemb journal");
    }
    uint64_t base_seq = 0;
    std::memcpy(&base_seq, header + 16, 8);
    // Discard anything past the valid prefix (a dropped torn tail): new
    // appends must not leave stale bytes that a later recovery could
    // misread as corruption-with-valid-records-beyond.
    const int64_t valid_end = kJournalHeaderBytes + bytes;
    if (::ftruncate(fd, valid_end) != 0) {
        const auto s = Errno(serving::StatusCode::kInternal,
                             "ftruncate " + path);
        ::close(fd);
        return s;
    }
    if (::lseek(fd, valid_end, SEEK_SET) < 0) {
        const auto s =
            Errno(serving::StatusCode::kInternal, "lseek " + path);
        ::close(fd);
        return s;
    }
    fd_ = fd;
    path_ = path;
    base_seq_ = base_seq;
    records_ = records;
    bytes_ = bytes;
    return serving::Status::Ok();
}

serving::Status
Journal::Append(JournalRecordType type, uint64_t seq,
                std::span<const uint8_t> payload, bool sync)
{
    if (fd_ < 0) {
        return serving::Status::Error(serving::StatusCode::kInternal,
                                      "journal is not open");
    }
    if (auto s = CheckWriteFault(); !s.ok()) return s;
    std::vector<uint8_t> frame;
    frame.reserve(static_cast<size_t>(
        JournalRecordBytes(static_cast<int64_t>(payload.size()))));
    AppendJournalRecordBytes(&frame, type, seq, payload);
    if (CrashHit(CrashSite::kJournalAppendPartial)) {
        // The torn-tail state a real crash leaves: half a record at the
        // end of the file, nothing valid beyond it.
        (void)WriteAll(fd_, frame.data(), frame.size() / 2, path_);
        CrashNowForTest();
    }
    if (auto s = WriteAll(fd_, frame.data(), frame.size(), path_);
        !s.ok()) {
        return s;
    }
    if (sync && ::fsync(fd_) != 0) {
        return Errno(serving::StatusCode::kInternal, "fsync " + path_);
    }
    MaybeCrash(CrashSite::kJournalAppendAfter);
    records_++;
    bytes_ += static_cast<int64_t>(frame.size());
    TELEMETRY_COUNT("store.ckpt.journal_records", 1);
    return serving::Status::Ok();
}

serving::Status
LoadJournal(const std::string& path, uint64_t geometry_hash,
            uint64_t skip_through, JournalLoadResult* out)
{
    *out = JournalLoadResult{};
    std::vector<uint8_t> bytes;
    if (auto s = ReadWholeFile(path, &bytes, "journal"); !s.ok()) {
        return s;
    }
    if (bytes.size() < static_cast<size_t>(kJournalHeaderBytes)) {
        return serving::Status::Error(serving::StatusCode::kInternal,
                                      "short journal header in " + path);
    }
    if (std::memcmp(bytes.data(), kJournalMagic, 8) != 0) {
        return serving::Status::Error(serving::StatusCode::kInternal,
                                      path + " is not a secemb journal");
    }
    uint32_t version = 0, header_crc = 0;
    uint64_t base_seq = 0, geom = 0;
    std::memcpy(&version, bytes.data() + 8, 4);
    std::memcpy(&base_seq, bytes.data() + 16, 8);
    std::memcpy(&geom, bytes.data() + 24, 8);
    std::memcpy(&header_crc, bytes.data() + 32, 4);
    if (version != kFormatVersion ||
        header_crc != Crc32({bytes.data() + 8, 24})) {
        return serving::Status::Error(
            serving::StatusCode::kInternal,
            "journal header corrupt in " + path);
    }
    if (geom != geometry_hash) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "journal geometry mismatch in " + path);
    }
    if (base_seq > skip_through) {
        // The journal claims a newer base than the checkpoint covers:
        // the checkpoint that reset it is missing — fail closed.
        return serving::Status::Error(
            serving::StatusCode::kInternal,
            "journal base seq " + std::to_string(base_seq) +
                " is ahead of checkpoint seq " +
                std::to_string(skip_through) + " in " + path);
    }
    out->base_seq = base_seq;

    size_t off = static_cast<size_t>(kJournalHeaderBytes);
    uint64_t expected = base_seq + 1;
    while (off < bytes.size()) {
        JournalRecord rec;
        int64_t frame = 0;
        if (ParseRecordAt(bytes.data() + off, bytes.size() - off, &rec,
                          &frame)) {
            if (rec.seq != expected) {
                return serving::Status::Error(
                    serving::StatusCode::kInternal,
                    "journal sequence discontinuity in " + path +
                        ": record " + std::to_string(rec.seq) +
                        " where " + std::to_string(expected) +
                        " was expected (duplicate or reordered)");
            }
            expected++;
            if (rec.seq <= skip_through) {
                out->skipped++;
            } else {
                out->records.push_back(std::move(rec));
            }
            off += static_cast<size_t>(frame);
            continue;
        }
        // Damaged record. Legal only as the file's final record: scan
        // forward — any fully valid record beyond it means mid-journal
        // corruption, which must fail closed.
        for (size_t probe = off + 1; probe < bytes.size(); ++probe) {
            JournalRecord probe_rec;
            int64_t probe_frame = 0;
            if (ParseRecordAt(bytes.data() + probe, bytes.size() - probe,
                              &probe_rec, &probe_frame)) {
                return serving::Status::Error(
                    serving::StatusCode::kInternal,
                    "corrupt journal record at offset " +
                        std::to_string(off) + " of " + path +
                        " with valid records beyond it");
            }
        }
        out->dropped_tail = true;
        out->dropped_tail_bytes = static_cast<int64_t>(bytes.size() - off);
        break;
    }
    out->file_bytes = static_cast<int64_t>(off);
    return serving::Status::Ok();
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

uint64_t
DurableGeometryHash(const CheckpointData& d)
{
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const int64_t v :
         {d.num_blocks, d.block_words, d.bucket_slots, d.levels,
          d.stash_capacity, d.eviction_period}) {
        h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
             (h >> 2);
    }
    return h;
}

int64_t
CheckpointSerializedBytes(int64_t num_blocks, int64_t block_words,
                          int64_t bucket_slots, int64_t levels,
                          int64_t stash_capacity)
{
    const int64_t num_buckets = 2 * (int64_t{1} << levels) - 1;
    const int64_t scalars = 11 * 8;  // 6 geometry + 3 u64 + 2 counters
    const int64_t posmap = 4 * num_blocks;
    const int64_t slots = num_buckets * bucket_slots * (8 + 4);
    const int64_t stash =
        stash_capacity * (8 + 4 + 4 * block_words);
    const int64_t versions = 8 * num_buckets;
    return kCkptPrologueBytes + scalars + posmap + slots + stash +
           versions + 4;  // trailing CRC
}

namespace {

std::vector<uint8_t>
SerializeCheckpoint(const CheckpointData& d, bool sparse)
{
    std::vector<uint8_t> payload;
    PutI64(&payload, d.num_blocks);
    PutI64(&payload, d.block_words);
    PutI64(&payload, d.bucket_slots);
    PutI64(&payload, d.levels);
    PutI64(&payload, d.stash_capacity);
    PutI64(&payload, d.eviction_period);
    PutU64(&payload, d.cipher_seed);
    PutU64(&payload, d.evict_counter);
    PutU64(&payload, d.last_seq);
    PutI64(&payload, d.accesses);
    PutI64(&payload, d.evictions);
    PutVec(&payload, d.posmap_leaves);
    PutVec(&payload, d.slot_id);
    PutVec(&payload, d.slot_leaf);
    if (!sparse) {
        // Full sweep: every stash slot, occupied or dummy — the
        // checkpoint size is a constant of the geometry.
        PutVec(&payload, d.stash_id);
        PutVec(&payload, d.stash_leaf);
        PutVec(&payload, d.stash_data);
    } else {
        // NEGATIVE CONTROL: size depends on (secret) stash occupancy.
        uint64_t occupied = 0;
        for (const uint64_t id : d.stash_id) {
            if (id != ~uint64_t{0}) ++occupied;
        }
        PutU64(&payload, occupied);
        for (size_t s = 0; s < d.stash_id.size(); ++s) {
            if (d.stash_id[s] == ~uint64_t{0}) continue;
            PutU64(&payload, d.stash_id[s]);
            PutU32(&payload, d.stash_leaf[s]);
            for (int64_t w = 0; w < d.block_words; ++w) {
                PutU32(&payload,
                       d.stash_data[s * static_cast<size_t>(
                                            d.block_words) +
                                    static_cast<size_t>(w)]);
            }
        }
    }
    PutVec(&payload, d.bucket_version);

    std::vector<uint8_t> file;
    file.reserve(payload.size() +
                 static_cast<size_t>(kCkptPrologueBytes) + 4);
    PutBytes(&file, kCkptMagic, 8);
    PutU32(&file, kFormatVersion);
    PutU32(&file, sparse ? 1u : 0u);
    PutU64(&file, static_cast<uint64_t>(payload.size()));
    file.insert(file.end(), payload.begin(), payload.end());
    PutU32(&file, Crc32(payload));
    return file;
}

}  // namespace

serving::Status
WriteCheckpointAtomic(const std::string& path, const CheckpointData& data,
                      bool sparse_negative_control, int64_t* bytes_out)
{
    const std::vector<uint8_t> file =
        SerializeCheckpoint(data, sparse_negative_control);
    if (bytes_out != nullptr) {
        *bytes_out = static_cast<int64_t>(file.size());
    }
    const std::string tmp = path + ".tmp";
    if (auto s = CheckOpenFault(); !s.ok()) return s;
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        return Errno(serving::StatusCode::kInternal, "open " + tmp);
    }
    if (auto s = CheckWriteFault(); !s.ok()) {
        ::close(fd);
        return s;
    }
    if (CrashHit(CrashSite::kCheckpointTempPartial)) {
        // Torn temp file; the live checkpoint is untouched.
        (void)WriteAll(fd, file.data(), file.size() / 2, tmp);
        CrashNowForTest();
    }
    if (auto s = WriteAll(fd, file.data(), file.size(), tmp); !s.ok()) {
        ::close(fd);
        return s;
    }
    if (::fsync(fd) != 0) {
        const auto s =
            Errno(serving::StatusCode::kInternal, "fsync " + tmp);
        ::close(fd);
        return s;
    }
    ::close(fd);
    MaybeCrash(CrashSite::kCheckpointTempBeforeRename);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        return Errno(serving::StatusCode::kInternal,
                     "rename " + tmp + " -> " + path);
    }
    return FsyncParentDir(path);
}

serving::Status
ReadCheckpoint(const std::string& path, CheckpointData* out)
{
    std::vector<uint8_t> bytes;
    if (auto s = ReadWholeFile(path, &bytes, "checkpoint"); !s.ok()) {
        return s;
    }
    if (bytes.size() < static_cast<size_t>(kCkptPrologueBytes) + 4 ||
        std::memcmp(bytes.data(), kCkptMagic, 8) != 0) {
        return serving::Status::Error(
            serving::StatusCode::kInternal,
            path + " is not a secemb checkpoint");
    }
    uint32_t version = 0, flags = 0;
    uint64_t payload_bytes = 0;
    std::memcpy(&version, bytes.data() + 8, 4);
    std::memcpy(&flags, bytes.data() + 12, 4);
    std::memcpy(&payload_bytes, bytes.data() + 16, 8);
    if (version != kFormatVersion) {
        return serving::Status::Error(
            serving::StatusCode::kInternal,
            "unsupported checkpoint version in " + path);
    }
    if ((flags & 1u) != 0) {
        return serving::Status::Error(
            serving::StatusCode::kInternal,
            "refusing sparse (negative-control) checkpoint " + path);
    }
    if (bytes.size() != static_cast<size_t>(kCkptPrologueBytes) +
                            payload_bytes + 4) {
        return serving::Status::Error(
            serving::StatusCode::kInternal,
            "checkpoint " + path + " is torn or truncated (" +
                std::to_string(bytes.size()) + " bytes)");
    }
    const uint8_t* payload = bytes.data() + kCkptPrologueBytes;
    uint32_t crc = 0;
    std::memcpy(&crc, payload + payload_bytes, 4);
    if (crc != Crc32({payload, payload_bytes})) {
        return serving::Status::Error(
            serving::StatusCode::kInternal,
            "checkpoint CRC mismatch in " + path +
                " (torn write or corruption)");
    }

    CheckpointData d;
    ByteReader r(payload, payload_bytes);
    bool ok = r.GetI64(&d.num_blocks) && r.GetI64(&d.block_words) &&
              r.GetI64(&d.bucket_slots) && r.GetI64(&d.levels) &&
              r.GetI64(&d.stash_capacity) &&
              r.GetI64(&d.eviction_period) && r.GetU64(&d.cipher_seed) &&
              r.GetU64(&d.evict_counter) && r.GetU64(&d.last_seq) &&
              r.GetI64(&d.accesses) && r.GetI64(&d.evictions);
    if (ok) {
        if (d.num_blocks <= 0 || d.block_words <= 0 ||
            d.bucket_slots <= 0 || d.levels < 0 || d.levels > 40 ||
            d.stash_capacity <= 0 || d.eviction_period <= 0) {
            ok = false;
        }
    }
    if (ok) {
        const int64_t nb = d.num_buckets();
        const auto slots =
            static_cast<size_t>(nb * d.bucket_slots);
        ok = r.GetVec(&d.posmap_leaves,
                      static_cast<size_t>(d.num_blocks)) &&
             r.GetVec(&d.slot_id, slots) &&
             r.GetVec(&d.slot_leaf, slots) &&
             r.GetVec(&d.stash_id,
                      static_cast<size_t>(d.stash_capacity)) &&
             r.GetVec(&d.stash_leaf,
                      static_cast<size_t>(d.stash_capacity)) &&
             r.GetVec(&d.stash_data,
                      static_cast<size_t>(d.stash_capacity *
                                          d.block_words)) &&
             r.GetVec(&d.bucket_version, static_cast<size_t>(nb)) &&
             r.remaining() == 0;
    }
    if (!ok) {
        return serving::Status::Error(
            serving::StatusCode::kInternal,
            "checkpoint " + path + " failed structural validation");
    }
    *out = std::move(d);
    return serving::Status::Ok();
}

}  // namespace secemb::store
