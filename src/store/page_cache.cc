#include "store/page_cache.h"

#include <algorithm>
#include <cstring>

#include "serving/clock.h"
#include "telemetry/telemetry.h"

namespace secemb::store {

PinnedPage&
PinnedPage::operator=(PinnedPage&& other) noexcept
{
    if (this != &other) {
        Release();
        cache_ = other.cache_;
        frame_ = other.frame_;
        page_ = other.page_;
        data_ = other.data_;
        other.cache_ = nullptr;
        other.frame_ = -1;
        other.page_ = -1;
        other.data_ = nullptr;
    }
    return *this;
}

void
PinnedPage::MarkDirty()
{
    if (cache_ != nullptr) cache_->MarkFrameDirty(frame_);
}

void
PinnedPage::Release()
{
    if (cache_ != nullptr) {
        cache_->Unpin(frame_);
        cache_ = nullptr;
        frame_ = -1;
        page_ = -1;
        data_ = nullptr;
    }
}

PageCache::PageCache(std::unique_ptr<BackingStore> store,
                     int64_t capacity_pages)
    : store_(std::move(store))
{
    const int64_t cap = std::max<int64_t>(
        1, std::min(capacity_pages, store_->num_pages()));
    frames_.resize(static_cast<size_t>(cap));
    data_.resize(static_cast<size_t>(cap * store_->page_bytes()));
    page_to_frame_.reserve(static_cast<size_t>(cap) * 2);
}

PageCache::~PageCache()
{
    // Best-effort write-back so a cleanly destroyed cache leaves the
    // store complete; errors here have nowhere to go (use Sync() to
    // observe them).
    (void)FlushDirty();
}

serving::Status
PageCache::FrameFor(int64_t page, bool load_from_store,
                    int64_t* frame_out)
{
    if (const auto it = page_to_frame_.find(page);
        it != page_to_frame_.end()) {
        frames_[static_cast<size_t>(it->second)].referenced = true;
        stats_.hits++;
        TELEMETRY_COUNT("store.cache.hit", 1);
        *frame_out = it->second;
        return serving::Status::Ok();
    }
    stats_.misses++;
    TELEMETRY_COUNT("store.cache.miss", 1);

    // Clock sweep: skip pinned frames, give referenced frames a second
    // chance, recycle the first quiet frame. Two full sweeps guarantee
    // either a victim or proof that every frame is pinned.
    const int64_t cap = capacity_pages();
    int64_t victim = -1;
    for (int64_t scanned = 0; scanned < 2 * cap; ++scanned) {
        Frame& f = frames_[static_cast<size_t>(clock_hand_)];
        const int64_t at = clock_hand_;
        clock_hand_ = (clock_hand_ + 1) % cap;
        if (f.pins > 0) continue;
        if (f.referenced) {
            f.referenced = false;
            continue;
        }
        victim = at;
        break;
    }
    if (victim < 0) {
        return serving::Status::Error(
            serving::StatusCode::kResourceExhausted,
            "page cache: all " + std::to_string(cap) +
                " frames are pinned");
    }

    Frame& f = frames_[static_cast<size_t>(victim)];
    if (f.page >= 0) {
        if (f.dirty) {
            if (auto s = WriteBackFrame(victim); !s.ok()) return s;
        }
        page_to_frame_.erase(f.page);
        stats_.evictions++;
        TELEMETRY_COUNT("store.cache.evict", 1);
    }
    f.page = -1;
    f.dirty = false;
    if (load_from_store) {
        std::span<uint8_t> dst{FrameData(victim),
                               static_cast<size_t>(page_bytes())};
        if (auto s = store_->ReadPage(page, dst); !s.ok()) return s;
        RecordHop(serving::FlightHop::kStoreFetch, page);
    }
    f.page = page;
    f.referenced = true;
    page_to_frame_[page] = victim;
    *frame_out = victim;
    return serving::Status::Ok();
}

serving::Status
PageCache::WriteBackFrame(int64_t frame)
{
    Frame& f = frames_[static_cast<size_t>(frame)];
    std::span<const uint8_t> src{FrameData(frame),
                                 static_cast<size_t>(page_bytes())};
    if (auto s = store_->WritePage(f.page, src); !s.ok()) return s;
    f.dirty = false;
    stats_.writebacks++;
    TELEMETRY_COUNT("store.cache.writeback", 1);
    RecordHop(serving::FlightHop::kStoreWriteback, f.page);
    return serving::Status::Ok();
}

void
PageCache::RecordHop(serving::FlightHop hop, int64_t page)
{
    auto* flight = flight_.load(std::memory_order_acquire);
    if (flight == nullptr) return;
    serving::FlightEvent event;
    event.t_ns = serving::DefaultClock().NowNs();
    event.detail = static_cast<uint32_t>(page);
    event.feature = flight_feature_;
    event.hop = hop;
    flight->Record(event);
}

serving::Status
PageCache::ReadPage(int64_t page, std::span<uint8_t> out)
{
    if (page < 0 || page >= num_pages() ||
        out.size() != static_cast<size_t>(page_bytes())) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "cache read: bad page " + std::to_string(page) +
                " or buffer size");
    }
    std::lock_guard<std::mutex> lock(mu_);
    int64_t frame = -1;
    if (auto s = FrameFor(page, true, &frame); !s.ok()) return s;
    std::memcpy(out.data(), FrameData(frame),
                static_cast<size_t>(page_bytes()));
    return serving::Status::Ok();
}

serving::Status
PageCache::WritePage(int64_t page, std::span<const uint8_t> in)
{
    if (page < 0 || page >= num_pages() ||
        in.size() != static_cast<size_t>(page_bytes())) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "cache write: bad page " + std::to_string(page) +
                " or buffer size");
    }
    std::lock_guard<std::mutex> lock(mu_);
    int64_t frame = -1;
    // The whole page is replaced, so a non-resident page needs no fetch.
    if (auto s = FrameFor(page, false, &frame); !s.ok()) return s;
    std::memcpy(FrameData(frame), in.data(),
                static_cast<size_t>(page_bytes()));
    frames_[static_cast<size_t>(frame)].dirty = true;
    return serving::Status::Ok();
}

serving::Status
PageCache::Pin(int64_t page, PinnedPage* out)
{
    if (page < 0 || page >= num_pages()) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "cache pin: bad page " + std::to_string(page));
    }
    out->Release();
    std::lock_guard<std::mutex> lock(mu_);
    int64_t frame = -1;
    if (auto s = FrameFor(page, true, &frame); !s.ok()) return s;
    frames_[static_cast<size_t>(frame)].pins++;
    out->cache_ = this;
    out->frame_ = frame;
    out->page_ = page;
    out->data_ = FrameData(frame);
    return serving::Status::Ok();
}

serving::Status
PageCache::FlushDirty()
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_.flushes++;
    for (int64_t i = 0; i < capacity_pages(); ++i) {
        const Frame& f = frames_[static_cast<size_t>(i)];
        if (f.page >= 0 && f.dirty) {
            if (auto s = WriteBackFrame(i); !s.ok()) return s;
        }
    }
    return serving::Status::Ok();
}

serving::Status
PageCache::Sync()
{
    if (auto s = FlushDirty(); !s.ok()) return s;
    std::lock_guard<std::mutex> lock(mu_);
    return store_->Sync();
}

void
PageCache::InvalidateClean()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& f : frames_) {
        if (f.page >= 0 && !f.dirty && f.pins == 0) {
            page_to_frame_.erase(f.page);
            f.page = -1;
            f.referenced = false;
        }
    }
}

PageCacheStats
PageCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
PageCache::Unpin(int64_t frame)
{
    std::lock_guard<std::mutex> lock(mu_);
    frames_[static_cast<size_t>(frame)].pins--;
}

void
PageCache::MarkFrameDirty(int64_t frame)
{
    std::lock_guard<std::mutex> lock(mu_);
    frames_[static_cast<size_t>(frame)].dirty = true;
}

serving::Status
MakePageCache(const StoreConfig& config, int64_t num_pages,
              std::unique_ptr<PageCache>* out)
{
    out->reset();
    std::unique_ptr<BackingStore> store;
    if (auto s = MakeBackingStore(config, num_pages, &store); !s.ok()) {
        return s;
    }
    *out = std::make_unique<PageCache>(std::move(store),
                                       config.cache_pages);
    return serving::Status::Ok();
}

}  // namespace secemb::store
