#include "store/paged_table.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "oblivious/ct_ops.h"
#include "telemetry/telemetry.h"
#include "tensor/parallel.h"

namespace secemb::store {

PagedTable::PagedTable(const float* data, int64_t rows, int64_t dim,
                       const StoreConfig& config)
    : rows_(rows), dim_(dim)
{
    const int64_t row_bytes = dim * static_cast<int64_t>(sizeof(float));
    rows_per_page_ = config.page_bytes / row_bytes;
    if (rows <= 0 || dim <= 0 || rows_per_page_ < 1) {
        ThrowIfError(serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "paged table: page_bytes " + std::to_string(config.page_bytes) +
                " cannot hold one row of dim " + std::to_string(dim)));
    }
    num_pages_ = (rows + rows_per_page_ - 1) / rows_per_page_;
    ThrowIfError(MakePageCache(config, num_pages_, &cache_));
    trace_base_ = sidechannel::ProcessAddressSpace().Reserve(
        static_cast<uint64_t>(num_pages_ * cache_->page_bytes()), 4096,
        "store.scan.pages");

    // Upload row-major data page by page (tail page zero-padded).
    std::vector<uint8_t> page(static_cast<size_t>(cache_->page_bytes()),
                              0);
    for (int64_t p = 0; p < num_pages_; ++p) {
        std::memset(page.data(), 0, page.size());
        const int64_t first = p * rows_per_page_;
        const int64_t count = std::min(rows_per_page_, rows - first);
        std::memcpy(page.data(), data + first * dim,
                    static_cast<size_t>(count * row_bytes));
        ThrowIfError(cache_->WritePage(p, page));
    }
}

serving::Status
PagedTable::Recover(int64_t rows, int64_t dim, const StoreConfig& config,
                    std::unique_ptr<PagedTable>* out)
{
    const int64_t row_bytes = dim * static_cast<int64_t>(sizeof(float));
    if (rows <= 0 || dim <= 0 || config.page_bytes < row_bytes) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "paged table recover: page_bytes " +
                std::to_string(config.page_bytes) +
                " cannot hold one row of dim " + std::to_string(dim));
    }
    auto table = std::unique_ptr<PagedTable>(new PagedTable());
    table->rows_ = rows;
    table->dim_ = dim;
    table->rows_per_page_ = config.page_bytes / row_bytes;
    table->num_pages_ =
        (rows + table->rows_per_page_ - 1) / table->rows_per_page_;
    StoreConfig open = config;
    open.create = false;  // the store header rejects wrong geometry
    if (auto s = MakePageCache(open, table->num_pages_, &table->cache_);
        !s.ok()) {
        return s;
    }
    table->trace_base_ = sidechannel::ProcessAddressSpace().Reserve(
        static_cast<uint64_t>(table->num_pages_ *
                              table->cache_->page_bytes()),
        4096, "store.scan.pages");
    *out = std::move(table);
    return serving::Status::Ok();
}

void
PagedTable::BlendPage(const float* page_rows, int64_t first_row,
                      int64_t rows_in_page,
                      std::span<const int64_t> indices, int64_t b0,
                      int64_t b1, float* out) const
{
    for (int64_t b = b0; b < b1; ++b) {
        const auto idx = static_cast<uint64_t>(indices[static_cast<size_t>(b)]);
        float* dst = out + b * dim_;
        for (int64_t r = 0; r < rows_in_page; ++r) {
            const uint64_t mask = oblivious::EqMask(
                static_cast<uint64_t>(first_row + r), idx);
            oblivious::CtCopyRow(
                mask,
                std::span<const float>(page_rows + r * dim_,
                                       static_cast<size_t>(dim_)),
                std::span<float>(dst, static_cast<size_t>(dim_)));
        }
    }
}

void
PagedTable::AccumulatePage(const float* page_rows, int64_t first_row,
                           int64_t rows_in_page,
                           std::span<const int64_t> indices,
                           std::span<const int64_t> offsets, int64_t b0,
                           int64_t b1, float* out) const
{
    for (int64_t b = b0; b < b1; ++b) {
        float* dst = out + b * dim_;
        for (int64_t k = offsets[static_cast<size_t>(b)];
             k < offsets[static_cast<size_t>(b) + 1]; ++k) {
            const auto idx =
                static_cast<uint64_t>(indices[static_cast<size_t>(k)]);
            for (int64_t r = 0; r < rows_in_page; ++r) {
                const uint64_t mask = oblivious::EqMask(
                    static_cast<uint64_t>(first_row + r), idx);
                const float* src = page_rows + r * dim_;
                for (int64_t c = 0; c < dim_; ++c) {
                    dst[c] += oblivious::SelectF32(mask, src[c], 0.0f);
                }
            }
        }
    }
}

serving::Status
PagedTable::LookupBatch(std::span<const int64_t> indices, float* out,
                        int nthreads)
{
    TELEMETRY_SPAN("store.paged_scan.batch");
    for (const int64_t idx : indices) {
        if (idx < 0 || idx >= rows_) {
            return serving::Status::Error(
                serving::StatusCode::kInvalidArgument,
                "index " + std::to_string(idx) + " out of range [0, " +
                    std::to_string(rows_) + ")");
        }
    }
    std::memset(out, 0, static_cast<size_t>(indices.size()) *
                            static_cast<size_t>(dim_) * sizeof(float));
    const auto batch = static_cast<int64_t>(indices.size());
    std::vector<uint8_t> page(static_cast<size_t>(cache_->page_bytes()));
    for (int64_t p = 0; p < num_pages_; ++p) {
        if (recorder_ != nullptr) {
            recorder_->Record(
                trace_base_ +
                    static_cast<uint64_t>(p * cache_->page_bytes()),
                static_cast<uint32_t>(cache_->page_bytes()), false);
        }
        if (auto s = cache_->ReadPage(p, page); !s.ok()) return s;
        const int64_t first = p * rows_per_page_;
        const int64_t count = std::min(rows_per_page_, rows_ - first);
        const auto* page_rows =
            reinterpret_cast<const float*>(page.data());
        ParallelFor(batch, nthreads, [&](int64_t b0, int64_t b1) {
            BlendPage(page_rows, first, count, indices, b0, b1, out);
        });
    }
    return serving::Status::Ok();
}

serving::Status
PagedTable::LookupPooled(std::span<const int64_t> indices,
                         std::span<const int64_t> offsets, float* out,
                         int nthreads)
{
    TELEMETRY_SPAN("store.paged_scan.pooled");
    if (offsets.size() < 1 || offsets.front() != 0 ||
        offsets.back() != static_cast<int64_t>(indices.size())) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "pooled lookup: bad offsets");
    }
    for (const int64_t idx : indices) {
        if (idx < 0 || idx >= rows_) {
            return serving::Status::Error(
                serving::StatusCode::kInvalidArgument,
                "index " + std::to_string(idx) + " out of range [0, " +
                    std::to_string(rows_) + ")");
        }
    }
    const auto bags = static_cast<int64_t>(offsets.size()) - 1;
    std::memset(out, 0, static_cast<size_t>(bags) *
                            static_cast<size_t>(dim_) * sizeof(float));
    std::vector<uint8_t> page(static_cast<size_t>(cache_->page_bytes()));
    for (int64_t p = 0; p < num_pages_; ++p) {
        if (recorder_ != nullptr) {
            recorder_->Record(
                trace_base_ +
                    static_cast<uint64_t>(p * cache_->page_bytes()),
                static_cast<uint32_t>(cache_->page_bytes()), false);
        }
        if (auto s = cache_->ReadPage(p, page); !s.ok()) return s;
        const int64_t first = p * rows_per_page_;
        const int64_t count = std::min(rows_per_page_, rows_ - first);
        const auto* page_rows =
            reinterpret_cast<const float*>(page.data());
        ParallelFor(bags, nthreads, [&](int64_t b0, int64_t b1) {
            AccumulatePage(page_rows, first, count, indices, offsets, b0,
                           b1, out);
        });
    }
    return serving::Status::Ok();
}

}  // namespace secemb::store
