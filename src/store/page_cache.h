#pragma once

/**
 * @file
 * Bounded in-memory page cache over a BackingStore.
 *
 * Classic buffer-pool design: a fixed number of page frames, a hash map
 * from page index to frame, clock (second-chance) eviction, pin counts
 * that exclude frames from eviction while a caller holds a PinnedPage
 * handle, and dirty write-back — a page modified in cache is written to
 * the store only when its frame is evicted or on FlushDirty()/Sync().
 *
 * Thread-safe: all operations take one internal mutex, so concurrent
 * readers and a write-back thread interleave safely (the TSan-certified
 * stress case). Pinned frame payloads may be read/written lock-free by
 * the pin holder; the frame cannot move or be evicted while pinned.
 *
 * Obliviousness note: the cache itself records no trace — the layers
 * above record *logical* page accesses before calling in. Because clock
 * eviction is a deterministic function of the logical access sequence and
 * the (public) capacity, the physical fetch/write-back schedule is a
 * public function of the certified logical schedule (DESIGN.md
 * "Out-of-core storage").
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "serving/flight_recorder.h"
#include "store/backing_store.h"

namespace secemb::store {

/** Cumulative cache counters (monotonic since construction). */
struct PageCacheStats
{
    int64_t hits = 0;        ///< requests served from a resident frame
    int64_t misses = 0;      ///< requests that fetched from the store
    int64_t evictions = 0;   ///< frames recycled by the clock hand
    int64_t writebacks = 0;  ///< dirty pages written to the store
    int64_t flushes = 0;     ///< FlushDirty()/Sync() calls
};

class PageCache;

/**
 * RAII pin on one cached page: the frame stays resident and immovable
 * until the handle is destroyed. data() is the live frame payload;
 * callers that modify it must MarkDirty() so eviction writes it back.
 */
class PinnedPage
{
  public:
    PinnedPage() = default;
    PinnedPage(PinnedPage&& other) noexcept { *this = std::move(other); }
    PinnedPage& operator=(PinnedPage&& other) noexcept;
    PinnedPage(const PinnedPage&) = delete;
    PinnedPage& operator=(const PinnedPage&) = delete;
    ~PinnedPage() { Release(); }

    uint8_t* data() { return data_; }
    const uint8_t* data() const { return data_; }
    int64_t page() const { return page_; }
    bool valid() const { return cache_ != nullptr; }

    /** Mark the pinned frame dirty (write-back on eviction/flush). */
    void MarkDirty();

    /** Unpin early (also done by the destructor). */
    void Release();

  private:
    friend class PageCache;
    PageCache* cache_ = nullptr;
    int64_t frame_ = -1;
    int64_t page_ = -1;
    uint8_t* data_ = nullptr;
};

class PageCache
{
  public:
    /**
     * @param store the backing store (owned)
     * @param capacity_pages frame count; clamped to [1, store pages]
     */
    PageCache(std::unique_ptr<BackingStore> store, int64_t capacity_pages);
    ~PageCache();

    int64_t page_bytes() const { return store_->page_bytes(); }
    int64_t num_pages() const { return store_->num_pages(); }
    int64_t capacity_pages() const
    {
        return static_cast<int64_t>(frames_.size());
    }

    /** Copy page `page` into out (exactly page_bytes). */
    serving::Status ReadPage(int64_t page, std::span<uint8_t> out);

    /** Replace page `page` from in; written back lazily. */
    serving::Status WritePage(int64_t page, std::span<const uint8_t> in);

    /** Pin page `page` resident and return a handle to its frame. */
    serving::Status Pin(int64_t page, PinnedPage* out);

    /** Write every dirty frame back to the store (frames stay resident). */
    serving::Status FlushDirty();

    /** FlushDirty() + durable store sync (checksum table, msync/fsync). */
    serving::Status Sync();

    /** Drop every clean resident frame (dirty/pinned frames stay). For
     *  tests that need a cold cache without rebuilding the store. */
    void InvalidateClean();

    PageCacheStats stats() const;

    /**
     * Route store_fetch / store_writeback lifecycle hops into a serving
     * flight recorder (any thread; nullptr disables). The event detail is
     * the page index — a public value, since the paged access schedules
     * are certified input-independent.
     */
    void set_flight(serving::FlightRecorder* flight, int16_t feature = -1)
    {
        flight_feature_ = feature;
        flight_.store(flight, std::memory_order_release);
    }

    BackingStore& store() { return *store_; }

  private:
    friend class PinnedPage;

    struct Frame
    {
        int64_t page = -1;  ///< resident page, -1 = free
        int pins = 0;
        bool dirty = false;
        bool referenced = false;  ///< clock second-chance bit
    };

    uint8_t* FrameData(int64_t frame)
    {
        return data_.data() + frame * store_->page_bytes();
    }

    /** Locate `page` in a frame, fetching and evicting as needed.
     *  Called with mu_ held. */
    serving::Status FrameFor(int64_t page, bool load_from_store,
                             int64_t* frame_out);

    /** Write frame's dirty payload back. Called with mu_ held. */
    serving::Status WriteBackFrame(int64_t frame);

    void Unpin(int64_t frame);
    void MarkFrameDirty(int64_t frame);
    void RecordHop(serving::FlightHop hop, int64_t page);

    mutable std::mutex mu_;
    std::unique_ptr<BackingStore> store_;
    std::vector<uint8_t> data_;
    std::vector<Frame> frames_;
    std::unordered_map<int64_t, int64_t> page_to_frame_;
    int64_t clock_hand_ = 0;
    PageCacheStats stats_;
    std::atomic<serving::FlightRecorder*> flight_{nullptr};
    int16_t flight_feature_ = -1;
};

/** Convenience: build the configured store + cache in one call. */
serving::Status MakePageCache(const StoreConfig& config, int64_t num_pages,
                              std::unique_ptr<PageCache>* out);

}  // namespace secemb::store
