#pragma once

/**
 * @file
 * Durable-state subsystem for the out-of-core oblivious tier: sealed
 * checkpoints of RAW ORAM client metadata plus a bounded write-ahead
 * journal of per-access deltas, so a SIGKILL'd process can reinterpret a
 * perfectly intact on-disk table instead of stranding it.
 *
 * Two files live next to the page store:
 *
 *   ckpt.bin     The full client state (posmap leaves, slot metadata,
 *                the ENTIRE stash including dummy slots, bucket versions,
 *                cipher seed, counters) serialized as one CRC-framed
 *                record and committed atomically: write a temp file,
 *                fsync it, rename over the live checkpoint, fsync the
 *                parent directory. Every checkpoint is a full sweep of
 *                fixed-size sections, so checkpoint size and write
 *                schedule are PUBLIC CONSTANTS of the geometry —
 *                independent of stash occupancy or access history (the
 *                side-channel obligation persistence adds; see DESIGN.md
 *                "Durability & crash recovery").
 *
 *   journal.bin  Append-only records framed
 *                [magic][type][seq][len][payload][crc32] with strictly
 *                monotonic sequence numbers. An access record carries the
 *                (id, new_leaf, op, payload) delta — payload included for
 *                reads too, because a RAW read moves the block into the
 *                RAM stash and invalidates the on-disk copy. An eviction
 *                record carries the decrypted pre-image of the pulled
 *                path, journaled BEFORE any page write-back, so replay
 *                re-executes the deterministic repack/re-encrypt/write
 *                idempotently without journaling page images. The journal
 *                is reset atomically (temp+rename) after each checkpoint;
 *                its length is bounded by DurabilityConfig::journal_limit.
 *
 * Recovery loads the checkpoint, verifies its CRC, replays the journal
 * with strict sequence continuity, and fails closed with typed
 * serving::Status errors on a torn checkpoint, a corrupt mid-journal
 * record, or a duplicated/reordered sequence number. Only a damaged
 * FINAL record with nothing valid beyond it is treated as a droppable
 * tail — the one state a single-appender crash can legally leave, and
 * side-effect-free by construction (page writes are ordered after their
 * record's fsync).
 *
 * Crash sites (SetCrashPlanForTest) let the kill-based harness SIGKILL
 * the process deterministically mid-journal-append or mid-checkpoint;
 * the IO paths also check the src/fault kIoOpen/kIoRead/kIoWrite sites
 * so the chaos matrix covers torn/short/failed checkpoint writes.
 */

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serving/status.h"

namespace secemb::store {

/** Durability tunables for one RawOram instance (part of RawOramConfig). */
struct DurabilityConfig
{
    /** Directory for ckpt.bin / journal.bin; empty = durability off. */
    std::string dir;
    /** Accesses between automatic checkpoints (0 = only journal_limit
     *  and explicit Checkpoint() calls trigger one). */
    int64_t checkpoint_interval = 0;
    /** Journal records before a checkpoint is forced (bounded WAL). */
    int64_t journal_limit = 4096;
    /** fsync the journal after every appended record. Required for the
     *  "no acknowledged write lost" guarantee; false trades it for
     *  throughput (data loss window = records since last sync). */
    bool sync_each_append = true;
    /**
     * NEGATIVE CONTROL (leakage tests only): checkpoint only the
     * occupied stash entries instead of the full fixed-size sweep. The
     * checkpoint size then depends on the secret duplicate structure of
     * the access history — exactly the leak the full-sweep format
     * exists to prevent — and the statistical verify engine must reject
     * it. Such checkpoints are refused at recovery.
     */
    bool unsafe_sparse_checkpoint = false;

    bool enabled() const { return !dir.empty(); }
};

/** What recovery found and did (also surfaced by RawOram::Recover). */
struct RecoveryStats
{
    uint64_t checkpoint_seq = 0;   ///< last seq covered by the checkpoint
    uint64_t last_seq = 0;         ///< last seq after journal replay
    int64_t replayed_accesses = 0;
    int64_t replayed_evictions = 0;
    int64_t skipped_records = 0;   ///< seq <= checkpoint_seq (pre-reset)
    bool dropped_tail = false;     ///< damaged final record discarded
    int64_t dropped_tail_bytes = 0;
};

/** fsync an open-able directory so a create/rename inside it is durable. */
serving::Status FsyncDir(const std::string& dir_path);

/** FsyncDir of the directory containing `file_path`. */
serving::Status FsyncParentDir(const std::string& file_path);

// ---------------------------------------------------------------------------
// Crash sites: deterministic SIGKILL points for the kill-based harness.
// ---------------------------------------------------------------------------

enum class CrashSite : int
{
    kNone = 0,
    kJournalAppendPartial,        ///< half the record written, then kill
    kJournalAppendAfter,          ///< record durable, ack not yet sent
    kCheckpointTempPartial,       ///< half the temp checkpoint, then kill
    kCheckpointTempBeforeRename,  ///< temp durable, rename not done
    kCheckpointAfterRename,       ///< renamed, journal not yet reset
    kEvictAfterJournal,           ///< evict record durable, no page writes
    kEvictMidPages,               ///< one path page written, rest not
    kCount,
};

/**
 * Arm one crash site: the `countdown`-th hit raises SIGKILL (countdown 1
 * = first hit). Survives fork(); the harness arms it in the child. Plans
 * are process-local and cleared by ClearCrashPlanForTest().
 */
void SetCrashPlanForTest(CrashSite site, int64_t countdown);
void ClearCrashPlanForTest();

/** True (and consumes the hit) iff the armed plan fires at `site` now.
 *  Partial-write sites use the return value to write half, then call
 *  CrashNowForTest(); whole-op sites pass kill_immediately = true. */
bool CrashHit(CrashSite site);
[[noreturn]] void CrashNowForTest();

/** CrashHit + immediate SIGKILL — for sites with no partial write. */
void MaybeCrash(CrashSite site);

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

enum class JournalRecordType : uint32_t
{
    kAccess = 1,
    kEvict = 2,
};

/** Fixed framing sizes (public constants; tests craft records with them). */
int64_t JournalFileHeaderBytes();
int64_t JournalRecordBytes(int64_t payload_bytes);
/** Payload size of an access record for a given block width. */
int64_t JournalAccessPayloadBytes(int64_t block_words);
/** Payload size of an eviction record: (levels+1)*Z path-slot entries. */
int64_t JournalEvictPayloadBytes(int64_t path_slots, int64_t block_words);

/** Serialize one framed record (exposed so tests can craft journals). */
void AppendJournalRecordBytes(std::vector<uint8_t>* out,
                              JournalRecordType type, uint64_t seq,
                              std::span<const uint8_t> payload);

/**
 * Append-side handle on journal.bin. Reset() atomically replaces the file
 * with a fresh header (temp + fsync + rename + fsync-dir) and keeps the
 * fd open for appends; OpenForAppend() resumes an existing journal after
 * recovery.
 */
class Journal
{
  public:
    Journal() = default;
    ~Journal();
    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    serving::Status Reset(const std::string& path, uint64_t base_seq,
                          uint64_t geometry_hash);
    serving::Status OpenForAppend(const std::string& path,
                                  int64_t records, int64_t bytes);
    serving::Status Append(JournalRecordType type, uint64_t seq,
                           std::span<const uint8_t> payload, bool sync);

    bool open() const { return fd_ >= 0; }
    uint64_t base_seq() const { return base_seq_; }
    int64_t records() const { return records_; }
    /** File bytes past the header (the public journal write cursor). */
    int64_t bytes() const { return bytes_; }

  private:
    void Close();

    int fd_ = -1;
    std::string path_;
    uint64_t base_seq_ = 0;
    int64_t records_ = 0;
    int64_t bytes_ = 0;
};

/** One parsed journal record. */
struct JournalRecord
{
    JournalRecordType type = JournalRecordType::kAccess;
    uint64_t seq = 0;
    std::vector<uint8_t> payload;
};

/** Result of loading a journal for replay. */
struct JournalLoadResult
{
    uint64_t base_seq = 0;
    std::vector<JournalRecord> records;  ///< seq > skip_through, contiguous
    int64_t skipped = 0;                 ///< records with seq <= skip_through
    bool dropped_tail = false;
    int64_t dropped_tail_bytes = 0;
    int64_t file_bytes = 0;              ///< valid prefix incl. header
};

/**
 * Parse journal.bin. Records with seq <= `skip_through` are skipped (the
 * crash-between-checkpoint-rename-and-journal-reset window); the first
 * kept record must be skip_through+1 and each next exactly +1, else
 * kInternal. A damaged record is a droppable tail only if no valid record
 * exists beyond it; otherwise kInternal (mid-journal corruption).
 * `geometry_hash` must match the header's.
 */
serving::Status LoadJournal(const std::string& path, uint64_t geometry_hash,
                            uint64_t skip_through, JournalLoadResult* out);

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

/** The complete RAM-authoritative client state of one RawOram. */
struct CheckpointData
{
    // Geometry (validated against the recovering instance).
    int64_t num_blocks = 0;
    int64_t block_words = 0;
    int64_t bucket_slots = 0;
    int64_t levels = 0;
    int64_t stash_capacity = 0;
    int64_t eviction_period = 0;

    uint64_t cipher_seed = 0;
    uint64_t evict_counter = 0;
    uint64_t last_seq = 0;  ///< journal records <= this are in the state
    int64_t accesses = 0;
    int64_t evictions = 0;

    std::vector<uint32_t> posmap_leaves;   ///< num_blocks
    std::vector<uint64_t> slot_id;         ///< num_buckets * Z
    std::vector<uint32_t> slot_leaf;       ///< num_buckets * Z
    std::vector<uint64_t> stash_id;        ///< stash_capacity (full sweep)
    std::vector<uint32_t> stash_leaf;      ///< stash_capacity
    std::vector<uint32_t> stash_data;      ///< stash_capacity * block_words
    std::vector<uint64_t> bucket_version;  ///< num_buckets

    int64_t num_buckets() const { return 2 * (int64_t{1} << levels) - 1; }
};

/** Hash of the geometry fields (binds journal to checkpoint format). */
uint64_t DurableGeometryHash(const CheckpointData& data);

/** Serialized checkpoint size — a pure function of the geometry (the
 *  public-schedule constant the leakage proof relies on). */
int64_t CheckpointSerializedBytes(int64_t num_blocks, int64_t block_words,
                                  int64_t bucket_slots, int64_t levels,
                                  int64_t stash_capacity);

/**
 * Commit `data` to `path` atomically: serialize (full sweep, CRC framed),
 * write `path`.tmp, fsync, rename over `path`, fsync the parent dir.
 * `sparse_negative_control` selects the leaky variable-size format (see
 * DurabilityConfig::unsafe_sparse_checkpoint). bytes_out (optional)
 * receives the serialized size.
 */
serving::Status WriteCheckpointAtomic(const std::string& path,
                                      const CheckpointData& data,
                                      bool sparse_negative_control,
                                      int64_t* bytes_out);

/** Load + CRC-verify a checkpoint; rejects sparse (negative-control)
 *  checkpoints and torn/truncated files with typed kInternal errors. */
serving::Status ReadCheckpoint(const std::string& path,
                               CheckpointData* out);

}  // namespace secemb::store
