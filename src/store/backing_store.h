#pragma once

/**
 * @file
 * Pluggable page-granular backing stores for out-of-core oblivious tables
 * (ROADMAP item 2, modeled on FEDORA-OramSim's disk_memory /
 * memory_adapters design).
 *
 * A BackingStore is an array of fixed-size pages addressed by page index.
 * Page size is chosen so one ORAM bucket or one scan stripe costs exactly
 * one page — the page-fetch schedule is the out-of-core side channel, and
 * the layers above (store::PagedTable, store::RawOram) keep that schedule
 * secret-independent.
 *
 * Three backends:
 *   - MemoryStore : heap-resident (tests, verify harness)
 *   - FileStore   : pread/pwrite on a flat file
 *   - MmapStore   : the same file format through a shared mapping
 *
 * Every IO failure surfaces as a typed serving::Status, never an untyped
 * exception: chaos tests assert on status codes per fault class
 * (src/fault IO sites + CorruptFileBytes / TruncateFile). File-backed
 * stores maintain a per-page CRC32 table in the file header, so torn
 * writes and bit flips are detected as kInternal checksum mismatches on
 * the next read instead of silently corrupting embeddings.
 */

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "serving/status.h"

namespace secemb::store {

/** Which BackingStore implementation a StoreConfig selects. */
enum class StoreBackend
{
    kMemory,  ///< heap-resident pages
    kFile,    ///< flat file via pread/pwrite
    kMmap,    ///< flat file via a shared mapping
};

/** Stable CLI name: "memory", "file", "mmap". */
const char* StoreBackendName(StoreBackend backend);

/** Parse a StoreBackendName; returns false on unknown name. */
bool ParseStoreBackend(const std::string& name, StoreBackend* out);

/** Configuration for a backing store and the page cache above it. */
struct StoreConfig
{
    StoreBackend backend = StoreBackend::kMemory;
    /** Store file path (file/mmap backends). */
    std::string path;
    /** Bytes per page; one ORAM bucket / scan stripe = one page. */
    int64_t page_bytes = 4096;
    /** Page-cache capacity in pages (the bounded in-RAM working set). */
    int64_t cache_pages = 64;
    /** true: create/truncate the file; false: open an existing store and
     *  validate its header against page_bytes / num_pages. */
    bool create = true;
    /** Maintain + verify the per-page CRC32 table (file/mmap). */
    bool checksum_pages = true;
};

/**
 * Exception bridge for callers whose interface cannot return a Status
 * (EmbeddingGenerator::Generate): store layers throw StoreError carrying
 * the typed status, and the serving layer maps it back to the status
 * code, so chaos tests see the same typed outcome either way.
 */
class StoreError : public std::runtime_error
{
  public:
    explicit StoreError(serving::Status status)
        : std::runtime_error(status.ToString()), status_(std::move(status))
    {
    }

    const serving::Status& status() const { return status_; }

  private:
    serving::Status status_;
};

/** Throw StoreError(status) unless status.ok(). */
inline void
ThrowIfError(const serving::Status& status)
{
    if (!status.ok()) throw StoreError(status);
}

/** An array of `num_pages` pages of `page_bytes` each. */
class BackingStore
{
  public:
    virtual ~BackingStore() = default;

    int64_t page_bytes() const { return page_bytes_; }
    int64_t num_pages() const { return num_pages_; }

    /** Read page `page` into out (exactly page_bytes). */
    virtual serving::Status ReadPage(int64_t page,
                                     std::span<uint8_t> out) = 0;

    /** Write page `page` from in (exactly page_bytes). */
    virtual serving::Status WritePage(int64_t page,
                                      std::span<const uint8_t> in) = 0;

    /** Flush buffered state (checksum table, dirty mapping) durably. */
    virtual serving::Status Sync() = 0;

    /** Backend name for reports ("memory", "file", "mmap"). */
    virtual std::string_view backend_name() const = 0;

  protected:
    BackingStore(int64_t page_bytes, int64_t num_pages)
        : page_bytes_(page_bytes), num_pages_(num_pages)
    {
    }

    /** Shared bounds/size validation for Read/WritePage. */
    serving::Status CheckPageArgs(int64_t page, size_t span_bytes) const;

    int64_t page_bytes_;
    int64_t num_pages_;
};

/**
 * Build the configured backend sized at `num_pages` pages. On failure the
 * status is typed: kInvalidArgument for bad geometry or a header mismatch,
 * kInternal for open/IO failures (including the injected kIoOpen fault),
 * kResourceExhausted when the file cannot be grown.
 */
serving::Status MakeBackingStore(const StoreConfig& config,
                                 int64_t num_pages,
                                 std::unique_ptr<BackingStore>* out);

/** CRC32 (IEEE, reflected) of a byte span — the per-page checksum. */
uint32_t Crc32(std::span<const uint8_t> data);

/** Offset of the first data page in the store file format (the header
 *  with magic + geometry + CRC table, rounded up to page alignment). */
int64_t StoreFileDataOffset(int64_t page_bytes, int64_t num_pages);

}  // namespace secemb::store
