#include "store/backing_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <vector>

#include "fault/fault.h"
#include "store/durable.h"
#include "telemetry/telemetry.h"

namespace secemb::store {

namespace {

constexpr char kMagic[8] = {'S', 'E', 'C', 'E', 'M', 'B', 'P', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr int64_t kHeaderFixedBytes = 32;  ///< magic + version + geometry

struct StoreHeader
{
    char magic[8];
    uint32_t version;
    uint32_t flags;  ///< bit 0: per-page checksums maintained
    int64_t page_bytes;
    int64_t num_pages;
};
static_assert(sizeof(StoreHeader) == kHeaderFixedBytes);

int64_t
AlignUp(int64_t v, int64_t align)
{
    return (v + align - 1) / align * align;
}

serving::Status
Errno(serving::StatusCode code, const std::string& what)
{
    return serving::Status::Error(
        code, what + ": " + std::strerror(errno));
}

/** Injected open failure (FaultSite::kIoOpen). */
serving::Status
CheckOpenFault()
{
    if (fault::ShouldInject(fault::FaultSite::kIoOpen)) {
        return serving::Status::Error(serving::StatusCode::kInternal,
                                      "injected open failure");
    }
    return serving::Status::Ok();
}

/** Injected read error (FaultSite::kIoRead — models EIO). */
serving::Status
CheckReadFault()
{
    if (fault::ShouldInject(fault::FaultSite::kIoRead)) {
        return serving::Status::Error(serving::StatusCode::kInternal,
                                      "injected read failure (EIO)");
    }
    return serving::Status::Ok();
}

/** Injected write-space exhaustion (FaultSite::kIoWrite — ENOSPC). */
serving::Status
CheckWriteFault()
{
    if (fault::ShouldInject(fault::FaultSite::kIoWrite)) {
        return serving::Status::Error(
            serving::StatusCode::kResourceExhausted,
            "injected write failure (ENOSPC)");
    }
    return serving::Status::Ok();
}

class MemoryStore final : public BackingStore
{
  public:
    MemoryStore(int64_t page_bytes, int64_t num_pages)
        : BackingStore(page_bytes, num_pages),
          data_(static_cast<size_t>(page_bytes * num_pages), 0)
    {
    }

    serving::Status
    ReadPage(int64_t page, std::span<uint8_t> out) override
    {
        if (auto s = CheckPageArgs(page, out.size()); !s.ok()) return s;
        if (auto s = CheckReadFault(); !s.ok()) return s;
        std::memcpy(out.data(), data_.data() + page * page_bytes_,
                    static_cast<size_t>(page_bytes_));
        return serving::Status::Ok();
    }

    serving::Status
    WritePage(int64_t page, std::span<const uint8_t> in) override
    {
        if (auto s = CheckPageArgs(page, in.size()); !s.ok()) return s;
        if (auto s = CheckWriteFault(); !s.ok()) return s;
        std::memcpy(data_.data() + page * page_bytes_, in.data(),
                    static_cast<size_t>(page_bytes_));
        return serving::Status::Ok();
    }

    serving::Status Sync() override { return serving::Status::Ok(); }
    std::string_view backend_name() const override { return "memory"; }

  private:
    std::vector<uint8_t> data_;
};

/**
 * Shared file-format logic for the file and mmap backends: header
 * management, CRC table, geometry validation.
 */
class FileStoreBase : public BackingStore
{
  public:
    FileStoreBase(const StoreConfig& config, int64_t num_pages)
        : BackingStore(config.page_bytes, num_pages),
          path_(config.path),
          checksums_(config.checksum_pages),
          data_offset_(StoreFileDataOffset(config.page_bytes, num_pages))
    {
    }

    ~FileStoreBase() override
    {
        if (fd_ >= 0) ::close(fd_);
    }

    /** Open/create the file and load or initialise the header. */
    serving::Status
    OpenFile(bool create)
    {
        if (auto s = CheckOpenFault(); !s.ok()) return s;
        const int flags = O_RDWR | (create ? O_CREAT | O_TRUNC : 0);
        fd_ = ::open(path_.c_str(), flags, 0644);
        if (fd_ < 0) {
            return Errno(serving::StatusCode::kInternal,
                         "open " + path_);
        }
        if (create) {
            if (auto s = InitialiseFile(); !s.ok()) return s;
            // The new directory entry must itself be durable: without
            // this, a freshly created table can vanish after a crash
            // even though Sync() on the file succeeded.
            return FsyncParentDir(path_);
        }
        return LoadHeader();
    }

  protected:
    serving::Status
    InitialiseFile()
    {
        const int64_t total = data_offset_ + num_pages_ * page_bytes_;
        if (::ftruncate(fd_, total) != 0) {
            return Errno(serving::StatusCode::kResourceExhausted,
                         "ftruncate " + path_);
        }
        // A fresh store is all-zero pages (ftruncate gives sparse zeros).
        crc_.assign(static_cast<size_t>(num_pages_), ZeroPageCrc());
        return WriteHeader(true);
    }

    serving::Status
    LoadHeader()
    {
        StoreHeader h{};
        if (::pread(fd_, &h, sizeof(h), 0) !=
            static_cast<ssize_t>(sizeof(h))) {
            return serving::Status::Error(
                serving::StatusCode::kInternal,
                "short read of store header in " + path_);
        }
        if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0 ||
            h.version != kFormatVersion) {
            return serving::Status::Error(
                serving::StatusCode::kInvalidArgument,
                path_ + " is not a secemb page store");
        }
        if (h.page_bytes != page_bytes_ || h.num_pages != num_pages_) {
            return serving::Status::Error(
                serving::StatusCode::kInvalidArgument,
                "store geometry mismatch in " + path_);
        }
        checksums_ = (h.flags & 1u) != 0 && checksums_;
        crc_.assign(static_cast<size_t>(num_pages_), 0);
        const size_t crc_bytes = crc_.size() * sizeof(uint32_t);
        if (crc_bytes > 0 &&
            ::pread(fd_, crc_.data(), crc_bytes, kHeaderFixedBytes) !=
                static_cast<ssize_t>(crc_bytes)) {
            return serving::Status::Error(
                serving::StatusCode::kInternal,
                "short read of checksum table in " + path_);
        }
        return serving::Status::Ok();
    }

    /** Persist the header and CRC table (the store's metadata commit). */
    serving::Status
    WriteHeader(bool with_fault_site)
    {
        if (with_fault_site) {
            if (auto s = CheckWriteFault(); !s.ok()) return s;
        }
        StoreHeader h{};
        std::memcpy(h.magic, kMagic, sizeof(kMagic));
        h.version = kFormatVersion;
        h.flags = checksums_ ? 1u : 0u;
        h.page_bytes = page_bytes_;
        h.num_pages = num_pages_;
        if (::pwrite(fd_, &h, sizeof(h), 0) !=
            static_cast<ssize_t>(sizeof(h))) {
            return Errno(serving::StatusCode::kResourceExhausted,
                         "write store header " + path_);
        }
        const size_t crc_bytes = crc_.size() * sizeof(uint32_t);
        if (crc_bytes > 0 &&
            ::pwrite(fd_, crc_.data(), crc_bytes, kHeaderFixedBytes) !=
                static_cast<ssize_t>(crc_bytes)) {
            return Errno(serving::StatusCode::kResourceExhausted,
                         "write checksum table " + path_);
        }
        return serving::Status::Ok();
    }

    uint32_t
    ZeroPageCrc() const
    {
        const std::vector<uint8_t> zero(
            static_cast<size_t>(page_bytes_), 0);
        return Crc32(zero);
    }

    serving::Status
    VerifyCrc(int64_t page, std::span<const uint8_t> data) const
    {
        if (!checksums_) return serving::Status::Ok();
        const uint32_t got = Crc32(data);
        if (got != crc_[static_cast<size_t>(page)]) {
            return serving::Status::Error(
                serving::StatusCode::kInternal,
                "checksum mismatch on page " + std::to_string(page) +
                    " of " + path_ + " (torn write or corruption)");
        }
        return serving::Status::Ok();
    }

    void
    UpdateCrc(int64_t page, std::span<const uint8_t> data)
    {
        if (checksums_) crc_[static_cast<size_t>(page)] = Crc32(data);
    }

    std::string path_;
    bool checksums_;
    int64_t data_offset_;
    int fd_ = -1;
    std::vector<uint32_t> crc_;
};

class FileStore final : public FileStoreBase
{
  public:
    using FileStoreBase::FileStoreBase;

    ~FileStore() override
    {
        // Best-effort metadata flush; no fault sites in a destructor so
        // seeded hit ordinals stay a pure function of the op sequence.
        if (fd_ >= 0) (void)WriteHeader(false);
    }

    serving::Status
    ReadPage(int64_t page, std::span<uint8_t> out) override
    {
        if (auto s = CheckPageArgs(page, out.size()); !s.ok()) return s;
        if (auto s = CheckReadFault(); !s.ok()) return s;
        TELEMETRY_COUNT("store.file.read_pages", 1);
        const ssize_t n = ::pread(fd_, out.data(),
                                  static_cast<size_t>(page_bytes_),
                                  data_offset_ + page * page_bytes_);
        if (n < 0) {
            return Errno(serving::StatusCode::kInternal,
                         "pread " + path_);
        }
        if (n != page_bytes_) {
            return serving::Status::Error(
                serving::StatusCode::kInternal,
                "short read: page " + std::to_string(page) + " of " +
                    path_ + " returned " + std::to_string(n) + "/" +
                    std::to_string(page_bytes_) + " bytes");
        }
        return VerifyCrc(page, {out.data(), out.size()});
    }

    serving::Status
    WritePage(int64_t page, std::span<const uint8_t> in) override
    {
        if (auto s = CheckPageArgs(page, in.size()); !s.ok()) return s;
        if (auto s = CheckWriteFault(); !s.ok()) return s;
        TELEMETRY_COUNT("store.file.write_pages", 1);
        const ssize_t n = ::pwrite(fd_, in.data(),
                                   static_cast<size_t>(page_bytes_),
                                   data_offset_ + page * page_bytes_);
        if (n != page_bytes_) {
            return Errno(serving::StatusCode::kResourceExhausted,
                         "pwrite " + path_);
        }
        UpdateCrc(page, in);
        return serving::Status::Ok();
    }

    serving::Status
    Sync() override
    {
        if (auto s = WriteHeader(true); !s.ok()) return s;
        if (::fsync(fd_) != 0) {
            return Errno(serving::StatusCode::kInternal,
                         "fsync " + path_);
        }
        return serving::Status::Ok();
    }

    std::string_view backend_name() const override { return "file"; }
};

class MmapStore final : public FileStoreBase
{
  public:
    using FileStoreBase::FileStoreBase;

    ~MmapStore() override
    {
        if (map_ != nullptr) {
            SaveCrcToMap();
            ::munmap(map_, static_cast<size_t>(map_bytes_));
        }
    }

    serving::Status
    Map(bool create)
    {
        map_bytes_ = data_offset_ + num_pages_ * page_bytes_;
        if (!create) {
            // A truncated or grown file would SIGBUS through the mapping;
            // validate the size up front and fail typed instead.
            struct stat st{};
            if (::fstat(fd_, &st) != 0) {
                return Errno(serving::StatusCode::kInternal,
                             "fstat " + path_);
            }
            if (st.st_size != map_bytes_) {
                return serving::Status::Error(
                    serving::StatusCode::kInternal,
                    "store file " + path_ + " is " +
                        std::to_string(st.st_size) + " bytes, expected " +
                        std::to_string(map_bytes_) +
                        " (truncated or partially written)");
            }
        }
        void* p = ::mmap(nullptr, static_cast<size_t>(map_bytes_),
                         PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
        if (p == MAP_FAILED) {
            return Errno(serving::StatusCode::kInternal,
                         "mmap " + path_);
        }
        map_ = static_cast<uint8_t*>(p);
        return serving::Status::Ok();
    }

    serving::Status
    ReadPage(int64_t page, std::span<uint8_t> out) override
    {
        if (auto s = CheckPageArgs(page, out.size()); !s.ok()) return s;
        if (auto s = CheckReadFault(); !s.ok()) return s;
        TELEMETRY_COUNT("store.mmap.read_pages", 1);
        const uint8_t* src = map_ + data_offset_ + page * page_bytes_;
        std::memcpy(out.data(), src, static_cast<size_t>(page_bytes_));
        return VerifyCrc(page, {out.data(), out.size()});
    }

    serving::Status
    WritePage(int64_t page, std::span<const uint8_t> in) override
    {
        if (auto s = CheckPageArgs(page, in.size()); !s.ok()) return s;
        if (auto s = CheckWriteFault(); !s.ok()) return s;
        TELEMETRY_COUNT("store.mmap.write_pages", 1);
        std::memcpy(map_ + data_offset_ + page * page_bytes_, in.data(),
                    static_cast<size_t>(page_bytes_));
        UpdateCrc(page, in);
        return serving::Status::Ok();
    }

    serving::Status
    Sync() override
    {
        if (auto s = CheckWriteFault(); !s.ok()) return s;
        SaveCrcToMap();
        if (::msync(map_, static_cast<size_t>(map_bytes_), MS_SYNC) != 0) {
            return Errno(serving::StatusCode::kInternal,
                         "msync " + path_);
        }
        return serving::Status::Ok();
    }

    std::string_view backend_name() const override { return "mmap"; }

  private:
    void
    SaveCrcToMap()
    {
        StoreHeader h{};
        std::memcpy(h.magic, kMagic, sizeof(kMagic));
        h.version = kFormatVersion;
        h.flags = checksums_ ? 1u : 0u;
        h.page_bytes = page_bytes_;
        h.num_pages = num_pages_;
        std::memcpy(map_, &h, sizeof(h));
        if (!crc_.empty()) {
            std::memcpy(map_ + kHeaderFixedBytes, crc_.data(),
                        crc_.size() * sizeof(uint32_t));
        }
    }

    uint8_t* map_ = nullptr;
    int64_t map_bytes_ = 0;
};

}  // namespace

const char*
StoreBackendName(StoreBackend backend)
{
    switch (backend) {
      case StoreBackend::kMemory: return "memory";
      case StoreBackend::kFile: return "file";
      case StoreBackend::kMmap: return "mmap";
    }
    return "unknown";
}

bool
ParseStoreBackend(const std::string& name, StoreBackend* out)
{
    for (StoreBackend b : {StoreBackend::kMemory, StoreBackend::kFile,
                           StoreBackend::kMmap}) {
        if (name == StoreBackendName(b)) {
            *out = b;
            return true;
        }
    }
    return false;
}

serving::Status
BackingStore::CheckPageArgs(int64_t page, size_t span_bytes) const
{
    if (page < 0 || page >= num_pages_) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "page " + std::to_string(page) + " out of range [0, " +
                std::to_string(num_pages_) + ")");
    }
    if (span_bytes != static_cast<size_t>(page_bytes_)) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "page buffer is " + std::to_string(span_bytes) +
                " bytes, store page is " + std::to_string(page_bytes_));
    }
    return serving::Status::Ok();
}

int64_t
StoreFileDataOffset(int64_t page_bytes, int64_t num_pages)
{
    return AlignUp(kHeaderFixedBytes +
                       num_pages * static_cast<int64_t>(sizeof(uint32_t)),
                   page_bytes);
}

uint32_t
Crc32(std::span<const uint8_t> data)
{
    static const auto table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            }
            t[i] = c;
        }
        return t;
    }();
    uint32_t crc = 0xffffffffu;
    for (const uint8_t b : data) {
        crc = table[(crc ^ b) & 0xffu] ^ (crc >> 8);
    }
    return crc ^ 0xffffffffu;
}

serving::Status
MakeBackingStore(const StoreConfig& config, int64_t num_pages,
                 std::unique_ptr<BackingStore>* out)
{
    out->reset();
    if (config.page_bytes < 16 || config.page_bytes % 8 != 0) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "page_bytes must be >= 16 and a multiple of 8, got " +
                std::to_string(config.page_bytes));
    }
    if (num_pages <= 0) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "num_pages must be positive, got " +
                std::to_string(num_pages));
    }
    switch (config.backend) {
      case StoreBackend::kMemory:
        if (auto s = CheckOpenFault(); !s.ok()) return s;
        *out = std::make_unique<MemoryStore>(config.page_bytes, num_pages);
        return serving::Status::Ok();
      case StoreBackend::kFile: {
        if (config.path.empty()) {
            return serving::Status::Error(
                serving::StatusCode::kInvalidArgument,
                "file backend requires a path");
        }
        auto store = std::make_unique<FileStore>(config, num_pages);
        if (auto s = store->OpenFile(config.create); !s.ok()) return s;
        *out = std::move(store);
        return serving::Status::Ok();
      }
      case StoreBackend::kMmap: {
        if (config.path.empty()) {
            return serving::Status::Error(
                serving::StatusCode::kInvalidArgument,
                "mmap backend requires a path");
        }
        auto store = std::make_unique<MmapStore>(config, num_pages);
        if (auto s = store->OpenFile(config.create); !s.ok()) return s;
        if (auto s = store->Map(config.create); !s.ok()) return s;
        *out = std::move(store);
        return serving::Status::Ok();
      }
    }
    return serving::Status::Error(serving::StatusCode::kInvalidArgument,
                                  "unknown store backend");
}

}  // namespace secemb::store
