#pragma once

/**
 * @file
 * Page-optimized RAW ORAM for out-of-core embedding tables (after
 * FEDORA-OramSim's page_optimized_raw_oram; the write-aware shape LAORAM
 * argues for at this scale).
 *
 * Layout: one tree bucket = one backing-store page, so bucket capacity
 * Z = page_bytes / block_bytes is large (a 4 KiB page holds 64 dim-16
 * rows) and the tree is shallow. Block metadata (slot ids + leaves) and
 * the stash stay client-side in RAM; only payload words live out of
 * core — FEDORA's split between index structures and page data.
 *
 * RAW (read/write-asymmetric) schedule:
 *  - Read path: fetch the levels+1 pages on the secret block's (random,
 *    never-reused) leaf path, obliviously extract the block into the
 *    stash, remap its leaf — and write NOTHING back. The extracted slot
 *    is invalidated in the RAM metadata; the stale on-disk payload is
 *    harmless because metadata is authoritative. Because whole pages are
 *    fetched (not single slots), repeated touches of a bucket leak no
 *    intra-bucket state, so the Ring-ORAM reshuffle machinery is not
 *    needed.
 *  - Eviction: every A accesses (eviction_period), one path in
 *    reverse-lexicographic order is read, merged with the stash, greedily
 *    repacked deepest-first with constant-time selects, re-encrypted
 *    under a bumped version, and written back. Reads therefore cost
 *    levels+1 page fetches; writes are amortized to (levels+1)/A pages
 *    per access.
 *
 * Observable schedule (recorded trace): page fetches/writes in
 * "store.oram.pages" (leaf paths = uniform randomness + the public
 * eviction counter), whole-stash scans in "store.raworam.stash", and
 * per-bucket metadata scans in "store.raworam.meta" — certified by the
 * verify harness as subject "raw_oram".
 */

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "oram/crypto.h"
#include "oram/params.h"
#include "oram/tree_oram.h"
#include "sidechannel/trace.h"
#include "store/durable.h"
#include "store/page_cache.h"
#include "tensor/rng.h"

namespace secemb::store {

/** Tunables for one RawOram instance. */
struct RawOramConfig
{
    /** A: accesses between eviction passes. */
    int64_t eviction_period = 8;
    /** Client-side stash slots; 0 = auto (path capacity + margin). */
    int64_t stash_capacity = 0;
    /** CTR re-encryption of every page written back. */
    bool encrypt_payloads = true;
    /** Position-map tunables (recursion threshold, fanout, recorder). */
    oram::OramParams posmap = oram::OramParams::Defaults(
        oram::OramKind::kPath);
    /** Trace sink for page/stash/metadata accesses (nullptr = off). */
    sidechannel::TraceRecorder* recorder = nullptr;
    /**
     * Crash consistency: checkpoint + write-ahead journal directory and
     * tunables (see store/durable.h). Requires a flat (non-recursive)
     * position map and a file-backed store to be meaningful; durability
     * is off when `durability.dir` is empty.
     */
    DurabilityConfig durability;
};

/** Cumulative counters. */
struct RawOramStats
{
    int64_t accesses = 0;
    int64_t evictions = 0;
    int64_t page_reads = 0;
    int64_t page_writes = 0;
    int64_t stash_peak = 0;  ///< high-water real blocks in the stash
    int64_t checkpoints = 0;        ///< durable checkpoints sealed
    int64_t checkpoint_bytes = 0;   ///< bytes of the last checkpoint
    int64_t journal_appends = 0;    ///< records appended since creation
};

class RawOram
{
  public:
    static constexpr uint64_t kDummyId = oram::TreeOram::kDummyId;

    /**
     * Tree geometry for a given store page size: how many pages the
     * backing store must have. Callers size the store with this before
     * construction. Throws StoreError if a page cannot hold 2 blocks.
     */
    static int64_t PagesNeeded(int64_t num_blocks, int64_t block_words,
                               int64_t page_bytes);

    /**
     * @param num_blocks logical blocks (table rows)
     * @param block_words payload words per block (embedding dim)
     * @param cache page cache over a store of PagesNeeded() pages (owned)
     * @param rng leaf randomness (a private generator is split from it)
     */
    RawOram(int64_t num_blocks, int64_t block_words,
            std::unique_ptr<PageCache> cache, Rng& rng,
            const RawOramConfig& config);

    /**
     * Non-oblivious bulk initialisation (num_blocks x block_words words);
     * model weights are public in the threat model. Must be called once
     * before Read/Write.
     */
    serving::Status BulkLoad(std::span<const uint32_t> data);

    /** Oblivious read of block `id` into out (block_words). */
    serving::Status Read(int64_t id, std::span<uint32_t> out);

    /** Oblivious write of block `id` from in (block_words). */
    serving::Status Write(int64_t id, std::span<const uint32_t> in);

    /** Flush dirty cache frames and sync the store durably. */
    serving::Status Sync() { return cache_->Sync(); }

    /**
     * Seal a durable checkpoint now: sync the page store, serialize the
     * full client state (fixed-size sweep), commit it atomically, then
     * reset the journal to the checkpointed sequence number. Ok (no-op)
     * when durability is off. Automatic checkpoints fire from Access()
     * every `durability.checkpoint_interval` accesses and whenever the
     * journal reaches `durability.journal_limit` records.
     */
    serving::Status Checkpoint();

    /**
     * Reopen a durable RawOram from `config.durability.dir`: load +
     * CRC-verify the checkpoint, validate its geometry against this
     * construction, replay the journal with strict sequence continuity,
     * rewrite every page the journal covers, and sync. Fails closed
     * (kInternal / kInvalidArgument) on a torn checkpoint, mid-journal
     * corruption, or duplicate/reordered sequence numbers; only a
     * damaged final record with nothing valid beyond it is dropped.
     *
     * `cache` must be over the SAME backing file the crashed instance
     * used (create=false), with PagesNeeded() pages.
     */
    static serving::Status Recover(int64_t num_blocks, int64_t block_words,
                                   std::unique_ptr<PageCache> cache,
                                   Rng& rng, const RawOramConfig& config,
                                   std::unique_ptr<RawOram>* out,
                                   RecoveryStats* stats = nullptr);

    bool durable() const { return durability_.enabled(); }
    /** Journal records since the last checkpoint. */
    int64_t journal_records() const { return journal_.records(); }
    /** What the last Recover() found (zero-valued for fresh instances). */
    const RecoveryStats& recovery_stats() const { return recovery_stats_; }

    int64_t num_blocks() const { return num_blocks_; }
    int64_t block_words() const { return block_words_; }
    int64_t num_leaves() const { return num_leaves_; }
    /** Leaf level index; the tree has levels()+1 levels. */
    int64_t levels() const { return levels_; }
    /** Z: blocks per bucket (= per page). */
    int64_t bucket_slots() const { return bucket_slots_; }
    int64_t stash_capacity() const { return stash_capacity_; }
    int64_t StashOccupancy() const;

    const RawOramStats& stats() const { return stats_; }
    PageCacheStats cache_stats() const { return cache_->stats(); }

    /** Route fetch/write-back hops into a serving flight recorder. */
    void set_flight(serving::FlightRecorder* flight, int16_t feature = -1)
    {
        cache_->set_flight(flight, feature);
        flight_ = flight;
        flight_feature_ = feature;
    }

    /** Client-side resident bytes: metadata + stash + posmap + cache. */
    int64_t MemoryFootprintBytes() const;
    /** Bytes occupied in the backing store. */
    int64_t DiskFootprintBytes() const
    {
        return num_buckets_ * cache_->page_bytes();
    }

  private:
    enum class Op { kRead, kWrite };

    serving::Status Access(int64_t id, Op op, std::span<uint32_t> read_out,
                           std::span<const uint32_t> write_in);

    /** Eviction pass on the next reverse-lexicographic path. */
    serving::Status Evict();

    int64_t BucketOnPath(uint32_t leaf, int64_t level) const;
    uint32_t NextEvictionLeaf();

    /** Fetch + decrypt the path pages of `leaf` into path_pages_. */
    serving::Status FetchPath(uint32_t leaf);

    /**
     * Eviction phase 2: greedy deepest-first repack of the stash into
     * the path of `leaf` (path_buckets_ must be filled), re-encrypt
     * under bumped versions, write the pages back. Shared between the
     * live Evict() and journal replay — it never reads the fetched page
     * content, which is what makes the evict record's pre-image replay
     * idempotent.
     */
    serving::Status RepackAndWriteBack(uint32_t leaf);

    // -- Durability ------------------------------------------------------
    /** First checkpoint + journal creation, called from BulkLoad. */
    serving::Status InitDurability();
    /** Journal the post-op (id, new_leaf, op, payload) delta + fsync. */
    serving::Status AppendAccessRecord(uint64_t id, uint32_t new_leaf,
                                       Op op, const uint32_t* block);
    /** Journal the decrypted path pre-image before phase-2 writes. */
    serving::Status AppendEvictRecord(uint64_t counter_before,
                                      uint32_t leaf);
    serving::Status MaybeAutoCheckpoint();
    CheckpointData BuildCheckpointData() const;
    serving::Status ReplayAccess(const JournalRecord& rec);
    serving::Status ReplayEvict(const JournalRecord& rec);
    /** Restore client state from a validated checkpoint. */
    serving::Status RestoreFromCheckpoint(const CheckpointData& d);
    void RecordJournalAppend(int64_t record_bytes);
    void RecordCheckpointWrite(int64_t bytes);

    /** All-ones iff block at `block_leaf` may live at `level` of the
     *  path to `path_leaf` (branchless prefix comparison). */
    uint64_t CanPlaceMask(uint32_t block_leaf, uint32_t path_leaf,
                          int64_t level) const;

    /** Oblivious insert into the first free stash slot (mask-gated). */
    void StashInsertMasked(uint64_t insert_mask, uint64_t id,
                           uint32_t leaf, const uint32_t* data);

    void RecordPage(int64_t bucket, bool is_write);
    void RecordStashScan(bool is_write);
    void RecordMetaScan(int64_t bucket);

    int64_t num_blocks_;
    int64_t block_words_;
    int64_t bucket_slots_;  ///< Z
    int64_t levels_;
    int64_t num_leaves_;
    int64_t num_buckets_;
    int64_t eviction_period_;
    int64_t stash_capacity_;
    bool encrypt_;
    bool loaded_ = false;

    std::unique_ptr<PageCache> cache_;
    Rng rng_;

    // Client-side (RAM) state.
    std::vector<uint64_t> slot_id_;    ///< bucket*Z + z -> id or dummy
    std::vector<uint32_t> slot_leaf_;
    std::vector<uint64_t> stash_id_;
    std::vector<uint32_t> stash_leaf_;
    std::vector<uint32_t> stash_data_;
    std::vector<uint64_t> bucket_version_;
    oram::PositionMap posmap_;
    /** Persisted so a recovered instance decrypts the surviving pages. */
    uint64_t cipher_seed_;
    oram::BucketCipher cipher_;
    uint64_t evict_counter_ = 0;

    // Durable state (inert when durability_.enabled() is false).
    DurabilityConfig durability_;
    Journal journal_;
    uint64_t seq_ = 0;  ///< last journaled sequence number
    uint64_t geometry_hash_ = 0;
    std::string ckpt_path_;
    std::string journal_path_;
    int64_t accesses_since_ckpt_ = 0;
    std::vector<uint8_t> journal_payload_;  ///< reused append scratch
    RecoveryStats recovery_stats_;
    serving::FlightRecorder* flight_ = nullptr;
    int16_t flight_feature_ = -1;

    // Reused path scratch: (levels_+1) decrypted pages + bucket indices.
    std::vector<uint8_t> path_pages_;
    std::vector<int64_t> path_buckets_;

    sidechannel::TraceRecorder* recorder_;
    uint64_t pages_trace_base_ = 0;
    uint64_t stash_trace_base_ = 0;
    uint64_t meta_trace_base_ = 0;
    uint64_t ckpt_trace_base_ = 0;
    uint64_t journal_trace_base_ = 0;

    RawOramStats stats_;
};

}  // namespace secemb::store
