#include "store/raw_oram.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>

#include "oblivious/ct_ops.h"
#include "telemetry/telemetry.h"

namespace secemb::store {

namespace {

using oblivious::CtCopyWords;
using oblivious::EqMask;
using oblivious::Select;

int64_t
SlotsPerPage(int64_t block_words, int64_t page_bytes)
{
    const int64_t z =
        page_bytes / (block_words * static_cast<int64_t>(sizeof(uint32_t)));
    if (z < 2) {
        throw StoreError(serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "raw oram: page of " + std::to_string(page_bytes) +
                " bytes holds fewer than 2 blocks of " +
                std::to_string(block_words) + " words"));
    }
    return z;
}

/** Leaf count: leaf-level capacity ~2x the block count, power of two. */
int64_t
LeavesFor(int64_t num_blocks, int64_t slots_per_page)
{
    const int64_t min_leaves =
        std::max<int64_t>(1, (2 * num_blocks + slots_per_page - 1) /
                                 slots_per_page);
    int64_t leaves = 1;
    while (leaves < min_leaves) leaves <<= 1;
    return leaves;
}

int64_t
Log2(int64_t pow2)
{
    int64_t l = 0;
    while ((int64_t{1} << l) < pow2) ++l;
    return l;
}

oram::OramParams
PosmapParams(const RawOramConfig& config)
{
    oram::OramParams p = config.posmap;
    p.recorder = config.recorder;
    return p;
}

}  // namespace

int64_t
RawOram::PagesNeeded(int64_t num_blocks, int64_t block_words,
                     int64_t page_bytes)
{
    const int64_t z = SlotsPerPage(block_words, page_bytes);
    return 2 * LeavesFor(num_blocks, z) - 1;
}

RawOram::RawOram(int64_t num_blocks, int64_t block_words,
                 std::unique_ptr<PageCache> cache, Rng& rng,
                 const RawOramConfig& config)
    : num_blocks_(num_blocks),
      block_words_(block_words),
      bucket_slots_(SlotsPerPage(block_words, cache->page_bytes())),
      levels_(Log2(LeavesFor(num_blocks, bucket_slots_))),
      num_leaves_(LeavesFor(num_blocks, bucket_slots_)),
      num_buckets_(2 * num_leaves_ - 1),
      eviction_period_(std::max<int64_t>(1, config.eviction_period)),
      stash_capacity_(config.stash_capacity > 0
                          ? config.stash_capacity
                          : bucket_slots_ * (levels_ + 1) +
                                8 * std::max<int64_t>(
                                        1, config.eviction_period) +
                                64),
      encrypt_(config.encrypt_payloads),
      cache_(std::move(cache)),
      rng_(rng.Next()),
      posmap_(oram::OramKind::kPath, num_blocks,
              static_cast<uint32_t>(num_leaves_), rng,
              PosmapParams(config)),
      cipher_(rng.Next()),
      recorder_(config.recorder)
{
    if (cache_->num_pages() < num_buckets_) {
        throw StoreError(serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "raw oram: store has " + std::to_string(cache_->num_pages()) +
                " pages, tree needs " + std::to_string(num_buckets_) +
                " (size with RawOram::PagesNeeded)"));
    }
    slot_id_.assign(
        static_cast<size_t>(num_buckets_ * bucket_slots_), kDummyId);
    slot_leaf_.assign(static_cast<size_t>(num_buckets_ * bucket_slots_),
                      0);
    stash_id_.assign(static_cast<size_t>(stash_capacity_), kDummyId);
    stash_leaf_.assign(static_cast<size_t>(stash_capacity_), 0);
    stash_data_.assign(
        static_cast<size_t>(stash_capacity_ * block_words_), 0);
    bucket_version_.assign(static_cast<size_t>(num_buckets_), 0);
    path_pages_.resize(
        static_cast<size_t>((levels_ + 1) * cache_->page_bytes()));
    path_buckets_.resize(static_cast<size_t>(levels_ + 1));

    auto& space = sidechannel::ProcessAddressSpace();
    pages_trace_base_ = space.Reserve(
        static_cast<uint64_t>(num_buckets_ * cache_->page_bytes()), 4096,
        "store.oram.pages");
    stash_trace_base_ = space.Reserve(
        static_cast<uint64_t>(stash_capacity_ *
                              (16 + 4 * block_words_)),
        64, "store.raworam.stash");
    meta_trace_base_ = space.Reserve(
        static_cast<uint64_t>(num_buckets_ * bucket_slots_ * 16), 64,
        "store.raworam.meta");
}

int64_t
RawOram::BucketOnPath(uint32_t leaf, int64_t level) const
{
    return ((num_leaves_ + static_cast<int64_t>(leaf)) >>
            (levels_ - level)) -
           1;
}

uint32_t
RawOram::NextEvictionLeaf()
{
    uint64_t g = evict_counter_++;
    uint32_t leaf = 0;
    for (int64_t i = 0; i < levels_; ++i) {
        leaf = (leaf << 1) | static_cast<uint32_t>(g & 1);
        g >>= 1;
    }
    return leaf;
}

uint64_t
RawOram::CanPlaceMask(uint32_t block_leaf, uint32_t path_leaf,
                      int64_t level) const
{
    const int64_t shift = levels_ - level;
    return EqMask(static_cast<uint64_t>(block_leaf) >> shift,
                  static_cast<uint64_t>(path_leaf) >> shift);
}

void
RawOram::RecordPage(int64_t bucket, bool is_write)
{
    if (recorder_ != nullptr) {
        recorder_->Record(
            pages_trace_base_ +
                static_cast<uint64_t>(bucket * cache_->page_bytes()),
            static_cast<uint32_t>(cache_->page_bytes()), is_write);
    }
}

void
RawOram::RecordStashScan(bool is_write)
{
    if (recorder_ != nullptr) {
        recorder_->Record(
            stash_trace_base_,
            static_cast<uint32_t>(stash_capacity_ *
                                  (16 + 4 * block_words_)),
            is_write);
    }
}

void
RawOram::RecordMetaScan(int64_t bucket)
{
    if (recorder_ != nullptr) {
        recorder_->Record(
            meta_trace_base_ +
                static_cast<uint64_t>(bucket * bucket_slots_ * 16),
            static_cast<uint32_t>(bucket_slots_ * 16), false);
    }
}

serving::Status
RawOram::BulkLoad(std::span<const uint32_t> data)
{
    if (loaded_) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "raw oram: already bulk-loaded");
    }
    if (data.size() !=
        static_cast<size_t>(num_blocks_ * block_words_)) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "raw oram: bulk load size mismatch");
    }
    const std::vector<uint32_t>& leaves0 = posmap_.initial_leaves();

    // Greedy deepest-first placement, metadata only (RAM).
    std::vector<uint16_t> occupancy(static_cast<size_t>(num_buckets_), 0);
    int64_t spilled = 0;
    for (int64_t id = 0; id < num_blocks_; ++id) {
        const uint32_t leaf = leaves0[static_cast<size_t>(id)];
        bool placed = false;
        for (int64_t level = levels_; level >= 0 && !placed; --level) {
            const int64_t b = BucketOnPath(leaf, level);
            auto& occ = occupancy[static_cast<size_t>(b)];
            if (occ < bucket_slots_) {
                const size_t slot =
                    static_cast<size_t>(b * bucket_slots_ + occ);
                slot_id_[slot] = static_cast<uint64_t>(id);
                slot_leaf_[slot] = leaf;
                occ++;
                placed = true;
            }
        }
        if (!placed) {
            if (spilled >= stash_capacity_) {
                return serving::Status::Error(
                    serving::StatusCode::kResourceExhausted,
                    "raw oram: bulk load overflowed the stash");
            }
            stash_id_[static_cast<size_t>(spilled)] =
                static_cast<uint64_t>(id);
            stash_leaf_[static_cast<size_t>(spilled)] = leaf;
            std::memcpy(
                stash_data_.data() + spilled * block_words_,
                data.data() + id * block_words_,
                static_cast<size_t>(block_words_) * sizeof(uint32_t));
            spilled++;
        }
    }

    // Stream the payload pages out in bucket order.
    const int64_t page_bytes = cache_->page_bytes();
    const int64_t page_words = bucket_slots_ * block_words_;
    std::vector<uint8_t> page(static_cast<size_t>(page_bytes), 0);
    for (int64_t b = 0; b < num_buckets_; ++b) {
        std::memset(page.data(), 0, page.size());
        auto* words = reinterpret_cast<uint32_t*>(page.data());
        for (int64_t z = 0; z < bucket_slots_; ++z) {
            const uint64_t id = slot_id_[
                static_cast<size_t>(b * bucket_slots_ + z)];
            if (id != kDummyId) {
                std::memcpy(words + z * block_words_,
                            data.data() +
                                static_cast<int64_t>(id) * block_words_,
                            static_cast<size_t>(block_words_) *
                                sizeof(uint32_t));
            }
        }
        if (encrypt_) {
            bucket_version_[static_cast<size_t>(b)] = 1;
            cipher_.Apply(b, 1,
                          std::span<uint32_t>(
                              words, static_cast<size_t>(page_words)));
        }
        if (auto s = cache_->WritePage(b, page); !s.ok()) return s;
    }
    loaded_ = true;
    return serving::Status::Ok();
}

serving::Status
RawOram::FetchPath(uint32_t leaf)
{
    const int64_t page_bytes = cache_->page_bytes();
    const int64_t page_words = bucket_slots_ * block_words_;
    for (int64_t level = 0; level <= levels_; ++level) {
        const int64_t b = BucketOnPath(leaf, level);
        path_buckets_[static_cast<size_t>(level)] = b;
        RecordPage(b, false);
        std::span<uint8_t> dst{
            path_pages_.data() + level * page_bytes,
            static_cast<size_t>(page_bytes)};
        if (auto s = cache_->ReadPage(b, dst); !s.ok()) return s;
        stats_.page_reads++;
        const uint64_t version = bucket_version_[static_cast<size_t>(b)];
        if (encrypt_ && version > 0) {
            cipher_.Apply(
                b, version,
                std::span<uint32_t>(
                    reinterpret_cast<uint32_t*>(dst.data()),
                    static_cast<size_t>(page_words)));
        }
    }
    return serving::Status::Ok();
}

void
RawOram::StashInsertMasked(uint64_t insert_mask, uint64_t id,
                           uint32_t leaf, const uint32_t* data)
{
    uint64_t done = 0;
    for (int64_t s = 0; s < stash_capacity_; ++s) {
        const uint64_t free_mask =
            EqMask(stash_id_[static_cast<size_t>(s)], kDummyId);
        const uint64_t take = insert_mask & free_mask & ~done;
        stash_id_[static_cast<size_t>(s)] =
            Select(take, id, stash_id_[static_cast<size_t>(s)]);
        stash_leaf_[static_cast<size_t>(s)] = static_cast<uint32_t>(
            Select(take, leaf, stash_leaf_[static_cast<size_t>(s)]));
        CtCopyWords(take, data,
                      stash_data_.data() + s * block_words_,
                      block_words_);
        done |= take;
    }
    if (insert_mask != 0 && done == 0) {
        throw std::runtime_error("raw oram: stash overflow (capacity " +
                                 std::to_string(stash_capacity_) + ")");
    }
}

serving::Status
RawOram::Access(int64_t id, Op op, std::span<uint32_t> read_out,
                std::span<const uint32_t> write_in)
{
    if (!loaded_) {
        return serving::Status::Error(serving::StatusCode::kInternal,
                                      "raw oram: not bulk-loaded");
    }
    if (id < 0 || id >= num_blocks_) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "block id " + std::to_string(id) + " out of range [0, " +
                std::to_string(num_blocks_) + ")");
    }
    TELEMETRY_SPAN("store.raw_oram.access");
    const auto uid = static_cast<uint64_t>(id);
    const auto new_leaf =
        static_cast<uint32_t>(rng_.NextBounded(
            static_cast<uint64_t>(num_leaves_)));
    const uint32_t old_leaf = posmap_.Update(id, new_leaf);

    // Oblivious extraction from the stash (the block may still be there
    // from an earlier access in the current eviction window).
    std::vector<uint32_t> block(static_cast<size_t>(block_words_), 0);
    uint64_t found = 0;
    RecordStashScan(false);
    for (int64_t s = 0; s < stash_capacity_; ++s) {
        const uint64_t m =
            EqMask(stash_id_[static_cast<size_t>(s)], uid);
        CtCopyWords(m, stash_data_.data() + s * block_words_,
                      block.data(), block_words_);
        stash_id_[static_cast<size_t>(s)] =
            Select(m, kDummyId, stash_id_[static_cast<size_t>(s)]);
        found |= m;
    }

    // Read path: levels+1 whole-page fetches, no write-back (RAW).
    if (auto s = FetchPath(old_leaf); !s.ok()) return s;
    for (int64_t level = 0; level <= levels_; ++level) {
        const int64_t b = path_buckets_[static_cast<size_t>(level)];
        RecordMetaScan(b);
        const auto* words = reinterpret_cast<const uint32_t*>(
            path_pages_.data() + level * cache_->page_bytes());
        for (int64_t z = 0; z < bucket_slots_; ++z) {
            const size_t slot =
                static_cast<size_t>(b * bucket_slots_ + z);
            const uint64_t m = EqMask(slot_id_[slot], uid);
            CtCopyWords(m, words + z * block_words_, block.data(),
                          block_words_);
            slot_id_[slot] = Select(m, kDummyId, slot_id_[slot]);
            found |= m;
        }
    }
    assert(found != 0 && "bulk-loaded block must exist");
    (void)found;

    if (op == Op::kWrite) {
        std::memcpy(block.data(), write_in.data(),
                    static_cast<size_t>(block_words_) * sizeof(uint32_t));
    }
    RecordStashScan(true);
    StashInsertMasked(~uint64_t{0}, uid, new_leaf, block.data());
    if (op == Op::kRead) {
        std::memcpy(read_out.data(), block.data(),
                    static_cast<size_t>(block_words_) * sizeof(uint32_t));
    }

    stats_.accesses++;
    stats_.stash_peak = std::max(stats_.stash_peak, StashOccupancy());
    if (stats_.accesses % eviction_period_ == 0) return Evict();
    return serving::Status::Ok();
}

serving::Status
RawOram::Evict()
{
    TELEMETRY_SPAN("store.raw_oram.evict");
    const uint32_t leaf = NextEvictionLeaf();
    if (auto s = FetchPath(leaf); !s.ok()) return s;
    const int64_t page_bytes = cache_->page_bytes();
    const int64_t page_words = bucket_slots_ * block_words_;

    // Phase 1: pull every real path block into the stash (mask-gated
    // insert per slot; dummies insert nothing but cost the same scan).
    for (int64_t level = 0; level <= levels_; ++level) {
        const int64_t b = path_buckets_[static_cast<size_t>(level)];
        RecordMetaScan(b);
        const auto* words = reinterpret_cast<const uint32_t*>(
            path_pages_.data() + level * page_bytes);
        for (int64_t z = 0; z < bucket_slots_; ++z) {
            const size_t slot =
                static_cast<size_t>(b * bucket_slots_ + z);
            const uint64_t valid = ~EqMask(slot_id_[slot], kDummyId);
            RecordStashScan(true);
            StashInsertMasked(valid, slot_id_[slot], slot_leaf_[slot],
                              words + z * block_words_);
            slot_id_[slot] = kDummyId;
        }
    }
    stats_.stash_peak = std::max(stats_.stash_peak, StashOccupancy());

    // Phase 2: greedy deepest-first repack with constant-time selects,
    // then re-encrypt under a fresh version and write the page back.
    for (int64_t level = levels_; level >= 0; --level) {
        const int64_t b = path_buckets_[static_cast<size_t>(level)];
        RecordMetaScan(b);
        auto* page = path_pages_.data() + level * page_bytes;
        std::memset(page, 0, static_cast<size_t>(page_bytes));
        auto* words = reinterpret_cast<uint32_t*>(page);
        for (int64_t z = 0; z < bucket_slots_; ++z) {
            const size_t slot =
                static_cast<size_t>(b * bucket_slots_ + z);
            uint64_t chosen = 0;
            RecordStashScan(false);
            for (int64_t s = 0; s < stash_capacity_; ++s) {
                const size_t si = static_cast<size_t>(s);
                const uint64_t valid =
                    ~EqMask(stash_id_[si], kDummyId);
                const uint64_t take =
                    valid & CanPlaceMask(stash_leaf_[si], leaf, level) &
                    ~chosen;
                CtCopyWords(take,
                              stash_data_.data() + s * block_words_,
                              words + z * block_words_, block_words_);
                slot_id_[slot] = Select(take, stash_id_[si],
                                        slot_id_[slot]);
                slot_leaf_[slot] = static_cast<uint32_t>(Select(
                    take, stash_leaf_[si], slot_leaf_[slot]));
                stash_id_[si] = Select(take, kDummyId, stash_id_[si]);
                chosen |= take;
            }
        }
        uint64_t& version = bucket_version_[static_cast<size_t>(b)];
        if (encrypt_) {
            ++version;
            cipher_.Apply(b, version,
                          std::span<uint32_t>(
                              words, static_cast<size_t>(page_words)));
        }
        RecordPage(b, true);
        std::span<const uint8_t> src{page,
                                     static_cast<size_t>(page_bytes)};
        if (auto s = cache_->WritePage(b, src); !s.ok()) return s;
        stats_.page_writes++;
    }
    stats_.evictions++;
    return serving::Status::Ok();
}

serving::Status
RawOram::Read(int64_t id, std::span<uint32_t> out)
{
    if (out.size() != static_cast<size_t>(block_words_)) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "raw oram read: bad block buffer size");
    }
    return Access(id, Op::kRead, out, {});
}

serving::Status
RawOram::Write(int64_t id, std::span<const uint32_t> in)
{
    if (in.size() != static_cast<size_t>(block_words_)) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "raw oram write: bad block buffer size");
    }
    return Access(id, Op::kWrite, {}, in);
}

int64_t
RawOram::StashOccupancy() const
{
    int64_t n = 0;
    for (const uint64_t id : stash_id_) {
        if (id != kDummyId) ++n;
    }
    return n;
}

int64_t
RawOram::MemoryFootprintBytes() const
{
    const int64_t metadata =
        static_cast<int64_t>(slot_id_.size() * sizeof(uint64_t) +
                             slot_leaf_.size() * sizeof(uint32_t));
    const int64_t stash =
        static_cast<int64_t>(stash_id_.size() * sizeof(uint64_t) +
                             stash_leaf_.size() * sizeof(uint32_t) +
                             stash_data_.size() * sizeof(uint32_t));
    const int64_t scratch = static_cast<int64_t>(
        path_pages_.size() +
        bucket_version_.size() * sizeof(uint64_t));
    const int64_t cache_bytes =
        cache_->capacity_pages() * cache_->page_bytes();
    return metadata + stash + scratch + cache_bytes +
           posmap_.FootprintBytes();
}

}  // namespace secemb::store
