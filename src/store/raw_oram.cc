#include "store/raw_oram.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>

#include "oblivious/ct_ops.h"
#include "telemetry/telemetry.h"

namespace secemb::store {

namespace {

using oblivious::CtCopyWords;
using oblivious::EqMask;
using oblivious::Select;

int64_t
SlotsPerPage(int64_t block_words, int64_t page_bytes)
{
    const int64_t z =
        page_bytes / (block_words * static_cast<int64_t>(sizeof(uint32_t)));
    if (z < 2) {
        throw StoreError(serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "raw oram: page of " + std::to_string(page_bytes) +
                " bytes holds fewer than 2 blocks of " +
                std::to_string(block_words) + " words"));
    }
    return z;
}

/** Leaf count: leaf-level capacity ~2x the block count, power of two. */
int64_t
LeavesFor(int64_t num_blocks, int64_t slots_per_page)
{
    const int64_t min_leaves =
        std::max<int64_t>(1, (2 * num_blocks + slots_per_page - 1) /
                                 slots_per_page);
    int64_t leaves = 1;
    while (leaves < min_leaves) leaves <<= 1;
    return leaves;
}

int64_t
Log2(int64_t pow2)
{
    int64_t l = 0;
    while ((int64_t{1} << l) < pow2) ++l;
    return l;
}

oram::OramParams
PosmapParams(const RawOramConfig& config)
{
    oram::OramParams p = config.posmap;
    p.recorder = config.recorder;
    return p;
}

}  // namespace

int64_t
RawOram::PagesNeeded(int64_t num_blocks, int64_t block_words,
                     int64_t page_bytes)
{
    const int64_t z = SlotsPerPage(block_words, page_bytes);
    return 2 * LeavesFor(num_blocks, z) - 1;
}

RawOram::RawOram(int64_t num_blocks, int64_t block_words,
                 std::unique_ptr<PageCache> cache, Rng& rng,
                 const RawOramConfig& config)
    : num_blocks_(num_blocks),
      block_words_(block_words),
      bucket_slots_(SlotsPerPage(block_words, cache->page_bytes())),
      levels_(Log2(LeavesFor(num_blocks, bucket_slots_))),
      num_leaves_(LeavesFor(num_blocks, bucket_slots_)),
      num_buckets_(2 * num_leaves_ - 1),
      eviction_period_(std::max<int64_t>(1, config.eviction_period)),
      stash_capacity_(config.stash_capacity > 0
                          ? config.stash_capacity
                          : bucket_slots_ * (levels_ + 1) +
                                8 * std::max<int64_t>(
                                        1, config.eviction_period) +
                                64),
      encrypt_(config.encrypt_payloads),
      cache_(std::move(cache)),
      rng_(rng.Next()),
      posmap_(oram::OramKind::kPath, num_blocks,
              static_cast<uint32_t>(num_leaves_), rng,
              PosmapParams(config)),
      cipher_seed_(rng.Next()),
      cipher_(cipher_seed_),
      durability_(config.durability),
      recorder_(config.recorder)
{
    if (cache_->num_pages() < num_buckets_) {
        throw StoreError(serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "raw oram: store has " + std::to_string(cache_->num_pages()) +
                " pages, tree needs " + std::to_string(num_buckets_) +
                " (size with RawOram::PagesNeeded)"));
    }
    slot_id_.assign(
        static_cast<size_t>(num_buckets_ * bucket_slots_), kDummyId);
    slot_leaf_.assign(static_cast<size_t>(num_buckets_ * bucket_slots_),
                      0);
    stash_id_.assign(static_cast<size_t>(stash_capacity_), kDummyId);
    stash_leaf_.assign(static_cast<size_t>(stash_capacity_), 0);
    stash_data_.assign(
        static_cast<size_t>(stash_capacity_ * block_words_), 0);
    bucket_version_.assign(static_cast<size_t>(num_buckets_), 0);
    path_pages_.resize(
        static_cast<size_t>((levels_ + 1) * cache_->page_bytes()));
    path_buckets_.resize(static_cast<size_t>(levels_ + 1));

    auto& space = sidechannel::ProcessAddressSpace();
    pages_trace_base_ = space.Reserve(
        static_cast<uint64_t>(num_buckets_ * cache_->page_bytes()), 4096,
        "store.oram.pages");
    stash_trace_base_ = space.Reserve(
        static_cast<uint64_t>(stash_capacity_ *
                              (16 + 4 * block_words_)),
        64, "store.raworam.stash");
    meta_trace_base_ = space.Reserve(
        static_cast<uint64_t>(num_buckets_ * bucket_slots_ * 16), 64,
        "store.raworam.meta");

    if (durability_.enabled()) {
        if (posmap_.recursive()) {
            throw StoreError(serving::Status::Error(
                serving::StatusCode::kInvalidArgument,
                "raw oram durability requires a flat position map "
                "(set posmap.enable_recursion = false)"));
        }
        ckpt_path_ = durability_.dir + "/ckpt.bin";
        journal_path_ = durability_.dir + "/journal.bin";
        CheckpointData g;
        g.num_blocks = num_blocks_;
        g.block_words = block_words_;
        g.bucket_slots = bucket_slots_;
        g.levels = levels_;
        g.stash_capacity = stash_capacity_;
        g.eviction_period = eviction_period_;
        geometry_hash_ = DurableGeometryHash(g);
        // The durable IO schedule is part of the observable trace: the
        // checkpoint region is one fixed-size record, the journal region
        // is bounded by journal_limit records of the (public) per-type
        // maximum size. Offsets within the journal region are the public
        // byte cursor since the last reset.
        const int64_t ckpt_bytes = CheckpointSerializedBytes(
            num_blocks_, block_words_, bucket_slots_, levels_,
            stash_capacity_);
        const int64_t max_record = std::max(
            JournalRecordBytes(JournalAccessPayloadBytes(block_words_)),
            JournalRecordBytes(JournalEvictPayloadBytes(
                (levels_ + 1) * bucket_slots_, block_words_)));
        ckpt_trace_base_ = space.Reserve(
            static_cast<uint64_t>(ckpt_bytes), 4096, "store.ckpt.state");
        // +1: an eviction record may ride after the access record that
        // reached the limit, before the auto-checkpoint fires.
        journal_trace_base_ = space.Reserve(
            static_cast<uint64_t>(
                JournalFileHeaderBytes() +
                (std::max<int64_t>(1, durability_.journal_limit) + 1) *
                    max_record),
            4096, "store.ckpt.journal");
    }
}

int64_t
RawOram::BucketOnPath(uint32_t leaf, int64_t level) const
{
    return ((num_leaves_ + static_cast<int64_t>(leaf)) >>
            (levels_ - level)) -
           1;
}

uint32_t
RawOram::NextEvictionLeaf()
{
    uint64_t g = evict_counter_++;
    uint32_t leaf = 0;
    for (int64_t i = 0; i < levels_; ++i) {
        leaf = (leaf << 1) | static_cast<uint32_t>(g & 1);
        g >>= 1;
    }
    return leaf;
}

uint64_t
RawOram::CanPlaceMask(uint32_t block_leaf, uint32_t path_leaf,
                      int64_t level) const
{
    const int64_t shift = levels_ - level;
    return EqMask(static_cast<uint64_t>(block_leaf) >> shift,
                  static_cast<uint64_t>(path_leaf) >> shift);
}

void
RawOram::RecordPage(int64_t bucket, bool is_write)
{
    if (recorder_ != nullptr) {
        recorder_->Record(
            pages_trace_base_ +
                static_cast<uint64_t>(bucket * cache_->page_bytes()),
            static_cast<uint32_t>(cache_->page_bytes()), is_write);
    }
}

void
RawOram::RecordStashScan(bool is_write)
{
    if (recorder_ != nullptr) {
        recorder_->Record(
            stash_trace_base_,
            static_cast<uint32_t>(stash_capacity_ *
                                  (16 + 4 * block_words_)),
            is_write);
    }
}

void
RawOram::RecordMetaScan(int64_t bucket)
{
    if (recorder_ != nullptr) {
        recorder_->Record(
            meta_trace_base_ +
                static_cast<uint64_t>(bucket * bucket_slots_ * 16),
            static_cast<uint32_t>(bucket_slots_ * 16), false);
    }
}

serving::Status
RawOram::BulkLoad(std::span<const uint32_t> data)
{
    if (loaded_) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "raw oram: already bulk-loaded");
    }
    if (data.size() !=
        static_cast<size_t>(num_blocks_ * block_words_)) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "raw oram: bulk load size mismatch");
    }
    const std::vector<uint32_t>& leaves0 = posmap_.initial_leaves();

    // Greedy deepest-first placement, metadata only (RAM).
    std::vector<uint16_t> occupancy(static_cast<size_t>(num_buckets_), 0);
    int64_t spilled = 0;
    for (int64_t id = 0; id < num_blocks_; ++id) {
        const uint32_t leaf = leaves0[static_cast<size_t>(id)];
        bool placed = false;
        for (int64_t level = levels_; level >= 0 && !placed; --level) {
            const int64_t b = BucketOnPath(leaf, level);
            auto& occ = occupancy[static_cast<size_t>(b)];
            if (occ < bucket_slots_) {
                const size_t slot =
                    static_cast<size_t>(b * bucket_slots_ + occ);
                slot_id_[slot] = static_cast<uint64_t>(id);
                slot_leaf_[slot] = leaf;
                occ++;
                placed = true;
            }
        }
        if (!placed) {
            if (spilled >= stash_capacity_) {
                return serving::Status::Error(
                    serving::StatusCode::kResourceExhausted,
                    "raw oram: bulk load overflowed the stash");
            }
            stash_id_[static_cast<size_t>(spilled)] =
                static_cast<uint64_t>(id);
            stash_leaf_[static_cast<size_t>(spilled)] = leaf;
            std::memcpy(
                stash_data_.data() + spilled * block_words_,
                data.data() + id * block_words_,
                static_cast<size_t>(block_words_) * sizeof(uint32_t));
            spilled++;
        }
    }

    // Stream the payload pages out in bucket order.
    const int64_t page_bytes = cache_->page_bytes();
    const int64_t page_words = bucket_slots_ * block_words_;
    std::vector<uint8_t> page(static_cast<size_t>(page_bytes), 0);
    for (int64_t b = 0; b < num_buckets_; ++b) {
        std::memset(page.data(), 0, page.size());
        auto* words = reinterpret_cast<uint32_t*>(page.data());
        for (int64_t z = 0; z < bucket_slots_; ++z) {
            const uint64_t id = slot_id_[
                static_cast<size_t>(b * bucket_slots_ + z)];
            if (id != kDummyId) {
                std::memcpy(words + z * block_words_,
                            data.data() +
                                static_cast<int64_t>(id) * block_words_,
                            static_cast<size_t>(block_words_) *
                                sizeof(uint32_t));
            }
        }
        if (encrypt_) {
            bucket_version_[static_cast<size_t>(b)] = 1;
            cipher_.Apply(b, 1,
                          std::span<uint32_t>(
                              words, static_cast<size_t>(page_words)));
        }
        if (auto s = cache_->WritePage(b, page); !s.ok()) return s;
    }
    loaded_ = true;
    // Durable instances seal checkpoint #0 now so recovery always has a
    // base state (bulk load itself is re-runnable, never journaled).
    if (durability_.enabled()) return InitDurability();
    return serving::Status::Ok();
}

serving::Status
RawOram::FetchPath(uint32_t leaf)
{
    const int64_t page_bytes = cache_->page_bytes();
    const int64_t page_words = bucket_slots_ * block_words_;
    for (int64_t level = 0; level <= levels_; ++level) {
        const int64_t b = BucketOnPath(leaf, level);
        path_buckets_[static_cast<size_t>(level)] = b;
        RecordPage(b, false);
        std::span<uint8_t> dst{
            path_pages_.data() + level * page_bytes,
            static_cast<size_t>(page_bytes)};
        if (auto s = cache_->ReadPage(b, dst); !s.ok()) return s;
        stats_.page_reads++;
        const uint64_t version = bucket_version_[static_cast<size_t>(b)];
        if (encrypt_ && version > 0) {
            cipher_.Apply(
                b, version,
                std::span<uint32_t>(
                    reinterpret_cast<uint32_t*>(dst.data()),
                    static_cast<size_t>(page_words)));
        }
    }
    return serving::Status::Ok();
}

void
RawOram::StashInsertMasked(uint64_t insert_mask, uint64_t id,
                           uint32_t leaf, const uint32_t* data)
{
    uint64_t done = 0;
    for (int64_t s = 0; s < stash_capacity_; ++s) {
        const uint64_t free_mask =
            EqMask(stash_id_[static_cast<size_t>(s)], kDummyId);
        const uint64_t take = insert_mask & free_mask & ~done;
        stash_id_[static_cast<size_t>(s)] =
            Select(take, id, stash_id_[static_cast<size_t>(s)]);
        stash_leaf_[static_cast<size_t>(s)] = static_cast<uint32_t>(
            Select(take, leaf, stash_leaf_[static_cast<size_t>(s)]));
        CtCopyWords(take, data,
                      stash_data_.data() + s * block_words_,
                      block_words_);
        done |= take;
    }
    if (insert_mask != 0 && done == 0) {
        throw std::runtime_error("raw oram: stash overflow (capacity " +
                                 std::to_string(stash_capacity_) + ")");
    }
}

serving::Status
RawOram::Access(int64_t id, Op op, std::span<uint32_t> read_out,
                std::span<const uint32_t> write_in)
{
    if (!loaded_) {
        return serving::Status::Error(serving::StatusCode::kInternal,
                                      "raw oram: not bulk-loaded");
    }
    if (id < 0 || id >= num_blocks_) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "block id " + std::to_string(id) + " out of range [0, " +
                std::to_string(num_blocks_) + ")");
    }
    TELEMETRY_SPAN("store.raw_oram.access");
    const auto uid = static_cast<uint64_t>(id);
    const auto new_leaf =
        static_cast<uint32_t>(rng_.NextBounded(
            static_cast<uint64_t>(num_leaves_)));
    const uint32_t old_leaf = posmap_.Update(id, new_leaf);

    // Oblivious extraction from the stash (the block may still be there
    // from an earlier access in the current eviction window).
    std::vector<uint32_t> block(static_cast<size_t>(block_words_), 0);
    uint64_t found = 0;
    RecordStashScan(false);
    for (int64_t s = 0; s < stash_capacity_; ++s) {
        const uint64_t m =
            EqMask(stash_id_[static_cast<size_t>(s)], uid);
        CtCopyWords(m, stash_data_.data() + s * block_words_,
                      block.data(), block_words_);
        stash_id_[static_cast<size_t>(s)] =
            Select(m, kDummyId, stash_id_[static_cast<size_t>(s)]);
        found |= m;
    }

    // Read path: levels+1 whole-page fetches, no write-back (RAW).
    if (auto s = FetchPath(old_leaf); !s.ok()) return s;
    for (int64_t level = 0; level <= levels_; ++level) {
        const int64_t b = path_buckets_[static_cast<size_t>(level)];
        RecordMetaScan(b);
        const auto* words = reinterpret_cast<const uint32_t*>(
            path_pages_.data() + level * cache_->page_bytes());
        for (int64_t z = 0; z < bucket_slots_; ++z) {
            const size_t slot =
                static_cast<size_t>(b * bucket_slots_ + z);
            const uint64_t m = EqMask(slot_id_[slot], uid);
            CtCopyWords(m, words + z * block_words_, block.data(),
                          block_words_);
            slot_id_[slot] = Select(m, kDummyId, slot_id_[slot]);
            found |= m;
        }
    }
    assert(found != 0 && "bulk-loaded block must exist");
    (void)found;

    if (op == Op::kWrite) {
        std::memcpy(block.data(), write_in.data(),
                    static_cast<size_t>(block_words_) * sizeof(uint32_t));
    }
    RecordStashScan(true);
    StashInsertMasked(~uint64_t{0}, uid, new_leaf, block.data());
    if (op == Op::kRead) {
        std::memcpy(read_out.data(), block.data(),
                    static_cast<size_t>(block_words_) * sizeof(uint32_t));
    }

    // The ack point: the delta is durable before the caller sees Ok.
    // (The payload is journaled for reads too — a RAW read invalidates
    // the on-disk slot and the block then lives only in the RAM stash.)
    if (durability_.enabled()) {
        if (auto s = AppendAccessRecord(uid, new_leaf, op, block.data());
            !s.ok()) {
            return s;
        }
    }

    stats_.accesses++;
    stats_.stash_peak = std::max(stats_.stash_peak, StashOccupancy());
    if (stats_.accesses % eviction_period_ == 0) {
        if (auto s = Evict(); !s.ok()) return s;
    }
    return MaybeAutoCheckpoint();
}

serving::Status
RawOram::Evict()
{
    TELEMETRY_SPAN("store.raw_oram.evict");
    const uint64_t counter_before = evict_counter_;
    const uint32_t leaf = NextEvictionLeaf();
    if (auto s = FetchPath(leaf); !s.ok()) return s;
    const int64_t page_bytes = cache_->page_bytes();

    // Journal the decrypted path pre-image BEFORE any mutation or page
    // write: replay re-executes phase 1 from the record and phase 2
    // deterministically, so a crash at any point mid-write-back recovers
    // by rewriting the whole path.
    if (durability_.enabled()) {
        if (auto s = AppendEvictRecord(counter_before, leaf); !s.ok()) {
            return s;
        }
        MaybeCrash(CrashSite::kEvictAfterJournal);
    }

    // Phase 1: pull every real path block into the stash (mask-gated
    // insert per slot; dummies insert nothing but cost the same scan).
    for (int64_t level = 0; level <= levels_; ++level) {
        const int64_t b = path_buckets_[static_cast<size_t>(level)];
        RecordMetaScan(b);
        const auto* words = reinterpret_cast<const uint32_t*>(
            path_pages_.data() + level * page_bytes);
        for (int64_t z = 0; z < bucket_slots_; ++z) {
            const size_t slot =
                static_cast<size_t>(b * bucket_slots_ + z);
            const uint64_t valid = ~EqMask(slot_id_[slot], kDummyId);
            RecordStashScan(true);
            StashInsertMasked(valid, slot_id_[slot], slot_leaf_[slot],
                              words + z * block_words_);
            slot_id_[slot] = kDummyId;
        }
    }
    stats_.stash_peak = std::max(stats_.stash_peak, StashOccupancy());

    if (auto s = RepackAndWriteBack(leaf); !s.ok()) return s;
    stats_.evictions++;
    return serving::Status::Ok();
}

serving::Status
RawOram::RepackAndWriteBack(uint32_t leaf)
{
    const int64_t page_bytes = cache_->page_bytes();
    const int64_t page_words = bucket_slots_ * block_words_;
    // Phase 2: greedy deepest-first repack with constant-time selects,
    // then re-encrypt under a fresh version and write the page back.
    // Never reads the fetched page content (pages are rebuilt from the
    // stash), which is what lets journal replay re-run it idempotently.
    for (int64_t level = levels_; level >= 0; --level) {
        const int64_t b = path_buckets_[static_cast<size_t>(level)];
        RecordMetaScan(b);
        auto* page = path_pages_.data() + level * page_bytes;
        std::memset(page, 0, static_cast<size_t>(page_bytes));
        auto* words = reinterpret_cast<uint32_t*>(page);
        for (int64_t z = 0; z < bucket_slots_; ++z) {
            const size_t slot =
                static_cast<size_t>(b * bucket_slots_ + z);
            uint64_t chosen = 0;
            RecordStashScan(false);
            for (int64_t s = 0; s < stash_capacity_; ++s) {
                const size_t si = static_cast<size_t>(s);
                const uint64_t valid =
                    ~EqMask(stash_id_[si], kDummyId);
                const uint64_t take =
                    valid & CanPlaceMask(stash_leaf_[si], leaf, level) &
                    ~chosen;
                CtCopyWords(take,
                              stash_data_.data() + s * block_words_,
                              words + z * block_words_, block_words_);
                slot_id_[slot] = Select(take, stash_id_[si],
                                        slot_id_[slot]);
                slot_leaf_[slot] = static_cast<uint32_t>(Select(
                    take, stash_leaf_[si], slot_leaf_[slot]));
                stash_id_[si] = Select(take, kDummyId, stash_id_[si]);
                chosen |= take;
            }
        }
        uint64_t& version = bucket_version_[static_cast<size_t>(b)];
        if (encrypt_) {
            ++version;
            cipher_.Apply(b, version,
                          std::span<uint32_t>(
                              words, static_cast<size_t>(page_words)));
        }
        RecordPage(b, true);
        std::span<const uint8_t> src{page,
                                     static_cast<size_t>(page_bytes)};
        if (auto s = cache_->WritePage(b, src); !s.ok()) return s;
        stats_.page_writes++;
        MaybeCrash(CrashSite::kEvictMidPages);
    }
    return serving::Status::Ok();
}

serving::Status
RawOram::Read(int64_t id, std::span<uint32_t> out)
{
    if (out.size() != static_cast<size_t>(block_words_)) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "raw oram read: bad block buffer size");
    }
    return Access(id, Op::kRead, out, {});
}

serving::Status
RawOram::Write(int64_t id, std::span<const uint32_t> in)
{
    if (in.size() != static_cast<size_t>(block_words_)) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "raw oram write: bad block buffer size");
    }
    return Access(id, Op::kWrite, {}, in);
}

// ---------------------------------------------------------------------------
// Durability: checkpoint, journal, recovery replay
// ---------------------------------------------------------------------------

namespace {

void
AppendU32(std::vector<uint8_t>* out, uint32_t v)
{
    const size_t n = out->size();
    out->resize(n + sizeof(v));
    std::memcpy(out->data() + n, &v, sizeof(v));
}

void
AppendU64(std::vector<uint8_t>* out, uint64_t v)
{
    const size_t n = out->size();
    out->resize(n + sizeof(v));
    std::memcpy(out->data() + n, &v, sizeof(v));
}

uint32_t
TakeU32(const uint8_t* p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

uint64_t
TakeU64(const uint8_t* p)
{
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

}  // namespace

serving::Status
RawOram::InitDurability()
{
    return Checkpoint();
}

void
RawOram::RecordJournalAppend(int64_t record_bytes)
{
    if (recorder_ != nullptr) {
        // journal_.bytes() already includes this record; the write
        // started at the (public) cursor before it.
        recorder_->Record(
            journal_trace_base_ +
                static_cast<uint64_t>(JournalFileHeaderBytes() +
                                      journal_.bytes() - record_bytes),
            static_cast<uint32_t>(record_bytes), true);
    }
}

void
RawOram::RecordCheckpointWrite(int64_t bytes)
{
    if (recorder_ == nullptr) return;
    // The serializer's stash sweep is modelled at slot granularity. The
    // full-sweep format serializes every slot, occupied or dummy, so the
    // trace is a geometry constant: fixed prefix + stash_capacity slot
    // records + fixed trailer. The sparse negative control gathers only
    // occupied slots — its record count and offsets follow the
    // (secret-dependent) stash occupancy, which is exactly the leak the
    // statistical engine must reject.
    const uint64_t entry_bytes =
        12 + 4 * static_cast<uint64_t>(block_words_);
    // 24-byte prologue + 11 scalar fields + posmap + slot tables.
    const uint64_t prefix_bytes =
        24 + 11 * 8 + 4 * static_cast<uint64_t>(num_blocks_) +
        12 * static_cast<uint64_t>(num_buckets_ * bucket_slots_);
    recorder_->Record(ckpt_trace_base_,
                      static_cast<uint32_t>(prefix_bytes), true);
    // The sparse serializer packs occupied entries sequentially, so the
    // write cursor (and the record count) IS the occupancy; the dense
    // sweep writes slot s at offset s regardless.
    uint64_t cursor = 0;
    for (int64_t s = 0; s < stash_capacity_; ++s) {
        if (durability_.unsafe_sparse_checkpoint &&
            stash_id_[static_cast<size_t>(s)] == kDummyId) {
            continue;
        }
        const uint64_t pos = durability_.unsafe_sparse_checkpoint
                                 ? cursor++
                                 : static_cast<uint64_t>(s);
        recorder_->Record(ckpt_trace_base_ + prefix_bytes +
                              pos * entry_bytes,
                          static_cast<uint32_t>(entry_bytes), true);
    }
    const uint64_t trailer_off =
        prefix_bytes +
        static_cast<uint64_t>(stash_capacity_) * entry_bytes;
    recorder_->Record(
        ckpt_trace_base_ + trailer_off,
        static_cast<uint32_t>(8 * static_cast<uint64_t>(num_buckets_) + 4),
        true);
    (void)bytes;
}

serving::Status
RawOram::AppendAccessRecord(uint64_t id, uint32_t new_leaf, Op op,
                            const uint32_t* block)
{
    journal_payload_.clear();
    AppendU64(&journal_payload_, id);
    AppendU32(&journal_payload_, new_leaf);
    AppendU32(&journal_payload_, op == Op::kWrite ? 1u : 0u);
    const size_t n = journal_payload_.size();
    journal_payload_.resize(
        n + static_cast<size_t>(block_words_) * sizeof(uint32_t));
    std::memcpy(journal_payload_.data() + n, block,
                static_cast<size_t>(block_words_) * sizeof(uint32_t));

    if (auto s = journal_.Append(JournalRecordType::kAccess, seq_ + 1,
                                 journal_payload_,
                                 durability_.sync_each_append);
        !s.ok()) {
        return s;
    }
    seq_++;
    accesses_since_ckpt_++;
    stats_.journal_appends++;
    RecordJournalAppend(JournalRecordBytes(
        static_cast<int64_t>(journal_payload_.size())));
    return serving::Status::Ok();
}

serving::Status
RawOram::AppendEvictRecord(uint64_t counter_before, uint32_t leaf)
{
    // Captured after FetchPath and before phase 1: slot metadata and the
    // decrypted page content are still the pre-eviction state.
    journal_payload_.clear();
    AppendU64(&journal_payload_, counter_before);
    AppendU32(&journal_payload_, leaf);
    AppendU32(&journal_payload_, 0);  // pad
    const int64_t page_bytes = cache_->page_bytes();
    for (int64_t level = 0; level <= levels_; ++level) {
        const int64_t b = path_buckets_[static_cast<size_t>(level)];
        const auto* words = reinterpret_cast<const uint32_t*>(
            path_pages_.data() + level * page_bytes);
        for (int64_t z = 0; z < bucket_slots_; ++z) {
            const size_t slot =
                static_cast<size_t>(b * bucket_slots_ + z);
            AppendU64(&journal_payload_, slot_id_[slot]);
            AppendU32(&journal_payload_, slot_leaf_[slot]);
            const size_t n = journal_payload_.size();
            journal_payload_.resize(
                n + static_cast<size_t>(block_words_) * sizeof(uint32_t));
            std::memcpy(journal_payload_.data() + n,
                        words + z * block_words_,
                        static_cast<size_t>(block_words_) *
                            sizeof(uint32_t));
        }
    }

    if (auto s = journal_.Append(JournalRecordType::kEvict, seq_ + 1,
                                 journal_payload_,
                                 durability_.sync_each_append);
        !s.ok()) {
        return s;
    }
    seq_++;
    stats_.journal_appends++;
    RecordJournalAppend(JournalRecordBytes(
        static_cast<int64_t>(journal_payload_.size())));
    return serving::Status::Ok();
}

CheckpointData
RawOram::BuildCheckpointData() const
{
    CheckpointData d;
    d.num_blocks = num_blocks_;
    d.block_words = block_words_;
    d.bucket_slots = bucket_slots_;
    d.levels = levels_;
    d.stash_capacity = stash_capacity_;
    d.eviction_period = eviction_period_;
    d.cipher_seed = cipher_seed_;
    d.evict_counter = evict_counter_;
    d.last_seq = seq_;
    d.accesses = stats_.accesses;
    d.evictions = stats_.evictions;
    d.slot_id = slot_id_;
    d.slot_leaf = slot_leaf_;
    d.stash_id = stash_id_;
    d.stash_leaf = stash_leaf_;
    d.stash_data = stash_data_;
    d.bucket_version = bucket_version_;
    return d;
}

serving::Status
RawOram::Checkpoint()
{
    if (!durability_.enabled()) return serving::Status::Ok();
    if (!loaded_) {
        return serving::Status::Error(serving::StatusCode::kInternal,
                                      "raw oram: not bulk-loaded");
    }
    TELEMETRY_SPAN("store.ckpt.write");
    // Pages first: the checkpoint asserts "all page writes with seq <=
    // last_seq are on disk", which replay relies on to skip re-reading.
    if (auto s = cache_->Sync(); !s.ok()) return s;
    CheckpointData d = BuildCheckpointData();
    if (auto s = posmap_.SnapshotLeaves(&d.posmap_leaves); !s.ok()) {
        return s;
    }
    int64_t bytes = 0;
    if (auto s = WriteCheckpointAtomic(ckpt_path_, d,
                                       durability_.unsafe_sparse_checkpoint,
                                       &bytes);
        !s.ok()) {
        return s;
    }
    stats_.checkpoints++;
    stats_.checkpoint_bytes = bytes;
    RecordCheckpointWrite(bytes);
    TELEMETRY_COUNT("store.ckpt.checkpoints", 1);
    TELEMETRY_GAUGE_SET("store.ckpt.last_bytes",
                        static_cast<double>(bytes));
    if (flight_ != nullptr) {
        serving::FlightEvent ev;
        ev.hop = serving::FlightHop::kStoreCheckpoint;
        ev.detail = static_cast<uint32_t>(bytes / 1024);
        ev.feature = flight_feature_;
        flight_->Record(ev);
    }
    // Crash window: checkpoint renamed, journal not yet reset. Recovery
    // handles it by skipping journal records with seq <= last_seq.
    MaybeCrash(CrashSite::kCheckpointAfterRename);
    if (auto s = journal_.Reset(journal_path_, seq_, geometry_hash_);
        !s.ok()) {
        return s;
    }
    accesses_since_ckpt_ = 0;
    return serving::Status::Ok();
}

serving::Status
RawOram::MaybeAutoCheckpoint()
{
    if (!durability_.enabled()) return serving::Status::Ok();
    const bool interval_due =
        durability_.checkpoint_interval > 0 &&
        accesses_since_ckpt_ >= durability_.checkpoint_interval;
    const bool journal_full =
        journal_.records() >= durability_.journal_limit;
    if (interval_due || journal_full) return Checkpoint();
    return serving::Status::Ok();
}

serving::Status
RawOram::RestoreFromCheckpoint(const CheckpointData& d)
{
    if (d.num_blocks != num_blocks_ || d.block_words != block_words_ ||
        d.bucket_slots != bucket_slots_ || d.levels != levels_ ||
        d.stash_capacity != stash_capacity_ ||
        d.eviction_period != eviction_period_) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "checkpoint geometry does not match this construction "
            "(same num_blocks/block_words/page_bytes/stash/eviction "
            "period required)");
    }
    if (auto s = posmap_.RestoreLeaves(d.posmap_leaves); !s.ok()) {
        return s;
    }
    slot_id_ = d.slot_id;
    slot_leaf_ = d.slot_leaf;
    stash_id_ = d.stash_id;
    stash_leaf_ = d.stash_leaf;
    stash_data_ = d.stash_data;
    bucket_version_ = d.bucket_version;
    cipher_seed_ = d.cipher_seed;
    cipher_ = oram::BucketCipher(cipher_seed_);
    evict_counter_ = d.evict_counter;
    seq_ = d.last_seq;
    stats_.accesses = d.accesses;
    stats_.evictions = d.evictions;
    return serving::Status::Ok();
}

serving::Status
RawOram::ReplayAccess(const JournalRecord& rec)
{
    if (rec.payload.size() !=
        static_cast<size_t>(JournalAccessPayloadBytes(block_words_))) {
        return serving::Status::Error(
            serving::StatusCode::kInternal,
            "access record " + std::to_string(rec.seq) +
                " has a malformed payload");
    }
    const uint8_t* p = rec.payload.data();
    const uint64_t id = TakeU64(p);
    const uint32_t new_leaf = TakeU32(p + 8);
    std::vector<uint32_t> block(static_cast<size_t>(block_words_));
    std::memcpy(block.data(), p + 16,
                static_cast<size_t>(block_words_) * sizeof(uint32_t));
    if (id >= static_cast<uint64_t>(num_blocks_) ||
        new_leaf >= static_cast<uint32_t>(num_leaves_)) {
        return serving::Status::Error(
            serving::StatusCode::kInternal,
            "access record " + std::to_string(rec.seq) +
                " references out-of-range block or leaf");
    }

    // Re-execute the RAM effect of the access: the fetched path is
    // determined by the (restored) posmap, the inserted payload by the
    // record. No page IO — reads wrote nothing back.
    const uint32_t old_leaf =
        posmap_.Update(static_cast<int64_t>(id), new_leaf);
    for (int64_t s = 0; s < stash_capacity_; ++s) {
        const uint64_t m =
            EqMask(stash_id_[static_cast<size_t>(s)], id);
        stash_id_[static_cast<size_t>(s)] =
            Select(m, kDummyId, stash_id_[static_cast<size_t>(s)]);
    }
    for (int64_t level = 0; level <= levels_; ++level) {
        const int64_t b = BucketOnPath(old_leaf, level);
        for (int64_t z = 0; z < bucket_slots_; ++z) {
            const size_t slot =
                static_cast<size_t>(b * bucket_slots_ + z);
            const uint64_t m = EqMask(slot_id_[slot], id);
            slot_id_[slot] = Select(m, kDummyId, slot_id_[slot]);
        }
    }
    StashInsertMasked(~uint64_t{0}, id, new_leaf, block.data());
    stats_.accesses++;
    return serving::Status::Ok();
}

serving::Status
RawOram::ReplayEvict(const JournalRecord& rec)
{
    const int64_t path_slots = (levels_ + 1) * bucket_slots_;
    if (rec.payload.size() !=
        static_cast<size_t>(
            JournalEvictPayloadBytes(path_slots, block_words_))) {
        return serving::Status::Error(
            serving::StatusCode::kInternal,
            "evict record " + std::to_string(rec.seq) +
                " has a malformed payload");
    }
    const uint8_t* p = rec.payload.data();
    const uint64_t counter = TakeU64(p);
    const uint32_t rec_leaf = TakeU32(p + 8);
    if (counter != evict_counter_) {
        return serving::Status::Error(
            serving::StatusCode::kInternal,
            "evict record " + std::to_string(rec.seq) +
                " is out of order: counter " + std::to_string(counter) +
                " vs expected " + std::to_string(evict_counter_));
    }
    const uint32_t leaf = NextEvictionLeaf();
    if (rec_leaf != leaf) {
        return serving::Status::Error(
            serving::StatusCode::kInternal,
            "evict record " + std::to_string(rec.seq) +
                " names leaf " + std::to_string(rec_leaf) +
                ", schedule says " + std::to_string(leaf));
    }

    // Phase 1 from the journaled pre-image (the live pass read it from
    // the decrypted pages; the record captured exactly that).
    for (int64_t level = 0; level <= levels_; ++level) {
        path_buckets_[static_cast<size_t>(level)] =
            BucketOnPath(leaf, level);
    }
    const uint8_t* e = p + 16;
    std::vector<uint32_t> block(static_cast<size_t>(block_words_));
    for (int64_t level = 0; level <= levels_; ++level) {
        const int64_t b = path_buckets_[static_cast<size_t>(level)];
        for (int64_t z = 0; z < bucket_slots_; ++z) {
            const uint64_t e_id = TakeU64(e);
            const uint32_t e_leaf = TakeU32(e + 8);
            std::memcpy(block.data(), e + 12,
                        static_cast<size_t>(block_words_) *
                            sizeof(uint32_t));
            e += 12 + static_cast<size_t>(block_words_) * sizeof(uint32_t);
            const uint64_t valid = ~EqMask(e_id, kDummyId);
            StashInsertMasked(valid, e_id, e_leaf, block.data());
            slot_id_[static_cast<size_t>(b * bucket_slots_ + z)] =
                kDummyId;
        }
    }
    // Phase 2 is deterministic given the stash + metadata, and rewrites
    // every page of the path — idempotent over however many of the
    // original page writes reached disk before the crash.
    if (auto s = RepackAndWriteBack(leaf); !s.ok()) return s;
    stats_.evictions++;
    return serving::Status::Ok();
}

serving::Status
RawOram::Recover(int64_t num_blocks, int64_t block_words,
                 std::unique_ptr<PageCache> cache, Rng& rng,
                 const RawOramConfig& config, std::unique_ptr<RawOram>* out,
                 RecoveryStats* stats)
{
    if (!config.durability.enabled()) {
        return serving::Status::Error(
            serving::StatusCode::kInvalidArgument,
            "raw oram recovery requires durability.dir");
    }
    TELEMETRY_SPAN("store.ckpt.recover");
    std::unique_ptr<RawOram> oram;
    try {
        oram = std::make_unique<RawOram>(num_blocks, block_words,
                                         std::move(cache), rng, config);
    } catch (const StoreError& e) {
        return e.status();
    }

    CheckpointData d;
    if (auto s = ReadCheckpoint(oram->ckpt_path_, &d); !s.ok()) return s;
    if (auto s = oram->RestoreFromCheckpoint(d); !s.ok()) return s;

    JournalLoadResult load;
    if (auto s = LoadJournal(oram->journal_path_, oram->geometry_hash_,
                             oram->seq_, &load);
        !s.ok()) {
        return s;
    }
    oram->recovery_stats_ = RecoveryStats{};
    oram->recovery_stats_.checkpoint_seq = d.last_seq;
    oram->recovery_stats_.skipped_records = load.skipped;
    oram->recovery_stats_.dropped_tail = load.dropped_tail;
    oram->recovery_stats_.dropped_tail_bytes = load.dropped_tail_bytes;

    oram->loaded_ = true;
    try {
        for (const JournalRecord& rec : load.records) {
            serving::Status s;
            if (rec.type == JournalRecordType::kAccess) {
                s = oram->ReplayAccess(rec);
                oram->recovery_stats_.replayed_accesses++;
            } else {
                s = oram->ReplayEvict(rec);
                oram->recovery_stats_.replayed_evictions++;
            }
            if (!s.ok()) return s;
            oram->seq_ = rec.seq;
        }
    } catch (const std::exception& e) {
        // A CRC-valid but semantically impossible record (stash
        // overflow, ...) must fail closed, not crash the recoverer.
        return serving::Status::Error(
            serving::StatusCode::kInternal,
            std::string("journal replay failed: ") + e.what());
    }
    oram->recovery_stats_.last_seq = oram->seq_;

    // Make the replayed page writes (and the store's CRC table) durable
    // before serving: recovery must converge, not defer.
    if (auto s = oram->cache_->Sync(); !s.ok()) return s;
    if (auto s = oram->journal_.OpenForAppend(
            oram->journal_path_,
            load.skipped + static_cast<int64_t>(load.records.size()),
            load.file_bytes - JournalFileHeaderBytes());
        !s.ok()) {
        return s;
    }
    TELEMETRY_COUNT("store.ckpt.recoveries", 1);
    if (stats != nullptr) *stats = oram->recovery_stats_;
    *out = std::move(oram);
    return serving::Status::Ok();
}

int64_t
RawOram::StashOccupancy() const
{
    int64_t n = 0;
    for (const uint64_t id : stash_id_) {
        if (id != kDummyId) ++n;
    }
    return n;
}

int64_t
RawOram::MemoryFootprintBytes() const
{
    const int64_t metadata =
        static_cast<int64_t>(slot_id_.size() * sizeof(uint64_t) +
                             slot_leaf_.size() * sizeof(uint32_t));
    const int64_t stash =
        static_cast<int64_t>(stash_id_.size() * sizeof(uint64_t) +
                             stash_leaf_.size() * sizeof(uint32_t) +
                             stash_data_.size() * sizeof(uint32_t));
    const int64_t scratch = static_cast<int64_t>(
        path_pages_.size() +
        bucket_version_.size() * sizeof(uint64_t));
    const int64_t cache_bytes =
        cache_->capacity_pages() * cache_->page_bytes();
    return metadata + stash + scratch + cache_bytes +
           posmap_.FootprintBytes();
}

}  // namespace secemb::store
