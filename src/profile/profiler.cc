#include "profile/profiler.h"

#include <algorithm>
#include <cmath>

#include "bench_util/bench_util.h"

namespace secemb::profile {

double
MeasureGeneratorLatencyNs(core::EmbeddingGenerator& gen, int batch_size,
                          Rng& rng, int reps)
{
    std::vector<int64_t> indices(static_cast<size_t>(batch_size));
    for (auto& idx : indices) {
        idx = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(gen.num_rows())));
    }
    Tensor out({batch_size, gen.dim()});
    return bench::TimeCallNs([&] { gen.Generate(indices, out); },
                             /*warmup=*/1, reps);
}

ProfileResult
ProfileThresholds(const ProfileConfig& config, Rng& rng)
{
    ProfileResult result;
    for (int batch : config.batch_sizes) {
        for (int threads : config.thread_counts) {
            std::vector<double> scan_ns, dhe_ns;
            for (int64_t size : config.table_sizes) {
                core::GeneratorOptions opt;
                opt.batch_size = batch;
                opt.nthreads = threads;
                auto scan = core::MakeGenerator(
                    core::GenKind::kLinearScan, size, config.dim, rng,
                    opt);
                auto dhe = core::MakeGenerator(
                    config.varied_dhe ? core::GenKind::kDheVaried
                                      : core::GenKind::kDheUniform,
                    size, config.dim, rng, opt);
                const double s =
                    MeasureGeneratorLatencyNs(*scan, batch, rng,
                                              config.reps);
                const double d =
                    MeasureGeneratorLatencyNs(*dhe, batch, rng,
                                              config.reps);
                scan_ns.push_back(s);
                dhe_ns.push_back(d);
                result.points.push_back(
                    {batch, threads, size, s, d});
            }
            // Crossover: first grid point where the scan is slower, with
            // log-log interpolation against the previous point.
            int64_t threshold = config.table_sizes.back();
            for (size_t i = 0; i < config.table_sizes.size(); ++i) {
                if (scan_ns[i] > dhe_ns[i]) {
                    if (i == 0) {
                        threshold = config.table_sizes[0];
                    } else {
                        const double x0 = std::log2(static_cast<double>(
                            config.table_sizes[i - 1]));
                        const double x1 = std::log2(static_cast<double>(
                            config.table_sizes[i]));
                        const double g0 =
                            std::log2(scan_ns[i - 1] / dhe_ns[i - 1]);
                        const double g1 =
                            std::log2(scan_ns[i] / dhe_ns[i]);
                        // Zero of the latency-gap line in log space.
                        const double x =
                            (g1 - g0) == 0.0
                                ? x1
                                : x0 - g0 * (x1 - x0) / (g1 - g0);
                        threshold = static_cast<int64_t>(
                            std::pow(2.0, std::clamp(x, x0, x1)));
                    }
                    break;
                }
            }
            result.thresholds.Add({batch, threads, threshold});
        }
    }
    return result;
}

core::ThresholdTable
QuickThresholds(int batch_size, int nthreads, int64_t dim,
                bool varied_dhe, Rng& rng)
{
    ProfileConfig cfg;
    cfg.batch_sizes = {batch_size};
    cfg.thread_counts = {nthreads};
    cfg.table_sizes = {64, 256, 1024, 4096, 16384};
    cfg.dim = dim;
    cfg.reps = 2;
    cfg.varied_dhe = varied_dhe;
    return ProfileThresholds(cfg, rng).thresholds;
}

double
ContentionModel::Latency(double single_ns, int copies,
                         bool memory_bound) const
{
    const double timeshare =
        std::max(1.0, static_cast<double>(copies) / cores);
    const double rate =
        memory_bound ? scan_interference : dhe_interference;
    return single_ns * timeshare * (1.0 + rate * (copies - 1));
}

double
ContentionModel::MixedLatency(double single_ns, int scan_copies,
                              int dhe_copies, bool memory_bound) const
{
    const int copies = scan_copies + dhe_copies;
    const double timeshare =
        std::max(1.0, static_cast<double>(copies) / cores);
    // Interference felt from each neighbour depends on the neighbour's
    // technique: memory-bound neighbours hurt more.
    const int neighbours_scan = scan_copies - (memory_bound ? 1 : 0);
    const int neighbours_dhe = dhe_copies - (memory_bound ? 0 : 1);
    const double interference =
        scan_interference * std::max(0, neighbours_scan) +
        dhe_interference * std::max(0, neighbours_dhe);
    return single_ns * timeshare * (1.0 + interference);
}

}  // namespace secemb::profile
