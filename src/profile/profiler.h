#pragma once

/**
 * @file
 * Offline latency profiling (paper Section IV-C1): measure linear scan vs
 * DHE across table sizes for each execution configuration and extract the
 * crossover threshold that drives the hybrid scheme, plus the co-location
 * contention model behind Figs. 8, 9 and 13.
 */

#include <cstdint>
#include <vector>

#include "core/factory.h"
#include "core/hybrid.h"
#include "tensor/rng.h"

namespace secemb::profile {

/** Mean latency (ns) of one batch of embedding generation. */
double MeasureGeneratorLatencyNs(core::EmbeddingGenerator& gen,
                                 int batch_size, Rng& rng, int reps = 3);

/** Grid over which thresholds are profiled. */
struct ProfileConfig
{
    std::vector<int> batch_sizes{8, 32, 128};
    std::vector<int> thread_counts{1, 4};
    /** Table-size grid; the crossover is interpolated between points. */
    std::vector<int64_t> table_sizes{256, 1024, 4096, 16384, 65536};
    int64_t dim = 64;
    int reps = 3;
    bool varied_dhe = false;  ///< profile against DHE Varied instead
};

/** One profiled point: latency of both techniques at one table size. */
struct ProfilePoint
{
    int batch_size;
    int nthreads;
    int64_t table_size;
    double scan_ns;
    double dhe_ns;
};

/** Full profiling result: raw points plus the derived thresholds. */
struct ProfileResult
{
    std::vector<ProfilePoint> points;
    core::ThresholdTable thresholds;
};

/**
 * Run the offline profiling pass (Algorithm 2, offline step 1).
 * Deterministic given rng's seed.
 */
ProfileResult ProfileThresholds(const ProfileConfig& config, Rng& rng);

/**
 * Convenience single-configuration profile: the threshold table for one
 * (batch, threads, dim) point — what a deployment runs at model-load
 * time before constructing hybrid generators.
 */
core::ThresholdTable QuickThresholds(int batch_size, int nthreads,
                                     int64_t dim, bool varied_dhe,
                                     Rng& rng);

/**
 * Analytic co-location contention model.
 *
 * Our evaluation host is a single core, so the paper's 28-core co-location
 * experiments (Figs. 8, 9, 13) cannot be timed directly; instead measured
 * single-model latencies are extended with this documented model:
 * oversubscription beyond `cores` timeshares linearly, and each co-located
 * model adds a small interference term — larger for memory-bound
 * techniques (linear scan) than compute-bound ones (DHE), the asymmetry
 * Fig. 8 shows.
 */
struct ContentionModel
{
    int cores = 28;
    double scan_interference = 0.03;  ///< per co-located model
    double dhe_interference = 0.012;

    /** Per-model latency with `copies` identical co-located models. */
    double Latency(double single_ns, int copies, bool memory_bound) const;

    /**
     * Per-model latency in a mixed fleet: `scan_copies` linear-scan models
     * and `dhe_copies` DHE models; returns the latency of one model of the
     * kind selected by `memory_bound`.
     */
    double MixedLatency(double single_ns, int scan_copies, int dhe_copies,
                        bool memory_bound) const;
};

}  // namespace secemb::profile
