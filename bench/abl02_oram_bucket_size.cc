/**
 * @file
 * Ablation: ORAM bucket capacity Z.
 *
 * The paper fixes Z = 4 (following ZeroTrace / Path ORAM's analysis).
 * This ablation shows why: smaller Z squeezes the tree but pushes blocks
 * into the stash; larger Z inflates every path's data movement.
 */

#include <cstdio>

#include "bench_util/bench_util.h"
#include "core/table_generators.h"
#include "profile/profiler.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t size = args.GetInt("--size", 16384);
    const int64_t dim = 64;

    std::printf("=== Ablation: bucket capacity Z (Circuit ORAM, %ld "
                "blocks, dim %ld) ===\n\n", size, dim);

    bench::TablePrinter table({"Z", "lookup (ms)", "footprint (MB)",
                               "max stash after 500 reads"});
    for (int z : {2, 3, 4, 6, 8}) {
        Rng rng(z);
        oram::OramParams params =
            oram::OramParams::Defaults(oram::OramKind::kCircuit);
        params.bucket_capacity = z;
        params.stash_capacity = 40;  // headroom to observe pressure
        const Tensor t = Tensor::Randn({size, dim}, rng);
        int64_t max_stash = 0;
        double ns = 0.0;
        bool overflowed = false;
        try {
            core::OramTable gen(t, oram::OramKind::kCircuit, rng,
                                &params);
            Rng idx(7);
            ns = profile::MeasureGeneratorLatencyNs(gen, 1, idx, 3);
            std::vector<uint32_t> block(static_cast<size_t>(dim));
            Rng wl(9);
            for (int i = 0; i < 500; ++i) {
                gen.oram().Read(
                    static_cast<int64_t>(wl.NextBounded(size)), block);
                max_stash =
                    std::max(max_stash, gen.oram().StashOccupancy());
            }
            table.AddRow(
                {std::to_string(z), bench::TablePrinter::Ms(ns, 3),
                 bench::TablePrinter::Mb(gen.MemoryFootprintBytes(), 1),
                 std::to_string(max_stash)});
        } catch (const std::exception& e) {
            overflowed = true;
            table.AddRow({std::to_string(z), "-", "-",
                          std::string("OVERFLOW: ") + e.what()});
        }
        (void)overflowed;
    }
    table.Print();
    std::printf(
        "\nReading: Z = 4 (the paper's setting) balances per-path cost\n"
        "against stash pressure; Z = 2 risks overflow, Z = 8 nearly\n"
        "doubles the data touched per access.\n");
    return 0;
}
