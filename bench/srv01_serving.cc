/**
 * @file
 * Serving-pipeline benchmark: end-to-end request latency (p50/p95/p99)
 * and shed rate at three offered loads — light, at-capacity, and
 * overload — against a Server fronting a linear-scan generator.
 *
 * Capacity is calibrated on this machine from the single-lookup scan
 * cost, so "1.0x" genuinely saturates the batcher. Requests are submitted
 * open-loop (paced by submit time, never by completion) so overload
 * actually overflows the bounded queue and exercises typed shedding and
 * load-based degradation rather than just slowing the producers down.
 *
 *   $ ./srv01_serving [--rows N] [--dim D] [--requests N]
 *                     [--producers P] [--json out.json]
 *                     [--flight-trace out.trace.json]
 *
 * Per load, the JSON report also carries the sampled queue-depth
 * time-series percentiles (one observation per batch flush) and the
 * shed/retry/degrade counters, so a trajectory diff shows *why* latency
 * moved, not just that it did. --flight-trace dumps the overload run's
 * flight-recorder window as a chrome://tracing document.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/bench_util.h"
#include "bench_util/json.h"
#include "core/table_generators.h"
#include "serving/server.h"
#include "telemetry/telemetry.h"
#include "tensor/rng.h"

using namespace secemb;

namespace {

struct LoadResult
{
    double offered_qps = 0.0;
    serving::ServerStats stats;
    std::vector<double> ok_latency_ns;
    telemetry::Histogram::Snapshot queue_depth;  ///< sampled time-series
};

LoadResult
RunLoad(const std::shared_ptr<core::EmbeddingGenerator>& gen,
        double offered_qps, int total_requests, int producers,
        int64_t rows, const std::string& flight_trace_path)
{
    // Each load gets its own metric epoch so the sampled queue-depth
    // series reflects this load alone.
    telemetry::Registry::Instance().ResetAll();
    serving::ServerConfig cfg;
    cfg.queue_capacity = 64;
    cfg.max_batch = 8;
    cfg.flush_deadline_us = 100;
    cfg.default_deadline_us = 50000;
    serving::Server server({gen}, cfg);

    const int per_producer = (total_requests + producers - 1) / producers;
    const auto interval = std::chrono::nanoseconds(static_cast<int64_t>(
        1e9 * producers / std::max(offered_qps, 1.0)));

    std::vector<std::vector<std::future<serving::Response>>> futures(
        static_cast<size_t>(producers));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(producers));
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < producers; ++t) {
        threads.emplace_back([&, t] {
            auto& mine = futures[static_cast<size_t>(t)];
            mine.reserve(static_cast<size_t>(per_producer));
            for (int i = 0; i < per_producer; ++i) {
                std::this_thread::sleep_until(start + (i + 1) * interval);
                serving::Request req;
                req.indices = {static_cast<int64_t>(
                    (static_cast<uint64_t>(t) * 2654435761ull +
                     static_cast<uint64_t>(i) * 40503ull) %
                    static_cast<uint64_t>(rows))};
                mine.push_back(server.Submit(std::move(req)));
            }
        });
    }
    for (auto& th : threads) th.join();

    LoadResult result;
    result.offered_qps = offered_qps;
    for (auto& mine : futures) {
        for (auto& fut : mine) {
            const serving::Response resp = fut.get();
            if (resp.status.ok()) {
                result.ok_latency_ns.push_back(
                    static_cast<double>(resp.e2e_ns));
            }
        }
    }
    server.Shutdown();
    result.stats = server.GetStats();
    result.queue_depth = telemetry::Registry::Instance()
                             .GetHistogram("serving.queue_depth.sample")
                             .TakeSnapshot();
    if (!flight_trace_path.empty() &&
        server.flight_recorder() != nullptr &&
        !server.flight_recorder()->WriteChromeTrace(flight_trace_path)) {
        std::fprintf(stderr, "srv01: cannot write %s\n",
                     flight_trace_path.c_str());
    }
    return result;
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t rows = args.GetInt("--rows", 4096);
    const int64_t dim = args.GetInt("--dim", 64);
    const int total_requests =
        static_cast<int>(args.GetInt("--requests", 400));
    const int producers = static_cast<int>(args.GetInt("--producers", 4));
    const std::string json_path = args.GetString("--json");
    const std::string flight_trace = args.GetString("--flight-trace");

    Rng rng(17);
    auto gen = std::make_shared<core::LinearScanTable>(
        Tensor::Randn({rows, dim}, rng));

    // Calibrate this machine's single-lookup scan cost -> capacity.
    const double lookup_ns = bench::TimeCallNs(
        [&] {
            Tensor out({1, dim});
            const std::vector<int64_t> idx{rows / 2};
            gen->Generate(idx, out);
        },
        /*warmup=*/3, /*reps=*/20);
    const double capacity_qps = 1e9 / std::max(lookup_ns, 1.0);
    std::printf("=== srv01: serving latency/shed vs offered load ===\n");
    std::printf("scan %ld x %ld, lookup %.1f us -> capacity ~%.0f qps\n",
                rows, dim, lookup_ns * 1e-3, capacity_qps);

    bench::BenchReport report("srv01_serving");
    bench::TablePrinter table({"load", "offered qps", "p50 ms", "p95 ms",
                               "p99 ms", "shed %", "degraded batches"});

    const std::vector<std::pair<std::string, double>> loads{
        {"light_0.3x", 0.3}, {"capacity_1.0x", 1.0}, {"overload_3.0x", 3.0}};
    for (const auto& [name, mult] : loads) {
        // The overload run is the interesting flight-recorder window
        // (it actually sheds), so that is the one --flight-trace dumps.
        const LoadResult r =
            RunLoad(gen, capacity_qps * mult, total_requests, producers,
                    rows, mult >= 3.0 ? flight_trace : std::string());
        const bench::LatencyStats lat =
            bench::LatencyStats::FromSamples(r.ok_latency_ns);
        const double shed_rate =
            r.stats.submitted == 0
                ? 0.0
                : static_cast<double>(r.stats.shed) /
                      static_cast<double>(r.stats.submitted);

        table.AddRow({name, bench::TablePrinter::Num(r.offered_qps, 0),
                      bench::TablePrinter::Ms(lat.p50_ns, 3),
                      bench::TablePrinter::Ms(lat.p95_ns, 3),
                      bench::TablePrinter::Ms(lat.p99_ns, 3),
                      bench::TablePrinter::Num(100.0 * shed_rate, 1),
                      std::to_string(r.stats.degraded_batches)});

        auto& res = report.AddResult(name);
        res.num_params.emplace_back("offered_qps", r.offered_qps);
        res.num_params.emplace_back("offered_multiple", mult);
        res.num_params.emplace_back("shed_rate", shed_rate);
        res.num_params.emplace_back("rows", static_cast<double>(rows));
        res.num_params.emplace_back("dim", static_cast<double>(dim));
        // Sampled queue-depth time-series (one point per batch flush):
        // p50/p99 say how deep the queue ran across the load, which is
        // the early-warning signal for shed onset.
        res.num_params.emplace_back("queue_depth_p50", r.queue_depth.p50);
        res.num_params.emplace_back("queue_depth_p99", r.queue_depth.p99);
        res.num_params.emplace_back("queue_depth_max",
                                    static_cast<double>(r.queue_depth.max));
        res.num_params.emplace_back(
            "queue_depth_samples",
            static_cast<double>(r.queue_depth.count));
        res.latency = bench::LatencyStats::FromSamples(r.ok_latency_ns);
        res.counters.emplace_back("serving.submitted", r.stats.submitted);
        res.counters.emplace_back("serving.completed", r.stats.completed);
        res.counters.emplace_back("serving.shed", r.stats.shed);
        res.counters.emplace_back("serving.deadline_exceeded",
                                  r.stats.deadline_exceeded);
        res.counters.emplace_back("serving.retries", r.stats.retries);
        res.counters.emplace_back("serving.batches", r.stats.batches);
        res.counters.emplace_back("serving.degraded_batches",
                                  r.stats.degraded_batches);
        res.counters.emplace_back("serving.flight_recorded",
                                  r.stats.flight_recorded);
        res.counters.emplace_back("serving.flight_dropped",
                                  r.stats.flight_dropped);
    }
    table.Print();

    if (!json_path.empty() && !report.WriteTo(json_path)) {
        std::fprintf(stderr, "srv01: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    return 0;
}
