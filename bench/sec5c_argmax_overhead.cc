/**
 * @file
 * Section V-C claim check: the oblivious greedy argmax over the output
 * logits costs < 0.4% of the total generation latency.
 *
 * Measures the plain vs oblivious argmax over a vocab-sized logit row,
 * then compares against one measured decode step of a bench-scale GPT.
 */

#include <cstdio>

#include "bench_util/bench_util.h"
#include "core/factory.h"
#include "llm/gpt.h"
#include "oblivious/scan.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t vocab = args.GetInt("--vocab", 50257);

    std::printf("=== Section V-C: oblivious argmax overhead ===\n\n");

    Rng rng(1);
    const Tensor logits = Tensor::Randn({vocab}, rng);
    volatile int64_t sink = 0;

    const double plain_ns = bench::TimeCallNs(
        [&] {
            int64_t best = 0;
            const float* p = logits.data();
            for (int64_t j = 1; j < vocab; ++j) {
                if (p[j] > p[best]) best = j;
            }
            sink = best;
        },
        2, 20);
    const double obl_ns = bench::TimeCallNs(
        [&] { sink = oblivious::ObliviousArgmax(logits.flat()); }, 2, 20);
    (void)sink;

    // One decode step of a bench-scale GPT with a non-secure lookup: the
    // denominator of the paper's percentage.
    llm::GptConfig cfg = llm::GptConfig::BenchScale(256, vocab, 4);
    Rng mrng(2);
    auto gen = core::MakeGenerator(core::GenKind::kIndexLookup, vocab,
                                   cfg.dim, mrng);
    llm::SecureGpt model(cfg, std::move(gen), mrng);
    Tensor step_logits = model.Prefill({{1, 2, 3, 4, 5, 6, 7, 8}});
    const double decode_ns = bench::TimeCallNs(
        [&] { step_logits = model.DecodeStep({{5}}); }, 1, 5);

    bench::TablePrinter table({"operation", "latency (us)"});
    table.AddRow({"plain argmax (leaks via branches)",
                  bench::TablePrinter::Num(plain_ns * 1e-3, 1)});
    table.AddRow({"oblivious argmax (ct select scan)",
                  bench::TablePrinter::Num(obl_ns * 1e-3, 1)});
    table.AddRow({"one GPT decode step (bench-scale)",
                  bench::TablePrinter::Num(decode_ns * 1e-3, 1)});
    table.Print();

    std::printf("\noblivious argmax adds %.3f%% of a bench-scale decode "
                "step (added cost over plain argmax: %.1f us)\n",
                100.0 * (obl_ns - plain_ns) / (decode_ns + obl_ns),
                (obl_ns - plain_ns) * 1e-3);
    // The paper's denominator is a GPT-2 medium decode step (it measures
    // a 37.2 ms TBT, Fig. 15); against that trunk the same argmax cost
    // lands under the paper's 0.4% bound.
    constexpr double kPaperMediumTbtNs = 37.2e6;
    std::printf("against the paper's GPT-2-medium decode step (37.2 ms "
                "TBT): %.3f%%\n",
                100.0 * (obl_ns - plain_ns) / kPaperMediumTbtNs);
    std::printf(
        "\nExpected (paper Section V-C): securing argmax costs < 0.4%% of\n"
        "total generation latency — protection outside the embedding\n"
        "layer is essentially free.\n");
    return 0;
}
