/**
 * @file
 * Table VIII reproduction: embedding-generation latency and memory for a
 * production-shaped DLRM based on the Meta 2022 trace statistics — 788
 * tables, heavy-tailed sizes up to 4e7 rows, dim 64.
 *
 * Memory footprints are computed closed-form at FULL scale. Latency is
 * measured on a scaled, subsampled table set (--sample/--scale) and
 * extrapolated linearly in the number of tables; the paper itself
 * measures "a few tables at a time" within its 64 GB SGX limit and
 * aggregates, so the methodology matches.
 */

#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util/bench_util.h"
#include "core/factory.h"
#include "core/hybrid.h"
#include "dhe/dhe.h"
#include "dlrm/config.h"
#include "oram/footprint.h"
#include "profile/profiler.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t scale = args.GetInt("--scale", 1000);
    const int64_t sample_every = args.GetInt("--sample", 16);
    const int batch = static_cast<int>(args.GetInt("--batch", 32));
    const int64_t dim = 64;
    const int64_t threshold = args.GetInt("--threshold", 3300);

    const auto sizes = dlrm::MetaDatasetTableSizes();
    std::printf("=== Table VIII: Meta-shaped DLRM, %zu tables, dim %ld "
                "(latency on 1/%ld sample at %ldx scale) ===\n\n",
                sizes.size(), dim, sample_every, scale);

    // --- Full-scale memory (closed form).
    int64_t table_bytes = 0, oram_bytes = 0, dheu_bytes = 0,
            dhev_bytes = 0, hybu_bytes = 0, hybv_bytes = 0;
    for (int64_t s : sizes) {
        table_bytes += s * dim * 4;
        oram_bytes +=
            oram::EstimateFootprintBytes(oram::OramKind::kCircuit, s, dim);
        const dhe::DheConfig du = dhe::DheConfig::Uniform(dim);
        const dhe::DheConfig dv = dhe::DheConfig::Varied(s, dim);
        dheu_bytes += du.DecoderParams() * 4 + du.k * 16;
        dhev_bytes += dv.DecoderParams() * 4 + dv.k * 16;
        const bool scan = core::ChooseTechnique(s, threshold) ==
                          core::Technique::kLinearScan;
        hybu_bytes += scan ? s * dim * 4
                           : du.DecoderParams() * 4 + du.k * 16;
        hybv_bytes += scan ? s * dim * 4
                           : dv.DecoderParams() * 4 + dv.k * 16;
    }

    // --- Latency on a subsample of scaled tables, extrapolated.
    std::vector<int64_t> sampled;
    for (size_t i = 0; i < sizes.size(); i += sample_every) {
        sampled.push_back(std::max<int64_t>(4, sizes[i] / scale));
    }
    const double extrapolate =
        static_cast<double>(sizes.size()) /
        static_cast<double>(sampled.size());

    auto measure = [&](core::GenKind kind) {
        double total = 0.0;
        for (int64_t s : sampled) {
            Rng rng(s + static_cast<int64_t>(kind));
            core::GeneratorOptions opt;
            opt.batch_size = batch;
            auto gen = core::MakeGenerator(kind, s, dim, rng, opt);
            Rng idx(3);
            total += profile::MeasureGeneratorLatencyNs(*gen, batch, idx,
                                                        2);
        }
        return total * extrapolate;
    };

    bench::TablePrinter table({"method", "emb. latency (ms, extrap.)",
                               "memory (MB, full scale)", "vs table"});
    const auto add = [&](const char* name, double ns, int64_t bytes) {
        table.AddRow(
            {name,
             ns >= 0 ? bench::TablePrinter::Ms(ns, 1) : std::string("-"),
             bench::TablePrinter::Mb(bytes, 1),
             bench::TablePrinter::Num(100.0 * static_cast<double>(bytes) /
                                          static_cast<double>(table_bytes),
                                      2) + "%"});
    };
    add("Index Lookup (non-secure)",
        measure(core::GenKind::kIndexLookup), table_bytes);
    add("Linear Scan", measure(core::GenKind::kLinearScan), table_bytes);
    add("Circuit ORAM", measure(core::GenKind::kCircuitOram), oram_bytes);
    add("DHE Uniform", measure(core::GenKind::kDheUniform), dheu_bytes);
    add("DHE Varied", measure(core::GenKind::kDheVaried), dhev_bytes);
    add("Hybrid Uniform", measure(core::GenKind::kHybridUniform),
        hybu_bytes);
    add("Hybrid Varied", measure(core::GenKind::kHybridVaried),
        hybv_bytes);
    table.Print();

    std::printf("\nfull-scale table representation: %.1f GB; ORAM: %.1f "
                "GB; Hybrid Varied: %.2f GB (%.0fx smaller than table)\n",
                table_bytes / 1e9, oram_bytes / 1e9, hybv_bytes / 1e9,
                static_cast<double>(table_bytes) /
                    static_cast<double>(hybv_bytes));
    std::printf(
        "\nExpected (paper Table VIII): Hybrid Varied ~2.4x faster than\n"
        "Circuit ORAM; table representation ~910 GB and ORAM ~3x that,\n"
        "impractical to deploy; DHE/Hybrid variants ~0.13-0.22%% of the\n"
        "table footprint (>2500x smaller).\n");
    return 0;
}
