/**
 * @file
 * oc01: out-of-core oblivious tables at full dataset scale.
 *
 * The paper's protections assume the embedding table is resident; this
 * bench measures what Section VII's workloads cost when it is not. A
 * Criteo-sized table (10.1M rows x dim 16, ~650 MB of weights) is served
 * three ways:
 *
 *   ram_scan     the in-RAM oblivious linear scan (the paper's baseline)
 *   paged_scan   the same scan over a file / mmap BackingStore behind a
 *                bounded page cache — swept over cache sizes to show
 *                throughput as a function of resident bytes
 *   raw_oram     the page-optimized RAW ORAM (one bucket = one page,
 *                read paths with no write-back, amortized eviction)
 *
 * Every configuration keeps the page schedule secret-independent, so the
 * comparison is pure storage cost: RAM bandwidth vs cache-mediated IO vs
 * O(log n) page fetches per access. Store files are created in --dir and
 * deleted on exit.
 *
 * Usage:
 *   oc01_paged [--rows N] [--dim D] [--batch B] [--batches K]
 *              [--page-bytes P] [--oram-rows N2] [--oram-accesses A]
 *              [--dir PATH] [--json out.json]
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/bench_util.h"
#include "bench_util/json.h"
#include "core/paged_generators.h"
#include "core/table_generators.h"
#include "store/backing_store.h"
#include "tensor/tensor.h"

using namespace secemb;

namespace {

double
NowNs()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::vector<std::vector<int64_t>>
MakeStream(int64_t rows, int batch, int batches, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<int64_t>> stream(
        static_cast<size_t>(batches));
    for (auto& b : stream) {
        b.resize(static_cast<size_t>(batch));
        for (int64_t& id : b) {
            id = static_cast<int64_t>(
                rng.NextBounded(static_cast<uint64_t>(rows)));
        }
    }
    return stream;
}

struct RunResult
{
    std::vector<double> batch_ns;
    double rows_per_sec = 0.0;
};

RunResult
RunStream(core::EmbeddingGenerator& gen,
          const std::vector<std::vector<int64_t>>& stream, int64_t dim)
{
    Tensor out({static_cast<int64_t>(stream.front().size()), dim});
    RunResult r;
    double total_s = 0.0;
    int64_t served = 0;
    for (const std::vector<int64_t>& batch : stream) {
        const double t0 = NowNs();
        gen.Generate(batch, out);
        r.batch_ns.push_back(NowNs() - t0);
        total_s += r.batch_ns.back() * 1e-9;
        served += static_cast<int64_t>(batch.size());
    }
    r.rows_per_sec =
        static_cast<double>(served) / std::max(total_s, 1e-12);
    return r;
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    // Criteo Kaggle: 10,131,227 categorical ids across the 26 features —
    // the "tables do not fit" scale EXPERIMENTS.md deviation #1 is about.
    const int64_t rows = args.GetInt("--rows", 10131227);
    const int64_t dim = args.GetInt("--dim", 16);
    const int batch = static_cast<int>(args.GetInt("--batch", 8));
    const int batches = static_cast<int>(args.GetInt("--batches", 2));
    const int64_t page_bytes = args.GetInt("--page-bytes", 4096);
    const int64_t oram_rows = args.GetInt("--oram-rows", rows);
    const int oram_accesses =
        static_cast<int>(args.GetInt("--oram-accesses", 64));
    const std::string dir = args.GetString("--dir", ".");
    const std::string json_path = args.GetString("--json");

    const int64_t row_bytes = dim * static_cast<int64_t>(sizeof(float));
    const int64_t rows_per_page = page_bytes / row_bytes;
    const int64_t scan_pages =
        (rows + rows_per_page - 1) / rows_per_page;

    std::printf("=== oc01: out-of-core tables at dataset scale ===\n");
    std::printf(
        "scan table %ld x %ld (%.1f MB, %ld pages of %ld B), "
        "%d batches of %d; raw_oram %ld rows, %d accesses\n",
        rows, dim,
        static_cast<double>(rows * row_bytes) / (1024.0 * 1024.0),
        scan_pages, page_bytes, batches, batch, oram_rows,
        oram_accesses);

    Rng table_rng(41);
    const Tensor table = Tensor::Randn({rows, dim}, table_rng);
    const auto stream = MakeStream(rows, batch, batches, 59);

    bench::BenchReport report("oc01_paged");
    bench::TablePrinter printer({"config", "resident MB", "p50 ms",
                                 "rows/s", "hit rate", "evictions"});
    std::vector<std::string> store_files;

    auto add = [&](const std::string& name,
                   core::EmbeddingGenerator& gen, const RunResult& r,
                   const store::PageCacheStats* cache,
                   int64_t cache_pages_config)
        -> bench::BenchReport::Result& {
        const bench::LatencyStats lat =
            bench::LatencyStats::FromSamples(r.batch_ns);
        const double resident_mb =
            static_cast<double>(gen.MemoryFootprintBytes()) /
            (1024.0 * 1024.0);
        double hit_rate = 0.0;
        if (cache != nullptr && cache->hits + cache->misses > 0) {
            hit_rate = static_cast<double>(cache->hits) /
                       static_cast<double>(cache->hits + cache->misses);
        }
        printer.AddRow(
            {name, bench::TablePrinter::Num(resident_mb, 1),
             bench::TablePrinter::Ms(lat.p50_ns, 2),
             bench::TablePrinter::Num(r.rows_per_sec, 0),
             cache != nullptr ? bench::TablePrinter::Num(hit_rate, 3)
                              : "-",
             cache != nullptr ? std::to_string(cache->evictions) : "-"});

        auto& res = report.AddResult(name);
        res.num_params.emplace_back("rows", static_cast<double>(rows));
        res.num_params.emplace_back("dim", static_cast<double>(dim));
        res.num_params.emplace_back("batch", static_cast<double>(batch));
        res.num_params.emplace_back("page_bytes",
                                    static_cast<double>(page_bytes));
        res.num_params.emplace_back(
            "cache_pages", static_cast<double>(cache_pages_config));
        res.num_params.emplace_back("resident_mb", resident_mb);
        res.num_params.emplace_back("rows_per_sec", r.rows_per_sec);
        res.latency = lat;
        if (cache != nullptr) {
            res.counters.emplace_back(
                "store.cache.hits", static_cast<uint64_t>(cache->hits));
            res.counters.emplace_back(
                "store.cache.misses",
                static_cast<uint64_t>(cache->misses));
            res.counters.emplace_back(
                "store.cache.evictions",
                static_cast<uint64_t>(cache->evictions));
        }
        return res;
    };

    {
        core::LinearScanTable ram(table);
        add("ram_scan", ram, RunStream(ram, stream, dim), nullptr, 0);
    }

    // Cache sweep: ~4 MB / 64 MB / 256 MB resident (clamped to the table)
    // on the file backend, plus one mmap configuration — the schedule is
    // identical everywhere, only the miss cost moves.
    struct PagedConfig
    {
        store::StoreBackend backend;
        int64_t cache_pages;
    };
    std::vector<PagedConfig> paged_configs;
    for (const int64_t mb : {4, 64, 256}) {
        paged_configs.push_back(
            {store::StoreBackend::kFile, mb * 1024 * 1024 / page_bytes});
    }
    paged_configs.push_back(
        {store::StoreBackend::kMmap, 64 * 1024 * 1024 / page_bytes});

    for (const PagedConfig& pc : paged_configs) {
        store::StoreConfig sc;
        sc.backend = pc.backend;
        sc.page_bytes = page_bytes;
        sc.cache_pages = pc.cache_pages;
        const std::string backend = store::StoreBackendName(pc.backend);
        sc.path = dir + "/oc01_scan_" + backend + "_" +
                  std::to_string(pc.cache_pages) + ".store";
        store_files.push_back(sc.path);

        core::PagedScanTable paged(table, sc);
        const RunResult r = RunStream(paged, stream, dim);
        const store::PageCacheStats cache = paged.paged().cache_stats();
        add("paged_scan_" + backend + "_c" +
                std::to_string(pc.cache_pages),
            paged, r, &cache, pc.cache_pages);
    }

    {
        store::StoreConfig sc;
        sc.backend = store::StoreBackend::kFile;
        sc.page_bytes = page_bytes;
        sc.cache_pages = 64;
        sc.path = dir + "/oc01_raw_oram.store";
        store_files.push_back(sc.path);

        Rng rng(67);
        const Tensor oram_table =
            oram_rows == rows
                ? table
                : Tensor::Randn({oram_rows, dim}, rng);
        const double t0 = NowNs();
        core::RawOramTable oram(oram_table, rng, sc);
        const double load_s = (NowNs() - t0) * 1e-9;
        std::printf(
            "raw_oram: Z=%ld, %ld levels, %ld buckets, bulk load %.1f "
            "s\n",
            oram.oram().bucket_slots(), oram.oram().levels() + 1,
            oram.oram().DiskFootprintBytes() / sc.page_bytes, load_s);

        const auto oram_stream = MakeStream(
            oram_rows, 1, oram_accesses, 73);
        const RunResult r = RunStream(oram, oram_stream, dim);
        const store::PageCacheStats cache = oram.oram().cache_stats();
        auto& res = add("raw_oram", oram, r, &cache, sc.cache_pages);
        res.num_params.emplace_back(
            "oram_rows", static_cast<double>(oram_rows));
        res.num_params.emplace_back("bulk_load_s", load_s);
        res.num_params.emplace_back(
            "bucket_slots",
            static_cast<double>(oram.oram().bucket_slots()));
        res.num_params.emplace_back(
            "levels", static_cast<double>(oram.oram().levels() + 1));
        res.num_params.emplace_back(
            "disk_mb",
            static_cast<double>(oram.oram().DiskFootprintBytes()) /
                (1024.0 * 1024.0));
    }

    printer.Print();

    std::error_code ec;
    for (const std::string& path : store_files) {
        std::filesystem::remove(path, ec);
    }

    if (!json_path.empty() && !report.WriteTo(json_path)) {
        std::fprintf(stderr, "oc01: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    return 0;
}
