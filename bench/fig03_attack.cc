/**
 * @file
 * Fig. 3 reproduction: PRIME+SCOPE-style eviction-set attack against
 * embedding lookups (paper Section III-A).
 *
 * Paper setup: table with 256 entries, embedding dim 64, victim index 2,
 * 25 primed cache sets, 10 averaged measurements. The attacker sees a
 * latency spike on the eviction set matching the secret index of the
 * non-secure lookup — and learns nothing from the protected generators.
 */

#include <cstdio>

#include "bench_util/bench_util.h"
#include "core/factory.h"
#include "core/table_generators.h"
#include "sidechannel/attacker.h"
#include "sidechannel/oblivious_check.h"

using namespace secemb;

namespace {

constexpr int64_t kRows = 256;
constexpr int64_t kDim = 64;
constexpr int kMonitored = 25;
constexpr int kRepeats = 10;

sidechannel::CacheConfig
LlcModel()
{
    // A slice-sized model of the paper's 42 MB Ice Lake LLC.
    sidechannel::CacheConfig c;
    c.num_sets = 4096;
    c.ways = 12;
    return c;
}

/** Run the attack once per candidate secret; returns per-secret guesses. */
std::vector<int64_t>
AttackSweep(core::EmbeddingGenerator& victim, uint64_t table_base)
{
    sidechannel::TraceRecorder rec;
    victim.set_recorder(&rec);
    sidechannel::CacheModel cache(LlcModel());
    sidechannel::EvictionSetAttacker attacker(cache, table_base,
                                              kDim * 4, kMonitored);
    std::vector<int64_t> guesses;
    for (int64_t secret = 0; secret < kMonitored; ++secret) {
        rec.Clear();
        std::vector<int64_t> batch{secret};
        Tensor out({1, kDim});
        victim.Generate(batch, out);
        guesses.push_back(attacker.Attack(rec.trace(), kRepeats)
                              .guessed_index);
    }
    victim.set_recorder(nullptr);
    return guesses;
}

}  // namespace

int
main(int argc, char** argv)
{
    (void)argc;
    (void)argv;
    std::printf("=== Fig. 3: cache side-channel attack on embedding "
                "lookup ===\n");
    std::printf("table: %ld entries x dim %ld, %d monitored sets, "
                "%d-sample averaging\n\n",
                kRows, kDim, kMonitored, kRepeats);

    Rng rng(1);
    const Tensor table = Tensor::Randn({kRows, kDim}, rng);

    // --- Headline plot: probe latency per eviction set, victim index 2.
    core::TableLookup victim(table);
    sidechannel::TraceRecorder rec;
    victim.set_recorder(&rec);
    sidechannel::CacheModel cache(LlcModel());
    sidechannel::EvictionSetAttacker attacker(cache, victim.trace_base(),
                                              kDim * 4, kMonitored);
    std::vector<int64_t> batch{2};  // paper's victim index
    Tensor out({1, kDim});
    victim.Generate(batch, out);
    const auto obs = attacker.Attack(rec.trace(), kRepeats);
    victim.set_recorder(nullptr);

    bench::TablePrinter plot({"eviction set", "probe latency (ns, model)"});
    for (int r = 0; r < kMonitored; ++r) {
        plot.AddRow({std::to_string(r),
                     bench::TablePrinter::Num(
                         obs.probe_latency_ns[static_cast<size_t>(r)],
                         1)});
    }
    plot.Print();
    std::printf("\nattacker's guess for victim index: %ld (actual: 2)\n\n",
                obs.guessed_index);

    // --- Mutual information across generators: the leak disappears under
    // every protected scheme.
    std::printf("attack success across embedding generation methods "
                "(secrets 0..%d):\n", kMonitored - 1);
    bench::TablePrinter summary(
        {"method", "correct guesses", "mutual information (bits)"});
    std::vector<int64_t> secrets;
    for (int64_t s = 0; s < kMonitored; ++s) secrets.push_back(s);

    for (const auto kind :
         {core::GenKind::kIndexLookup, core::GenKind::kLinearScan}) {
        Rng krng(2);
        core::GeneratorOptions opt;
        opt.table = &table;
        auto gen = core::MakeGenerator(kind, kRows, kDim, krng, opt);
        const uint64_t base =
            kind == core::GenKind::kIndexLookup
                ? dynamic_cast<core::TableLookup*>(gen.get())->trace_base()
                : dynamic_cast<core::LinearScanTable*>(gen.get())
                      ->trace_base();
        const auto guesses = AttackSweep(*gen, base);
        int correct = 0;
        for (int64_t s = 0; s < kMonitored; ++s) {
            correct +=
                guesses[static_cast<size_t>(s)] == s ? 1 : 0;
        }
        summary.AddRow(
            {std::string(core::GenKindName(kind)),
             std::to_string(correct) + "/" + std::to_string(kMonitored),
             bench::TablePrinter::Num(
                 sidechannel::EmpiricalMutualInformation(
                     secrets, guesses, kMonitored),
                 3)});
    }
    // DHE: there is no table region to monitor at all; by construction
    // the attacker has no victim addresses correlated with the secret.
    summary.AddRow({"DHE", "n/a (no table accesses exist)", "0.000"});
    summary.Print();
    std::printf("\nExpected shape (paper): spike at the victim index for "
                "the non-secure lookup;\nno information for linear scan / "
                "DHE / ORAM.\n");
    return 0;
}
