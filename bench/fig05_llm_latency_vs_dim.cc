/**
 * @file
 * Fig. 5 reproduction: LLM token-embedding generation latency vs
 * embedding dimension, for several embedding-generation batch sizes, at
 * a fixed vocabulary of 50257 (GPT-2).
 *
 * Embedding batch = inference batch x tokens processed at once: prefill
 * stages see large batches (e.g. 256 tokens per request), decode sees
 * one token per request. Default sweep uses a reduced vocabulary
 * (--vocab 8192) so linear scan and ORAM construction stay fast on a
 * small host; pass --vocab 50257 for the paper's exact setting.
 */

#include <cstdio>
#include <vector>

#include "bench_util/bench_util.h"
#include "core/factory.h"
#include "dhe/dhe.h"
#include "profile/profiler.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t vocab = args.GetInt("--vocab", 8192);
    const int reps = static_cast<int>(args.GetInt("--reps", 2));

    std::printf("=== Fig. 5: LLM embedding latency vs embedding dim "
                "(vocab %ld) ===\n\n", vocab);

    const std::vector<int> emb_batches{1, 8, 64, 256};
    const std::vector<int64_t> dims{128, 256, 512};

    for (const int batch : emb_batches) {
        std::printf("--- embedding generation batch %d %s ---\n", batch,
                    batch == 1 ? "(decode-like)" : "(prefill-like)");
        bench::TablePrinter table({"emb dim", "Linear Scan (ms)",
                                   "Path ORAM (ms)", "Circuit ORAM (ms)",
                                   "DHE (ms)"});
        for (const int64_t dim : dims) {
            std::vector<std::string> row{std::to_string(dim)};
            for (auto kind :
                 {core::GenKind::kLinearScan, core::GenKind::kPathOram,
                  core::GenKind::kCircuitOram}) {
                Rng rng(dim + batch);
                auto gen = core::MakeGenerator(kind, vocab, dim, rng);
                Rng idx(3);
                row.push_back(bench::TablePrinter::Ms(
                    profile::MeasureGeneratorLatencyNs(*gen, batch, idx,
                                                       reps),
                    3));
            }
            {
                // The paper's LLM DHE sizing: k and FC widths = 2 * dim.
                Rng rng(dim);
                core::GeneratorOptions opt;
                opt.dhe = std::make_shared<dhe::DheEmbedding>(
                    dhe::DheConfig::ForLlm(dim), rng);
                auto gen = core::MakeGenerator(core::GenKind::kDheUniform,
                                               vocab, dim, rng, opt);
                Rng idx(4);
                row.push_back(bench::TablePrinter::Ms(
                    profile::MeasureGeneratorLatencyNs(*gen, batch, idx,
                                                       reps),
                    3));
            }
            table.AddRow(row);
        }
        table.Print();
        std::printf("\n");
    }
    std::printf(
        "Expected shape (paper Fig. 5): DHE wins at large batches\n"
        "(prefill) by amortising weight reuse; at batch ~1 (decode)\n"
        "Circuit ORAM and DHE trade the lead depending on dim; Path ORAM\n"
        "and scan are uncompetitive at this vocabulary size.\n");
    return 0;
}
