/**
 * @file
 * oc02: what durability costs the out-of-core RAW ORAM, and what a crash
 * costs to recover from.
 *
 * Four configurations serve the same single-row access stream from a
 * file-backed RAW ORAM:
 *
 *   ckpt_off     durability disabled — the oc01 steady state (baseline)
 *   ckpt_i256    journal every access, checkpoint every 256 accesses
 *   ckpt_i64     ... every 64 accesses
 *   ckpt_i16     ... every 16 accesses
 *
 * The journal append (fixed-size record + fsync) is on the access path,
 * so per-access latency measures the write-ahead tax; the checkpoint is a
 * public-schedule full sweep, so shrinking the interval trades journal
 * replay length at recovery against steady-state throughput. After each
 * durable run the table is torn down as a crash would leave it and
 * RawOramTable::Recover is timed — recovery cost is reported next to the
 * journal length it replayed, which is the interval-sweep's other axis.
 *
 * Usage:
 *   oc02_recovery [--rows N] [--dim D] [--accesses A] [--page-bytes P]
 *                 [--dir PATH] [--json out.json]
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_util/bench_util.h"
#include "bench_util/json.h"
#include "core/paged_generators.h"
#include "store/backing_store.h"
#include "store/raw_oram.h"
#include "tensor/tensor.h"

using namespace secemb;

namespace {

double
NowNs()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t rows = args.GetInt("--rows", 4096);
    const int64_t dim = args.GetInt("--dim", 16);
    // Deliberately not a multiple of the sweep's intervals, so each run
    // ends mid-interval with a journal tail for recovery to replay.
    const int accesses = static_cast<int>(args.GetInt("--accesses", 300));
    const int64_t page_bytes = args.GetInt("--page-bytes", 4096);
    const std::string dir = args.GetString("--dir", ".");
    const std::string json_path = args.GetString("--json");

    std::printf("=== oc02: durable RAW ORAM checkpoint/journal cost ===\n");
    std::printf("%ld x %ld table, %d single-row accesses, %ld B pages\n",
                rows, dim, accesses, page_bytes);

    Rng table_rng(43);
    const Tensor table = Tensor::Randn({rows, dim}, table_rng);

    // One id stream shared by every configuration, so the page schedule
    // differences are purely the durability machinery.
    Rng id_rng(61);
    std::vector<int64_t> ids(static_cast<size_t>(accesses));
    for (int64_t& id : ids) {
        id = static_cast<int64_t>(
            id_rng.NextBounded(static_cast<uint64_t>(rows)));
    }

    bench::BenchReport report("oc02_recovery");
    bench::TablePrinter printer({"config", "p50 us/access", "rows/s",
                                 "ckpts", "journal tail", "recover ms"});

    // interval 0 = durability off (the baseline the overhead is against).
    for (const int64_t interval : {int64_t{0}, int64_t{256}, int64_t{64},
                                   int64_t{16}}) {
        const std::string name =
            interval == 0 ? "ckpt_off"
                          : "ckpt_i" + std::to_string(interval);
        const std::string scratch = dir + "/oc02_" + name;
        std::error_code ec;
        std::filesystem::remove_all(scratch, ec);
        std::filesystem::create_directories(scratch, ec);
        if (ec) {
            std::fprintf(stderr, "oc02: cannot create %s\n",
                         scratch.c_str());
            return 1;
        }

        store::StoreConfig sc;
        sc.backend = store::StoreBackend::kFile;
        sc.path = scratch + "/pages.bin";
        sc.page_bytes = page_bytes;
        sc.cache_pages = 64;
        store::RawOramConfig rc;
        rc.posmap.enable_recursion = false;
        if (interval > 0) {
            rc.durability.dir = scratch;
            rc.durability.checkpoint_interval = interval;
        }

        Rng rng(67);
        Tensor out({1, dim});
        std::vector<double> access_ns;
        access_ns.reserve(ids.size());
        int64_t checkpoints = 0;
        int64_t journal_tail = 0;
        double recover_ms = 0.0;
        uint64_t replayed = 0;

        {
            core::RawOramTable oram(table, rng, sc, rc);
            for (const int64_t id : ids) {
                const std::span<const int64_t> one(&id, 1);
                const double t0 = NowNs();
                oram.Generate(one, out);
                access_ns.push_back(NowNs() - t0);
            }
            checkpoints = oram.oram().stats().checkpoints;
            journal_tail = oram.oram().journal_records();
            // Torn down without a final checkpoint or sync — exactly the
            // state a SIGKILL leaves behind.
        }

        if (interval > 0) {
            Rng recovery_rng(89);
            std::unique_ptr<core::RawOramTable> back;
            const double t0 = NowNs();
            store::ThrowIfError(core::RawOramTable::Recover(
                rows, dim, recovery_rng, sc, rc, &back));
            recover_ms = (NowNs() - t0) * 1e-6;
            replayed = back->oram().recovery_stats().replayed_accesses;
        }

        const bench::LatencyStats lat =
            bench::LatencyStats::FromSamples(access_ns);
        double total_s = 0.0;
        for (const double ns : access_ns) total_s += ns * 1e-9;
        const double rows_per_sec =
            static_cast<double>(accesses) / std::max(total_s, 1e-12);

        printer.AddRow(
            {name, bench::TablePrinter::Num(lat.p50_ns * 1e-3, 1),
             bench::TablePrinter::Num(rows_per_sec, 0),
             std::to_string(checkpoints), std::to_string(journal_tail),
             interval > 0 ? bench::TablePrinter::Num(recover_ms, 2)
                          : "-"});

        auto& res = report.AddResult(name);
        res.num_params.emplace_back("rows", static_cast<double>(rows));
        res.num_params.emplace_back("dim", static_cast<double>(dim));
        res.num_params.emplace_back("accesses",
                                    static_cast<double>(accesses));
        res.num_params.emplace_back("checkpoint_interval",
                                    static_cast<double>(interval));
        res.num_params.emplace_back("rows_per_sec", rows_per_sec);
        res.num_params.emplace_back("checkpoints",
                                    static_cast<double>(checkpoints));
        res.num_params.emplace_back("journal_tail",
                                    static_cast<double>(journal_tail));
        if (interval > 0) {
            res.num_params.emplace_back("recover_ms", recover_ms);
            res.num_params.emplace_back(
                "replayed_accesses", static_cast<double>(replayed));
        }
        res.latency = lat;

        std::filesystem::remove_all(scratch, ec);
    }

    printer.Print();

    if (!json_path.empty() && !report.WriteTo(json_path)) {
        std::fprintf(stderr, "oc02: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    return 0;
}
