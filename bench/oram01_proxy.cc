/**
 * @file
 * oram01: throughput of the async coalescing ORAM proxy vs the serial
 * Path ORAM controller on a duplicate-heavy (Zipfian) request mix.
 *
 * The proxy keeps the physical schedule public (one access per logical
 * request, duplicates coalesced and padded with dummies), so it cannot
 * win by doing fewer tree accesses. The win is concurrency: the posmap
 * scan, per-level bucket decryption, and stash data movement of each
 * access run on pool threads, and path write-back encryption is deferred
 * and overlapped with the next access's work. The acceptance gate for
 * this bench is >= 2x accesses/sec over the serial controller at 4
 * threads — which needs >= 4 physical cores; the report records
 * hw_threads so a 1-core CI box reads as "cannot demonstrate" rather
 * than "regressed".
 *
 * Usage:
 *   oram01_proxy [--rows N] [--dim D] [--batch B] [--batches K]
 *                [--window W] [--zipf S] [--json out.json]
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/bench_util.h"
#include "bench_util/json.h"
#include "core/table_generators.h"
#include "oram/proxy.h"
#include "tensor/tensor.h"

using namespace secemb;

namespace {

/**
 * Zipf(s) sampler over [0, n): inverse-CDF on the precomputed cumulative
 * weight table. Heavy head -> lots of duplicate ids per batch, which is
 * exactly the mix where coalescing matters.
 */
class ZipfSampler
{
  public:
    ZipfSampler(int64_t n, double s) : cdf_(static_cast<size_t>(n))
    {
        double total = 0.0;
        for (int64_t k = 0; k < n; ++k) {
            total += 1.0 / std::pow(static_cast<double>(k + 1), s);
            cdf_[static_cast<size_t>(k)] = total;
        }
        for (double& c : cdf_) c /= total;
    }

    int64_t Sample(Rng& rng) const
    {
        const double u =
            static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
        size_t lo = 0, hi = cdf_.size() - 1;
        while (lo < hi) {
            const size_t mid = (lo + hi) / 2;
            if (cdf_[mid] < u) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        return static_cast<int64_t>(lo);
    }

  private:
    std::vector<double> cdf_;
};

struct RunResult
{
    std::vector<double> batch_ns;  ///< wall time per Generate() call
    double total_s = 0.0;
    double accesses_per_sec = 0.0;
};

RunResult
RunStream(core::EmbeddingGenerator& gen,
          const std::vector<std::vector<int64_t>>& stream, int64_t dim)
{
    Tensor out({static_cast<int64_t>(stream.front().size()), dim});
    gen.Generate(stream.front(), out);  // warmup: touch every code path

    RunResult r;
    int64_t accesses = 0;
    for (const std::vector<int64_t>& batch : stream) {
        const auto t0 = std::chrono::steady_clock::now();
        gen.Generate(batch, out);
        const auto t1 = std::chrono::steady_clock::now();
        r.batch_ns.push_back(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
        r.total_s += r.batch_ns.back() * 1e-9;
        accesses += static_cast<int64_t>(batch.size());
    }
    r.accesses_per_sec =
        static_cast<double>(accesses) / std::max(r.total_s, 1e-12);
    return r;
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int64_t rows = args.GetInt("--rows", 4096);
    const int64_t dim = args.GetInt("--dim", 16);
    const int batch = static_cast<int>(args.GetInt("--batch", 64));
    const int batches = static_cast<int>(args.GetInt("--batches", 24));
    const int window = static_cast<int>(args.GetInt("--window", 8));
    const double zipf_s = args.GetDouble("--zipf", 1.1);
    const std::string json_path = args.GetString("--json");

    Rng table_rng(31);
    const Tensor table = Tensor::Randn({rows, dim}, table_rng);

    // One fixed Zipfian stream, replayed against every configuration so
    // the serial/proxy comparison sees identical duplicate structure.
    const ZipfSampler zipf(rows, zipf_s);
    Rng stream_rng(97);
    std::vector<std::vector<int64_t>> stream(
        static_cast<size_t>(batches));
    int64_t duplicate_slots = 0;
    for (auto& b : stream) {
        b.resize(static_cast<size_t>(batch));
        std::vector<bool> seen(static_cast<size_t>(rows), false);
        for (int64_t& id : b) {
            id = zipf.Sample(stream_rng);
            if (seen[static_cast<size_t>(id)]) ++duplicate_slots;
            seen[static_cast<size_t>(id)] = true;
        }
    }
    const double dup_frac = static_cast<double>(duplicate_slots) /
                            static_cast<double>(batches * batch);

    const unsigned hw_threads =
        std::max(1u, std::thread::hardware_concurrency());
    std::printf("=== oram01: serial controller vs coalescing proxy ===\n");
    std::printf(
        "table %ld x %ld, %d batches of %d, zipf(s=%.2f) -> %.0f%% "
        "duplicate slots, window %d, %u hw thread(s)\n",
        rows, dim, batches, batch, zipf_s, 100.0 * dup_frac, window,
        hw_threads);
    if (hw_threads < 4) {
        std::printf(
            "note: <4 hardware threads — multi-thread proxy rows measure "
            "scheduling overhead, not the parallel design\n");
    }

    bench::BenchReport report("oram01_proxy");
    bench::TablePrinter printer({"config", "p50 ms", "p99 ms",
                                 "accesses/s", "speedup", "coalesced",
                                 "evict overlap"});

    struct Config
    {
        std::string name;
        int nthreads;  ///< 0 = serial controller (no proxy at all)
    };
    const std::vector<Config> configs{{"serial", 0},
                                      {"proxy_t1", 1},
                                      {"proxy_t2", 2},
                                      {"proxy_t4", 4},
                                      {"proxy_t8", 8}};

    double serial_aps = 0.0;
    for (const Config& c : configs) {
        Rng rng(113);
        std::unique_ptr<core::EmbeddingGenerator> gen;
        core::ProxiedOramTable* proxied = nullptr;
        if (c.nthreads == 0) {
            gen = std::make_unique<core::OramTable>(
                table, oram::OramKind::kPath, rng);
        } else {
            oram::ProxyConfig pc;
            pc.batch_window = window;
            pc.nthreads = c.nthreads;
            auto p = std::make_unique<core::ProxiedOramTable>(
                table, oram::OramKind::kPath, rng, nullptr, pc);
            proxied = p.get();
            gen = std::move(p);
        }

        const RunResult r = RunStream(*gen, stream, dim);
        if (c.nthreads == 0) serial_aps = r.accesses_per_sec;
        const double speedup =
            serial_aps > 0.0 ? r.accesses_per_sec / serial_aps : 1.0;
        const bench::LatencyStats lat =
            bench::LatencyStats::FromSamples(r.batch_ns);

        oram::ProxyStats ps;
        if (proxied != nullptr) ps = proxied->proxy().stats();
        printer.AddRow(
            {c.name, bench::TablePrinter::Ms(lat.p50_ns, 3),
             bench::TablePrinter::Ms(lat.p99_ns, 3),
             bench::TablePrinter::Num(r.accesses_per_sec, 0),
             bench::TablePrinter::Num(speedup, 2),
             std::to_string(ps.coalesced),
             std::to_string(ps.evictions_overlapped)});

        auto& res = report.AddResult(c.name);
        res.num_params.emplace_back("rows", static_cast<double>(rows));
        res.num_params.emplace_back("dim", static_cast<double>(dim));
        res.num_params.emplace_back("batch", static_cast<double>(batch));
        res.num_params.emplace_back("window",
                                    static_cast<double>(window));
        res.num_params.emplace_back("zipf_s", zipf_s);
        res.num_params.emplace_back("duplicate_frac", dup_frac);
        res.num_params.emplace_back("nthreads",
                                    static_cast<double>(c.nthreads));
        res.num_params.emplace_back("hw_threads",
                                    static_cast<double>(hw_threads));
        res.num_params.emplace_back("accesses_per_sec",
                                    r.accesses_per_sec);
        res.num_params.emplace_back("speedup_vs_serial", speedup);
        res.latency = lat;
        if (proxied != nullptr) {
            res.counters.emplace_back("proxy.requests", ps.requests);
            res.counters.emplace_back("proxy.physical_accesses",
                                      ps.physical_accesses);
            res.counters.emplace_back("proxy.coalesced", ps.coalesced);
            res.counters.emplace_back("proxy.dummy_accesses",
                                      ps.dummy_accesses);
            res.counters.emplace_back("proxy.windows", ps.windows);
            res.counters.emplace_back("proxy.evictions_overlapped",
                                      ps.evictions_overlapped);
        }
    }
    printer.Print();

    if (!json_path.empty() && !report.WriteTo(json_path)) {
        std::fprintf(stderr, "oram01: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    return 0;
}
