/**
 * @file
 * Fig. 9 reproduction: mean embedding-layer latency for a fixed fleet of
 * 24 co-located models as the allocation is swept from all-linear-scan
 * (0 DHE) to all-DHE (24), for several table sizes around the switching
 * threshold.
 *
 * Single-model latencies are measured; fleet contention uses the
 * documented ContentionModel (see fig08_colocation.cc).
 */

#include <cstdio>
#include <vector>

#include "bench_util/bench_util.h"
#include "core/factory.h"
#include "profile/profiler.h"

using namespace secemb;

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const int fleet = static_cast<int>(args.GetInt("--fleet", 24));
    const int batch = 32;

    std::printf("=== Fig. 9: latency vs DHE/scan allocation for %d "
                "co-located models (dim 64, batch %d) ===\n\n",
                fleet, batch);

    const std::vector<int64_t> sizes{2048, 8192, 16384, 65536};
    const profile::ContentionModel model;

    std::vector<std::string> headers{"# models on DHE"};
    for (int64_t s : sizes) {
        headers.push_back("table " + std::to_string(s) + " (ms)");
    }
    bench::TablePrinter table(headers);

    // Measure single-model latencies once per size.
    std::vector<double> scan_ns, dhe_ns;
    for (int64_t s : sizes) {
        Rng rng(s);
        auto scan =
            core::MakeGenerator(core::GenKind::kLinearScan, s, 64, rng);
        auto dhe =
            core::MakeGenerator(core::GenKind::kDheUniform, s, 64, rng);
        Rng idx(3);
        scan_ns.push_back(
            profile::MeasureGeneratorLatencyNs(*scan, batch, idx, 3));
        dhe_ns.push_back(
            profile::MeasureGeneratorLatencyNs(*dhe, batch, idx, 3));
    }

    for (int on_dhe = 0; on_dhe <= fleet; on_dhe += 4) {
        std::vector<std::string> row{std::to_string(on_dhe)};
        const int on_scan = fleet - on_dhe;
        for (size_t i = 0; i < sizes.size(); ++i) {
            // Fleet-mean latency: each model sees the mixed fleet.
            double mean = 0.0;
            if (on_scan > 0) {
                mean += on_scan * model.MixedLatency(scan_ns[i], on_scan,
                                                     on_dhe, true);
            }
            if (on_dhe > 0) {
                mean += on_dhe * model.MixedLatency(dhe_ns[i], on_scan,
                                                    on_dhe, false);
            }
            mean /= fleet;
            row.push_back(bench::TablePrinter::Ms(mean, 3));
        }
        table.AddRow(row);
    }
    table.Print();
    std::printf(
        "\nExpected shape (paper Fig. 9): small tables are fastest with\n"
        "everything on linear scan (leftmost column minimal); large\n"
        "tables are fastest with everything on DHE (rightmost minimal);\n"
        "the co-located crossover sits near the single-model threshold.\n");
    return 0;
}
