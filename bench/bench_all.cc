/**
 * @file
 * secemb-bench-all: run the --json benchmark tier, merge the per-binary
 * reports into one schema-versioned BENCH_summary.json annotated with
 * machine/ISA metadata, and optionally gate the result against a baseline
 * summary (ROADMAP item: every PR shows its throughput effect on one
 * chart).
 *
 *   $ secemb-bench-all --outdir bench_out          # run tier + merge
 *   $ secemb-bench-all --quick --outdir bench_out  # CI-sized workloads
 *   $ secemb-bench-all --outdir bench_out \
 *       --baseline baselines/BENCH_baseline.json --gate 1.15
 *
 * Compare-only (no benches run; what the trajectory test drives):
 *
 *   $ secemb-bench-all --compare new_summary.json \
 *       --baseline old_summary.json --gate 1.15
 *
 * Exit status: 0 = tier ran and (if a baseline was given) no shared
 * result regressed past the gate; 1 = a bench failed, a document was
 * malformed, or the regression gate fired.
 *
 * The tier (quick flags in brackets):
 *   micro_primitives gemm-kernel   packed-GEMM kernel comparison
 *   micro_primitives               oblivious-primitive micro set
 *   srv01_serving                  serving latency/shed [fewer requests]
 *   oram01_proxy                   ORAM proxy vs serial controller [smaller]
 *   oc01_paged                     out-of-core paged scan / RAW ORAM [smaller]
 *   oc02_recovery                  durable checkpoint/journal cost [smaller]
 *   ver01_certify_cost             certification harness cost [smaller]
 *   perf01_xcheck                  cache model vs hardware counters
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util/bench_util.h"
#include "bench_util/json.h"
#include "bench_util/trajectory.h"

using namespace secemb;
namespace fs = std::filesystem;

namespace {

struct TierEntry
{
    std::string binary;       ///< executable name next to this driver
    std::string mode;         ///< leading mode word ("" = none)
    std::string output_name;  ///< per-bench report file in outdir
    std::string extra_args;   ///< full-size workload flags
    std::string quick_args;   ///< CI-sized workload flags
};

const std::vector<TierEntry>&
Tier()
{
    static const std::vector<TierEntry> tier{
        {"micro_primitives", "gemm-kernel", "BENCH_gemm_kernel.json", "",
         ""},
        {"micro_primitives", "", "BENCH_micro_primitives.json", "", ""},
        {"srv01_serving", "", "BENCH_srv01_serving.json", "",
         "--requests 120 --producers 2"},
        {"oram01_proxy", "", "BENCH_oram01_proxy.json", "",
         "--rows 512 --dim 8 --batch 32 --batches 6"},
        {"oc01_paged", "", "BENCH_oc01_paged.json", "",
         "--rows 20000 --oram-rows 4096 --batch 8 --batches 2 "
         "--oram-accesses 48"},
        {"oc02_recovery", "", "BENCH_oc02_recovery.json", "",
         "--rows 512 --dim 8 --accesses 100"},
        {"ver01_certify_cost", "", "BENCH_ver01_certify_cost.json", "",
         "--rows 64 --dim 8 --batch 4 --sets 2"},
        {"perf01_xcheck", "", "BENCH_perf01_xcheck.json", "", "--reps 3"},
    };
    return tier;
}

bool
ReadFile(const std::string& path, std::string* out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

bool
WriteFile(const std::string& path, const std::string& content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << content;
    return bool(out);
}

bool
ParseSummaryFile(const std::string& path, bench::JsonValue* out)
{
    std::string text;
    if (!ReadFile(path, &text)) {
        std::fprintf(stderr, "bench-all: cannot read %s\n", path.c_str());
        return false;
    }
    std::string err;
    if (!bench::JsonParse(text, out, &err)) {
        std::fprintf(stderr, "bench-all: %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    if (!bench::ValidateSummary(*out, &err)) {
        std::fprintf(stderr, "bench-all: %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    return true;
}

int
RunTier(const std::string& bindir, const std::string& outdir, bool quick)
{
    for (const TierEntry& e : Tier()) {
        const fs::path bin = fs::path(bindir) / e.binary;
        const fs::path out = fs::path(outdir) / e.output_name;
        std::string cmd = "\"" + bin.string() + "\"";
        if (!e.mode.empty()) cmd += " " + e.mode;
        const std::string& workload = quick ? e.quick_args : e.extra_args;
        if (!workload.empty()) cmd += " " + workload;
        cmd += " --json \"" + out.string() + "\"";
        std::printf("bench-all: running %s\n", cmd.c_str());
        std::fflush(stdout);
        const int rc = std::system(cmd.c_str());
        if (rc != 0) {
            std::fprintf(stderr, "bench-all: %s exited with %d\n",
                         cmd.c_str(), rc);
            return 1;
        }
    }
    return 0;
}

/** Merge the tier's per-bench reports in outdir into one summary doc. */
int
MergeSummary(const std::string& outdir, const std::string& summary_path)
{
    std::vector<bench::BenchSource> sources;
    for (const TierEntry& e : Tier()) {
        const fs::path path = fs::path(outdir) / e.output_name;
        bench::BenchSource src;
        src.source = e.output_name;
        if (!ReadFile(path.string(), &src.report)) {
            std::fprintf(stderr, "bench-all: missing report %s\n",
                         path.string().c_str());
            return 1;
        }
        sources.push_back(std::move(src));
    }
    std::string err;
    const std::string summary = bench::BuildSummaryJson(
        bench::CollectMachineInfo(), sources, &err);
    if (summary.empty()) {
        std::fprintf(stderr, "bench-all: %s\n", err.c_str());
        return 1;
    }
    if (!WriteFile(summary_path, summary)) {
        std::fprintf(stderr, "bench-all: cannot write %s\n",
                     summary_path.c_str());
        return 1;
    }
    std::printf("bench-all: wrote %s\n", summary_path.c_str());
    return 0;
}

int
Compare(const std::string& baseline_path, const std::string& current_path,
        double gate)
{
    bench::JsonValue baseline, current;
    if (!ParseSummaryFile(baseline_path, &baseline)) return 1;
    if (!ParseSummaryFile(current_path, &current)) return 1;
    bench::CompareReport report;
    std::string err;
    if (!bench::CompareSummaries(baseline, current, gate, &report,
                                 &err)) {
        std::fprintf(stderr, "bench-all: compare failed: %s\n",
                     err.c_str());
        return 1;
    }
    std::printf("%s", report.ToText().c_str());
    return report.ok ? 0 : 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::Args args(argc, argv);
    const std::string outdir = args.GetString("--outdir", ".");
    const std::string baseline = args.GetString("--baseline");
    const std::string compare_current = args.GetString("--compare");
    const double gate = args.GetDouble("--gate", 1.15);
    const bool quick = args.GetBool("--quick");
    const bool merge_only = args.GetBool("--merge-only");
    // Tier binaries live next to this driver unless told otherwise.
    std::string bindir = args.GetString("--bindir");
    if (bindir.empty()) {
        bindir = fs::path(argv[0]).parent_path().string();
        if (bindir.empty()) bindir = ".";
    }
    std::string summary_path = args.GetString("--out");
    if (summary_path.empty()) {
        summary_path =
            (fs::path(outdir) / "BENCH_summary.json").string();
    }

    if (!compare_current.empty()) {
        if (baseline.empty()) {
            std::fprintf(stderr,
                         "bench-all: --compare requires --baseline\n");
            return 1;
        }
        return Compare(baseline, compare_current, gate);
    }

    std::error_code ec;
    fs::create_directories(outdir, ec);

    if (!merge_only) {
        if (const int rc = RunTier(bindir, outdir, quick); rc != 0) {
            return rc;
        }
    }
    if (const int rc = MergeSummary(outdir, summary_path); rc != 0) {
        return rc;
    }
    if (!baseline.empty()) {
        return Compare(baseline, summary_path, gate);
    }
    return 0;
}
